package past

import (
	"fmt"
	"time"

	"past/internal/cluster"
	"past/internal/id"
	pastcore "past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/simnet"
	"past/internal/wire"
)

// NetworkConfig configures a simulated PAST network.
type NetworkConfig struct {
	// N is the number of nodes. Required.
	N int
	// Seed makes the whole network (ids, topology, latencies, request
	// randomness) reproducible.
	Seed int64
	// Storage configures each node's PAST layer; the zero value uses
	// DefaultStorageConfig.
	Storage StorageConfig
	// RoutingB and RoutingL override Pastry's digit size (default 4) and
	// leaf-set size (default 32).
	RoutingB, RoutingL int
	// UserQuota is the usage quota issued to each node's smartcard.
	// Zero means effectively unlimited.
	UserQuota int64
	// KeepAlive enables periodic leaf-set keep-alives (needed for
	// automatic failure recovery); zero disables them.
	KeepAlive time.Duration
	// FailTimeout is the silence period after which a node is presumed
	// failed (only meaningful with KeepAlive set).
	FailTimeout time.Duration
	// RandomizedRouting enables the fault-tolerant randomized routing of
	// section 2.2, which lets retried requests take different paths
	// around malicious or failed nodes.
	RandomizedRouting bool
}

// Network is an in-process simulated PAST network: N storage nodes built
// by running the real join protocol over a deterministic discrete-event
// simulator. All client operations run the full protocol (certificates,
// routing, replication, receipts) and block until the simulation delivers
// a result.
type Network struct {
	cfg    NetworkConfig
	clu    *cluster.Cluster
	broker *seccrypt.Broker
	cards  []*seccrypt.Smartcard
	nodes  []*pastcore.Node
}

// NewNetwork builds and joins an N-node simulated PAST network.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("past: NetworkConfig.N must be positive, got %d", cfg.N)
	}
	storage := cfg.Storage
	if storage.K == 0 {
		storage = DefaultStorageConfig()
		storage.K = 3
	}
	quota := cfg.UserQuota
	if quota <= 0 {
		quota = 1 << 50
	}
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(uint64(cfg.Seed) + 1))
	if err != nil {
		return nil, err
	}
	cards := make([]*seccrypt.Smartcard, cfg.N)
	for i := range cards {
		cards[i], err = broker.IssueCard(quota, storage.Capacity, 0, seccrypt.DetRand(uint64(cfg.Seed)<<20+uint64(i)+7))
		if err != nil {
			return nil, err
		}
	}
	pcfg := pastry.DefaultConfig()
	if cfg.RoutingB > 0 {
		pcfg.B = cfg.RoutingB
	}
	if cfg.RoutingL > 0 {
		pcfg.L = cfg.RoutingL
	}
	if cfg.KeepAlive > 0 {
		pcfg.KeepAlive = cfg.KeepAlive
		if cfg.FailTimeout > 0 {
			pcfg.FailTimeout = cfg.FailTimeout
		}
	}
	pcfg.Randomize = cfg.RandomizedRouting
	nodes := make([]*pastcore.Node, cfg.N)
	clu, err := cluster.Build(cluster.Options{
		N:      cfg.N,
		Pastry: pcfg,
		Seed:   cfg.Seed,
		NodeID: func(i int) id.Node { return cards[i].NodeID() },
		AppFactory: func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App {
			nodes[i] = pastcore.NewNode(storage, nd, cards[i], broker.PublicKey())
			return nodes[i]
		},
	})
	if err != nil {
		return nil, err
	}
	if cfg.KeepAlive > 0 {
		clu.EnableProbes()
	}
	return &Network{cfg: cfg, clu: clu, broker: broker, cards: cards, nodes: nodes}, nil
}

// Len returns the number of nodes (live and crashed).
func (nw *Network) Len() int { return len(nw.nodes) }

// Broker returns the network's smartcard issuer.
func (nw *Network) Broker() *Broker { return nw.broker }

// Card returns node i's smartcard (also usable as a client identity).
func (nw *Network) Card(i int) *Smartcard { return nw.cards[i] }

// NodeRef returns node i's overlay identity.
func (nw *Network) NodeRef(i int) NodeRef { return nw.clu.Nodes[i].Ref() }

// run drives the simulator until done or the event budget is exhausted.
func (nw *Network) run(done *bool) error {
	if !nw.clu.Net.RunUntil(func() bool { return *done }, 100_000_000) {
		return ErrTimeout
	}
	return nil
}

// Insert stores data via node `node` using card (nil uses the node's own
// card), replicated k times (0 = default). It blocks until the insert
// completes or fails.
func (nw *Network) Insert(node int, card *Smartcard, name string, data []byte, k int) (InsertResult, error) {
	if card == nil {
		card = nw.cards[node]
	}
	var res InsertResult
	done := false
	nw.nodes[node].Insert(card, name, data, k, func(r InsertResult) { res = r; done = true })
	if err := nw.run(&done); err != nil {
		return InsertResult{}, err
	}
	return res, res.Err
}

// Lookup retrieves a file via node `node`.
func (nw *Network) Lookup(node int, f FileID) (LookupResult, error) {
	var res LookupResult
	done := false
	nw.nodes[node].Lookup(f, func(r LookupResult) { res = r; done = true })
	if err := nw.run(&done); err != nil {
		return LookupResult{}, err
	}
	return res, res.Err
}

// Reclaim frees a file's storage via node `node` with the owner's card
// (nil uses the node's own card).
func (nw *Network) Reclaim(node int, card *Smartcard, f FileID) (ReclaimResult, error) {
	if card == nil {
		card = nw.cards[node]
	}
	var res ReclaimResult
	done := false
	nw.nodes[node].Reclaim(card, f, func(r ReclaimResult) { res = r; done = true })
	if err := nw.run(&done); err != nil {
		return ReclaimResult{}, err
	}
	return res, res.Err
}

// Crash silently removes node i from the network, as in the paper's
// failure model ("nodes may silently leave the system without warning").
func (nw *Network) Crash(i int) { nw.clu.Crash(i) }

// Down reports whether node i has been crashed.
func (nw *Network) Down(i int) bool { return nw.clu.Down(i) }

// Restart brings a crashed node back; it re-enters the overlay via the
// recovery protocol of section 2.2 (contact last-known leaf set, merge
// their current leaf sets, announce presence).
func (nw *Network) Restart(i int) { nw.clu.Restart(i) }

// RunFor advances the simulation by d of virtual time, letting keep-alive,
// repair and re-replication traffic proceed.
func (nw *Network) RunFor(d time.Duration) { nw.clu.Net.RunFor(d) }

// Holds reports whether node i currently stores a replica of f.
func (nw *Network) Holds(i int, f FileID) bool { return nw.nodes[i].Store().Has(f) }

// Utilization returns the global storage utilization across live nodes.
func (nw *Network) Utilization() float64 {
	var used, capTotal int64
	for i, n := range nw.nodes {
		if nw.clu.Down(i) {
			continue
		}
		used += n.Store().Used()
		capTotal += n.Store().Capacity()
	}
	if capTotal == 0 {
		return 0
	}
	return float64(used) / float64(capTotal)
}

// AuditPeer makes node `auditor` challenge `target` to prove it stores f.
func (nw *Network) AuditPeer(auditor int, target NodeRef, f FileID) (bool, error) {
	var verdict bool
	done := false
	if err := nw.nodes[auditor].AuditPeer(target, f, func(ok bool) { verdict = ok; done = true }); err != nil {
		return false, err
	}
	if err := nw.run(&done); err != nil {
		return false, err
	}
	return verdict, nil
}

// Messages returns the number of messages delivered by the simulated
// network so far.
func (nw *Network) Messages() uint64 { return nw.clu.Net.Messages() }

// ReplicaHolders lists the indexes of live nodes storing f.
func (nw *Network) ReplicaHolders(f FileID) []int {
	var out []int
	for i, n := range nw.nodes {
		if !nw.clu.Down(i) && n.Store().Has(f) {
			out = append(out, i)
		}
	}
	return out
}

// NodeStats aggregates one node's storage-management counters.
type NodeStats = pastcore.Stats

// NodeStats returns node i's counters (stores, diversions, cache serves).
func (nw *Network) NodeStats(i int) NodeStats { return nw.nodes[i].Stats() }

// CacheStats returns node i's cache hit/miss counters.
func (nw *Network) CacheStats(i int) (hits, misses uint64) {
	return nw.nodes[i].Cache().Stats()
}

// SetMalicious turns node i into the attacker of section 2.2
// ("Fault-tolerance"): it accepts messages but silently drops everything
// it should forward on behalf of others, while still answering as a
// destination.
func (nw *Network) SetMalicious(i int) {
	nw.clu.Eps[i].SetSendFilter(func(to string, m wire.Msg) bool {
		_, isRouted := m.(wire.Routed)
		return isRouted
	})
}
