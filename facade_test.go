package past_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"past"
)

func newNet(t testing.TB, n int, seed int64) *past.Network {
	t.Helper()
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: n, Seed: seed, Storage: cfg})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return nw
}

func TestNetworkInsertLookupReclaim(t *testing.T) {
	nw := newNet(t, 20, 1)
	data := []byte("facade end to end")
	ins, err := nw.Insert(0, nil, "facade.txt", data, 3)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if len(ins.Receipts) != 3 {
		t.Fatalf("receipts = %d", len(ins.Receipts))
	}
	got, err := nw.Lookup(13, ins.FileID)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("data mismatch")
	}
	if len(nw.ReplicaHolders(ins.FileID)) != 3 {
		t.Fatal("holder count wrong")
	}
	rec, err := nw.Reclaim(0, nil, ins.FileID)
	if err != nil {
		t.Fatalf("Reclaim: %v", err)
	}
	if rec.Freed == 0 {
		t.Fatal("nothing freed")
	}
	// Reclaim frees all replicas, but per section 1 it "does not
	// guarantee that the file is no longer available": cached copies may
	// still answer lookups. Assert exactly what the paper promises.
	if holders := nw.ReplicaHolders(ins.FileID); len(holders) != 0 {
		t.Fatalf("replicas survive reclaim: %v", holders)
	}
	if lr, err := nw.Lookup(13, ins.FileID); err == nil && !lr.Cached {
		t.Fatal("post-reclaim lookup served from a replica, not a cache")
	} else if err != nil && !errors.Is(err, past.ErrNotFound) {
		t.Fatalf("unexpected lookup error: %v", err)
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := past.NewNetwork(past.NetworkConfig{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestNetworkCrashAndRecovery(t *testing.T) {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{
		N: 24, Seed: 2, Storage: cfg,
		KeepAlive:   500 * time.Millisecond,
		FailTimeout: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := nw.Insert(0, nil, "precious", []byte("replicate me"), 3)
	if err != nil {
		t.Fatal(err)
	}
	holders := nw.ReplicaHolders(ins.FileID)
	nw.Crash(holders[0])
	if _, err := nw.Lookup(7, ins.FileID); err != nil {
		t.Fatalf("lookup after crash: %v", err)
	}
	nw.RunFor(20 * time.Second)
	if live := len(nw.ReplicaHolders(ins.FileID)); live < 3 {
		t.Fatalf("re-replication incomplete: %d holders", live)
	}
}

func TestNetworkQuota(t *testing.T) {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: 8, Seed: 3, Storage: cfg, UserQuota: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Insert(0, nil, "big", make([]byte, 400), 3); !errors.Is(err, past.ErrQuotaExceeded) {
		t.Fatalf("want quota error, got %v", err)
	}
	if _, err := nw.Insert(0, nil, "ok", make([]byte, 300), 3); err != nil {
		t.Fatalf("within quota failed: %v", err)
	}
}

func TestNetworkAudit(t *testing.T) {
	nw := newNet(t, 16, 4)
	ins, err := nw.Insert(0, nil, "audited", []byte("content"), 3)
	if err != nil {
		t.Fatal(err)
	}
	holders := nw.ReplicaHolders(ins.FileID)
	if len(holders) < 2 {
		t.Fatal("need two holders")
	}
	ok, err := nw.AuditPeer(holders[0], nw.NodeRef(holders[1]), ins.FileID)
	if err != nil || !ok {
		t.Fatalf("audit: ok=%v err=%v", ok, err)
	}
}

func TestParseFileID(t *testing.T) {
	nw := newNet(t, 8, 5)
	ins, err := nw.Insert(0, nil, "x", []byte("y"), 1)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := past.ParseFileID(ins.FileID.String())
	if err != nil || parsed != ins.FileID {
		t.Fatalf("round trip failed: %v", err)
	}
	if _, err := past.ParseFileID("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
}

// TestTCPPeersEndToEnd runs a real five-node TCP cluster on loopback and
// pushes a file through it.
func TestTCPPeersEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	broker, err := past.NewBroker()
	if err != nil {
		t.Fatal(err)
	}
	scfg := past.DefaultStorageConfig()
	scfg.K = 3
	scfg.Capacity = 1 << 20
	var peers []*past.Peer
	for i := 0; i < 5; i++ {
		card, err := broker.IssueCard(1<<30, scfg.Capacity, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := past.ListenPeer(past.PeerConfig{
			Card:      card,
			BrokerPub: broker.PublicKey(),
			Storage:   scfg,
			OpTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
	}
	peers[0].Bootstrap()
	for i := 1; i < 5; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			t.Fatalf("peer %d join: %v", i, err)
		}
	}
	// Join returns before announce traffic has propagated; an insert that
	// races it can be replicated against a stale leaf-set view (leaving a
	// harmless extra copy that would trip the exact-count check below).
	// Wait for every peer to see all four others.
	converged := func() bool {
		for _, p := range peers {
			if p.KnownPeers() < 4 {
				return false
			}
		}
		return true
	}
	for wait := 0; !converged() && wait < 200; wait++ {
		time.Sleep(10 * time.Millisecond)
	}
	if !converged() {
		t.Fatal("membership did not converge")
	}
	data := []byte("over real TCP")
	ins, err := peers[1].Insert(nil, "tcp.txt", data, 3)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	got, err := peers[4].Lookup(ins.FileID)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if !bytes.Equal(got.Data, data) {
		t.Fatal("data mismatch over TCP")
	}
	total := 0
	for _, p := range peers {
		total += p.StoredFiles()
	}
	if total != 3 {
		t.Fatalf("replicas stored = %d, want 3", total)
	}
}

func TestNetworkRestartRecovers(t *testing.T) {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{
		N: 20, Seed: 9, Storage: cfg,
		KeepAlive:   500 * time.Millisecond,
		FailTimeout: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := nw.Insert(0, nil, "durable", []byte("comes back"), 3)
	if err != nil {
		t.Fatal(err)
	}
	victim := nw.ReplicaHolders(ins.FileID)[0]
	nw.Crash(victim)
	nw.RunFor(10 * time.Second) // failure detected, re-replication done
	nw.Restart(victim)
	nw.RunFor(10 * time.Second)
	if nw.Down(victim) {
		t.Fatal("victim still marked down")
	}
	// The recovered node participates again: lookups through it work.
	if _, err := nw.Lookup(victim, ins.FileID); err != nil {
		t.Fatalf("lookup via recovered node: %v", err)
	}
	// And the file is still at (or above) full replication.
	if got := len(nw.ReplicaHolders(ins.FileID)); got < 3 {
		t.Fatalf("replication fell to %d", got)
	}
}

func TestNetworkStatsAndCacheStats(t *testing.T) {
	nw := newNet(t, 16, 10)
	ins, err := nw.Insert(0, nil, "s", make([]byte, 256), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		nw.Lookup(9, ins.FileID)
	}
	primaries := 0
	var hits uint64
	for i := 0; i < nw.Len(); i++ {
		primaries += nw.NodeStats(i).PrimaryStores
		h, _ := nw.CacheStats(i)
		hits += h
	}
	if primaries != 3 {
		t.Fatalf("PrimaryStores = %d", primaries)
	}
	if hits == 0 {
		t.Fatal("repeated lookups never hit a cache")
	}
}

func TestListenPeerValidation(t *testing.T) {
	if _, err := past.ListenPeer(past.PeerConfig{}); err == nil {
		t.Fatal("missing card accepted")
	}
}

func TestPeerLookupMissAndReclaimByNonOwner(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	broker, err := past.NewBroker()
	if err != nil {
		t.Fatal(err)
	}
	scfg := past.DefaultStorageConfig()
	scfg.K = 2
	scfg.Capacity = 1 << 20
	scfg.RequestTimeout = 2 * time.Second
	mk := func() *past.Peer {
		card, err := broker.IssueCard(1<<30, scfg.Capacity, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := past.ListenPeer(past.PeerConfig{
			Card: card, BrokerPub: broker.PublicKey(), Storage: scfg,
			OpTimeout: 3 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	a, b, c := mk(), mk(), mk()
	a.Bootstrap()
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	// Lookup of a nonexistent file over TCP returns not-found.
	var missing past.FileID
	copy(missing[:], bytes.Repeat([]byte{0x42}, len(missing)))
	if _, err := b.Lookup(missing); !errors.Is(err, past.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	// Reclaim with the wrong owner's card yields no receipts.
	ins, err := a.Insert(nil, "owned", []byte("mine"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reclaim(nil, ins.FileID); err == nil {
		t.Fatal("non-owner reclaim over TCP returned receipts")
	}
	// The file survives.
	if _, err := b.Lookup(ins.FileID); err != nil {
		t.Fatalf("file should survive: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Runnable godoc examples for the facade's three paper operations.

// ExampleNetwork walks the paper's full lifecycle — insert, lookup,
// reclaim — on a small simulated network. Everything is deterministic for
// a fixed seed, which is what makes the expected output checkable.
func ExampleNetwork() {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: 16, Seed: 42, Storage: cfg})
	if err != nil {
		panic(err)
	}

	// Insert: node 0's smartcard issues a signed file certificate and the
	// content is replicated on the 3 nodes closest to the fileId.
	ins, err := nw.Insert(0, nil, "greeting.txt", []byte("hello, PAST"), 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("replicas stored:", len(ins.Receipts))

	// Lookup: any node can retrieve the file; the reply carries the
	// certificate, which the client verifies before accepting the data.
	got, err := nw.Lookup(9, ins.FileID)
	if err != nil {
		panic(err)
	}
	fmt.Printf("retrieved: %s\n", got.Data)

	// Reclaim: the owner's card issues a reclaim certificate; each holder
	// verifies it against the stored file certificate and frees the space.
	rec, err := nw.Reclaim(0, nil, ins.FileID)
	if err != nil {
		panic(err)
	}
	fmt.Println("bytes freed:", rec.Freed)
	// Output:
	// replicas stored: 3
	// retrieved: hello, PAST
	// bytes freed: 33
}

// ExampleNetwork_Insert shows quota accounting: the smartcard debits
// size x k when it issues the certificate (section 2.1 of the paper).
func ExampleNetwork_Insert() {
	cfg := past.DefaultStorageConfig()
	cfg.K = 2
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{
		N: 8, Seed: 7, Storage: cfg, UserQuota: 10_000,
	})
	if err != nil {
		panic(err)
	}
	if _, err := nw.Insert(0, nil, "a.bin", make([]byte, 1000), 2); err != nil {
		panic(err)
	}
	fmt.Println("remaining quota:", nw.Card(0).RemainingQuota())
	// Output:
	// remaining quota: 8000
}

// ExampleNetwork_Lookup shows the routing telemetry a lookup returns.
func ExampleNetwork_Lookup() {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: 16, Seed: 3, Storage: cfg})
	if err != nil {
		panic(err)
	}
	ins, err := nw.Insert(0, nil, "doc.txt", []byte("telemetry"), 3)
	if err != nil {
		panic(err)
	}
	got, err := nw.Lookup(11, ins.FileID)
	if err != nil {
		panic(err)
	}
	fmt.Println("bytes:", len(got.Data), "cached:", got.Cached)
	// Output:
	// bytes: 9 cached: false
}

// ExampleNetwork_Reclaim shows that reclaim refuses a non-owner: only
// the card that issued the file certificate can free the storage.
func ExampleNetwork_Reclaim() {
	cfg := past.DefaultStorageConfig()
	cfg.K = 2
	cfg.Capacity = 1 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: 8, Seed: 5, Storage: cfg})
	if err != nil {
		panic(err)
	}
	ins, err := nw.Insert(0, nil, "mine.txt", []byte("owned"), 2)
	if err != nil {
		panic(err)
	}
	if _, err := nw.Reclaim(3, nw.Card(3), ins.FileID); err != nil {
		fmt.Println("non-owner reclaim: refused")
	}
	rec, err := nw.Reclaim(0, nil, ins.FileID)
	if err != nil {
		panic(err)
	}
	fmt.Println("owner reclaim freed:", rec.Freed)
	// Output:
	// non-owner reclaim: refused
	// owner reclaim freed: 10
}
