package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"past/internal/id"
	"past/internal/pastry"
	"past/internal/simnet"
	"past/internal/telemetry"
	"past/internal/topology"
	"past/internal/wire"
)

// Options configures a cluster build.
type Options struct {
	// N is the number of nodes.
	N int
	// Pastry holds the per-node protocol parameters.
	Pastry pastry.Config
	// Seed drives node ids, topology and the simulator.
	Seed int64
	// Net tunes the simulated network; the Seed field is overridden.
	Net simnet.Config
	// Topology generates the proximity metric; zero value uses
	// topology.DefaultConfig(Seed).
	Topology topology.Config
	// SampleSize bounds the number of candidate bootstrap nodes examined
	// to find a proximally "nearby node A" for each join. Zero means 32.
	SampleSize int
	// AppFactory, when non-nil, builds the application layer for node i.
	// It runs after the pastry node is constructed and before it joins.
	AppFactory func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App
	// NodeID, when non-nil, overrides the identifier for node i
	// (PAST harnesses derive ids from smartcards).
	NodeID func(i int) id.Node
	// Shards, when positive, routes the build and every subsequent run
	// through simnet's sharded conservative-window engine with this many
	// shards: nodes are partitioned by transit domain and one simulation
	// uses up to Shards cores. Results are byte-identical for any
	// positive value, so Shards only selects parallelism. Zero keeps the
	// legacy single-threaded engine.
	Shards int
	// WindowWorkers overrides the sharded engine's persistent worker
	// pool size (simnet.Config.Workers): zero picks
	// min(GOMAXPROCS, shards), 1 forces sequential inline windows, and
	// values above 1 force a pool even on one core (used by the
	// determinism tests to exercise the phased barrier under -race).
	// Results are byte-identical for any value.
	WindowWorkers int
	// Analytic skips the n sequential protocol joins and seeds routing
	// tables, leaf sets, and neighborhood sets directly from the sorted
	// id ring in O(n log n) total work (see analytic.go). State is
	// equivalent to protocol construction (asserted by
	// TestAnalyticEquivalence) but builds 100k-node networks in seconds
	// instead of hours; the Large/Huge experiment tiers require it.
	Analytic bool
}

// Cluster is a built network.
type Cluster struct {
	Opts  Options
	Net   *simnet.Net
	Topo  *topology.Topology
	Nodes []*pastry.Node
	Eps   []*simnet.Endpoint
	Apps  []pastry.App

	rng    *rand.Rand
	sorted []wire.NodeRef // all refs sorted by id, for oracle queries
	down   map[int]bool
	ids    *id.Intern   // per-network id -> dense index + canonical addr
	probes bool         // EnableProbes was called; install on nodes added later too
	joins  []*joinState // asynchronous joins not yet resolved
	// freeSlots holds quarantined cluster indices (failed joins whose
	// endpoint, topology placement, and shard assignment are already
	// reserved); the next arrival reuses one instead of leaking it.
	freeSlots []int
}

// joinState tracks one AddNodeAsync join until ResolveJoins folds it in.
type joinState struct {
	idx  int
	done bool
	err  error
}

// Build constructs and joins an N-node network. It returns an error if any
// join fails to complete.
func Build(opts Options) (*Cluster, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if opts.SampleSize <= 0 {
		opts.SampleSize = 32
	}
	if opts.Topology.Transits == 0 {
		opts.Topology = topology.DefaultConfig(opts.Seed)
	}
	topo, err := topology.New(opts.Topology)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	netCfg := opts.Net
	netCfg.Seed = opts.Seed + 1
	if opts.Shards > 0 {
		// Shard by transit domain: the topology's config bounds guarantee
		// a latency floor between domains, which is exactly the lookahead
		// the conservative scheduler needs — and it is placement- and
		// shard-count-independent, so tables stay byte-identical at any
		// shard count.
		// More shards than transit domains would leave the extras
		// permanently empty (shard = transit % Shards), so clamp.
		netCfg.Shards = min(opts.Shards, opts.Topology.Transits)
		netCfg.RegionOf = topo.Transit
		netCfg.Lookahead = topo.LookaheadBound()
		netCfg.Workers = opts.WindowWorkers
		if netCfg.Lookahead <= 0 {
			// Zero latency floors give the conservative scheduler no
			// lookahead; report it here rather than panicking in simnet.
			return nil, fmt.Errorf("cluster: sharding needs a positive inter-domain latency floor (TransitMin/UplinkMin/StubMin all zero?)")
		}
	}
	net := simnet.New(netCfg, topo.Distance)

	c := &Cluster{
		Opts: opts,
		Net:  net,
		Topo: topo,
		rng:  rand.New(rand.NewSource(opts.Seed + 2)),
		down: make(map[int]bool),
		ids:  id.NewIntern(),
	}
	if opts.Analytic {
		if err := c.buildAnalytic(); err != nil {
			return nil, err
		}
		return c, nil
	}
	for i := 0; i < opts.N; i++ {
		if err := c.addNode(i); err != nil {
			return nil, err
		}
	}
	c.rebuildOracle()
	return c, nil
}

// newNode constructs node i (topology slot, endpoint, pastry node, app)
// without joining it. When i is a quarantined slot being reused, the
// existing endpoint — already placed on the topology and assigned to its
// shard — is restarted and rebound to a fresh pastry node; otherwise a new
// slot is appended.
func (c *Cluster) newNode(i int) *pastry.Node {
	reuse := i < len(c.Nodes)
	var ep *simnet.Endpoint
	if reuse {
		ep = c.Eps[i]
		ep.Restart()
		c.ids.Delete(c.Nodes[i].ID())
		delete(c.down, i)
	} else {
		c.Topo.Place()
		ep = c.Net.NewEndpoint()
	}
	nid := id.Rand(uint64(c.Opts.Seed)<<20 + uint64(i))
	if c.Opts.NodeID != nil {
		nid = c.Opts.NodeID(i)
	}
	pcfg := c.Opts.Pastry
	pcfg.Seed = c.Opts.Seed + int64(i)*7919
	// Each node runs on its endpoint's clock so that, under the sharded
	// engine, its timers fire on (and are keyed by) the shard that owns
	// it. On the legacy engine ep.Clock() is the net clock.
	nd := pastry.New(pcfg, nid, ep, ep.Clock(), nil)
	var app pastry.App
	if c.Opts.AppFactory != nil {
		app = c.Opts.AppFactory(i, nd, ep)
		nd.SetApp(app)
	}
	if reuse {
		c.Nodes[i], c.Apps[i] = nd, app
	} else {
		c.Nodes = append(c.Nodes, nd)
		c.Eps = append(c.Eps, ep)
		c.Apps = append(c.Apps, app)
	}
	c.ids.Put(nid, int32(i), ep.Addr())
	if c.probes {
		c.installProbe(i)
	}
	return nd
}

// takeSlot picks the index for the next arrival: a quarantined slot when
// one is free, a fresh appended slot otherwise.
func (c *Cluster) takeSlot() int {
	if n := len(c.freeSlots); n > 0 {
		i := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return i
	}
	return len(c.Nodes)
}

// quarantine takes a failed joiner off the network and releases its slot
// for the next arrival. Before the free list existed every failed join
// leaked its endpoint (and, under the sharded engine, its shard slot)
// forever — harmless at hundreds of nodes, fatal at 20k+ under churn.
func (c *Cluster) quarantine(i int) {
	if i >= len(c.Nodes) {
		return
	}
	c.Eps[i].Crash()
	c.Nodes[i].Leave()
	c.down[i] = true
	c.freeSlots = append(c.freeSlots, i)
}

func (c *Cluster) addNode(i int) error {
	nd := c.newNode(i)
	if i == 0 {
		nd.Bootstrap()
		return nil
	}
	seed := c.nearbyNode(i)
	joinErr := error(nil)
	done := false
	nd.Join(simnet.Addr(seed), func(err error) {
		joinErr = err
		done = true
	})
	if !c.Net.RunUntil(func() bool { return done }, 100_000_000) {
		return fmt.Errorf("cluster: join of node %d did not complete", i)
	}
	if joinErr != nil {
		return fmt.Errorf("cluster: join of node %d: %w", i, joinErr)
	}
	// Drain the announce traffic before the next join so state converges
	// deterministically, as the sequential-join methodology of the Pastry
	// paper assumes. With keep-alives enabled the network never goes
	// idle, so drain a bounded slice of virtual time instead.
	if c.Opts.Pastry.KeepAlive > 0 {
		c.Net.RunFor(c.Opts.Pastry.KeepAlive / 4)
	} else {
		c.Net.RunUntilIdle()
	}
	return nil
}

// AddNode joins one brand-new node into a running cluster — the churn
// engine's arrival path. The node is placed on the topology (and, under
// the sharded engine, assigned to the shard owning its transit domain),
// built through the same Options the cluster was built with, and joined
// via a proximally nearby live node. AddNode must only be called from
// the coordinating goroutine between simulation runs (as all Cluster
// mutators must); it advances virtual time until the join completes and
// a bounded settle slice has drained. It returns the new node's index.
//
// Options.NodeID and Options.AppFactory, when set, must accept indices
// beyond the original Options.N.
func (c *Cluster) AddNode() (int, error) {
	i := c.takeSlot()
	if err := c.addNode(i); err != nil {
		// The join did not complete (possible under heavy churn): take the
		// half-joined node off the network so the oracle and the workload
		// never see it, and free its slot for the next arrival.
		c.quarantine(i)
		c.rebuildOracle()
		return -1, err
	}
	c.rebuildOracle()
	return i, nil
}

// AddNodeAsync starts one brand-new node's join WITHOUT advancing virtual
// time: the join protocol proceeds concurrently with whatever foreground
// workload the caller runs next. The node stays hidden from the oracle
// and the workload (Down reports true) until ResolveJoins observes its
// join callback and folds it in. Like all Cluster mutators it must be
// called from the coordinating goroutine between simulation runs. It
// returns the new node's index.
func (c *Cluster) AddNodeAsync() int {
	i := c.takeSlot()
	nd := c.newNode(i)
	if i == 0 {
		nd.Bootstrap()
		c.rebuildOracle()
		return i
	}
	seed := c.nearbyNode(i)
	st := &joinState{idx: i}
	c.joins = append(c.joins, st)
	// Hidden until the join resolves; a failed join then never becomes
	// visible at all.
	c.down[i] = true
	nd.Join(simnet.Addr(seed), func(err error) {
		st.done = true
		st.err = err
	})
	return i
}

// ResolveJoins folds completed asynchronous joins into the cluster:
// successful joiners become visible to the oracle and the workload;
// failed ones (the join timed out — possible under heavy churn) are
// quarantined exactly like AddNode failures. Call between simulation
// runs; joins still in flight are left pending. It returns the indices
// that joined successfully and the number that failed.
func (c *Cluster) ResolveJoins() (joined []int, failed int) {
	if len(c.joins) == 0 {
		return nil, 0
	}
	rest := c.joins[:0]
	for _, st := range c.joins {
		switch {
		case !st.done:
			rest = append(rest, st)
		case st.err != nil:
			c.quarantine(st.idx)
			failed++ // stays down until the slot is reused
		default:
			delete(c.down, st.idx)
			joined = append(joined, st.idx)
		}
	}
	for i := len(rest); i < len(c.joins); i++ {
		c.joins[i] = nil
	}
	c.joins = rest
	if len(joined) > 0 || failed > 0 {
		c.rebuildOracle()
	}
	return joined, failed
}

// PendingJoins reports how many asynchronous joins have not resolved yet.
func (c *Cluster) PendingJoins() int { return len(c.joins) }

// Leave removes node i gracefully: the node announces its departure to
// its leaf set (so peers repair and re-replicate immediately), then its
// endpoint goes down. Compare Crash, the paper's silent-failure path.
func (c *Cluster) Leave(i int) {
	if c.down[i] {
		return
	}
	c.Nodes[i].Depart()
	c.Eps[i].Crash()
	c.down[i] = true
	c.rebuildOracle()
}

// nearbyNode samples already-joined nodes and returns the proximally
// closest, playing the role of the "nearby node A" the paper's join
// protocol assumes a new node can locate.
func (c *Cluster) nearbyNode(joining int) int {
	best := -1
	bestD := 0.0
	tries := c.Opts.SampleSize
	if tries > joining {
		tries = joining
	}
	for t := 0; t < tries; t++ {
		cand := c.rng.Intn(joining)
		if c.down[cand] {
			continue
		}
		d := c.Topo.Distance(joining, cand)
		if best == -1 || d < bestD {
			best = cand
			bestD = d
		}
	}
	if best == -1 {
		// Sampling only hit crashed nodes (likely under churn): fall back
		// to the first live node rather than a dead bootstrap.
		for cand := 0; cand < joining; cand++ {
			if !c.down[cand] {
				return cand
			}
		}
		best = 0
	}
	return best
}

func (c *Cluster) rebuildOracle() {
	c.sorted = c.sorted[:0]
	for i, nd := range c.Nodes {
		if c.down[i] {
			continue
		}
		c.sorted = append(c.sorted, nd.Ref())
	}
	sort.Slice(c.sorted, func(a, b int) bool {
		return c.sorted[a].ID.Less(c.sorted[b].ID)
	})
}

// NumericallyClosest returns the live node whose id is numerically closest
// to key — the ground truth Pastry routing must reach ("the node whose
// nodeId is numerically closest ... among all live nodes").
func (c *Cluster) NumericallyClosest(key id.Node) wire.NodeRef {
	if len(c.sorted) == 0 {
		return wire.NodeRef{}
	}
	i := sort.Search(len(c.sorted), func(i int) bool {
		return !c.sorted[i].ID.Less(key)
	})
	best := c.sorted[i%len(c.sorted)]
	for _, j := range []int{i - 1, i, i + 1} {
		cand := c.sorted[(j+len(c.sorted))%len(c.sorted)]
		if id.Closer(key, cand.ID, best.ID) {
			best = cand
		}
	}
	return best
}

// KClosest returns the k live nodes numerically closest to key, the
// replica set of a fileId.
func (c *Cluster) KClosest(key id.Node, k int) []wire.NodeRef {
	if k > len(c.sorted) {
		k = len(c.sorted)
	}
	i := sort.Search(len(c.sorted), func(i int) bool {
		return !c.sorted[i].ID.Less(key)
	})
	type cand struct {
		ref  wire.NodeRef
		dist id.Node
	}
	// Collect a window of 2k+2 around the insertion point and sort by
	// ring distance.
	var cands []cand
	for j := i - k - 1; j <= i+k; j++ {
		r := c.sorted[(j%len(c.sorted)+len(c.sorted))%len(c.sorted)]
		cands = append(cands, cand{r, r.ID.Dist(key)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist.Cmp(cands[b].dist) != 0 {
			return cands[a].dist.Cmp(cands[b].dist) < 0
		}
		return cands[a].ref.ID.Less(cands[b].ref.ID)
	})
	out := make([]wire.NodeRef, 0, k)
	seen := make(map[id.Node]bool, k)
	for _, cd := range cands {
		if seen[cd.ref.ID] {
			continue
		}
		seen[cd.ref.ID] = true
		out = append(out, cd.ref)
		if len(out) == k {
			break
		}
	}
	return out
}

// IndexByID maps a node id back to its cluster index (crashed and
// departed nodes included, like the slice scan it replaces). The lookup
// is O(1): under churn every arrival and departure consults it.
func (c *Cluster) IndexByID(n id.Node) int {
	return int(c.ids.Index(n))
}

// Crash silently removes node i from the network (endpoint down, pastry
// node marked left) and refreshes the oracle.
func (c *Cluster) Crash(i int) {
	c.Eps[i].Crash()
	c.Nodes[i].Leave()
	c.down[i] = true
	c.rebuildOracle()
}

// Restart brings a crashed node back: its endpoint accepts traffic again
// and the node runs the recovery protocol of section 2.2 against its last
// known leaf set.
func (c *Cluster) Restart(i int) {
	if !c.down[i] {
		return
	}
	c.Eps[i].Restart()
	delete(c.down, i)
	c.Nodes[i].Recover()
	c.rebuildOracle()
}

// Down reports whether node i has been crashed.
func (c *Cluster) Down(i int) bool { return c.down[i] }

// LiveCount returns the number of live nodes.
func (c *Cluster) LiveCount() int { return len(c.sorted) }

// EnableProbes installs transport-level reachability detection on every
// node: forwarding to a crashed node fails immediately, and the sender
// routes around it and repairs its state (as a TCP deployment would).
// Nodes added later (AddNode) get a probe automatically.
func (c *Cluster) EnableProbes() {
	c.probes = true
	for i := range c.Nodes {
		if c.down[i] {
			continue
		}
		c.installProbe(i)
	}
}

func (c *Cluster) installProbe(i int) {
	c.Nodes[i].SetProbe(func(addr string) bool {
		idx, err := simnet.Index(addr)
		if err != nil || idx >= len(c.Eps) {
			return false
		}
		return c.Eps[idx].Up()
	})
}

// RandomLiveNode returns the index of a uniformly random live node.
func (c *Cluster) RandomLiveNode() int {
	for {
		i := c.rng.Intn(len(c.Nodes))
		if !c.down[i] {
			return i
		}
	}
}

// Rand exposes the cluster's deterministic random stream.
func (c *Cluster) Rand() *rand.Rand { return c.rng }

// RunSettle processes events for the given virtual duration, letting
// keep-alive and repair traffic run.
func (c *Cluster) RunSettle(d time.Duration) { c.Net.RunFor(d) }

// AttachTelemetry ticks rec at every window barrier of the sharded
// engine and registers the cluster-level series: live_nodes (overlay
// membership as churn sees it) and net_events (message deliveries per
// window, with a per-second rate). All samples are pure reads taken at
// barriers, so the series inherit the engine's shard-count determinism.
// Call once per recorder, after Build; requires Shards >= 1.
func (c *Cluster) AttachTelemetry(rec *telemetry.Recorder) {
	rec.Gauge("live_nodes", func() float64 { return float64(c.LiveCount()) })
	var prevMsgs uint64
	secs := rec.Window().Seconds()
	rec.Multi("net_events", []string{"value", "per_sec"}, func() []float64 {
		cur := c.Net.Messages()
		delta := cur - prevMsgs
		if cur < prevMsgs { // counters were reset mid-run
			delta = cur
		}
		prevMsgs = cur
		return []float64{float64(delta), float64(delta) / secs}
	})
	c.Net.SetBarrierHook(rec.Tick)
}
