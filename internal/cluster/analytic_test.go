package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"past/internal/id"
	"past/internal/pastry"
)

func buildPair(t *testing.T, n int, seed int64, analytic bool, shards int) (*Cluster, []*Recorder) {
	t.Helper()
	factory, recs := RecorderFactory(n)
	c, err := Build(Options{
		N:          n,
		Pastry:     pastry.DefaultConfig(),
		Seed:       seed,
		AppFactory: factory,
		Analytic:   analytic,
		Shards:     shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, recs
}

func probeOnce(c *Cluster, recs []*Recorder, from int, key id.Node, seq uint64) (Delivery, bool) {
	var got *Delivery
	for _, r := range recs {
		r.OnDeliver = func(d Delivery) {
			if p, ok := d.Routed.Payload.(ProbeMsg); ok && p.Seq == seq {
				got = &d
			}
		}
	}
	c.Nodes[from].Route(key, ProbeMsg{Seq: seq})
	c.Net.RunUntil(func() bool { return got != nil }, 10_000_000)
	for _, r := range recs {
		r.OnDeliver = nil
	}
	if got == nil {
		return Delivery{}, false
	}
	return *got, true
}

// TestAnalyticEquivalence is the validation argument for bulk
// construction: an analytically-built network must be structurally
// identical to a protocol-built one — same leaf sets, same routing-slot
// occupancy — and route every probe to the same destination. Per-probe
// hop counts may differ on a small fraction of probes: a routing slot may
// hold a different (equally correct, per section 2.2 any node with the
// matching prefix qualifies) occupant, which shifts where the leaf-set
// shortcut engages; the hop-count DISTRIBUTION must agree tightly, which
// the mean assertion pins.
func TestAnalyticEquivalence(t *testing.T) {
	for _, n := range []int{64, 256} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const seed = 7
			cp, rp := buildPair(t, n, seed, false, 0)
			ca, ra := buildPair(t, n, seed, true, 0)

			rows := cp.Nodes[0].RoutingTableRows()
			for i := 0; i < n; i++ {
				if !ca.Nodes[i].Joined() {
					t.Fatalf("analytic node %d not joined", i)
				}
				ps, pl := cp.Nodes[i].LeafSmaller(), cp.Nodes[i].LeafLarger()
				as, al := ca.Nodes[i].LeafSmaller(), ca.Nodes[i].LeafLarger()
				if fmt.Sprint(ps) != fmt.Sprint(as) || fmt.Sprint(pl) != fmt.Sprint(al) {
					t.Fatalf("node %d leaf sets differ:\nprotocol: %v | %v\nanalytic: %v | %v", i, ps, pl, as, al)
				}
				for row := 0; row <= rows; row++ {
					for col := 0; col < 16; col++ {
						_, pok := cp.Nodes[i].RoutingEntry(row, col)
						_, aok := ca.Nodes[i].RoutingEntry(row, col)
						if pok != aok {
							t.Fatalf("node %d RT slot (%d,%d): protocol populated=%v analytic populated=%v", i, row, col, pok, aok)
						}
					}
				}
			}

			rng := rand.New(rand.NewSource(99))
			const trials = 200
			var sumP, sumA float64
			for tr := 0; tr < trials; tr++ {
				key := id.Rand(uint64(n)<<32 + uint64(tr))
				from := rng.Intn(n)
				dp, okp := probeOnce(cp, rp, from, key, uint64(tr))
				da, oka := probeOnce(ca, ra, from, key, uint64(tr))
				if !okp || !oka {
					t.Fatalf("probe %d lost (protocol ok=%v analytic ok=%v)", tr, okp, oka)
				}
				if dp.NodeIndex != da.NodeIndex {
					t.Fatalf("probe %d delivered to different nodes: protocol %d analytic %d", tr, dp.NodeIndex, da.NodeIndex)
				}
				want := cp.NumericallyClosest(key)
				if cp.Nodes[dp.NodeIndex].ID() != want.ID {
					t.Fatalf("probe %d missed numerically closest node", tr)
				}
				sumP += float64(dp.Routed.Hops)
				sumA += float64(da.Routed.Hops)
			}
			meanP, meanA := sumP/trials, sumA/trials
			if d := math.Abs(meanP - meanA); d > 0.1 {
				t.Fatalf("mean hops diverge: protocol %.3f analytic %.3f (|diff| %.3f > 0.1)", meanP, meanA, d)
			}
		})
	}
}

// TestAnalyticShardIndependence pins that the analytic build produces
// byte-identical state at any shard count (it schedules no events, so
// this holds by construction — the test keeps it that way).
func TestAnalyticShardIndependence(t *testing.T) {
	snapshot := func(shards int) string {
		c, _ := buildPair(t, 64, 11, true, shards)
		s := ""
		for i, nd := range c.Nodes {
			s += fmt.Sprint(i, nd.LeafSmaller(), nd.LeafLarger(), nd.NeighborhoodMembers())
			for row := 0; row < 4; row++ {
				for col := 0; col < 16; col++ {
					ref, ok := nd.RoutingEntry(row, col)
					s += fmt.Sprint(row, col, ref, ok)
				}
			}
		}
		return s
	}
	base := snapshot(1)
	for _, shards := range []int{2, 4} {
		if snapshot(shards) != base {
			t.Fatalf("analytic state differs at shards=%d", shards)
		}
	}
}

// TestQuarantineSlotReuse pins the AddNode failure path: a failed join
// must release its reserved slot (endpoint, topology placement, shard
// assignment) so the next arrival reuses it instead of leaking it —
// at 20k+ nodes under churn, leaked slots otherwise accumulate without
// bound.
func TestQuarantineSlotReuse(t *testing.T) {
	factory, _ := RecorderFactory(64)
	c, err := Build(Options{N: 4, Pastry: pastry.DefaultConfig(), Seed: 3, AppFactory: factory})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Crash(i)
	}
	// Every join target is dead: the join must time out and quarantine.
	if _, err := c.AddNode(); err == nil {
		t.Fatal("AddNode succeeded against an all-dead network")
	}
	if len(c.Nodes) != 5 {
		t.Fatalf("got %d slots, want 5", len(c.Nodes))
	}
	if len(c.freeSlots) != 1 || c.freeSlots[0] != 4 {
		t.Fatalf("quarantined slot not released: freeSlots=%v", c.freeSlots)
	}
	deadID := c.Nodes[4].ID()
	for i := 0; i < 4; i++ {
		c.Restart(i)
	}
	c.RunSettle(5e9) // let recovery traffic drain
	idx, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode after restart: %v", err)
	}
	if idx != 4 {
		t.Fatalf("arrival got slot %d, want reused slot 4", idx)
	}
	if len(c.Nodes) != 5 || len(c.freeSlots) != 0 {
		t.Fatalf("slot bookkeeping wrong: %d slots, freeSlots=%v", len(c.Nodes), c.freeSlots)
	}
	if got := c.IndexByID(c.Nodes[4].ID()); got != 4 {
		t.Fatalf("IndexByID(new)=%d, want 4", got)
	}
	if deadID != c.Nodes[4].ID() {
		// NodeID derivation is per-slot, so a reused slot re-derives the
		// same id; if that ever changes the intern table must still have
		// dropped the failed attempt.
		if c.IndexByID(deadID) != -1 {
			t.Fatal("failed joiner's id still interned after slot reuse")
		}
	}
	if c.Down(4) {
		t.Fatal("reused slot still marked down")
	}
	if c.LiveCount() != 5 {
		t.Fatalf("LiveCount=%d, want 5", c.LiveCount())
	}
}
