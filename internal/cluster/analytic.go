package cluster

import (
	"fmt"
	"sort"

	"past/internal/id"
	"past/internal/pastry"
	"past/internal/wire"
)

// Bulk analytic network construction.
//
// Protocol construction joins n nodes sequentially, each join routing
// through the overlay and draining its announce traffic — O(n log n)
// messages but with enormous constants (a 100k-node build replays 100k
// join protocols: hours of wall clock). The analytic builder computes the
// same converged state directly from the sorted id ring:
//
//   - Leaf sets are, by definition, the l/2 ring neighbors on each side —
//     read straight off the sorted ring in O(l) per node.
//   - Routing-table slot (row d, col v) of node x must hold A node sharing
//     the first d digits with x whose digit d is v, and the paper fills it
//     with a proximally close such node. Because the ring is sorted, the
//     nodes sharing any given prefix form a contiguous range; recursively
//     partitioning the ring by digit yields every (prefix, next-digit)
//     candidate range in O(n log n) total, and each slot picks the
//     proximally closest of a few deterministic samples from its range.
//   - Neighborhood sets seed from same-stub peers (the topologically
//     nearest nodes by construction).
//
// The state is equivalent to what protocol joins converge to — same slot
// occupancy, same leaf sets, hence same routes and replica placement —
// which TestAnalyticEquivalence asserts against protocol-built networks
// at small n. Occupants of a routing slot may differ (any node with the
// right prefix is correct per section 2.2; the protocol's choice depends
// on join order), which changes no route lengths: hop counts depend on
// prefix progress, not on which correctly-prefixed node makes it.
//
// The build schedules zero simulation events, so the resulting state is
// trivially byte-identical at any shard count.

// rtSamples is how many candidates a routing slot examines; the winner is
// the proximally closest. The paper only requires "a" close node, not the
// closest; 4 samples lands within ~1.3x of the true proximal minimum in
// expectation, matching the locality quality of protocol joins.
const rtSamples = 4

// nbhdSeed bounds how many same-stub peers seed each neighborhood set.
// Sets refill through normal protocol traffic; seeding all M would cost
// M×n ref copies for state most experiments never read.
const nbhdSeed = 8

func (c *Cluster) buildAnalytic() error {
	n := c.Opts.N
	for i := 0; i < n; i++ {
		c.newNode(i)
	}
	refs := make([]wire.NodeRef, n)
	for i, nd := range c.Nodes {
		refs[i] = nd.Ref()
	}

	// ring holds cluster indices sorted by node id; contiguous slices of
	// it are exactly the prefix groups the routing table needs.
	ring := make([]int32, n)
	for i := range ring {
		ring[i] = int32(i)
	}
	sort.Slice(ring, func(a, b int) bool {
		return refs[ring[a]].ID.Less(refs[ring[b]].ID)
	})
	for p := 1; p < n; p++ {
		if refs[ring[p-1]].ID == refs[ring[p]].ID {
			return fmt.Errorf("cluster: duplicate node id %v", refs[ring[p]].ID)
		}
	}

	arena := pastry.NewArena()
	c.seedLeafSets(ring, refs, arena)
	c.seedRoutingTables(ring, refs, arena)
	c.seedNeighborhoods(refs)
	for _, nd := range c.Nodes {
		nd.SeedJoined()
	}
	c.rebuildOracle()
	return nil
}

// seedLeafSets reads each node's halves straight off the sorted ring:
// walking clockwise from a node's ring position visits exactly the larger
// half closest-first, counter-clockwise the smaller half.
func (c *Cluster) seedLeafSets(ring []int32, refs []wire.NodeRef, arena *pastry.Arena) {
	n := len(ring)
	half := c.Opts.Pastry.L / 2
	k := half
	if k > n-1 {
		k = n - 1 // in rings smaller than l the halves overlap, as in the protocol
	}
	for p, xi := range ring {
		larger := arena.Refs(k)
		smaller := arena.Refs(k)
		for j := 0; j < k; j++ {
			larger[j] = refs[ring[(p+1+j)%n]]
			smaller[j] = refs[ring[((p-1-j)%n+n)%n]]
		}
		c.Nodes[xi].SeedLeafHalves(smaller, larger)
	}
}

// span is a contiguous ring range whose ids share the first depth digits.
type span struct {
	lo, hi, depth int
}

// seedRoutingTables fills every populatable slot: for each prefix group
// and each next-digit value present in it, members with a different digit
// get an entry sampled proximally from that value's subrange.
func (c *Cluster) seedRoutingTables(ring []int32, refs []wire.NodeRef, arena *pastry.Arena) {
	b := c.Opts.Pastry.B
	d := 1 << b
	numDigits := id.NumDigits(b)
	seedMix := uint64(c.Opts.Seed) * 0x9E3779B97F4A7C15
	bnd := make([]int, d+1)

	stack := []span{{0, len(ring), 0}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo <= 1 || s.depth >= numDigits {
			continue
		}
		// Subrange boundaries by digit value: bnd[v]..bnd[v+1] holds the
		// members whose digit s.depth equals v. One linear scan; the ring
		// is numerically sorted, so values are non-decreasing.
		v := 0
		bnd[0] = s.lo
		for p := s.lo; p < s.hi; p++ {
			dv := refs[ring[p]].ID.Digit(s.depth, b)
			for v < dv {
				v++
				bnd[v] = p
			}
		}
		for v < d {
			v++
			bnd[v] = s.hi
		}

		for p := s.lo; p < s.hi; p++ {
			xi := ring[p]
			xd := refs[xi].ID.Digit(s.depth, b)
			for col := 0; col < d; col++ {
				size := bnd[col+1] - bnd[col]
				if col == xd || size == 0 {
					continue
				}
				best := int32(-1)
				bestProx := 0.0
				for samp := 0; samp < rtSamples; samp++ {
					h := mix3(seedMix^uint64(xi), uint64(s.depth)<<8|uint64(col), uint64(samp))
					ci := ring[bnd[col]+int(h%uint64(size))]
					prox := c.Topo.Distance(int(xi), int(ci))
					if best == -1 || prox < bestProx {
						best, bestProx = ci, prox
					}
				}
				c.Nodes[xi].SeedRoutingEntry(arena, refs[best], bestProx)
			}
		}
		for v := 0; v < d; v++ {
			if bnd[v+1]-bnd[v] > 1 {
				stack = append(stack, span{bnd[v], bnd[v+1], s.depth + 1})
			}
		}
	}
}

// seedNeighborhoods gives each node up to nbhdSeed same-stub peers,
// proximally closest first — the topologically nearest nodes there are.
func (c *Cluster) seedNeighborhoods(refs []wire.NodeRef) {
	byStub := map[int][]int32{}
	for i := range c.Nodes {
		st := c.Topo.Stub(i)
		byStub[st] = append(byStub[st], int32(i))
	}
	m := c.Opts.Pastry.M
	if m > nbhdSeed {
		m = nbhdSeed
	}
	var peerRefs []wire.NodeRef
	var peerProx []float64
	for i := range c.Nodes {
		peers := byStub[c.Topo.Stub(i)]
		peerRefs = peerRefs[:0]
		peerProx = peerProx[:0]
		for _, pi := range peers {
			if int(pi) == i {
				continue
			}
			peerRefs = append(peerRefs, refs[pi])
			peerProx = append(peerProx, c.Topo.Distance(i, int(pi)))
			if len(peerRefs) == m {
				break
			}
		}
		sort.Sort(&proxSort{peerRefs, peerProx})
		c.Nodes[i].SeedNeighborhood(peerRefs, peerProx)
	}
}

type proxSort struct {
	refs []wire.NodeRef
	prox []float64
}

func (p *proxSort) Len() int           { return len(p.refs) }
func (p *proxSort) Less(a, b int) bool { return p.prox[a] < p.prox[b] }
func (p *proxSort) Swap(a, b int) {
	p.refs[a], p.refs[b] = p.refs[b], p.refs[a]
	p.prox[a], p.prox[b] = p.prox[b], p.prox[a]
}

// mix3 is the splitmix64 finalizer over three mixed words: a cheap,
// deterministic hash driving routing-slot sampling (no rand.Rand state,
// no allocation, identical at any shard count by construction).
func mix3(a, b, s uint64) uint64 {
	z := a ^ b*0xBF58476D1CE4E5B9 ^ s*0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}
