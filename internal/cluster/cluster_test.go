package cluster

import (
	"testing"

	"past/internal/id"
	"past/internal/pastry"
)

func build(t *testing.T, n int, seed int64) (*Cluster, []*Recorder) {
	t.Helper()
	factory, recs := RecorderFactory(n)
	c, err := Build(Options{N: n, Pastry: pastry.DefaultConfig(), Seed: seed, AppFactory: factory})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c, recs
}

func TestBuildValidates(t *testing.T) {
	if _, err := Build(Options{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestOracleNumericallyClosest(t *testing.T) {
	c, _ := build(t, 32, 1)
	for trial := 0; trial < 100; trial++ {
		key := id.Rand(uint64(trial) + 999)
		want := c.NumericallyClosest(key)
		// Brute force over all nodes.
		best := c.Nodes[0].Ref()
		for _, nd := range c.Nodes[1:] {
			if id.Closer(key, nd.ID(), best.ID) {
				best = nd.Ref()
			}
		}
		if want.ID != best.ID {
			t.Fatalf("oracle %s != brute force %s", want.ID.Short(), best.ID.Short())
		}
	}
}

func TestOracleKClosest(t *testing.T) {
	c, _ := build(t, 24, 2)
	key := id.Rand(5)
	got := c.KClosest(key, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	// Each returned node must be at least as close as every excluded node.
	excluded := make(map[id.Node]bool)
	for _, nd := range c.Nodes {
		excluded[nd.ID()] = true
	}
	for _, g := range got {
		delete(excluded, g.ID)
	}
	worst := got[len(got)-1].ID
	for ex := range excluded {
		if id.Closer(key, ex, worst) {
			t.Fatalf("excluded node %s closer than included %s", ex.Short(), worst.Short())
		}
	}
	// Ordered closest-first and deduplicated.
	for i := 1; i < len(got); i++ {
		if id.Closer(key, got[i].ID, got[i-1].ID) {
			t.Fatal("KClosest not ordered")
		}
		if got[i].ID == got[i-1].ID {
			t.Fatal("KClosest duplicated")
		}
	}
}

func TestCrashUpdatesOracle(t *testing.T) {
	c, _ := build(t, 16, 3)
	victim := 5
	victimID := c.Nodes[victim].ID()
	key := victimID // exact key: victim is trivially closest while alive
	if c.NumericallyClosest(key).ID != victimID {
		t.Fatal("setup: victim should be closest to own id")
	}
	c.Crash(victim)
	if !c.Down(victim) {
		t.Fatal("Down not set")
	}
	if c.LiveCount() != 15 {
		t.Fatalf("LiveCount = %d", c.LiveCount())
	}
	if c.NumericallyClosest(key).ID == victimID {
		t.Fatal("oracle still returns crashed node")
	}
	if got := c.IndexByID(victimID); got != victim {
		t.Fatalf("IndexByID = %d", got)
	}
	if c.IndexByID(id.Rand(424242)) != -1 {
		t.Fatal("IndexByID hallucinated")
	}
}

func TestRandomLiveNodeSkipsCrashed(t *testing.T) {
	c, _ := build(t, 8, 4)
	for i := 1; i < 8; i++ {
		c.Crash(i)
	}
	for trial := 0; trial < 20; trial++ {
		if c.RandomLiveNode() != 0 {
			t.Fatal("returned crashed node")
		}
	}
}

func TestRecorderObservesDeliveries(t *testing.T) {
	c, recs := build(t, 8, 5)
	key := id.Rand(77)
	c.Nodes[0].Route(key, ProbeMsg{Seq: 1})
	c.Net.RunUntilIdle()
	total := 0
	for _, r := range recs {
		total += len(r.Deliveries)
	}
	if total != 1 {
		t.Fatalf("deliveries = %d, want 1", total)
	}
}

func TestAddNodeMidRun(t *testing.T) {
	c, err := Build(Options{N: 16, Pastry: pastry.DefaultConfig(), Seed: 9})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	i, err := c.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if i != 16 {
		t.Fatalf("new index = %d, want 16", i)
	}
	if !c.Nodes[i].Joined() {
		t.Fatal("added node did not join")
	}
	if c.LiveCount() != 17 {
		t.Fatalf("LiveCount = %d, want 17", c.LiveCount())
	}
	if got := c.IndexByID(c.Nodes[i].ID()); got != i {
		t.Fatalf("IndexByID = %d, want %d", got, i)
	}
	// The oracle must include the new node immediately.
	if c.NumericallyClosest(c.Nodes[i].ID()).ID != c.Nodes[i].ID() {
		t.Fatal("oracle does not know the added node")
	}
}

func TestGracefulLeaveRepairsPeers(t *testing.T) {
	c, err := Build(Options{N: 16, Pastry: pastry.DefaultConfig(), Seed: 10})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	victim := 4
	victimID := c.Nodes[victim].ID()
	c.Leave(victim)
	if !c.Down(victim) || c.LiveCount() != 15 {
		t.Fatalf("Down=%v LiveCount=%d", c.Down(victim), c.LiveCount())
	}
	c.Leave(victim) // idempotent
	if c.LiveCount() != 15 {
		t.Fatal("double Leave changed live count")
	}
	// Departure announcements propagate without any failure-detection
	// timeout: after the network drains, no live node keeps the departed
	// node in its leaf set.
	c.Net.RunUntilIdle()
	for j, nd := range c.Nodes {
		if c.Down(j) {
			continue
		}
		for _, m := range nd.LeafMembers() {
			if m.ID == victimID {
				t.Fatalf("node %d still lists departed node in leaf set", j)
			}
		}
	}
	// Departed nodes still resolve by id (index bookkeeping is retained).
	if got := c.IndexByID(victimID); got != victim {
		t.Fatalf("IndexByID = %d, want %d", got, victim)
	}
}
