package cluster

import (
	"past/internal/pastry"
	"past/internal/simnet"
	"past/internal/wire"
)

// Delivery records one routed message reaching its destination node.
type Delivery struct {
	NodeIndex int
	Routed    wire.Routed
}

// Recorder is a pastry.App that records deliveries; routing tests and the
// hop-count experiments use it as the application layer.
type Recorder struct {
	pastry.NopApp
	Index      int
	Deliveries []Delivery
	// OnDeliver, if set, observes each delivery as it happens.
	OnDeliver func(d Delivery)
}

// Deliver implements pastry.App.
func (r *Recorder) Deliver(m wire.Routed, from wire.NodeRef) {
	d := Delivery{NodeIndex: r.Index, Routed: m}
	r.Deliveries = append(r.Deliveries, d)
	if r.OnDeliver != nil {
		r.OnDeliver(d)
	}
}

// RecorderFactory builds one Recorder per node and returns both the
// factory (for Options.AppFactory) and the slice that will hold them.
func RecorderFactory(n int) (func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App, []*Recorder) {
	recs := make([]*Recorder, n)
	f := func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App {
		r := &Recorder{Index: i}
		recs[i] = r
		return r
	}
	return f, recs
}

// ProbeMsg is a routed test payload.
type ProbeMsg struct {
	Seq uint64
}

// Kind implements wire.Msg.
func (ProbeMsg) Kind() string { return "probe" }
