// Package cluster assembles simulated PAST networks: a topology, a
// discrete-event network, and N Pastry nodes built by running the real
// join protocol sequentially (the methodology the Pastry evaluation
// assumes — each node arrives, locates a proximally nearby contact, and
// joins before the next arrival). Tests, benchmarks and the experiment
// harness all build networks through this package so they exercise
// identical code.
//
// Besides construction, the package provides the experiment harness's
// ground-truth oracle (NumericallyClosest/KClosest over live membership,
// "the node whose nodeId is numerically closest ... among all live
// nodes"), the failure model of section 2.2 (Crash/Restart, EnableProbes
// for transport-level failure detection), and deterministic randomness
// shared by a whole experiment run.
//
// Options.Shards routes a build — and every run on the resulting network
// — through simnet's sharded conservative-window engine: nodes are
// partitioned by transit domain, the topology's latency floor between
// transit domains becomes the scheduler's lookahead, and each node runs
// on its own endpoint's clock so its timers fire on its shard. Results
// are byte-identical for any positive shard count; see
// internal/simnet/shard.go for the argument.
package cluster
