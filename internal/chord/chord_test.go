package chord

import (
	"math"
	"math/rand"
	"testing"

	"past/internal/id"
)

func buildRing(n int, seed int64) *Ring {
	ids := make([]id.Node, n)
	idx := make([]int, n)
	rng := rand.New(rand.NewSource(seed))
	for i := range ids {
		ids[i] = id.Rand(rng.Uint64())
		idx[i] = i
	}
	return Build(ids, idx)
}

func TestPow2(t *testing.T) {
	one := pow2(0)
	if one.Digit(id.NumDigits(4)-1, 4) != 1 {
		t.Fatal("2^0 wrong")
	}
	x := pow2(127)
	if x[0] != 0x80 {
		t.Fatal("2^127 wrong")
	}
	if pow2(8)[id.NodeBytes-2] != 1 {
		t.Fatal("2^8 wrong")
	}
}

func TestSuccessorWraps(t *testing.T) {
	r := buildRing(32, 1)
	nodes := r.Nodes()
	// A key just above the largest node wraps to the smallest.
	largest := nodes[len(nodes)-1].ID
	key := largest.Add(pow2(0))
	if r.Successor(key) != nodes[0] {
		t.Fatal("successor did not wrap")
	}
	// A key equal to a node id maps to that node.
	if r.Successor(nodes[5].ID) != nodes[5] {
		t.Fatal("successor of own id should be self")
	}
}

func TestRouteReachesSuccessor(t *testing.T) {
	r := buildRing(128, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		key := id.Rand(rng.Uint64())
		from := r.Nodes()[rng.Intn(r.Len())]
		hops, _, final := r.Route(from, key, nil)
		if final != r.Successor(key) {
			t.Fatalf("trial %d: route ended at wrong node", trial)
		}
		if hops > 2*int(math.Log2(float64(r.Len())))+4 {
			t.Fatalf("trial %d: %d hops is not O(log n)", trial, hops)
		}
	}
}

func TestRouteFromOwnKeyZeroHops(t *testing.T) {
	r := buildRing(16, 4)
	n := r.Nodes()[3]
	hops, dist, final := r.Route(n, n.ID, nil)
	if hops != 0 || dist != 0 || final != n {
		t.Fatalf("self-route: hops=%d dist=%f", hops, dist)
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	avg := func(n int) float64 {
		r := buildRing(n, 6)
		total := 0
		const trials = 400
		for i := 0; i < trials; i++ {
			key := id.Rand(rng.Uint64())
			from := r.Nodes()[rng.Intn(r.Len())]
			h, _, _ := r.Route(from, key, nil)
			total += h
		}
		return float64(total) / trials
	}
	small := avg(64)
	big := avg(1024)
	// Chord averages ~0.5*log2(N); quadrupling... 16x nodes adds ~2 hops.
	if big-small > 4 || big < small {
		t.Fatalf("hops did not grow logarithmically: %f -> %f", small, big)
	}
	if big >= 0.5*math.Log2(1024)+2.5 {
		t.Fatalf("chord hops %f far above theory", big)
	}
}

func TestRouteAccumulatesDistance(t *testing.T) {
	r := buildRing(64, 7)
	rng := rand.New(rand.NewSource(8))
	prox := func(a, b int) float64 { return 1 }
	key := id.Rand(rng.Uint64())
	from := r.Nodes()[0]
	hops, dist, _ := r.Route(from, key, prox)
	if float64(hops) != dist {
		t.Fatalf("unit proximity: dist %f != hops %d", dist, hops)
	}
}

func TestFingerCount(t *testing.T) {
	r := buildRing(256, 9)
	for _, n := range r.Nodes()[:8] {
		fc := n.FingerCount()
		// Chord theory: ~log2(N) distinct fingers.
		if fc < 4 || fc > 2*int(math.Log2(256))+4 {
			t.Fatalf("finger count %d implausible for n=256", fc)
		}
	}
}

func TestBuildValidatesInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched input should panic")
		}
	}()
	Build(make([]id.Node, 2), make([]int, 3))
}

func BenchmarkChordRoute(b *testing.B) {
	r := buildRing(1024, 10)
	rng := rand.New(rand.NewSource(11))
	keys := make([]id.Node, 256)
	for i := range keys {
		keys[i] = id.Rand(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(r.Nodes()[i%r.Len()], keys[i%256], nil)
	}
}
