// Package chord implements a Chord-style routing baseline for comparison
// with Pastry, as discussed in the paper's related-work section (section
// 3): Chord "forwards messages based on numerical difference with the
// destination address" and "makes no explicit effort to achieve good
// network locality". Experiment E13 (internal/experiments) uses it as the
// comparison DHT for hop counts and route-distance penalties.
//
// The implementation covers Chord's routing structure — an m-entry finger
// table per node (finger[i] = successor(n + 2^i)) plus a successor — built
// over the same simulated network and topology as the Pastry nodes, so
// hop counts and proximity penalties are directly comparable. Ring
// maintenance (stabilization) is not modelled; experiments construct the
// ring from the known membership, which matches how the baseline numbers
// in the DHT literature are produced. Routing is a pure computation over
// that structure (no messages are exchanged), so the baseline adds
// nothing to simulator load.
package chord
