package chord

import (
	"sort"

	"past/internal/id"
)

// M is the identifier width in bits (Chord's m); we reuse the 128-bit
// Pastry node identifier space for comparability.
const M = id.NodeBits

// Node is a Chord routing node.
type Node struct {
	ID id.Node
	// Index is the owner-assigned dense index (topology node id).
	Index int
	// fingers[i] points to successor(ID + 2^i); fingers[0] is the
	// immediate successor.
	fingers []ref
}

type ref struct {
	id    id.Node
	index int
}

// Ring is a fully built Chord ring supporting oracle-free routing
// simulation.
type Ring struct {
	nodes []*Node // sorted by id
	byID  map[id.Node]*Node
}

// Build constructs a ring from (id, index) pairs and fills every finger
// table.
func Build(ids []id.Node, indexes []int) *Ring {
	if len(ids) != len(indexes) {
		panic("chord: ids and indexes length mismatch")
	}
	r := &Ring{byID: make(map[id.Node]*Node, len(ids))}
	for i := range ids {
		n := &Node{ID: ids[i], Index: indexes[i]}
		r.nodes = append(r.nodes, n)
		r.byID[n.ID] = n
	}
	sort.Slice(r.nodes, func(a, b int) bool { return r.nodes[a].ID.Less(r.nodes[b].ID) })
	for _, n := range r.nodes {
		n.fingers = make([]ref, M)
		for i := 0; i < M; i++ {
			target := n.ID.Add(pow2(i))
			s := r.successor(target)
			n.fingers[i] = ref{id: s.ID, index: s.Index}
		}
	}
	return r
}

// pow2 returns 2^i as a 128-bit identifier.
func pow2(i int) id.Node {
	var n id.Node
	byteIdx := id.NodeBytes - 1 - i/8
	n[byteIdx] = 1 << (i % 8)
	return n
}

// successor returns the first node whose id is >= target on the ring.
func (r *Ring) successor(target id.Node) *Node {
	i := sort.Search(len(r.nodes), func(i int) bool {
		return !r.nodes[i].ID.Less(target)
	})
	return r.nodes[i%len(r.nodes)]
}

// Len returns the ring size.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring membership sorted by id.
func (r *Ring) Nodes() []*Node { return r.nodes }

// Route simulates Chord's greedy routing from the node `from` toward key:
// at each step the message moves to the finger that most closely precedes
// the key, terminating at the key's successor. It returns the hop
// sequence's node indexes (excluding the origin, including the final
// node). dist accumulates a caller-supplied proximity metric.
func (r *Ring) Route(from *Node, key id.Node, proximity func(a, b int) float64) (hops int, distance float64, final *Node) {
	cur := from
	dest := r.successor(key)
	for cur != dest {
		next := r.closestPreceding(cur, key)
		if next == cur {
			// No finger precedes the key: take the successor.
			next = r.byID[cur.fingers[0].id]
		}
		if proximity != nil {
			distance += proximity(cur.Index, next.Index)
		}
		hops++
		cur = next
		if hops > 4*M {
			break // defensive: should never happen on a valid ring
		}
	}
	return hops, distance, cur
}

// closestPreceding returns the finger that most closely precedes key,
// strictly between cur and key on the ring; cur itself when none does.
func (r *Ring) closestPreceding(cur *Node, key id.Node) *Node {
	for i := M - 1; i >= 0; i-- {
		f := cur.fingers[i]
		if inOpenInterval(f.id, cur.ID, key) {
			return r.byID[f.id]
		}
	}
	return cur
}

// inOpenInterval reports x ∈ (a, b) on the ring.
func inOpenInterval(x, a, b id.Node) bool {
	if x == a || x == b {
		return false
	}
	return id.Between(x, a, b)
}

// Successor exposes the ring successor of a key (the node that owns it).
func (r *Ring) Successor(key id.Node) *Node { return r.successor(key) }

// FingerCount returns the number of distinct nodes in a node's finger
// table, the Chord state-size metric compared against Pastry's table size.
func (n *Node) FingerCount() int {
	seen := make(map[id.Node]bool, M)
	for _, f := range n.fingers {
		seen[f.id] = true
	}
	return len(seen)
}
