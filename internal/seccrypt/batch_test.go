package seccrypt

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"testing"
)

// TestVerifySingleMatchesStdlib property-tests the table-cached single
// verifier against crypto/ed25519.Verify over valid, corrupted and
// non-canonical inputs.
func TestVerifySingleMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pub, priv, err := ed25519.GenerateKey(rng)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 1+rng.Intn(300))
		rng.Read(msg)
		sig := ed25519.Sign(priv, msg)
		mutate := func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[rng.Intn(len(out))] ^= 1 << uint(rng.Intn(8))
			return out
		}
		cases := []struct {
			name          string
			pub, msg, sig []byte
		}{
			{"valid", pub, msg, sig},
			{"bad-sig", pub, msg, mutate(sig)},
			{"bad-msg", pub, mutate(msg), sig},
			{"bad-pub", mutate(pub), msg, sig},
			{"high-s", pub, msg, func() []byte {
				out := append([]byte(nil), sig...)
				out[63] |= 0xe0 // push s out of canonical range
				return out
			}()},
		}
		for _, c := range cases {
			want := ed25519.Verify(c.pub, c.msg, c.sig)
			if got := verifySingle(c.pub, c.msg, c.sig); got != want {
				t.Fatalf("trial %d %s: verifySingle=%v stdlib=%v", trial, c.name, got, want)
			}
		}
	}
}

// TestDeferredBatchProperty cross-checks deferred batch verdicts
// against ed25519.Verify: all-valid batches pass, forged members are
// identified exactly, and truncated keys or signatures resolve to
// false without panicking. Messages carry a per-trial nonce so every
// flush misses the memo and genuinely exercises the batch equation.
func TestDeferredBatchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		pubs := make([][]byte, n)
		msgs := make([][]byte, n)
		sigs := make([][]byte, n)
		want := make([]bool, n)
		for i := 0; i < n; i++ {
			pub, priv, err := ed25519.GenerateKey(rng)
			if err != nil {
				t.Fatal(err)
			}
			msg := make([]byte, 1+rng.Intn(200))
			rng.Read(msg)
			msg = append(msg, []byte(fmt.Sprintf("|batch|%d|%d", trial, i))...)
			pubs[i], msgs[i], sigs[i] = pub, msg, ed25519.Sign(priv, msg)
		}
		// Corrupt a random subset (possibly empty) in assorted ways.
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0: // flip a signature bit
				sigs[i][rng.Intn(64)] ^= 1 << uint(rng.Intn(8))
			case 1: // flip a message bit
				msgs[i][rng.Intn(len(msgs[i]))] ^= 1
			case 2: // truncate the key
				pubs[i] = pubs[i][:16]
			case 3: // truncate the signature
				sigs[i] = sigs[i][:32]
			default: // leave valid
			}
			if len(pubs[i]) == ed25519.PublicKeySize {
				want[i] = ed25519.Verify(pubs[i], msgs[i], sigs[i])
			} else {
				want[i] = false // deferred semantics: bad sizes are false, not a panic
			}
		}

		d := NewDeferred()
		for i := range pubs {
			msg := msgs[i]
			slot := d.Defer(pubs[i], sigs[i], func(buf []byte) []byte { return append(buf, msg...) })
			if slot != i {
				t.Fatalf("slot %d != %d", slot, i)
			}
		}
		allWant := true
		for _, w := range want {
			allWant = allWant && w
		}
		if all := d.Flush(); all != allWant {
			t.Fatalf("trial %d: Flush=%v want %v", trial, all, allWant)
		}
		for i := range want {
			if d.Ok(i) != want[i] {
				t.Fatalf("trial %d item %d: deferred=%v want=%v (n=%d)", trial, i, d.Ok(i), want[i], n)
			}
		}
		d.Release()
	}
}

// TestDeferredMemoFeedback asserts flushed verdicts land in the memo:
// a later memoVerify of the same triple must hit, with the verdict the
// batch produced.
func TestDeferredMemoFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("memo-feedback-nonce-v1")
	sig := ed25519.Sign(priv, msg)
	forged := append([]byte(nil), sig...)
	forged[10] ^= 0x40

	d := NewDeferred()
	i := d.Defer(pub, sig, func(buf []byte) []byte { return append(buf, msg...) })
	j := d.Defer(pub, forged, func(buf []byte) []byte { return append(buf, msg...) })
	if d.Flush() {
		t.Fatal("flush with a forged member reported all-ok")
	}
	if !d.Ok(i) || d.Ok(j) {
		t.Fatalf("verdicts: valid=%v forged=%v", d.Ok(i), d.Ok(j))
	}
	d.Release()

	h0, _ := MemoStats()
	if !memoVerify(pub, msg, sig) {
		t.Fatal("memoVerify rejected a signature the flush verified")
	}
	if memoVerify(pub, msg, forged) {
		t.Fatal("memoVerify accepted the forged signature")
	}
	h1, _ := MemoStats()
	if h1 != h0+2 {
		t.Fatalf("expected two memo hits after flush feedback (hits %d -> %d)", h0, h1)
	}
}

func BenchmarkVerifySingleCached(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pub, priv, _ := ed25519.GenerateKey(rng)
	msg := make([]byte, 200)
	rng.Read(msg)
	sig := ed25519.Sign(priv, msg)
	if !verifySingle(pub, msg, sig) {
		b.Fatal("bad fixture")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verifySingle(pub, msg, sig)
	}
}

func BenchmarkDeferredFlush(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			pubs := make([][]byte, n)
			sigs := make([][]byte, n)
			msgs := make([][]byte, n)
			privs := make([]ed25519.PrivateKey, n)
			for i := 0; i < n; i++ {
				pub, priv, _ := ed25519.GenerateKey(rng)
				pubs[i], privs[i] = pub, priv
				msgs[i] = make([]byte, 200)
				rng.Read(msgs[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				b.StopTimer()
				// Fresh message per iteration so every flush really
				// runs the batch equation instead of hitting the memo.
				for i := 0; i < n; i++ {
					msgs[i][0] = byte(it)
					msgs[i][1] = byte(it >> 8)
					msgs[i][2] = byte(it >> 16)
					msgs[i][3] = byte(i)
					sigs[i] = ed25519.Sign(privs[i], msgs[i])
				}
				b.StartTimer()
				d := NewDeferred()
				for i := 0; i < n; i++ {
					msg := msgs[i]
					d.Defer(pubs[i], sigs[i], func(buf []byte) []byte { return append(buf, msg...) })
				}
				if !d.Flush() {
					b.Fatal("valid batch rejected")
				}
				d.Release()
			}
		})
	}
}
