package seccrypt

// Signature-verification memoization.
//
// PAST re-verifies the same certificates many times on the hot path: an
// insert's file certificate is checked by the root and then independently
// by each of the k replica holders (plus every caching node along the
// route), and each of those checks also re-verifies the owner card's
// broker certification. A single ed25519.Verify costs tens of
// microseconds; hashing the verified triple costs well under one. The
// memo below caches Verify outcomes keyed by a collision-resistant digest
// of (public key, signature, message body), so each distinct certificate
// is verified cryptographically once per process and served from the
// cache thereafter.
//
// Safety: the cache key commits to the exact public key, signature and
// serialized body bytes. Any mutation of a certificate field changes the
// body serialization (or the signature), producing a different key and
// therefore a cache miss — a stale positive is impossible short of a
// SHA-256 collision. Negative outcomes are cached too, which also
// rate-limits repeated garbage. Expiry checks stay outside the memo:
// only the pure signature relation is cached, never time-dependent
// verdicts.

import (
	"crypto/ed25519"
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

const (
	// memoStripeCount is the number of independently locked LRU shards;
	// a power of two so the shard index is a cheap mask. Striping keeps
	// the memo uncontended when the parallel experiment engine runs many
	// simulations at once.
	memoStripeCount = 16
	// memoStripeCap bounds each shard; the memo holds at most
	// memoStripeCount*memoStripeCap outcomes (~8k certificates, ~300 KiB).
	memoStripeCap = 512
)

// memoKey is the SHA-256 of pubkey ‖ signature ‖ body. The fixed widths
// of ed25519 keys (32 B) and signatures (64 B) make the concatenation
// unambiguous.
type memoKey [sha256.Size]byte

// memoStripe is one shard: a fixed-capacity exact LRU over an intrusive
// doubly-linked list of preallocated slots (no per-entry allocation).
type memoStripe struct {
	mu    sync.Mutex
	index map[memoKey]int32
	slots []memoSlot
	head  int32 // most recently used, -1 when empty
	tail  int32 // least recently used, -1 when empty
}

type memoSlot struct {
	key        memoKey
	ok         bool
	prev, next int32
}

type verifyMemo struct {
	stripes [memoStripeCount]memoStripe
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// memo is the process-wide verification cache.
var memo verifyMemo

// MemoStats returns the cumulative hit and miss counts of the
// verification memo (for benchmarks and tests).
func MemoStats() (hits, misses uint64) {
	return memo.hits.Load(), memo.misses.Load()
}

// memoLookup probes the memo for key, owning the stripe selection and
// the hit accounting. Every memo consumer (memoVerify and the deferred
// queue) goes through this pair, so the striping scheme and the stats
// live in one place: hits count served probes, misses count fresh
// cryptographic resolutions (memoStore is called exactly once per
// freshly verified signature, including each member of a batch).
func memoLookup(key memoKey) (ok, found bool) {
	ok, found = memo.stripes[key[0]&(memoStripeCount-1)].lookup(key)
	if found {
		memo.hits.Add(1)
	}
	return ok, found
}

// memoStore records a freshly resolved verification verdict under key.
func memoStore(key memoKey, ok bool) {
	memo.misses.Add(1)
	memo.stripes[key[0]&(memoStripeCount-1)].store(key, ok)
}

// lookup returns the cached outcome for key, promoting it to
// most-recently-used.
func (s *memoStripe) lookup(key memoKey) (ok, found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, found := s.index[key]
	if !found {
		return false, false
	}
	s.moveToFront(i)
	return s.slots[i].ok, true
}

// store records an outcome, evicting the least-recently-used entry when
// the stripe is full.
func (s *memoStripe) store(key memoKey, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		s.index = make(map[memoKey]int32, memoStripeCap)
		s.slots = make([]memoSlot, 0, memoStripeCap)
		s.head, s.tail = -1, -1
	}
	if i, found := s.index[key]; found {
		s.slots[i].ok = ok
		s.moveToFront(i)
		return
	}
	var i int32
	if len(s.slots) < memoStripeCap {
		i = int32(len(s.slots))
		s.slots = append(s.slots, memoSlot{})
	} else {
		i = s.tail
		s.unlink(i)
		delete(s.index, s.slots[i].key)
	}
	s.slots[i] = memoSlot{key: key, ok: ok, prev: -1, next: s.head}
	if s.head >= 0 {
		s.slots[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
	s.index[key] = i
}

// unlink detaches slot i from the LRU list. Lock held.
func (s *memoStripe) unlink(i int32) {
	sl := &s.slots[i]
	if sl.prev >= 0 {
		s.slots[sl.prev].next = sl.next
	} else {
		s.head = sl.next
	}
	if sl.next >= 0 {
		s.slots[sl.next].prev = sl.prev
	} else {
		s.tail = sl.prev
	}
	sl.prev, sl.next = -1, -1
}

// moveToFront promotes slot i to most-recently-used. Lock held by caller.
func (s *memoStripe) moveToFront(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	s.slots[i].next = s.head
	if s.head >= 0 {
		s.slots[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}

// bodyPool recycles the scratch buffers used to serialize certificate
// bodies and memo key material, so verification allocates nothing in
// steady state.
var bodyPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getBody() *[]byte  { return bodyPool.Get().(*[]byte) }
func putBody(b *[]byte) { bodyPool.Put(b) }

// verifyBody serializes a signed body into a pooled scratch buffer via
// build and checks sig over it through the memo. All Verify* helpers
// funnel through here so the pool handling lives in one place.
func verifyBody(pub ed25519.PublicKey, sig []byte, build func(buf []byte) []byte) bool {
	bp := getBody()
	body := build((*bp)[:0])
	ok := memoVerify(pub, body, sig)
	*bp = body
	putBody(bp)
	return ok
}

// memoVerify reports whether sig is a valid ed25519 signature of body
// under pub, consulting the memo first. Inputs of non-canonical sizes
// bypass the memo and fall through to ed25519.Verify so its semantics
// (including the panic on a wrong-sized public key) are preserved.
func memoVerify(pub ed25519.PublicKey, body, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return ed25519.Verify(pub, body, sig)
	}
	kb := getBody()
	mat := append((*kb)[:0], pub...)
	mat = append(mat, sig...)
	mat = append(mat, body...)
	key := memoKey(sha256.Sum256(mat))
	*kb = mat
	putBody(kb)

	if ok, found := memoLookup(key); found {
		return ok
	}
	// verifySingle (batch.go) is bit-compatible with ed25519.Verify for
	// the canonical sizes guaranteed above, and reuses the per-key
	// precomputation cache. memoStore accounts the miss.
	ok := verifySingle(pub, body, sig)
	memoStore(key, ok)
	return ok
}
