// Package seccrypt implements PAST's security substrate (section 2.1 of
// the paper): Ed25519 key pairs, brokers that certify smartcards,
// smartcards that generate nodeIds, file certificates, reclaim
// certificates and receipts, and the storage-quota ledger the smartcards
// maintain.
//
// A Smartcard here is an in-process struct holding a private key and a
// quota ledger whose exported API is exactly the narrow operation set the
// paper assigns to the tamper-resistant card: issue file certificates
// (debiting quota), issue reclaim certificates, verify receipts (crediting
// quota), and report the node's contributed storage. See ARCHITECTURE.md for
// the substitution rationale.
package seccrypt

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"past/internal/id"
	"past/internal/wire"
)

// Errors returned by certificate and quota operations.
var (
	ErrQuotaExceeded   = errors.New("seccrypt: storage quota exceeded")
	ErrBadSignature    = errors.New("seccrypt: bad signature")
	ErrBadCardCert     = errors.New("seccrypt: smartcard not certified by broker")
	ErrWrongOwner      = errors.New("seccrypt: certificate owner mismatch")
	ErrContentMismatch = errors.New("seccrypt: content hash mismatch")
	ErrBadFileID       = errors.New("seccrypt: fileId does not match certificate fields")
	ErrExpired         = errors.New("seccrypt: smartcard expired")
)

// Broker is the third party of section 1 that issues smartcards and
// balances storage supply and demand. Its knowledge is limited to the
// cards it has circulated, their quotas and expiration dates.
type Broker struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey

	mu          sync.Mutex
	issued      int
	quotaTotal  int64
	supplyTotal int64
}

// NewBroker creates a broker with a fresh key pair. rng may be nil, in
// which case crypto/rand is used; experiments pass a deterministic reader.
func NewBroker(rng io.Reader) (*Broker, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("seccrypt: broker keygen: %w", err)
	}
	return &Broker{pub: pub, priv: priv}, nil
}

// PublicKey returns the broker's certification key. Every node in a PAST
// network is configured with the broker keys it trusts.
func (b *Broker) PublicKey() ed25519.PublicKey { return b.pub }

// CardsIssued returns the number of smartcards the broker has circulated.
func (b *Broker) CardsIssued() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.issued
}

// Balance returns the total usage quota issued and the total storage
// contribution pledged across all cards, which the broker uses to keep
// supply and demand in balance (section 2.1, "System integrity").
func (b *Broker) Balance() (demand, supply int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.quotaTotal, b.supplyTotal
}

// IssueCard creates a smartcard with the given usage quota (bytes the user
// may consume, multiplied out by replication) and contribution (bytes the
// associated node offers to the system; zero for pure clients).
// expiresUnix of zero means no expiry.
func (b *Broker) IssueCard(quota, contribution int64, expiresUnix int64, rng io.Reader) (*Smartcard, error) {
	if quota < 0 || contribution < 0 {
		return nil, fmt.Errorf("seccrypt: negative quota or contribution")
	}
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("seccrypt: card keygen: %w", err)
	}
	cert := b.signCard(pub, expiresUnix)
	b.mu.Lock()
	b.issued++
	b.quotaTotal += quota
	b.supplyTotal += contribution
	b.mu.Unlock()
	return &Smartcard{
		pub:          pub,
		priv:         priv,
		cardCert:     cert,
		expires:      expiresUnix,
		quota:        quota,
		contribution: contribution,
		brokerPub:    b.pub,
	}, nil
}

// appendCardCertBody serializes the byte string the broker signs — card
// public key plus expiry — into buf, which may come from bodyPool.
func appendCardCertBody(buf []byte, pub ed25519.PublicKey, expiresUnix int64) []byte {
	buf = append(buf, pub...)
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(expiresUnix))
	return append(buf, e[:]...)
}

func cardCertBody(pub ed25519.PublicKey, expiresUnix int64) []byte {
	return appendCardCertBody(make([]byte, 0, len(pub)+8), pub, expiresUnix)
}

func (b *Broker) signCard(pub ed25519.PublicKey, expiresUnix int64) []byte {
	sig := ed25519.Sign(b.priv, cardCertBody(pub, expiresUnix))
	// A card certificate is expiry ‖ signature so verifiers can reproduce
	// the signed body from the card's public key.
	cert := make([]byte, 8+len(sig))
	binary.BigEndian.PutUint64(cert[:8], uint64(expiresUnix))
	copy(cert[8:], sig)
	return cert
}

// VerifyCardCert checks that cardCert certifies pub under brokerPub and
// that the card has not expired at nowUnix.
func VerifyCardCert(brokerPub ed25519.PublicKey, pub, cardCert []byte, nowUnix int64) error {
	if len(cardCert) < 8+ed25519.SignatureSize {
		return ErrBadCardCert
	}
	expires := int64(binary.BigEndian.Uint64(cardCert[:8]))
	if !verifyBody(brokerPub, cardCert[8:], func(buf []byte) []byte {
		return appendCardCertBody(buf, pub, expires)
	}) {
		return ErrBadCardCert
	}
	if expires != 0 && nowUnix > expires {
		return ErrExpired
	}
	return nil
}

// ---------------------------------------------------------------------------
// Smartcard

// Smartcard models the per-user/per-node tamper-resistant card. All
// signing happens "inside" the card; the private key never leaves it.
type Smartcard struct {
	pub          ed25519.PublicKey
	priv         ed25519.PrivateKey
	cardCert     []byte
	expires      int64
	brokerPub    ed25519.PublicKey
	contribution int64

	mu    sync.Mutex
	quota int64 // remaining usable quota in bytes (already × replication)
}

// PublicKey returns the card's public key; the user's pseudonym.
func (c *Smartcard) PublicKey() ed25519.PublicKey { return c.pub }

// CardCert returns the broker's certification of this card.
func (c *Smartcard) CardCert() []byte { return c.cardCert }

// NodeID derives the card's node identifier from a cryptographic hash of
// its public key (section 2.1, "Generation of nodeIds").
func (c *Smartcard) NodeID() id.Node { return id.HashNode(c.pub) }

// Contribution returns the storage the associated node pledged to offer.
func (c *Smartcard) Contribution() int64 { return c.contribution }

// RemainingQuota returns the unspent usage quota in bytes.
func (c *Smartcard) RemainingQuota() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quota
}

// appendFileCertBody serializes the signed portion of a file certificate
// into buf, which may come from bodyPool.
func appendFileCertBody(buf []byte, c *wire.FileCertificate) []byte {
	buf = append(buf, c.FileID[:]...)
	buf = append(buf, c.ContentHash[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(c.Size))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(c.Replicas))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(c.Issued))
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(len(c.Salt)))
	buf = append(buf, c.Salt...)
	buf = append(buf, c.OwnerPub...)
	return buf
}

// IssueFileCertificate generates the certificate required before inserting
// a file (section 2.1, "Generation of file certificates"). The card
// computes the fileId from the file's textual name, the owner's public key
// and the salt, debits quota by size × replicas, and signs. The caller
// supplies the content hash, as in the paper ("computed by the client
// node").
func (c *Smartcard) IssueFileCertificate(name string, content []byte, replicas int, salt []byte, nowUnix int64) (wire.FileCertificate, error) {
	var cert wire.FileCertificate
	if replicas <= 0 {
		return cert, fmt.Errorf("seccrypt: replicas must be positive, got %d", replicas)
	}
	if c.expires != 0 && nowUnix > c.expires {
		return cert, ErrExpired
	}
	need := int64(len(content)) * int64(replicas)
	c.mu.Lock()
	if c.quota < need {
		c.mu.Unlock()
		return cert, fmt.Errorf("%w: need %d, have %d", ErrQuotaExceeded, need, c.quota)
	}
	c.quota -= need
	c.mu.Unlock()

	cert = wire.FileCertificate{
		FileID:      id.HashFile(name, c.pub, salt),
		ContentHash: ContentHash(content),
		Size:        int64(len(content)),
		Replicas:    replicas,
		Salt:        append([]byte(nil), salt...),
		Issued:      nowUnix,
		OwnerPub:    append([]byte(nil), c.pub...),
		CardCert:    c.cardCert,
	}
	bp := getBody()
	body := appendFileCertBody((*bp)[:0], &cert)
	cert.Sig = ed25519.Sign(c.priv, body)
	*bp = body
	putBody(bp)
	return cert, nil
}

// RefundFileCertificate credits back the quota debited for a certificate
// whose insertion was rejected by the network (file diversion may exhaust
// its retries; the user must not lose quota for storage never consumed).
func (c *Smartcard) RefundFileCertificate(cert *wire.FileCertificate) {
	c.mu.Lock()
	c.quota += cert.Size * int64(cert.Replicas)
	c.mu.Unlock()
}

// appendReclaimCertBody serializes the signed portion of a reclaim
// certificate into buf, which may come from bodyPool.
func appendReclaimCertBody(buf []byte, c *wire.ReclaimCertificate) []byte {
	buf = append(buf, c.FileID[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(c.Issued))
	buf = append(buf, tmp[:]...)
	buf = append(buf, c.OwnerPub...)
	return buf
}

func reclaimCertBody(c *wire.ReclaimCertificate) []byte {
	return appendReclaimCertBody(make([]byte, 0, 64+len(c.OwnerPub)), c)
}

// IssueReclaimCertificate authorizes reclaiming the storage of fileID
// (section 2.1, "Generation of reclaim certificates").
func (c *Smartcard) IssueReclaimCertificate(fileID id.File, nowUnix int64) (wire.ReclaimCertificate, error) {
	if c.expires != 0 && nowUnix > c.expires {
		return wire.ReclaimCertificate{}, ErrExpired
	}
	cert := wire.ReclaimCertificate{
		FileID:   fileID,
		Issued:   nowUnix,
		OwnerPub: append([]byte(nil), c.pub...),
		CardCert: c.cardCert,
	}
	cert.Sig = ed25519.Sign(c.priv, reclaimCertBody(&cert))
	return cert, nil
}

// CreditReclaimReceipt verifies a storage node's reclaim receipt and
// credits the freed amount against the user's quota (section 2.1,
// "Storage quotas"). The receipt must be signed by the storage node's
// certified card.
func (c *Smartcard) CreditReclaimReceipt(r *wire.ReclaimReceipt, nowUnix int64) error {
	if err := VerifyReclaimReceipt(c.brokerPub, r, nowUnix); err != nil {
		return err
	}
	c.mu.Lock()
	c.quota += r.Freed
	c.mu.Unlock()
	return nil
}

// SignStoreReceipt makes this (storage node's) card issue a store receipt
// for a file it has stored (section 2.1: "Each storage node that has
// successfully stored a copy of the file then issues and returns a store
// receipt").
func (c *Smartcard) SignStoreReceipt(r *wire.StoreReceipt) {
	r.NodePub = append([]byte(nil), c.pub...)
	r.Sig = ed25519.Sign(c.priv, storeReceiptBody(r))
}

// appendStoreReceiptBody serializes the signed portion of a store receipt
// into buf, which may come from bodyPool.
func appendStoreReceiptBody(buf []byte, r *wire.StoreReceipt) []byte {
	buf = append(buf, r.FileID[:]...)
	buf = append(buf, r.StoredBy.ID[:]...)
	buf = append(buf, r.OnBehalfOf.ID[:]...)
	if r.Diverted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(r.Size))
	buf = append(buf, tmp[:]...)
	return buf
}

func storeReceiptBody(r *wire.StoreReceipt) []byte {
	return appendStoreReceiptBody(make([]byte, 0, 96), r)
}

// VerifyStoreReceipt checks a store receipt's signature and that the
// signing card's nodeId matches the node that claims to have stored.
func VerifyStoreReceipt(r *wire.StoreReceipt) error {
	if err := VerifyStoreReceiptBinding(r); err != nil {
		return err
	}
	if !verifyBody(ed25519.PublicKey(r.NodePub), r.Sig, func(buf []byte) []byte {
		return appendStoreReceiptBody(buf, r)
	}) {
		return ErrBadSignature
	}
	return nil
}

// VerifyStoreReceiptBinding performs the non-cryptographic half of
// VerifyStoreReceipt: the signing key has canonical size and its hash
// matches the node that claims to have stored. Callers deferring the
// signature check into a batch (Deferred.DeferStoreReceipt) run this
// part eagerly.
func VerifyStoreReceiptBinding(r *wire.StoreReceipt) error {
	if len(r.NodePub) != ed25519.PublicKeySize {
		return ErrBadSignature
	}
	if id.HashNode(r.NodePub) != r.StoredBy.ID {
		return fmt.Errorf("%w: receipt signer is not the storing node", ErrBadSignature)
	}
	return nil
}

// SignReclaimReceipt makes this (storage node's) card issue a reclaim
// receipt for storage it freed.
func (c *Smartcard) SignReclaimReceipt(r *wire.ReclaimReceipt) {
	r.NodePub = append([]byte(nil), c.pub...)
	r.Sig = ed25519.Sign(c.priv, reclaimReceiptBody(r))
}

// appendReclaimReceiptBody serializes the signed portion of a reclaim
// receipt into buf, which may come from bodyPool.
func appendReclaimReceiptBody(buf []byte, r *wire.ReclaimReceipt) []byte {
	buf = append(buf, r.FileID[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(r.Freed))
	buf = append(buf, tmp[:]...)
	buf = append(buf, r.By.ID[:]...)
	return buf
}

func reclaimReceiptBody(r *wire.ReclaimReceipt) []byte {
	return appendReclaimReceiptBody(make([]byte, 0, 64), r)
}

// VerifyReclaimReceipt checks a reclaim receipt's signature.
func VerifyReclaimReceipt(brokerPub ed25519.PublicKey, r *wire.ReclaimReceipt, nowUnix int64) error {
	if len(r.NodePub) != ed25519.PublicKeySize {
		return ErrBadSignature
	}
	if !verifyBody(ed25519.PublicKey(r.NodePub), r.Sig, func(buf []byte) []byte {
		return appendReclaimReceiptBody(buf, r)
	}) {
		return ErrBadSignature
	}
	if id.HashNode(r.NodePub) != r.By.ID {
		return fmt.Errorf("%w: reclaim receipt signer is not the freeing node", ErrBadSignature)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Verification helpers used by storage nodes and clients

// VerifyFileCertificate performs the checks of section 2.1 that a storing
// node runs on an arriving insert: the owner's card is broker-certified,
// the signature is valid, and the fileId is authentic (derived from owner
// key and salt — wrong fileIds would let an attacker target storage at
// chosen nodes). Content is checked separately, by VerifyContent, because
// intermediate nodes hold the certificate without the data.
func VerifyFileCertificate(brokerPub ed25519.PublicKey, cert *wire.FileCertificate, nowUnix int64) error {
	if len(cert.OwnerPub) != ed25519.PublicKeySize {
		return ErrBadSignature
	}
	if err := VerifyCardCert(brokerPub, cert.OwnerPub, cert.CardCert, nowUnix); err != nil {
		return err
	}
	if !verifyBody(ed25519.PublicKey(cert.OwnerPub), cert.Sig, func(buf []byte) []byte {
		return appendFileCertBody(buf, cert)
	}) {
		return ErrBadSignature
	}
	return nil
}

// VerifyContent checks that data matches the certificate's content hash
// and size, detecting en-route corruption by faulty or malicious
// intermediate nodes (section 2.1). The hash is memoized by buffer
// identity (see contentmemo.go): with zero-copy replication the root,
// every replica and every caching node see the same backing buffer, so
// the bytes are hashed once instead of once per hop.
func VerifyContent(cert *wire.FileCertificate, data []byte) error {
	return verifyContentWith(cert, data, false)
}

// VerifyContentFresh is VerifyContent with the memo bypassed (the bytes
// are rehashed unconditionally). The client-side lookup check uses it:
// it is the integrity verdict handed to the user, so it must reflect
// the bytes as they are NOW, even if a contract-violating caller
// mutated a shared buffer after insert.
func VerifyContentFresh(cert *wire.FileCertificate, data []byte) error {
	return verifyContentWith(cert, data, true)
}

func verifyContentWith(cert *wire.FileCertificate, data []byte, fresh bool) error {
	if int64(len(data)) != cert.Size {
		return fmt.Errorf("%w: size %d != certificate size %d", ErrContentMismatch, len(data), cert.Size)
	}
	h := ContentHash
	if fresh {
		h = ContentHashFresh
	}
	if h(data) != cert.ContentHash {
		return ErrContentMismatch
	}
	return nil
}

// VerifyFileIDBinding confirms the certificate's fileId was derived from
// the given textual name under the owner's key and salt. Only the owner
// (who knows the name) and auditors use this; storage nodes rely on the
// card having computed the fileId.
func VerifyFileIDBinding(cert *wire.FileCertificate, name string) error {
	if id.HashFile(name, cert.OwnerPub, cert.Salt) != cert.FileID {
		return ErrBadFileID
	}
	return nil
}

// VerifyReclaimAuthorized checks a reclaim certificate against the stored
// file certificate: broker certification, signature, and that the
// reclaimer's key matches the file owner's key ("the smartcard of a
// storage node first verifies that the signature in the reclaim
// certificate matches that in the file certificate", section 2.1).
func VerifyReclaimAuthorized(brokerPub ed25519.PublicKey, rc *wire.ReclaimCertificate, fc *wire.FileCertificate, nowUnix int64) error {
	if len(rc.OwnerPub) != ed25519.PublicKeySize {
		return ErrBadSignature
	}
	if err := VerifyCardCert(brokerPub, rc.OwnerPub, rc.CardCert, nowUnix); err != nil {
		return err
	}
	if !verifyBody(ed25519.PublicKey(rc.OwnerPub), rc.Sig, func(buf []byte) []byte {
		return appendReclaimCertBody(buf, rc)
	}) {
		return ErrBadSignature
	}
	if !equalBytes(rc.OwnerPub, fc.OwnerPub) {
		return ErrWrongOwner
	}
	if rc.FileID != fc.FileID {
		return fmt.Errorf("%w: reclaim certificate names a different file", ErrBadFileID)
	}
	return nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AuditProof computes the proof-of-storage hash for a random audit
// (section 2.1): H(nonce ‖ content). A node that discarded the file cannot
// answer without refetching it, which the auditor can detect by timing or
// by auditing several nodes at once.
func AuditProof(nonce uint64, content []byte) [32]byte {
	h := sha256.New()
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], nonce)
	h.Write(tmp[:])
	h.Write(content)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Export serializes the card (private key, certification, quota state) so
// a user can carry it between sessions — the software analog of the
// physical card changing readers. Guard the bytes like the card itself.
func (c *Smartcard) Export() []byte {
	c.mu.Lock()
	quota := c.quota
	c.mu.Unlock()
	out := make([]byte, 0, 16+len(c.priv)+len(c.cardCert)+len(c.brokerPub))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(quota))
	out = append(out, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(c.contribution))
	out = append(out, tmp[:]...)
	out = append(out, byte(len(c.priv)))
	out = append(out, c.priv...)
	out = append(out, byte(len(c.cardCert)))
	out = append(out, c.cardCert...)
	out = append(out, c.brokerPub...)
	return out
}

// ImportCard reconstructs a card from Export's output.
func ImportCard(data []byte) (*Smartcard, error) {
	if len(data) < 18 {
		return nil, errors.New("seccrypt: truncated card export")
	}
	quota := int64(binary.BigEndian.Uint64(data[0:8]))
	contribution := int64(binary.BigEndian.Uint64(data[8:16]))
	p := 16
	privLen := int(data[p])
	p++
	if p+privLen > len(data) || privLen != ed25519.PrivateKeySize {
		return nil, errors.New("seccrypt: bad private key in card export")
	}
	priv := ed25519.PrivateKey(append([]byte(nil), data[p:p+privLen]...))
	p += privLen
	if p >= len(data) {
		return nil, errors.New("seccrypt: truncated card export")
	}
	certLen := int(data[p])
	p++
	if p+certLen > len(data) {
		return nil, errors.New("seccrypt: bad certificate in card export")
	}
	cardCert := append([]byte(nil), data[p:p+certLen]...)
	p += certLen
	if len(data)-p != ed25519.PublicKeySize {
		return nil, errors.New("seccrypt: bad broker key in card export")
	}
	brokerPub := ed25519.PublicKey(append([]byte(nil), data[p:]...))
	expires := int64(0)
	if len(cardCert) >= 8 {
		expires = int64(binary.BigEndian.Uint64(cardCert[:8]))
	}
	return &Smartcard{
		pub:          priv.Public().(ed25519.PublicKey),
		priv:         priv,
		cardCert:     cardCert,
		expires:      expires,
		brokerPub:    brokerPub,
		contribution: contribution,
		quota:        quota,
	}, nil
}

// DetRand returns a deterministic io.Reader for reproducible key
// generation in tests and simulations.
func DetRand(seed uint64) io.Reader { return &detReader{state: seed} }

type detReader struct{ state uint64 }

func (d *detReader) Read(p []byte) (int, error) {
	for i := range p {
		// xorshift64* stream
		d.state ^= d.state >> 12
		d.state ^= d.state << 25
		d.state ^= d.state >> 27
		p[i] = byte((d.state * 2685821657736338717) >> 56)
	}
	return len(p), nil
}
