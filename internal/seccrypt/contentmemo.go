package seccrypt

// Content-hash memoization.
//
// PR 1 made replication zero-copy: the SAME backing buffer travels from
// the client through the root to every replica and cache (the wire
// contract makes message payloads immutable after Send). Each hop still
// re-hashed it — VerifyContent runs at the root, at each of the k
// replicas and at every caching node, so one 4 KiB insert paid ~6
// SHA-256 passes over identical bytes. The memo below caches the digest
// keyed by buffer identity (base pointer + length), collapsing those
// passes to one.
//
// Safety: a hit requires the exact same backing array and length, and
// the wire contract forbids mutating a buffer once sent. The map holds
// the base pointer, which keeps the buffer alive; the map is swapped
// out wholesale when the cap is reached, so at most ~contentMemoCap
// stored bodies are pinned (they are almost always pinned by replica
// stores anyway). A sync.Map keeps the hit path lock-free: under the
// sharded engine several shard workers verify concurrently, and a
// single global mutex here would serialize them.

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

const contentMemoCap = 1024

type contentKey struct {
	p *byte
	n int
}

var contentMemo struct {
	m       atomic.Pointer[sync.Map]
	entries atomic.Int64
}

func contentMap() *sync.Map {
	if m := contentMemo.m.Load(); m != nil {
		return m
	}
	m := &sync.Map{}
	if !contentMemo.m.CompareAndSwap(nil, m) {
		return contentMemo.m.Load()
	}
	return m
}

// ContentHash returns sha256(data), memoized by buffer identity. It
// must only be used on buffers inside the wire immutability window —
// the insert/replication fan-out, cache admission — never as the final
// integrity check handed to a user (see ContentHashFresh).
func ContentHash(data []byte) [sha256.Size]byte {
	if len(data) == 0 {
		return sha256.Sum256(nil)
	}
	k := contentKey{&data[0], len(data)}
	if h, ok := contentMap().Load(k); ok {
		return h.([sha256.Size]byte)
	}
	h := sha256.Sum256(data)
	storeContentHash(k, h)
	return h
}

// ContentHashFresh rehashes data unconditionally and refreshes the
// memo. Client-facing verification uses it so that a caller who
// violates the immutability contract (mutating a buffer after handing
// it to Insert) still gets the documented "content hash mismatch"
// DETECTION on lookup rather than a stale memo hit silently approving
// corrupted bytes.
func ContentHashFresh(data []byte) [sha256.Size]byte {
	h := sha256.Sum256(data)
	if len(data) > 0 {
		storeContentHash(contentKey{&data[0], len(data)}, h)
	}
	return h
}

func storeContentHash(k contentKey, h [sha256.Size]byte) {
	// The cap check races benignly: a burst may overshoot by a few
	// entries or drop a few early, but the map is always bounded within
	// a small constant of contentMemoCap and correctness never depends
	// on an entry being present.
	if contentMemo.entries.Add(1) > contentMemoCap {
		contentMemo.entries.Store(0)
		contentMemo.m.Store(&sync.Map{})
	}
	contentMap().Store(k, h)
}
