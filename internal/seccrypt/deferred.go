package seccrypt

// Deferred verification queue.
//
// The insert path accumulates signature checks whose verdicts are not
// needed until the operation completes: the client collects k store
// receipts and only acts once all k are in hand. A Deferred queue holds
// those checks (certificate + k receipts, per the insert protocol) and
// resolves them in ONE cofactored batch at flush time, feeding every
// verdict back through the process-wide verification memo so later
// re-checks of the same signature — at other replicas, on retries, in
// audits — are cache hits exactly as if each had been verified
// individually.
//
// Verdict semantics: a deferred check resolves to the same boolean
// ed25519.Verify would produce for every input the memo handles
// (canonical sizes), except that a batch whose equation holds accepts
// its members under the cofactored relation (a strict superset that
// coincides for honestly generated signatures; see batch.go). On batch
// failure each member is re-verified individually with the stdlib
// equation, so forged members are identified exactly and their negative
// verdicts are bit-compatible with ed25519.Verify. Non-canonical sizes
// (truncated keys or signatures) resolve to false immediately, without
// the panic ed25519.Verify reserves for wrong public-key sizes.

import (
	"crypto/ed25519"
	"crypto/sha256"
	"sync"

	"past/internal/edwards25519"
	"past/internal/wire"
)

// deferredItem is one queued signature check.
type deferredItem struct {
	pub      [ed25519.PublicKeySize]byte
	sig      [ed25519.SignatureSize]byte
	off, ln  int // body bytes within the queue's buffer
	key      memoKey
	resolved bool
	ok       bool
}

// Deferred collects signature checks and resolves them in one batch.
// The zero value is ready to use; NewDeferred draws from a pool to keep
// the hot path allocation-free. A Deferred is not safe for concurrent
// use (PAST nodes use one per pending client operation, under the
// node's lock).
type Deferred struct {
	items []deferredItem
	buf   []byte // concatenated body bytes
}

var deferredPool = sync.Pool{New: func() interface{} { return &Deferred{} }}

// NewDeferred returns an empty queue from the pool.
func NewDeferred() *Deferred {
	return deferredPool.Get().(*Deferred)
}

// Release resets the queue and returns it to the pool. The caller must
// not touch it afterwards.
func (d *Deferred) Release() {
	d.items = d.items[:0]
	d.buf = d.buf[:0]
	deferredPool.Put(d)
}

// Len returns the number of queued checks.
func (d *Deferred) Len() int { return len(d.items) }

// Defer enqueues the check "sig is a valid signature by pub over the
// body build serializes" and returns its slot index for Ok. The memo is
// probed immediately, so repeat signatures resolve without joining the
// batch; malformed sizes resolve to false on the spot.
func (d *Deferred) Defer(pub, sig []byte, build func(buf []byte) []byte) int {
	i := len(d.items)
	d.items = append(d.items, deferredItem{})
	it := &d.items[i]
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		it.resolved, it.ok = true, false
		return i
	}
	copy(it.pub[:], pub)
	copy(it.sig[:], sig)
	it.off = len(d.buf)
	d.buf = build(d.buf)
	it.ln = len(d.buf) - it.off

	// Memo probe: the digest commits to pub ‖ sig ‖ body, exactly as
	// memoVerify computes it.
	kb := getBody()
	mat := append((*kb)[:0], pub...)
	mat = append(mat, sig...)
	mat = append(mat, d.buf[it.off:it.off+it.ln]...)
	it.key = memoKey(sha256.Sum256(mat))
	*kb = mat
	putBody(kb)
	if ok, found := memoLookup(it.key); found {
		it.resolved, it.ok = true, ok
	}
	return i
}

// DeferFileCertificate enqueues the certificate's owner signature.
func (d *Deferred) DeferFileCertificate(c *wire.FileCertificate) int {
	return d.Defer(c.OwnerPub, c.Sig, func(buf []byte) []byte {
		return appendFileCertBody(buf, c)
	})
}

// DeferStoreReceipt enqueues the receipt's node signature. Callers must
// separately check the signer binding (VerifyStoreReceiptBinding).
func (d *Deferred) DeferStoreReceipt(r *wire.StoreReceipt) int {
	return d.Defer(r.NodePub, r.Sig, func(buf []byte) []byte {
		return appendStoreReceiptBody(buf, r)
	})
}

// Ok returns slot i's verdict. It is only meaningful after Flush (or
// for slots that resolved at Defer time).
func (d *Deferred) Ok(i int) bool { return d.items[i].ok }

// Flush resolves every queued check: pending items are parsed and run
// through one cofactored batch equation; if it fails (or a member is
// malformed) items are verified individually, identifying the culprit.
// All verdicts are stored in the verification memo. Flush reports
// whether ALL queued checks passed.
func (d *Deferred) Flush() bool {
	sc := batchPool.Get().(*batchScratch)
	if cap(sc.items) < len(d.items) {
		sc.items = make([]batchItem, 0, len(d.items))
	}
	sc.items = sc.items[:0]
	// pending maps batch slots back to queue slots.
	var pendingArr [8]int
	pending := pendingArr[:0]

	for i := range d.items {
		it := &d.items[i]
		if it.resolved {
			continue
		}
		// Re-probe the memo: another node may have verified this very
		// signature between Defer and Flush (the root checks the file
		// certificate while the client is still collecting receipts).
		if ok, found := memoLookup(it.key); found {
			it.resolved, it.ok = true, ok
			continue
		}
		body := d.buf[it.off : it.off+it.ln]
		if !d.parseInto(sc, it, body) {
			// Unparseable signature or key: the stdlib equation can
			// still accept encodings the batch path cannot represent
			// identically, so resolve it individually.
			it.resolved = true
			it.ok = verifySingle(it.pub[:], body, it.sig[:])
			memoStore(it.key, it.ok)
			continue
		}
		pending = append(pending, i)
	}

	switch {
	case len(pending) == 0:
		// Nothing left for the batch.
	case len(pending) == 1 || !verifyBatch(sc):
		// A 1-batch saves nothing over a single check; a failed batch
		// means at least one member is forged — find out which.
		for _, i := range pending {
			it := &d.items[i]
			it.resolved = true
			it.ok = verifySingle(it.pub[:], d.buf[it.off:it.off+it.ln], it.sig[:])
			memoStore(it.key, it.ok)
		}
	default:
		for _, i := range pending {
			it := &d.items[i]
			it.resolved, it.ok = true, true
			memoStore(it.key, true)
		}
	}
	batchPool.Put(sc)

	all := true
	for i := range d.items {
		all = all && d.items[i].ok
	}
	return all
}

// parseInto parses one queued item into batch form: cached public key,
// canonical s, decompressed −R and its table, and the k = H(R‖A‖M)
// scalar. It reports false when any component cannot join the batch.
func (d *Deferred) parseInto(sc *batchScratch, it *deferredItem, body []byte) bool {
	key := cachedPubKey(it.pub[:])
	if key == nil {
		return false
	}
	sc.items = append(sc.items, batchItem{})
	b := &sc.items[len(sc.items)-1]
	b.key = key
	if _, err := b.s.SetCanonicalBytes(it.sig[32:]); err != nil {
		sc.items = sc.items[:len(sc.items)-1]
		return false
	}
	var R edwards25519.Point
	if _, err := R.SetBytes(it.sig[:32]); err != nil {
		sc.items = sc.items[:len(sc.items)-1]
		return false
	}
	b.minusR.Negate(&R)
	b.rTable.Init(&b.minusR)
	hramScalar(&b.k, it.sig[:32], it.pub[:], body)
	return true
}
