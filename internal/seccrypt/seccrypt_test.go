package seccrypt

import (
	"errors"
	"testing"
	"testing/quick"

	"past/internal/id"
	"past/internal/wire"
)

const now = int64(1_000_000)

var brokerSeed uint64 = 1 << 32

func newBroker(t *testing.T) *Broker {
	t.Helper()
	brokerSeed++
	b, err := NewBroker(DetRand(brokerSeed))
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	return b
}

var cardSeed uint64

func newCard(t *testing.T, b *Broker, quota int64) *Smartcard {
	t.Helper()
	cardSeed++
	c, err := b.IssueCard(quota, 0, 0, DetRand(cardSeed))
	if err != nil {
		t.Fatalf("IssueCard: %v", err)
	}
	return c
}

func TestBrokerAccounting(t *testing.T) {
	b := newBroker(t)
	if _, err := b.IssueCard(1000, 500, 0, DetRand(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.IssueCard(2000, 0, 0, DetRand(3)); err != nil {
		t.Fatal(err)
	}
	if b.CardsIssued() != 2 {
		t.Fatalf("CardsIssued = %d", b.CardsIssued())
	}
	demand, supply := b.Balance()
	if demand != 3000 || supply != 500 {
		t.Fatalf("Balance = %d, %d", demand, supply)
	}
}

func TestBrokerRejectsNegative(t *testing.T) {
	b := newBroker(t)
	if _, err := b.IssueCard(-1, 0, 0, DetRand(1)); err == nil {
		t.Fatal("negative quota accepted")
	}
	if _, err := b.IssueCard(0, -1, 0, DetRand(1)); err == nil {
		t.Fatal("negative contribution accepted")
	}
}

func TestNodeIDFromCard(t *testing.T) {
	b := newBroker(t)
	c := newCard(t, b, 100)
	if c.NodeID() != id.HashNode(c.PublicKey()) {
		t.Fatal("NodeID must be hash of card public key")
	}
	c2 := newCard(t, b, 200)
	if c.NodeID() == c2.NodeID() {
		t.Fatal("distinct cards share a nodeId")
	}
}

func TestCardCertVerifies(t *testing.T) {
	b := newBroker(t)
	c := newCard(t, b, 100)
	if err := VerifyCardCert(b.PublicKey(), c.PublicKey(), c.CardCert(), now); err != nil {
		t.Fatalf("genuine card rejected: %v", err)
	}
	// Wrong broker.
	b2 := newBroker(t)
	if err := VerifyCardCert(b2.PublicKey(), c.PublicKey(), c.CardCert(), now); !errors.Is(err, ErrBadCardCert) {
		t.Fatalf("foreign broker accepted: %v", err)
	}
	// Truncated cert.
	if err := VerifyCardCert(b.PublicKey(), c.PublicKey(), c.CardCert()[:4], now); !errors.Is(err, ErrBadCardCert) {
		t.Fatalf("truncated cert accepted: %v", err)
	}
}

func TestCardExpiry(t *testing.T) {
	b := newBroker(t)
	c, err := b.IssueCard(1000, 0, now-1, DetRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCardCert(b.PublicKey(), c.PublicKey(), c.CardCert(), now); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired card passed verification: %v", err)
	}
	if _, err := c.IssueFileCertificate("f", []byte("x"), 1, []byte{1}, now); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired card issued certificate: %v", err)
	}
	if _, err := c.IssueReclaimCertificate(id.RandFile(1), now); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired card issued reclaim certificate: %v", err)
	}
}

func TestFileCertificateLifecycle(t *testing.T) {
	b := newBroker(t)
	c := newCard(t, b, 10_000)
	content := []byte("the quick brown fox")
	cert, err := c.IssueFileCertificate("report.txt", content, 3, []byte{9, 9}, now)
	if err != nil {
		t.Fatalf("IssueFileCertificate: %v", err)
	}
	if cert.Size != int64(len(content)) || cert.Replicas != 3 {
		t.Fatal("certificate fields wrong")
	}
	// Quota debited by size × replicas.
	want := int64(10_000) - int64(len(content))*3
	if c.RemainingQuota() != want {
		t.Fatalf("quota = %d, want %d", c.RemainingQuota(), want)
	}
	if err := VerifyFileCertificate(b.PublicKey(), &cert, now); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	if err := VerifyContent(&cert, content); err != nil {
		t.Fatalf("content check failed: %v", err)
	}
	if err := VerifyFileIDBinding(&cert, "report.txt"); err != nil {
		t.Fatalf("fileId binding failed: %v", err)
	}
	if err := VerifyFileIDBinding(&cert, "other.txt"); !errors.Is(err, ErrBadFileID) {
		t.Fatal("wrong name accepted")
	}
}

func TestFileCertificateTamperDetected(t *testing.T) {
	b := newBroker(t)
	c := newCard(t, b, 10_000)
	cert, err := c.IssueFileCertificate("f", []byte("data"), 2, []byte{1}, now)
	if err != nil {
		t.Fatal(err)
	}
	// Tampered size.
	bad := cert
	bad.Size = 1
	if err := VerifyFileCertificate(b.PublicKey(), &bad, now); !errors.Is(err, ErrBadSignature) {
		t.Fatal("tampered size accepted")
	}
	// Tampered fileId (the DoS attack of section 2.1: attacker picks a
	// fileId adjacent to a victim node).
	bad = cert
	bad.FileID = id.RandFile(666)
	if err := VerifyFileCertificate(b.PublicKey(), &bad, now); !errors.Is(err, ErrBadSignature) {
		t.Fatal("tampered fileId accepted")
	}
	// Corrupted content en route.
	if err := VerifyContent(&cert, []byte("dat4")); !errors.Is(err, ErrContentMismatch) {
		t.Fatal("corrupted content accepted")
	}
	if err := VerifyContent(&cert, []byte("data!")); !errors.Is(err, ErrContentMismatch) {
		t.Fatal("wrong-size content accepted")
	}
}

func TestQuotaExhaustion(t *testing.T) {
	b := newBroker(t)
	c := newCard(t, b, 100)
	// 40 bytes × 3 replicas = 120 > 100.
	if _, err := c.IssueFileCertificate("f", make([]byte, 40), 3, nil, now); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota insert allowed: %v", err)
	}
	// 30 × 3 = 90 fits.
	cert, err := c.IssueFileCertificate("f", make([]byte, 30), 3, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if c.RemainingQuota() != 10 {
		t.Fatalf("quota = %d", c.RemainingQuota())
	}
	// Refund on rejected insert restores quota.
	c.RefundFileCertificate(&cert)
	if c.RemainingQuota() != 100 {
		t.Fatalf("refund gave %d", c.RemainingQuota())
	}
}

func TestReplicasMustBePositive(t *testing.T) {
	b := newBroker(t)
	c := newCard(t, b, 100)
	if _, err := c.IssueFileCertificate("f", []byte("x"), 0, nil, now); err == nil {
		t.Fatal("zero replicas accepted")
	}
}

func TestReclaimFlow(t *testing.T) {
	b := newBroker(t)
	owner := newCard(t, b, 1000)
	storer := newCard(t, b, 0)
	content := []byte("hello world")
	fc, err := owner.IssueFileCertificate("f", content, 2, []byte{1}, now)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := owner.IssueReclaimCertificate(fc.FileID, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReclaimAuthorized(b.PublicKey(), &rc, &fc, now); err != nil {
		t.Fatalf("owner's reclaim rejected: %v", err)
	}
	// A different user cannot reclaim.
	thief := newCard(t, b, 1000)
	rcBad, err := thief.IssueReclaimCertificate(fc.FileID, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReclaimAuthorized(b.PublicKey(), &rcBad, &fc, now); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("thief reclaim allowed: %v", err)
	}
	// Reclaim certificate for a different file is rejected.
	rcOther, _ := owner.IssueReclaimCertificate(id.RandFile(3), now)
	if err := VerifyReclaimAuthorized(b.PublicKey(), &rcOther, &fc, now); err == nil {
		t.Fatal("reclaim for other file accepted")
	}
	// Storage node frees space and issues receipt; owner credits quota.
	receipt := wire.ReclaimReceipt{
		FileID: fc.FileID,
		Freed:  fc.Size,
		By:     wire.NodeRef{ID: storer.NodeID(), Addr: "sim:0"},
	}
	storer.SignReclaimReceipt(&receipt)
	if err := VerifyReclaimReceipt(b.PublicKey(), &receipt, now); err != nil {
		t.Fatalf("genuine reclaim receipt rejected: %v", err)
	}
	before := owner.RemainingQuota()
	if err := owner.CreditReclaimReceipt(&receipt, now); err != nil {
		t.Fatal(err)
	}
	if owner.RemainingQuota() != before+fc.Size {
		t.Fatal("quota not credited")
	}
}

func TestStoreReceipt(t *testing.T) {
	b := newBroker(t)
	storer := newCard(t, b, 0)
	r := wire.StoreReceipt{
		FileID:   id.RandFile(1),
		StoredBy: wire.NodeRef{ID: storer.NodeID(), Addr: "sim:5"},
		Size:     128,
	}
	storer.SignStoreReceipt(&r)
	if err := VerifyStoreReceipt(&r); err != nil {
		t.Fatalf("genuine receipt rejected: %v", err)
	}
	// Forged StoredBy: signer's nodeId must match.
	r2 := r
	r2.StoredBy = wire.NodeRef{ID: id.Rand(99), Addr: "sim:6"}
	storer.SignStoreReceipt(&r2)
	if err := VerifyStoreReceipt(&r2); err == nil {
		t.Fatal("receipt claiming foreign nodeId accepted")
	}
	// Tampered size.
	r3 := r
	r3.Size = 4096
	if err := VerifyStoreReceipt(&r3); !errors.Is(err, ErrBadSignature) {
		t.Fatal("tampered receipt accepted")
	}
	// Diverted flag is covered by the signature.
	r4 := r
	r4.Diverted = true
	if err := VerifyStoreReceipt(&r4); !errors.Is(err, ErrBadSignature) {
		t.Fatal("flipped diverted flag accepted")
	}
}

func TestAuditProof(t *testing.T) {
	content := []byte("stored bytes")
	p1 := AuditProof(1, content)
	p2 := AuditProof(1, content)
	p3 := AuditProof(2, content)
	p4 := AuditProof(1, []byte("other bytes!"))
	if p1 != p2 {
		t.Fatal("proof not deterministic")
	}
	if p1 == p3 {
		t.Fatal("nonce ignored")
	}
	if p1 == p4 {
		t.Fatal("content ignored")
	}
}

func TestDetRandDeterministic(t *testing.T) {
	a := make([]byte, 32)
	b := make([]byte, 32)
	DetRand(5).Read(a)
	DetRand(5).Read(b)
	if string(a) != string(b) {
		t.Fatal("DetRand not deterministic")
	}
	DetRand(6).Read(b)
	if string(a) == string(b) {
		t.Fatal("DetRand seeds collide")
	}
}

func TestQuickQuotaNeverNegative(t *testing.T) {
	// Property: no interleaving of issue/refund can drive quota negative,
	// and refunds never exceed what was debited.
	b := newBroker(t)
	f := func(sizes []uint16, replicas uint8) bool {
		card, err := b.IssueCard(1<<20, 0, 0, DetRand(77))
		if err != nil {
			return false
		}
		k := int(replicas%4) + 1
		var issued []wire.FileCertificate
		for _, s := range sizes {
			cert, err := card.IssueFileCertificate("f", make([]byte, int(s)), k, nil, now)
			if err == nil {
				issued = append(issued, cert)
			}
			if card.RemainingQuota() < 0 {
				return false
			}
		}
		for i := range issued {
			card.RefundFileCertificate(&issued[i])
		}
		return card.RemainingQuota() == 1<<20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIssueFileCertificate(b *testing.B) {
	br, _ := NewBroker(DetRand(1))
	card, _ := br.IssueCard(1<<40, 0, 0, DetRand(2))
	content := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert, err := card.IssueFileCertificate("bench", content, 3, nil, now)
		if err != nil {
			b.Fatal(err)
		}
		card.RefundFileCertificate(&cert)
	}
}

func BenchmarkVerifyFileCertificate(b *testing.B) {
	br, _ := NewBroker(DetRand(1))
	card, _ := br.IssueCard(1<<40, 0, 0, DetRand(2))
	cert, _ := card.IssueFileCertificate("bench", make([]byte, 4096), 3, nil, now)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyFileCertificate(br.PublicKey(), &cert, now); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	b := newBroker(t)
	c, err := b.IssueCard(5000, 777, now+1000, DetRand(31))
	if err != nil {
		t.Fatal(err)
	}
	// Spend some quota first so the ledger state travels too.
	cert, err := c.IssueFileCertificate("f", make([]byte, 100), 2, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportCard(c.Export())
	if err != nil {
		t.Fatalf("ImportCard: %v", err)
	}
	if back.NodeID() != c.NodeID() {
		t.Fatal("identity changed across export")
	}
	if back.RemainingQuota() != c.RemainingQuota() || back.RemainingQuota() != 4800 {
		t.Fatalf("quota = %d, want %d", back.RemainingQuota(), c.RemainingQuota())
	}
	if back.Contribution() != 777 {
		t.Fatal("contribution lost")
	}
	if err := VerifyCardCert(b.PublicKey(), back.PublicKey(), back.CardCert(), now); err != nil {
		t.Fatalf("imported card not certified: %v", err)
	}
	// The imported card can still sign valid reclaim certificates.
	rc, err := back.IssueReclaimCertificate(cert.FileID, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReclaimAuthorized(b.PublicKey(), &rc, &cert, now); err != nil {
		t.Fatalf("imported card signature rejected: %v", err)
	}
	// Expiry survives export.
	if _, err := back.IssueFileCertificate("g", []byte("x"), 1, nil, now+2000); !errors.Is(err, ErrExpired) {
		t.Fatal("expiry lost in export")
	}
}

func TestImportCardRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {1, 2, 3}, make([]byte, 17), make([]byte, 200)} {
		if _, err := ImportCard(data); err == nil {
			t.Fatalf("garbage of len %d accepted", len(data))
		}
	}
	// Truncated genuine export.
	b := newBroker(t)
	c, _ := b.IssueCard(1, 0, 0, DetRand(32))
	exp := c.Export()
	if _, err := ImportCard(exp[:len(exp)-5]); err == nil {
		t.Fatal("truncated export accepted")
	}
}
