package seccrypt

// Batch signature verification.
//
// After PR 1's memoization, every DISTINCT certificate or receipt still
// costs one full ed25519 verification, and an insert needs ~4 of them
// (the file certificate at the root plus k store receipts at the
// client). This file amortizes that floor two ways:
//
//  1. A per-public-key precomputation cache. The keys that sign PAST's
//     hot-path traffic recur heavily (every node's smartcard signs one
//     receipt per insert it serves), so the decompressed point and the
//     variable-time lookup table — about a third of a single
//     verification — are computed once per key and reused by both
//     single and batch verification.
//
//  2. A cofactored batch verifier. For n signatures it checks
//
//       [8] ( (Σ z_i s_i) B − Σ z_i R_i − Σ z_i k_i A_i ) == identity
//
//     with independent random 128-bit coefficients z_i, sharing one
//     256-step doubling chain across all terms instead of paying it per
//     signature. If the batch equation fails, each signature is
//     re-checked individually (identifying the forged culprit exactly),
//     so a mixed batch degrades to the per-signature cost rather than
//     mis-attributing blame.
//
// Semantics: the batch relation is the COFACTORED one, which accepts
// every signature crypto/ed25519 accepts (honest signatures always
// satisfy both). Single verification — including the per-item fallback
// after a failed batch — uses exactly crypto/ed25519.Verify's
// cofactorless equation, so negative verdicts fed into the memo are
// bit-compatible with the stdlib. The deferred queue in deferred.go
// builds on this verifier and connects it to the memo.

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha512"
	mrand "math/rand/v2"
	"sync"

	"past/internal/edwards25519"
)

// zStream supplies the random batch coefficients. A ChaCha8 stream
// seeded once from the OS CSPRNG is cryptographically strong (it is
// what the Go runtime itself uses for rand sources) and avoids a
// syscall on every flush.
var zStream struct {
	sync.Mutex
	cha *mrand.ChaCha8
}

func fillZ(zs []byte) {
	zStream.Lock()
	if zStream.cha == nil {
		var seed [32]byte
		if _, err := rand.Read(seed[:]); err != nil {
			panic("seccrypt: no entropy for batch verification: " + err.Error())
		}
		zStream.cha = mrand.NewChaCha8(seed)
	}
	zStream.cha.Read(zs) //nolint:errcheck // ChaCha8.Read never fails
	zStream.Unlock()
}

// pubKey is the cached per-public-key precomputation: the negated
// decompressed point (verification uses -A on both the single and batch
// paths) and its variable-time odd-multiples table.
type pubKey struct {
	minusA edwards25519.Point
	table  edwards25519.VarTimeTable
}

// pubKeyCacheCap bounds the cache; one entry is ~1.8 KiB, so the cache
// tops out around 2 MiB. Long churn runs mint cards continuously; when
// the cap is hit the map is simply cleared (rebuild is cheap relative
// to the verifications each entry saves).
const pubKeyCacheCap = 1024

var pubKeys struct {
	sync.RWMutex
	m map[[ed25519.PublicKeySize]byte]*pubKey
}

// cachedPubKey returns the precomputation for pub, building and caching
// it on first sight. It returns nil when pub is not a valid point
// encoding (ed25519.Verify returns false for such keys; callers must do
// the same). pub must be exactly ed25519.PublicKeySize bytes.
func cachedPubKey(pub []byte) *pubKey {
	var k [ed25519.PublicKeySize]byte
	copy(k[:], pub)
	pubKeys.RLock()
	e, ok := pubKeys.m[k]
	pubKeys.RUnlock()
	if ok {
		return e // may be nil: invalid encodings are cached too
	}
	var A edwards25519.Point
	if _, err := A.SetBytes(pub); err != nil {
		e = nil
	} else {
		e = &pubKey{}
		e.minusA.Negate(&A)
		e.table.Init(&e.minusA)
	}
	pubKeys.Lock()
	if pubKeys.m == nil || len(pubKeys.m) >= pubKeyCacheCap {
		pubKeys.m = make(map[[ed25519.PublicKeySize]byte]*pubKey, 64)
	}
	pubKeys.m[k] = e
	pubKeys.Unlock()
	return e
}

// hramScalar computes k = SHA-512(R ‖ A ‖ M) mod l into out. The
// concatenation goes through a pooled buffer and the one-shot Sum512,
// which the compiler keeps off the heap (an incremental hash.Hash makes
// the output slice escape).
func hramScalar(out *edwards25519.Scalar, r, pub, msg []byte) {
	bp := getBody()
	buf := append((*bp)[:0], r...)
	buf = append(buf, pub...)
	buf = append(buf, msg...)
	digest := sha512.Sum512(buf)
	*bp = buf
	putBody(bp)
	out.SetUniformBytes(digest[:]) //nolint:errcheck // length is fixed at 64
}

// verifySingle checks one ed25519 signature with exactly
// crypto/ed25519.Verify's semantics (cofactorless equation, canonical-s
// requirement), using the per-key precomputation cache. pub and sig
// must already have canonical sizes.
func verifySingle(pub, msg, sig []byte) bool {
	e := cachedPubKey(pub)
	if e == nil {
		return false
	}
	var s edwards25519.Scalar
	if _, err := s.SetCanonicalBytes(sig[32:]); err != nil {
		return false
	}
	var k edwards25519.Scalar
	hramScalar(&k, sig[:32], pub, msg)
	// R' = k(-A) + sB; valid iff R' re-encodes to the signature's R.
	var R edwards25519.Point
	R.VarTimeDoubleBaseMultTable(&k, &e.table, &s)
	var buf [32]byte
	return bytes.Equal(R.BytesInto(&buf), sig[:32])
}

// batchItem is one signature in a pending batch, fully parsed.
type batchItem struct {
	key    *pubKey
	minusR edwards25519.Point
	rTable edwards25519.VarTimeTable
	s, k   edwards25519.Scalar
}

// batchScratch recycles the slices a batch flush needs, so steady-state
// batch verification allocates nothing.
type batchScratch struct {
	items   []batchItem
	scalars []edwards25519.Scalar
	ptrs    []*edwards25519.Scalar
	tables  []*edwards25519.VarTimeTable
	nafs    []edwards25519.Naf
	zs      []byte
}

var batchPool = sync.Pool{New: func() interface{} { return &batchScratch{} }}

// verifyBatch checks n parsed signatures with one cofactored batch
// equation. It reports only whether the WHOLE batch is valid; on false
// the caller re-checks items individually.
func verifyBatch(sc *batchScratch) bool {
	n := len(sc.items)
	if cap(sc.zs) < 16*n {
		sc.zs = make([]byte, 16*n)
	}
	zs := sc.zs[:16*n]
	fillZ(zs)
	if cap(sc.scalars) < 2*n+1 {
		sc.scalars = make([]edwards25519.Scalar, 2*n+1)
		sc.ptrs = make([]*edwards25519.Scalar, 2*n)
		sc.tables = make([]*edwards25519.VarTimeTable, 2*n)
	}
	if cap(sc.nafs) < 2*n {
		sc.nafs = make([]edwards25519.Naf, 2*n)
	}
	scalars := sc.scalars[: 2*n+1 : 2*n+1]
	ptrs := sc.ptrs[:2*n]
	tables := sc.tables[:2*n]

	// sB accumulates Σ z_i s_i for the shared basepoint term. The slot
	// is recycled across flushes, so reset it to zero explicitly.
	sB := &scalars[2*n]
	*sB = edwards25519.Scalar{}
	var z, zk edwards25519.Scalar
	for i := range sc.items {
		it := &sc.items[i]
		z.SetShortBytes(zs[16*i : 16*i+16])
		// Term z_i · (−R_i): R's coefficient stays 128 bits, halving its
		// non-zero NAF digits.
		scalars[2*i].Set(&z)
		ptrs[2*i] = &scalars[2*i]
		tables[2*i] = &it.rTable
		// Term (z_i k_i) · (−A_i).
		zk.Multiply(&z, &it.k)
		scalars[2*i+1].Set(&zk)
		ptrs[2*i+1] = &scalars[2*i+1]
		tables[2*i+1] = &it.key.table
		zk.Multiply(&z, &it.s)
		sB.Add(sB, &zk)
	}

	var p edwards25519.Point
	p.VarTimeMultiScalarBaseSum(sB, ptrs, tables, sc.nafs)
	p.MultByCofactor(&p)
	return p.Equal(edwards25519.NewIdentityPoint()) == 1
}
