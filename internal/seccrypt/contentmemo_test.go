package seccrypt

import "testing"

// TestContentHashFreshDetectsMutation pins the two halves of the
// content-memo contract: ContentHash may serve a stale digest for a
// mutated buffer (it exists for the immutable fan-out window), while
// ContentHashFresh must rehash, detect the mutation, and refresh the
// memo for subsequent callers.
func TestContentHashFreshDetectsMutation(t *testing.T) {
	data := []byte("content-memo mutation probe, long enough to matter")
	h1 := ContentHash(data)
	if ContentHash(data) != h1 {
		t.Fatal("memoized hash not stable")
	}
	data[0] ^= 1
	if ContentHash(data) != h1 {
		t.Fatal("expected the memo to serve the (stale) cached digest for the same buffer")
	}
	h2 := ContentHashFresh(data)
	if h2 == h1 {
		t.Fatal("fresh hash failed to detect the mutation")
	}
	if ContentHash(data) != h2 {
		t.Fatal("fresh hash did not refresh the memo entry")
	}
}
