package seccrypt

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"past/internal/id"
	"past/internal/wire"
)

func testCard(t *testing.T) (*Broker, *Smartcard) {
	t.Helper()
	broker, err := NewBroker(DetRand(0xfeed))
	if err != nil {
		t.Fatal(err)
	}
	card, err := broker.IssueCard(1<<30, 1<<30, 0, DetRand(0xbeef))
	if err != nil {
		t.Fatal(err)
	}
	return broker, card
}

// TestMemoNeverServesStalePositive is the safety property of the
// verification memo: once a certificate has verified successfully (and
// the outcome is cached), any mutation of the signed body or of the
// signature must miss the cache and fail verification — the cached
// positive can never leak onto different bytes.
func TestMemoNeverServesStalePositive(t *testing.T) {
	broker, card := testCard(t)
	cert, err := card.IssueFileCertificate("stale.bin", []byte("content"), 3, []byte{1, 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the memo and confirm a hit on re-verification.
	for i := 0; i < 3; i++ {
		if err := VerifyFileCertificate(broker.PublicKey(), &cert, 100); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	h0, _ := MemoStats()
	if err := VerifyFileCertificate(broker.PublicKey(), &cert, 100); err != nil {
		t.Fatal(err)
	}
	if h1, _ := MemoStats(); h1 <= h0 {
		t.Fatal("repeated verification should hit the memo")
	}

	// Mutate each signed body field in turn: every mutation must fail.
	mutations := []func(c *wire.FileCertificate){
		func(c *wire.FileCertificate) { c.Size++ },
		func(c *wire.FileCertificate) { c.Replicas++ },
		func(c *wire.FileCertificate) { c.Issued++ },
		func(c *wire.FileCertificate) { c.FileID[0] ^= 0xff },
		func(c *wire.FileCertificate) { c.ContentHash[0] ^= 0xff },
		func(c *wire.FileCertificate) { c.Salt = append([]byte(nil), 9, 9) },
	}
	for i, mutate := range mutations {
		bad := cert
		mutate(&bad)
		if err := VerifyFileCertificate(broker.PublicKey(), &bad, 100); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("mutation %d: want ErrBadSignature, got %v", i, err)
		}
	}
	// Mutated signature must fail even though the body is cached-valid.
	bad := cert
	bad.Sig = append([]byte(nil), cert.Sig...)
	bad.Sig[0] ^= 1
	if err := VerifyFileCertificate(broker.PublicKey(), &bad, 100); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("mutated sig: want ErrBadSignature, got %v", err)
	}
	// Mutated card certification must fail.
	bad = cert
	bad.CardCert = append([]byte(nil), cert.CardCert...)
	bad.CardCert[len(bad.CardCert)-1] ^= 1
	if err := VerifyFileCertificate(broker.PublicKey(), &bad, 100); !errors.Is(err, ErrBadCardCert) {
		t.Fatalf("mutated card cert: want ErrBadCardCert, got %v", err)
	}
	// The original still verifies after all the poisoned probes.
	if err := VerifyFileCertificate(broker.PublicKey(), &cert, 100); err != nil {
		t.Fatalf("original after probes: %v", err)
	}
}

// TestMemoNegativeCached checks that invalid outcomes are also memoized
// and stay invalid.
func TestMemoNegativeCached(t *testing.T) {
	broker, card := testCard(t)
	cert, err := card.IssueFileCertificate("neg.bin", []byte("x"), 1, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	bad := cert
	bad.Sig = append([]byte(nil), cert.Sig...)
	bad.Sig[10] ^= 0x40
	for i := 0; i < 3; i++ {
		if err := VerifyFileCertificate(broker.PublicKey(), &bad, 100); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("pass %d: want ErrBadSignature, got %v", i, err)
		}
	}
}

// TestMemoExpiryNotCached confirms time-dependent verdicts stay outside
// the memo: the same card certification verifies before expiry and fails
// after, regardless of caching.
func TestMemoExpiryNotCached(t *testing.T) {
	broker, err := NewBroker(DetRand(7))
	if err != nil {
		t.Fatal(err)
	}
	card, err := broker.IssueCard(1<<20, 0, 500, DetRand(8))
	if err != nil {
		t.Fatal(err)
	}
	pub := card.PublicKey()
	if err := VerifyCardCert(broker.PublicKey(), pub, card.CardCert(), 100); err != nil {
		t.Fatalf("before expiry: %v", err)
	}
	if err := VerifyCardCert(broker.PublicKey(), pub, card.CardCert(), 100); err != nil {
		t.Fatalf("before expiry (cached): %v", err)
	}
	if err := VerifyCardCert(broker.PublicKey(), pub, card.CardCert(), 501); !errors.Is(err, ErrExpired) {
		t.Fatalf("after expiry: want ErrExpired, got %v", err)
	}
}

// TestMemoLRUEviction fills one stripe far past capacity and confirms
// both that evicted entries re-verify correctly and that the memo keeps
// returning correct outcomes throughout.
func TestMemoLRUEviction(t *testing.T) {
	_, priv, err := ed25519.GenerateKey(DetRand(42))
	if err != nil {
		t.Fatal(err)
	}
	pub := priv.Public().(ed25519.PublicKey)
	body := make([]byte, 16)
	// Push far more distinct messages than the whole memo holds.
	for i := 0; i < memoStripeCount*memoStripeCap+512; i++ {
		body[0], body[1] = byte(i), byte(i>>8)
		sig := ed25519.Sign(priv, body)
		if !memoVerify(pub, body, sig) {
			t.Fatalf("valid signature %d rejected", i)
		}
		sig[0] ^= 1
		if memoVerify(pub, body, sig) {
			t.Fatalf("invalid signature %d accepted", i)
		}
	}
	// The earliest entry has been evicted; it must still verify correctly
	// via a fresh ed25519.Verify.
	body[0], body[1] = 0, 0
	sig := ed25519.Sign(priv, body)
	if !memoVerify(pub, body, sig) {
		t.Fatal("evicted entry no longer verifies")
	}
}

// TestStoreReceiptMemo covers the receipt verification path: valid
// receipts verify repeatedly, and tampering with the signed fields fails.
func TestStoreReceiptMemo(t *testing.T) {
	_, card := testCard(t)
	ref := wire.NodeRef{ID: card.NodeID(), Addr: "sim:0"}
	rcpt := wire.StoreReceipt{
		FileID:     id.RandFile(1),
		StoredBy:   ref,
		OnBehalfOf: ref,
		Size:       128,
	}
	card.SignStoreReceipt(&rcpt)
	for i := 0; i < 2; i++ {
		if err := VerifyStoreReceipt(&rcpt); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	bad := rcpt
	bad.Size++
	if err := VerifyStoreReceipt(&bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered receipt: want ErrBadSignature, got %v", err)
	}
}
