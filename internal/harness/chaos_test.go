package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"past"
	"past/internal/chaos"
)

// dumpDirLogs prints every node log under dir when a scenario that
// manages its own cluster fails.
func dumpDirLogs(t *testing.T, dir string) {
	t.Helper()
	logs, _ := filepath.Glob(filepath.Join(dir, "*.log"))
	for _, path := range logs {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		t.Logf("---- %s ----\n%s", path, data)
	}
}

// TestChaosPartitionHeal is the flagship chaos scenario (CI's chaos-smoke
// job runs exactly this under -race): a 7-node real cluster dialing
// through the fault proxy is split 4/3 for 10 seconds while inserting;
// the majority side must keep serving, and after heal the self-healing
// daemons must converge every file back to >= k disk replicas with zero
// quarantined entries and a known_peers telemetry series showing the dip
// and the recovery — all without operator action.
func TestChaosPartitionHeal(t *testing.T) {
	dir := clusterDir(t)
	rep, err := RunPartitionHeal(pastnodeBin, dir, t.Logf)
	if err != nil {
		dumpDirLogs(t, dir)
		t.Fatal(err)
	}
	if rep.MajorityServed < 1 {
		t.Fatalf("majority side served %d reads, want >= 1", rep.MajorityServed)
	}
	if rep.HealToInvariant > 30*time.Second {
		t.Fatalf("k-replica invariant took %v to recover after heal", rep.HealToInvariant)
	}
	t.Logf("partition+heal: %d files, %d majority reads, invariant back %v after heal",
		rep.Files, rep.MajorityServed, rep.HealToInvariant.Round(100*time.Millisecond))
}

// TestChaosLoss20 runs insert/lookup round trips through a proxy dropping
// 20% of all frames on every link. The client-side retransmissions
// (insert re-sends, lookup retries) must hold the success ratio at or
// above 0.95, and the proxy's fault log must replay byte-identically from
// the schedule seed and the per-link frame counts alone.
func TestChaosLoss20(t *testing.T) {
	spec := NewSpec(45, 5, 3, 20)
	sched := chaos.Schedule{Seed: 9, Default: chaos.LinkRule{Drop: 0.2}}
	proxy, err := chaos.New(sched, chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	dir := clusterDir(t)
	rc, err := StartRealClusterOpts(pastnodeBin, dir, spec, ClusterOptions{
		KeepAlive: 500 * time.Millisecond,
		// Failure detection at 8 keep-alive intervals: under 20% loss the
		// chance of eight consecutive keep-alives vanishing is ~3e-6, so
		// live peers stay admitted while a genuinely dead one still gets
		// evicted in 4s.
		ExtraArgs: chaosExtraArgs(proxy.Addr(), 4*time.Second),
	})
	if err != nil {
		dumpDirLogs(t, dir)
		t.Fatalf("StartRealClusterOpts: %v", err)
	}
	t.Cleanup(func() {
		rc.StopAll()
		if t.Failed() {
			t.Logf("node logs:\n%s", rc.CollectLogs())
		}
	})
	client, card, err := rc.NewClientOpts(12*time.Second, func(pc *past.PeerConfig) {
		pc.DialVia = proxy.Addr()
		pc.JoinTimeout = 2 * time.Second
		pc.FailTimeout = 4 * time.Second
		// Many short attempts beat few long ones against random loss: each
		// lookup gets 7 tries of 2.5s (route diversity per retry), each
		// insert 7 same-certificate transmissions, all inside the 24s
		// blocking-call bound.
		pc.Storage.RequestTimeout = 2500 * time.Millisecond
		pc.Storage.LookupRetries = 6
		pc.Storage.RetryBackoff = 150 * time.Millisecond
		pc.Storage.InsertResends = 6
	})
	if err != nil {
		t.Fatalf("NewClientOpts: %v", err)
	}
	defer client.Close()

	ops, successes := 0, 0
	var inserted []int
	fileIDs := make([]past.FileID, len(spec.Items))
	for i, it := range spec.Items {
		ops++
		res, err := client.InsertSalted(card, it.Name, it.Data, spec.K, it.Salt)
		if err != nil {
			t.Logf("insert %d failed under loss: %v", i, err)
			continue
		}
		successes++
		fileIDs[i] = res.FileID
		inserted = append(inserted, i)
	}
	for _, i := range inserted {
		ops++
		res, err := client.Lookup(fileIDs[i])
		if err != nil {
			t.Logf("lookup %d failed under loss: %v", i, err)
			continue
		}
		if string(res.Data) != string(spec.Items[i].Data) {
			t.Fatalf("lookup %d returned wrong bytes", i)
		}
		successes++
	}
	ratio := float64(successes) / float64(ops)
	t.Logf("20%% loss: %d/%d round trips succeeded (%.3f)", successes, ops, ratio)
	if ratio < 0.95 {
		t.Fatalf("success ratio %.3f under 20%% loss, want >= 0.95", ratio)
	}

	// Quiesce before reading the fault log: stop the daemons and the
	// client so no frame is mid-flight, then wait for the per-link
	// counters to stabilize.
	client.Close()
	rc.StopAll()
	stable := proxy.Stats()
	for i := 0; i < 50; i++ {
		time.Sleep(100 * time.Millisecond)
		next := proxy.Stats()
		if statsEqual(stable, next) {
			break
		}
		stable = next
	}

	var frames, dropped uint64
	counts := make(map[chaos.Link]uint64, len(stable))
	for l, st := range stable {
		counts[l] = st.Frames
		frames += st.Frames
		dropped += st.Dropped
	}
	if frames == 0 || dropped == 0 {
		t.Fatalf("proxy saw %d frames / %d drops; fault injection inert", frames, dropped)
	}
	rate := float64(dropped) / float64(frames)
	if rate < 0.12 || rate > 0.28 {
		t.Fatalf("observed drop rate %.3f, want ~0.2", rate)
	}
	// Byte-identical replay: the live log must equal the offline
	// recomputation from (seed, per-link frame counts) alone.
	want := chaos.ExpectedLog(sched, counts)
	if got := proxy.FaultLog(); got != want {
		t.Fatalf("fault log does not replay byte-identically:\ngot:\n%s\nwant:\n%s", got, want)
	}
	t.Logf("fault log replayed byte-identically: %d frames, %d drops (%.3f) over %d links",
		frames, dropped, rate, len(counts))
}

func statsEqual(a, b map[chaos.Link]chaos.LinkStats) bool {
	if len(a) != len(b) {
		return false
	}
	for l, s := range a {
		if b[l] != s {
			return false
		}
	}
	return true
}

// TestChaosGrayFailure drives a cluster where one node is slow but alive:
// every link touching it carries 120ms latency plus jitter. The gray node
// must stay a member (no false eviction, no breaker trip — slowness is
// not death), operations must still complete, and a context deadline must
// bound a client call regardless of how slow the network is.
func TestChaosGrayFailure(t *testing.T) {
	const nodes = 5
	addrs, err := ReserveAddrs(nodes + 1) // +1 for the client
	if err != nil {
		t.Fatal(err)
	}
	slow, clientAddr := addrs[nodes-1], addrs[nodes]
	links := make(map[chaos.Link]chaos.LinkRule)
	grayRule := chaos.LinkRule{Latency: 120 * time.Millisecond, Jitter: 60 * time.Millisecond}
	for _, a := range addrs {
		if a == slow {
			continue
		}
		links[chaos.Link{From: slow, To: a}] = grayRule
		links[chaos.Link{From: a, To: slow}] = grayRule
	}
	sched := chaos.Schedule{Seed: 11, Links: links}
	proxy, err := chaos.New(sched, chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	spec := NewSpec(47, nodes, 3, 6)
	dir := clusterDir(t)
	rc, err := StartRealClusterOpts(pastnodeBin, dir, spec, ClusterOptions{
		KeepAlive:   500 * time.Millisecond,
		ExtraArgs:   chaosExtraArgs(proxy.Addr(), 2*time.Second),
		ListenAddrs: addrs[:nodes],
	})
	if err != nil {
		dumpDirLogs(t, dir)
		t.Fatalf("StartRealClusterOpts: %v", err)
	}
	t.Cleanup(func() {
		rc.StopAll()
		if t.Failed() {
			t.Logf("node logs:\n%s", rc.CollectLogs())
		}
	})
	client, card, err := rc.NewClientOpts(8*time.Second, func(pc *past.PeerConfig) {
		pc.Listen = clientAddr
		pc.DialVia = proxy.Addr()
		pc.JoinTimeout = 2 * time.Second
		pc.FailTimeout = 2 * time.Second
		pc.Breaker = past.BreakerOptions{Threshold: 3, Cooldown: 500 * time.Millisecond}
		pc.Storage.LookupRetries = 2
		pc.Storage.RetryBackoff = 150 * time.Millisecond
		pc.Storage.InsertResends = 2
	})
	if err != nil {
		t.Fatalf("NewClientOpts: %v", err)
	}
	defer client.Close()

	fileIDs := make([]past.FileID, len(spec.Items))
	for i, it := range spec.Items {
		res, err := client.InsertSalted(card, it.Name, it.Data, spec.K, it.Salt)
		if err != nil {
			t.Fatalf("insert %d with gray node: %v", i, err)
		}
		fileIDs[i] = res.FileID
	}
	for i := range spec.Items {
		res, err := client.Lookup(fileIDs[i])
		if err != nil {
			t.Fatalf("lookup %d with gray node: %v", i, err)
		}
		if string(res.Data) != string(spec.Items[i].Data) {
			t.Fatalf("lookup %d returned wrong bytes", i)
		}
	}

	// Deadline propagation: the caller stays bounded even though the
	// network is slow.
	if err := ctxLookupProbe(client, fileIDs[0], time.Second); err != nil {
		t.Fatal(err)
	}

	// Gray != dead: the slow node is still a full member everywhere, and
	// the client's breaker never opened on it.
	if err := rc.WaitConverged(nodes, 10*time.Second); err != nil {
		t.Fatalf("slow node was evicted: %v", err)
	}
	if ts := client.TransportStats(); ts.BreakerOpens != 0 {
		t.Fatalf("client breaker opened %d times on a slow-but-alive network", ts.BreakerOpens)
	}
}

// TestChaosCrashStorm rolls a SIGKILL through half the storage nodes, one
// at a time, inserting through each outage; every node restarts on its
// old address and data dir. Afterwards the cluster must hold every file
// (pre-storm and mid-storm) on >= k distinct disks with zero quarantined
// entries and correct bytes.
func TestChaosCrashStorm(t *testing.T) {
	spec := NewSpec(46, 6, 3, 11) // 8 pre-storm + 3 mid-storm files
	dir := clusterDir(t)
	rc, err := StartRealClusterOpts(pastnodeBin, dir, spec, ClusterOptions{
		KeepAlive: 500 * time.Millisecond,
		ExtraArgs: []string{
			"-failtimeout", "1500ms",
			"-repair", "2s",
			"-join-timeout", "2s",
			"-breaker-threshold", "3",
			"-breaker-cooldown", "500ms",
			"-breaker-max-cooldown", "2s",
		},
	})
	if err != nil {
		dumpDirLogs(t, dir)
		t.Fatalf("StartRealClusterOpts: %v", err)
	}
	t.Cleanup(func() {
		rc.StopAll()
		if t.Failed() {
			t.Logf("node logs:\n%s", rc.CollectLogs())
		}
	})
	client, card, err := rc.NewClientOpts(8*time.Second, func(pc *past.PeerConfig) {
		pc.JoinTimeout = 2 * time.Second
		pc.FailTimeout = 1500 * time.Millisecond
		pc.Storage.LookupRetries = 4
		pc.Storage.RetryBackoff = 150 * time.Millisecond
		pc.Storage.InsertResends = 3
	})
	if err != nil {
		t.Fatalf("NewClientOpts: %v", err)
	}
	defer client.Close()

	fileIDs := make([]past.FileID, len(spec.Items))
	insert := func(i int) {
		t.Helper()
		it := spec.Items[i]
		res, err := client.InsertSalted(card, it.Name, it.Data, spec.K, it.Salt)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		fileIDs[i] = res.FileID
	}
	for i := 0; i < 8; i++ {
		insert(i)
	}

	// Rolling storm: victims 1..3, one at a time. Each outage overlaps an
	// insert (exercising eviction + re-routing), then the victim comes
	// back on the same port and data dir and must re-verify its files.
	for round, victim := range []int{1, 2, 3} {
		if err := rc.Nodes[victim].Kill(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(700 * time.Millisecond)
		insert(8 + round)
		if err := rc.Nodes[victim].Restart(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := rc.Nodes[victim].WaitRecovered(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Nodes[victim].WaitLine("joined network", 20*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Recovery invariants: every file on >= k distinct disks, nothing
	// quarantined, every byte readable.
	deadline := time.Now().Add(45 * time.Second)
	for {
		holders, err := DiskHolders(rc.DataDirs())
		if err != nil {
			t.Fatal(err)
		}
		under := 0
		for i := range spec.Items {
			distinct := make(map[string]bool)
			for _, h := range holders[fileIDs[i].String()] {
				distinct[h] = true
			}
			if len(distinct) < spec.K {
				under++
			}
		}
		if under == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d files under-replicated after crash storm:\n%v", under, holders)
		}
		time.Sleep(200 * time.Millisecond)
	}
	corrupt, err := CorruptEntries(rc.DataDirs())
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) > 0 {
		t.Fatalf("quarantined entries after crash storm: %v", corrupt)
	}
	for i := range spec.Items {
		res, err := client.Lookup(fileIDs[i])
		if err != nil {
			t.Fatalf("post-storm lookup %d: %v", i, err)
		}
		if string(res.Data) != string(spec.Items[i].Data) {
			t.Fatalf("post-storm lookup %d returned wrong bytes", i)
		}
	}
}

// TestRebootstrapAfterOutage starts a daemon whose entire seed list is
// unreachable: it must cycle the list with capped backoff forever instead
// of dying, join as soon as a seed finally appears, and on SIGTERM flush
// its telemetry rings in a final operator snapshot.
func TestRebootstrapAfterOutage(t *testing.T) {
	addrs, err := ReserveAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	deadSeed, lateSeed := addrs[0], addrs[1]
	dir := clusterDir(t)
	common := []string{
		"-broker-seed", "det:77",
		"-capacity", "1048576",
		"-k", "2",
		"-keepalive", "500ms",
		"-join-timeout", "1s",
		"-status", "300ms",
	}
	node, err := StartProc(pastnodeBin, append([]string{
		"-listen", "127.0.0.1:0",
		"-id-seed", "101",
		"-join", deadSeed + "," + lateSeed,
		"-telemetry", "127.0.0.1:0",
		"-telemetry-window", "500ms",
	}, common...), filepath.Join(dir, "orphan.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Stop(5 * time.Second) //nolint:errcheck // teardown
		if t.Failed() {
			dumpDirLogs(t, dir)
		}
	})
	if err := node.WaitListening(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Let it burn through several full seed-list cycles with nothing
	// listening — the daemon must stay alive and keep retrying.
	time.Sleep(3 * time.Second)
	if _, err := node.WaitLine("joined network", time.Millisecond); err == nil {
		t.Fatal("node claims to have joined while every seed was down")
	}

	seed, err := StartProc(pastnodeBin, append([]string{
		"-listen", lateSeed,
		"-id-seed", "102",
		"-bootstrap",
	}, common...), filepath.Join(dir, "seed.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seed.Stop(5 * time.Second) }) //nolint:errcheck // teardown
	if _, err := seed.WaitLine("bootstrapped", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The rotating bootstrap task reaches the late seed within its capped
	// backoff (15s ceiling) and joins.
	if _, err := node.WaitLine("joined network", 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// Satellite: graceful SIGTERM flushes the telemetry rings and prints
	// the final operator snapshot (disk, transport, tasks, series).
	if err := node.Stop(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := node.WaitLine("final telemetry snapshot", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := node.WaitLine("known_peers", 2*time.Second); err != nil {
		t.Fatalf("final snapshot did not flush telemetry series: %v", err)
	}
	line, err := node.WaitLine("transport:", 2*time.Second)
	if err != nil {
		t.Fatalf("final snapshot did not report transport health: %v", err)
	}
	if !strings.Contains(line, "dials") {
		t.Fatalf("transport line malformed: %q", line)
	}
}
