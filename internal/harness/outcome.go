package harness

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Outcome is the structural result of running a Spec against one stack
// (simulator or real cluster). Everything in it is derived from protocol
// outputs — receipts, lookup replies, stores — never from internals the
// two stacks don't share.
type Outcome struct {
	// Delivered counts inserts that completed with k verified receipts.
	Delivered int
	// Placement maps fileId hex → sorted holder nodeId hexes, taken from
	// the k store receipts of each successful insert.
	Placement map[string][]string
	// Lookups counts successful retrievals (content verified).
	Lookups int
	// Hops holds the overlay hop count of each successful lookup, in
	// item order (-1 for failed lookups).
	Hops []int
}

// MeanHops averages the successful lookups' hop counts.
func (o Outcome) MeanHops() float64 {
	sum, n := 0, 0
	for _, h := range o.Hops {
		if h >= 0 {
			sum += h
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Compare checks real against sim: delivery count, per-fileId placement,
// and lookup count must match exactly; mean hop counts must agree within
// hopTol. It returns a descriptive error naming every divergence.
func Compare(sim, real Outcome, hopTol float64) error {
	var diffs []string
	if sim.Delivered != real.Delivered {
		diffs = append(diffs, fmt.Sprintf("delivered: sim %d, real %d", sim.Delivered, real.Delivered))
	}
	if sim.Lookups != real.Lookups {
		diffs = append(diffs, fmt.Sprintf("lookups: sim %d, real %d", sim.Lookups, real.Lookups))
	}
	for f, simHolders := range sim.Placement {
		realHolders, ok := real.Placement[f]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("file %s: missing from real placement", f))
			continue
		}
		if strings.Join(simHolders, ",") != strings.Join(realHolders, ",") {
			diffs = append(diffs, fmt.Sprintf("file %s: sim holders %v, real holders %v", f, simHolders, realHolders))
		}
	}
	for f := range real.Placement {
		if _, ok := sim.Placement[f]; !ok {
			diffs = append(diffs, fmt.Sprintf("file %s: missing from sim placement", f))
		}
	}
	if d := math.Abs(sim.MeanHops() - real.MeanHops()); d > hopTol {
		diffs = append(diffs, fmt.Sprintf("mean hops: sim %.2f, real %.2f (tolerance %.2f)", sim.MeanHops(), real.MeanHops(), hopTol))
	}
	if len(diffs) > 0 {
		return fmt.Errorf("sim/real divergence:\n  %s", strings.Join(diffs, "\n  "))
	}
	return nil
}

// CheckKReplica verifies the k-replica invariant over a holders map
// (fileId → holder identifiers): every file has exactly k distinct
// holders.
func CheckKReplica(holders map[string][]string, k int) error {
	var bad []string
	for f, hs := range holders {
		seen := map[string]bool{}
		for _, h := range hs {
			seen[h] = true
		}
		if len(seen) != k {
			bad = append(bad, fmt.Sprintf("%s has %d holders, want %d", f, len(seen), k))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("k-replica invariant violated:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// DiskHolders scans pastnode data directories and maps each fileId to the
// sorted holder identifiers (one per directory storing its .bin). It is
// the on-disk ground truth the receipts are checked against, and what the
// crash-recovery test polls while anti-entropy restores the invariant.
func DiskHolders(dirs map[string]string) (map[string][]string, error) {
	holders := make(map[string][]string)
	for holder, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".bin" {
				continue
			}
			f := strings.TrimSuffix(e.Name(), ".bin")
			holders[f] = append(holders[f], holder)
		}
	}
	for f := range holders {
		sort.Strings(holders[f])
	}
	return holders, nil
}
