package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"past"
	"past/internal/seccrypt"
)

// ClusterOptions extend StartRealCluster for the chaos scenarios.
type ClusterOptions struct {
	// KeepAlive is the overlay keep-alive interval (failure detection
	// cadence derives from it).
	KeepAlive time.Duration
	// ExtraArgs are appended to every node's flag list — how scenarios
	// switch on -dial-via, -repair, -breaker-threshold, -telemetry, ...
	ExtraArgs []string
	// ListenAddrs, when non-empty, pins node i's listen address to
	// ListenAddrs[i] instead of a kernel-picked port. Chaos schedules name
	// links by address, so a scenario that wants per-link rules reserves
	// addresses first (ReserveAddrs) and hands them to both the proxy
	// schedule and the cluster.
	ListenAddrs []string
}

// RealCluster is a set of pastnode processes on loopback sharing one
// deterministic identity scheme with RunSim: broker det:(seed+1), node i
// holding card DetRand(seed<<20+i+7) — so node i's nodeId equals
// simulator node i's.
type RealCluster struct {
	Spec      *Spec
	Dir       string
	Nodes     []*ProcNode
	KeepAlive time.Duration
	Opts      ClusterOptions
}

// BrokerSeed returns the -broker-seed string all members share.
func (rc *RealCluster) BrokerSeed() string {
	return "det:" + strconv.FormatUint(uint64(rc.Spec.Seed)+1, 10)
}

func cardSeed(seed int64, i int) uint64 { return uint64(seed)<<20 + uint64(i) + 7 }

// nodeArgs assembles the pastnode flags for node i. joinAddr empty means
// -bootstrap (node 0).
func (rc *RealCluster) nodeArgs(i int, joinAddr string) []string {
	listen := "127.0.0.1:0"
	if i < len(rc.Opts.ListenAddrs) {
		listen = rc.Opts.ListenAddrs[i]
	}
	args := []string{
		"-listen", listen,
		"-broker-seed", rc.BrokerSeed(),
		"-id-seed", strconv.FormatUint(cardSeed(rc.Spec.Seed, i), 10),
		"-data", filepath.Join(rc.Dir, fmt.Sprintf("n%d", i)),
		"-capacity", strconv.FormatInt(rc.Spec.Capacity, 10),
		"-k", strconv.Itoa(rc.Spec.K),
		"-caching=false",
		"-keepalive", rc.KeepAlive.String(),
		"-anti-entropy", (2 * rc.KeepAlive).String(),
		"-status", "300ms",
	}
	args = append(args, rc.Opts.ExtraArgs...)
	if joinAddr == "" {
		args = append(args, "-bootstrap")
	} else {
		args = append(args, "-join", joinAddr)
	}
	return args
}

// StartRealCluster builds the data dirs under dir, boots node 0 as the
// bootstrap and joins the rest through it sequentially, then waits until
// every member sees the full membership. Node logs go to dir/n<i>.log.
func StartRealCluster(bin, dir string, spec *Spec, keepAlive time.Duration) (*RealCluster, error) {
	return StartRealClusterOpts(bin, dir, spec, ClusterOptions{KeepAlive: keepAlive})
}

// StartRealClusterOpts is StartRealCluster with per-scenario options; the
// chaos scenarios use it to interpose the fault proxy and switch on the
// daemon's self-healing knobs.
func StartRealClusterOpts(bin, dir string, spec *Spec, opts ClusterOptions) (*RealCluster, error) {
	if opts.KeepAlive <= 0 {
		opts.KeepAlive = 500 * time.Millisecond
	}
	rc := &RealCluster{Spec: spec, Dir: dir, KeepAlive: opts.KeepAlive, Opts: opts}
	for i := 0; i < spec.Nodes; i++ {
		joinAddr := ""
		if i > 0 {
			joinAddr = rc.Nodes[0].Addr()
		}
		p, err := StartProc(bin, rc.nodeArgs(i, joinAddr), filepath.Join(dir, fmt.Sprintf("n%d.log", i)))
		if err != nil {
			rc.StopAll()
			return nil, err
		}
		rc.Nodes = append(rc.Nodes, p)
		if err := p.WaitListening(20 * time.Second); err != nil {
			rc.StopAll()
			return nil, err
		}
		marker := "joined network"
		if i == 0 {
			marker = "bootstrapped"
		}
		if _, err := p.WaitLine(marker, 30*time.Second); err != nil {
			rc.StopAll()
			return nil, err
		}
	}
	if err := rc.WaitConverged(spec.Nodes-1, 30*time.Second); err != nil {
		rc.StopAll()
		return nil, err
	}
	return rc, nil
}

// WaitConverged blocks until every running node's status line reports at
// least want known peers.
func (rc *RealCluster) WaitConverged(want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, p := range rc.Nodes {
			if p.PeersKnown() < want {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("harness: membership did not converge to %d peers within %v", want, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// DataDirs maps each node's nodeId to its data directory, the input for
// DiskHolders.
func (rc *RealCluster) DataDirs() map[string]string {
	dirs := make(map[string]string)
	for i, p := range rc.Nodes {
		dirs[p.NodeID()] = filepath.Join(rc.Dir, fmt.Sprintf("n%d", i))
	}
	return dirs
}

// StopAll terminates every node (gracefully, escalating as needed).
func (rc *RealCluster) StopAll() {
	for _, p := range rc.Nodes {
		p.Stop(5 * time.Second) //nolint:errcheck // teardown is best-effort
	}
}

// NewClient starts the in-process capacity-zero client peer — the
// pastctl role — holding the deterministic client card (index
// spec.Nodes, matching the simulator's client node) and joined through
// node 0.
func (rc *RealCluster) NewClient(opTimeout time.Duration) (*past.Peer, *past.Smartcard, error) {
	return rc.NewClientOpts(opTimeout, nil)
}

// NewClientOpts is NewClient with a configuration hook: mutate (nil ok)
// runs on the assembled PeerConfig before the peer starts, so chaos
// scenarios can route the client through the fault proxy and arm its
// retry/resend knobs without another constructor variant.
func (rc *RealCluster) NewClientOpts(opTimeout time.Duration, mutate func(*past.PeerConfig)) (*past.Peer, *past.Smartcard, error) {
	broker, err := past.DeriveBroker(rc.BrokerSeed())
	if err != nil {
		return nil, nil, err
	}
	card, err := broker.IssueCard(1<<50, 0, 0, seccrypt.DetRand(cardSeed(rc.Spec.Seed, rc.Spec.ClientIndex())))
	if err != nil {
		return nil, nil, err
	}
	scfg := past.DefaultStorageConfig()
	scfg.K = rc.Spec.K
	scfg.Capacity = 0
	scfg.Caching = false
	// Derive the per-attempt protocol timeout from opTimeout (the facade
	// fills zero with it); a mutate hook that sets its own wins.
	scfg.RequestTimeout = 0
	pcfg := past.PeerConfig{
		Card:      card,
		BrokerPub: broker.PublicKey(),
		Storage:   scfg,
		KeepAlive: rc.KeepAlive,
		OpTimeout: opTimeout,
	}
	if mutate != nil {
		mutate(&pcfg)
	}
	peer, err := past.ListenPeer(pcfg)
	if err != nil {
		return nil, nil, err
	}
	// A few join rounds with backoff: on a lossy chaos network the first
	// attempt's handshake frames may simply vanish.
	joinErr := fmt.Errorf("harness: no join attempt made")
	for attempt, next := 0, 0; attempt < 5; attempt++ {
		if next, joinErr = peer.JoinAnyFrom(rc.liveAddrs(), next); joinErr == nil {
			break
		}
		time.Sleep(time.Duration(attempt+1) * 200 * time.Millisecond)
	}
	if joinErr != nil {
		peer.Close()
		return nil, nil, joinErr
	}
	// Converge: the client must see all storage nodes, and they must all
	// see the client, before placement is meaningful.
	deadline := time.Now().Add(20 * time.Second)
	for peer.KnownPeers() < rc.Spec.Nodes {
		if time.Now().After(deadline) {
			peer.Close()
			return nil, nil, fmt.Errorf("harness: client sees %d peers, want %d", peer.KnownPeers(), rc.Spec.Nodes)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := rc.WaitConverged(rc.Spec.Nodes, 20*time.Second); err != nil {
		peer.Close()
		return nil, nil, err
	}
	return peer, card, nil
}

func (rc *RealCluster) liveAddrs() []string {
	var addrs []string
	for _, p := range rc.Nodes {
		if a := p.Addr(); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// RunReal drives the Spec through the real cluster exactly as RunSim
// drives it through the simulator: the same items, salts, k, and client
// identity, via real pastctl-style blocking calls over TCP.
func RunReal(rc *RealCluster) (Outcome, error) {
	out := Outcome{Placement: map[string][]string{}}
	client, card, err := rc.NewClient(20 * time.Second)
	if err != nil {
		return out, err
	}
	defer client.Close()

	fileIDs := make([]past.FileID, len(rc.Spec.Items))
	ok := make([]bool, len(rc.Spec.Items))
	for i, it := range rc.Spec.Items {
		res, err := client.InsertSalted(card, it.Name, it.Data, rc.Spec.K, it.Salt)
		if err != nil {
			continue
		}
		out.Delivered++
		fileIDs[i], ok[i] = res.FileID, true
		out.Placement[res.FileID.String()] = receiptHolders(res.Receipts)
	}
	for i := range rc.Spec.Items {
		if !ok[i] {
			out.Hops = append(out.Hops, -1)
			continue
		}
		res, err := client.Lookup(fileIDs[i])
		if err != nil {
			out.Hops = append(out.Hops, -1)
			continue
		}
		out.Lookups++
		out.Hops = append(out.Hops, res.Hops)
	}
	return out, nil
}

// CollectLogs concatenates all node logs (for test failure output).
func (rc *RealCluster) CollectLogs() string {
	var sb []byte
	for _, p := range rc.Nodes {
		data, err := os.ReadFile(p.LogPath)
		if err != nil {
			continue
		}
		sb = append(sb, []byte("---- "+p.LogPath+" ----\n")...)
		sb = append(sb, data...)
	}
	return string(sb)
}
