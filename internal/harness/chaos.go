package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"past"
	"past/internal/chaos"
)

// Chaos scenario parameters shared by the partition+heal test and the
// pastbench wall-clock probe (exp:CHAOS-PH@real in the BENCH files).
const (
	phSeed      = 42
	phNodes     = 7
	phK         = 3
	phPreFiles  = 6
	phMidFiles  = 4
	phPartition = 10 * time.Second
	phRepair    = 2 * time.Second
)

// PartitionHealReport is the structured outcome of RunPartitionHeal.
type PartitionHealReport struct {
	// Files is the total number of files inserted (before + during the
	// partition); every one had >= phK distinct disk replicas at the end.
	Files int
	// MajorityServed counts the pre-fault files that stayed readable from
	// the majority side mid-partition (all files with at least one replica
	// on a majority disk must).
	MajorityServed int
	// HealToInvariant is how long after Heal the cluster took to converge
	// every file back to >= k disk replicas with full membership.
	HealToInvariant time.Duration
	// KnownPeers is a majority node's known_peers telemetry series: full
	// membership, the partition dip, and the recovery.
	KnownPeers []float64
	// FaultLog is the proxy's deterministic fault log.
	FaultLog string
}

// chaosExtraArgs are the daemon knobs every chaos scenario switches on:
// route through the proxy, fast failure detection, the periodic repair
// task, seed cycling with a short join bound, the dial circuit breaker,
// and a telemetry port to scrape.
func chaosExtraArgs(proxyAddr string, failTimeout time.Duration) []string {
	return []string{
		"-dial-via", proxyAddr,
		"-failtimeout", failTimeout.String(),
		"-repair", phRepair.String(),
		"-join-timeout", "2s",
		"-breaker-threshold", "3",
		"-breaker-cooldown", "500ms",
		"-breaker-max-cooldown", "2s",
		"-telemetry", "127.0.0.1:0",
		"-telemetry-window", "1s",
	}
}

// CorruptEntries scans pastnode data directories for quarantined
// (".corrupt") entries — the post-chaos corruption check expects none.
func CorruptEntries(dirs map[string]string) ([]string, error) {
	var out []string
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".corrupt") {
				out = append(out, filepath.Join(dir, e.Name()))
			}
		}
	}
	return out, nil
}

// RunPartitionHeal runs the flagship chaos scenario against a real
// 7-process cluster dialing through the fault proxy: split 4/3 for 10
// seconds while inserting, assert the majority side keeps serving, heal,
// and assert the self-healing daemons converge every file back to >= k
// disk replicas with no corruption and no operator action. It returns an
// error naming the first violated invariant. logf (nil ok) receives
// progress lines; pastbench times the whole call as exp:CHAOS-PH@real.
func RunPartitionHeal(bin, dir string, logf func(format string, args ...any)) (*PartitionHealReport, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t0 := time.Now()
	prog := func(format string, args ...any) {
		logf("[%6.1fs] "+format, append([]any{time.Since(t0).Seconds()}, args...)...)
	}
	spec := NewSpec(phSeed, phNodes, phK, phPreFiles+phMidFiles)
	proxy, err := chaos.New(chaos.Schedule{Seed: phSeed}, chaos.Options{})
	if err != nil {
		return nil, err
	}
	defer proxy.Close()

	rc, err := StartRealClusterOpts(bin, dir, spec, ClusterOptions{
		KeepAlive: 500 * time.Millisecond,
		ExtraArgs: chaosExtraArgs(proxy.Addr(), 1500*time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	defer rc.StopAll()
	client, card, err := rc.NewClientOpts(8*time.Second, func(pc *past.PeerConfig) {
		pc.DialVia = proxy.Addr()
		pc.JoinTimeout = 2 * time.Second
		pc.FailTimeout = 1500 * time.Millisecond
		// The breaker doubles as the client's reachability oracle: without
		// it a diversion pointer to a partitioned holder would black-hole
		// lookup attempts (the fetch is fire-and-forget).
		pc.Breaker = past.BreakerOptions{Threshold: 3, Cooldown: 500 * time.Millisecond, MaxCooldown: 2 * time.Second}
		pc.Storage.LookupRetries = 4
		pc.Storage.RetryBackoff = 150 * time.Millisecond
		pc.Storage.InsertResends = 3
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: client: %w", err)
	}
	defer client.Close()

	rep := &PartitionHealReport{Files: len(spec.Items)}
	fileIDs := make([]past.FileID, len(spec.Items))
	insert := func(i int) error {
		it := spec.Items[i]
		start := time.Now()
		res, err := client.InsertSalted(card, it.Name, it.Data, spec.K, it.Salt)
		prog("insert %d: %v (err=%v)", i, time.Since(start).Round(time.Millisecond), err)
		if err != nil {
			return fmt.Errorf("chaos: insert %d: %w", i, err)
		}
		fileIDs[i] = res.FileID
		return nil
	}
	for i := 0; i < phPreFiles; i++ {
		if err := insert(i); err != nil {
			return nil, err
		}
	}
	prog("chaos: %d pre-fault files inserted", phPreFiles)

	// Ground truth before the split: which files hold at least one replica
	// on a majority disk. Those must stay readable mid-partition; files
	// entirely on minority disks legitimately cannot be served until heal.
	preHolders, err := DiskHolders(rc.DataDirs())
	if err != nil {
		return nil, err
	}
	majorityNodes := make(map[string]bool)
	var majorityAddrs, minorityAddrs []string
	for i, p := range rc.Nodes {
		if i < 4 {
			majorityNodes[p.NodeID()] = true
			majorityAddrs = append(majorityAddrs, p.Addr())
		} else {
			minorityAddrs = append(minorityAddrs, p.Addr())
		}
	}
	majorityAddrs = append(majorityAddrs, client.Addr())
	var majorityFiles []int
	for i := 0; i < phPreFiles; i++ {
		for _, h := range preHolders[fileIDs[i].String()] {
			if majorityNodes[h] {
				majorityFiles = append(majorityFiles, i)
				break
			}
		}
	}
	if len(majorityFiles) == 0 {
		return nil, fmt.Errorf("chaos: no pre-fault file has a majority replica; scenario degenerate")
	}

	proxy.Partition(majorityAddrs, minorityAddrs)
	partitionStart := time.Now()
	prog("chaos: partitioned 4+client / 3 for %v", phPartition)

	// Let failure detection evict the unreachable side, then keep
	// operating from the majority: fresh inserts must still gather k
	// receipts, and every file with a majority replica must still read.
	time.Sleep(3 * time.Second)
	for i := phPreFiles; i < phPreFiles+phMidFiles; i++ {
		if err := insert(i); err != nil {
			return nil, fmt.Errorf("majority-side %w", err)
		}
	}
	for _, i := range majorityFiles {
		start := time.Now()
		res, err := client.Lookup(fileIDs[i])
		prog("lookup %d: %v (err=%v)", i, time.Since(start).Round(time.Millisecond), err)
		if err != nil {
			return nil, fmt.Errorf("chaos: mid-partition lookup of majority file %d: %w", i, err)
		}
		if string(res.Data) != string(spec.Items[i].Data) {
			return nil, fmt.Errorf("chaos: mid-partition lookup of file %d returned wrong bytes", i)
		}
		rep.MajorityServed++
	}
	prog("chaos: majority side served %d inserts and %d reads mid-partition", phMidFiles, rep.MajorityServed)

	if wait := phPartition - time.Since(partitionStart); wait > 0 {
		time.Sleep(wait)
	}
	proxy.Heal()
	healAt := time.Now()
	prog("chaos: healed")

	// Self-healing: the minority re-anchors through its seed (membership
	// high-water trigger), membership reconverges, and the periodic repair
	// task restores every file to >= k disks. No operator action.
	deadline := healAt.Add(45 * time.Second)
	for {
		holders, err := DiskHolders(rc.DataDirs())
		if err != nil {
			return nil, err
		}
		under := 0
		for i := range spec.Items {
			distinct := make(map[string]bool)
			for _, h := range holders[fileIDs[i].String()] {
				distinct[h] = true
			}
			if len(distinct) < spec.K {
				under++
			}
		}
		if under == 0 && rc.WaitConverged(phNodes, time.Millisecond) == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("chaos: %d files under-replicated %v after heal:\n%v", under, time.Since(healAt), holders)
		}
		time.Sleep(200 * time.Millisecond)
	}
	rep.HealToInvariant = time.Since(healAt)
	prog("chaos: k-replica invariant restored %v after heal", rep.HealToInvariant.Round(100*time.Millisecond))

	// Every file — including those marooned on the minority during the
	// split — reads back correct bytes, and nothing got quarantined.
	for i := range spec.Items {
		res, err := client.Lookup(fileIDs[i])
		if err != nil {
			return nil, fmt.Errorf("chaos: post-heal lookup %d: %w", i, err)
		}
		if string(res.Data) != string(spec.Items[i].Data) {
			return nil, fmt.Errorf("chaos: post-heal lookup %d returned wrong bytes", i)
		}
	}
	corrupt, err := CorruptEntries(rc.DataDirs())
	if err != nil {
		return nil, err
	}
	if len(corrupt) > 0 {
		return nil, fmt.Errorf("chaos: quarantined entries after heal: %v", corrupt)
	}

	// Telemetry: a majority node's known_peers series must show full
	// membership, the dip, and the recovery. The gauge flushes in 1s
	// windows, so poll until the recovery point lands in the ring.
	telAddr, err := rc.Nodes[0].TelemetryAddr(5 * time.Second)
	if err != nil {
		return nil, err
	}
	telDeadline := time.Now().Add(15 * time.Second)
	for {
		points, err := ScrapeTelemetry(telAddr)
		if err != nil {
			return nil, fmt.Errorf("chaos: scrape %s: %w", telAddr, err)
		}
		rep.KnownPeers = GaugeValues(points, "known_peers")
		full, dipped, recoveredAfterDip := false, false, false
		for _, v := range rep.KnownPeers {
			switch {
			case !full:
				full = v >= float64(phNodes)
			case !dipped:
				dipped = v <= 4
			case !recoveredAfterDip:
				recoveredAfterDip = v >= float64(phNodes)
			}
		}
		if full && dipped && recoveredAfterDip {
			break
		}
		if time.Now().After(telDeadline) {
			return nil, fmt.Errorf("chaos: known_peers series lacks full/dip/recovery shape: %v", rep.KnownPeers)
		}
		time.Sleep(500 * time.Millisecond)
	}
	prog("chaos: known_peers series shows full membership, dip, recovery: %v", rep.KnownPeers)
	rep.FaultLog = proxy.FaultLog()
	return rep, nil
}

// ctxLookupProbe asserts deadline propagation end to end: a lookup whose
// context deadline has already passed must return promptly with the
// context's error — the caller is bounded even when the network is not.
// A reply needs at least one socket round trip, so the expired context
// always wins the race.
func ctxLookupProbe(client *past.Peer, f past.FileID, bound time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	start := time.Now()
	_, err := client.LookupCtx(ctx, f)
	if !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("ctx-bounded lookup: err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > bound {
		return fmt.Errorf("ctx-bounded lookup took %v, deadline not propagated", d)
	}
	return nil
}
