package harness

import (
	"sort"

	"past/internal/cluster"
	"past/internal/id"
	pastcore "past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/simnet"
	"past/internal/wire"
)

// simConfig is the storage configuration both stacks run under: caching
// off (a cache hit would make hop counts depend on lookup timing, which
// the real stack cannot reproduce), everything else at paper defaults.
func simConfig(spec *Spec) pastcore.Config {
	cfg := pastcore.DefaultConfig()
	cfg.K = spec.K
	cfg.Capacity = spec.Capacity
	cfg.Caching = false
	return cfg
}

// RunSim drives the Spec through a simulated cluster of Nodes storage
// nodes plus one capacity-zero client (the same membership the real
// cluster gets), using the deterministic identity derivation the
// experiments use: broker from DetRand(seed+1), card i from
// DetRand(seed<<20+i+7). It returns the protocol Outcome plus the
// store-level holders map (fileId → sorted nodeIds) for the k-replica
// invariant check.
func RunSim(spec *Spec) (Outcome, map[string][]string, error) {
	out := Outcome{Placement: map[string][]string{}}
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(uint64(spec.Seed) + 1))
	if err != nil {
		return out, nil, err
	}
	n := spec.Nodes + 1
	cards := make([]*seccrypt.Smartcard, n)
	for i := range cards {
		capi := spec.Capacity
		if i == spec.ClientIndex() {
			capi = 0
		}
		cards[i], err = broker.IssueCard(1<<50, capi, 0, seccrypt.DetRand(uint64(spec.Seed)<<20+uint64(i)+7))
		if err != nil {
			return out, nil, err
		}
	}
	cfg := simConfig(spec)
	pnodes := make([]*pastcore.Node, n)
	c, err := cluster.Build(cluster.Options{
		N:      n,
		Pastry: pastry.DefaultConfig(),
		Seed:   spec.Seed,
		NodeID: func(i int) id.Node { return cards[i].NodeID() },
		AppFactory: func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App {
			nodeCfg := cfg
			if i == spec.ClientIndex() {
				nodeCfg.Capacity = 0
			}
			pnodes[i] = pastcore.NewNode(nodeCfg, nd, cards[i], broker.PublicKey())
			return pnodes[i]
		},
	})
	if err != nil {
		return out, nil, err
	}
	client, card := pnodes[spec.ClientIndex()], cards[spec.ClientIndex()]

	fileIDs := make([]id.File, len(spec.Items))
	ok := make([]bool, len(spec.Items))
	for i, it := range spec.Items {
		var res *pastcore.InsertResult
		client.InsertSalted(card, it.Name, it.Data, spec.K, it.Salt, func(r pastcore.InsertResult) { res = &r })
		c.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
		if res == nil || res.Err != nil {
			continue
		}
		out.Delivered++
		fileIDs[i], ok[i] = res.FileID, true
		out.Placement[res.FileID.String()] = receiptHolders(res.Receipts)
	}
	for i := range spec.Items {
		if !ok[i] {
			out.Hops = append(out.Hops, -1)
			continue
		}
		var res *pastcore.LookupResult
		client.Lookup(fileIDs[i], func(r pastcore.LookupResult) { res = &r })
		c.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
		if res == nil || res.Err != nil {
			out.Hops = append(out.Hops, -1)
			continue
		}
		out.Lookups++
		out.Hops = append(out.Hops, res.Hops)
	}

	holders := make(map[string][]string)
	for i := 0; i < spec.Nodes; i++ {
		nodeID := pnodes[i].Pastry().Ref().ID.String()
		for _, f := range pnodes[i].Store().Files() {
			holders[f.String()] = append(holders[f.String()], nodeID)
		}
	}
	for f := range holders {
		sort.Strings(holders[f])
	}
	return out, holders, nil
}

// receiptHolders extracts the sorted holder nodeIds from store receipts.
func receiptHolders(receipts []wire.StoreReceipt) []string {
	var hs []string
	for _, r := range receipts {
		hs = append(hs, r.StoredBy.ID.String())
	}
	sort.Strings(hs)
	return hs
}
