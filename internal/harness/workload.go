package harness

import (
	"fmt"
	"io"

	"past/internal/seccrypt"
	"past/internal/workload"
)

// Item is one file of the conformance workload. Name, Data, and Salt are
// all deterministic functions of (spec seed, index), and the fileId is
// H(name, owner, salt) — so the simulator and the real cluster, fed the
// same spec through the same owner card, produce byte-identical fileIds.
type Item struct {
	Name string
	Data []byte
	Salt []byte
}

// Spec is a deterministic conformance workload: N storage nodes plus one
// capacity-zero client, k-replicated files with sizes drawn from the
// experiments' size distribution.
type Spec struct {
	Seed     int64
	Nodes    int   // storage nodes (the client is one more overlay member)
	K        int   // replication factor
	Capacity int64 // per-storage-node capacity
	Items    []Item
}

// maxItemSize caps workload draws: the size distribution has a Pareto
// tail, and a multi-megabyte outlier would tell us nothing extra about
// conformance while slowing the socket path.
const maxItemSize = 256 << 10

// NewSpec builds the deterministic workload. Sizes come from
// workload.DefaultSizes (the distribution every experiment uses), data
// bytes and salts from the deterministic stream, so two calls with equal
// arguments are byte-identical.
func NewSpec(seed int64, nodes, k, files int) *Spec {
	sizes := workload.DefaultSizes(seed)
	spec := &Spec{Seed: seed, Nodes: nodes, K: k, Capacity: 64 << 20}
	for i := 0; i < files; i++ {
		size := sizes.Draw()
		if size > maxItemSize {
			size = maxItemSize
		}
		data := make([]byte, size)
		io.ReadFull(seccrypt.DetRand(uint64(seed)<<24+uint64(i)*2+11), data) //nolint:errcheck // DetRand never errors
		salt := make([]byte, 8)
		io.ReadFull(seccrypt.DetRand(uint64(seed)<<24+uint64(i)*2+12), salt) //nolint:errcheck
		spec.Items = append(spec.Items, Item{
			Name: fmt.Sprintf("conf-%d-%d.bin", seed, i),
			Data: data,
			Salt: salt,
		})
	}
	return spec
}

// ClientIndex is the card index of the capacity-zero client: one past the
// storage nodes, matching the simulator's node numbering.
func (s *Spec) ClientIndex() int { return s.Nodes }
