package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"past"
)

// pastnodeBin is built once for the whole package (TestMain) and shared
// by every multi-process test.
var pastnodeBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "pastnode-bin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	bin, err := BuildPastnode(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	pastnodeBin = bin
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// clusterDir picks where a test cluster's logs and data dirs live. With
// HARNESS_LOG_DIR set (CI does this) they land under it, outliving the
// test so a failed run can upload them as an artifact; otherwise a
// per-test temp dir that vanishes with the test.
func clusterDir(t *testing.T) string {
	t.Helper()
	if base := os.Getenv("HARNESS_LOG_DIR"); base != "" {
		dir := filepath.Join(base, t.Name())
		if err := os.MkdirAll(dir, 0o755); err == nil {
			return dir
		}
	}
	return t.TempDir()
}

// startCluster boots a real cluster for spec and registers teardown plus
// log dumping on failure.
func startCluster(t *testing.T, spec *Spec) *RealCluster {
	t.Helper()
	rc, err := StartRealCluster(pastnodeBin, clusterDir(t), spec, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("StartRealCluster: %v", err)
	}
	t.Cleanup(func() {
		rc.StopAll()
		if t.Failed() {
			t.Logf("node logs:\n%s", rc.CollectLogs())
		}
	})
	return rc
}

// TestSimDeterministic pins the simulator side of the conformance
// comparison: two runs of the same spec must agree bit-for-bit, deliver
// everything, and hold the k-replica invariant.
func TestSimDeterministic(t *testing.T) {
	spec := NewSpec(42, 5, 3, 10)
	out1, holders1, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	out2, holders2, err := RunSim(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Delivered != len(spec.Items) {
		t.Fatalf("delivered %d/%d", out1.Delivered, len(spec.Items))
	}
	if out1.Lookups != len(spec.Items) {
		t.Fatalf("lookups %d/%d", out1.Lookups, len(spec.Items))
	}
	if !reflect.DeepEqual(out1, out2) || !reflect.DeepEqual(holders1, holders2) {
		t.Fatal("simulator not deterministic across identical runs")
	}
	if err := CheckKReplica(holders1, spec.K); err != nil {
		t.Fatal(err)
	}
	// Receipts and stores must agree with each other inside the sim too.
	if !reflect.DeepEqual(out1.Placement, holders1) {
		t.Fatalf("receipt placement %v != store holders %v", out1.Placement, holders1)
	}
}

// hopTolerance is the stated tolerance on mean lookup hops between the
// simulator and the real cluster. Placement is proximity-independent and
// must match exactly, but the hop a lookup takes depends on the
// proximity metric (topology distance in sim, measured RTT on loopback),
// which legitimately differs — so hops get a tolerance while everything
// else is compared exactly.
const hopTolerance = 1.5

// TestConformance is the tentpole assertion: a 5-node real-socket
// cluster under seed 42 runs the E1-equivalent deterministic workload
// and must match the simulator on delivery count, per-fileId replica
// placement, lookup count, and the k-replica invariant, with mean hops
// within hopTolerance.
func TestConformance(t *testing.T) {
	spec := NewSpec(42, 5, 3, 12)
	sim, simHolders, err := RunSim(spec)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if sim.Delivered != len(spec.Items) {
		t.Fatalf("simulator delivered %d/%d; spec is not a clean baseline", sim.Delivered, len(spec.Items))
	}
	if err := CheckKReplica(simHolders, spec.K); err != nil {
		t.Fatalf("sim: %v", err)
	}

	rc := startCluster(t, spec)
	real, err := RunReal(rc)
	if err != nil {
		t.Fatalf("RunReal: %v", err)
	}
	if err := Compare(sim, real, hopTolerance); err != nil {
		t.Fatal(err)
	}
	// The real cluster's disks are the ground truth for the k-replica
	// invariant: every file sits on exactly k distinct nodes, and the
	// on-disk holders are exactly the receipt-attested ones.
	diskHolders, err := DiskHolders(rc.DataDirs())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckKReplica(diskHolders, spec.K); err != nil {
		t.Fatalf("real: %v", err)
	}
	if !reflect.DeepEqual(real.Placement, diskHolders) {
		t.Fatalf("receipts vs disks disagree:\nreceipts: %v\ndisks:    %v", real.Placement, diskHolders)
	}
	t.Logf("conformance: %d files, sim hops %.2f vs real hops %.2f", len(spec.Items), sim.MeanHops(), real.MeanHops())
}

// TestCrashRecovery SIGKILLs a replica holder mid-insert-stream,
// restarts it on the same port and data dir, and asserts (a) it
// re-verifies and serves its on-disk files ("recovered N files", zero
// quarantined), and (b) the k-replica invariant recovers across the
// cluster for every file inserted before and during the outage.
func TestCrashRecovery(t *testing.T) {
	spec := NewSpec(43, 5, 3, 10)
	rc := startCluster(t, spec)
	// Short op timeout: a mid-outage insert waits one RequestTimeout on
	// the dead replica holder before its file-diversion retry, and by
	// then failure detection (failtimeout 1.5s) has evicted it.
	client, card, err := rc.NewClient(6 * time.Second)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()

	insert := func(i int) (past.FileID, bool) {
		it := spec.Items[i]
		res, err := client.InsertSalted(card, it.Name, it.Data, spec.K, it.Salt)
		if err != nil {
			return past.FileID{}, false
		}
		return res.FileID, true
	}

	var files []past.FileID
	for i := 0; i < 5; i++ {
		f, ok := insert(i)
		if !ok {
			t.Fatalf("pre-crash insert %d failed", i)
		}
		files = append(files, f)
	}

	// Kill the node holding the most replicas, mid-stream.
	dirs := rc.DataDirs()
	victim, most := 0, -1
	for i, p := range rc.Nodes {
		entries, _ := os.ReadDir(dirs[p.NodeID()])
		if n := len(entries); n > most {
			victim, most = i, n
		}
	}
	preCrash := len(mustDir(t, dirs[rc.Nodes[victim].NodeID()])) / 2 // .bin + .json per file
	if preCrash == 0 {
		t.Fatal("victim holds nothing; workload too small")
	}
	if err := rc.Nodes[victim].Kill(); err != nil {
		t.Fatal(err)
	}

	// Keep inserting through the outage: these exercise timeout, failure
	// detection, and re-routing, and must still reach k receipts once the
	// dead node is evicted.
	for i := 5; i < 10; i++ {
		f, ok := insert(i)
		if !ok {
			t.Fatalf("mid-outage insert %d failed (failure detection should have evicted the dead node)", i)
		}
		files = append(files, f)
	}

	// Restart on the same port and data dir: the daemon must re-verify
	// its files (none corrupt → none quarantined) and rejoin.
	if err := rc.Nodes[victim].Restart(); err != nil {
		t.Fatal(err)
	}
	recovered, quarantined, err := rc.Nodes[victim].WaitRecovered(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != preCrash || quarantined != 0 {
		t.Fatalf("recovered %d files (%d quarantined), want %d (0)", recovered, quarantined, preCrash)
	}
	if _, err := rc.Nodes[victim].WaitLine("joined network", 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// The invariant recovers: every file ends up on >= k distinct disks
	// (re-replication during the outage plus the restarted node's
	// recovered copies can transiently leave more than k).
	deadline := time.Now().Add(60 * time.Second)
	for {
		holders, err := DiskHolders(rc.DataDirs())
		if err != nil {
			t.Fatal(err)
		}
		under := 0
		for _, f := range files {
			if len(holders[f.String()]) < spec.K {
				under++
			}
		}
		if under == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d files still under-replicated after recovery window:\n%v", under, holders)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func mustDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// TestE2ERoundTrip is the pastctl round-trip against a 5-process
// cluster: insert → lookup (content-verified) → reclaim → lookup fails
// and the bytes leave every disk. CI runs it under -race with a
// wall-clock timeout.
func TestE2ERoundTrip(t *testing.T) {
	spec := NewSpec(44, 5, 3, 1)
	rc := startCluster(t, spec)
	// Short op timeout: the post-reclaim lookup resolves by timing out.
	client, card, err := rc.NewClient(6 * time.Second)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer client.Close()

	it := spec.Items[0]
	ins, err := client.InsertSalted(card, it.Name, it.Data, spec.K, it.Salt)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if len(ins.Receipts) != spec.K {
		t.Fatalf("insert got %d receipts, want %d", len(ins.Receipts), spec.K)
	}

	got, err := client.Lookup(ins.FileID)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if string(got.Data) != string(it.Data) {
		t.Fatal("lookup returned different bytes than inserted")
	}

	rec, err := client.Reclaim(card, ins.FileID)
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	if rec.Freed == 0 || len(rec.Receipts) == 0 {
		t.Fatalf("reclaim freed %d bytes with %d receipts", rec.Freed, len(rec.Receipts))
	}

	if _, err := client.Lookup(ins.FileID); err == nil {
		t.Fatal("lookup succeeded after reclaim")
	} else if !errors.Is(err, past.ErrNotFound) && !errors.Is(err, past.ErrTimeout) {
		t.Fatalf("post-reclaim lookup: unexpected error %v", err)
	}

	// The bytes must leave every disk (weak reclaim still reaches the
	// whole replica set here; poll for the deletes to land).
	deadline := time.Now().Add(30 * time.Second)
	for {
		holders, err := DiskHolders(rc.DataDirs())
		if err != nil {
			t.Fatal(err)
		}
		if len(holders[ins.FileID.String()]) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("file still on %d disks after reclaim", len(holders[ins.FileID.String()]))
		}
		time.Sleep(100 * time.Millisecond)
	}
}
