// Package harness runs sim-vs-real conformance checks: it boots real
// pastnode processes on loopback, drives the same deterministic workload
// through them and through an in-process simulator cluster of identical
// seed and membership, and compares the structural outputs (deliveries,
// replica placement, the k-replica invariant, hop counts). It also
// provides the multi-process plumbing for crash-recovery and end-to-end
// tests: SIGKILL, restart on the same address and data dir, and stdout
// markers ("recovered N files") to synchronize on.
package harness

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"past/internal/telemetry"
)

// BuildPastnode compiles cmd/pastnode once into dir and returns the
// binary path. It must run with the repo as working directory tree (tests
// run in their package directory, which is inside the module).
func BuildPastnode(dir string) (string, error) {
	bin := filepath.Join(dir, "pastnode")
	cmd := exec.Command("go", "build", "-o", bin, "past/cmd/pastnode")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("harness: build pastnode: %v\n%s", err, out)
	}
	return bin, nil
}

// ProcNode is one pastnode child process with captured, parseable output.
type ProcNode struct {
	Bin     string
	Args    []string // flags of the most recent start, for restarts
	LogPath string

	mu      sync.Mutex
	lines   []string
	cmd     *exec.Cmd
	done    chan struct{}
	addr    string
	nodeID  string
	telAddr string
}

var (
	listenRe    = regexp.MustCompile(`nodeId ([0-9a-f]+) listening on ([0-9.:]+)`)
	recoveredRe = regexp.MustCompile(`recovered (\d+) files from .* \((\d+) quarantined\)`)
	statusRe    = regexp.MustCompile(`storing (\d+) files, (\d+) peers known`)
	telemetryRe = regexp.MustCompile(`telemetry on ([0-9.:]+)`)
)

// StartProc launches pastnode with the given flags, tees its output to
// logPath, and returns once the process is running (not yet joined).
func StartProc(bin string, args []string, logPath string) (*ProcNode, error) {
	p := &ProcNode{Bin: bin, Args: args, LogPath: logPath}
	if err := p.start(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *ProcNode) start() error {
	logFile, err := os.OpenFile(p.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(p.Bin, p.Args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		logFile.Close()
		return err
	}
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return err
	}
	done := make(chan struct{})
	p.mu.Lock()
	p.cmd = cmd
	p.done = done
	p.mu.Unlock()
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logFile, line)
			p.mu.Lock()
			p.lines = append(p.lines, line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				p.nodeID, p.addr = m[1], m[2]
			}
			if m := telemetryRe.FindStringSubmatch(line); m != nil {
				p.telAddr = m[1]
			}
			p.mu.Unlock()
		}
		cmd.Wait() //nolint:errcheck // exit status is irrelevant; tests assert on output
		logFile.Close()
		close(done)
	}()
	return nil
}

// WaitLine blocks until a stdout line containing substr appears (matching
// lines printed since the last start too) or the timeout expires.
func (p *ProcNode) WaitLine(substr string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	seen := 0
	for {
		p.mu.Lock()
		for _, line := range p.lines[seen:] {
			seen++
			if strings.Contains(line, substr) {
				p.mu.Unlock()
				return line, nil
			}
		}
		p.mu.Unlock()
		if time.Now().After(deadline) {
			return "", fmt.Errorf("harness: timed out waiting for %q in %s (log: %s)", substr, p.LogPath, p.LogPath)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Addr returns the node's listen address (valid after WaitListening).
func (p *ProcNode) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// NodeID returns the node's hex nodeId (valid after WaitListening).
func (p *ProcNode) NodeID() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodeID
}

// WaitListening blocks until the node has printed its listen line.
func (p *ProcNode) WaitListening(timeout time.Duration) error {
	_, err := p.WaitLine("listening on", timeout)
	return err
}

// WaitRecovered blocks until the node reports its disk recovery and
// returns the recovered and quarantined counts.
func (p *ProcNode) WaitRecovered(timeout time.Duration) (recovered, quarantined int, err error) {
	line, err := p.WaitLine("recovered", timeout)
	if err != nil {
		return 0, 0, err
	}
	m := recoveredRe.FindStringSubmatch(line)
	if m == nil {
		return 0, 0, fmt.Errorf("harness: unparseable recovery line %q", line)
	}
	recovered, _ = strconv.Atoi(m[1])
	quarantined, _ = strconv.Atoi(m[2])
	return recovered, quarantined, nil
}

// PeersKnown returns the peer count from the node's most recent status
// line, or -1 if none has been printed yet.
func (p *ProcNode) PeersKnown() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.lines) - 1; i >= 0; i-- {
		if m := statusRe.FindStringSubmatch(p.lines[i]); m != nil {
			n, _ := strconv.Atoi(m[2])
			return n
		}
	}
	return -1
}

// Kill sends SIGKILL (the crash under test) and waits for the process to
// die. The data directory survives; Restart brings the node back.
func (p *ProcNode) Kill() error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("harness: not running")
	}
	cmd.Process.Kill() //nolint:errcheck // already-dead is fine
	<-done
	return nil
}

// Stop shuts the node down gracefully (SIGTERM), escalating to SIGKILL
// after the timeout.
func (p *ProcNode) Stop(timeout time.Duration) error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck // already-dead is fine
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		cmd.Process.Kill() //nolint:errcheck
		<-done
		return fmt.Errorf("harness: %s needed SIGKILL after SIGTERM", p.LogPath)
	}
}

// TelemetryAddr waits for the daemon's telemetry listener announcement
// and returns its address (the node must run with -telemetry).
func (p *ProcNode) TelemetryAddr(timeout time.Duration) (string, error) {
	if _, err := p.WaitLine("telemetry on", timeout); err != nil {
		return "", err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.telAddr, nil
}

// ScrapeTelemetry dials a pastnode telemetry port and parses the one-shot
// line-protocol dump it serves.
func ScrapeTelemetry(addr string) ([]telemetry.LPPoint, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return nil, err
	}
	return telemetry.ParseLP(conn)
}

// GaugeValues extracts one gauge series' values in timestamp order.
func GaugeValues(points []telemetry.LPPoint, name string) []float64 {
	pts := make([]telemetry.LPPoint, 0, len(points))
	for _, p := range points {
		if p.Name == name {
			pts = append(pts, p)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].TS < pts[j].TS })
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Fields["value"]
	}
	return vals
}

// ReserveAddrs picks n distinct free loopback addresses and releases
// them, so a chaos schedule can name per-link rules before the processes
// that will own the addresses exist. The window between release and
// rebind is benign on loopback (nothing else races for the port).
func ReserveAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close() //nolint:errcheck // reservation release
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// Restart relaunches the node with the same flags, pinning the listen
// address the previous incarnation bound (a ":0" flag is rewritten to the
// concrete port), so it models a crashed daemon coming back on the same
// endpoint with the same data dir.
func (p *ProcNode) Restart() error {
	p.mu.Lock()
	if p.addr != "" {
		for i := 0; i < len(p.Args)-1; i++ {
			if p.Args[i] == "-listen" {
				p.Args[i+1] = p.addr
			}
		}
	}
	p.lines = nil
	p.addr, p.nodeID, p.telAddr = "", "", ""
	p.mu.Unlock()
	return p.start()
}
