// Package telemetry is the windowed time-series layer shared by the
// simulator and the real daemon. A Recorder holds named series in
// fixed-capacity ring buffers; values are aggregated per time window and
// flushed when the clock crosses a window boundary.
//
// Determinism: the Recorder never reads a wall clock or draws random
// numbers. Window boundaries lie on a fixed grid (multiples of
// Config.Window) and callers supply the clock — the simulator ticks the
// recorder at window barriers (where every shard is quiescent), so the
// flushed series depend only on the virtual schedule, which is identical
// at any shard/worker count. The daemon ticks from a periodic tasks job
// with time-since-start and stamps real time via Config.EpochNs.
//
// Concurrency: Counter.Add is a single atomic add and Dist.Observe a
// short mutex — neither is placed on the simulator's insert/lookup fast
// path, which stays untouched; simulator series instead sample existing
// per-node counters at flush time. Flush/Tick/WriteLP serialize on the
// Recorder mutex.
package telemetry

import (
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"past/internal/metrics"
)

// Config shapes a Recorder.
type Config struct {
	// Window is the aggregation interval (default 1s).
	Window time.Duration
	// Capacity is how many windows each series retains; older points are
	// overwritten ring-buffer style (default 512).
	Capacity int
	// DistLimit bounds per-window observations retained by each Dist for
	// quantiles; beyond it a deterministic reservoir takes over
	// (default 4096, see metrics.Summary.Limit).
	DistLimit int
	// EpochNs is added to every window-start timestamp on export. The
	// simulator leaves it zero (timestamps are virtual nanoseconds); the
	// daemon sets it to its start time in Unix nanoseconds.
	EpochNs int64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.DistLimit <= 0 {
		c.DistLimit = 4096
	}
	return c
}

// Point is one flushed window of one series.
type Point struct {
	// At is the window start, relative to the recorder's clock origin.
	At time.Duration
	// Vals holds one value per series field, in field order.
	Vals []float64
}

const (
	kindCounter = iota
	kindDist
	kindGauge
	kindMulti
)

// Series is one named stream of per-window points.
type Series struct {
	name   string
	fields []string
	kind   int

	counter *Counter
	dist    *Dist
	gauge   func() float64
	multi   func() []float64

	// ring buffer of flushed windows
	buf  []Point
	head int // index of oldest point
	n    int // number of valid points
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Fields returns the field names, in emit order.
func (s *Series) Fields() []string { return append([]string(nil), s.fields...) }

func (s *Series) push(p Point) {
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = p
		s.n++
		return
	}
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
}

// points returns the retained windows, oldest first.
func (s *Series) points() []Point {
	out := make([]Point, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.head+i)%len(s.buf)])
	}
	return out
}

// Counter is a monotonically increasing event count. Add is one atomic
// add; each flush records the delta since the previous flush.
type Counter struct {
	v    atomic.Uint64
	prev uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Dist accumulates per-window observations and flushes
// count/mean/min/max/p50/p99. Observe takes a short mutex; it is meant
// for experiment drivers and daemon operation completions, not for the
// simulator's per-message fast path.
type Dist struct {
	mu sync.Mutex
	s  metrics.Summary
}

// Observe records one observation into the current window.
func (d *Dist) Observe(v float64) {
	d.mu.Lock()
	d.s.Add(v)
	d.mu.Unlock()
}

// Recorder owns a set of series and the window clock.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	tags    [][2]string // sorted by key
	series  []*Series
	byName  map[string]*Series
	aligned bool
	cur     int64        // window start ns of the open window
	next    atomic.Int64 // ns at which the open window closes
}

// New returns a Recorder with cfg (zero fields take defaults).
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults(), byName: make(map[string]*Series)}
}

// Window returns the aggregation interval.
func (r *Recorder) Window() time.Duration { return r.cfg.Window }

// SetTag attaches a constant tag emitted with every point. Tags are kept
// sorted by key so line-protocol output is deterministic.
func (r *Recorder) SetTag(key, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.tags {
		if r.tags[i][0] == key {
			r.tags[i][1] = value
			return
		}
	}
	r.tags = append(r.tags, [2]string{key, value})
	sort.Slice(r.tags, func(i, j int) bool { return r.tags[i][0] < r.tags[j][0] })
}

func (r *Recorder) register(s *Series) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[s.name]; ok {
		return old
	}
	s.buf = make([]Point, r.cfg.Capacity)
	r.series = append(r.series, s)
	r.byName[s.name] = s
	return s
}

// Counter registers (or returns) a counter series named name. The series
// emits fields value (events this window) and per_sec.
func (r *Recorder) Counter(name string) *Counter {
	s := r.register(&Series{name: name, fields: []string{"value", "per_sec"}, kind: kindCounter, counter: &Counter{}})
	return s.counter
}

// Dist registers (or returns) a distribution series named name, emitting
// count/mean/min/max/p50/p99 per window.
func (r *Recorder) Dist(name string) *Dist {
	d := &Dist{}
	d.s.Limit(r.cfg.DistLimit)
	s := r.register(&Series{name: name, fields: []string{"count", "mean", "min", "max", "p50", "p99"}, kind: kindDist, dist: d})
	return s.dist
}

// Gauge registers a single-field series sampled by calling fn once per
// window flush. fn must be a pure read: it runs at simulator barriers
// and must not mutate shared state or draw randomness.
func (r *Recorder) Gauge(name string, fn func() float64) {
	r.register(&Series{name: name, fields: []string{"value"}, kind: kindGauge, gauge: fn})
}

// Multi registers a multi-field series; fn is called once per window
// flush and must return len(fields) values. Closures that keep previous
// cumulative totals and return per-window deltas get exactly-once-per-
// window delta semantics.
func (r *Recorder) Multi(name string, fields []string, fn func() []float64) {
	r.register(&Series{name: name, fields: append([]string(nil), fields...), kind: kindMulti, multi: fn})
}

// Tick advances the window clock to now, flushing every completed
// window. The fast path (no boundary crossed) is one atomic load.
func (r *Recorder) Tick(now time.Duration) {
	if r.aligned && int64(now) < r.next.Load() {
		return
	}
	r.mu.Lock()
	r.tickLocked(now)
	r.mu.Unlock()
}

func (r *Recorder) tickLocked(now time.Duration) {
	w := int64(r.cfg.Window)
	if !r.aligned {
		// First tick: open the window containing now on the fixed grid.
		r.aligned = true
		r.cur = int64(now) / w * w
		r.next.Store(r.cur + w)
		return
	}
	for int64(now) >= r.next.Load() {
		r.flushWindow()
		r.cur = r.next.Load()
		r.next.Store(r.cur + w)
	}
}

// Flush closes any completed windows up to now and then the open partial
// window, if it has nonzero elapsed time. Call once at end of run.
func (r *Recorder) Flush(now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tickLocked(now)
	if r.aligned && int64(now) > r.cur {
		r.flushWindow()
		r.cur = int64(now)
		r.next.Store(r.cur) // any later tick reopens on the grid
		r.aligned = false
	}
}

// flushWindow appends one point per series for the window starting at
// r.cur. Caller holds r.mu.
func (r *Recorder) flushWindow() {
	secs := r.cfg.Window.Seconds()
	for _, s := range r.series {
		p := Point{At: time.Duration(r.cur)}
		switch s.kind {
		case kindCounter:
			cum := s.counter.v.Load()
			delta := cum - s.counter.prev
			s.counter.prev = cum
			p.Vals = []float64{float64(delta), float64(delta) / secs}
		case kindDist:
			d := s.dist
			d.mu.Lock()
			p.Vals = []float64{
				float64(d.s.N()), d.s.Mean(), d.s.Min(), d.s.Max(),
				d.s.Percentile(50), d.s.Percentile(99),
			}
			d.s.Reset()
			d.mu.Unlock()
		case kindGauge:
			p.Vals = []float64{sanitize(s.gauge())}
		case kindMulti:
			vals := s.multi()
			p.Vals = make([]float64, len(s.fields))
			for i := range p.Vals {
				if i < len(vals) {
					p.Vals[i] = sanitize(vals[i])
				}
			}
		}
		s.push(p)
	}
}

// sanitize maps NaN/Inf (e.g. 0/0 ratios) to 0 so the line protocol
// stays parseable.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Points returns the retained windows of the named series, oldest first
// (nil if the series does not exist).
func (r *Recorder) Points(name string) []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byName[name]
	if !ok {
		return nil
	}
	return s.points()
}

// SeriesNames returns the registered series names in registration order.
func (r *Recorder) SeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.series))
	for i, s := range r.series {
		out[i] = s.name
	}
	return out
}

// WriteLP dumps every retained point in line protocol, series in
// registration order, points oldest first.
func (r *Recorder) WriteLP(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return writeLP(w, r.cfg.EpochNs, r.tags, r.series)
}
