// Line-protocol export and parsing. The format is the InfluxDB text
// line protocol restricted to float fields:
//
//	measurement[,tag=val...] field=val[,field=val...] timestampNs
//
// Tags are emitted sorted by key and values use strconv's shortest
// round-trippable float form, so identical recorder state always yields
// byte-identical output — the property TestTelemetryShardDeterminism
// pins across shard counts.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

func writeLP(w io.Writer, epochNs int64, tags [][2]string, series []*Series) error {
	bw := bufio.NewWriter(w)
	var tagSuffix strings.Builder
	for _, t := range tags {
		tagSuffix.WriteByte(',')
		tagSuffix.WriteString(escapeLP(t[0]))
		tagSuffix.WriteByte('=')
		tagSuffix.WriteString(escapeLP(t[1]))
	}
	for _, s := range series {
		for _, p := range s.points() {
			bw.WriteString(escapeLP(s.name))
			bw.WriteString(tagSuffix.String())
			bw.WriteByte(' ')
			for i, f := range s.fields {
				if i > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(f)
				bw.WriteByte('=')
				var v float64
				if i < len(p.Vals) {
					v = p.Vals[i]
				}
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(epochNs+int64(p.At), 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// escapeLP escapes the characters the line protocol reserves in
// measurement names and tag keys/values.
func escapeLP(s string) string {
	if !strings.ContainsAny(s, ", =") {
		return s
	}
	r := strings.NewReplacer(",", `\,`, " ", `\ `, "=", `\=`)
	return r.Replace(s)
}

// LPPoint is one parsed line-protocol record.
type LPPoint struct {
	Name   string
	Tags   map[string]string
	Fields map[string]float64
	TS     int64
}

// ParseLP parses line-protocol text as emitted by WriteLP. It exists for
// tests and tooling (round-trip checks, trend extraction); it handles
// the subset WriteLP produces: float fields, escaped tags, ns timestamps.
func ParseLP(r io.Reader) ([]LPPoint, error) {
	var out []LPPoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := splitLP(line, ' ')
		if len(parts) != 3 {
			return nil, fmt.Errorf("telemetry: line %d: want 3 sections, got %d", lineNo, len(parts))
		}
		p := LPPoint{Tags: map[string]string{}, Fields: map[string]float64{}}
		// Section 1: measurement[,tag=val...]
		keyParts := splitLP(parts[0], ',')
		p.Name = unescapeLP(keyParts[0])
		for _, kv := range keyParts[1:] {
			k, v, ok := cutLP(kv)
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: bad tag %q", lineNo, kv)
			}
			p.Tags[unescapeLP(k)] = unescapeLP(v)
		}
		// Section 2: field=val[,field=val...]
		for _, kv := range splitLP(parts[1], ',') {
			k, v, ok := cutLP(kv)
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: bad field %q", lineNo, kv)
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: line %d: field %s: %v", lineNo, k, err)
			}
			p.Fields[unescapeLP(k)] = f
		}
		ts, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: timestamp: %v", lineNo, err)
		}
		p.TS = ts
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// splitLP splits on sep, honoring backslash escapes.
func splitLP(s string, sep byte) []string {
	var parts []string
	var cur strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && i+1 < len(s):
			cur.WriteByte(s[i])
			cur.WriteByte(s[i+1])
			i++
		case s[i] == sep:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(s[i])
		}
	}
	parts = append(parts, cur.String())
	return parts
}

// cutLP splits key=value at the first unescaped '='.
func cutLP(s string) (key, value string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '=' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

func unescapeLP(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	r := strings.NewReplacer(`\,`, ",", `\ `, " ", `\=`, "=")
	return r.Replace(s)
}
