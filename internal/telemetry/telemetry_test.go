package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRingWraparound pins the fixed-capacity retention: with capacity c,
// only the newest c windows survive, oldest first.
func TestRingWraparound(t *testing.T) {
	r := New(Config{Window: time.Second, Capacity: 4})
	var v float64
	r.Gauge("g", func() float64 { return v })
	for i := 0; i < 10; i++ {
		v = float64(i)
		// Tick at the *end* of window i so the flush samples this
		// window's value.
		r.Tick(time.Duration(i+1) * time.Second)
	}
	// Windows flushed: tick at (i+1)s closes window [i-? ...]; first tick
	// aligns only. Nine flushes happened (i=1..9), values 1..9; capacity
	// keeps the last four.
	pts := r.Points("g")
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	wantVals := []float64{6, 7, 8, 9}
	wantAt := []time.Duration{6 * time.Second, 7 * time.Second, 8 * time.Second, 9 * time.Second}
	for i, p := range pts {
		if p.Vals[0] != wantVals[i] || p.At != wantAt[i] {
			t.Fatalf("point %d = {%v %v}, want {%v %v}", i, p.At, p.Vals[0], wantAt[i], wantVals[i])
		}
	}
}

// TestCounterWindows pins counter delta/rate semantics across windows.
func TestCounterWindows(t *testing.T) {
	r := New(Config{Window: 2 * time.Second, Capacity: 16})
	c := r.Counter("ops")
	r.Tick(0) // align
	c.Add(10)
	r.Tick(2 * time.Second)
	c.Add(4)
	r.Tick(6 * time.Second) // crosses two boundaries: 4s and 6s
	pts := r.Points("ops")
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].Vals[0] != 10 || pts[0].Vals[1] != 5 {
		t.Fatalf("window 0 = %v, want value=10 per_sec=5", pts[0].Vals)
	}
	if pts[1].Vals[0] != 4 {
		t.Fatalf("window 1 delta = %v, want 4", pts[1].Vals[0])
	}
	if pts[2].Vals[0] != 0 {
		t.Fatalf("catch-up window delta = %v, want 0", pts[2].Vals[0])
	}
}

// TestDistReset pins that each window's distribution is independent.
func TestDistReset(t *testing.T) {
	r := New(Config{Window: time.Second, Capacity: 8})
	d := r.Dist("lat")
	r.Tick(0)
	d.Observe(1)
	d.Observe(3)
	r.Tick(time.Second)
	d.Observe(7)
	r.Tick(2 * time.Second)
	pts := r.Points("lat")
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Vals[0] != 2 || pts[0].Vals[1] != 2 { // count, mean
		t.Fatalf("window 0 = %v, want count=2 mean=2", pts[0].Vals)
	}
	if pts[1].Vals[0] != 1 || pts[1].Vals[3] != 7 { // count, max
		t.Fatalf("window 1 = %v, want count=1 max=7", pts[1].Vals)
	}
}

// TestFlushPartialWindow pins that Flush emits the trailing partial
// window and that a Flush at an exact boundary does not double-emit.
func TestFlushPartialWindow(t *testing.T) {
	r := New(Config{Window: time.Second, Capacity: 8})
	c := r.Counter("ops")
	r.Tick(0)
	c.Add(2)
	r.Flush(1500 * time.Millisecond) // full window [0,1s) + partial [1s,1.5s)
	pts := r.Points("ops")
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (full + partial)", len(pts))
	}
	if pts[0].Vals[0] != 2 || pts[1].Vals[0] != 0 {
		t.Fatalf("deltas = %v,%v, want 2,0", pts[0].Vals[0], pts[1].Vals[0])
	}

	r2 := New(Config{Window: time.Second, Capacity: 8})
	c2 := r2.Counter("ops")
	r2.Tick(0)
	c2.Add(5)
	r2.Flush(time.Second) // exact boundary: one window only
	if got := len(r2.Points("ops")); got != 1 {
		t.Fatalf("boundary flush emitted %d points, want 1", got)
	}
}

// TestLPRoundTrip pins that WriteLP output parses back into the same
// names, tags, fields, and timestamps, and that emission is
// deterministic (two dumps are byte-identical).
func TestLPRoundTrip(t *testing.T) {
	r := New(Config{Window: time.Second, Capacity: 8, EpochNs: 1000})
	r.SetTag("zone", "eu west") // space forces escaping
	r.SetTag("exp", "E15")
	c := r.Counter("lookups")
	d := r.Dist("hops")
	r.Gauge("live_nodes", func() float64 { return 39.5 })
	r.Tick(0)
	c.Add(3)
	d.Observe(2)
	d.Observe(4)
	r.Tick(time.Second)
	r.Tick(2 * time.Second)

	var b1, b2 bytes.Buffer
	if err := r.WriteLP(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteLP(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two WriteLP dumps differ")
	}

	pts, err := ParseLP(&b1)
	if err != nil {
		t.Fatalf("ParseLP: %v", err)
	}
	// 3 series x 2 windows
	if len(pts) != 6 {
		t.Fatalf("parsed %d points, want 6", len(pts))
	}
	for _, p := range pts {
		if p.Tags["exp"] != "E15" || p.Tags["zone"] != "eu west" {
			t.Fatalf("tags lost: %v", p.Tags)
		}
	}
	if pts[0].Name != "lookups" || pts[0].Fields["value"] != 3 || pts[0].TS != 1000 {
		t.Fatalf("first point = %+v, want lookups value=3 ts=1000", pts[0])
	}
	if pts[2].Name != "hops" || pts[2].Fields["p99"] != 4 || pts[2].Fields["count"] != 2 {
		t.Fatalf("hops point = %+v", pts[2])
	}
	// Tags must be sorted by key in the raw text.
	line := strings.SplitN(b2.String(), "\n", 2)[0]
	if !strings.HasPrefix(line, `lookups,exp=E15,zone=eu\ west `) {
		t.Fatalf("tag order/escaping wrong: %q", line)
	}
}

// TestTickFastPath pins that ticks inside a window emit nothing.
func TestTickFastPath(t *testing.T) {
	r := New(Config{Window: time.Second, Capacity: 8})
	r.Gauge("g", func() float64 { return 1 })
	r.Tick(0)
	for i := 0; i < 100; i++ {
		r.Tick(time.Duration(i) * time.Millisecond)
	}
	if got := len(r.Points("g")); got != 0 {
		t.Fatalf("mid-window ticks flushed %d points, want 0", got)
	}
}
