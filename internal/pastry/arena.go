package pastry

import "past/internal/wire"

// Arena is a slab allocator for bulk network construction. Building 100k
// nodes one protocol join at a time leaves each node's routing rows and
// leaf-set halves as separate heap objects — hundreds of thousands of
// small allocations the GC then scans forever. The analytic builder in
// internal/cluster instead carves every row and half out of a handful of
// large slabs, cutting allocator overhead and GC scan work by orders of
// magnitude.
//
// Carved slices are handed out with capacity clamped to their length
// (three-index slicing), so a later append — a leaf-set insertion during
// repair, say — reallocates onto the heap instead of clobbering the
// neighboring carve. The arena therefore never needs to be "closed": state
// seeded from it degrades gracefully to ordinary heap allocation the
// moment the protocol starts mutating it.
//
// An Arena is not safe for concurrent use; the bulk builder runs on one
// goroutine before the simulation starts.
type Arena struct {
	entries []entry
	refs    []wire.NodeRef

	// entrySlab/refSlab size new slabs; they double up to a cap so the
	// slab count stays O(log total) without overshooting small builds.
	entrySlab int
	refSlab   int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{entrySlab: 4096, refSlab: 4096} }

const maxSlab = 1 << 20

// entryRow carves a zeroed row of n entries.
func (a *Arena) entryRow(n int) []entry {
	if len(a.entries) < n {
		if a.entrySlab < maxSlab {
			a.entrySlab *= 2
		}
		size := a.entrySlab
		if size < n {
			size = n
		}
		a.entries = make([]entry, size)
	}
	out := a.entries[:n:n]
	a.entries = a.entries[n:]
	return out
}

// Refs carves a zeroed slice of n node references (leaf-set halves,
// neighborhood seeds). Appending beyond n spills to the heap.
func (a *Arena) Refs(n int) []wire.NodeRef {
	if len(a.refs) < n {
		if a.refSlab < maxSlab {
			a.refSlab *= 2
		}
		size := a.refSlab
		if size < n {
			size = n
		}
		a.refs = make([]wire.NodeRef, size)
	}
	out := a.refs[:n:n]
	a.refs = a.refs[n:]
	return out
}
