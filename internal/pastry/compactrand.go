package pastry

// Compact per-node randomness for very large simulations.
//
// The Go 1 math/rand source behind rand.New(rand.NewSource(seed)) is an
// additive lagged-Fibonacci generator holding 607 int64s (~4.9 KiB) —
// the single largest fixed cost of a simulated Pastry node once routing
// state is lazily allocated. A node's stream is only used for nonces and
// the randomized-routing bias draw, neither of which needs that much
// state, so Config.CompactRand swaps in a splitmix64 source (one uint64
// of state, ~150× smaller).
//
// The two sources produce DIFFERENT streams for the same seed, so the
// flag must never be enabled for a tier whose recorded tables predate it:
// the Small/Full experiment tiers keep the Go 1 source (their seed-42
// tables are pinned byte-for-byte), and only the bulk-constructed
// Large/Huge tiers — whose output is new — run compact.

// splitmix64 implements rand.Source64 using the SplitMix64 finalizer
// (Steele et al., "Fast splittable pseudorandom number generators"). It
// passes through rand.New, so every draw helper (Int63, Float64, ...)
// behaves exactly as with any other source.
type splitmix64 struct {
	state uint64
}

func newSplitmix64(seed int64) *splitmix64 { return &splitmix64{state: uint64(seed)} }

// Uint64 implements rand.Source64.
func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Int63 implements rand.Source.
func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
