package pastry

import (
	"math/rand"
	"testing"
	"testing/quick"

	"past/internal/id"
	"past/internal/wire"
)

func ref(seed uint64) wire.NodeRef {
	return wire.NodeRef{ID: id.Rand(seed), Addr: "sim:0"}
}

func refWithID(n id.Node) wire.NodeRef {
	return wire.NodeRef{ID: n, Addr: "sim:0"}
}

// ---------------------------------------------------------------------------
// Routing table

func TestRoutingTableConsiderAndLookup(t *testing.T) {
	owner := id.Rand(1)
	rt := NewRoutingTable(owner, 4)
	// A node differing in the first digit goes into row 0.
	other := owner.SetDigit(0, 4, (owner.Digit(0, 4)+1)%16)
	if !rt.Consider(refWithID(other), 10) {
		t.Fatal("fresh entry rejected")
	}
	got, ok := rt.Get(0, other.Digit(0, 4))
	if !ok || got.ID != other {
		t.Fatal("entry not found at expected slot")
	}
	// Lookup for a key with the same first digit as `other` should find it.
	key := other.SetDigit(5, 4, (other.Digit(5, 4)+1)%16)
	e, ok := rt.Lookup(key)
	if !ok || e.ID != other {
		t.Fatal("Lookup missed row-0 entry")
	}
}

func TestRoutingTableKeepsProximallyClosest(t *testing.T) {
	owner := id.Rand(1)
	rt := NewRoutingTable(owner, 4)
	d := (owner.Digit(0, 4) + 1) % 16
	a := owner.SetDigit(0, 4, d)
	b := a.SetDigit(31, 4, (a.Digit(31, 4)+1)%16) // same slot, different node
	if id.CommonPrefix(owner, a, 4) != 0 || a.Digit(0, 4) != b.Digit(0, 4) {
		t.Fatal("test construction broken")
	}
	rt.Consider(refWithID(a), 50)
	if rt.Consider(refWithID(b), 100) {
		t.Fatal("farther node displaced closer one")
	}
	if got, _ := rt.Get(0, d); got.ID != a {
		t.Fatal("slot should keep a")
	}
	if !rt.Consider(refWithID(b), 10) {
		t.Fatal("closer node should displace")
	}
	if got, _ := rt.Get(0, d); got.ID != b {
		t.Fatal("slot should now hold b")
	}
}

func TestRoutingTableRefreshesSameNode(t *testing.T) {
	owner := id.Rand(1)
	rt := NewRoutingTable(owner, 4)
	a := owner.SetDigit(0, 4, (owner.Digit(0, 4)+1)%16)
	rt.Consider(wire.NodeRef{ID: a, Addr: "sim:1"}, 50)
	rt.Consider(wire.NodeRef{ID: a, Addr: "sim:2"}, 60)
	got, _ := rt.Get(0, a.Digit(0, 4))
	if got.Addr != "sim:2" {
		t.Fatal("address not refreshed")
	}
}

func TestRoutingTableRejectsOwner(t *testing.T) {
	owner := id.Rand(1)
	rt := NewRoutingTable(owner, 4)
	if rt.Consider(refWithID(owner), 1) {
		t.Fatal("owner must not enter its own table")
	}
	if rt.Size() != 0 {
		t.Fatal("table should be empty")
	}
}

func TestRoutingTableRemove(t *testing.T) {
	owner := id.Rand(1)
	rt := NewRoutingTable(owner, 4)
	a := owner.SetDigit(0, 4, (owner.Digit(0, 4)+1)%16)
	rt.Consider(refWithID(a), 1)
	if !rt.Remove(a) {
		t.Fatal("Remove missed present entry")
	}
	if rt.Remove(a) {
		t.Fatal("Remove on absent entry should report false")
	}
	if rt.Size() != 0 {
		t.Fatal("size after remove")
	}
}

func TestRoutingTableRowAndSize(t *testing.T) {
	owner := id.Rand(1)
	rt := NewRoutingTable(owner, 4)
	n := 0
	for v := 0; v < 16; v++ {
		if v == owner.Digit(0, 4) {
			continue
		}
		rt.Consider(refWithID(owner.SetDigit(0, 4, v).SetDigit(20, 4, v)), float64(v))
		n++
	}
	if rt.Size() != n || n != 15 {
		t.Fatalf("Size = %d, want 15", rt.Size())
	}
	if len(rt.Row(0)) != 15 {
		t.Fatalf("Row(0) has %d entries", len(rt.Row(0)))
	}
	if rt.PopulatedRows() != 1 {
		t.Fatalf("PopulatedRows = %d", rt.PopulatedRows())
	}
	if rt.Row(5) != nil {
		t.Fatal("empty row should be nil")
	}
	if rt.NumRows() != 32 {
		t.Fatalf("NumRows = %d for b=4", rt.NumRows())
	}
}

func TestRoutingTableDeepRow(t *testing.T) {
	owner := id.Rand(1)
	rt := NewRoutingTable(owner, 4)
	// Node sharing 10 digits goes to row 10.
	n10 := owner.SetDigit(10, 4, (owner.Digit(10, 4)+3)%16)
	rt.Consider(refWithID(n10), 1)
	if got, ok := rt.Get(10, n10.Digit(10, 4)); !ok || got.ID != n10 {
		t.Fatal("deep row entry missing")
	}
	if rt.PopulatedRows() != 11 {
		t.Fatalf("PopulatedRows = %d, want 11", rt.PopulatedRows())
	}
}

func TestRoutingTableQuickSlotInvariant(t *testing.T) {
	// Property: every populated slot (r,c) holds a node that shares
	// exactly r digits with the owner and whose digit r is c.
	owner := id.Rand(42)
	rt := NewRoutingTable(owner, 4)
	rng := rand.New(rand.NewSource(7))
	f := func(seed uint64, prox float64) bool {
		n := id.Rand(seed | rng.Uint64())
		rt.Consider(refWithID(n), prox)
		for r := 0; r < rt.NumRows(); r++ {
			for c := 0; c < 16; c++ {
				e, ok := rt.Get(r, c)
				if !ok {
					continue
				}
				if id.CommonPrefix(owner, e.ID, 4) != r || e.ID.Digit(r, 4) != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Leaf set

func TestLeafSetOrdering(t *testing.T) {
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 8)
	// Insert nodes at increasing clockwise offsets.
	var refs []wire.NodeRef
	for i := 1; i <= 10; i++ {
		d := id.Node{}
		d[id.NodeBytes-1] = byte(i)
		refs = append(refs, refWithID(owner.Add(d)))
	}
	// Insert in scrambled order.
	for _, i := range []int{5, 2, 9, 0, 7, 1, 8, 3, 6, 4} {
		ls.Consider(refs[i])
	}
	larger := ls.Larger()
	if len(larger) != 4 {
		t.Fatalf("larger half size %d, want 4", len(larger))
	}
	for i, m := range larger {
		if m.ID != refs[i].ID {
			t.Fatalf("larger[%d] wrong: got %v want %v", i, m.ID.Short(), refs[i].ID.Short())
		}
	}
}

func TestLeafSetBothSidesSmallRing(t *testing.T) {
	// With fewer nodes than l/2 the same node may appear on both sides.
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 8)
	other := refWithID(owner.Add(id.Rand(2)))
	ls.Consider(other)
	if !ls.Contains(other.ID) {
		t.Fatal("member missing")
	}
	if got := len(ls.Members()); got != 1 {
		t.Fatalf("Members deduplicated to %d, want 1", got)
	}
	if len(ls.Smaller()) != 1 || len(ls.Larger()) != 1 {
		t.Fatal("single peer should occupy both halves of a 2-node ring")
	}
}

func TestLeafSetRejectsOwnerAndDup(t *testing.T) {
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 8)
	if ls.Consider(refWithID(owner)) {
		t.Fatal("owner accepted")
	}
	m := ref(2)
	if !ls.Consider(m) {
		t.Fatal("fresh member rejected")
	}
	if ls.Consider(m) {
		t.Fatal("duplicate accepted")
	}
}

func TestLeafSetEviction(t *testing.T) {
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 4) // 2 per side
	d := func(i byte) wire.NodeRef {
		dd := id.Node{}
		dd[id.NodeBytes-1] = i
		return refWithID(owner.Add(dd))
	}
	ls.Consider(d(10))
	ls.Consider(d(20))
	// d(5) is closer clockwise: should evict d(20) from larger side.
	ls.Consider(d(5))
	larger := ls.Larger()
	if len(larger) != 2 || larger[0].ID != d(5).ID || larger[1].ID != d(10).ID {
		t.Fatalf("eviction wrong: %v", larger)
	}
	// A far node must be rejected outright.
	if changedLarger(ls, d(200)) {
		t.Fatal("far node accepted on full side")
	}
}

func changedLarger(ls *LeafSet, r wire.NodeRef) bool {
	before := ls.Larger()
	ls.Consider(r)
	after := ls.Larger()
	if len(before) != len(after) {
		return true
	}
	for i := range before {
		if before[i].ID != after[i].ID {
			return true
		}
	}
	return false
}

func TestLeafSetRemove(t *testing.T) {
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 8)
	m := ref(2)
	ls.Consider(m)
	if !ls.Remove(m.ID) {
		t.Fatal("Remove missed member")
	}
	if ls.Remove(m.ID) {
		t.Fatal("double remove reported true")
	}
	if ls.Contains(m.ID) {
		t.Fatal("still contains removed member")
	}
}

func TestLeafSetInRange(t *testing.T) {
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 4)
	// Underfull set covers the whole ring.
	if !ls.InRange(id.Rand(99)) {
		t.Fatal("underfull leaf set should cover everything")
	}
	d := func(i byte, up bool) wire.NodeRef {
		dd := id.Node{}
		dd[id.NodeBytes-1] = i
		if up {
			return refWithID(owner.Add(dd))
		}
		return refWithID(owner.Sub(dd))
	}
	ls.Consider(d(10, true))
	ls.Consider(d(20, true))
	ls.Consider(d(10, false))
	ls.Consider(d(20, false))
	if len(ls.Smaller()) != 2 || len(ls.Larger()) != 2 {
		t.Fatal("setup: sides should be full")
	}
	inside := id.Node{}
	inside[id.NodeBytes-1] = 15
	if !ls.InRange(owner.Add(inside)) {
		t.Fatal("key within span reported out of range")
	}
	if !ls.InRange(owner) {
		t.Fatal("owner in range")
	}
	outside := id.Node{}
	outside[id.NodeBytes-1] = 25
	if ls.InRange(owner.Add(outside)) {
		t.Fatal("key beyond span reported in range")
	}
	if ls.InRange(owner.Sub(outside)) {
		t.Fatal("key below span reported in range")
	}
	// Boundary members are in range.
	if !ls.InRange(d(20, true).ID) || !ls.InRange(d(20, false).ID) {
		t.Fatal("extreme members must be in range")
	}
}

func TestLeafSetClosest(t *testing.T) {
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 4)
	d := id.Node{}
	d[id.NodeBytes-1] = 10
	peer := refWithID(owner.Add(d))
	ls.Consider(peer)
	// Key right next to peer: peer is closest.
	key := peer.ID.Add(id.Node{})
	got, selfBest := ls.Closest(key)
	if selfBest || got.ID != peer.ID {
		t.Fatal("peer should be closest to its own vicinity")
	}
	// Key equal to owner: owner closest.
	if _, selfBest := ls.Closest(owner); !selfBest {
		t.Fatal("owner should be closest to itself")
	}
}

func TestLeafSetExtremeAndSide(t *testing.T) {
	owner := id.Rand(1)
	ls := NewLeafSet(owner, 4)
	d := func(i byte, up bool) wire.NodeRef {
		dd := id.Node{}
		dd[id.NodeBytes-1] = i
		if up {
			return refWithID(owner.Add(dd))
		}
		return refWithID(owner.Sub(dd))
	}
	up1, up2 := d(10, true), d(20, true)
	dn1 := d(10, false)
	ls.Consider(up1)
	ls.Consider(up2)
	ls.Consider(dn1)
	ext, ok := ls.Extreme(true)
	if !ok || ext.ID != up2.ID {
		t.Fatal("clockwise extreme wrong")
	}
	// With only three members and two slots per side, the smaller side
	// wraps around the ring: dn1 (distance 10 CCW) then up2 (distance
	// 2^128-20 CCW). The extreme is therefore up2.
	ext, ok = ls.Extreme(false)
	if !ok || ext.ID != up2.ID {
		t.Fatalf("counter-clockwise extreme = %v, want up2", ext.ID.Short())
	}
	if !ls.SideOf(up1.ID) {
		t.Fatal("up1 should be clockwise")
	}
	if ls.SideOf(dn1.ID) {
		t.Fatal("dn1 should be counter-clockwise")
	}
}

func TestLeafSetQuickClosestIsTrueMinimum(t *testing.T) {
	// Property: Closest returns the true numerically closest member.
	rng := rand.New(rand.NewSource(3))
	f := func(ownerSeed uint64, n uint8) bool {
		owner := id.Rand(ownerSeed)
		ls := NewLeafSet(owner, 16)
		var all []id.Node
		for i := 0; i < int(n%20)+1; i++ {
			m := id.Rand(rng.Uint64())
			if ls.Consider(refWithID(m)) {
				all = append(all, m)
			}
		}
		key := id.Rand(rng.Uint64())
		got, selfBest := ls.Closest(key)
		bestID := owner
		for _, m := range ls.Members() {
			if id.Closer(key, m.ID, bestID) {
				bestID = m.ID
			}
		}
		if selfBest {
			return bestID == owner
		}
		return got.ID == bestID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Neighborhood

func TestNeighborhoodKeepsClosest(t *testing.T) {
	nb := NewNeighborhood(3)
	nb.Consider(ref(1), 30)
	nb.Consider(ref(2), 10)
	nb.Consider(ref(3), 20)
	nb.Consider(ref(4), 5)
	members := nb.Members()
	if len(members) != 3 {
		t.Fatalf("len = %d", len(members))
	}
	if members[0].ID != id.Rand(4) || members[1].ID != id.Rand(2) || members[2].ID != id.Rand(3) {
		t.Fatal("neighborhood not sorted by proximity")
	}
	if nb.Consider(ref(5), 100) {
		t.Fatal("far node accepted into full set")
	}
	if nb.Consider(ref(2), 1) {
		t.Fatal("duplicate accepted")
	}
}

func TestNeighborhoodRemove(t *testing.T) {
	nb := NewNeighborhood(3)
	nb.Consider(ref(1), 1)
	if !nb.Remove(id.Rand(1)) {
		t.Fatal("remove missed")
	}
	if nb.Remove(id.Rand(1)) {
		t.Fatal("double remove")
	}
	if nb.Len() != 0 {
		t.Fatal("len after remove")
	}
}
