package pastry

import "past/internal/wire"

// Bulk-construction seeding. The analytic builder in internal/cluster
// computes routing tables, leaf sets, and neighborhood sets for a whole
// network directly from the sorted id ring (O(n log n) total work)
// instead of replaying n join protocols. These entry points install that
// precomputed state; they are only meant to be called on a node that has
// not yet joined a network and before the simulation delivers any
// traffic, so they take the lock only to keep the race detector honest
// about construction-vs-run ordering.

// SeedRoutingEntry installs ref at its prefix slot, allocating the row
// from a when non-nil. Unlike Consider it does not compare proximities —
// the builder already chose the winning candidate — but it does follow
// the same coordinate rules (the owner itself is silently skipped).
func (n *Node) SeedRoutingEntry(a *Arena, ref wire.NodeRef, prox float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	row, col, ok := n.rt.coords(ref.ID)
	if !ok {
		return
	}
	n.rt.ensureRow(row, a)[col] = entry{ref, prox}
}

// SeedLeafHalves replaces the leaf-set halves. Both slices must already be
// sorted closest-first in ring distance from this node (smaller =
// counter-clockwise, larger = clockwise) and contain at most l/2 entries
// each; ownership transfers to the node, so the builder typically carves
// them from an Arena and never touches them again.
func (n *Node) SeedLeafHalves(smaller, larger []wire.NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.leaf.smaller = smaller
	n.leaf.larger = larger
}

// SeedNeighborhood replaces the neighborhood set with refs (proximally
// closest first, paired with prox). len(refs) must not exceed M.
func (n *Node) SeedNeighborhood(refs []wire.NodeRef, prox []float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nbhd.entries = n.nbhd.entries[:0]
	for i, r := range refs {
		n.nbhd.entries = append(n.nbhd.entries, entry{r, prox[i]})
	}
}

// SeedJoined marks the node a full member without running the join
// protocol, mirroring what Bootstrap does for the first node: the node
// starts routing, answering joins, and (when configured) probing its leaf
// set for liveness.
func (n *Node) SeedJoined() {
	n.mu.Lock()
	n.joined = true
	n.alive = true
	n.mu.Unlock()
	n.startKeepAlive()
}
