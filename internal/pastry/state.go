// Package pastry implements the Pastry location and routing scheme used by
// PAST (section 2.2 of the paper): prefix-based routing in a circular
// 128-bit nodeId space, a routing table with ceil(128/b) rows of 2^b-1
// entries, a leaf set of the l numerically closest nodes, a neighborhood
// set of proximally close nodes, the self-organizing join protocol, leaf
// keep-alive failure detection with repair, lazy routing-table repair, and
// the randomized fault-tolerant routing variant.
package pastry

import (
	"sort"

	"past/internal/id"
	"past/internal/wire"
)

// entry is a routing-state slot: a node reference plus its proximity
// (the scalar metric of section 1) as measured from the owning node.
type entry struct {
	ref  wire.NodeRef
	prox float64
}

// ---------------------------------------------------------------------------
// Routing table

// RoutingTable is the prefix-routing structure of section 2.2: row n holds
// nodes whose nodeIds share the first n digits with the owner but differ in
// digit n. Both the row directory and individual rows are allocated
// lazily: in a network of N nodes only about log_2b N rows ever populate,
// so the directory grows on demand instead of holding all ceil(128/b)
// slots up front (at b=4 that is 32 slice headers — 768 bytes — per node,
// which matters when simulating 100k of them).
type RoutingTable struct {
	owner id.Node
	b     int
	rows  [][]entry
}

// NewRoutingTable creates an empty table for the given owner and digit
// size b.
func NewRoutingTable(owner id.Node, b int) *RoutingTable {
	return &RoutingTable{owner: owner, b: b}
}

// ensureRow grows the row directory through index row and materializes the
// row itself, drawing its backing array from a when non-nil (bulk
// construction) and the heap otherwise.
func (t *RoutingTable) ensureRow(row int, a *Arena) []entry {
	if row >= len(t.rows) {
		if row >= cap(t.rows) {
			grown := make([][]entry, row+1, max(row+1, 2*cap(t.rows)))
			copy(grown, t.rows)
			t.rows = grown
		}
		t.rows = t.rows[:row+1]
	}
	if t.rows[row] == nil {
		if a != nil {
			t.rows[row] = a.entryRow(1 << t.b)
		} else {
			t.rows[row] = make([]entry, 1<<t.b)
		}
	}
	return t.rows[row]
}

// coords returns the (row, col) slot where ref belongs, or ok=false when
// ref is the owner itself.
func (t *RoutingTable) coords(n id.Node) (row, col int, ok bool) {
	row = id.CommonPrefix(t.owner, n, t.b)
	if row >= id.NumDigits(t.b) {
		return 0, 0, false // same id as owner
	}
	return row, n.Digit(row, t.b), true
}

// Consider offers a node for inclusion. The slot keeps the proximally
// closest candidate ("among such nodes, the one closest to the present
// node, according to the proximity metric, is chosen", section 2.2).
// It reports whether the entry was installed.
func (t *RoutingTable) Consider(ref wire.NodeRef, prox float64) bool {
	row, col, ok := t.coords(ref.ID)
	if !ok {
		return false
	}
	slot := &t.ensureRow(row, nil)[col]
	if slot.ref.IsZero() {
		*slot = entry{ref, prox}
		return true
	}
	if slot.ref.ID == ref.ID {
		slot.ref.Addr = ref.Addr // refresh address
		slot.prox = prox
		return true
	}
	if prox < slot.prox {
		*slot = entry{ref, prox}
		return true
	}
	return false
}

// Get returns the entry at (row, col) and whether it is populated.
func (t *RoutingTable) Get(row, col int) (wire.NodeRef, bool) {
	if row < 0 || row >= len(t.rows) || t.rows[row] == nil {
		return wire.NodeRef{}, false
	}
	if col < 0 || col >= len(t.rows[row]) {
		return wire.NodeRef{}, false
	}
	e := t.rows[row][col]
	return e.ref, !e.ref.IsZero()
}

// Lookup returns the next-hop entry for key: the slot at row = shared
// prefix length, column = key's next digit.
func (t *RoutingTable) Lookup(key id.Node) (wire.NodeRef, bool) {
	row := id.CommonPrefix(t.owner, key, t.b)
	if row >= id.NumDigits(t.b) {
		return wire.NodeRef{}, false
	}
	return t.Get(row, key.Digit(row, t.b))
}

// Remove deletes the entry for node n, returning whether it was present.
func (t *RoutingTable) Remove(n id.Node) bool {
	row, col, ok := t.coords(n)
	if !ok || row >= len(t.rows) || t.rows[row] == nil {
		return false
	}
	if t.rows[row][col].ref.ID != n {
		return false
	}
	t.rows[row][col] = entry{}
	return true
}

// Row returns a copy of row r's populated entries (used during joins).
func (t *RoutingTable) Row(r int) []wire.NodeRef {
	if r < 0 || r >= len(t.rows) || t.rows[r] == nil {
		return nil
	}
	var out []wire.NodeRef
	for _, e := range t.rows[r] {
		if !e.ref.IsZero() {
			out = append(out, e.ref)
		}
	}
	return out
}

// NumRows returns the table's row capacity (ceil(128/b)). Rows past the
// lazily-grown directory exist logically; they are simply all-empty.
func (t *RoutingTable) NumRows() int { return id.NumDigits(t.b) }

// PopulatedRows returns the index one past the last non-empty row.
func (t *RoutingTable) PopulatedRows() int {
	last := 0
	for i, row := range t.rows {
		if row == nil {
			continue
		}
		for _, e := range row {
			if !e.ref.IsZero() {
				last = i + 1
				break
			}
		}
	}
	return last
}

// Size returns the number of populated entries, the quantity the paper
// bounds by (2^b-1)·ceil(log_2b N).
func (t *RoutingTable) Size() int {
	n := 0
	for _, row := range t.rows {
		for _, e := range row {
			if !e.ref.IsZero() {
				n++
			}
		}
	}
	return n
}

// ForEach visits every populated entry without allocating.
func (t *RoutingTable) ForEach(f func(wire.NodeRef)) {
	for _, row := range t.rows {
		for _, e := range row {
			if !e.ref.IsZero() {
				f(e.ref)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Leaf set

// LeafSet holds the l/2 numerically closest smaller and l/2 closest larger
// nodeIds (section 2.2). In networks with fewer than l nodes the two
// halves may contain the same nodes (the ring wraps).
type LeafSet struct {
	owner   id.Node
	half    int
	smaller []wire.NodeRef // sorted by counter-clockwise distance, closest first
	larger  []wire.NodeRef // sorted by clockwise distance, closest first
}

// NewLeafSet creates an empty leaf set for owner with capacity l (split
// into halves of l/2).
func NewLeafSet(owner id.Node, l int) *LeafSet {
	return &LeafSet{owner: owner, half: l / 2}
}

// Half returns l/2.
func (s *LeafSet) Half() int { return s.half }

// Consider offers a node for membership; it reports whether the set
// changed. A node enters the smaller (larger) half when it is among the
// half closest in counter-clockwise (clockwise) ring direction.
func (s *LeafSet) Consider(ref wire.NodeRef) bool {
	if ref.ID == s.owner || ref.IsZero() {
		return false
	}
	a := s.considerSide(&s.larger, ref, true)
	b := s.considerSide(&s.smaller, ref, false)
	return a || b
}

func (s *LeafSet) considerSide(side *[]wire.NodeRef, ref wire.NodeRef, clockwise bool) bool {
	dist := func(n id.Node) id.Node {
		if clockwise {
			return s.owner.CW(n)
		}
		return s.owner.CCW(n)
	}
	list := *side
	for _, m := range list {
		if m.ID == ref.ID {
			return false
		}
	}
	pos := sort.Search(len(list), func(i int) bool {
		return dist(ref.ID).Cmp(dist(list[i].ID)) < 0
	})
	if pos >= s.half {
		return false
	}
	list = append(list, wire.NodeRef{})
	copy(list[pos+1:], list[pos:])
	list[pos] = ref
	if len(list) > s.half {
		list = list[:s.half]
	}
	*side = list
	return true
}

// Remove deletes node n from both halves, reporting whether it was present.
func (s *LeafSet) Remove(n id.Node) bool {
	removed := false
	for _, side := range []*[]wire.NodeRef{&s.smaller, &s.larger} {
		list := *side
		for i := range list {
			if list[i].ID == n {
				*side = append(list[:i], list[i+1:]...)
				removed = true
				break
			}
		}
	}
	return removed
}

// Contains reports whether node n is a member.
func (s *LeafSet) Contains(n id.Node) bool {
	for _, m := range s.smaller {
		if m.ID == n {
			return true
		}
	}
	for _, m := range s.larger {
		if m.ID == n {
			return true
		}
	}
	return false
}

// Members returns the deduplicated membership (a node can sit in both
// halves in small rings).
func (s *LeafSet) Members() []wire.NodeRef {
	out := make([]wire.NodeRef, 0, len(s.smaller)+len(s.larger))
	seen := make(map[id.Node]bool, len(s.smaller)+len(s.larger))
	for _, m := range s.larger {
		if !seen[m.ID] {
			seen[m.ID] = true
			out = append(out, m)
		}
	}
	for _, m := range s.smaller {
		if !seen[m.ID] {
			seen[m.ID] = true
			out = append(out, m)
		}
	}
	return out
}

// Len returns the number of distinct members.
func (s *LeafSet) Len() int { return len(s.Members()) }

// ForEach visits every member without allocating. A node present in both
// halves (small rings) is visited twice; callers that need distinctness
// must deduplicate themselves.
func (s *LeafSet) ForEach(f func(wire.NodeRef)) {
	for _, m := range s.larger {
		f(m)
	}
	for _, m := range s.smaller {
		f(m)
	}
}

// InRange reports whether key falls within the leaf set's span: between
// the farthest smaller member and the farthest larger member (inclusive),
// measured around the ring from the owner. An empty set covers only the
// owner itself.
func (s *LeafSet) InRange(key id.Node) bool {
	if key == s.owner {
		return true
	}
	// When either side is unfilled the set spans the whole ring (the
	// network is smaller than l/2 per side).
	if len(s.smaller) < s.half || len(s.larger) < s.half {
		return true
	}
	lo := s.smaller[len(s.smaller)-1].ID
	hi := s.larger[len(s.larger)-1].ID
	// key ∈ [lo, owner] ∪ [owner, hi] going clockwise.
	return id.Between(key, lo, s.owner) || id.Between(key, s.owner, hi) || key == lo
}

// Closest returns the member numerically closest to key, considering the
// owner as well; selfBest reports whether the owner itself is closest.
// It scans the halves directly (duplicates cannot win against
// themselves), avoiding the Members() allocation on the routing fast
// path.
func (s *LeafSet) Closest(key id.Node) (best wire.NodeRef, selfBest bool) {
	bestID := s.owner
	selfBest = true
	s.ForEach(func(m wire.NodeRef) {
		if id.Closer(key, m.ID, bestID) {
			bestID = m.ID
			best = m
			selfBest = false
		}
	})
	return best, selfBest
}

// Extreme returns the farthest member on one side (clockwise = larger),
// used to repair the leaf set after a failure ("contacts the live node
// with the largest index on the side of the failed node", section 2.2).
func (s *LeafSet) Extreme(clockwise bool) (wire.NodeRef, bool) {
	side := s.smaller
	if clockwise {
		side = s.larger
	}
	if len(side) == 0 {
		return wire.NodeRef{}, false
	}
	return side[len(side)-1], true
}

// SideOf reports whether n sits clockwise (larger) of the owner by the
// shorter arc; used to decide which side a failed node belonged to.
func (s *LeafSet) SideOf(n id.Node) (clockwise bool) {
	return s.owner.CW(n).Cmp(s.owner.CCW(n)) <= 0
}

// Smaller and Larger expose copies of each half, closest first.
func (s *LeafSet) Smaller() []wire.NodeRef { return append([]wire.NodeRef(nil), s.smaller...) }

// Larger returns the clockwise half, closest first.
func (s *LeafSet) Larger() []wire.NodeRef { return append([]wire.NodeRef(nil), s.larger...) }

// ---------------------------------------------------------------------------
// Neighborhood set

// Neighborhood holds the m nodes proximally closest to the owner
// (section 2.2). It is not used for routing but improves the locality of
// routing-table entries and seeds joins.
type Neighborhood struct {
	cap     int
	entries []entry // sorted by proximity, closest first
}

// NewNeighborhood creates an empty neighborhood set with capacity m.
func NewNeighborhood(m int) *Neighborhood { return &Neighborhood{cap: m} }

// Consider offers a node; the set keeps the m proximally closest.
func (nb *Neighborhood) Consider(ref wire.NodeRef, prox float64) bool {
	for i := range nb.entries {
		if nb.entries[i].ref.ID == ref.ID {
			return false
		}
	}
	pos := sort.Search(len(nb.entries), func(i int) bool { return prox < nb.entries[i].prox })
	if pos >= nb.cap {
		return false
	}
	nb.entries = append(nb.entries, entry{})
	copy(nb.entries[pos+1:], nb.entries[pos:])
	nb.entries[pos] = entry{ref, prox}
	if len(nb.entries) > nb.cap {
		nb.entries = nb.entries[:nb.cap]
	}
	return true
}

// Remove deletes node n, reporting whether it was present.
func (nb *Neighborhood) Remove(n id.Node) bool {
	for i := range nb.entries {
		if nb.entries[i].ref.ID == n {
			nb.entries = append(nb.entries[:i], nb.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Members returns the neighborhood, proximally closest first.
func (nb *Neighborhood) Members() []wire.NodeRef {
	out := make([]wire.NodeRef, len(nb.entries))
	for i, e := range nb.entries {
		out[i] = e.ref
	}
	return out
}

// ForEach visits every member without allocating, closest first.
func (nb *Neighborhood) ForEach(f func(wire.NodeRef)) {
	for _, e := range nb.entries {
		f(e.ref)
	}
}

// Len returns the number of members.
func (nb *Neighborhood) Len() int { return len(nb.entries) }
