package pastry_test

import (
	"math"
	"testing"
	"time"

	"past/internal/cluster"
	"past/internal/id"
	"past/internal/pastry"
	"past/internal/simnet"
	"past/internal/wire"
)

func buildCluster(t testing.TB, n int, seed int64, mut func(*cluster.Options)) (*cluster.Cluster, []*cluster.Recorder) {
	t.Helper()
	factory, recs := cluster.RecorderFactory(n)
	opts := cluster.Options{
		N:          n,
		Pastry:     pastry.DefaultConfig(),
		Seed:       seed,
		AppFactory: factory,
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := cluster.Build(opts)
	if err != nil {
		t.Fatalf("Build(%d nodes): %v", n, err)
	}
	return c, recs
}

// routeAndWait routes a probe from node `from` to key and returns the
// delivery, or ok=false if the message was lost.
func routeAndWait(c *cluster.Cluster, recs []*cluster.Recorder, from int, key id.Node, seq uint64) (cluster.Delivery, bool) {
	var got *cluster.Delivery
	for _, r := range recs {
		if r == nil {
			continue
		}
		r.OnDeliver = func(d cluster.Delivery) {
			if p, ok := d.Routed.Payload.(cluster.ProbeMsg); ok && p.Seq == seq {
				got = &d
			}
		}
	}
	c.Nodes[from].Route(key, cluster.ProbeMsg{Seq: seq})
	c.Net.RunUntil(func() bool { return got != nil }, 1_000_000)
	for _, r := range recs {
		if r != nil {
			r.OnDeliver = nil
		}
	}
	if got == nil {
		return cluster.Delivery{}, false
	}
	return *got, true
}

func TestTwoNodeNetwork(t *testing.T) {
	c, recs := buildCluster(t, 2, 1, nil)
	// Each node must have the other in its leaf set.
	for i, nd := range c.Nodes {
		if len(nd.LeafMembers()) != 1 {
			t.Fatalf("node %d leaf set has %d members", i, len(nd.LeafMembers()))
		}
	}
	// Route to the exact id of node 1 from node 0.
	d, ok := routeAndWait(c, recs, 0, c.Nodes[1].ID(), 1)
	if !ok || d.NodeIndex != 1 {
		t.Fatalf("route to node 1's id delivered at %d (ok=%v)", d.NodeIndex, ok)
	}
}

func TestRoutingReachesNumericallyClosest(t *testing.T) {
	const n = 64
	c, recs := buildCluster(t, n, 2, nil)
	for trial := 0; trial < 200; trial++ {
		key := id.Rand(uint64(trial) + 5000)
		from := c.RandomLiveNode()
		d, ok := routeAndWait(c, recs, from, key, uint64(trial))
		if !ok {
			t.Fatalf("trial %d: message lost", trial)
		}
		want := c.NumericallyClosest(key)
		if c.Nodes[d.NodeIndex].ID() != want.ID {
			t.Fatalf("trial %d: delivered at %s, want %s",
				trial, c.Nodes[d.NodeIndex].ID().Short(), want.ID.Short())
		}
	}
}

func TestRoutingToOwnKeyDeliversLocally(t *testing.T) {
	c, recs := buildCluster(t, 16, 3, nil)
	d, ok := routeAndWait(c, recs, 5, c.Nodes[5].ID(), 99)
	if !ok || d.NodeIndex != 5 {
		t.Fatalf("self-route delivered at %d", d.NodeIndex)
	}
	if d.Routed.Hops != 0 {
		t.Fatalf("self-route took %d hops", d.Routed.Hops)
	}
}

func TestHopCountLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 256
	c, recs := buildCluster(t, n, 4, nil)
	total := 0
	trials := 300
	for trial := 0; trial < trials; trial++ {
		key := id.Rand(uint64(trial) + 90000)
		d, ok := routeAndWait(c, recs, c.RandomLiveNode(), key, uint64(trial))
		if !ok {
			t.Fatalf("trial %d lost", trial)
		}
		total += d.Routed.Hops
	}
	avg := float64(total) / float64(trials)
	bound := math.Ceil(math.Log(float64(n)) / math.Log(16))
	if avg >= bound+0.5 {
		t.Fatalf("average hops %.2f exceeds ceil(log16 %d)=%v", avg, n, bound)
	}
	t.Logf("avg hops %.2f (bound %.0f)", avg, bound)
}

func TestLeafSetsMatchOracle(t *testing.T) {
	const n = 48
	c, _ := buildCluster(t, n, 5, nil)
	half := c.Opts.Pastry.L / 2
	for i, nd := range c.Nodes {
		want := c.KClosest(nd.ID(), n-1) // all other nodes, ordered by ring distance
		members := nd.LeafMembers()
		have := make(map[id.Node]bool, len(members))
		for _, m := range members {
			have[m.ID] = true
		}
		// With n-1 < l every other node must be in the leaf set.
		if n-1 <= 2*half {
			for _, w := range want {
				if w.ID == nd.ID() {
					continue
				}
				if !have[w.ID] {
					t.Fatalf("node %d (%s) missing leaf member %s", i, nd.ID().Short(), w.ID.Short())
				}
			}
		}
	}
}

func TestLeafSetHalvesCorrect(t *testing.T) {
	// In a network larger than l, each node's smaller/larger halves must
	// be exactly the l/2 ring-closest nodes on each side.
	const n = 80
	c, _ := buildCluster(t, n, 6, nil)
	for i, nd := range c.Nodes {
		self := nd.ID()
		var wantLarger []wire.NodeRef
		// Walk the oracle ring clockwise from self.
		refs := make([]wire.NodeRef, 0, n)
		for _, other := range c.Nodes {
			if other.ID() != self {
				refs = append(refs, other.Ref())
			}
		}
		// Sort by clockwise distance.
		for k := 0; k < nd.LeafMembers()[0].ID.Digit(0, 4); k++ {
			_ = k // no-op: keep deterministic shape
		}
		wantLarger = kSmallestBy(refs, c.Opts.Pastry.L/2, func(a, b wire.NodeRef) bool {
			return self.CW(a.ID).Cmp(self.CW(b.ID)) < 0
		})
		gotLarger := nd.LeafLarger()
		if len(gotLarger) != len(wantLarger) {
			t.Fatalf("node %d larger half size %d want %d", i, len(gotLarger), len(wantLarger))
		}
		for j := range wantLarger {
			if gotLarger[j].ID != wantLarger[j].ID {
				t.Fatalf("node %d larger[%d] = %s want %s", i, j, gotLarger[j].ID.Short(), wantLarger[j].ID.Short())
			}
		}
	}
}

func kSmallestBy(refs []wire.NodeRef, k int, less func(a, b wire.NodeRef) bool) []wire.NodeRef {
	out := append([]wire.NodeRef(nil), refs...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if less(out[j], out[i]) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func TestRoutingTableSizeBounded(t *testing.T) {
	const n = 128
	c, _ := buildCluster(t, n, 7, nil)
	// Paper: (2^b - 1) * ceil(log_2b N) + 2l entries. Allow slack of one
	// extra row since ids cluster randomly.
	bound := 15*(int(math.Ceil(math.Log(float64(n))/math.Log(16)))+1) + 2*c.Opts.Pastry.L
	for i, nd := range c.Nodes {
		rt, leaf, _ := nd.StateSize()
		if rt+leaf > bound {
			t.Fatalf("node %d state %d exceeds bound %d", i, rt+leaf, bound)
		}
	}
}

func TestRouteWithFailuresAndProbes(t *testing.T) {
	const n = 100
	c, recs := buildCluster(t, n, 8, nil)
	c.EnableProbes()
	// Crash 10% of nodes.
	for k := 0; k < n/10; k++ {
		c.Crash(c.RandomLiveNode())
	}
	lost := 0
	wrong := 0
	trials := 150
	for trial := 0; trial < trials; trial++ {
		key := id.Rand(uint64(trial) + 777000)
		d, ok := routeAndWait(c, recs, c.RandomLiveNode(), key, uint64(trial))
		if !ok {
			lost++
			continue
		}
		want := c.NumericallyClosest(key)
		if c.Nodes[d.NodeIndex].ID() != want.ID {
			wrong++
		}
	}
	if lost > 0 {
		t.Fatalf("%d/%d routes lost despite probes", lost, trials)
	}
	// A small number may land adjacent to the true closest while leaf
	// sets still contain dead entries; require the vast majority exact.
	if wrong > trials/20 {
		t.Fatalf("%d/%d routes misdelivered", wrong, trials)
	}
}

func TestKeepAliveDetectsFailure(t *testing.T) {
	c, _ := buildCluster(t, 12, 9, func(o *cluster.Options) {
		o.Pastry.KeepAlive = 500 * time.Millisecond
		o.Pastry.FailTimeout = 1200 * time.Millisecond
	})
	victim := 3
	victimID := c.Nodes[victim].ID()
	// Confirm the victim is currently in some leaf set.
	present := 0
	for i, nd := range c.Nodes {
		if i == victim {
			continue
		}
		for _, m := range nd.LeafMembers() {
			if m.ID == victimID {
				present++
			}
		}
	}
	if present == 0 {
		t.Fatal("victim not in any leaf set; test setup broken")
	}
	c.Crash(victim)
	c.RunSettle(5 * time.Second)
	for i, nd := range c.Nodes {
		if i == victim || c.Down(i) {
			continue
		}
		for _, m := range nd.LeafMembers() {
			if m.ID == victimID {
				t.Fatalf("node %d still lists crashed node in leaf set", i)
			}
		}
	}
}

func TestLeafRepairRestoresInvariant(t *testing.T) {
	const n = 40
	c, _ := buildCluster(t, n, 10, func(o *cluster.Options) {
		o.Pastry.KeepAlive = 500 * time.Millisecond
		o.Pastry.FailTimeout = 1200 * time.Millisecond
	})
	// Crash 4 nodes, let keep-alive and repair run.
	for k := 0; k < 4; k++ {
		c.Crash(c.RandomLiveNode())
	}
	c.RunSettle(10 * time.Second)
	half := c.Opts.Pastry.L / 2
	// After repair every live node's larger half must again hold the
	// live ring-closest nodes (n-5 < l so every node knows all others).
	for i, nd := range c.Nodes {
		if c.Down(i) {
			continue
		}
		members := nd.LeafMembers()
		for _, m := range members {
			j := c.IndexByID(m.ID)
			if j >= 0 && c.Down(j) {
				t.Fatalf("node %d leaf set still holds dead node %s", i, m.ID.Short())
			}
		}
		if len(members) < minInt(c.LiveCount()-1, half) {
			t.Fatalf("node %d leaf set shrank to %d", i, len(members))
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRandomizedRoutingAroundMaliciousNode(t *testing.T) {
	const n = 60
	c, recs := buildCluster(t, n, 11, func(o *cluster.Options) {
		o.Pastry.Randomize = true
		o.Pastry.Bias = 0.7
	})
	// Pick a key and find the deterministic first-hop of the origin; make
	// an on-path node malicious: it swallows all Routed messages that are
	// not its own deliveries.
	key := id.Rand(424242)
	origin := 0
	dest := c.NumericallyClosest(key)
	var malicious int = -1
	// Find some node on a likely path by routing once and tracing.
	c.Net.TraceFn = func(at time.Duration, from, to string, m wire.Msg) {
		if r, ok := m.(wire.Routed); ok && r.Key == key && malicious == -1 {
			if idx, err := simnet.Index(to); err == nil && c.Nodes[idx].ID() != dest.ID {
				malicious = idx
			}
		}
	}
	d, ok := routeAndWait(c, recs, origin, key, 1)
	c.Net.TraceFn = nil
	if !ok {
		t.Fatal("baseline route lost")
	}
	if malicious == -1 {
		t.Skip("route was direct; no intermediate to corrupt")
	}
	_ = d
	c.Eps[malicious].SetSendFilter(func(to string, m wire.Msg) bool {
		_, isRouted := m.(wire.Routed)
		return isRouted // forwards nothing
	})
	// Repeated randomized retries must eventually avoid the bad node.
	succeeded := false
	for attempt := 0; attempt < 10 && !succeeded; attempt++ {
		_, ok := routeAndWait(c, recs, origin, key, uint64(1000+attempt))
		succeeded = ok
	}
	if !succeeded {
		t.Fatal("randomized retries never routed around the malicious node")
	}
}

func TestJoinTimeout(t *testing.T) {
	// A node joining via a crashed seed must report ErrJoinTimeout.
	c, _ := buildCluster(t, 4, 12, func(o *cluster.Options) {
		o.Pastry.JoinTimeout = time.Second
	})
	c.Topo.Place()
	ep := c.Net.NewEndpoint()
	cfg := c.Opts.Pastry
	nd := pastry.New(cfg, id.Rand(31337), ep, c.Net.Clock(), nil)
	c.Eps[1].Crash()
	var joinErr error
	done := false
	nd.Join(simnet.Addr(1), func(err error) { joinErr = err; done = true })
	c.Net.RunUntil(func() bool { return done }, 1_000_000)
	if joinErr == nil {
		t.Fatal("join via dead seed should fail")
	}
}

func TestMessageCountPerJoinLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Per the paper, restoring invariants after an arrival takes
	// O(log_2b N) messages. Measure messages for the last join at two
	// network sizes and check sub-linear growth.
	count := func(n int) uint64 {
		factory, _ := cluster.RecorderFactory(n)
		opts := cluster.Options{N: n - 1, Pastry: pastry.DefaultConfig(), Seed: 77, AppFactory: factory}
		c, err := cluster.Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		c.Net.ResetCounters()
		// Join one more node.
		c.Topo.Place()
		ep := c.Net.NewEndpoint()
		nd := pastry.New(c.Opts.Pastry, id.Rand(999999), ep, c.Net.Clock(), nil)
		done := false
		nd.Join(simnet.Addr(0), func(error) { done = true })
		c.Net.RunUntil(func() bool { return done }, 10_000_000)
		c.Net.RunUntilIdle()
		return c.Net.Messages()
	}
	small := count(32)
	large := count(256)
	if large > small*8 {
		t.Fatalf("join cost grew from %d to %d messages (8x network): not logarithmic", small, large)
	}
	t.Logf("join cost: %d msgs at n=32, %d msgs at n=256", small, large)
}

func TestNodeRecovery(t *testing.T) {
	// Section 2.2: "A recovering node contacts the nodes in its last
	// known leaf set, obtains their current leaf sets, updates its own
	// leaf set and then notifies the members of its presence."
	const n = 20
	c, recs := buildCluster(t, n, 13, func(o *cluster.Options) {
		o.Pastry.KeepAlive = 500 * time.Millisecond
		o.Pastry.FailTimeout = 1500 * time.Millisecond
	})
	victim := 4
	victimID := c.Nodes[victim].ID()
	c.Crash(victim)
	// Let everyone notice the failure.
	c.RunSettle(6 * time.Second)
	for i, nd := range c.Nodes {
		if i == victim {
			continue
		}
		for _, m := range nd.LeafMembers() {
			if m.ID == victimID {
				t.Fatalf("node %d still lists victim before recovery", i)
			}
		}
	}
	// Recover and settle: the node must be re-admitted everywhere it
	// belongs (n-1 < l, so every node's leaf set should include it).
	c.Restart(victim)
	c.RunSettle(6 * time.Second)
	for i, nd := range c.Nodes {
		if i == victim {
			continue
		}
		found := false
		for _, m := range nd.LeafMembers() {
			if m.ID == victimID {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d did not re-admit the recovered node", i)
		}
	}
	// And routing to its exact id reaches it again.
	d, ok := routeAndWait(c, recs, (victim+7)%n, victimID, 4242)
	if !ok || d.NodeIndex != victim {
		t.Fatalf("route to recovered node delivered at %d (ok=%v)", d.NodeIndex, ok)
	}
}

func TestRandomizedRoutingStillConverges(t *testing.T) {
	// Randomized routing must preserve correctness: every admissible hop
	// is strictly numerically closer, so routes still terminate at the
	// numerically closest node.
	const n = 64
	c, recs := buildCluster(t, n, 14, func(o *cluster.Options) {
		o.Pastry.Randomize = true
		o.Pastry.Bias = 0.6
	})
	for trial := 0; trial < 150; trial++ {
		key := id.Rand(uint64(trial) + 31000)
		d, ok := routeAndWait(c, recs, c.RandomLiveNode(), key, uint64(trial))
		if !ok {
			t.Fatalf("trial %d lost", trial)
		}
		want := c.NumericallyClosest(key)
		if c.Nodes[d.NodeIndex].ID() != want.ID {
			t.Fatalf("trial %d: randomized route ended at %s, want %s",
				trial, c.Nodes[d.NodeIndex].ID().Short(), want.ID.Short())
		}
		// Loop-freedom: hops bounded well below n.
		if d.Routed.Hops > 10 {
			t.Fatalf("trial %d: %d hops suggests a routing loop", trial, d.Routed.Hops)
		}
	}
}

func TestRandomizedRoutingTakesDifferentPaths(t *testing.T) {
	const n = 128
	c, _ := buildCluster(t, n, 15, func(o *cluster.Options) {
		o.Pastry.Randomize = true
		o.Pastry.Bias = 0.5
	})
	key := id.Rand(999999)
	origin := 0
	// Trace first hops of repeated routes; with bias 0.5 they must vary.
	firstHops := map[string]bool{}
	for trial := 0; trial < 30; trial++ {
		var first string
		c.Net.TraceFn = func(at time.Duration, from, to string, m wire.Msg) {
			if r, ok := m.(wire.Routed); ok && r.Key == key && first == "" && from == simnet.Addr(origin) {
				first = to
			}
		}
		c.Nodes[origin].Route(key, cluster.ProbeMsg{Seq: uint64(trial)})
		c.Net.RunUntilIdle()
		c.Net.TraceFn = nil
		if first != "" {
			firstHops[first] = true
		}
	}
	if len(firstHops) < 2 {
		t.Fatalf("30 randomized routes all took the same first hop")
	}
}
