package pastry

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/transport"
	"past/internal/wire"
)

// Config sets the Pastry parameters of section 2.2.
type Config struct {
	// B is the number of bits per digit (2^b-way branching). The paper's
	// typical value is 4.
	B int
	// L is the leaf-set size (l/2 on each side). The paper's typical
	// value is 32.
	L int
	// M is the neighborhood-set size.
	M int
	// KeepAlive is the interval between leaf-set keep-alive probes; zero
	// disables periodic probing (large simulations enable it only in
	// churn experiments).
	KeepAlive time.Duration
	// LeafSync, when positive, exchanges leaf sets with one random known
	// peer every LeafSync-th keep-alive tick: membership anti-entropy, so
	// a node whose join-time state transfer was lossy still converges to
	// full membership instead of being stuck with a partial view forever.
	// Zero disables it — the default; recorded simulations never enable
	// it, keeping their output byte-stable.
	LeafSync int
	// FailTimeout is the silence period T after which a leaf-set member
	// is presumed failed (section 2.2, "Node addition and failure").
	FailTimeout time.Duration
	// JoinTimeout bounds how long a join waits for the state transfer.
	JoinTimeout time.Duration
	// Randomize enables the randomized routing of section 2.2
	// ("Fault-tolerance"): the next hop is drawn from all admissible
	// choices with probability heavily biased towards the best one.
	Randomize bool
	// Bias is the probability of taking the best admissible hop when
	// Randomize is set; remaining probability recurses on the rest.
	Bias float64
	// Seed drives this node's routing randomness.
	Seed int64
	// CompactRand replaces the node's Go 1 lagged-Fibonacci random
	// source (~4.9 KiB of state) with a splitmix64 source (8 bytes).
	// The streams differ, so this must only be enabled for tiers whose
	// recorded output does not predate the flag; the bulk-constructed
	// Large/Huge tiers use it (see compactrand.go).
	CompactRand bool
}

// DefaultConfig returns the paper's typical parameters.
func DefaultConfig() Config {
	return Config{
		B:           4,
		L:           32,
		M:           32,
		KeepAlive:   0,
		FailTimeout: 2 * time.Second,
		JoinTimeout: time.Minute,
		Randomize:   false,
		Bias:        0.85,
	}
}

// App receives upcalls from the routing layer. Upcalls run without the
// node lock held, so an App may freely call back into the Node.
type App interface {
	// Deliver is invoked when this node is the numerically closest live
	// node for the message's key.
	Deliver(r wire.Routed, from wire.NodeRef)
	// Forward is invoked before relaying a routed message; returning
	// false consumes the message (used by PAST to satisfy lookups from
	// caches mid-route). Implementations may mutate the payload.
	Forward(r *wire.Routed, next wire.NodeRef) bool
	// HandleDirect receives non-routed application messages; it reports
	// whether it consumed the message.
	HandleDirect(from wire.NodeRef, m wire.Msg) bool
	// LeafSetChanged is invoked after the leaf set gains or loses
	// members; PAST uses it to restore replication (section 2.1,
	// "Persistence").
	LeafSetChanged()
}

// Maintainer is an optional App extension. When the application layer
// implements it, Maintain is invoked after every keep-alive round —
// without the node lock held, like all upcalls — giving the app a
// periodic, failure-detector-aligned hook for low-frequency background
// maintenance (PAST schedules its anti-entropy replica sweeps on it).
// Nodes with keep-alives disabled never call Maintain.
type Maintainer interface {
	Maintain()
}

// NopApp is an App that does nothing; embed it to implement only part of
// the interface.
type NopApp struct{}

// Deliver implements App.
func (NopApp) Deliver(wire.Routed, wire.NodeRef) {}

// Forward implements App.
func (NopApp) Forward(*wire.Routed, wire.NodeRef) bool { return true }

// HandleDirect implements App.
func (NopApp) HandleDirect(wire.NodeRef, wire.Msg) bool { return false }

// LeafSetChanged implements App.
func (NopApp) LeafSetChanged() {}

// ErrJoinTimeout reports that the join state transfer did not complete.
var ErrJoinTimeout = errors.New("pastry: join timed out")

// Node is a Pastry overlay node.
type Node struct {
	cfg   Config
	ref   wire.NodeRef
	tr    transport.Transport
	clock transport.Clock
	app   App

	mu    sync.Mutex
	rt    *RoutingTable
	leaf  *LeafSet
	nbhd  *Neighborhood
	rng   *rand.Rand
	alive bool

	// Probe, when non-nil, checks reachability of a next hop before
	// forwarding (modelling transport-level failure detection); a failed
	// probe triggers routing around the node and state repair.
	probe func(addr string) bool

	joined    bool
	joinDone  func(error)
	joinTimer transport.Timer
	joinSeen  map[id.Node]bool // nodes discovered during join, to announce to

	lastSeen map[id.Node]time.Duration
	// candBuf and candSeen are per-node scratch reused by candidates()
	// so per-route candidate scans allocate nothing in steady state.
	// Guarded by mu, like the routing state they snapshot; callers must
	// not retain the returned slice past the locked section.
	candBuf  []wire.NodeRef
	candSeen map[id.Node]struct{}
	// suspect records nodes recently declared dead; third-party mentions
	// of them (in leaf-set replies, announce fan-out, etc.) are ignored
	// until the entry expires, so repair gossip from peers that have not
	// yet noticed a crash cannot resurrect the dead node. Direct traffic
	// from the node itself clears the suspicion.
	suspect  map[id.Node]time.Duration
	kaTimer  transport.Timer
	kaTicks  uint64
	nonceSeq uint64
}

// New creates a node. The transport's handler is installed immediately;
// the node participates once Bootstrap or Join is called.
func New(cfg Config, nodeID id.Node, tr transport.Transport, clock transport.Clock, app App) *Node {
	if cfg.B <= 0 || cfg.B > 8 {
		panic(fmt.Sprintf("pastry: b=%d out of range (1..8)", cfg.B))
	}
	if cfg.L < 2 {
		panic(fmt.Sprintf("pastry: l=%d too small", cfg.L))
	}
	if app == nil {
		app = NopApp{}
	}
	n := &Node{
		cfg:   cfg,
		ref:   wire.NodeRef{ID: nodeID, Addr: tr.Addr()},
		tr:    tr,
		clock: clock,
		app:   app,
		rt:    NewRoutingTable(nodeID, cfg.B),
		leaf:  NewLeafSet(nodeID, cfg.L),
		nbhd:  NewNeighborhood(cfg.M),
	}
	tr.SetHandler(n.handle)
	return n
}

// rand returns the node's seeded random stream, created on first draw.
// Laziness matters at scale: a bulk-constructed node that never routes
// traffic of its own never draws, so it never pays for the stream state
// (~4.9 KiB under the default Go 1 source). Deferring creation cannot
// change any result — the stream starts at the same seed whenever it is
// first needed. Lock held.
func (n *Node) rand() *rand.Rand {
	if n.rng == nil {
		if n.cfg.CompactRand {
			n.rng = rand.New(newSplitmix64(n.cfg.Seed))
		} else {
			n.rng = rand.New(rand.NewSource(n.cfg.Seed))
		}
	}
	return n.rng
}

// sawNow records when a peer was last directly heard from, allocating the
// tracking map on first use. Lock held.
func (n *Node) sawNow(peer id.Node) {
	if n.lastSeen == nil {
		n.lastSeen = make(map[id.Node]time.Duration)
	}
	n.lastSeen[peer] = n.clock.Now()
}

// SetApp installs the application layer. It must be called before the
// node joins a network; constructing with a nil app installs NopApp.
func (n *Node) SetApp(app App) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if app == nil {
		app = NopApp{}
	}
	n.app = app
}

// Ref returns this node's identity and address.
func (n *Node) Ref() wire.NodeRef { return n.ref }

// ID returns this node's Pastry identifier.
func (n *Node) ID() id.Node { return n.ref.ID }

// SetProbe installs a reachability oracle used before forwarding. In the
// simulator this models the immediate connection failure a TCP transport
// observes when the peer is gone.
func (n *Node) SetProbe(p func(addr string) bool) {
	n.mu.Lock()
	n.probe = p
	n.mu.Unlock()
}

// Joined reports whether the node has completed its join.
func (n *Node) Joined() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.joined
}

// Bootstrap marks this node as the first member of a new PAST network.
func (n *Node) Bootstrap() {
	n.mu.Lock()
	n.joined = true
	n.alive = true
	n.mu.Unlock()
	n.startKeepAlive()
}

// Join initiates the join protocol of section 2.2 via a seed node ("a
// nearby node A"). done is invoked exactly once, with nil on success.
// Calling Join on a node that is already a member re-anchors it: the
// seed's state is merged, arrival is re-announced, and existing
// membership stays intact throughout — how a daemon on the small side of
// a healed partition stitches itself back to the main component.
func (n *Node) Join(seed string, done func(error)) {
	n.mu.Lock()
	n.alive = true
	// A retry supersedes any still-armed attempt: stop the previous
	// timeout first, or it would fire ErrJoinTimeout into the NEW
	// attempt's callback and kill a join that was about to succeed (the
	// daemon's re-bootstrap loop calls Join repeatedly with backoff).
	if n.joinTimer != nil {
		n.joinTimer.Stop()
		n.joinTimer.Release()
		n.joinTimer = nil
	}
	n.joinDone = done
	n.joinSeen = make(map[id.Node]bool)
	if n.cfg.JoinTimeout > 0 {
		n.joinTimer = n.clock.AfterFunc(n.cfg.JoinTimeout, n.joinTimedOut)
	}
	msg := wire.Routed{
		Key:     n.ref.ID,
		Payload: wire.JoinRequest{New: n.ref},
		Origin:  n.ref,
		Nonce:   n.nextNonce(),
	}
	n.mu.Unlock()
	n.tr.Send(seed, msg)
}

func (n *Node) joinTimedOut() {
	n.mu.Lock()
	done := n.joinDone
	n.joinDone = nil
	if n.joinTimer != nil {
		n.joinTimer.Release() // fired; recycle the handle
		n.joinTimer = nil
	}
	n.mu.Unlock()
	if done != nil {
		// Even an already-joined node's re-anchor attempt must report its
		// timeout, or the caller's retry loop stalls on a seed that never
		// answered.
		done(ErrJoinTimeout)
	}
}

func (n *Node) nextNonce() uint64 {
	n.nonceSeq++
	return uint64(n.rand().Int63())<<8 | n.nonceSeq&0xff
}

// Route injects a message keyed by key into the overlay from this node.
func (n *Node) Route(key id.Node, payload wire.Msg) {
	n.mu.Lock()
	r := wire.Routed{Key: key, Payload: payload, Origin: n.ref, Nonce: n.nextNonce()}
	act := n.handleRouted(n.ref.Addr, r)
	n.mu.Unlock()
	if act != nil {
		act()
	}
}

// Send transmits an application message directly to a known node,
// bypassing overlay routing (used for replies and replica transfer).
func (n *Node) Send(to wire.NodeRef, m wire.Msg) {
	n.tr.Send(to.Addr, m)
}

// Proximity exposes the transport's proximity metric.
func (n *Node) Proximity(addr string) float64 { return n.tr.Proximity(addr) }

// Clock exposes the node's clock for the application layer.
func (n *Node) Clock() transport.Clock { return n.clock }

// Rand returns a pseudo-random uint64 from the node's seeded stream.
func (n *Node) Rand() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return uint64(n.rand().Int63())
}

// Reachable consults the transport-level failure detector (when
// installed) so the application layer can avoid sending directly to dead
// nodes — e.g. chasing a diversion pointer to a partitioned holder; an
// unreachable peer is also purged from routing state.
func (n *Node) Reachable(ref wire.NodeRef) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reachable(ref) {
		return true
	}
	n.removeDeadLocked(ref.ID)
	return false
}

// LeafMembers returns the current leaf-set membership.
func (n *Node) LeafMembers() []wire.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaf.Members()
}

// LeafSmaller returns the counter-clockwise leaf half, closest first.
func (n *Node) LeafSmaller() []wire.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaf.Smaller()
}

// LeafLarger returns the clockwise leaf half, closest first.
func (n *Node) LeafLarger() []wire.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaf.Larger()
}

// NeighborhoodMembers returns the proximity-based neighborhood set.
func (n *Node) NeighborhoodMembers() []wire.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nbhd.Members()
}

// StateSize returns the number of populated routing-table entries and the
// leaf plus neighborhood membership counts (for experiment E6).
func (n *Node) StateSize() (rt, leaf, nbhd int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rt.Size(), n.leaf.Len(), n.nbhd.Len()
}

// RoutingTableRows returns the populated row count.
// RoutingEntry returns the routing-table entry at (row, col), if
// populated (used by construction-equivalence tests and diagnostics).
func (n *Node) RoutingEntry(row, col int) (wire.NodeRef, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rt.Get(row, col)
}

func (n *Node) RoutingTableRows() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rt.PopulatedRows()
}

// run executes deferred upcalls outside the node lock.
func run(acts []func()) {
	for _, a := range acts {
		a()
	}
}

// handle is the transport inbound entry point.
func (n *Node) handle(from string, m wire.Msg) {
	n.mu.Lock()
	if !n.alive && !n.joined {
		// A node that has not started participating ignores traffic.
		n.mu.Unlock()
		return
	}
	var acts []func()
	var act func() // single deferred upcall for the hot Routed path
	switch msg := m.(type) {
	case wire.Routed:
		act = n.handleRouted(from, msg)
	case wire.RouteRows:
		acts = n.handleRouteRows(msg)
	case wire.LeafSetReply:
		acts = n.handleLeafSetReply(msg)
	case wire.LeafSetRequest:
		n.noteAlive(msg.From)
		n.tr.Send(msg.From.Addr, wire.LeafSetReply{From: n.ref, Leaves: n.leaf.Members()})
	case wire.NeighborhoodReply:
		acts = n.handleNeighborhoodReply(msg)
	case wire.Announce:
		acts = n.handleAnnounce(msg)
	case wire.Heartbeat:
		n.noteAlive(msg.From)
	case wire.Depart:
		acts = n.declareDeadLocked(msg.From)
	case wire.Ping:
		n.tr.Send(msg.From.Addr, wire.Pong{From: n.ref, Nonce: msg.Nonce})
	case wire.Pong:
		n.noteAlive(msg.From)
	case wire.RTRepairRequest:
		n.handleRTRepairRequest(msg)
	case wire.RTRepairReply:
		n.handleRTRepairReply(msg)
	default:
		ref := wire.NodeRef{Addr: from}
		app := n.app
		n.mu.Unlock()
		app.HandleDirect(ref, m)
		return
	}
	n.mu.Unlock()
	if act != nil {
		act()
	}
	run(acts)
}

// noteAlive records direct evidence of life (a message from the node
// itself) and folds the node into local state. Lock held.
func (n *Node) noteAlive(ref wire.NodeRef) {
	if ref.IsZero() || ref.ID == n.ref.ID {
		return
	}
	delete(n.suspect, ref.ID) // direct contact clears suspicion
	n.sawNow(ref.ID)
	n.considerLocked(ref)
}

// suspected reports whether ref was recently declared dead and the
// suspicion has not yet expired. Lock held.
func (n *Node) suspected(nid id.Node) bool {
	at, ok := n.suspect[nid]
	if !ok {
		return false
	}
	if n.clock.Now()-at > 3*n.cfg.FailTimeout {
		delete(n.suspect, nid)
		return false
	}
	return true
}

// considerLocked folds ref into the routing table, leaf set and
// neighborhood set. Suspected-dead nodes are ignored. It returns whether
// the leaf set changed. Lock held.
func (n *Node) considerLocked(ref wire.NodeRef) bool {
	if ref.IsZero() || ref.ID == n.ref.ID || n.suspected(ref.ID) {
		return false
	}
	prox := n.tr.Proximity(ref.Addr)
	n.rt.Consider(ref, prox)
	n.nbhd.Consider(ref, prox)
	return n.leaf.Consider(ref)
}

// ---------------------------------------------------------------------------
// Routing

// handleRouted implements the routing procedure of section 2.2. Lock held;
// returns the single deferred upcall (or nil).
func (n *Node) handleRouted(from string, r wire.Routed) func() {
	if jr, ok := r.Payload.(wire.JoinRequest); ok {
		n.handleJoinRouted(from, r, jr)
		return nil
	}
	next, deliver := n.nextHop(r.Key)
	if deliver {
		app := n.app
		fromRef := wire.NodeRef{Addr: from}
		return func() { app.Deliver(r, fromRef) }
	}
	app := n.app
	fwd := r
	fwd.Hops++
	fwd.Distance += n.tr.Proximity(next.Addr)
	tr := n.tr
	return func() {
		if app.Forward(&fwd, next) {
			tr.Send(next.Addr, fwd)
		}
	}
}

// nextHop picks the routing target for key per section 2.2: the leaf set
// when key is within its span, otherwise a routing-table entry with a
// longer shared prefix, otherwise any known node with an equal-length
// prefix that is numerically closer ("rare case"). Lock held.
func (n *Node) nextHop(key id.Node) (next wire.NodeRef, deliver bool) {
	if key == n.ref.ID {
		return wire.NodeRef{}, true
	}
	if n.cfg.Randomize {
		return n.nextHopRandomized(key)
	}
	if n.leaf.InRange(key) {
		best, selfBest := n.leaf.Closest(key)
		if selfBest {
			return wire.NodeRef{}, true
		}
		if n.reachable(best) {
			return best, false
		}
		n.failedPeer(best)
	}
	if e, ok := n.rt.Lookup(key); ok {
		if n.reachable(e) {
			return e, false
		}
		n.failedPeer(e)
	}
	// Rare case: any known node with prefix >= ours that is numerically
	// closer to the key.
	if c, ok := n.rareCase(key); ok {
		return c, false
	}
	return wire.NodeRef{}, true
}

// rareCase scans all known nodes for an admissible next hop. Lock held.
func (n *Node) rareCase(key id.Node) (wire.NodeRef, bool) {
	myPrefix := id.CommonPrefix(n.ref.ID, key, n.cfg.B)
	var best wire.NodeRef
	found := false
	for _, c := range n.candidates() {
		if id.CommonPrefix(c.ID, key, n.cfg.B) < myPrefix {
			continue
		}
		if !id.Closer(key, c.ID, n.ref.ID) {
			continue
		}
		if !found || id.Closer(key, c.ID, best.ID) {
			if n.reachable(c) {
				best = c
				found = true
			} else {
				n.failedPeer(c)
			}
		}
	}
	return best, found
}

// candidates lists every node in local state, deduplicated, into the
// node's reusable scratch slice. Lock held. The returned slice is valid
// only until the next candidates() call and must not be retained.
func (n *Node) candidates() []wire.NodeRef {
	if n.candSeen == nil {
		n.candSeen = make(map[id.Node]struct{}, 64)
	} else {
		clear(n.candSeen)
	}
	out := n.candBuf[:0]
	add := func(c wire.NodeRef) {
		if c.IsZero() || c.ID == n.ref.ID {
			return
		}
		if _, dup := n.candSeen[c.ID]; dup {
			return
		}
		n.candSeen[c.ID] = struct{}{}
		out = append(out, c)
	}
	n.leaf.ForEach(add)
	n.rt.ForEach(add)
	n.nbhd.ForEach(add)
	n.candBuf = out
	return out
}

// nextHopRandomized implements the fault-tolerant randomized routing of
// section 2.2: any node that shares at least as long a prefix with the key
// and is numerically closer than this node is admissible; the choice is
// heavily biased towards the best (longest prefix, then proximity). The
// final approach still goes through the leaf set deterministically — the
// prefix constraint alone cannot cross a digit boundary to the true
// numerically closest node (e.g. key 0x7ff… owned by 0x800…). Lock held.
func (n *Node) nextHopRandomized(key id.Node) (wire.NodeRef, bool) {
	if n.leaf.InRange(key) {
		best, selfBest := n.leaf.Closest(key)
		if selfBest {
			return wire.NodeRef{}, true
		}
		if n.reachable(best) {
			return best, false
		}
		n.failedPeer(best)
	}
	myPrefix := id.CommonPrefix(n.ref.ID, key, n.cfg.B)
	type cand struct {
		ref    wire.NodeRef
		prefix int
		prox   float64
	}
	var cands []cand
	for _, c := range n.candidates() {
		p := id.CommonPrefix(c.ID, key, n.cfg.B)
		if p < myPrefix || !id.Closer(key, c.ID, n.ref.ID) {
			continue
		}
		if !n.reachable(c) {
			n.failedPeer(c)
			continue
		}
		cands = append(cands, cand{c, p, n.tr.Proximity(c.Addr)})
	}
	if len(cands) == 0 {
		// No prefix-qualifying candidate: take any strictly
		// numerically-closer node (numeric distance decreases every hop,
		// so this cannot loop), else deliver here.
		var best wire.NodeRef
		found := false
		for _, c := range n.candidates() {
			if !id.Closer(key, c.ID, n.ref.ID) {
				continue
			}
			if !found || id.Closer(key, c.ID, best.ID) {
				if n.reachable(c) {
					best = c
					found = true
				} else {
					n.failedPeer(c)
				}
			}
		}
		if found {
			return best, false
		}
		return wire.NodeRef{}, true
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].prefix != cands[j].prefix {
			return cands[i].prefix > cands[j].prefix
		}
		if id.Closer(key, cands[i].ref.ID, cands[j].ref.ID) {
			return true
		}
		if id.Closer(key, cands[j].ref.ID, cands[i].ref.ID) {
			return false
		}
		return cands[i].prox < cands[j].prox
	})
	// Geometric selection biased towards the head of the ranking.
	bias := n.cfg.Bias
	if bias <= 0 || bias >= 1 {
		bias = 0.85
	}
	idx := 0
	for idx < len(cands)-1 && n.rand().Float64() > bias {
		idx++
	}
	return cands[idx].ref, false
}

// reachable consults the probe oracle. Lock held.
func (n *Node) reachable(ref wire.NodeRef) bool {
	if n.probe == nil {
		return true
	}
	return n.probe(ref.Addr)
}

// failedPeer removes a peer that failed a reachability probe and starts
// repair. Lock held.
func (n *Node) failedPeer(ref wire.NodeRef) {
	n.removeDeadLocked(ref.ID)
}

// ---------------------------------------------------------------------------
// Join protocol (section 2.2, "Node addition")

// handleJoinRouted processes a JoinRequest travelling toward the joining
// node's id. Every node on the path contributes routing rows; the first
// node contributes its neighborhood set; the final node contributes its
// leaf set. Lock held.
func (n *Node) handleJoinRouted(from string, r wire.Routed, jr wire.JoinRequest) {
	x := jr.New
	if x.ID == n.ref.ID {
		return // own join echoed back; ignore
	}
	// Contribute routing rows 0..p where p is the shared prefix length:
	// row i of this node's table is valid as row i for X whenever the ids
	// agree on the first i digits.
	p := id.CommonPrefix(n.ref.ID, x.ID, n.cfg.B)
	maxRow := n.rt.PopulatedRows()
	if p+1 < maxRow {
		maxRow = p + 1
	}
	rows := make([][]wire.NodeRef, 0, maxRow)
	for i := 0; i < maxRow; i++ {
		rows = append(rows, n.rt.Row(i))
	}
	n.tr.Send(x.Addr, wire.RouteRows{From: n.ref, FirstRow: 0, Rows: rows})
	if r.Hops == 0 {
		// This is node A, the join seed: contribute the neighborhood set.
		n.tr.Send(x.Addr, wire.NeighborhoodReply{From: n.ref, Neighbors: n.nbhd.Members()})
	}
	next, deliver := n.nextHop(x.ID)
	if deliver {
		// This is node Z, numerically closest to X: contribute the leaf set.
		n.tr.Send(x.Addr, wire.LeafSetReply{From: n.ref, Leaves: n.leaf.Members(), Terminal: true})
		return
	}
	fwd := r
	fwd.Hops++
	fwd.Distance += n.tr.Proximity(next.Addr)
	n.tr.Send(next.Addr, fwd)
}

// handleRouteRows folds received rows into the joining node's state. Lock
// held.
func (n *Node) handleRouteRows(m wire.RouteRows) []func() {
	n.noteJoinContact(m.From)
	for _, row := range m.Rows {
		for _, ref := range row {
			n.noteJoinContact(ref)
		}
	}
	return nil
}

// noteJoinContact records a node discovered during join. Lock held.
func (n *Node) noteJoinContact(ref wire.NodeRef) {
	if ref.IsZero() || ref.ID == n.ref.ID {
		return
	}
	if n.joinSeen != nil {
		n.joinSeen[ref.ID] = true
	}
	n.considerLocked(ref)
	n.sawNow(ref.ID)
}

// handleNeighborhoodReply folds node A's neighborhood set in. Lock held.
func (n *Node) handleNeighborhoodReply(m wire.NeighborhoodReply) []func() {
	n.noteJoinContact(m.From)
	for _, ref := range m.Neighbors {
		n.noteJoinContact(ref)
	}
	return nil
}

// handleLeafSetReply completes a join (Terminal) or merges a repair
// response. Lock held.
func (n *Node) handleLeafSetReply(m wire.LeafSetReply) []func() {
	changed := false
	if n.considerLocked(m.From) {
		changed = true
	}
	n.sawNow(m.From.ID)
	for _, ref := range m.Leaves {
		if ref.ID == n.ref.ID {
			continue
		}
		if n.joinSeen != nil && !n.joined {
			n.noteJoinContact(ref)
		}
		if n.considerLocked(ref) {
			changed = true
		}
		n.sawNow(ref.ID)
	}
	var acts []func()
	// A Terminal reply completes whatever join attempt is pending — the
	// first join of a fresh node or the re-anchor of a live one. Gating on
	// the pending callback (not on n.joined) lets a partition survivor
	// re-join through a seed and still get its completion.
	if m.Terminal && n.joinDone != nil {
		acts = append(acts, n.completeJoinLocked()...)
	}
	if changed {
		app := n.app
		acts = append(acts, app.LeafSetChanged)
	}
	return acts
}

// completeJoinLocked finishes the join: announce arrival to every node
// discovered, start keep-alives, invoke the done callback. Lock held.
func (n *Node) completeJoinLocked() []func() {
	n.joined = true
	if n.joinTimer != nil {
		n.joinTimer.Stop()
		n.joinTimer.Release()
		n.joinTimer = nil
	}
	targets := make([]wire.NodeRef, 0, len(n.joinSeen))
	seen := make(map[id.Node]bool, len(n.joinSeen))
	for _, c := range n.candidates() {
		if !seen[c.ID] {
			seen[c.ID] = true
			targets = append(targets, c)
		}
	}
	n.joinSeen = nil
	ann := wire.Announce{From: n.ref}
	for _, t := range targets {
		n.tr.Send(t.Addr, ann)
	}
	done := n.joinDone
	n.joinDone = nil
	acts := []func(){n.startKeepAlive}
	if done != nil {
		acts = append(acts, func() { done(nil) })
	}
	return acts
}

// handleAnnounce folds a newly joined node into local state. Lock held.
func (n *Node) handleAnnounce(m wire.Announce) []func() {
	n.sawNow(m.From.ID)
	if n.considerLocked(m.From) {
		app := n.app
		return []func(){app.LeafSetChanged}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Failure detection and repair (section 2.2, "Node addition and failure")

func (n *Node) startKeepAlive() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.KeepAlive <= 0 || n.kaTimer != nil {
		return
	}
	n.kaTimer = n.clock.AfterFunc(n.cfg.KeepAlive, n.keepAliveTick)
}

func (n *Node) keepAliveTick() {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return
	}
	now := n.clock.Now()
	members := n.leaf.Members()
	hb := wire.Heartbeat{From: n.ref}
	var dead []wire.NodeRef
	for _, m := range members {
		last, ok := n.lastSeen[m.ID]
		if !ok {
			// First sighting without traffic: start the silence clock.
			n.sawNow(m.ID)
		} else if now-last > n.cfg.FailTimeout {
			dead = append(dead, m)
			continue
		}
		n.tr.Send(m.Addr, hb)
	}
	var acts []func()
	for _, d := range dead {
		acts = append(acts, n.declareDeadLocked(d)...)
	}
	n.kaTicks++
	if n.cfg.LeafSync > 0 && n.kaTicks%uint64(n.cfg.LeafSync) == 0 {
		// Membership anti-entropy: ask one random known peer for its leaf
		// set. The reply folds its members into local state, so partial
		// views (a join whose state transfer was lossy, a heal the
		// announce fan-out missed) converge instead of persisting.
		if cands := n.candidates(); len(cands) > 0 {
			pick := cands[n.rand().Intn(len(cands))]
			n.tr.Send(pick.Addr, wire.LeafSetRequest{From: n.ref})
		}
	}
	if m, ok := n.app.(Maintainer); ok {
		acts = append(acts, m.Maintain)
	}
	if n.kaTimer != nil {
		n.kaTimer.Release() // this tick's handle has fired; recycle it
	}
	n.kaTimer = n.clock.AfterFunc(n.cfg.KeepAlive, n.keepAliveTick)
	n.mu.Unlock()
	run(acts)
}

// DeclareDead lets the application layer report a node it found
// unresponsive (e.g. a fetch that timed out).
func (n *Node) DeclareDead(ref wire.NodeRef) {
	n.mu.Lock()
	acts := n.declareDeadLocked(ref)
	n.mu.Unlock()
	run(acts)
}

// declareDeadLocked removes a failed node and repairs the leaf set by
// asking the extreme live member on the failed node's side for its leaf
// set. Lock held.
func (n *Node) declareDeadLocked(ref wire.NodeRef) []func() {
	clockwise := n.leaf.SideOf(ref.ID)
	if !n.removeDeadLocked(ref.ID) {
		return nil
	}
	if ext, ok := n.leaf.Extreme(clockwise); ok && ext.ID != ref.ID {
		n.tr.Send(ext.Addr, wire.LeafSetRequest{From: n.ref})
	} else if ext, ok := n.leaf.Extreme(!clockwise); ok {
		n.tr.Send(ext.Addr, wire.LeafSetRequest{From: n.ref})
	}
	app := n.app
	return []func(){app.LeafSetChanged}
}

// removeDeadLocked purges a node from all local state and requests a lazy
// routing-table repair for the vacated slot. Lock held.
func (n *Node) removeDeadLocked(dead id.Node) bool {
	if n.suspect == nil {
		n.suspect = make(map[id.Node]time.Duration)
	}
	n.suspect[dead] = n.clock.Now()
	inLeaf := n.leaf.Remove(dead)
	row, col, ok := n.rt.coords(dead)
	inRT := n.rt.Remove(dead)
	n.nbhd.Remove(dead)
	delete(n.lastSeen, dead)
	if inRT && ok {
		n.requestRTRepairLocked(row, col)
	}
	return inLeaf || inRT
}

// requestRTRepairLocked asks peers for a replacement entry matching
// (row, col) relative to this node's id: first same-row entries, then leaf
// members (the paper's lazy repair). Lock held.
func (n *Node) requestRTRepairLocked(row, col int) {
	req := wire.RTRepairRequest{From: n.ref, Row: row, Col: col}
	sent := 0
	for _, e := range n.rt.Row(row) {
		if sent >= 2 {
			break
		}
		n.tr.Send(e.Addr, req)
		sent++
	}
	if sent == 0 {
		for _, m := range n.leaf.Members() {
			if sent >= 2 {
				break
			}
			n.tr.Send(m.Addr, req)
			sent++
		}
	}
}

// handleRTRepairRequest searches local state for a node matching the
// requester's (row, col) pattern: shares `row` digits with the requester
// and has digit `col` at position row. Lock held.
func (n *Node) handleRTRepairRequest(m wire.RTRepairRequest) {
	want := wire.NodeRef{}
	for _, c := range n.candidates() {
		if c.ID == m.From.ID {
			continue
		}
		if id.CommonPrefix(c.ID, m.From.ID, n.cfg.B) >= m.Row && c.ID.Digit(m.Row, n.cfg.B) == m.Col {
			want = c
			break
		}
	}
	// Also consider this node itself.
	if want.IsZero() &&
		id.CommonPrefix(n.ref.ID, m.From.ID, n.cfg.B) >= m.Row &&
		n.ref.ID.Digit(m.Row, n.cfg.B) == m.Col {
		want = n.ref
	}
	n.tr.Send(m.From.Addr, wire.RTRepairReply{From: n.ref, Row: m.Row, Col: m.Col, Entry: want})
}

// handleRTRepairReply folds a repair candidate into the table. Lock held.
func (n *Node) handleRTRepairReply(m wire.RTRepairReply) {
	n.noteAlive(m.From)
	if !m.Entry.IsZero() && m.Entry.ID != n.ref.ID {
		n.considerLocked(m.Entry)
	}
}

// Depart shuts the node down gracefully: it tells its leaf-set members
// it is going (so they repair their state and restore replication
// immediately instead of waiting out FailTimeout), then stops
// participating. The paper's failure model is silent departure (Leave);
// Depart models the cooperative case a long-lived deployment also sees.
func (n *Node) Depart() {
	n.mu.Lock()
	if n.alive {
		bye := wire.Depart{From: n.ref}
		for _, m := range n.leaf.Members() {
			n.tr.Send(m.Addr, bye)
		}
	}
	n.mu.Unlock()
	n.Leave() // shared shutdown tail: flags, keep-alive timer
}

// Leave shuts the node down silently (it stops responding), modelling the
// paper's "nodes may silently leave the system without warning". The
// node's state is retained so Recover can bring it back.
func (n *Node) Leave() {
	n.mu.Lock()
	n.alive = false
	n.joined = false
	if n.kaTimer != nil {
		n.kaTimer.Stop()
		n.kaTimer.Release()
		n.kaTimer = nil
	}
	n.mu.Unlock()
}

// Recover implements the recovery protocol of section 2.2: "a recovering
// node contacts the nodes in its last known leaf set, obtains their
// current leaf sets, updates its own leaf set and then notifies the
// members of its presence". Peers will have declared this node dead while
// it was gone; the Announce makes them re-admit it (direct contact clears
// their suspicion) and triggers their LeafSetChanged upcalls, so the
// storage layer restores any replicas this node should hold.
func (n *Node) Recover() {
	n.mu.Lock()
	n.alive = true
	n.joined = true
	known := n.leaf.Members()
	// The world moved on while we were gone: our view of who is alive is
	// stale, so restart the silence clocks (maps reallocate on first use).
	n.lastSeen = nil
	n.suspect = nil
	req := wire.LeafSetRequest{From: n.ref}
	ann := wire.Announce{From: n.ref}
	for _, m := range known {
		n.tr.Send(m.Addr, req)
		n.tr.Send(m.Addr, ann)
	}
	n.mu.Unlock()
	n.startKeepAlive()
}
