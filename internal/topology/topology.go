package topology

import (
	"fmt"
	"math/rand"
	"time"
)

// Config controls topology generation. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Transits is the number of transit domains.
	Transits int
	// StubsPerTransit is the number of stub domains per transit domain.
	StubsPerTransit int
	// TransitMin/TransitMax bound the latency between distinct transit
	// domains, in milliseconds.
	TransitMin, TransitMax float64
	// UplinkMin/UplinkMax bound each stub domain's uplink latency to its
	// transit router.
	UplinkMin, UplinkMax float64
	// StubMin/StubMax bound the intra-stub latency contribution of a node.
	StubMin, StubMax float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig mirrors the rough scale of GT-ITM topologies used in the
// Pastry paper: a handful of transit domains, tens of stubs, wide spread
// between intra-stub and cross-transit latencies.
func DefaultConfig(seed int64) Config {
	return Config{
		Transits:        8,
		StubsPerTransit: 16,
		TransitMin:      20,
		TransitMax:      80,
		UplinkMin:       4,
		UplinkMax:       16,
		StubMin:         0.5,
		StubMax:         3,
		Seed:            seed,
	}
}

// Topology is an immutable generated topology. Attach end nodes with
// Place; query distances with Distance.
type Topology struct {
	cfg      Config
	transit  [][]float64 // symmetric transit-to-transit latency matrix
	uplink   []float64   // per-stub uplink latency, indexed by stub
	stubOf   []int       // stub -> transit index
	rng      *rand.Rand
	nodeStub []int     // node -> stub index
	nodeHop  []float64 // node -> intra-stub latency component
}

// New generates a topology from cfg.
func New(cfg Config) (*Topology, error) {
	if cfg.Transits <= 0 || cfg.StubsPerTransit <= 0 {
		return nil, fmt.Errorf("topology: need positive domain counts, got %d transits × %d stubs", cfg.Transits, cfg.StubsPerTransit)
	}
	if cfg.TransitMax < cfg.TransitMin || cfg.UplinkMax < cfg.UplinkMin || cfg.StubMax < cfg.StubMin {
		return nil, fmt.Errorf("topology: invalid latency bounds")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{cfg: cfg, rng: rng}
	t.transit = make([][]float64, cfg.Transits)
	for i := range t.transit {
		t.transit[i] = make([]float64, cfg.Transits)
	}
	for i := 0; i < cfg.Transits; i++ {
		for j := i + 1; j < cfg.Transits; j++ {
			d := cfg.TransitMin + rng.Float64()*(cfg.TransitMax-cfg.TransitMin)
			t.transit[i][j] = d
			t.transit[j][i] = d
		}
	}
	nStubs := cfg.Transits * cfg.StubsPerTransit
	t.uplink = make([]float64, nStubs)
	t.stubOf = make([]int, nStubs)
	for s := 0; s < nStubs; s++ {
		t.uplink[s] = cfg.UplinkMin + rng.Float64()*(cfg.UplinkMax-cfg.UplinkMin)
		t.stubOf[s] = s / cfg.StubsPerTransit
	}
	return t, nil
}

// MustNew is New but panics on error; for tests and examples with known
// good configs.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NumStubs returns the number of stub domains.
func (t *Topology) NumStubs() int { return len(t.uplink) }

// NumNodes returns the number of placed end nodes.
func (t *Topology) NumNodes() int { return len(t.nodeStub) }

// Place attaches a new end node to a uniformly random stub domain and
// returns its node index. Node indices are dense and start at zero.
func (t *Topology) Place() int {
	stub := t.rng.Intn(len(t.uplink))
	return t.PlaceAt(stub)
}

// PlaceAt attaches a new end node to the given stub domain.
func (t *Topology) PlaceAt(stub int) int {
	if stub < 0 || stub >= len(t.uplink) {
		panic(fmt.Sprintf("topology: stub %d out of range [0,%d)", stub, len(t.uplink)))
	}
	hop := t.cfg.StubMin + t.rng.Float64()*(t.cfg.StubMax-t.cfg.StubMin)
	t.nodeStub = append(t.nodeStub, stub)
	t.nodeHop = append(t.nodeHop, hop)
	return len(t.nodeStub) - 1
}

// Stub returns the stub domain of node i.
func (t *Topology) Stub(i int) int { return t.nodeStub[i] }

// Transit returns the transit domain of node i. The simulator's sharded
// engine partitions nodes into shards by transit domain, because the
// config bounds guarantee a latency floor between nodes in different
// transit domains (see LookaheadBound).
func (t *Topology) Transit(i int) int { return t.stubOf[t.nodeStub[i]] }

// LookaheadBound returns a lower bound on the delivery latency between
// any two end nodes in DIFFERENT transit domains, derived purely from the
// config bounds: two intra-stub hops, two uplinks and one transit link at
// their configured minimums. It depends only on the Config — never on
// node placement — so it is identical at any shard count, which the
// sharded engine's determinism guarantee requires.
func (t *Topology) LookaheadBound() time.Duration {
	ms := t.cfg.TransitMin + 2*t.cfg.UplinkMin + 2*t.cfg.StubMin
	return time.Duration(ms * float64(time.Millisecond))
}

// Distance returns the proximity metric between end nodes a and b, in
// milliseconds of one-way latency. Distance is symmetric, zero iff a == b,
// and satisfies the hierarchical structure described in the package
// comment. It does not satisfy the triangle inequality exactly (neither do
// Internet RTTs).
func (t *Topology) Distance(a, b int) float64 {
	if a == b {
		return 0
	}
	sa, sb := t.nodeStub[a], t.nodeStub[b]
	if sa == sb {
		return t.nodeHop[a] + t.nodeHop[b]
	}
	ta, tb := t.stubOf[sa], t.stubOf[sb]
	// Group the symmetric pairs so floating-point non-associativity cannot
	// make Distance(a,b) != Distance(b,a).
	d := (t.nodeHop[a] + t.nodeHop[b]) + (t.uplink[sa] + t.uplink[sb])
	if ta != tb {
		d += t.transit[ta][tb]
	}
	return d
}

// MaxDistance returns an upper bound on any pairwise distance, useful for
// normalizing plots and for timeout selection in simulations.
func (t *Topology) MaxDistance() float64 {
	maxT := 0.0
	for i := range t.transit {
		for j := range t.transit[i] {
			if t.transit[i][j] > maxT {
				maxT = t.transit[i][j]
			}
		}
	}
	return 2*t.cfg.StubMax + 2*t.cfg.UplinkMax + maxT
}
