// Package topology synthesizes an Internet-like network topology and
// exposes a pairwise proximity metric over end nodes.
//
// The Pastry evaluation the PAST paper cites used GT-ITM transit-stub
// graphs with shortest-path link distances. Computing all-pairs shortest
// paths is infeasible at the 10^5-node scale this reproduction targets, so
// this package substitutes a hierarchical metric with the same structure:
// a small set of transit domains connected by a random symmetric distance
// matrix, stub domains attached to transit routers, and end nodes attached
// to stub routers. The distance between two end nodes composes
//
//	intra-stub hop + stub uplink + transit-to-transit + downlink + hop
//
// in O(1) per pair. Locality experiments depend only on the metric's
// hierarchical clustering (nearby nodes share a stub, far nodes cross
// transit domains), which this construction preserves. See
// ARCHITECTURE.md ("Topology and locality").
//
// The hierarchy also gives the simulator its sharding structure: Transit
// partitions nodes into regions, and LookaheadBound turns the config's
// minimum cross-transit latency into the conservative scheduler's event
// window (see internal/simnet/shard.go). Both are derived from the Config
// alone, never from placement, so they cannot vary with shard count.
package topology
