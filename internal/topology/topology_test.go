package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func build(t *testing.T, n int) *Topology {
	t.Helper()
	top, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		top.Place()
	}
	return top
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
	bad := DefaultConfig(1)
	bad.TransitMax = bad.TransitMin - 1
	if _, err := New(bad); err == nil {
		t.Fatal("inverted latency bounds must be rejected")
	}
	bad2 := DefaultConfig(1)
	bad2.Transits = 0
	if _, err := New(bad2); err == nil {
		t.Fatal("zero transits must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{})
}

func TestDeterministic(t *testing.T) {
	a := build(t, 100)
	b := build(t, 100)
	for i := 0; i < 100; i += 7 {
		for j := 0; j < 100; j += 11 {
			if a.Distance(i, j) != b.Distance(i, j) {
				t.Fatalf("same seed gave different distances at (%d,%d)", i, j)
			}
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	top := build(t, 200)
	for i := 0; i < 200; i += 5 {
		if top.Distance(i, i) != 0 {
			t.Fatalf("Distance(%d,%d) != 0", i, i)
		}
		for j := 0; j < 200; j += 13 {
			d := top.Distance(i, j)
			if d != top.Distance(j, i) {
				t.Fatalf("asymmetric distance (%d,%d)", i, j)
			}
			if i != j && d <= 0 {
				t.Fatalf("non-positive distance %f between distinct nodes", d)
			}
			if d > top.MaxDistance() {
				t.Fatalf("distance %f exceeds MaxDistance %f", d, top.MaxDistance())
			}
		}
	}
}

func TestHierarchicalClustering(t *testing.T) {
	// Nodes in the same stub must on average be much closer than nodes in
	// different transit domains.
	top := MustNew(DefaultConfig(7))
	a := top.PlaceAt(0)
	b := top.PlaceAt(0)
	// Stub in a different transit domain.
	far := top.cfg.StubsPerTransit * (top.cfg.Transits - 1)
	c := top.PlaceAt(far)
	if top.Distance(a, b) >= top.Distance(a, c) {
		t.Fatalf("intra-stub %.2f should be < cross-transit %.2f",
			top.Distance(a, b), top.Distance(a, c))
	}
	if top.Distance(a, b) > 2*top.cfg.StubMax {
		t.Fatalf("intra-stub distance %.2f exceeds bound", top.Distance(a, b))
	}
	if top.Distance(a, c) < top.cfg.TransitMin {
		t.Fatalf("cross-transit distance %.2f below transit floor", top.Distance(a, c))
	}
}

func TestPlaceAtBounds(t *testing.T) {
	top := MustNew(DefaultConfig(1))
	defer func() {
		if recover() == nil {
			t.Fatal("PlaceAt out of range should panic")
		}
	}()
	top.PlaceAt(top.NumStubs())
}

func TestStubAccessor(t *testing.T) {
	top := MustNew(DefaultConfig(1))
	n := top.PlaceAt(3)
	if top.Stub(n) != 3 {
		t.Fatalf("Stub = %d, want 3", top.Stub(n))
	}
	if top.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", top.NumNodes())
	}
}

func TestQuickDistanceSymmetricNonNegative(t *testing.T) {
	top := build(t, 500)
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		i := rng.Intn(500)
		j := rng.Intn(500)
		d := top.Distance(i, j)
		return d >= 0 && d == top.Distance(j, i) && (i != j || d == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistance(b *testing.B) {
	top := MustNew(DefaultConfig(1))
	for i := 0; i < 1000; i++ {
		top.Place()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = top.Distance(i%1000, (i*7)%1000)
	}
}
