// Package chaos is a deterministic fault-injecting TCP proxy for the
// real-network harness: it sits between pastnode processes (every node
// dials its peers through the proxy via transport.TCPOptions.DialVia) and
// applies a seed-pinned schedule of link faults — per-frame drop
// probability, added latency and jitter, connection resets, bandwidth
// caps, and full bidirectional partitions with timed heal.
//
// Determinism contract: every probabilistic decision is a pure function
// of (schedule seed, link, frame index) — no shared RNG state, no
// wall-clock input — so for a given seed the n-th frame on a link is
// dropped (or jittered by the same fraction) on every run, regardless of
// goroutine scheduling or timing. The proxy's FaultLog serializes those
// decisions per link; Drops recomputes them offline, letting tests assert
// the log replays byte-identically for the same seed.
//
// The proxy understands the transport's framing (4-byte length prefix +
// payload) and drops whole frames, never partial bytes: a dropped frame
// models a lost datagram, exactly matching the silent-loss semantics the
// protocol layer is built to tolerate, while the byte stream around it
// stays decodable.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Link names one direction of one node pair, by the transport addresses
// the nodes announce (the same strings the via preamble carries).
type Link struct {
	From, To string
}

func (l Link) String() string { return l.From + "->" + l.To }

// LinkRule is the steady-state fault set applied to one link direction.
// The zero value is a transparent link.
type LinkRule struct {
	// Drop is the per-frame drop probability in [0, 1).
	Drop float64
	// Latency is added one-way delay per frame (and per connection
	// handshake), Jitter the upper bound of additional delay drawn
	// deterministically per frame in [0, Jitter).
	Latency, Jitter time.Duration
	// ResetEvery, when > 0, hard-resets the connection after every n-th
	// forwarded frame on the link — the repeating-RST gray failure.
	ResetEvery int
	// BytesPerSec, when > 0, caps the link's forwarding rate.
	BytesPerSec int64
}

func (r LinkRule) transparent() bool {
	return r.Drop == 0 && r.Latency == 0 && r.Jitter == 0 && r.ResetEvery == 0 && r.BytesPerSec == 0
}

// Window is a scheduled bidirectional partition: links crossing between
// groups A and B are fully cut from From to Until (relative to the
// proxy's Start), then heal. A node listed in neither group is unaffected.
type Window struct {
	From, Until time.Duration
	A, B        []string
}

// Schedule is the seed-pinned fault plan for one proxy.
type Schedule struct {
	// Seed pins every probabilistic decision; two proxies with the same
	// schedule replay the same fault trajectory.
	Seed int64
	// Default applies to every link without an explicit override.
	Default LinkRule
	// Links overrides the default per directed link.
	Links map[Link]LinkRule
	// Windows are timed partitions relative to Start.
	Windows []Window
}

// RuleFor returns the rule governing one link direction.
func (s *Schedule) RuleFor(l Link) LinkRule {
	if r, ok := s.Links[l]; ok {
		return r
	}
	return s.Default
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, here used as a stateless hash so fault decisions need no
// shared RNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// linkSeed folds the schedule seed and the link name into one stream seed.
func linkSeed(seed int64, l Link) uint64 {
	h := uint64(14695981039346656037) // FNV-1a 64
	for _, b := range []byte(l.String()) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return splitmix64(uint64(seed) ^ h)
}

// frac maps a hash to [0, 1) with 53 bits of precision.
func frac(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// dropFrame reports the deterministic drop decision for frame idx of a
// link stream.
func dropFrame(ls uint64, idx uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	return frac(splitmix64(ls^(idx*0x9e3779b97f4a7c15))) < p
}

// jitterFor returns the deterministic jitter for frame idx in [0, max).
func jitterFor(ls uint64, idx uint64, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(frac(splitmix64(ls^(idx*0x9e3779b97f4a7c15)+1)) * float64(max))
}

// Drops recomputes, offline, which of the first n frames on link l a
// proxy running schedule seed/rule drops. FaultLog is built from exactly
// this function, so a test that counts frames per link can assert the
// live log byte-identically.
func Drops(seed int64, l Link, rule LinkRule, n uint64) []uint64 {
	ls := linkSeed(seed, l)
	var out []uint64
	for i := uint64(0); i < n; i++ {
		if dropFrame(ls, i, rule.Drop) {
			out = append(out, i)
		}
	}
	return out
}

// FormatLinkLog renders one link's fault-log line: the frame count plus
// the exact dropped indexes. Deterministic for a given (seed, link, n).
func FormatLinkLog(seed int64, l Link, rule LinkRule, n uint64) string {
	drops := Drops(seed, l, rule, n)
	var b strings.Builder
	fmt.Fprintf(&b, "link %s frames=%d drops=%d [", l, n, len(drops))
	for i, d := range drops {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte(']')
	return b.String()
}

// ExpectedLog recomputes, offline, the fault log a proxy running sched
// must have produced after forwarding the given per-link frame counts:
// the byte-identical replay oracle. Callers read the counts from
// Proxy.Stats() and compare against Proxy.FaultLog().
func ExpectedLog(sched Schedule, frames map[Link]uint64) string {
	lines := make(map[Link]string, len(frames))
	for l, n := range frames {
		lines[l] = FormatLinkLog(sched.Seed, l, sched.RuleFor(l), n)
	}
	return formatLog(sched.Seed, lines)
}

// cut reports whether the (unordered) node pair crosses the A/B split.
func cut(from, to string, a, b []string) bool {
	in := func(x string, g []string) bool {
		for _, m := range g {
			if m == x {
				return true
			}
		}
		return false
	}
	return (in(from, a) && in(to, b)) || (in(from, b) && in(to, a))
}

// formatLog assembles the full fault log: a seed header plus one line per
// link, sorted by link name so map iteration order never leaks in.
func formatLog(seed int64, lines map[Link]string) string {
	keys := make([]Link, 0, len(lines))
	for l := range lines {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d links=%d\n", seed, len(keys))
	for _, l := range keys {
		b.WriteString(lines[l])
		b.WriteByte('\n')
	}
	return b.String()
}
