package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"past/internal/transport"
)

// Options tune a Proxy. The zero value listens on a free loopback port
// with the transport's default frame cap and dial timeout.
type Options struct {
	// Listen is the proxy's listen address (default "127.0.0.1:0").
	Listen string
	// MaxFrame caps one relayed frame (default 8 MiB, matching the
	// transport).
	MaxFrame int
	// DialTimeout bounds the proxy's own dial to the announced target
	// (default 3s).
	DialTimeout time.Duration
}

// LinkStats counts one link direction's relayed traffic.
type LinkStats struct {
	Frames  uint64 // frames read from the source (forwarded + dropped)
	Dropped uint64
	Resets  uint64
}

// linkState is the per-link mutable state: the global frame counter
// (shared across reconnects of the link, so decision indexes never
// restart), the recorded drop indexes, and the bandwidth pacing clock.
type linkState struct {
	frames  uint64
	dropped []uint64
	resets  uint64
	bwNext  time.Time
}

// pipePair is one proxied connection: the dialer side, the target side,
// and the link it carries.
type pipePair struct {
	client, target net.Conn
	from, to       string
}

func (pp *pipePair) closeBoth() {
	pp.client.Close() //nolint:errcheck // teardown
	pp.target.Close() //nolint:errcheck // teardown
}

// groupCut is a manual partition installed by Partition().
type groupCut struct{ a, b []string }

// Proxy is the fault-injecting relay. Transports reach it by setting
// TCPOptions.DialVia to its Addr; each inbound connection announces its
// (from, to) link with the via preamble, the proxy dials the real target,
// acks, and relays whole frames applying the schedule's faults.
type Proxy struct {
	sched       Schedule
	ln          net.Listener
	maxFrame    int
	dialTimeout time.Duration
	start       time.Time
	done        chan struct{}

	mu     sync.Mutex
	links  map[Link]*linkState
	pipes  map[*pipePair]bool
	manual []groupCut
	closed bool

	wg sync.WaitGroup
}

// New starts a proxy applying sched. Close it when done.
func New(sched Schedule, opts Options) (*Proxy, error) {
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = 8 << 20
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 3 * time.Second
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", opts.Listen, err)
	}
	p := &Proxy{
		sched:       sched,
		ln:          ln,
		maxFrame:    opts.MaxFrame,
		dialTimeout: opts.DialTimeout,
		start:       time.Now(),
		done:        make(chan struct{}),
		links:       make(map[Link]*linkState),
		pipes:       make(map[*pipePair]bool),
	}
	p.wg.Add(2)
	go p.acceptLoop()
	go p.janitor()
	return p, nil
}

// Addr returns the address transports pass as DialVia.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition installs a full bidirectional cut between node groups a and
// b: new connections crossing the cut are refused and established ones
// are killed immediately. It stacks with scheduled Windows.
func (p *Proxy) Partition(a, b []string) {
	p.mu.Lock()
	p.manual = append(p.manual, groupCut{a: append([]string(nil), a...), b: append([]string(nil), b...)})
	p.mu.Unlock()
	p.reapCutPipes()
}

// Heal removes every manual partition (scheduled Windows heal on their
// own clock).
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.manual = nil
	p.mu.Unlock()
}

// partitioned reports whether the link is currently cut, by a manual
// partition or an active scheduled window.
func (p *Proxy) partitioned(from, to string) bool {
	elapsed := time.Since(p.start)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, g := range p.manual {
		if cut(from, to, g.a, g.b) {
			return true
		}
	}
	for _, w := range p.sched.Windows {
		if elapsed >= w.From && elapsed < w.Until && cut(from, to, w.A, w.B) {
			return true
		}
	}
	return false
}

// reapCutPipes closes every established pipe whose link is currently cut.
func (p *Proxy) reapCutPipes() {
	p.mu.Lock()
	var doomed []*pipePair
	for pp := range p.pipes {
		if pp != nil {
			doomed = append(doomed, pp)
		}
	}
	p.mu.Unlock()
	for _, pp := range doomed {
		if p.partitioned(pp.from, pp.to) {
			pp.closeBoth()
		}
	}
}

// janitor enforces scheduled partition windows on idle connections: a cut
// must sever links even when no frame happens to flow.
func (p *Proxy) janitor() {
	defer p.wg.Done()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
			p.reapCutPipes()
		}
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// serve handles one dialer: preamble, partition check, target dial, ack,
// then two relay pipes (one per direction).
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		client.Close()
		return
	}
	from, to, err := transport.ReadViaPreamble(client)
	if err != nil {
		client.Close()
		return
	}
	if p.partitioned(from, to) {
		client.Close() // no ack: the dialer sees the peer as unreachable
		return
	}
	target, err := net.DialTimeout("tcp", to, p.dialTimeout)
	if err != nil {
		client.Close()
		return
	}
	// Connect-time latency: a slow link's handshake is slow too.
	if d := p.sched.RuleFor(Link{From: from, To: to}).Latency; d > 0 {
		time.Sleep(d)
	}
	if _, err := client.Write([]byte{transport.ViaAck}); err != nil {
		client.Close()
		target.Close()
		return
	}
	if err := client.SetDeadline(time.Time{}); err != nil {
		client.Close()
		target.Close()
		return
	}

	pp := &pipePair{client: client, target: target, from: from, to: to}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pp.closeBoth()
		return
	}
	p.pipes[pp] = true
	p.mu.Unlock()

	var pipeWG sync.WaitGroup
	pipeWG.Add(2)
	go func() { defer pipeWG.Done(); p.pipe(client, target, Link{From: from, To: to}, pp) }()
	go func() { defer pipeWG.Done(); p.pipe(target, client, Link{From: to, To: from}, pp) }()
	pipeWG.Wait()
	p.mu.Lock()
	delete(p.pipes, pp)
	p.mu.Unlock()
}

// nextFrame assigns the link's next global frame index.
func (p *Proxy) nextFrame(l Link) (*linkState, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.links[l]
	if !ok {
		st = &linkState{}
		p.links[l] = st
	}
	idx := st.frames
	st.frames++
	return st, idx
}

// pipe relays whole frames from src to dst, applying the link's rule.
// Exits (closing both sides) on read/write error, reset, or partition.
func (p *Proxy) pipe(src, dst net.Conn, l Link, pp *pipePair) {
	defer pp.closeBoth()
	rule := p.sched.RuleFor(l)
	ls := linkSeed(p.sched.Seed, l)
	for {
		payload, err := transport.ReadRawFrame(src, p.maxFrame)
		if err != nil {
			return
		}
		if p.partitioned(l.From, l.To) {
			return
		}
		st, idx := p.nextFrame(l)
		if dropFrame(ls, idx, rule.Drop) {
			p.mu.Lock()
			st.dropped = append(st.dropped, idx)
			p.mu.Unlock()
			continue
		}
		if d := rule.Latency + jitterFor(ls, idx, rule.Jitter); d > 0 {
			select {
			case <-p.done:
				return
			case <-time.After(d):
			}
		}
		if rule.BytesPerSec > 0 {
			p.throttle(st, len(payload), rule.BytesPerSec)
		}
		if err := transport.WriteRawFrame(dst, payload); err != nil {
			return
		}
		if rule.ResetEvery > 0 && (idx+1)%uint64(rule.ResetEvery) == 0 {
			p.mu.Lock()
			st.resets++
			p.mu.Unlock()
			// RST rather than FIN: surprise teardown mid-stream.
			if tc, ok := pp.client.(*net.TCPConn); ok {
				tc.SetLinger(0) //nolint:errcheck // best-effort RST
			}
			return
		}
	}
}

// throttle paces the link to rate bytes/sec with a virtual send clock.
func (p *Proxy) throttle(st *linkState, n int, rate int64) {
	p.mu.Lock()
	now := time.Now()
	if st.bwNext.Before(now) {
		st.bwNext = now
	}
	delay := st.bwNext.Sub(now)
	st.bwNext = st.bwNext.Add(time.Duration(float64(n) / float64(rate) * float64(time.Second)))
	p.mu.Unlock()
	if delay > 0 {
		select {
		case <-p.done:
		case <-time.After(delay):
		}
	}
}

// Stats snapshots per-link traffic counters.
func (p *Proxy) Stats() map[Link]LinkStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Link]LinkStats, len(p.links))
	for l, st := range p.links {
		out[l] = LinkStats{Frames: st.frames, Dropped: uint64(len(st.dropped)), Resets: st.resets}
	}
	return out
}

// FaultLog serializes the actual per-link decisions taken so far: frame
// counts and the exact dropped indexes, sorted by link. For a fixed seed
// it is a pure function of the per-link frame counts — Drops/FormatLinkLog
// recompute it offline, which is how tests assert byte-identical replay.
func (p *Proxy) FaultLog() string {
	p.mu.Lock()
	lines := make(map[Link]string, len(p.links))
	for l, st := range p.links {
		var b []byte
		b = fmt.Appendf(b, "link %s frames=%d drops=%d [", l, st.frames, len(st.dropped))
		for i, d := range st.dropped {
			if i > 0 {
				b = append(b, ' ')
			}
			b = fmt.Appendf(b, "%d", d)
		}
		b = append(b, ']')
		lines[l] = string(b)
	}
	seed := p.sched.Seed
	p.mu.Unlock()
	return formatLog(seed, lines)
}

// Close stops the proxy and severs every relayed connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	var doomed []*pipePair
	for pp := range p.pipes {
		doomed = append(doomed, pp)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, pp := range doomed {
		pp.closeBoth()
	}
	p.wg.Wait()
	return err
}
