package chaos

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"past/internal/transport"
	"past/internal/wire"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

// counter records delivered nonces on a transport.
func counter(tr *transport.TCP) func() int {
	var mu sync.Mutex
	n := 0
	tr.SetHandler(func(string, wire.Msg) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return n
	}
}

// TestDecisionDeterminism pins the core contract: fault decisions are a
// pure function of (seed, link, frame index).
func TestDecisionDeterminism(t *testing.T) {
	l := Link{From: "127.0.0.1:1", To: "127.0.0.1:2"}
	rule := LinkRule{Drop: 0.5}
	a := Drops(42, l, rule, 1000)
	b := Drops(42, l, rule, 1000)
	if len(a) != len(b) {
		t.Fatalf("same seed, different drop counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) < 350 || len(a) > 650 {
		t.Fatalf("drop rate wildly off: %d/1000 at p=0.5", len(a))
	}
	// Different seeds and different links draw different streams.
	if s := FormatLinkLog(43, l, rule, 1000); s == FormatLinkLog(42, l, rule, 1000) {
		t.Fatal("seed does not influence the decision stream")
	}
	l2 := Link{From: "127.0.0.1:2", To: "127.0.0.1:1"}
	if FormatLinkLog(42, l2, rule, 1000) == FormatLinkLog(42, l, rule, 1000) {
		t.Fatal("link direction does not influence the decision stream")
	}
	// Prefix stability: the first n decisions never depend on how many
	// more frames follow.
	short := FormatLinkLog(42, l, rule, 10)
	if !strings.Contains(short, "frames=10") {
		t.Fatalf("unexpected log line: %s", short)
	}
	longDrops := Drops(42, l, rule, 1000)
	shortDrops := Drops(42, l, rule, 10)
	for i, d := range shortDrops {
		if longDrops[i] != d {
			t.Fatal("drop stream is not prefix-stable")
		}
	}
}

// TestProxyRelayAndFaultLogReplay sends a fixed number of frames through
// a 30%-drop link and asserts (a) exactly the scheduled frames were
// dropped and (b) the live fault log matches the offline recomputation
// byte-for-byte — the replays-identically-for-a-seed acceptance check.
func TestProxyRelayAndFaultLogReplay(t *testing.T) {
	sched := Schedule{Seed: 7, Default: LinkRule{Drop: 0.3}}
	p, err := New(sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	b, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{DialVia: p.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	got := counter(b)

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), wire.Ping{Nonce: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			time.Sleep(5 * time.Millisecond) // keep the bounded queue from overflowing
		}
	}
	link := Link{From: a.Addr(), To: b.Addr()}
	expectDrops := len(Drops(sched.Seed, link, sched.Default, n))
	waitFor(t, 10*time.Second, func() bool {
		st := p.Stats()[link]
		return st.Frames == n && got() == n-expectDrops
	})
	st := p.Stats()[link]
	if int(st.Dropped) != expectDrops {
		t.Fatalf("dropped %d frames, schedule says %d", st.Dropped, expectDrops)
	}

	// Byte-identical replay: live log == offline recomputation.
	want := formatLog(sched.Seed, map[Link]string{link: FormatLinkLog(sched.Seed, link, sched.Default, n)})
	if log := p.FaultLog(); log != want {
		t.Fatalf("fault log diverges from recomputation:\nlive:\n%s\nwant:\n%s", log, want)
	}
}

// TestProxyPartitionHeal cuts a link mid-traffic and heals it: deliveries
// stall during the cut (established pipes die, new dials are refused) and
// resume after heal.
func TestProxyPartitionHeal(t *testing.T) {
	p, err := New(Schedule{Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	b, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{DialVia: p.Addr(), DialTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	got := counter(b)

	waitFor(t, 5*time.Second, func() bool {
		a.Send(b.Addr(), wire.Ping{Nonce: 1})
		return got() >= 1
	})

	p.Partition([]string{a.Addr()}, []string{b.Addr()})
	// Flush the death of the established pipe, then verify nothing flows.
	for i := 0; i < 5; i++ {
		a.Send(b.Addr(), wire.Ping{Nonce: 2})
		time.Sleep(50 * time.Millisecond)
	}
	before := got()
	for i := 0; i < 5; i++ {
		a.Send(b.Addr(), wire.Ping{Nonce: 3})
		time.Sleep(50 * time.Millisecond)
	}
	if after := got(); after != before {
		t.Fatalf("partitioned link delivered %d frames", after-before)
	}

	p.Heal()
	healed := got()
	waitFor(t, 5*time.Second, func() bool {
		a.Send(b.Addr(), wire.Ping{Nonce: 4})
		return got() > healed
	})
}

// TestProxyScheduledWindow exercises a timed partition from the
// schedule: the link is cut for the window's duration and heals by
// itself.
func TestProxyScheduledWindow(t *testing.T) {
	b, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	// Reserve the dialer's address up front so the window can name it
	// before the transport exists (the schedule is fixed at proxy start).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aAddr := ln.Addr().String()
	ln.Close()
	p, err := New(Schedule{Seed: 1, Windows: []Window{{From: 0, Until: 600 * time.Millisecond, A: []string{aAddr}, B: []string{b.Addr()}}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	a, err := transport.ListenTCPOpts(aAddr, transport.TCPOptions{DialVia: p.Addr(), DialTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	got := counter(b)

	a.Send(b.Addr(), wire.Ping{Nonce: 1})
	time.Sleep(150 * time.Millisecond)
	if got() != 0 {
		t.Fatal("frame delivered during scheduled window")
	}
	waitFor(t, 5*time.Second, func() bool {
		a.Send(b.Addr(), wire.Ping{Nonce: 2})
		return got() >= 1
	})
}

// TestProxyLatencyAndReset verifies added latency is observable and that
// ResetEvery tears connections down while traffic still makes progress
// through redials.
func TestProxyLatencyAndReset(t *testing.T) {
	link := func(a, b *transport.TCP) Link { return Link{From: a.Addr(), To: b.Addr()} }
	b, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	p, err := New(Schedule{Seed: 3, Default: LinkRule{Latency: 120 * time.Millisecond, ResetEvery: 5}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	a, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{DialVia: p.Addr(), DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	got := counter(b)

	start := time.Now()
	a.Send(b.Addr(), wire.Ping{Nonce: 0})
	waitFor(t, 5*time.Second, func() bool { return got() >= 1 })
	if d := time.Since(start); d < 120*time.Millisecond {
		t.Fatalf("first delivery took %v, injected latency is 120ms(+connect)", d)
	}

	// Keep sending through resets: progress must continue via redial.
	waitFor(t, 20*time.Second, func() bool {
		a.Send(b.Addr(), wire.Ping{Nonce: 9})
		time.Sleep(20 * time.Millisecond)
		return got() >= 12 && p.Stats()[link(a, b)].Resets >= 1
	})
}

// TestProxyBandwidthCap paces a capped link: two 30 KiB frames at
// 100 KiB/s cannot both land in under ~300ms.
func TestProxyBandwidthCap(t *testing.T) {
	b, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	p, err := New(Schedule{Seed: 3, Default: LinkRule{BytesPerSec: 100 << 10}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	a, err := transport.ListenTCPOpts("127.0.0.1:0", transport.TCPOptions{DialVia: p.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	got := counter(b)

	start := time.Now()
	payload := make([]byte, 40<<10)
	a.Send(b.Addr(), wire.ReplicaStore{Data: payload})
	a.Send(b.Addr(), wire.ReplicaStore{Data: payload})
	waitFor(t, 10*time.Second, func() bool { return got() == 2 })
	if d := time.Since(start); d < 350*time.Millisecond {
		t.Fatalf("80 KiB crossed a 100 KiB/s link in %v", d)
	}
}
