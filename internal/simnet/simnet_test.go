package simnet

import (
	"testing"
	"time"

	"past/internal/wire"
)

type testMsg struct{ N int }

func (testMsg) Kind() string { return "test" }

func TestAddrRoundTrip(t *testing.T) {
	i, err := Index(Addr(42))
	if err != nil || i != 42 {
		t.Fatalf("Index(Addr(42)) = %d, %v", i, err)
	}
	if _, err := Index("tcp:foo"); err == nil {
		t.Fatal("bad address should error")
	}
}

func TestDeliveryOrderAndLatency(t *testing.T) {
	// Distance a->b is |a-b| ms.
	n := New(Config{Seed: 1}, func(a, b int) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return float64(d)
	})
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	c := n.NewEndpoint()
	var got []int
	var at []time.Duration
	sink := func(from string, m wire.Msg) {
		got = append(got, m.(testMsg).N)
		at = append(at, n.Now())
	}
	b.SetHandler(sink)
	c.SetHandler(sink)
	// a->c (2ms) sent first, a->b (1ms) second: b must deliver first.
	if err := a.Send(c.Addr(), testMsg{2}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), testMsg{1}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivery order %v, want [1 2]", got)
	}
	if at[0] != time.Millisecond || at[1] != 2*time.Millisecond {
		t.Fatalf("delivery times %v", at)
	}
	if n.Messages() != 2 {
		t.Fatalf("Messages = %d", n.Messages())
	}
	if n.MessagesByKind()["test"] != 2 {
		t.Fatalf("by-kind counter wrong: %v", n.MessagesByKind())
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	delivered := 0
	b.SetHandler(func(string, wire.Msg) { delivered++ })
	b.Crash()
	a.Send(b.Addr(), testMsg{1})
	n.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("crashed node received a message")
	}
	b.Restart()
	a.Send(b.Addr(), testMsg{2})
	n.RunUntilIdle()
	if delivered != 1 {
		t.Fatal("restarted node should receive")
	}
	// A crashed sender's messages vanish without error.
	a.Crash()
	if err := a.Send(b.Addr(), testMsg{3}); err != nil {
		t.Fatalf("crashed sender Send: %v", err)
	}
	n.RunUntilIdle()
	if delivered != 1 {
		t.Fatal("message from crashed sender was delivered")
	}
}

func TestSendFilterModelsMaliciousNode(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	got := 0
	b.SetHandler(func(string, wire.Msg) { got++ })
	a.SetSendFilter(func(to string, m wire.Msg) bool {
		return m.(testMsg).N%2 == 0 // drop even payloads
	})
	for i := 0; i < 10; i++ {
		a.Send(b.Addr(), testMsg{i})
	}
	n.RunUntilIdle()
	if got != 5 {
		t.Fatalf("filter delivered %d, want 5", got)
	}
}

func TestDropProb(t *testing.T) {
	n := New(Config{Seed: 42, DropProb: 0.5}, nil)
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	got := 0
	b.SetHandler(func(string, wire.Msg) { got++ })
	for i := 0; i < 1000; i++ {
		a.Send(b.Addr(), testMsg{i})
	}
	n.RunUntilIdle()
	if got < 400 || got > 600 {
		t.Fatalf("with 50%% loss delivered %d of 1000", got)
	}
}

func TestTimersAndStop(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	clk := n.Clock()
	fired := []string{}
	clk.AfterFunc(3*time.Millisecond, func() { fired = append(fired, "c") })
	clk.AfterFunc(time.Millisecond, func() { fired = append(fired, "a") })
	tm := clk.AfterFunc(2*time.Millisecond, func() { fired = append(fired, "b") })
	if !tm.Stop() {
		t.Fatal("Stop should report pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report not pending")
	}
	n.RunUntilIdle()
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "c" {
		t.Fatalf("fired %v", fired)
	}
	if clk.Now() != 3*time.Millisecond {
		t.Fatalf("clock at %v", clk.Now())
	}
}

func TestRunFor(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	clk := n.Clock()
	count := 0
	var tick func()
	tick = func() {
		count++
		clk.AfterFunc(10*time.Millisecond, tick)
	}
	clk.AfterFunc(10*time.Millisecond, tick)
	n.RunFor(95 * time.Millisecond)
	if count != 9 {
		t.Fatalf("ticks = %d, want 9", count)
	}
	if n.Now() != 95*time.Millisecond {
		t.Fatalf("RunFor should advance clock to deadline, got %v", n.Now())
	}
}

func TestRunUntil(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	got := 0
	b.SetHandler(func(string, wire.Msg) { got++ })
	for i := 0; i < 10; i++ {
		a.Send(b.Addr(), testMsg{i})
	}
	ok := n.RunUntil(func() bool { return got >= 3 }, 1000)
	if !ok || got < 3 {
		t.Fatalf("RunUntil: ok=%v got=%d", ok, got)
	}
	if got >= 10 {
		t.Fatal("RunUntil should stop early")
	}
}

func TestSendErrors(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	a := n.NewEndpoint()
	if err := a.Send("sim:99", testMsg{}); err == nil {
		t.Fatal("send to unknown endpoint should error")
	}
	if err := a.Send("bogus", testMsg{}); err == nil {
		t.Fatal("send to malformed address should error")
	}
	a.Close()
	if err := a.Send(Addr(0), testMsg{}); err == nil {
		t.Fatal("send on closed endpoint should error")
	}
}

func TestProximity(t *testing.T) {
	n := New(Config{Seed: 1}, func(a, b int) float64 { return float64(a + b) })
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	if got := a.Proximity(b.Addr()); got != 1 {
		t.Fatalf("Proximity = %f", got)
	}
	if got := a.Proximity("bogus"); got < 1e8 {
		t.Fatalf("bad address should be far away, got %f", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		n := New(Config{Seed: 7, DropProb: 0.3, JitterFrac: 0.2}, func(a, b int) float64 { return 5 })
		a := n.NewEndpoint()
		b := n.NewEndpoint()
		var got []int
		b.SetHandler(func(from string, m wire.Msg) { got = append(got, m.(testMsg).N) })
		for i := 0; i < 100; i++ {
			a.Send(b.Addr(), testMsg{i})
		}
		n.RunUntilIdle()
		return got
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestTraceFn(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	b.SetHandler(func(string, wire.Msg) {})
	traces := 0
	n.TraceFn = func(at time.Duration, from, to string, m wire.Msg) { traces++ }
	a.Send(b.Addr(), testMsg{1})
	n.RunUntilIdle()
	if traces != 1 {
		t.Fatalf("traces = %d", traces)
	}
}

func TestResetCounters(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	b.SetHandler(func(string, wire.Msg) {})
	a.Send(b.Addr(), testMsg{1})
	n.RunUntilIdle()
	n.ResetCounters()
	if n.Messages() != 0 || len(n.MessagesByKind()) != 0 {
		t.Fatal("counters not reset")
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	n := New(Config{Seed: 1}, nil)
	src := n.NewEndpoint()
	dst := n.NewEndpoint()
	dst.SetHandler(func(string, wire.Msg) {})
	addr := dst.Addr()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(addr, testMsg{i})
		n.Step()
	}
}
