package simnet

import (
	"testing"
	"time"

	"past/internal/wire"
)

// TestCrashLosesInFlight pins the fault model the churn and adversary
// experiments rely on: a message already in flight when its target
// crashes vanishes (no queueing across downtime), and traffic sent after
// a restart flows again.
func TestCrashLosesInFlight(t *testing.T) {
	n := New(Config{Seed: 7}, func(a, b int) float64 { return 2 }) // 2ms links
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	delivered := 0
	b.SetHandler(func(string, wire.Msg) { delivered++ })

	if err := a.Send(b.Addr(), testMsg{1}); err != nil {
		t.Fatal(err)
	}
	// Crash b at t=1ms, while the 2ms message is still in the air.
	n.AfterFunc(time.Millisecond, func() { b.Crash() })
	n.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("in-flight message delivered to a node that crashed first")
	}

	b.Restart()
	if err := a.Send(b.Addr(), testMsg{2}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("after restart delivered %d, want 1", delivered)
	}
}

// TestCrashedEndpointTimerSuppressed pins the timer half of the fault
// model: a timer armed on an endpoint's own clock belongs to that node,
// so it must not fire while the node is down — a crashed node runs no
// code. Net-level timers have no owner and always fire.
func TestCrashedEndpointTimerSuppressed(t *testing.T) {
	n := New(Config{Seed: 7}, nil)
	a := n.NewEndpoint()
	fired := 0
	a.Clock().AfterFunc(time.Millisecond, func() { fired++ })
	netFired := 0
	n.AfterFunc(time.Millisecond, func() { netFired++ })
	a.Crash()
	n.RunUntilIdle()
	if fired != 0 {
		t.Fatal("endpoint timer fired while its node was down")
	}
	if netFired != 1 {
		t.Fatal("net-level timer must fire regardless of node state")
	}

	// A timer armed after restart fires normally.
	a.Restart()
	a.Clock().AfterFunc(time.Millisecond, func() { fired++ })
	n.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("timer after restart fired %d times, want 1", fired)
	}
}

// TestSendRewriteMisroutes pins the message-rewrite hook the misrouting
// adversary uses: the rewrite sees every non-filtered send, can change
// the destination, runs after the send filter, and a nil rewrite leaves
// the path untouched.
func TestSendRewriteMisroutes(t *testing.T) {
	n := New(Config{Seed: 7}, nil)
	a := n.NewEndpoint()
	b := n.NewEndpoint()
	c := n.NewEndpoint()
	var atB, atC []int
	b.SetHandler(func(_ string, m wire.Msg) { atB = append(atB, m.(testMsg).N) })
	c.SetHandler(func(_ string, m wire.Msg) { atC = append(atC, m.(testMsg).N) })

	// Filter drops odd payloads; rewrite redirects the rest to c. A
	// dropped message must never reach the rewrite.
	rewriteSaw := 0
	a.SetSendFilter(func(to string, m wire.Msg) bool { return m.(testMsg).N%2 == 1 })
	a.SetSendRewrite(func(to string, m wire.Msg) (string, wire.Msg) {
		rewriteSaw++
		return c.Addr(), m
	})
	for i := 0; i < 4; i++ {
		if err := a.Send(b.Addr(), testMsg{i}); err != nil {
			t.Fatal(err)
		}
	}
	n.RunUntilIdle()
	if len(atB) != 0 {
		t.Fatalf("b received %v, rewrite should have redirected everything", atB)
	}
	if len(atC) != 2 || atC[0] != 0 || atC[1] != 2 {
		t.Fatalf("c received %v, want [0 2]", atC)
	}
	if rewriteSaw != 2 {
		t.Fatalf("rewrite saw %d sends, want 2 (filter runs first)", rewriteSaw)
	}

	// Clearing the rewrite restores direct delivery.
	a.SetSendFilter(nil)
	a.SetSendRewrite(nil)
	if err := a.Send(b.Addr(), testMsg{9}); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if len(atB) != 1 || atB[0] != 9 {
		t.Fatalf("b received %v after clearing hooks, want [9]", atB)
	}
}
