package simnet

// Conservative event-window scheduler (the "sharded engine").
//
// Endpoints are partitioned into shards by topological region. Each shard
// owns an event heap, an event pool and a private clock, and is advanced
// by one worker goroutine per window. The coordinator repeats:
//
//	minNext  := earliest pending event time across all shards
//	horizon  := minNext + Lookahead
//	run every shard in parallel over [its now, horizon)
//	barrier; move cross-shard arrivals from inboxes into heaps
//
// Safety (no shard ever receives a message "in its past"): every event
// processed in a window has at >= minNext, and a message between shards
// crosses regions, so its latency is at least Lookahead; its arrival is
// therefore >= minNext + Lookahead = horizon, i.e. in a later window.
// Arrivals are parked in a mutex-guarded inbox during the window and
// merged at the barrier.
//
// Determinism at any shard count: same-timestamp events are ordered by
// (creating endpoint, per-endpoint counter) rather than global creation
// order, and jitter/loss randomness comes from per-endpoint streams
// rather than a shared one. An endpoint's outputs are then a function of
// its own delivery history only. By induction over windows, each
// endpoint's delivery history — and hence every counter, every table and
// the window schedule itself (minNext is a cross-shard minimum) — is
// identical whether the event population is processed by one heap or
// split across N. The determinism test in internal/experiments asserts
// this byte-for-byte at shards=1,2,4.

import (
	"math"
	"sync"
	"time"

	"past/internal/wire"
)

// forever caps nothing: windows are bounded only by event supply.
const forever = time.Duration(math.MaxInt64)

// shard is one region's slice of the simulation: an event heap, pools,
// counters and a private clock. All fields except the inbox are owned by
// the single goroutine driving the shard (a worker during a window, the
// coordinator between windows).
type shard struct {
	net        *Net
	now        time.Duration
	events     eventHeap
	free       []*event    // recycled events
	freeTimers []*simTimer // recycled timer handles (see simTimer.Release)

	inboxMu sync.Mutex
	inbox   []*event // cross-shard arrivals parked until the next barrier

	msgCount  uint64
	byKind    map[string]uint64
	processed uint64 // events processed in the current window
}

// newEvent takes an event from the shard's free list (or allocates one).
// The free list needs no locking: during a window only the shard's worker
// allocates from it, between windows only the coordinator does.
func (s *shard) newEvent(at time.Duration) *event {
	if at < s.now {
		at = s.now
	}
	var ev *event
	if k := len(s.free); k > 0 {
		ev = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	return ev
}

// release returns a processed or cancelled event to the free list. The
// generation bump invalidates any simTimer still holding the event, so a
// late Stop on a fired timer is a harmless no-op instead of cancelling
// whatever the slot was recycled into.
func (s *shard) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.target = nil
	ev.msg = nil
	ev.from = ""
	ev.cancelled = false
	s.free = append(s.free, ev)
}

// newTimerHandle wraps a pending event in a (pooled) cancellation handle.
func (s *shard) newTimerHandle(ev *event) *simTimer {
	var t *simTimer
	if k := len(s.freeTimers); k > 0 {
		t = s.freeTimers[k-1]
		s.freeTimers[k-1] = nil
		s.freeTimers = s.freeTimers[:k-1]
	} else {
		t = &simTimer{}
	}
	t.s = s
	t.ev = ev
	t.gen = ev.gen
	t.released = false
	return t
}

// pushInbox parks a cross-shard arrival until the next barrier. It is the
// only shard entry point that may be called from another shard's worker.
func (s *shard) pushInbox(ev *event) {
	s.inboxMu.Lock()
	s.inbox = append(s.inbox, ev)
	s.inboxMu.Unlock()
}

// flushInbox merges parked arrivals into the heap. Coordinator only.
func (s *shard) flushInbox() {
	s.inboxMu.Lock()
	for i, ev := range s.inbox {
		s.events.push(ev)
		s.inbox[i] = nil
	}
	s.inbox = s.inbox[:0]
	s.inboxMu.Unlock()
}

// deliver hands a message to its endpoint, honoring crash state and
// counters.
func (s *shard) deliver(target *Endpoint, from string, m wire.Msg) {
	if !target.Up() || target.handler == nil {
		return
	}
	s.msgCount++
	s.byKind[m.Kind()]++
	n := s.net
	if n.TraceFn != nil {
		if n.windowed && len(n.shards) > 1 {
			n.traceMu.Lock()
			n.TraceFn(s.now, from, target.addr, m)
			n.traceMu.Unlock()
		} else {
			n.TraceFn(s.now, from, target.addr, m)
		}
	}
	target.handler(from, m)
}

// exec executes one popped, live event: advances the shard clock and
// dispatches to message delivery or the timer callback. The event is
// released BEFORE its payload runs so that a stale Stop from inside the
// callback is a no-op on the recycled slot (generation check). Both
// engines — the legacy Step loop and the windowed runTo loop — execute
// events only through here, so they cannot diverge.
func (s *shard) exec(ev *event) {
	s.now = ev.at
	if ev.target != nil {
		target, from, m := ev.target, ev.from, ev.msg
		s.release(ev)
		s.deliver(target, from, m)
	} else {
		fn := ev.fn
		s.release(ev)
		fn()
	}
}

// runTo processes the shard's events with at < horizon (at <= horizon
// when inclusive), leaving the shard clock at the horizon. Inclusive
// windows exist only when a RunFor deadline cuts a window short; the cap
// guarantees cross-shard arrivals land strictly after the deadline, so
// inclusivity cannot reorder them (see windowStep).
func (s *shard) runTo(horizon time.Duration, inclusive bool) {
	s.processed = 0
	for s.events.Len() > 0 {
		next := s.events.peek()
		if next.at > horizon || (!inclusive && next.at == horizon) {
			break
		}
		ev := s.events.pop()
		if ev.cancelled {
			s.release(ev)
			continue
		}
		s.exec(ev)
		s.processed++
	}
	s.now = horizon
}

// minNextEvent returns the earliest pending event time across all shards.
func (n *Net) minNextEvent() (time.Duration, bool) {
	mn, ok := forever, false
	for _, s := range n.shards {
		if s.events.Len() > 0 {
			if at := s.events.peek().at; !ok || at < mn {
				mn, ok = at, true
			}
		}
	}
	return mn, ok
}

// advanceAll moves every shard clock (and the global clock) forward to t,
// e.g. to a RunFor deadline beyond the last event.
func (n *Net) advanceAll(t time.Duration) {
	for _, s := range n.shards {
		if s.now < t {
			s.now = t
		}
	}
	if n.now < t {
		n.now = t
	}
}

// windowStep runs one conservative window, bounded by limit (a RunFor
// deadline, or forever). It reports the number of events processed and
// whether there was anything at all to do before the limit.
func (n *Net) windowStep(limit time.Duration) (processed uint64, more bool) {
	mn, ok := n.minNextEvent()
	if !ok || mn > limit {
		return 0, false
	}
	horizon := mn + n.cfg.Lookahead
	inclusive := false
	if horizon < mn || horizon > limit { // "< mn" guards addition overflow
		horizon = limit
		inclusive = true
	}
	// A shard with nothing scheduled this window needs no worker: it can
	// only receive inbox pushes, which are merged at the barrier anyway.
	busy := n.busyScratch[:0]
	for _, s := range n.shards {
		if s.events.Len() > 0 && (s.events.peek().at < horizon || (inclusive && s.events.peek().at == horizon)) {
			busy = append(busy, s)
		} else {
			s.processed = 0
			s.now = horizon
		}
	}
	n.running = true
	if len(busy) == 1 {
		busy[0].runTo(horizon, inclusive)
	} else {
		var wg sync.WaitGroup
		wg.Add(len(busy) - 1)
		for _, s := range busy[1:] {
			go func(s *shard) {
				defer wg.Done()
				s.runTo(horizon, inclusive)
			}(s)
		}
		busy[0].runTo(horizon, inclusive)
		wg.Wait()
	}
	n.running = false
	n.busyScratch = busy[:0]
	for _, s := range n.shards {
		s.flushInbox()
		processed += s.processed
	}
	n.now = horizon
	return processed, true
}
