package simnet

// Conservative event-window scheduler (the "sharded engine").
//
// Endpoints are partitioned into shards by topological region. Each shard
// owns an event heap, an event pool and a private clock, and is advanced
// by one worker goroutine per window. The coordinator repeats:
//
//	minNext  := earliest pending event time across all shards
//	horizon  := minNext + Lookahead
//	run every shard in parallel over [its now, horizon)
//	barrier; move cross-shard arrivals from inboxes into heaps
//
// Safety (no shard ever receives a message "in its past"): every event
// processed in a window has at >= minNext, and a message between shards
// crosses regions, so its latency is at least Lookahead; its arrival is
// therefore >= minNext + Lookahead = horizon, i.e. in a later window.
// Arrivals are parked in a mutex-guarded inbox during the window and
// merged at the barrier.
//
// Determinism at any shard count: same-timestamp events are ordered by
// (creating endpoint, per-endpoint counter) rather than global creation
// order, and jitter/loss randomness comes from per-endpoint streams
// rather than a shared one. An endpoint's outputs are then a function of
// its own delivery history only. By induction over windows, each
// endpoint's delivery history — and hence every counter, every table and
// the window schedule itself (minNext is a cross-shard minimum) — is
// identical whether the event population is processed by one heap or
// split across N. The determinism test in internal/experiments asserts
// this byte-for-byte at shards=1,2,4.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"past/internal/wire"
)

// forever caps nothing: windows are bounded only by event supply.
const forever = time.Duration(math.MaxInt64)

// ---------------------------------------------------------------------------
// Persistent worker pool
//
// The first sharded engine spawned one goroutine per busy shard per
// window and joined them with a WaitGroup — up to ~10% pure coordination
// overhead on timer-heavy runs with short windows (E9, see ROADMAP).
// The pool below replaces that with workers that persist across windows
// of one run session (RunFor / RunUntil / RunUntilIdle): between windows
// they park on a channel receive; each window the coordinator publishes
// one immutable windowJob and wakes only as many workers as there are
// busy shards beyond the one it runs itself. Shards are claimed via an
// atomic cursor (work-stealing within the window), and the worker that
// finishes the last shard signals the barrier — one channel receive for
// the coordinator instead of a WaitGroup join.
//
// Idle shards never cause a wakeup: the coordinator trims the busy list
// first, runs a single busy shard inline, and on a single-core host
// (or Workers == 1) runs every busy shard inline sequentially — shards
// within a window are mutually independent (cross-shard sends park in
// inboxes until the barrier), so sequential execution is just the
// parallel schedule with one worker, and results are byte-identical
// either way.
//
// A windowJob is allocated per window and never reused, so a worker
// that wakes late (its window already finished by others) finds the
// cursor exhausted and goes back to parking; it can never corrupt a
// later window's state.

// windowJob is one window's immutable work description.
type windowJob struct {
	shards    []*shard
	horizon   time.Duration
	inclusive bool
	cursor    atomic.Int32
	remaining atomic.Int32
	done      chan struct{}
}

// run claims shards until the job is exhausted; whoever completes the
// last shard signals the barrier.
func (j *windowJob) run() {
	for {
		i := int(j.cursor.Add(1)) - 1
		if i >= len(j.shards) {
			return
		}
		j.shards[i].runTo(j.horizon, j.inclusive)
		if j.remaining.Add(-1) == 0 {
			j.done <- struct{}{}
		}
	}
}

// windowPool is the persistent worker set for one run session.
type windowPool struct {
	work    chan *windowJob
	workers int // helper goroutines beyond the coordinator
	wg      sync.WaitGroup
}

// acquireWorkers starts the pool if this Net can use one: sharded
// engine, more than one shard, and more than one usable core (or an
// explicit Config.Workers override). Run loops call it once per
// session; nested sessions share via refcount.
func (n *Net) acquireWorkers() {
	n.poolDepth++
	if n.poolDepth != 1 || n.pool != nil || !n.windowed || len(n.shards) < 2 {
		return
	}
	w := n.cfg.Workers
	if w == 0 {
		w = min(runtime.GOMAXPROCS(0), len(n.shards))
	}
	if w <= 1 {
		return // sequential inline execution beats parking on one core
	}
	if w > len(n.shards) {
		w = len(n.shards)
	}
	p := &windowPool{
		// Headroom over the per-window wake count so stale tokens from a
		// finished window never block the coordinator's next dispatch.
		work:    make(chan *windowJob, 4*w),
		workers: w - 1,
	}
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.work {
				job.run()
			}
		}()
	}
	n.pool = p
}

// releaseWorkers tears the pool down at the end of the outermost run
// session; parked workers drain the channel and exit, so an idle Net
// owns no goroutines.
func (n *Net) releaseWorkers() {
	n.poolDepth--
	if n.poolDepth != 0 || n.pool == nil {
		return
	}
	close(n.pool.work)
	n.pool.wg.Wait()
	n.pool = nil
}

// shard is one region's slice of the simulation: an event heap, pools,
// counters and a private clock. All fields except the inbox are owned by
// the single goroutine driving the shard (a worker during a window, the
// coordinator between windows).
type shard struct {
	net        *Net
	now        time.Duration
	events     eventHeap
	free       []*event    // recycled events
	freeTimers []*simTimer // recycled timer handles (see simTimer.Release)

	inboxMu sync.Mutex
	inbox   []*event // cross-shard arrivals parked until the next barrier

	msgCount  uint64
	byKind    map[string]uint64
	processed uint64 // events processed in the current window
}

// newEvent takes an event from the shard's free list (or allocates one).
// The free list needs no locking: during a window only the shard's worker
// allocates from it, between windows only the coordinator does.
func (s *shard) newEvent(at time.Duration) *event {
	if at < s.now {
		at = s.now
	}
	var ev *event
	if k := len(s.free); k > 0 {
		ev = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	return ev
}

// release returns a processed or cancelled event to the free list. The
// generation bump invalidates any simTimer still holding the event, so a
// late Stop on a fired timer is a harmless no-op instead of cancelling
// whatever the slot was recycled into.
func (s *shard) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.owner = nil
	ev.target = nil
	ev.msg = nil
	ev.from = ""
	ev.cancelled = false
	s.free = append(s.free, ev)
}

// newTimerHandle wraps a pending event in a (pooled) cancellation handle.
func (s *shard) newTimerHandle(ev *event) *simTimer {
	var t *simTimer
	if k := len(s.freeTimers); k > 0 {
		t = s.freeTimers[k-1]
		s.freeTimers[k-1] = nil
		s.freeTimers = s.freeTimers[:k-1]
	} else {
		t = &simTimer{}
	}
	t.s = s
	t.ev = ev
	t.gen = ev.gen
	t.released = false
	return t
}

// pushInbox parks a cross-shard arrival until the next barrier. It is the
// only shard entry point that may be called from another shard's worker.
func (s *shard) pushInbox(ev *event) {
	s.inboxMu.Lock()
	s.inbox = append(s.inbox, ev)
	s.inboxMu.Unlock()
}

// flushInbox merges parked arrivals into the heap. Coordinator only.
func (s *shard) flushInbox() {
	s.inboxMu.Lock()
	for i, ev := range s.inbox {
		s.events.push(ev)
		s.inbox[i] = nil
	}
	s.inbox = s.inbox[:0]
	s.inboxMu.Unlock()
}

// deliver hands a message to its endpoint, honoring crash state and
// counters.
func (s *shard) deliver(target *Endpoint, from string, m wire.Msg) {
	if !target.Up() || target.handler == nil {
		return
	}
	s.msgCount++
	s.byKind[m.Kind()]++
	n := s.net
	if n.TraceFn != nil {
		if n.windowed && len(n.shards) > 1 {
			n.traceMu.Lock()
			n.TraceFn(s.now, from, target.addr, m)
			n.traceMu.Unlock()
		} else {
			n.TraceFn(s.now, from, target.addr, m)
		}
	}
	target.handler(from, m)
}

// exec executes one popped, live event: advances the shard clock and
// dispatches to message delivery or the timer callback. The event is
// released BEFORE its payload runs so that a stale Stop from inside the
// callback is a no-op on the recycled slot (generation check). Both
// engines — the legacy Step loop and the windowed runTo loop — execute
// events only through here, so they cannot diverge.
func (s *shard) exec(ev *event) {
	s.now = ev.at
	if ev.target != nil {
		target, from, m := ev.target, ev.from, ev.msg
		s.release(ev)
		s.deliver(target, from, m)
	} else {
		fn, owner := ev.fn, ev.owner
		s.release(ev)
		// Timers scheduled through a crashed endpoint's clock are consumed
		// without firing: a silently-failed node must not run app callbacks.
		// Net-level timers (owner == nil) always fire.
		if owner != nil && !owner.Up() {
			return
		}
		fn()
	}
}

// runTo processes the shard's events with at < horizon (at <= horizon
// when inclusive), leaving the shard clock at the horizon. Inclusive
// windows exist only when a RunFor deadline cuts a window short; the cap
// guarantees cross-shard arrivals land strictly after the deadline, so
// inclusivity cannot reorder them (see windowStep).
func (s *shard) runTo(horizon time.Duration, inclusive bool) {
	s.processed = 0
	for s.events.Len() > 0 {
		next := s.events.peek()
		if next.at > horizon || (!inclusive && next.at == horizon) {
			break
		}
		ev := s.events.pop()
		if ev.cancelled {
			s.release(ev)
			continue
		}
		s.exec(ev)
		s.processed++
	}
	s.now = horizon
}

// minNextEvent returns the earliest pending event time across all shards.
func (n *Net) minNextEvent() (time.Duration, bool) {
	mn, ok := forever, false
	for _, s := range n.shards {
		if s.events.Len() > 0 {
			if at := s.events.peek().at; !ok || at < mn {
				mn, ok = at, true
			}
		}
	}
	return mn, ok
}

// advanceAll moves every shard clock (and the global clock) forward to t,
// e.g. to a RunFor deadline beyond the last event.
func (n *Net) advanceAll(t time.Duration) {
	for _, s := range n.shards {
		if s.now < t {
			s.now = t
		}
	}
	if n.now < t {
		n.now = t
	}
}

// windowStep runs one conservative window, bounded by limit (a RunFor
// deadline, or forever). It reports the number of events processed and
// whether there was anything at all to do before the limit.
func (n *Net) windowStep(limit time.Duration) (processed uint64, more bool) {
	mn, ok := n.minNextEvent()
	if !ok || mn > limit {
		return 0, false
	}
	horizon := mn + n.cfg.Lookahead
	inclusive := false
	if horizon < mn || horizon > limit { // "< mn" guards addition overflow
		horizon = limit
		inclusive = true
	}
	// A shard with nothing scheduled this window needs no worker — and no
	// wakeup: it can only receive inbox pushes, which are merged at the
	// barrier anyway.
	busy := n.busyScratch[:0]
	for _, s := range n.shards {
		if s.events.Len() > 0 && (s.events.peek().at < horizon || (inclusive && s.events.peek().at == horizon)) {
			busy = append(busy, s)
		} else {
			s.processed = 0
			s.now = horizon
		}
	}
	n.running = true
	switch {
	case len(busy) == 1:
		busy[0].runTo(horizon, inclusive)
	case n.pool != nil:
		// Phased barrier on the persistent pool: publish one immutable
		// job, wake only the helpers this window can use, claim shards
		// alongside them, then block on the single completion signal.
		// The job owns its shard slice (a late worker may still read it
		// after this window ends), so busyScratch is not reused for it.
		job := &windowJob{
			shards:    append([]*shard(nil), busy...),
			horizon:   horizon,
			inclusive: inclusive,
			done:      make(chan struct{}, 1),
		}
		job.remaining.Store(int32(len(busy)))
		wake := min(n.pool.workers, len(busy)-1)
		for i := 0; i < wake; i++ {
			n.pool.work <- job
		}
		job.run()
		<-job.done
	default:
		// No pool (single core, Workers == 1, or a bare Step outside a
		// run session): run the busy shards sequentially inline. Shards
		// are independent within a window, so this is the same schedule
		// with one worker and costs no coordination at all.
		for _, s := range busy {
			s.runTo(horizon, inclusive)
		}
	}
	n.running = false
	n.busyScratch = busy[:0]
	for _, s := range n.shards {
		s.flushInbox()
		processed += s.processed
	}
	n.now = horizon
	if n.barrierHook != nil {
		n.barrierHook(horizon)
	}
	return processed, true
}
