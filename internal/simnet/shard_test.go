package simnet

import (
	"fmt"
	"testing"
	"time"

	"past/internal/wire"
)

// shardTrial builds a 12-endpoint network with 3 regions (intra-region
// distance ~1ms, inter-region >= 10ms, jitter and loss enabled), drives a
// message/timer workload through RunUntil, RunFor and RunUntilIdle, and
// returns a per-endpoint trace of everything each endpoint observed plus
// the global counters. The trace must be byte-identical at any shard
// count.
func shardTrial(t *testing.T, shards int) string {
	t.Helper()
	const nEp = 12
	const regions = 3
	region := func(i int) int { return i % regions }
	dist := func(a, b int) float64 {
		if a == b {
			return 0
		}
		if region(a) == region(b) {
			return 1 + 0.01*float64(a+b)
		}
		return 10 + float64(a%3) + float64(b%5)
	}
	n := New(Config{
		Seed:       7,
		JitterFrac: 0.2,
		DropProb:   0.05,
		Shards:     shards,
		RegionOf:   region,
		Lookahead:  10 * time.Millisecond,
	}, dist)

	logs := make([]string, nEp)
	eps := make([]*Endpoint, nEp)
	for i := 0; i < nEp; i++ {
		eps[i] = n.NewEndpoint()
	}
	// Per-endpoint delivery counters: each is written only by its own
	// shard's worker; the RunUntil condition sums them at window barriers,
	// where all shards are quiescent.
	delivered := make([]int, nEp)
	for i := 0; i < nEp; i++ {
		i := i
		eps[i].SetHandler(func(from string, m wire.Msg) {
			p := m.(testMsg)
			logs[i] += fmt.Sprintf("[%d] t=%v from=%s n=%d\n", i, eps[i].Clock().Now(), from, p.N)
			delivered[i]++
			if p.N > 0 {
				// Forward across (and occasionally within) regions.
				eps[i].Send(Addr((i+p.N)%nEp), testMsg{p.N - 1})
				// And schedule a delayed local echo through the shard clock.
				tm := eps[i].Clock().AfterFunc(time.Duration(p.N)*time.Millisecond, func() {
					eps[i].Send(Addr((i+1)%nEp), testMsg{0})
				})
				if p.N%4 == 0 {
					tm.Stop() // exercise deterministic cancellation
				}
				tm.Release()
			}
		})
	}
	for i := 0; i < nEp; i++ {
		eps[i].Send(Addr((i+5)%nEp), testMsg{6})
	}
	n.RunUntil(func() bool {
		total := 0
		for _, d := range delivered {
			total += d
		}
		return total >= 20
	}, 1_000_000)
	n.RunFor(15 * time.Millisecond)
	n.RunUntilIdle()

	out := fmt.Sprintf("now=%v messages=%d test=%d\n", n.Now(), n.Messages(), n.MessagesByKind()["test"])
	for i := 0; i < nEp; i++ {
		out += logs[i]
	}
	return out
}

// TestShardedWindowInvariance is the engine-level determinism guarantee:
// one workload, one seed, byte-identical per-endpoint histories and
// counters at shards=1,2,3 — with jitter, loss, timers and cancellations
// all in play.
func TestShardedWindowInvariance(t *testing.T) {
	base := shardTrial(t, 1)
	for _, shards := range []int{2, 3} {
		if got := shardTrial(t, shards); got != base {
			t.Fatalf("shards=%d diverged from shards=1:\n--- shards=1:\n%s\n--- shards=%d:\n%s", shards, base, shards, got)
		}
	}
}

// TestShardedLookaheadRequired pins the configuration contract: the
// conservative scheduler cannot make progress with a zero window bound.
func TestShardedLookaheadRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shards>=1 with Lookahead<=0 should panic")
		}
	}()
	New(Config{Shards: 2}, nil)
}

// TestShardedCrossShardLatencyFloor documents the safety precondition:
// the workload's cross-region distances must respect the lookahead. (The
// scheduler itself never checks per-message latencies — the topology
// bound is the contract — so this test guards the test harness above.)
func TestShardedCrossShardLatencyFloor(t *testing.T) {
	region := func(i int) int { return i % 3 }
	dist := func(a, b int) float64 {
		if region(a) == region(b) {
			return 1
		}
		return 10
	}
	for a := 0; a < 12; a++ {
		for b := 0; b < 12; b++ {
			if a != b && region(a) != region(b) && dist(a, b) < 10 {
				t.Fatalf("cross-region pair (%d,%d) below lookahead", a, b)
			}
		}
	}
}

// TestTimerReleaseRecycles verifies that released timer handles are
// reused rather than reallocated, and that Release does not cancel a
// pending timer.
func TestTimerReleaseRecycles(t *testing.T) {
	n := New(Config{Seed: 1}, nil)
	fired := 0
	tm := n.AfterFunc(time.Millisecond, func() { fired++ })
	tm.Release() // release without Stop: timer must still fire
	tm2 := n.AfterFunc(2*time.Millisecond, func() { fired++ })
	if tm2 != tm {
		t.Fatal("released handle was not recycled")
	}
	n.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (Release must not cancel)", fired)
	}
	tm2.Release()
	tm2.Release() // double Release is a no-op, not a double free
	tm3 := n.AfterFunc(time.Millisecond, func() {})
	tm4 := n.AfterFunc(time.Millisecond, func() {})
	if tm3 == tm4 {
		t.Fatal("double Release handed the same handle out twice")
	}
}
