// Package simnet is a deterministic discrete-event network simulator.
//
// A Net owns a virtual clock and an event heap. Each simulated node gets an
// endpoint implementing transport.Transport; message latency between
// endpoints comes from a topology proximity metric. Fault injection covers
// silent node crashes, message loss, per-node drop filters (for the
// malicious-node experiment of section 2.2, "Fault-tolerance") and
// partition-style unreachability.
//
// The simulator is single-threaded: all handlers and timer callbacks run on
// the goroutine that calls Run/RunFor/RunUntilIdle, in timestamp order with
// a deterministic tiebreak, so every experiment is exactly reproducible
// from its seed.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"past/internal/transport"
	"past/internal/wire"
)

// Config controls simulator behaviour.
type Config struct {
	// Seed drives all randomness (jitter, loss).
	Seed int64
	// DropProb is the probability any message is silently lost.
	DropProb float64
	// JitterFrac scales latency jitter: actual = d * (1 + U[0,JitterFrac)).
	JitterFrac float64
	// MinLatency is a floor on delivery latency (e.g. local processing).
	MinLatency time.Duration
}

// Distance tells the simulator the proximity between two endpoints,
// in milliseconds. Typically topology.Topology.Distance.
type Distance func(a, b int) float64

// Net is a simulated network.
type Net struct {
	cfg      Config
	rng      *rand.Rand
	now      time.Duration
	events   eventHeap
	seq      uint64
	eps      []*Endpoint
	dist     Distance
	msgCount uint64
	byKind   map[string]uint64
	// TraceFn, if set, observes every delivered message.
	TraceFn func(at time.Duration, from, to string, m wire.Msg)
}

// New creates a simulated network whose latency comes from dist.
func New(cfg Config, dist Distance) *Net {
	if dist == nil {
		dist = func(a, b int) float64 { return 1 }
	}
	return &Net{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		dist:   dist,
		byKind: make(map[string]uint64),
	}
}

// Addr formats the simulator address of endpoint index i.
func Addr(i int) string { return fmt.Sprintf("sim:%d", i) }

// Index parses an endpoint index out of a simulator address.
func Index(addr string) (int, error) {
	var i int
	if _, err := fmt.Sscanf(addr, "sim:%d", &i); err != nil {
		return 0, fmt.Errorf("simnet: bad address %q: %w", addr, err)
	}
	return i, nil
}

// NewEndpoint creates the next endpoint. Endpoints are identified by dense
// indices that must correspond to the node indices used by the Distance
// function.
func (n *Net) NewEndpoint() *Endpoint {
	ep := &Endpoint{net: n, idx: len(n.eps), up: true}
	n.eps = append(n.eps, ep)
	return ep
}

// Endpoint returns endpoint i.
func (n *Net) Endpoint(i int) *Endpoint { return n.eps[i] }

// NumEndpoints returns the number of endpoints created so far.
func (n *Net) NumEndpoints() int { return len(n.eps) }

// Now returns the current virtual time.
func (n *Net) Now() time.Duration { return n.now }

// Messages returns the total number of messages delivered so far.
func (n *Net) Messages() uint64 { return n.msgCount }

// MessagesByKind returns a copy of the per-kind delivery counters.
func (n *Net) MessagesByKind() map[string]uint64 {
	out := make(map[string]uint64, len(n.byKind))
	for k, v := range n.byKind {
		out[k] = v
	}
	return out
}

// ResetCounters zeroes the message counters (topology and time are kept).
func (n *Net) ResetCounters() {
	n.msgCount = 0
	n.byKind = make(map[string]uint64)
}

// schedule enqueues fn at absolute virtual time at.
func (n *Net) schedule(at time.Duration, fn func()) *event {
	if at < n.now {
		at = n.now
	}
	ev := &event{at: at, seq: n.seq, fn: fn}
	n.seq++
	heap.Push(&n.events, ev)
	return ev
}

// AfterFunc implements clock scheduling on the virtual timeline.
func (n *Net) AfterFunc(d time.Duration, f func()) transport.Timer {
	return &simTimer{ev: n.schedule(n.now+d, f)}
}

// Clock returns the simulation's virtual clock.
func (n *Net) Clock() transport.Clock { return simClock{n} }

type simClock struct{ n *Net }

func (c simClock) Now() time.Duration { return c.n.now }
func (c simClock) AfterFunc(d time.Duration, f func()) transport.Timer {
	return c.n.AfterFunc(d, f)
}

type simTimer struct{ ev *event }

func (t *simTimer) Stop() bool {
	if t.ev.cancelled || t.ev.done {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Step executes the next pending event. It reports false when the queue is
// empty.
func (n *Net) Step() bool {
	for n.events.Len() > 0 {
		ev := heap.Pop(&n.events).(*event)
		if ev.cancelled {
			continue
		}
		n.now = ev.at
		ev.done = true
		ev.fn()
		return true
	}
	return false
}

// RunUntilIdle processes events until none remain. Protocols with periodic
// timers never go idle; use RunFor for those.
func (n *Net) RunUntilIdle() {
	for n.Step() {
	}
}

// RunFor processes events until virtual time advances past now+d. Events
// scheduled at later times remain queued.
func (n *Net) RunFor(d time.Duration) {
	deadline := n.now + d
	for n.events.Len() > 0 {
		next := n.events[0]
		if next.cancelled {
			heap.Pop(&n.events)
			continue
		}
		if next.at > deadline {
			break
		}
		n.Step()
	}
	n.now = deadline
}

// RunUntil processes events while cond stays false, up to a safety cap of
// maxEvents. It reports whether cond became true.
func (n *Net) RunUntil(cond func() bool, maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if cond() {
			return true
		}
		if !n.Step() {
			return cond()
		}
	}
	return cond()
}

// Latency returns the (jittered) delivery latency between endpoints.
func (n *Net) latency(a, b int) time.Duration {
	ms := n.dist(a, b)
	d := time.Duration(ms * float64(time.Millisecond))
	if n.cfg.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 + n.rng.Float64()*n.cfg.JitterFrac))
	}
	if d < n.cfg.MinLatency {
		d = n.cfg.MinLatency
	}
	return d
}

// ---------------------------------------------------------------------------
// Endpoint

// DropFilter inspects an outbound message and returns true to silently
// drop it. Used to model malicious nodes that accept but do not forward
// traffic.
type DropFilter func(to string, m wire.Msg) bool

// Endpoint implements transport.Transport inside a Net.
type Endpoint struct {
	net     *Net
	idx     int
	handler transport.Handler
	up      bool
	closed  bool
	// sendFilter, if set, can suppress outbound messages.
	sendFilter DropFilter
}

// Addr implements transport.Transport.
func (e *Endpoint) Addr() string { return Addr(e.idx) }

// Index returns the endpoint's dense index.
func (e *Endpoint) Index() int { return e.idx }

// SetHandler implements transport.Transport.
func (e *Endpoint) SetHandler(h transport.Handler) { e.handler = h }

// SetSendFilter installs a malicious-behaviour filter on outbound traffic.
func (e *Endpoint) SetSendFilter(f DropFilter) { e.sendFilter = f }

// Up reports whether the endpoint is accepting traffic.
func (e *Endpoint) Up() bool { return e.up && !e.closed }

// Crash silently takes the node off the network: inbound and outbound
// messages vanish, matching the paper's "nodes ... may silently leave the
// system without warning".
func (e *Endpoint) Crash() { e.up = false }

// Restart brings a crashed node back.
func (e *Endpoint) Restart() { e.up = true }

// Send implements transport.Transport.
func (e *Endpoint) Send(to string, m wire.Msg) error {
	if e.closed {
		return fmt.Errorf("simnet: endpoint %d closed", e.idx)
	}
	if !e.up {
		return nil // a crashed node's sends vanish silently
	}
	if e.sendFilter != nil && e.sendFilter(to, m) {
		return nil
	}
	dst, err := Index(to)
	if err != nil {
		return err
	}
	if dst < 0 || dst >= len(e.net.eps) {
		return fmt.Errorf("simnet: no endpoint at %q", to)
	}
	n := e.net
	if n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb {
		return nil
	}
	from := e.Addr()
	target := n.eps[dst]
	n.schedule(n.now+n.latency(e.idx, dst), func() {
		if !target.Up() || target.handler == nil {
			return
		}
		n.msgCount++
		n.byKind[m.Kind()]++
		if n.TraceFn != nil {
			n.TraceFn(n.now, from, to, m)
		}
		target.handler(from, m)
	})
	return nil
}

// Proximity implements transport.Transport using the topology metric,
// standing in for a measured RTT.
func (e *Endpoint) Proximity(to string) float64 {
	dst, err := Index(to)
	if err != nil || dst < 0 || dst >= len(e.net.eps) {
		return 1e9
	}
	return e.net.dist(e.idx, dst)
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Event heap

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	done      bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
