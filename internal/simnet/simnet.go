// Package simnet is a deterministic discrete-event network simulator.
//
// A Net owns a virtual clock and one or more event-loop shards. Each
// simulated node gets an endpoint implementing transport.Transport;
// message latency between endpoints comes from a topology proximity
// metric. Fault injection covers silent node crashes, message loss,
// per-node drop filters (for the malicious-node experiment of section
// 2.2, "Fault-tolerance") and partition-style unreachability.
//
// The simulator has two execution engines selected by Config.Shards:
//
//   - Legacy engine (Shards == 0): strictly single-threaded. All handlers
//     and timer callbacks run on the goroutine that calls
//     Run/RunFor/RunUntilIdle, in timestamp order with a global
//     creation-order tiebreak. This is the engine the microbenchmarks and
//     the grid experiments use; its event ordering is bit-compatible with
//     earlier versions of this package.
//
//   - Sharded engine (Shards >= 1): endpoints are partitioned into
//     per-region shards (Config.RegionOf) and driven by a conservative
//     event-window scheduler (see shard.go). One large simulation then
//     uses all cores, and — because event ordering, tiebreaks and
//     randomness are all derived per endpoint rather than from global
//     scheduling order — a run is byte-identical for a fixed seed at ANY
//     shard count, including Shards == 1.
//
// Under both engines every experiment is exactly reproducible from its
// seed.
package simnet

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"past/internal/transport"
	"past/internal/wire"
)

// Config controls simulator behaviour.
type Config struct {
	// Seed drives all randomness (jitter, loss).
	Seed int64
	// DropProb is the probability any message is silently lost.
	DropProb float64
	// JitterFrac scales latency jitter: actual = d * (1 + U[0,JitterFrac)).
	JitterFrac float64
	// MinLatency is a floor on delivery latency (e.g. local processing).
	MinLatency time.Duration

	// Shards selects the sharded conservative-window engine and its shard
	// count. Zero selects the legacy single-threaded engine. Results under
	// the sharded engine are byte-identical for any Shards >= 1, so the
	// value only chooses how many cores one simulation may use.
	Shards int
	// RegionOf maps an endpoint index to its topological region (for
	// cluster networks, the transit domain). Endpoints are assigned to
	// shard RegionOf(i) % Shards, so endpoints in different shards are
	// always in different regions. Nil places every endpoint in region 0
	// (a single populated shard). Only consulted when Shards >= 1, at
	// NewEndpoint time.
	RegionOf func(i int) int
	// Lookahead is a strictly positive lower bound on the delivery latency
	// between any two endpoints in different regions; it bounds the
	// conservative event window (see shard.go). Required when Shards >= 1.
	// It must be derived from shard-count-independent data (e.g. topology
	// latency bounds) or determinism across shard counts is lost.
	Lookahead time.Duration
	// Workers sizes the persistent window-worker pool (see shard.go).
	// Zero picks min(GOMAXPROCS, Shards); 1 forces sequential inline
	// window execution (what a single-core host gets anyway); higher
	// values force a pool even on one core, which the determinism tests
	// use to exercise the cross-goroutine handoff under -race. Results
	// are byte-identical for any value.
	Workers int
}

// Distance tells the simulator the proximity between two endpoints,
// in milliseconds. Typically topology.Topology.Distance.
type Distance func(a, b int) float64

// Net is a simulated network.
type Net struct {
	cfg    Config
	rng    *rand.Rand // legacy engine's shared jitter/loss stream
	now    time.Duration
	netSeq uint64 // sequence counter for source-0 (net-level) events
	shards []*shard
	// busyScratch is windowStep's reusable list of shards with work in the
	// current window (coordinator-only).
	busyScratch []*shard
	// pool is the persistent window-worker set of the current run
	// session; poolDepth refcounts nested run loops (see shard.go).
	pool      *windowPool
	poolDepth int
	windowed  bool
	running   bool // a conservative window is executing on shard workers
	eps       []*Endpoint
	dist      Distance
	traceMu   sync.Mutex
	// TraceFn, if set, observes every delivered message. Under the sharded
	// engine with more than one shard, calls are serialized by a mutex but
	// their interleaving ACROSS shards depends on scheduling; per-endpoint
	// observation order is still deterministic.
	TraceFn func(at time.Duration, from, to string, m wire.Msg)
	// barrierHook, if set, runs on the coordinator at the end of every
	// conservative window (all shards quiescent, n.now = the new barrier
	// time) and after deadline jumps in RunFor. The window schedule is a
	// function of cross-shard minima, so hook times — and anything the
	// hook samples — are identical at any shard/worker count. Telemetry
	// recorders tick from here.
	barrierHook func(now time.Duration)
}

// New creates a simulated network whose latency comes from dist.
func New(cfg Config, dist Distance) *Net {
	if dist == nil {
		dist = func(a, b int) float64 { return 1 }
	}
	n := &Net{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		dist:     dist,
		windowed: cfg.Shards >= 1,
	}
	nShards := 1
	if n.windowed {
		if cfg.Lookahead <= 0 {
			panic("simnet: sharded engine requires Config.Lookahead > 0")
		}
		nShards = cfg.Shards
	}
	n.shards = make([]*shard, nShards)
	for i := range n.shards {
		n.shards[i] = &shard{net: n, byKind: make(map[string]uint64)}
	}
	return n
}

// Addr formats the simulator address of endpoint index i.
func Addr(i int) string { return "sim:" + strconv.Itoa(i) }

// Index parses an endpoint index out of a simulator address. It is on
// the path of every simulated Send and Proximity call, so it uses
// strconv instead of fmt (whose scanner allocates per call).
func Index(addr string) (int, error) {
	if len(addr) < 5 || addr[:4] != "sim:" {
		return 0, fmt.Errorf("simnet: bad address %q", addr)
	}
	i, err := strconv.Atoi(addr[4:])
	if err != nil || i < 0 {
		return 0, fmt.Errorf("simnet: bad address %q", addr)
	}
	return i, nil
}

// NewEndpoint creates the next endpoint. Endpoints are identified by dense
// indices that must correspond to the node indices used by the Distance
// function. Under the sharded engine the endpoint's region — and through
// it, its shard — is fixed here, so RegionOf must already know index i.
func (n *Net) NewEndpoint() *Endpoint {
	idx := len(n.eps)
	s := n.shards[0]
	if n.windowed && n.cfg.RegionOf != nil {
		s = n.shards[n.cfg.RegionOf(idx)%len(n.shards)]
	}
	ep := &Endpoint{net: n, shard: s, idx: idx, addr: Addr(idx), up: true}
	n.eps = append(n.eps, ep)
	return ep
}

// Endpoint returns endpoint i.
func (n *Net) Endpoint(i int) *Endpoint { return n.eps[i] }

// NumEndpoints returns the number of endpoints created so far.
func (n *Net) NumEndpoints() int { return len(n.eps) }

// Now returns the current virtual time. Under the sharded engine this is
// the time of the last window barrier; per-endpoint clocks may be ahead
// of it while a window executes.
func (n *Net) Now() time.Duration { return n.now }

// SetBarrierHook installs fn to run on the coordinator at every window
// barrier of the sharded engine (and after RunFor deadline jumps). The
// legacy single-queue engine never calls it. fn must only read network
// state; set nil to detach. Not safe to call while a run is in progress.
func (n *Net) SetBarrierHook(fn func(now time.Duration)) { n.barrierHook = fn }

// Messages returns the total number of messages delivered so far.
func (n *Net) Messages() uint64 {
	var total uint64
	for _, s := range n.shards {
		total += s.msgCount
	}
	return total
}

// MessagesByKind returns a copy of the per-kind delivery counters.
func (n *Net) MessagesByKind() map[string]uint64 {
	out := make(map[string]uint64)
	for _, s := range n.shards {
		for k, v := range s.byKind {
			out[k] += v
		}
	}
	return out
}

// ResetCounters zeroes the message counters (topology and time are kept).
func (n *Net) ResetCounters() {
	for _, s := range n.shards {
		s.msgCount = 0
		s.byKind = make(map[string]uint64)
	}
}

// stamp keys a freshly allocated event with its ordering tiebreak. The
// legacy engine orders same-time events by global creation order; the
// sharded engine keys them by (creating endpoint, per-endpoint counter)
// so the order is independent of which shard — and therefore which
// schedule — created them.
func (n *Net) stampNetLevel(ev *event) {
	ev.src = 0
	ev.seq = n.netSeq
	n.netSeq++
}

func (e *Endpoint) stamp(ev *event) {
	if e.net.windowed {
		ev.src = int32(e.idx) + 1
		ev.seq = e.seq
		e.seq++
		return
	}
	e.net.stampNetLevel(ev)
}

// AfterFunc implements clock scheduling on the virtual timeline at net
// level (source 0, shard 0). Under the sharded engine it must only be
// called between runs (from the coordinating goroutine); node code should
// use its endpoint's Clock instead.
func (n *Net) AfterFunc(d time.Duration, f func()) transport.Timer {
	s := n.shards[0]
	at := n.now + d
	if n.windowed {
		at = s.now + d
	}
	ev := s.newEvent(at)
	n.stampNetLevel(ev)
	ev.fn = f
	s.events.push(ev)
	return s.newTimerHandle(ev)
}

// Clock returns a net-level virtual clock (see AfterFunc for its sharded
// caveat).
func (n *Net) Clock() transport.Clock { return simClock{n} }

type simClock struct{ n *Net }

func (c simClock) Now() time.Duration { return c.n.now }
func (c simClock) AfterFunc(d time.Duration, f func()) transport.Timer {
	return c.n.AfterFunc(d, f)
}

// simTimer is a pooled handle onto a pooled event. The generation
// snapshot keeps Stop safe after the event has fired and been recycled;
// Release returns the handle itself to its shard's pool.
type simTimer struct {
	s        *shard
	ev       *event
	gen      uint64
	released bool
}

func (t *simTimer) Stop() bool {
	// A fired event was released, bumping gen, so the first check also
	// covers "already fired".
	if t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Release returns the handle to its shard's pool for reuse by a later
// AfterFunc, the way processed events return to the event pool. It does
// NOT cancel a still-pending timer. After Release the handle must not be
// touched again; Release must only be called from the owning node's
// handlers or between runs.
func (t *simTimer) Release() {
	if t.released {
		return
	}
	t.released = true
	t.ev = nil
	t.s.freeTimers = append(t.s.freeTimers, t)
}

// Step executes the next pending event (legacy engine) or the next
// conservative window (sharded engine). It reports false when the queue
// is empty.
func (n *Net) Step() bool {
	if n.windowed {
		_, more := n.windowStep(forever)
		return more
	}
	s := n.shards[0]
	for s.events.Len() > 0 {
		ev := s.events.pop()
		if ev.cancelled {
			s.release(ev)
			continue
		}
		n.now = ev.at
		s.exec(ev)
		return true
	}
	return false
}

// RunUntilIdle processes events until none remain. Protocols with periodic
// timers never go idle; use RunFor for those. Step dispatches to the
// engine in use, so this drains legacy and sharded nets alike.
func (n *Net) RunUntilIdle() {
	if n.windowed {
		n.acquireWorkers()
		defer n.releaseWorkers()
	}
	for n.Step() {
	}
}

// RunFor processes events until virtual time advances past now+d. Events
// scheduled at later times remain queued.
func (n *Net) RunFor(d time.Duration) {
	deadline := n.now + d
	if n.windowed {
		n.acquireWorkers()
		defer n.releaseWorkers()
		for {
			if _, more := n.windowStep(deadline); !more {
				break
			}
		}
		n.advanceAll(deadline)
		if n.barrierHook != nil {
			n.barrierHook(n.now)
		}
		return
	}
	s := n.shards[0]
	for s.events.Len() > 0 {
		next := s.events.peek()
		if next.cancelled {
			s.release(s.events.pop())
			continue
		}
		if next.at > deadline {
			break
		}
		n.Step()
	}
	n.now = deadline
	s.now = deadline
}

// RunUntil processes events while cond stays false, up to a safety cap of
// maxEvents. It reports whether cond became true. Under the sharded
// engine cond is evaluated at window barriers (where all shards are
// quiescent), so the points at which it can stop — like everything else —
// are independent of the shard count.
func (n *Net) RunUntil(cond func() bool, maxEvents int) bool {
	if n.windowed {
		if cond() {
			return true
		}
		n.acquireWorkers()
		defer n.releaseWorkers()
		var total uint64
		for {
			processed, more := n.windowStep(forever)
			total += processed
			if cond() {
				return true
			}
			if !more || total >= uint64(maxEvents) {
				return cond()
			}
		}
	}
	for i := 0; i < maxEvents; i++ {
		if cond() {
			return true
		}
		if !n.Step() {
			return cond()
		}
	}
	return cond()
}

// Latency returns the (jittered) delivery latency between endpoints,
// drawing jitter from the given stream.
func (n *Net) latency(a, b int, rng *rand.Rand) time.Duration {
	ms := n.dist(a, b)
	d := time.Duration(ms * float64(time.Millisecond))
	if n.cfg.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 + rng.Float64()*n.cfg.JitterFrac))
	}
	if d < n.cfg.MinLatency {
		d = n.cfg.MinLatency
	}
	return d
}

// ---------------------------------------------------------------------------
// Endpoint

// DropFilter inspects an outbound message and returns true to silently
// drop it. Used to model malicious nodes that accept but do not forward
// traffic.
type DropFilter func(to string, m wire.Msg) bool

// RewriteFilter inspects an outbound message and may replace its
// destination and/or payload. Used to model malicious nodes that
// misroute traffic to a wrong-but-plausible next hop, or that tamper
// with messages in flight. Returning the inputs unchanged forwards the
// message normally. The filter runs on the sending endpoint's shard and
// must only consult the sender's own state (its node, its private RNG),
// never cross-shard state, to preserve determinism at any shard count.
type RewriteFilter func(to string, m wire.Msg) (string, wire.Msg)

// Endpoint implements transport.Transport inside a Net.
type Endpoint struct {
	net     *Net
	shard   *shard
	idx     int
	addr    string // precomputed Addr(idx); avoids formatting per Send
	handler transport.Handler
	up      bool
	closed  bool
	// sendFilter, if set, can suppress outbound messages; rewrite, if
	// set, can redirect or replace them after the filter passes.
	sendFilter DropFilter
	rewrite    RewriteFilter
	// seq counts events created by this endpoint (sharded engine ordering
	// key); rng is its private jitter/loss stream, created on first use.
	// Both make the endpoint's observable behaviour a function of its own
	// delivery history only, never of cross-shard scheduling.
	seq uint64
	rng *rand.Rand
}

// Addr implements transport.Transport.
func (e *Endpoint) Addr() string { return e.addr }

// Index returns the endpoint's dense index.
func (e *Endpoint) Index() int { return e.idx }

// SetHandler implements transport.Transport.
func (e *Endpoint) SetHandler(h transport.Handler) { e.handler = h }

// SetSendFilter installs a malicious-behaviour filter on outbound traffic.
func (e *Endpoint) SetSendFilter(f DropFilter) { e.sendFilter = f }

// SetSendRewrite installs a malicious-behaviour rewrite hook on outbound
// traffic; it runs after the drop filter (if any) passes a message.
func (e *Endpoint) SetSendRewrite(f RewriteFilter) { e.rewrite = f }

// Up reports whether the endpoint is accepting traffic.
func (e *Endpoint) Up() bool { return e.up && !e.closed }

// Crash silently takes the node off the network: inbound and outbound
// messages vanish, matching the paper's "nodes ... may silently leave the
// system without warning".
func (e *Endpoint) Crash() { e.up = false }

// Restart brings a crashed node back.
func (e *Endpoint) Restart() { e.up = true }

// nowLocal is the virtual time as this endpoint observes it: its shard's
// clock under the sharded engine, the global clock under the legacy one.
func (e *Endpoint) nowLocal() time.Duration {
	if e.net.windowed {
		return e.shard.now
	}
	return e.net.now
}

// rand returns the endpoint's private random stream (sharded engine).
func (e *Endpoint) rand() *rand.Rand {
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(int64(uint64(e.net.cfg.Seed) ^ 0x9E3779B97F4A7C15*uint64(e.idx+1))))
	}
	return e.rng
}

// Clock returns a clock that schedules onto this endpoint's shard. Node
// code built on a sharded Net must use its own endpoint's clock (package
// cluster does); timers then fire on the shard that owns the node, and
// their ordering keys come from the endpoint itself. On a legacy Net it
// behaves exactly like the net-level Clock.
func (e *Endpoint) Clock() transport.Clock { return epClock{e} }

type epClock struct{ e *Endpoint }

func (c epClock) Now() time.Duration { return c.e.nowLocal() }

func (c epClock) AfterFunc(d time.Duration, f func()) transport.Timer {
	e := c.e
	s := e.shard
	ev := s.newEvent(e.nowLocal() + d)
	e.stamp(ev)
	ev.fn = f
	ev.owner = e
	s.events.push(ev)
	return s.newTimerHandle(ev)
}

// Send implements transport.Transport.
func (e *Endpoint) Send(to string, m wire.Msg) error {
	if e.closed {
		return fmt.Errorf("simnet: endpoint %d closed", e.idx)
	}
	if !e.up {
		return nil // a crashed node's sends vanish silently
	}
	if e.sendFilter != nil && e.sendFilter(to, m) {
		return nil
	}
	if e.rewrite != nil {
		to, m = e.rewrite(to, m)
	}
	dst, err := Index(to)
	if err != nil {
		return err
	}
	if dst < 0 || dst >= len(e.net.eps) {
		return fmt.Errorf("simnet: no endpoint at %q", to)
	}
	n := e.net
	// The jitter/loss stream is only materialized when a draw can actually
	// happen: a lossless, jitter-free net (the common large-scale
	// configuration) never touches randomness on the send path, and the
	// per-endpoint stream alone would otherwise cost ~4.9 KiB per node.
	// Laziness cannot change results — a stream that is never drawn from
	// produces no observable behaviour.
	var rng *rand.Rand
	if n.cfg.DropProb > 0 || n.cfg.JitterFrac > 0 {
		rng = n.rng
		if n.windowed {
			rng = e.rand()
		}
	}
	if n.cfg.DropProb > 0 && rng.Float64() < n.cfg.DropProb {
		return nil
	}
	target := n.eps[dst]
	// The event is drawn from the SENDER's shard pool (the shard running
	// this handler owns that pool) and keyed by the sender, then routed to
	// the TARGET's shard for delivery.
	ev := e.shard.newEvent(e.nowLocal() + n.latency(e.idx, dst, rng))
	e.stamp(ev)
	ev.target = target
	ev.from = e.addr
	ev.msg = m
	ts := target.shard
	if ts == e.shard || !n.running {
		ts.events.push(ev)
	} else {
		ts.pushInbox(ev)
	}
	return nil
}

// Proximity implements transport.Transport using the topology metric,
// standing in for a measured RTT.
func (e *Endpoint) Proximity(to string) float64 {
	dst, err := Index(to)
	if err != nil || dst < 0 || dst >= len(e.net.eps) {
		return 1e9
	}
	return e.net.dist(e.idx, dst)
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Event heap

// event is one scheduled occurrence: either a timer callback (fn set) or
// a message delivery (target set). Events are pooled per shard; gen
// counts recycles so stale timer handles cannot cancel a reused slot.
// (src, seq) is the same-timestamp tiebreak: (0, global counter) under
// the legacy engine, (creating endpoint + 1, per-endpoint counter) under
// the sharded one.
type event struct {
	at        time.Duration
	src       int32
	seq       uint64
	fn        func()    // timer events
	owner     *Endpoint // timer events scheduled via an endpoint clock
	target    *Endpoint // message events
	from      string
	msg       wire.Msg
	cancelled bool
	gen       uint64
}

// eventHeap is a typed binary min-heap ordered by (at, src, seq).
// Replacing the container/heap interface{} plumbing with direct methods
// removes the per-operation interface conversions and method-value
// dispatch from the simulator's innermost loop.
type eventHeap struct {
	evs []*event
}

func (h *eventHeap) Len() int { return len(h.evs) }

func (h *eventHeap) peek() *event { return h.evs[0] }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	h.evs = append(h.evs, ev)
	// Sift up.
	evs := h.evs
	i := len(evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(evs[i], evs[parent]) {
			break
		}
		evs[i], evs[parent] = evs[parent], evs[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	evs := h.evs
	top := evs[0]
	last := len(evs) - 1
	evs[0] = evs[last]
	evs[last] = nil
	h.evs = evs[:last]
	// Sift down.
	evs = h.evs
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(evs) && eventLess(evs[l], evs[smallest]) {
			smallest = l
		}
		if r < len(evs) && eventLess(evs[r], evs[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		evs[i], evs[smallest] = evs[smallest], evs[i]
		i = smallest
	}
	return top
}
