// Package simnet is a deterministic discrete-event network simulator.
//
// A Net owns a virtual clock and an event heap. Each simulated node gets an
// endpoint implementing transport.Transport; message latency between
// endpoints comes from a topology proximity metric. Fault injection covers
// silent node crashes, message loss, per-node drop filters (for the
// malicious-node experiment of section 2.2, "Fault-tolerance") and
// partition-style unreachability.
//
// The simulator is single-threaded: all handlers and timer callbacks run on
// the goroutine that calls Run/RunFor/RunUntilIdle, in timestamp order with
// a deterministic tiebreak, so every experiment is exactly reproducible
// from its seed.
package simnet

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"past/internal/transport"
	"past/internal/wire"
)

// Config controls simulator behaviour.
type Config struct {
	// Seed drives all randomness (jitter, loss).
	Seed int64
	// DropProb is the probability any message is silently lost.
	DropProb float64
	// JitterFrac scales latency jitter: actual = d * (1 + U[0,JitterFrac)).
	JitterFrac float64
	// MinLatency is a floor on delivery latency (e.g. local processing).
	MinLatency time.Duration
}

// Distance tells the simulator the proximity between two endpoints,
// in milliseconds. Typically topology.Topology.Distance.
type Distance func(a, b int) float64

// Net is a simulated network.
type Net struct {
	cfg      Config
	rng      *rand.Rand
	now      time.Duration
	events   eventHeap
	free     []*event // recycled events (see newEvent/release)
	seq      uint64
	eps      []*Endpoint
	dist     Distance
	msgCount uint64
	byKind   map[string]uint64
	// TraceFn, if set, observes every delivered message.
	TraceFn func(at time.Duration, from, to string, m wire.Msg)
}

// New creates a simulated network whose latency comes from dist.
func New(cfg Config, dist Distance) *Net {
	if dist == nil {
		dist = func(a, b int) float64 { return 1 }
	}
	return &Net{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		dist:   dist,
		byKind: make(map[string]uint64),
	}
}

// Addr formats the simulator address of endpoint index i.
func Addr(i int) string { return "sim:" + strconv.Itoa(i) }

// Index parses an endpoint index out of a simulator address. It is on
// the path of every simulated Send and Proximity call, so it uses
// strconv instead of fmt (whose scanner allocates per call).
func Index(addr string) (int, error) {
	if len(addr) < 5 || addr[:4] != "sim:" {
		return 0, fmt.Errorf("simnet: bad address %q", addr)
	}
	i, err := strconv.Atoi(addr[4:])
	if err != nil || i < 0 {
		return 0, fmt.Errorf("simnet: bad address %q", addr)
	}
	return i, nil
}

// NewEndpoint creates the next endpoint. Endpoints are identified by dense
// indices that must correspond to the node indices used by the Distance
// function.
func (n *Net) NewEndpoint() *Endpoint {
	ep := &Endpoint{net: n, idx: len(n.eps), addr: Addr(len(n.eps)), up: true}
	n.eps = append(n.eps, ep)
	return ep
}

// Endpoint returns endpoint i.
func (n *Net) Endpoint(i int) *Endpoint { return n.eps[i] }

// NumEndpoints returns the number of endpoints created so far.
func (n *Net) NumEndpoints() int { return len(n.eps) }

// Now returns the current virtual time.
func (n *Net) Now() time.Duration { return n.now }

// Messages returns the total number of messages delivered so far.
func (n *Net) Messages() uint64 { return n.msgCount }

// MessagesByKind returns a copy of the per-kind delivery counters.
func (n *Net) MessagesByKind() map[string]uint64 {
	out := make(map[string]uint64, len(n.byKind))
	for k, v := range n.byKind {
		out[k] = v
	}
	return out
}

// ResetCounters zeroes the message counters (topology and time are kept).
func (n *Net) ResetCounters() {
	n.msgCount = 0
	n.byKind = make(map[string]uint64)
}

// newEvent takes an event from the per-Net free list (or allocates one)
// and stamps it with the next sequence number. The free list is safe
// without locking because each Net is single-threaded by contract.
func (n *Net) newEvent(at time.Duration) *event {
	if at < n.now {
		at = n.now
	}
	var ev *event
	if k := len(n.free); k > 0 {
		ev = n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = n.seq
	n.seq++
	return ev
}

// release returns a processed or cancelled event to the free list. The
// generation bump invalidates any simTimer still holding the event, so a
// late Stop on a fired timer is a harmless no-op instead of cancelling
// whatever the slot was recycled into.
func (n *Net) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.target = nil
	ev.msg = nil
	ev.from = ""
	ev.cancelled = false
	n.free = append(n.free, ev)
}

// schedule enqueues fn at absolute virtual time at.
func (n *Net) schedule(at time.Duration, fn func()) *event {
	ev := n.newEvent(at)
	ev.fn = fn
	n.events.push(ev)
	return ev
}

// scheduleMsg enqueues a message delivery without allocating a closure.
func (n *Net) scheduleMsg(at time.Duration, target *Endpoint, from string, m wire.Msg) {
	ev := n.newEvent(at)
	ev.target = target
	ev.from = from
	ev.msg = m
	n.events.push(ev)
}

// AfterFunc implements clock scheduling on the virtual timeline.
func (n *Net) AfterFunc(d time.Duration, f func()) transport.Timer {
	ev := n.schedule(n.now+d, f)
	return &simTimer{ev: ev, gen: ev.gen}
}

// Clock returns the simulation's virtual clock.
func (n *Net) Clock() transport.Clock { return simClock{n} }

type simClock struct{ n *Net }

func (c simClock) Now() time.Duration { return c.n.now }
func (c simClock) AfterFunc(d time.Duration, f func()) transport.Timer {
	return c.n.AfterFunc(d, f)
}

// simTimer is a handle onto a pooled event. The generation snapshot keeps
// Stop safe after the event has fired and been recycled.
type simTimer struct {
	ev  *event
	gen uint64
}

func (t *simTimer) Stop() bool {
	// A fired event was released, bumping gen, so the first check also
	// covers "already fired".
	if t.ev.gen != t.gen || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Step executes the next pending event. It reports false when the queue is
// empty.
func (n *Net) Step() bool {
	for n.events.Len() > 0 {
		ev := n.events.pop()
		if ev.cancelled {
			n.release(ev)
			continue
		}
		n.now = ev.at
		if ev.target != nil {
			target, from, m := ev.target, ev.from, ev.msg
			n.release(ev)
			n.deliver(target, from, m)
		} else {
			fn := ev.fn
			n.release(ev)
			fn()
		}
		return true
	}
	return false
}

// deliver hands a message to its endpoint, honoring crash state and
// counters. This is the former Send closure, un-closured so message
// events need no per-message allocation beyond the pooled event.
func (n *Net) deliver(target *Endpoint, from string, m wire.Msg) {
	if !target.Up() || target.handler == nil {
		return
	}
	n.msgCount++
	n.byKind[m.Kind()]++
	if n.TraceFn != nil {
		n.TraceFn(n.now, from, target.Addr(), m)
	}
	target.handler(from, m)
}

// RunUntilIdle processes events until none remain. Protocols with periodic
// timers never go idle; use RunFor for those.
func (n *Net) RunUntilIdle() {
	for n.Step() {
	}
}

// RunFor processes events until virtual time advances past now+d. Events
// scheduled at later times remain queued.
func (n *Net) RunFor(d time.Duration) {
	deadline := n.now + d
	for n.events.Len() > 0 {
		next := n.events.peek()
		if next.cancelled {
			n.release(n.events.pop())
			continue
		}
		if next.at > deadline {
			break
		}
		n.Step()
	}
	n.now = deadline
}

// RunUntil processes events while cond stays false, up to a safety cap of
// maxEvents. It reports whether cond became true.
func (n *Net) RunUntil(cond func() bool, maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if cond() {
			return true
		}
		if !n.Step() {
			return cond()
		}
	}
	return cond()
}

// Latency returns the (jittered) delivery latency between endpoints.
func (n *Net) latency(a, b int) time.Duration {
	ms := n.dist(a, b)
	d := time.Duration(ms * float64(time.Millisecond))
	if n.cfg.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 + n.rng.Float64()*n.cfg.JitterFrac))
	}
	if d < n.cfg.MinLatency {
		d = n.cfg.MinLatency
	}
	return d
}

// ---------------------------------------------------------------------------
// Endpoint

// DropFilter inspects an outbound message and returns true to silently
// drop it. Used to model malicious nodes that accept but do not forward
// traffic.
type DropFilter func(to string, m wire.Msg) bool

// Endpoint implements transport.Transport inside a Net.
type Endpoint struct {
	net     *Net
	idx     int
	addr    string // precomputed Addr(idx); avoids formatting per Send
	handler transport.Handler
	up      bool
	closed  bool
	// sendFilter, if set, can suppress outbound messages.
	sendFilter DropFilter
}

// Addr implements transport.Transport.
func (e *Endpoint) Addr() string { return e.addr }

// Index returns the endpoint's dense index.
func (e *Endpoint) Index() int { return e.idx }

// SetHandler implements transport.Transport.
func (e *Endpoint) SetHandler(h transport.Handler) { e.handler = h }

// SetSendFilter installs a malicious-behaviour filter on outbound traffic.
func (e *Endpoint) SetSendFilter(f DropFilter) { e.sendFilter = f }

// Up reports whether the endpoint is accepting traffic.
func (e *Endpoint) Up() bool { return e.up && !e.closed }

// Crash silently takes the node off the network: inbound and outbound
// messages vanish, matching the paper's "nodes ... may silently leave the
// system without warning".
func (e *Endpoint) Crash() { e.up = false }

// Restart brings a crashed node back.
func (e *Endpoint) Restart() { e.up = true }

// Send implements transport.Transport.
func (e *Endpoint) Send(to string, m wire.Msg) error {
	if e.closed {
		return fmt.Errorf("simnet: endpoint %d closed", e.idx)
	}
	if !e.up {
		return nil // a crashed node's sends vanish silently
	}
	if e.sendFilter != nil && e.sendFilter(to, m) {
		return nil
	}
	dst, err := Index(to)
	if err != nil {
		return err
	}
	if dst < 0 || dst >= len(e.net.eps) {
		return fmt.Errorf("simnet: no endpoint at %q", to)
	}
	n := e.net
	if n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb {
		return nil
	}
	n.scheduleMsg(n.now+n.latency(e.idx, dst), n.eps[dst], e.Addr(), m)
	return nil
}

// Proximity implements transport.Transport using the topology metric,
// standing in for a measured RTT.
func (e *Endpoint) Proximity(to string) float64 {
	dst, err := Index(to)
	if err != nil || dst < 0 || dst >= len(e.net.eps) {
		return 1e9
	}
	return e.net.dist(e.idx, dst)
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Event heap

// event is one scheduled occurrence: either a timer callback (fn set) or
// a message delivery (target set). Events are pooled per Net; gen counts
// recycles so stale timer handles cannot cancel a reused slot.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func()    // timer events
	target    *Endpoint // message events
	from      string
	msg       wire.Msg
	cancelled bool
	gen       uint64
}

// eventHeap is a typed binary min-heap ordered by (at, seq). Replacing
// the container/heap interface{} plumbing with direct methods removes
// the per-operation interface conversions and method-value dispatch from
// the simulator's innermost loop.
type eventHeap struct {
	evs []*event
}

func (h *eventHeap) Len() int { return len(h.evs) }

func (h *eventHeap) peek() *event { return h.evs[0] }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	h.evs = append(h.evs, ev)
	// Sift up.
	evs := h.evs
	i := len(evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(evs[i], evs[parent]) {
			break
		}
		evs[i], evs[parent] = evs[parent], evs[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	evs := h.evs
	top := evs[0]
	last := len(evs) - 1
	evs[0] = evs[last]
	evs[last] = nil
	h.evs = evs[:last]
	// Sift down.
	evs = h.evs
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(evs) && eventLess(evs[l], evs[smallest]) {
			smallest = l
		}
		if r < len(evs) && eventLess(evs[r], evs[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		evs[i], evs[smallest] = evs[smallest], evs[i]
		i = smallest
	}
	return top
}
