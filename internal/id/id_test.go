package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeFromBytes(t *testing.T) {
	b := make([]byte, NodeBytes)
	for i := range b {
		b[i] = byte(i)
	}
	n, err := NodeFromBytes(b)
	if err != nil {
		t.Fatalf("NodeFromBytes: %v", err)
	}
	for i := range b {
		if n[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, n[i], i)
		}
	}
}

func TestNodeFromBytesBadLength(t *testing.T) {
	if _, err := NodeFromBytes(make([]byte, 5)); err == nil {
		t.Fatal("want error for short input")
	}
	if _, err := NodeFromBytes(make([]byte, 17)); err == nil {
		t.Fatal("want error for long input")
	}
}

func TestFileFromBytesBadLength(t *testing.T) {
	if _, err := FileFromBytes(make([]byte, 19)); err == nil {
		t.Fatal("want error for short input")
	}
}

func TestParseRoundTrip(t *testing.T) {
	n := Rand(42)
	got, err := ParseNode(n.String())
	if err != nil {
		t.Fatalf("ParseNode: %v", err)
	}
	if got != n {
		t.Fatalf("round trip mismatch: %v != %v", got, n)
	}
	f := RandFile(42)
	gf, err := ParseFile(f.String())
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if gf != f {
		t.Fatalf("file round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseNode("zz"); err == nil {
		t.Fatal("want error for non-hex")
	}
	if _, err := ParseNode("abcd"); err == nil {
		t.Fatal("want error for short hex")
	}
	if _, err := ParseFile("1234"); err == nil {
		t.Fatal("want error for short file hex")
	}
}

func TestHashNodeDeterministic(t *testing.T) {
	a := HashNode([]byte("hello"))
	b := HashNode([]byte("hello"))
	c := HashNode([]byte("world"))
	if a != b {
		t.Fatal("HashNode not deterministic")
	}
	if a == c {
		t.Fatal("HashNode collision on distinct inputs")
	}
}

func TestHashFileSaltMatters(t *testing.T) {
	pub := []byte("owner-public-key")
	a := HashFile("report.txt", pub, []byte{1})
	b := HashFile("report.txt", pub, []byte{2})
	if a == b {
		t.Fatal("different salts must give different fileIds")
	}
	c := HashFile("report.txt", []byte("other"), []byte{1})
	if a == c {
		t.Fatal("different owners must give different fileIds")
	}
}

func TestFileKeyPrefix(t *testing.T) {
	f := RandFile(7)
	k := f.Key()
	for i := 0; i < NodeBytes; i++ {
		if k[i] != f[i] {
			t.Fatalf("Key byte %d mismatch", i)
		}
	}
}

func TestCmp(t *testing.T) {
	zero := Node{}
	one := Node{}
	one[NodeBytes-1] = 1
	big := Node{}
	big[0] = 0x80
	if zero.Cmp(one) != -1 || one.Cmp(zero) != 1 || zero.Cmp(zero) != 0 {
		t.Fatal("basic Cmp wrong")
	}
	if one.Cmp(big) != -1 {
		t.Fatal("msb comparison wrong")
	}
	if !zero.Less(one) || one.Less(zero) {
		t.Fatal("Less wrong")
	}
}

func TestAddSub(t *testing.T) {
	a := Rand(1)
	b := Rand(2)
	if a.Add(b).Sub(b) != a {
		t.Fatal("(a+b)-b != a")
	}
	if a.Sub(a) != Zero {
		t.Fatal("a-a != 0")
	}
	// Carry across the 64-bit boundary.
	var low Node
	for i := 8; i < NodeBytes; i++ {
		low[i] = 0xff
	}
	one := Node{}
	one[NodeBytes-1] = 1
	sum := low.Add(one)
	want := Node{}
	want[7] = 1
	if sum != want {
		t.Fatalf("carry: got %v want %v", sum, want)
	}
}

func TestSubWraps(t *testing.T) {
	one := Node{}
	one[NodeBytes-1] = 1
	got := Zero.Sub(one)
	var want Node
	for i := range want {
		want[i] = 0xff
	}
	if got != want {
		t.Fatalf("0-1 should wrap to all-ones, got %v", got)
	}
}

func TestDistSymmetric(t *testing.T) {
	a := Rand(10)
	b := Rand(11)
	if a.Dist(b) != b.Dist(a) {
		t.Fatal("Dist not symmetric")
	}
	if a.Dist(a) != Zero {
		t.Fatal("Dist(a,a) != 0")
	}
}

func TestDistTakesShortWay(t *testing.T) {
	// 1 and 2^128-1 are distance 2 apart around the ring.
	one := Node{}
	one[NodeBytes-1] = 1
	var max Node
	for i := range max {
		max[i] = 0xff
	}
	d := one.Dist(max)
	two := Node{}
	two[NodeBytes-1] = 2
	if d != two {
		t.Fatalf("ring distance 1..max = %v, want 2", d)
	}
}

func TestCloserTotalOrder(t *testing.T) {
	target := Rand(100)
	a := Rand(101)
	b := Rand(102)
	if Closer(target, a, b) && Closer(target, b, a) {
		t.Fatal("Closer cannot hold both ways")
	}
	if Closer(target, a, a) {
		t.Fatal("Closer(x,x) must be false")
	}
}

func TestCloserTieBreak(t *testing.T) {
	// a and b equidistant on opposite sides of target.
	target := Rand(55)
	delta := Node{}
	delta[NodeBytes-1] = 9
	a := target.Add(delta)
	b := target.Sub(delta)
	// Exactly one of Closer(t,a,b), Closer(t,b,a) must hold.
	x := Closer(target, a, b)
	y := Closer(target, b, a)
	if x == y {
		t.Fatalf("tie break must pick exactly one: %v %v", x, y)
	}
	// And it must pick the numerically smaller one.
	if a.Less(b) && !x {
		t.Fatal("tie should favour a (smaller)")
	}
	if b.Less(a) && !y {
		t.Fatal("tie should favour b (smaller)")
	}
}

func TestBetween(t *testing.T) {
	a := Rand(1)
	b := a.Add(Rand(2).Rsh1()) // some point clockwise of a
	mid := Mid(a, b)
	if !Between(mid, a, b) {
		t.Fatal("midpoint must be between")
	}
	if !Between(b, a, b) {
		t.Fatal("arc is inclusive of b")
	}
	if Between(a, a, b) {
		t.Fatal("arc is exclusive of a")
	}
	if Between(b.Add(Rand(9)), a, b) == Between(a, a, b) && Between(b.Add(Rand(9)), a, b) {
		t.Log("point past b may wrap; just ensure no panic")
	}
}

func TestBetweenFullRing(t *testing.T) {
	a := Rand(3)
	if Between(a, a, a) {
		t.Fatal("a not in (a,a]")
	}
	if !Between(a.Add(Rand(4)), a, a) {
		t.Fatal("everything else is in (a,a]")
	}
}

func TestDigit(t *testing.T) {
	var n Node
	n[0] = 0xAB // digits base16: A, B
	n[1] = 0xCD
	if n.Digit(0, 4) != 0xA || n.Digit(1, 4) != 0xB || n.Digit(2, 4) != 0xC || n.Digit(3, 4) != 0xD {
		t.Fatalf("base-16 digits wrong: %x %x %x %x", n.Digit(0, 4), n.Digit(1, 4), n.Digit(2, 4), n.Digit(3, 4))
	}
	// Base 2: bits of 0xAB = 10101011
	wantBits := []int{1, 0, 1, 0, 1, 0, 1, 1}
	for i, w := range wantBits {
		if n.Digit(i, 1) != w {
			t.Fatalf("bit %d = %d want %d", i, n.Digit(i, 1), w)
		}
	}
	// Base 4: 0xAB -> 10 10 10 11 -> 2,2,2,3
	want4 := []int{2, 2, 2, 3}
	for i, w := range want4 {
		if n.Digit(i, 2) != w {
			t.Fatalf("base-4 digit %d = %d want %d", i, n.Digit(i, 2), w)
		}
	}
}

func TestDigitFile(t *testing.T) {
	var f File
	f[0] = 0x5E
	if f.Digit(0, 4) != 0x5 || f.Digit(1, 4) != 0xE {
		t.Fatal("file digit extraction wrong")
	}
}

func TestSetDigit(t *testing.T) {
	n := Rand(77)
	for b := 1; b <= 8; b *= 2 {
		for i := 0; i < NumDigits(b); i += 3 {
			v := (i * 7) % (1 << b)
			m := n.SetDigit(i, b, v)
			if m.Digit(i, b) != v {
				t.Fatalf("SetDigit(%d, b=%d, %d) readback = %d", i, b, v, m.Digit(i, b))
			}
			// Other digits unchanged.
			for j := 0; j < NumDigits(b); j++ {
				if j != i && m.Digit(j, b) != n.Digit(j, b) {
					t.Fatalf("SetDigit disturbed digit %d", j)
				}
			}
		}
	}
}

func TestCommonPrefix(t *testing.T) {
	a := Rand(5)
	if CommonPrefix(a, a, 4) != NumDigits(4) {
		t.Fatal("identical ids share all digits")
	}
	b := a
	b[0] ^= 0x80 // flip the very first bit
	if CommonPrefix(a, b, 4) != 0 {
		t.Fatal("first-bit flip means zero shared digits")
	}
	c := a
	c[2] ^= 0x01 // flip bit 23 -> 23/4 = 5 shared hex digits
	if got := CommonPrefix(a, c, 4); got != 5 {
		t.Fatalf("CommonPrefix = %d, want 5", got)
	}
}

func TestCommonPrefixConsistentWithDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 200; iter++ {
		a := Rand(rng.Uint64())
		b := Rand(rng.Uint64())
		for _, bb := range []int{1, 2, 4, 8} {
			p := CommonPrefix(a, b, bb)
			for i := 0; i < p; i++ {
				if a.Digit(i, bb) != b.Digit(i, bb) {
					t.Fatalf("prefix claims digit %d equal but differs (b=%d)", i, bb)
				}
			}
			if p < NumDigits(bb) && a.Digit(p, bb) == b.Digit(p, bb) {
				t.Fatalf("digit %d equal but prefix stopped (b=%d)", p, bb)
			}
		}
	}
}

func TestMid(t *testing.T) {
	a := Rand(1)
	d := Node{}
	d[NodeBytes-1] = 100
	b := a.Add(d)
	m := Mid(a, b)
	want := a.Add(Node{}.SetDigit(NumDigits(4)-2, 4, 3).SetDigit(NumDigits(4)-1, 4, 2)) // 0x32 = 50
	if m != want {
		t.Fatalf("Mid = %v want %v", m, want)
	}
}

func TestRandDeterministic(t *testing.T) {
	if Rand(9) != Rand(9) {
		t.Fatal("Rand not deterministic")
	}
	if Rand(9) == Rand(10) {
		t.Fatal("Rand seeds collide")
	}
	if RandFile(9) != RandFile(9) {
		t.Fatal("RandFile not deterministic")
	}
}

func TestShortStrings(t *testing.T) {
	n := Rand(1)
	if len(n.Short()) != 8 || len(n.String()) != 32 {
		t.Fatalf("string lengths: %d %d", len(n.Short()), len(n.String()))
	}
	f := RandFile(1)
	if len(f.Short()) != 8 || len(f.String()) != 40 {
		t.Fatalf("file string lengths: %d %d", len(f.Short()), len(f.String()))
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero false")
	}
	if Rand(3).IsZero() {
		t.Fatal("random id reported zero")
	}
}

// Property-based tests on the ring arithmetic.

func nodeFromQuick(x, y uint64) Node { return fromWords(x, y) }

func TestQuickAddCommutes(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a := nodeFromQuick(a1, a2)
		b := nodeFromQuick(b1, b2)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddSubInverse(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a := nodeFromQuick(a1, a2)
		b := nodeFromQuick(b1, b2)
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistBounds(t *testing.T) {
	half := fromWords(1<<63, 0)
	f := func(a1, a2, b1, b2 uint64) bool {
		a := nodeFromQuick(a1, a2)
		b := nodeFromQuick(b1, b2)
		d := a.Dist(b)
		// Ring distance is at most 2^127.
		return d.Cmp(half) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistTriangleOnLine(t *testing.T) {
	// For points in order a, a+x, a+x+y with small x,y the clockwise
	// distances add up.
	f := func(a1, a2 uint64, x32, y32 uint32) bool {
		a := nodeFromQuick(a1, a2)
		x := fromWords(0, uint64(x32))
		y := fromWords(0, uint64(y32))
		b := a.Add(x)
		c := b.Add(y)
		return a.CW(c) == a.CW(b).Add(b.CW(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDigitRoundTrip(t *testing.T) {
	f := func(a1, a2 uint64, iRaw, vRaw uint8) bool {
		const b = 4
		n := nodeFromQuick(a1, a2)
		i := int(iRaw) % NumDigits(b)
		v := int(vRaw) % (1 << b)
		return n.SetDigit(i, b, v).Digit(i, b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBetweenArcPartition(t *testing.T) {
	// Every x != a is either in (a,b] or in (b,a] but not both, when a != b.
	f := func(a1, a2, b1, b2, x1, x2 uint64) bool {
		a := nodeFromQuick(a1, a2)
		b := nodeFromQuick(b1, b2)
		x := nodeFromQuick(x1, x2)
		if a == b {
			return true
		}
		in1 := Between(x, a, b)
		in2 := Between(x, b, a)
		if x == a {
			return !in1 && in2 || x == b
		}
		if x == b {
			return in1 && !in2
		}
		return in1 != in2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDigit(b *testing.B) {
	n := Rand(1)
	for i := 0; i < b.N; i++ {
		_ = n.Digit(i%32, 4)
	}
}

func BenchmarkCommonPrefix(b *testing.B) {
	x := Rand(1)
	y := Rand(2)
	for i := 0; i < b.N; i++ {
		_ = CommonPrefix(x, y, 4)
	}
}

func BenchmarkDist(b *testing.B) {
	x := Rand(1)
	y := Rand(2)
	for i := 0; i < b.N; i++ {
		_ = x.Dist(y)
	}
}
