package id

import "sync"

// internStripes is a power of two so the stripe of an id is a mask of its
// first (uniformly distributed, sha256-derived) byte.
const internStripes = 16

// Intern is a per-network identity table: it maps each node id to a dense
// index and a canonical address string, assigned once at registration.
// Every simulated network owns its own table, so ids never alias state
// across concurrently running networks (experiment grids run many
// clusters in parallel), and the canonical address lets bulk-constructed
// routing state share one string per node instead of re-deriving copies.
//
// Lookups take a stripe read-lock only: shards of the windowed simulation
// engine resolve ids concurrently while the coordinating goroutine is
// parked at a barrier, so reads must be cheap and race-free. Writes
// (registration, re-registration under churn) take the stripe write-lock.
type Intern struct {
	stripes [internStripes]internStripe
}

type internStripe struct {
	mu sync.RWMutex
	m  map[Node]internEntry
}

type internEntry struct {
	index int32
	addr  string
}

// NewIntern returns an empty table.
func NewIntern() *Intern { return &Intern{} }

func (t *Intern) stripe(n Node) *internStripe {
	return &t.stripes[n[0]&(internStripes-1)]
}

// Put registers (or re-registers, when a churned-out slot is reused) the
// id with its dense index and canonical address.
func (t *Intern) Put(n Node, index int32, addr string) {
	s := t.stripe(n)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[Node]internEntry)
	}
	s.m[n] = internEntry{index, addr}
	s.mu.Unlock()
}

// Delete removes the id, reporting whether it was present.
func (t *Intern) Delete(n Node) bool {
	s := t.stripe(n)
	s.mu.Lock()
	_, ok := s.m[n]
	delete(s.m, n)
	s.mu.Unlock()
	return ok
}

// Index returns the dense index registered for the id, or -1.
func (t *Intern) Index(n Node) int32 {
	s := t.stripe(n)
	s.mu.RLock()
	e, ok := s.m[n]
	s.mu.RUnlock()
	if !ok {
		return -1
	}
	return e.index
}

// Addr returns the canonical address registered for the id and whether
// the id is known.
func (t *Intern) Addr(n Node) (string, bool) {
	s := t.stripe(n)
	s.mu.RLock()
	e, ok := s.m[n]
	s.mu.RUnlock()
	return e.addr, ok
}

// Len returns the number of registered ids.
func (t *Intern) Len() int {
	total := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		total += len(s.m)
		s.mu.RUnlock()
	}
	return total
}
