package id

import (
	"math/rand"
	"testing"
)

// randNode draws a pseudo-random identifier from a test RNG.
func randNode(rng *rand.Rand) Node {
	var n Node
	rng.Read(n[:])
	return n
}

// TestDigitFastPathMatchesGeneric proves the b=4 nibble path is
// bit-identical to the generic bit-walking implementation across random
// ids and every digit position, and that other b values still use the
// generic result.
func TestDigitFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := randNode(rng)
		for _, b := range []int{1, 2, 4, 8} {
			for i := 0; i < NodeBits/b; i++ {
				if got, want := n.Digit(i, b), digit(n[:], i, b); got != want {
					t.Fatalf("Node %s Digit(%d, %d) = %d, generic = %d", n, i, b, got, want)
				}
			}
		}
		var f File
		rng.Read(f[:])
		for i := 0; i < FileBits/4; i++ {
			if got, want := f.Digit(i, 4), digit(f[:], i, 4); got != want {
				t.Fatalf("File %s Digit(%d, 4) = %d, generic = %d", f, i, got, want)
			}
		}
	}
}

func TestDigitFastPathPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Digit(32, 4) on a 128-bit id should panic like the generic path")
		}
	}()
	var n Node
	n.Digit(NodeBits/4, 4)
}

// TestSetDigitFastPathMatchesGeneric proves the b=4 write path matches
// the generic implementation for every position and value, including
// values wider than one digit (both mask to the low b bits).
func TestSetDigitFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := randNode(rng)
		for i := 0; i < NodeBits/4; i++ {
			for _, v := range []int{0, 1, 7, 15, rng.Intn(16), 16 + rng.Intn(240)} {
				if got, want := n.SetDigit(i, 4, v), n.setDigitGeneric(i, 4, v); got != want {
					t.Fatalf("SetDigit(%d, 4, %d): fast %s != generic %s", i, v, got, want)
				}
			}
		}
	}
}

// TestSetDigitRoundTrip checks Digit(SetDigit(...)) for all b the
// routing table can use.
func TestSetDigitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := randNode(rng)
		for _, b := range []int{1, 2, 4, 8} {
			i := rng.Intn(NodeBits / b)
			v := rng.Intn(1 << b)
			if got := n.SetDigit(i, b, v).Digit(i, b); got != v {
				t.Fatalf("SetDigit(%d, %d, %d) round-trips to %d", i, b, v, got)
			}
		}
	}
}

// TestCommonPrefixFastPathMatchesGeneric proves the word-compare
// implementation matches the byte-walking reference for random pairs and
// for adversarial pairs sharing exact digit-length prefixes.
func TestCommonPrefixFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		n, m := randNode(rng), randNode(rng)
		for _, b := range []int{1, 2, 3, 4, 5, 8} {
			if got, want := CommonPrefix(n, m, b), commonPrefixGeneric(n, m, b); got != want {
				t.Fatalf("CommonPrefix(%s, %s, %d) = %d, generic = %d", n, m, b, got, want)
			}
		}
		// Adversarial: force an exact shared prefix of `p` b-digits, then
		// differ in the next digit.
		for _, b := range []int{1, 4, 8} {
			p := rng.Intn(NodeBits / b)
			m2 := n
			m2 = m2.SetDigit(p, b, n.Digit(p, b)^1)
			if got, want := CommonPrefix(n, m2, b), commonPrefixGeneric(n, m2, b); got != want {
				t.Fatalf("prefix-%d pair: fast %d, generic %d (b=%d)", p, got, want, b)
			}
			if got := CommonPrefix(n, m2, b); got != p {
				t.Fatalf("constructed pair should share exactly %d digits, got %d", p, got)
			}
		}
		// Equal ids: full-width prefix.
		for _, b := range []int{1, 2, 4, 8} {
			if got := CommonPrefix(n, n, b); got != NodeBits/b {
				t.Fatalf("CommonPrefix(n, n, %d) = %d, want %d", b, got, NodeBits/b)
			}
		}
	}
}
