// Package id implements the identifier spaces used by PAST and Pastry.
//
// Nodes carry 128-bit identifiers (nodeIds) and files carry 160-bit
// identifiers (fileIds), as specified in section 2 of the PAST paper.
// Routing operates on the 128 most significant bits of a fileId, which this
// package exposes as File.Key. Identifiers are interpreted as unsigned
// big-endian integers on a circular space modulo 2^128; all distance and
// comparison helpers respect the ring topology.
package id

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
)

// NodeBits is the size of a node identifier in bits.
const NodeBits = 128

// FileBits is the size of a file identifier in bits.
const FileBits = 160

// NodeBytes is the size of a node identifier in bytes.
const NodeBytes = NodeBits / 8

// FileBytes is the size of a file identifier in bytes.
const FileBytes = FileBits / 8

// Node is a 128-bit Pastry node identifier, big-endian.
type Node [NodeBytes]byte

// File is a 160-bit PAST file identifier, big-endian.
type File [FileBytes]byte

// Zero is the all-zero node identifier.
var Zero Node

// ErrBadLength reports an attempt to parse an identifier of the wrong size.
var ErrBadLength = errors.New("id: bad identifier length")

// NodeFromBytes parses a 16-byte big-endian node identifier.
func NodeFromBytes(p []byte) (Node, error) {
	var n Node
	if len(p) != NodeBytes {
		return n, fmt.Errorf("%w: got %d bytes, want %d", ErrBadLength, len(p), NodeBytes)
	}
	copy(n[:], p)
	return n, nil
}

// FileFromBytes parses a 20-byte big-endian file identifier.
func FileFromBytes(p []byte) (File, error) {
	var f File
	if len(p) != FileBytes {
		return f, fmt.Errorf("%w: got %d bytes, want %d", ErrBadLength, len(p), FileBytes)
	}
	copy(f[:], p)
	return f, nil
}

// ParseNode parses a 32-character hex string into a node identifier.
func ParseNode(s string) (Node, error) {
	var n Node
	b, err := hex.DecodeString(s)
	if err != nil {
		return n, fmt.Errorf("id: parse node: %w", err)
	}
	return NodeFromBytes(b)
}

// ParseFile parses a 40-character hex string into a file identifier.
func ParseFile(s string) (File, error) {
	var f File
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("id: parse file: %w", err)
	}
	return FileFromBytes(b)
}

// HashNode derives a node identifier from arbitrary material (typically a
// smartcard public key) using a cryptographic hash, per section 2.1 of the
// paper ("the nodeId is based on a cryptographic hash of the smartcard's
// public key").
func HashNode(material []byte) Node {
	sum := sha256.Sum256(material)
	var n Node
	copy(n[:], sum[:NodeBytes])
	return n
}

// HashFile derives a file identifier from the file's textual name, the
// owner's public key and a random salt, per section 2 of the paper.
func HashFile(name string, ownerPub []byte, salt []byte) File {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(ownerPub)
	h.Write([]byte{0})
	h.Write(salt)
	var f File
	copy(f[:], h.Sum(nil)[:FileBytes])
	return f
}

// Key returns the 128 most significant bits of the file identifier, the
// value Pastry routes on.
func (f File) Key() Node {
	var n Node
	copy(n[:], f[:NodeBytes])
	return n
}

// String renders the node identifier as lowercase hex.
func (n Node) String() string { return hex.EncodeToString(n[:]) }

// String renders the file identifier as lowercase hex.
func (f File) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first eight hex digits, for logs.
func (n Node) Short() string { return hex.EncodeToString(n[:4]) }

// Short returns the first eight hex digits, for logs.
func (f File) Short() string { return hex.EncodeToString(f[:4]) }

// IsZero reports whether n is the all-zero identifier.
func (n Node) IsZero() bool { return n == Zero }

// hi and lo decompose a node identifier into two 64-bit big-endian words.
func (n Node) hi() uint64 { return binary.BigEndian.Uint64(n[0:8]) }
func (n Node) lo() uint64 { return binary.BigEndian.Uint64(n[8:16]) }

func fromWords(hi, lo uint64) Node {
	var n Node
	binary.BigEndian.PutUint64(n[0:8], hi)
	binary.BigEndian.PutUint64(n[8:16], lo)
	return n
}

// Cmp compares two identifiers as 128-bit unsigned integers.
// It returns -1 if n < m, 0 if equal, +1 if n > m.
func (n Node) Cmp(m Node) int {
	switch {
	case n.hi() < m.hi():
		return -1
	case n.hi() > m.hi():
		return 1
	case n.lo() < m.lo():
		return -1
	case n.lo() > m.lo():
		return 1
	default:
		return 0
	}
}

// Less reports n < m as unsigned integers.
func (n Node) Less(m Node) bool { return n.Cmp(m) < 0 }

// Add returns n+m mod 2^128.
func (n Node) Add(m Node) Node {
	lo, carry := bits.Add64(n.lo(), m.lo(), 0)
	hi, _ := bits.Add64(n.hi(), m.hi(), carry)
	return fromWords(hi, lo)
}

// Sub returns n-m mod 2^128 (the clockwise distance from m to n).
func (n Node) Sub(m Node) Node {
	lo, borrow := bits.Sub64(n.lo(), m.lo(), 0)
	hi, _ := bits.Sub64(n.hi(), m.hi(), borrow)
	return fromWords(hi, lo)
}

// Dist returns the ring distance between n and m: the minimum of the
// clockwise and counter-clockwise distances on the circular 2^128 space.
// This is the "numerical closeness" metric of the paper.
func (n Node) Dist(m Node) Node {
	d1 := n.Sub(m)
	d2 := m.Sub(n)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// Closer reports whether a is strictly numerically closer to target than b,
// using ring distance. Ties (equidistant on opposite sides) are broken in
// favour of the numerically smaller identifier so that "the numerically
// closest node" is a total order, which routing termination relies on.
func Closer(target, a, b Node) bool {
	da := a.Dist(target)
	db := b.Dist(target)
	switch da.Cmp(db) {
	case -1:
		return true
	case 1:
		return false
	default:
		return a.Cmp(b) < 0
	}
}

// CW returns the clockwise distance from n to m (i.e. m-n mod 2^128).
func (n Node) CW(m Node) Node { return m.Sub(n) }

// CCW returns the counter-clockwise distance from n to m (i.e. n-m mod 2^128).
func (n Node) CCW(m Node) Node { return n.Sub(m) }

// Between reports whether x lies on the clockwise arc (a, b], exclusive of
// a and inclusive of b. With a == b the arc is the full ring minus a.
func Between(x, a, b Node) bool {
	if a == b {
		return x != a
	}
	return a.CW(x) != Zero && a.CW(x).Cmp(a.CW(b)) <= 0
}

// Digit returns the i-th base-2^b digit of the identifier (digit 0 is the
// most significant). b must divide into the bit width sensibly; Pastry uses
// b in 1..8. The default b=4 takes a nibble fast path.
func (n Node) Digit(i, b int) int {
	if b == 4 {
		return nibbleAt(n[:], i, b)
	}
	return digit(n[:], i, b)
}

// Digit returns the i-th base-2^b digit of the file identifier.
func (f File) Digit(i, b int) int {
	if b == 4 {
		return nibbleAt(f[:], i, b)
	}
	return digit(f[:], i, b)
}

// nibbleAt extracts hex digit i directly from the backing byte: digit 2k
// is the high nibble of byte k, digit 2k+1 the low nibble. It matches
// digit(p, i, 4) bit for bit (see TestDigitFastPathMatchesGeneric).
func nibbleAt(p []byte, i, b int) int {
	if uint(i) >= uint(len(p)*2) {
		panic(fmt.Sprintf("id: digit %d with b=%d out of range for %d-bit id", i, b, len(p)*8))
	}
	shift := uint(4 * (1 - i&1))
	return int(p[i>>1] >> shift & 0xf)
}

// digit is the generic any-b extraction path, kept as the reference
// implementation the fast paths are property-tested against.
func digit(p []byte, i, b int) int {
	start := i * b
	end := start + b
	if end > len(p)*8 {
		panic(fmt.Sprintf("id: digit %d with b=%d out of range for %d-bit id", i, b, len(p)*8))
	}
	v := 0
	for bit := start; bit < end; bit++ {
		byteIdx := bit / 8
		bitIdx := 7 - bit%8
		v = v<<1 | int(p[byteIdx]>>bitIdx&1)
	}
	return v
}

// SetDigit returns a copy of n with the i-th base-2^b digit set to v.
// The default b=4 takes a nibble fast path.
func (n Node) SetDigit(i, b, v int) Node {
	if b == 4 {
		shift := uint(4 * (1 - i&1))
		n[i>>1] = n[i>>1]&^(0xf<<shift) | byte(v&0xf)<<shift
		return n
	}
	return n.setDigitGeneric(i, b, v)
}

// setDigitGeneric is the any-b reference implementation.
func (n Node) setDigitGeneric(i, b, v int) Node {
	start := i * b
	for k := 0; k < b; k++ {
		bit := start + k
		byteIdx := bit / 8
		bitIdx := 7 - bit%8
		mask := byte(1) << bitIdx
		if v>>(b-1-k)&1 == 1 {
			n[byteIdx] |= mask
		} else {
			n[byteIdx] &^= mask
		}
	}
	return n
}

// CommonPrefix returns the number of leading base-2^b digits shared by n
// and m. The maximum is NodeBits/b (rounded down). It compares the two
// 64-bit halves directly instead of walking bytes; routing calls this on
// every hop for every candidate.
func CommonPrefix(n, m Node, b int) int {
	var bitsSame int
	if x := n.hi() ^ m.hi(); x != 0 {
		bitsSame = bits.LeadingZeros64(x)
	} else if y := n.lo() ^ m.lo(); y != 0 {
		bitsSame = 64 + bits.LeadingZeros64(y)
	} else {
		bitsSame = NodeBits
	}
	return bitsSame / b
}

// commonPrefixGeneric is the byte-walking reference implementation kept
// for property tests.
func commonPrefixGeneric(n, m Node, b int) int {
	bitsSame := 0
	for i := 0; i < NodeBytes; i++ {
		x := n[i] ^ m[i]
		if x == 0 {
			bitsSame += 8
			continue
		}
		bitsSame += bits.LeadingZeros8(x)
		break
	}
	return bitsSame / b
}

// NumDigits returns the number of base-2^b digits in a node identifier.
func NumDigits(b int) int { return NodeBits / b }

// Rand derives a pseudo-random node identifier from a 64-bit seed stream
// value. It is deterministic: the same input always yields the same
// identifier. Experiments use it so runs are reproducible.
func Rand(seed uint64) Node {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	return HashNode(buf[:])
}

// RandFile derives a pseudo-random file identifier from a 64-bit seed.
func RandFile(seed uint64) File {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	sum := sha256.Sum256(buf[:])
	var f File
	copy(f[:], sum[:FileBytes])
	return f
}

// Mid returns the identifier halfway along the clockwise arc from a to b.
// It is used by tests to construct adversarial placements.
func Mid(a, b Node) Node {
	d := a.CW(b)
	half := d.Rsh1()
	return a.Add(half)
}

// Rsh1 returns n >> 1.
func (n Node) Rsh1() Node {
	hi := n.hi()
	lo := n.lo()
	return fromWords(hi>>1, lo>>1|hi<<63)
}
