package id

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternNoCrossNetworkAliasing pins that each network's table is
// fully independent: the same node id registered in two tables (as
// happens when an experiment grid runs many same-seed clusters in
// parallel) resolves per-table.
func TestInternNoCrossNetworkAliasing(t *testing.T) {
	a, b := NewIntern(), NewIntern()
	n := Rand(42)
	a.Put(n, 7, "sim:7")
	b.Put(n, 3, "sim:3")
	if a.Index(n) != 7 || b.Index(n) != 3 {
		t.Fatalf("aliased: a=%d b=%d", a.Index(n), b.Index(n))
	}
	if addr, _ := a.Addr(n); addr != "sim:7" {
		t.Fatalf("a.Addr = %q", addr)
	}
	if addr, _ := b.Addr(n); addr != "sim:3" {
		t.Fatalf("b.Addr = %q", addr)
	}
	if !a.Delete(n) {
		t.Fatal("delete reported absent")
	}
	if a.Index(n) != -1 {
		t.Fatal("deleted id still resolves")
	}
	if b.Index(n) != 3 {
		t.Fatal("delete leaked across tables")
	}
}

// TestInternBasics covers registration, re-registration (churned slot
// reuse), misses, and Len.
func TestInternBasics(t *testing.T) {
	tb := NewIntern()
	if tb.Index(Rand(1)) != -1 {
		t.Fatal("empty table resolved an id")
	}
	if _, ok := tb.Addr(Rand(1)); ok {
		t.Fatal("empty table had an addr")
	}
	for i := 0; i < 100; i++ {
		tb.Put(Rand(uint64(i)), int32(i), fmt.Sprintf("sim:%d", i))
	}
	if tb.Len() != 100 {
		t.Fatalf("Len = %d", tb.Len())
	}
	tb.Put(Rand(5), 500, "sim:500") // re-register
	if tb.Len() != 100 || tb.Index(Rand(5)) != 500 {
		t.Fatalf("re-register: Len=%d Index=%d", tb.Len(), tb.Index(Rand(5)))
	}
	if tb.Delete(Rand(999)) {
		t.Fatal("deleted an absent id")
	}
}

// TestInternConcurrent exercises the striped locking under the race
// detector the way the sharded engine does: shards resolve ids
// concurrently while churn registers and deletes others.
func TestInternConcurrent(t *testing.T) {
	tb := NewIntern()
	const stable = 512
	for i := 0; i < stable; i++ {
		tb.Put(Rand(uint64(i)), int32(i), "sim:x")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := Rand(uint64(i % stable))
				if got := tb.Index(n); got != int32(i%stable) {
					t.Errorf("Index(%d) = %d", i%stable, got)
					return
				}
				// Writers churn a goroutine-private key range so reader
				// assertions stay exact.
				w := Rand(uint64(stable + g*10000 + i))
				tb.Put(w, int32(i), "sim:w")
				if i%3 == 0 {
					tb.Delete(w)
				}
			}
		}()
	}
	wg.Wait()
}
