package tasks

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func TestEveryRunsRepeatedly(t *testing.T) {
	r := New(t.Logf)
	var n atomic.Int64
	r.Every("tick", 10*time.Millisecond, func(context.Context) error {
		n.Add(1)
		return nil
	})
	r.Start()
	waitFor(t, 2*time.Second, func() bool { return n.Load() >= 3 }, "3 periodic runs")
	if !r.Stop(time.Second) {
		t.Fatal("Stop did not drain")
	}
	got := n.Load()
	time.Sleep(50 * time.Millisecond)
	if n.Load() != got {
		t.Fatalf("task ran after Stop: %d -> %d", got, n.Load())
	}
}

func TestUntilRetriesThenSucceeds(t *testing.T) {
	r := New(t.Logf)
	var n atomic.Int64
	r.Until("boot", time.Millisecond, 10*time.Millisecond, func(context.Context) error {
		if n.Add(1) < 3 {
			return errors.New("not yet")
		}
		return nil
	})
	r.Start()
	waitFor(t, 2*time.Second, func() bool {
		for _, s := range r.Statuses() {
			if s.Name == "boot" && s.Done {
				return true
			}
		}
		return false
	}, "boot task to succeed")
	if got := n.Load(); got != 3 {
		t.Fatalf("ran %d times, want 3", got)
	}
	st := r.Statuses()[0]
	if st.Runs != 3 || st.Failures != 2 || st.LastErr != nil {
		t.Fatalf("status = %+v, want Runs=3 Failures=2 LastErr=nil", st)
	}
	r.Stop(time.Second)
}

func TestStopCancelsUntilBackoff(t *testing.T) {
	r := New(t.Logf)
	r.Until("never", time.Hour, time.Hour, func(context.Context) error {
		return errors.New("always fails")
	})
	r.Start()
	waitFor(t, 2*time.Second, func() bool {
		s := r.Statuses()[0]
		return s.Runs >= 1
	}, "first attempt")
	// The task is now sleeping an hour of backoff; Stop must not wait it out.
	start := time.Now()
	if !r.Stop(2 * time.Second) {
		t.Fatal("Stop did not drain a backing-off task")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Stop took %v, should cancel the backoff immediately", d)
	}
}

func TestPanicIsContained(t *testing.T) {
	r := New(nil)
	var after atomic.Int64
	r.Every("boom", 5*time.Millisecond, func(context.Context) error {
		if after.Add(1) == 1 {
			panic("kaboom")
		}
		return nil
	})
	r.Start()
	waitFor(t, 2*time.Second, func() bool { return after.Load() >= 2 }, "run after panic")
	st := r.Statuses()[0]
	if st.Failures < 1 {
		t.Fatalf("panic not recorded as failure: %+v", st)
	}
	r.Stop(time.Second)
}

func TestStopIdempotentAndContextDelivered(t *testing.T) {
	r := New(t.Logf)
	got := make(chan context.Context, 1)
	r.Until("ctx", time.Millisecond, time.Millisecond, func(ctx context.Context) error {
		select {
		case got <- ctx:
		default:
		}
		return nil
	})
	r.Start()
	var ctx context.Context
	select {
	case ctx = <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("task never ran")
	}
	if ctx.Err() != nil {
		t.Fatal("context cancelled before Stop")
	}
	r.Stop(time.Second)
	r.Stop(time.Second) // idempotent
	if ctx.Err() == nil {
		t.Fatal("context not cancelled by Stop")
	}
}
