// Package tasks is the small background-task scheduler that turns
// cmd/pastnode from a demo into a long-lived daemon. A Runner owns a set
// of named tasks — periodic maintenance loops (status reporting,
// membership sync) and run-until-success startup jobs (bootstrap with
// retry and backoff) — each on its own goroutine, all cancelled together
// by one graceful Stop that waits for in-flight runs to drain.
//
// The protocol layers deliberately do not use this package: inside the
// simulator all periodicity must flow through transport.Clock so virtual
// time stays deterministic. Runner is wall-clock only, for the process
// shell around a real node (daemon status loops, bootstrap retries,
// signal-driven shutdown) where determinism is neither possible nor
// wanted.
package tasks

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a point-in-time snapshot of one task's bookkeeping.
type Status struct {
	Name     string
	Runs     int
	Failures int
	LastErr  error
	LastRun  time.Time
	Done     bool // a run-until-success task that has succeeded
}

// String renders one status line for operator output (daemon status
// prints, SIGUSR1 snapshots).
func (s Status) String() string {
	out := fmt.Sprintf("%s: runs=%d failures=%d", s.Name, s.Runs, s.Failures)
	if s.Done {
		out += " done"
	}
	if s.LastErr != nil {
		out += fmt.Sprintf(" last-error=%q", s.LastErr.Error())
	}
	return out
}

type entry struct {
	name  string
	every time.Duration // periodic interval; zero for run-until-success
	base  time.Duration // retry backoff base (run-until-success)
	max   time.Duration // retry backoff cap (run-until-success)
	fn    func(ctx context.Context) error

	mu       sync.Mutex
	runs     int
	failures int
	lastErr  error
	lastRun  time.Time
	done     bool
}

func (e *entry) record(err error) {
	e.mu.Lock()
	e.runs++
	e.lastRun = time.Now()
	e.lastErr = err
	if err != nil {
		e.failures++
	}
	e.mu.Unlock()
}

func (e *entry) status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Status{Name: e.name, Runs: e.runs, Failures: e.failures, LastErr: e.lastErr, LastRun: e.lastRun, Done: e.done}
}

// Runner schedules background tasks. Register tasks with Every and Until,
// then call Start once; Stop cancels every task and waits for in-flight
// runs to return. Runner is safe for concurrent use, but tasks must be
// registered before Start.
type Runner struct {
	logf func(format string, args ...any)

	mu      sync.Mutex
	entries []*entry
	started bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New creates a Runner. logf receives one line per task failure (and
// recovery); nil discards them.
func New(logf func(format string, args ...any)) *Runner {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Runner{logf: logf, ctx: ctx, cancel: cancel}
}

// Every registers a periodic task: fn runs every interval (first run one
// interval after Start), until Stop. A failed run is logged and counted;
// the schedule keeps ticking.
func (r *Runner) Every(name string, every time.Duration, fn func(ctx context.Context) error) {
	if every <= 0 {
		panic(fmt.Sprintf("tasks: task %q needs a positive interval", name))
	}
	r.add(&entry{name: name, every: every, fn: fn})
}

// Until registers a run-until-success task: fn runs immediately at Start
// and is retried with exponential backoff — base, 2×base, … capped at
// max — until it returns nil or the runner stops. Bootstrap joins use
// this: a node started before its seed peers keeps dialing instead of
// dying.
func (r *Runner) Until(name string, base, max time.Duration, fn func(ctx context.Context) error) {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = base
	}
	r.add(&entry{name: name, base: base, max: max, fn: fn})
}

func (r *Runner) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic(fmt.Sprintf("tasks: task %q registered after Start", e.name))
	}
	r.entries = append(r.entries, e)
}

// Start launches every registered task on its own goroutine.
func (r *Runner) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	entries := r.entries
	r.mu.Unlock()
	for _, e := range entries {
		r.wg.Add(1)
		if e.every > 0 {
			go r.runPeriodic(e)
		} else {
			go r.runUntil(e)
		}
	}
}

// Stop cancels all tasks and waits up to grace for in-flight runs to
// return; it reports whether everything drained in time. Stop is
// idempotent.
func (r *Runner) Stop(grace time.Duration) bool {
	r.cancel()
	done := make(chan struct{})
	go func() { r.wg.Wait(); close(done) }()
	if grace <= 0 {
		<-done
		return true
	}
	select {
	case <-done:
		return true
	case <-time.After(grace):
		return false
	}
}

// Statuses returns a snapshot of every task, sorted by name.
func (r *Runner) Statuses() []Status {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	out := make([]Status, len(entries))
	for i, e := range entries {
		out[i] = e.status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// runOnce executes fn with panic containment: a panicking task is a
// failed run, not a dead daemon.
func (r *Runner) runOnce(e *entry) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("tasks: %s panicked: %v", e.name, p)
		}
		e.record(err)
		if err != nil && r.ctx.Err() == nil {
			r.logf("task %s: %v", e.name, err)
		}
	}()
	return e.fn(r.ctx)
}

func (r *Runner) runPeriodic(e *entry) {
	defer r.wg.Done()
	t := time.NewTimer(e.every)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
		}
		r.runOnce(e) //nolint:errcheck // recorded in the entry; schedule keeps ticking
		t.Reset(e.every)
	}
}

func (r *Runner) runUntil(e *entry) {
	defer r.wg.Done()
	delay := e.base
	for {
		if r.ctx.Err() != nil {
			return
		}
		if err := r.runOnce(e); err == nil {
			e.mu.Lock()
			e.done = true
			e.mu.Unlock()
			return
		}
		select {
		case <-r.ctx.Done():
			return
		case <-time.After(delay):
		}
		delay *= 2
		if delay > e.max {
			delay = e.max
		}
	}
}
