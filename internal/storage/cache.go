package storage

import (
	"container/heap"
	"sync"

	"past/internal/id"
	"past/internal/wire"
)

// Cache is a GreedyDual-Size (GD-S) file cache. PAST nodes use their
// unused disk capacity to cache popular files passing through them
// (section 2.3); the SOSP'01 companion paper picks GD-S as the eviction
// policy. Each cached file f carries a weight H(f) = c(f)/s(f) + L where
// c(f) is a retrieval-cost estimate, s(f) the size, and L a running
// inflation floor raised to the weight of each evicted victim; hits reset
// a file's weight against the current floor, so recently useful and
// expensive-to-refetch files survive.
//
// The cache's capacity is dynamic: the PAST layer shrinks it to whatever
// space replicas have not claimed, evicting as needed (cached copies are
// expendable; primary replicas are not).
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	floor    float64
	entries  map[id.File]*cacheEntry
	pq       cacheHeap
	seq      uint64

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	item   Item
	weight float64
	size   int64
	seq    uint64 // tiebreak for determinism
	index  int    // heap position
}

// NewCache creates a cache with an initial capacity in bytes.
func NewCache(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  make(map[id.File]*cacheEntry),
	}
}

// Capacity returns the current capacity.
func (c *Cache) Capacity() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Used returns bytes held by cached copies.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached files.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Resize adjusts capacity, evicting lowest-weight entries if the cache
// now overflows. The PAST layer calls this whenever replica storage
// grows or shrinks.
func (c *Cache) Resize(capacity int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if capacity < 0 {
		capacity = 0
	}
	c.capacity = capacity
	c.evictToFit(0)
}

// Put inserts a cached copy with the given refetch-cost estimate. Files
// larger than the capacity are ignored. It reports whether the file was
// cached. Like Store.Put, Put takes ownership of item.Data without
// copying; the caller must treat the bytes as immutable afterwards.
func (c *Cache) Put(item Item, cost float64) bool {
	size := int64(len(item.Data))
	c.mu.Lock()
	defer c.mu.Unlock()
	if size == 0 || size > c.capacity {
		return false
	}
	if e, ok := c.entries[item.Cert.FileID]; ok {
		// Refresh weight on re-insert.
		e.weight = c.floor + cost/float64(e.size)
		heap.Fix(&c.pq, e.index)
		return true
	}
	// GD-S admission: evict until it fits, but never evict entries whose
	// weight exceeds the newcomer's prospective weight (they are worth
	// more than what we are inserting).
	w := c.floor + cost/float64(size)
	for c.used+size > c.capacity {
		if len(c.pq) == 0 || c.pq[0].weight > w {
			return false
		}
		c.evictMin()
	}
	e := &cacheEntry{item: item, weight: w, size: size, seq: c.seq}
	c.seq++
	c.entries[item.Cert.FileID] = e
	heap.Push(&c.pq, e)
	c.used += size
	return true
}

// Get returns a cached copy, refreshing its GD-S weight on hit.
func (c *Cache) Get(f id.File) (Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[f]
	if !ok {
		c.misses++
		return Item{}, false
	}
	c.hits++
	// Hit: re-inflate the weight relative to the current floor and
	// refresh recency (the heap breaks weight ties by sequence, giving
	// LRU behaviour among equal-weight entries).
	base := e.weight - c.floor
	if base <= 0 {
		base = 1 / float64(e.size)
	}
	e.weight = c.floor + base
	e.seq = c.seq
	c.seq++
	heap.Fix(&c.pq, e.index)
	return e.item, true
}

// Has reports whether f is cached without touching weights or stats.
func (c *Cache) Has(f id.File) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[f]
	return ok
}

// Invalidate removes f from the cache (e.g. after a reclaim).
func (c *Cache) Invalidate(f id.File) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[f]
	if !ok {
		return false
	}
	heap.Remove(&c.pq, e.index)
	delete(c.entries, f)
	c.used -= e.size
	return true
}

// evictToFit evicts lowest-weight entries until need bytes fit. Lock held.
func (c *Cache) evictToFit(need int64) {
	for c.used+need > c.capacity && len(c.pq) > 0 {
		c.evictMin()
	}
}

// evictMin removes the lowest-weight entry and raises the floor to its
// weight (the "aging" mechanism of GreedyDual). Lock held.
func (c *Cache) evictMin() {
	e := heap.Pop(&c.pq).(*cacheEntry)
	if e.weight > c.floor {
		c.floor = e.weight
	}
	delete(c.entries, e.item.Cert.FileID)
	c.used -= e.size
}

// ---------------------------------------------------------------------------
// heap implementation

type cacheHeap []*cacheEntry

func (h cacheHeap) Len() int { return len(h) }
func (h cacheHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].seq < h[j].seq
}
func (h cacheHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *cacheHeap) Push(x interface{}) {
	e := x.(*cacheEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *cacheHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// ---------------------------------------------------------------------------

// NodeRefSliceContains is a small helper used by the PAST layer when
// deciding diversion targets.
func NodeRefSliceContains(refs []wire.NodeRef, n id.Node) bool {
	for _, r := range refs {
		if r.ID == n {
			return true
		}
	}
	return false
}
