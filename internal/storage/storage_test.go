package storage

import (
	"errors"
	"testing"
	"testing/quick"

	"past/internal/id"
	"past/internal/wire"
)

func item(seed uint64, size int) Item {
	return Item{
		Cert: wire.FileCertificate{FileID: id.RandFile(seed), Size: int64(size)},
		Data: make([]byte, size),
	}
}

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore(100)
	it := item(1, 40)
	if err := s.Put(it); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if s.Used() != 40 || s.Free() != 60 || s.Len() != 1 {
		t.Fatalf("accounting: used=%d free=%d len=%d", s.Used(), s.Free(), s.Len())
	}
	got, err := s.Get(it.Cert.FileID)
	if err != nil || len(got.Data) != 40 {
		t.Fatalf("Get: %v", err)
	}
	if !s.Has(it.Cert.FileID) {
		t.Fatal("Has false")
	}
	freed, err := s.Delete(it.Cert.FileID)
	if err != nil || freed != 40 {
		t.Fatalf("Delete: %d, %v", freed, err)
	}
	if s.Used() != 0 || s.Has(it.Cert.FileID) {
		t.Fatal("delete did not free")
	}
	if _, err := s.Get(it.Cert.FileID); !errors.Is(err, ErrNotFound) {
		t.Fatal("Get after delete should be ErrNotFound")
	}
	if _, err := s.Delete(it.Cert.FileID); !errors.Is(err, ErrNotFound) {
		t.Fatal("double delete should be ErrNotFound")
	}
}

func TestStoreCapacityEnforced(t *testing.T) {
	s := NewStore(100)
	if err := s.Put(item(1, 60)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(item(2, 50)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overflow accepted: %v", err)
	}
	if err := s.Put(item(3, 40)); err != nil {
		t.Fatalf("fitting file rejected: %v", err)
	}
	if s.Utilization() != 1.0 {
		t.Fatalf("utilization = %f", s.Utilization())
	}
}

func TestStoreDuplicateRejected(t *testing.T) {
	s := NewStore(100)
	it := item(1, 10)
	if err := s.Put(it); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(it); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate accepted: %v", err)
	}
	// The immutability guarantee of section 1: same fileId cannot be
	// inserted twice, so stored content never changes.
}

func TestStoreDataZeroCopy(t *testing.T) {
	// Put takes ownership of the slice without copying: all replicas of an
	// insert share one backing array, and the caller must treat the bytes
	// as immutable afterwards (the wire "immutable after Send" rule).
	s := NewStore(100)
	data := []byte{1, 2, 3}
	it := Item{Cert: wire.FileCertificate{FileID: id.RandFile(9)}, Data: data}
	s.Put(it)
	got, _ := s.Get(it.Cert.FileID)
	if len(got.Data) != 3 || &got.Data[0] != &data[0] {
		t.Fatal("store should alias the caller's buffer (zero-copy ownership transfer)")
	}
}

func TestStoreFilesSorted(t *testing.T) {
	s := NewStore(1000)
	for i := 0; i < 20; i++ {
		s.Put(item(uint64(i), 1))
	}
	files := s.Files()
	if len(files) != 20 {
		t.Fatalf("len = %d", len(files))
	}
	for i := 1; i < len(files); i++ {
		if files[i-1].String() >= files[i].String() {
			t.Fatal("Files not sorted")
		}
	}
	if len(s.Items()) != 20 {
		t.Fatal("Items length mismatch")
	}
}

func TestStorePointers(t *testing.T) {
	s := NewStore(10)
	f := id.RandFile(1)
	holder := wire.NodeRef{ID: id.Rand(2), Addr: "sim:3"}
	if _, ok := s.Pointer(f); ok {
		t.Fatal("pointer present before set")
	}
	s.SetPointer(f, holder)
	got, ok := s.Pointer(f)
	if !ok || got.ID != holder.ID {
		t.Fatal("pointer lost")
	}
	if len(s.Pointers()) != 1 {
		t.Fatal("Pointers map wrong")
	}
	if !s.DeletePointer(f) || s.DeletePointer(f) {
		t.Fatal("DeletePointer semantics wrong")
	}
}

func TestQuickStoreAccountingInvariant(t *testing.T) {
	// Property: used == sum of stored sizes, never exceeds capacity.
	f := func(ops []uint16) bool {
		s := NewStore(1 << 16)
		live := map[uint64]int64{}
		for i, op := range ops {
			seed := uint64(op % 32)
			size := int(op%977) + 1
			if op%3 == 0 {
				if _, err := s.Delete(id.RandFile(seed)); err == nil {
					delete(live, seed)
				}
			} else {
				if err := s.Put(item(seed, size)); err == nil {
					live[seed] = int64(size)
				}
			}
			var sum int64
			for _, v := range live {
				sum += v
			}
			if s.Used() != sum || s.Used() > s.Capacity() {
				t.Logf("op %d: used=%d sum=%d", i, s.Used(), sum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Cache

func TestCachePutGet(t *testing.T) {
	c := NewCache(100)
	it := item(1, 30)
	if !c.Put(it, 10) {
		t.Fatal("Put rejected")
	}
	got, ok := c.Get(it.Cert.FileID)
	if !ok || len(got.Data) != 30 {
		t.Fatal("Get missed")
	}
	if _, ok := c.Get(id.RandFile(99)); ok {
		t.Fatal("phantom hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestCacheRejectsOversizeAndEmpty(t *testing.T) {
	c := NewCache(100)
	if c.Put(item(1, 200), 1) {
		t.Fatal("oversize cached")
	}
	if c.Put(item(2, 0), 1) {
		t.Fatal("empty file cached")
	}
}

func TestCacheEvictsLowestWeight(t *testing.T) {
	c := NewCache(100)
	cheap := item(1, 50)
	dear := item(2, 50)
	c.Put(cheap, 1)   // weight 1/50
	c.Put(dear, 1000) // weight 20
	// Inserting a mid-value file forces one eviction: cheap must go.
	mid := item(3, 50)
	if !c.Put(mid, 100) { // weight 2 > cheap's, fits after evicting cheap
		t.Fatal("mid-value insert rejected")
	}
	if c.Has(cheap.Cert.FileID) {
		t.Fatal("cheap entry survived")
	}
	if !c.Has(dear.Cert.FileID) {
		t.Fatal("dear entry evicted")
	}
}

func TestCacheAdmissionRefusesWorthless(t *testing.T) {
	c := NewCache(100)
	c.Put(item(1, 50), 1000)
	c.Put(item(2, 50), 1000)
	// A low-value newcomer must not displace high-value residents.
	if c.Put(item(3, 50), 1) {
		t.Fatal("worthless newcomer displaced valuable entries")
	}
}

func TestCacheHitProtectsFromEviction(t *testing.T) {
	c := NewCache(100)
	a := item(1, 50)
	b := item(2, 50)
	c.Put(a, 10)
	c.Put(b, 10)
	// Hit `a` several times; when pressure comes, b should be evicted.
	for i := 0; i < 3; i++ {
		c.Get(a.Cert.FileID)
	}
	c.Put(item(3, 50), 10)
	if !c.Has(a.Cert.FileID) {
		t.Fatal("frequently hit entry evicted")
	}
}

func TestCacheResize(t *testing.T) {
	c := NewCache(100)
	c.Put(item(1, 40), 1)
	c.Put(item(2, 40), 2)
	c.Resize(50)
	if c.Used() > 50 {
		t.Fatalf("used %d after shrink", c.Used())
	}
	if c.Len() != 1 {
		t.Fatalf("len %d after shrink", c.Len())
	}
	c.Resize(-5)
	if c.Capacity() != 0 || c.Len() != 0 {
		t.Fatal("negative resize should clamp to zero and flush")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(100)
	it := item(1, 10)
	c.Put(it, 1)
	if !c.Invalidate(it.Cert.FileID) {
		t.Fatal("invalidate missed")
	}
	if c.Invalidate(it.Cert.FileID) {
		t.Fatal("double invalidate")
	}
	if c.Used() != 0 {
		t.Fatal("used after invalidate")
	}
}

func TestCacheReinsertRefreshesWeight(t *testing.T) {
	c := NewCache(100)
	it := item(1, 50)
	c.Put(it, 1)
	if !c.Put(it, 1000) {
		t.Fatal("re-put rejected")
	}
	if c.Len() != 1 || c.Used() != 50 {
		t.Fatal("re-put duplicated entry")
	}
	// Now it should survive pressure from a mid-value newcomer.
	if c.Put(item(2, 60), 10) {
		t.Fatal("newcomer should not fit without evicting the refreshed entry")
	}
}

func TestQuickCacheNeverOverflows(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache(1 << 12)
		for _, op := range ops {
			seed := uint64(op % 64)
			size := int(op%1500) + 1
			switch op % 4 {
			case 0:
				c.Get(id.RandFile(seed))
			case 1:
				c.Invalidate(id.RandFile(seed))
			case 2:
				c.Resize(int64(op%5000) + 1)
			default:
				c.Put(item(seed, size), float64(op%100))
			}
			if c.Used() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeRefSliceContains(t *testing.T) {
	refs := []wire.NodeRef{{ID: id.Rand(1)}, {ID: id.Rand(2)}}
	if !NodeRefSliceContains(refs, id.Rand(1)) {
		t.Fatal("missed present")
	}
	if NodeRefSliceContains(refs, id.Rand(3)) {
		t.Fatal("found absent")
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	c := NewCache(1 << 20)
	items := make([]Item, 256)
	for i := range items {
		items[i] = item(uint64(i), 1024)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%256]
		c.Put(it, float64(i%37))
		c.Get(it.Cert.FileID)
	}
}

func BenchmarkStorePut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewStore(1 << 30)
		_ = s.Put(item(uint64(i), 4096))
	}
}
