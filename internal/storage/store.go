// Package storage provides the per-node storage backends used by PAST: a
// capacity-accounted content store for primary and diverted replicas, and
// a GreedyDual-Size cache that soaks up the node's unused capacity
// (section 2.3 of the paper; policies follow the companion SOSP'01 paper).
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"past/internal/id"
	"past/internal/wire"
)

// Errors returned by the store.
var (
	ErrNoSpace   = errors.New("storage: insufficient free space")
	ErrNotFound  = errors.New("storage: file not found")
	ErrDuplicate = errors.New("storage: file already stored")
)

// Item is a stored file: its certificate plus content.
//
// Zero-copy convention: Data is shared, never copied. Callers hand
// ownership of the slice to the store (or cache) at Put and must treat
// the bytes as immutable from then on — the same rule package wire
// imposes on message payloads ("immutable after Send"). In the simulator
// every replica of one insert therefore aliases a single backing array;
// over the TCP transport the gob codec naturally materializes a fresh
// copy per process. Content authenticity never depends on this: every
// node re-checks Data against Cert.ContentHash before serving it.
type Item struct {
	Cert wire.FileCertificate
	Data []byte
	// Diverted marks replicas held on behalf of another node (replica
	// diversion, section 2.3).
	Diverted bool
	// Primary names the node responsible in nodeId space when Diverted.
	Primary wire.NodeRef
}

// Store is a capacity-accounted in-memory content store. It is safe for
// concurrent use.
type Store struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	files    map[id.File]*Item
	// pointers maps fileIds this node is responsible for to the node
	// actually holding the diverted replica.
	pointers map[id.File]wire.NodeRef
}

// NewStore creates a store with the given capacity in bytes.
func NewStore(capacity int64) *Store {
	return &Store{
		capacity: capacity,
		files:    make(map[id.File]*Item),
		pointers: make(map[id.File]wire.NodeRef),
	}
}

// Capacity returns the advertised capacity in bytes.
func (s *Store) Capacity() int64 { return s.capacity }

// Used returns the bytes consumed by stored replicas (not cache).
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Free returns capacity minus replica usage.
func (s *Store) Free() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity - s.used
}

// Utilization returns used/capacity in [0,1].
func (s *Store) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity == 0 {
		return 0
	}
	return float64(s.used) / float64(s.capacity)
}

// Len returns the number of stored files.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Put stores a file. It fails with ErrNoSpace if the content does not fit
// and ErrDuplicate if the fileId is already present. Put takes ownership
// of item.Data without copying (see Item); the caller must not mutate the
// slice afterwards.
func (s *Store) Put(item Item) error {
	size := int64(len(item.Data))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[item.Cert.FileID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, item.Cert.FileID.Short())
	}
	if s.used+size > s.capacity {
		return fmt.Errorf("%w: need %d, free %d", ErrNoSpace, size, s.capacity-s.used)
	}
	cp := item
	s.files[item.Cert.FileID] = &cp
	s.used += size
	return nil
}

// Get returns the stored item for f.
func (s *Store) Get(f id.File) (Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.files[f]
	if !ok {
		return Item{}, fmt.Errorf("%w: %s", ErrNotFound, f.Short())
	}
	return *it, nil
}

// Has reports whether f is stored (replica or diverted replica).
func (s *Store) Has(f id.File) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files[f]
	return ok
}

// Delete removes f and returns the freed byte count.
func (s *Store) Delete(f id.File) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	it, ok := s.files[f]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, f.Short())
	}
	size := int64(len(it.Data))
	delete(s.files, f)
	s.used -= size
	return size, nil
}

// Files returns the stored fileIds in deterministic (sorted) order.
func (s *Store) Files() []id.File {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]id.File, 0, len(s.files))
	for f := range s.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Items returns copies of all stored items in Files() order.
func (s *Store) Items() []Item {
	files := s.Files()
	out := make([]Item, 0, len(files))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range files {
		if it, ok := s.files[f]; ok {
			out = append(out, *it)
		}
	}
	return out
}

// SetPointer records that this node's replica responsibility for f is
// delegated to holder.
func (s *Store) SetPointer(f id.File, holder wire.NodeRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pointers[f] = holder
}

// Pointer returns the diversion target for f, if any.
func (s *Store) Pointer(f id.File) (wire.NodeRef, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.pointers[f]
	return r, ok
}

// DeletePointer removes a diversion pointer, reporting whether it existed.
func (s *Store) DeletePointer(f id.File) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pointers[f]
	delete(s.pointers, f)
	return ok
}

// Pointers returns all diversion pointers (fileId → holder).
func (s *Store) Pointers() map[id.File]wire.NodeRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[id.File]wire.NodeRef, len(s.pointers))
	for k, v := range s.pointers {
		out[k] = v
	}
	return out
}
