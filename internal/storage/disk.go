package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"past/internal/id"
	"past/internal/wire"
)

// DiskStore persists a Store's contents under a directory so a storage
// node can restart without losing its replicas (the paper's storage nodes
// are long-lived disks; the simulator uses the in-memory Store).
//
// Layout: one <fileId>.bin per file plus a <fileId>.json sidecar holding
// the certificate and diversion metadata. Writes go through a temp file +
// rename so a crash mid-write never leaves a half-visible file.
type DiskStore struct {
	dir string
	mem *Store // capacity accounting and index over the on-disk set
}

type diskMeta struct {
	Cert     wire.FileCertificate `json:"cert"`
	Diverted bool                 `json:"diverted"`
	Primary  wire.NodeRef         `json:"primary"`
}

// VerifyFunc re-checks one entry recovered from disk before it is served
// again. Returning an error quarantines the entry. The hook keeps this
// package free of crypto: the caller (the node) supplies certificate and
// content-hash verification from seccrypt.
type VerifyFunc func(cert wire.FileCertificate, data []byte) error

// RecoveryReport summarizes what a disk-store open found on disk.
type RecoveryReport struct {
	Recovered   int // entries re-verified and indexed
	Quarantined int // corrupt or unverifiable entries set aside
}

// OpenDiskStore opens (creating if needed) a disk store rooted at dir with
// the given capacity. Existing contents are indexed and count against the
// capacity; corrupt entries are skipped.
func OpenDiskStore(dir string, capacity int64) (*DiskStore, error) {
	ds, _, err := OpenDiskStoreVerify(dir, capacity, nil)
	return ds, err
}

// OpenDiskStoreVerify is OpenDiskStore with crash recovery: every entry on
// disk is reloaded, size-checked, and passed through verify (when
// non-nil) before being served again. Entries that fail — truncated by a
// crash, bit-rotted, or with a certificate that no longer checks out —
// are quarantined by renaming them with a .corrupt suffix so they stop
// being served but remain on disk for inspection. Half-written .tmp files
// left by a crash mid-write are removed.
func OpenDiskStoreVerify(dir string, capacity int64, verify VerifyFunc) (*DiskStore, RecoveryReport, error) {
	var rep RecoveryReport
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rep, fmt.Errorf("storage: open disk store: %w", err)
	}
	ds := &DiskStore{dir: dir, mem: NewStore(capacity)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, rep, fmt.Errorf("storage: scan disk store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck // crash debris
			continue
		}
		if filepath.Ext(name) != ".json" {
			continue
		}
		base := name[:len(name)-len(".json")]
		meta, data, err := ds.load(base)
		if err == nil && verify != nil {
			err = verify(meta.Cert, data)
		}
		if err != nil {
			ds.quarantine(base)
			rep.Quarantined++
			continue
		}
		if ds.mem.Put(Item{Cert: meta.Cert, Data: data, Diverted: meta.Diverted, Primary: meta.Primary}) == nil {
			rep.Recovered++
		}
	}
	return ds, rep, nil
}

// quarantine renames base's .bin/.json pair with a .corrupt suffix so the
// entry is no longer loaded but stays available for post-mortem.
func (ds *DiskStore) quarantine(base string) {
	for _, ext := range []string{".bin", ".json"} {
		p := filepath.Join(ds.dir, base+ext)
		os.Rename(p, p+".corrupt") //nolint:errcheck // best-effort; a missing half is already unservable
	}
}

// Dir returns the store's root directory.
func (ds *DiskStore) Dir() string { return ds.dir }

// Mem returns the in-memory index (capacity, utilization, lookups run
// against it; its contents mirror the directory).
func (ds *DiskStore) Mem() *Store { return ds.mem }

func (ds *DiskStore) paths(f id.File) (bin, meta string) {
	name := f.String()
	return filepath.Join(ds.dir, name+".bin"), filepath.Join(ds.dir, name+".json")
}

// Put stores an item durably, then indexes it.
func (ds *DiskStore) Put(item Item) error {
	if err := ds.mem.Put(item); err != nil {
		return err
	}
	if err := ds.persist(item); err != nil {
		ds.mem.Delete(item.Cert.FileID) //nolint:errcheck // rollback of a just-inserted key
		return err
	}
	return nil
}

func (ds *DiskStore) persist(item Item) error {
	bin, meta := ds.paths(item.Cert.FileID)
	if err := atomicWrite(bin, item.Data); err != nil {
		return err
	}
	m, err := json.Marshal(diskMeta{Cert: item.Cert, Diverted: item.Diverted, Primary: item.Primary})
	if err != nil {
		return err
	}
	return atomicWrite(meta, m)
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write %s: %w", path, err)
	}
	return os.Rename(tmp, path)
}

func (ds *DiskStore) load(name string) (diskMeta, []byte, error) {
	var meta diskMeta
	mb, err := os.ReadFile(filepath.Join(ds.dir, name+".json"))
	if err != nil {
		return meta, nil, err
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		return meta, nil, err
	}
	data, err := os.ReadFile(filepath.Join(ds.dir, name+".bin"))
	if err != nil {
		return meta, nil, err
	}
	if int64(len(data)) != meta.Cert.Size {
		return meta, nil, fmt.Errorf("storage: %s: size mismatch", name)
	}
	return meta, data, nil
}

// Get returns the stored item for f (served from the in-memory index).
func (ds *DiskStore) Get(f id.File) (Item, error) { return ds.mem.Get(f) }

// Has reports whether f is stored.
func (ds *DiskStore) Has(f id.File) bool { return ds.mem.Has(f) }

// Delete removes f from disk and index, returning the freed bytes.
func (ds *DiskStore) Delete(f id.File) (int64, error) {
	freed, err := ds.mem.Delete(f)
	if err != nil {
		return 0, err
	}
	bin, meta := ds.paths(f)
	os.Remove(bin)  //nolint:errcheck // removal is best-effort after de-indexing
	os.Remove(meta) //nolint:errcheck
	return freed, nil
}

// Files lists stored fileIds in sorted order.
func (ds *DiskStore) Files() []id.File { return ds.mem.Files() }
