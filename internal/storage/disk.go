package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"past/internal/id"
	"past/internal/wire"
)

// DiskStore persists a Store's contents under a directory so a storage
// node can restart without losing its replicas (the paper's storage nodes
// are long-lived disks; the simulator uses the in-memory Store).
//
// Layout: one <fileId>.bin per file plus a <fileId>.json sidecar holding
// the certificate and diversion metadata. Writes go through a temp file +
// rename so a crash mid-write never leaves a half-visible file.
type DiskStore struct {
	dir string
	mem *Store // capacity accounting and index over the on-disk set
}

type diskMeta struct {
	Cert     wire.FileCertificate `json:"cert"`
	Diverted bool                 `json:"diverted"`
	Primary  wire.NodeRef         `json:"primary"`
}

// OpenDiskStore opens (creating if needed) a disk store rooted at dir with
// the given capacity. Existing contents are indexed and count against the
// capacity; files that exceed it are not loaded.
func OpenDiskStore(dir string, capacity int64) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open disk store: %w", err)
	}
	ds := &DiskStore{dir: dir, mem: NewStore(capacity)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: scan disk store: %w", err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		meta, data, err := ds.load(e.Name()[:len(e.Name())-len(".json")])
		if err != nil {
			continue // skip corrupt entries; they are not served
		}
		_ = ds.mem.Put(Item{Cert: meta.Cert, Data: data, Diverted: meta.Diverted, Primary: meta.Primary})
	}
	return ds, nil
}

// Dir returns the store's root directory.
func (ds *DiskStore) Dir() string { return ds.dir }

// Mem returns the in-memory index (capacity, utilization, lookups run
// against it; its contents mirror the directory).
func (ds *DiskStore) Mem() *Store { return ds.mem }

func (ds *DiskStore) paths(f id.File) (bin, meta string) {
	name := f.String()
	return filepath.Join(ds.dir, name+".bin"), filepath.Join(ds.dir, name+".json")
}

// Put stores an item durably, then indexes it.
func (ds *DiskStore) Put(item Item) error {
	if err := ds.mem.Put(item); err != nil {
		return err
	}
	if err := ds.persist(item); err != nil {
		ds.mem.Delete(item.Cert.FileID) //nolint:errcheck // rollback of a just-inserted key
		return err
	}
	return nil
}

func (ds *DiskStore) persist(item Item) error {
	bin, meta := ds.paths(item.Cert.FileID)
	if err := atomicWrite(bin, item.Data); err != nil {
		return err
	}
	m, err := json.Marshal(diskMeta{Cert: item.Cert, Diverted: item.Diverted, Primary: item.Primary})
	if err != nil {
		return err
	}
	return atomicWrite(meta, m)
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write %s: %w", path, err)
	}
	return os.Rename(tmp, path)
}

func (ds *DiskStore) load(name string) (diskMeta, []byte, error) {
	var meta diskMeta
	mb, err := os.ReadFile(filepath.Join(ds.dir, name+".json"))
	if err != nil {
		return meta, nil, err
	}
	if err := json.Unmarshal(mb, &meta); err != nil {
		return meta, nil, err
	}
	data, err := os.ReadFile(filepath.Join(ds.dir, name+".bin"))
	if err != nil {
		return meta, nil, err
	}
	if int64(len(data)) != meta.Cert.Size {
		return meta, nil, fmt.Errorf("storage: %s: size mismatch", name)
	}
	return meta, data, nil
}

// Get returns the stored item for f (served from the in-memory index).
func (ds *DiskStore) Get(f id.File) (Item, error) { return ds.mem.Get(f) }

// Has reports whether f is stored.
func (ds *DiskStore) Has(f id.File) bool { return ds.mem.Has(f) }

// Delete removes f from disk and index, returning the freed bytes.
func (ds *DiskStore) Delete(f id.File) (int64, error) {
	freed, err := ds.mem.Delete(f)
	if err != nil {
		return 0, err
	}
	bin, meta := ds.paths(f)
	os.Remove(bin)  //nolint:errcheck // removal is best-effort after de-indexing
	os.Remove(meta) //nolint:errcheck
	return freed, nil
}

// Files lists stored fileIds in sorted order.
func (ds *DiskStore) Files() []id.File { return ds.mem.Files() }
