package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"past/internal/id"
	"past/internal/wire"
)

func diskItem(seed uint64, size int) Item {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(seed + uint64(i))
	}
	return Item{
		Cert: wire.FileCertificate{FileID: id.RandFile(seed), Size: int64(size)},
		Data: data,
	}
}

func TestDiskStorePutGetDelete(t *testing.T) {
	ds, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	it := diskItem(1, 100)
	if err := ds.Put(it); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Get(it.Cert.FileID)
	if err != nil || string(got.Data) != string(it.Data) {
		t.Fatalf("Get: %v", err)
	}
	if !ds.Has(it.Cert.FileID) || len(ds.Files()) != 1 {
		t.Fatal("index wrong")
	}
	freed, err := ds.Delete(it.Cert.FileID)
	if err != nil || freed != 100 {
		t.Fatalf("Delete: %d %v", freed, err)
	}
	if ds.Has(it.Cert.FileID) {
		t.Fatal("still present")
	}
	// Files removed from disk too.
	entries, _ := os.ReadDir(ds.Dir())
	if len(entries) != 0 {
		t.Fatalf("%d stray files on disk", len(entries))
	}
}

func TestDiskStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{diskItem(1, 64), diskItem(2, 128)}
	items[1].Diverted = true
	items[1].Primary = wire.NodeRef{ID: id.Rand(9), Addr: "sim:9"}
	for _, it := range items {
		if err := ds.Put(it); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen: everything must come back, including diversion metadata.
	ds2, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Mem().Used() != 64+128 {
		t.Fatalf("used after restart = %d", ds2.Mem().Used())
	}
	got, err := ds2.Get(items[1].Cert.FileID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Diverted || got.Primary.ID != id.Rand(9) {
		t.Fatal("diversion metadata lost across restart")
	}
	if string(got.Data) != string(items[1].Data) {
		t.Fatal("content corrupted across restart")
	}
}

func TestDiskStoreSkipsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	ds, _ := OpenDiskStore(dir, 1<<20)
	it := diskItem(3, 50)
	ds.Put(it)
	// Truncate the binary: size check must reject it on reload.
	bin := filepath.Join(dir, it.Cert.FileID.String()+".bin")
	if err := os.WriteFile(bin, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds2, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Has(it.Cert.FileID) {
		t.Fatal("corrupt entry served")
	}
}

func TestDiskStoreVerifyQuarantines(t *testing.T) {
	dir := t.TempDir()
	ds, _ := OpenDiskStore(dir, 1<<20)
	good, bad := diskItem(1, 40), diskItem(2, 40)
	ds.Put(good)
	ds.Put(bad)
	// Same length, flipped content: the size check alone cannot catch it.
	flipped := append([]byte(nil), bad.Data...)
	flipped[7] ^= 0xff
	bin := filepath.Join(dir, bad.Cert.FileID.String()+".bin")
	if err := os.WriteFile(bin, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	// Leave crash debris behind too.
	if err := os.WriteFile(filepath.Join(dir, "half.bin.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	verify := func(cert wire.FileCertificate, data []byte) error {
		want := diskItem(uint64(data[0]), len(data)) // reconstruct expected pattern from first byte
		if string(data) != string(want.Data) {
			return errors.New("content mismatch")
		}
		return nil
	}
	ds2, rep, err := OpenDiskStoreVerify(dir, 1<<20, verify)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 1 || rep.Quarantined != 1 {
		t.Fatalf("report = %+v, want 1 recovered / 1 quarantined", rep)
	}
	if !ds2.Has(good.Cert.FileID) || ds2.Has(bad.Cert.FileID) {
		t.Fatal("wrong entries served after verify")
	}
	// The corrupt pair is renamed aside, not deleted; the .tmp is gone.
	if _, err := os.Stat(bin + ".corrupt"); err != nil {
		t.Fatalf("quarantined bin missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "half.bin.tmp")); !os.IsNotExist(err) {
		t.Fatal("crash debris .tmp not cleaned up")
	}
	// A re-open must not resurrect the quarantined entry.
	ds3, rep3, err := OpenDiskStoreVerify(dir, 1<<20, verify)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Recovered != 1 || rep3.Quarantined != 0 || ds3.Has(bad.Cert.FileID) {
		t.Fatalf("second open report = %+v", rep3)
	}
}

func TestDiskStoreCapacity(t *testing.T) {
	ds, _ := OpenDiskStore(t.TempDir(), 100)
	if err := ds.Put(diskItem(1, 60)); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put(diskItem(2, 60)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overflow accepted: %v", err)
	}
	if err := ds.Put(diskItem(1, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate accepted: %v", err)
	}
}

func TestDiskStoreNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	ds, _ := OpenDiskStore(dir, 1<<20)
	for i := 0; i < 5; i++ {
		ds.Put(diskItem(uint64(i), 32))
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
	if len(entries) != 10 { // 5 × (.bin + .json)
		t.Fatalf("expected 10 files, found %d", len(entries))
	}
}
