package past_test

import (
	"errors"
	"fmt"
	"testing"

	"past/internal/cluster"
	"past/internal/id"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/simnet"
)

// pastCluster bundles a simulated network of PAST nodes with their cards.
type pastCluster struct {
	*cluster.Cluster
	Broker *seccrypt.Broker
	Cards  []*seccrypt.Smartcard
	PAST   []*past.Node
}

func buildPAST(t testing.TB, n int, seed int64, cfg past.Config, mut func(*cluster.Options)) *pastCluster {
	t.Helper()
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(uint64(seed) + 1))
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	cards := make([]*seccrypt.Smartcard, n)
	for i := range cards {
		cards[i], err = broker.IssueCard(1<<40, cfg.Capacity, 0, seccrypt.DetRand(uint64(seed)<<20+uint64(i)+7))
		if err != nil {
			t.Fatalf("IssueCard: %v", err)
		}
	}
	pnodes := make([]*past.Node, n)
	opts := cluster.Options{
		N:      n,
		Pastry: pastry.DefaultConfig(),
		Seed:   seed,
		NodeID: func(i int) id.Node { return cards[i].NodeID() },
		AppFactory: func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App {
			pnodes[i] = past.NewNode(cfg, nd, cards[i], broker.PublicKey())
			return pnodes[i]
		},
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := cluster.Build(opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return &pastCluster{Cluster: c, Broker: broker, Cards: cards, PAST: pnodes}
}

// insert runs a synchronous insert through the simulator.
func (pc *pastCluster) insert(t testing.TB, node int, card *seccrypt.Smartcard, name string, data []byte, k int) past.InsertResult {
	t.Helper()
	var res *past.InsertResult
	pc.PAST[node].Insert(card, name, data, k, func(r past.InsertResult) { res = &r })
	pc.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil {
		t.Fatal("insert never completed")
	}
	return *res
}

func (pc *pastCluster) lookup(t testing.TB, node int, f id.File) past.LookupResult {
	t.Helper()
	var res *past.LookupResult
	pc.PAST[node].Lookup(f, func(r past.LookupResult) { res = &r })
	pc.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil {
		t.Fatal("lookup never completed")
	}
	return *res
}

func (pc *pastCluster) reclaim(t testing.TB, node int, card *seccrypt.Smartcard, f id.File) past.ReclaimResult {
	t.Helper()
	var res *past.ReclaimResult
	pc.PAST[node].Reclaim(card, f, func(r past.ReclaimResult) { res = &r })
	pc.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil {
		t.Fatal("reclaim never completed")
	}
	return *res
}

func defaultCfg() past.Config {
	cfg := past.DefaultConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	return cfg
}

func TestInsertAndLookup(t *testing.T) {
	pc := buildPAST(t, 24, 100, defaultCfg(), nil)
	data := []byte("PAST stores this file with k replicas")
	res := pc.insert(t, 0, pc.Cards[0], "doc.txt", data, 3)
	if res.Err != nil {
		t.Fatalf("insert: %v", res.Err)
	}
	if len(res.Receipts) < 3 {
		t.Fatalf("got %d receipts, want 3", len(res.Receipts))
	}
	// Lookup from a different node.
	lr := pc.lookup(t, 17, res.FileID)
	if lr.Err != nil {
		t.Fatalf("lookup: %v", lr.Err)
	}
	if string(lr.Data) != string(data) {
		t.Fatal("lookup returned wrong content")
	}
}

func TestReplicasLandOnKClosestNodes(t *testing.T) {
	pc := buildPAST(t, 32, 101, defaultCfg(), nil)
	res := pc.insert(t, 5, pc.Cards[5], "placement.bin", make([]byte, 2048), 3)
	if res.Err != nil {
		t.Fatalf("insert: %v", res.Err)
	}
	want := pc.KClosest(res.FileID.Key(), 3)
	wantSet := make(map[id.Node]bool, 3)
	for _, w := range want {
		wantSet[w.ID] = true
	}
	stored := 0
	for i, pn := range pc.PAST {
		if pn.Store().Has(res.FileID) {
			if !wantSet[pc.Nodes[i].ID()] {
				t.Errorf("replica on node %s not among 3 closest", pc.Nodes[i].ID().Short())
			}
			stored++
		}
	}
	if stored != 3 {
		t.Fatalf("found %d stored replicas, want 3", stored)
	}
	// Receipts must come from nodes with adjacent nodeIds — exactly the
	// wantSet (section 2.1: the client verifies this).
	for _, r := range res.Receipts {
		if !wantSet[r.StoredBy.ID] {
			t.Errorf("receipt from unexpected node %s", r.StoredBy.ID.Short())
		}
	}
}

func TestLookupVerifiesAuthenticity(t *testing.T) {
	pc := buildPAST(t, 16, 102, defaultCfg(), nil)
	res := pc.insert(t, 0, pc.Cards[0], "auth.txt", []byte("authentic content"), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Corrupt every stored replica; the client's verification must fail.
	// Store.Put is zero-copy, so all replicas alias one backing array:
	// give each node its own corrupted copy instead of XOR-ing the shared
	// bytes in place (an even number of in-place flips would cancel out).
	corrupted := append([]byte(nil), []byte("authentic content")...)
	corrupted[0] ^= 0xFF
	for _, pn := range pc.PAST {
		if pn.Store().Has(res.FileID) {
			it, _ := pn.Store().Get(res.FileID)
			it.Data = append([]byte(nil), corrupted...)
			pn.Store().Delete(res.FileID)
			pn.Store().Put(it)
		}
		pn.Cache().Invalidate(res.FileID)
	}
	lr := pc.lookup(t, 9, res.FileID)
	if lr.Err == nil {
		t.Fatal("corrupted content passed client verification")
	}
}

func TestLookupMiss(t *testing.T) {
	pc := buildPAST(t, 12, 103, defaultCfg(), nil)
	lr := pc.lookup(t, 2, id.RandFile(987654))
	if !errors.Is(lr.Err, past.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", lr.Err)
	}
}

func TestImmutabilityDuplicateFileID(t *testing.T) {
	// Same name, owner and salt would collide, but Insert draws a fresh
	// salt per attempt so re-inserting the same name yields a distinct
	// fileId (files are immutable; nothing is overwritten).
	pc := buildPAST(t, 16, 104, defaultCfg(), nil)
	r1 := pc.insert(t, 0, pc.Cards[0], "same-name", []byte("v1"), 3)
	r2 := pc.insert(t, 0, pc.Cards[0], "same-name", []byte("v2"), 3)
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("inserts failed: %v %v", r1.Err, r2.Err)
	}
	if r1.FileID == r2.FileID {
		t.Fatal("re-insert reused fileId")
	}
	a := pc.lookup(t, 3, r1.FileID)
	b := pc.lookup(t, 3, r2.FileID)
	if string(a.Data) != "v1" || string(b.Data) != "v2" {
		t.Fatal("versions confused")
	}
}

func TestReclaimFreesAndCredits(t *testing.T) {
	pc := buildPAST(t, 20, 105, defaultCfg(), nil)
	data := make([]byte, 4096)
	quotaBefore := pc.Cards[0].RemainingQuota()
	res := pc.insert(t, 0, pc.Cards[0], "temp.bin", data, 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if pc.Cards[0].RemainingQuota() != quotaBefore-3*4096 {
		t.Fatalf("quota not debited correctly: %d", quotaBefore-pc.Cards[0].RemainingQuota())
	}
	rr := pc.reclaim(t, 0, pc.Cards[0], res.FileID)
	if rr.Err != nil {
		t.Fatalf("reclaim: %v", rr.Err)
	}
	if rr.Freed == 0 {
		t.Fatal("no storage freed")
	}
	// All replicas gone.
	for i, pn := range pc.PAST {
		if pn.Store().Has(res.FileID) {
			t.Errorf("node %d still stores reclaimed file", i)
		}
	}
	// Quota credited for each freed replica.
	if pc.Cards[0].RemainingQuota() != quotaBefore-3*4096+rr.Freed {
		t.Fatalf("quota after reclaim: %d, freed %d", pc.Cards[0].RemainingQuota(), rr.Freed)
	}
}

func TestReclaimByNonOwnerIgnored(t *testing.T) {
	pc := buildPAST(t, 20, 106, defaultCfg(), nil)
	res := pc.insert(t, 0, pc.Cards[0], "mine.bin", make([]byte, 1024), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rr := pc.reclaim(t, 4, pc.Cards[4], res.FileID)
	if rr.Err == nil {
		t.Fatal("non-owner reclaim produced receipts")
	}
	lr := pc.lookup(t, 8, res.FileID)
	if lr.Err != nil {
		t.Fatalf("file should survive unauthorized reclaim: %v", lr.Err)
	}
}

func TestQuotaEnforcedEndToEnd(t *testing.T) {
	pc := buildPAST(t, 12, 107, defaultCfg(), nil)
	broker := pc.Broker
	small, err := broker.IssueCard(1000, 0, 0, seccrypt.DetRand(424242))
	if err != nil {
		t.Fatal(err)
	}
	// 400 bytes × 3 replicas = 1200 > 1000: the card must refuse.
	var res *past.InsertResult
	pc.PAST[0].Insert(small, "big.bin", make([]byte, 400), 3, func(r past.InsertResult) { res = &r })
	pc.Net.RunUntil(func() bool { return res != nil }, 10_000_000)
	if res == nil || res.Err == nil {
		t.Fatal("over-quota insert succeeded")
	}
	if !errors.Is(res.Err, seccrypt.ErrQuotaExceeded) {
		t.Fatalf("want quota error, got %v", res.Err)
	}
	// 300 × 3 = 900 fits.
	ok := pc.insert(t, 0, small, "ok.bin", make([]byte, 300), 3)
	if ok.Err != nil {
		t.Fatalf("within-quota insert failed: %v", ok.Err)
	}
	if small.RemainingQuota() != 100 {
		t.Fatalf("remaining quota %d, want 100", small.RemainingQuota())
	}
}

func TestPersistenceAfterFailures(t *testing.T) {
	cfg := defaultCfg()
	pc := buildPAST(t, 30, 108, cfg, func(o *cluster.Options) {
		o.Pastry.KeepAlive = 500_000_000 // 500ms
		o.Pastry.FailTimeout = 1_500_000_000
	})
	pc.EnableProbes()
	res := pc.insert(t, 0, pc.Cards[0], "precious.bin", []byte("survive me"), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Kill one replica holder; the file must stay available immediately
	// (k-1 copies remain reachable along the route).
	killed := 0
	for i, pn := range pc.PAST {
		if pn.Store().Has(res.FileID) {
			pc.Crash(i)
			killed++
			break
		}
	}
	if killed == 0 {
		t.Fatal("no replica holder found")
	}
	lr := pc.lookup(t, 11, res.FileID)
	if lr.Err != nil {
		t.Fatalf("file unavailable after one failure: %v", lr.Err)
	}
	// Let failure detection and re-replication run; afterwards k live
	// replicas must exist again.
	pc.RunSettle(20_000_000_000) // 20s virtual
	live := 0
	for i, pn := range pc.PAST {
		if !pc.Down(i) && pn.Store().Has(res.FileID) {
			live++
		}
	}
	if live < 3 {
		t.Fatalf("replication not restored: %d live replicas, want >= 3", live)
	}
}

func TestNewNodeReceivesReplicasForItsKeyspace(t *testing.T) {
	cfg := defaultCfg()
	pc := buildPAST(t, 20, 109, cfg, nil)
	res := pc.insert(t, 0, pc.Cards[0], "adopt.bin", make([]byte, 512), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Join a new node whose id is engineered to be the numerically
	// closest to the fileId: it must receive a replica.
	newID := res.FileID.Key() // exactly the key: always closest
	card, _ := pc.Broker.IssueCard(1<<30, cfg.Capacity, 0, seccrypt.DetRand(5150))
	pc.Topo.Place()
	ep := pc.Net.NewEndpoint()
	pcfg := pc.Opts.Pastry
	nd := pastry.New(pcfg, newID, ep, pc.Net.Clock(), nil)
	pnew := past.NewNode(cfg, nd, card, pc.Broker.PublicKey())
	done := false
	nd.Join(simnet.Addr(0), func(error) { done = true })
	pc.Net.RunUntil(func() bool { return done }, 50_000_000)
	pc.Net.RunUntilIdle()
	if !pnew.Store().Has(res.FileID) {
		t.Fatal("new closest node did not receive the replica")
	}
}

func TestAuditPeer(t *testing.T) {
	pc := buildPAST(t, 16, 110, defaultCfg(), nil)
	res := pc.insert(t, 0, pc.Cards[0], "audited.bin", []byte("prove you store me"), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Find two holders: one audits the other.
	var holders []int
	for i, pn := range pc.PAST {
		if pn.Store().Has(res.FileID) {
			holders = append(holders, i)
		}
	}
	if len(holders) < 2 {
		t.Fatalf("need 2 holders, have %d", len(holders))
	}
	auditor, target := holders[0], holders[1]
	var verdict *bool
	err := pc.PAST[auditor].AuditPeer(pc.Nodes[target].Ref(), res.FileID, func(ok bool) { verdict = &ok })
	if err != nil {
		t.Fatal(err)
	}
	pc.Net.RunUntil(func() bool { return verdict != nil }, 10_000_000)
	if verdict == nil || !*verdict {
		t.Fatal("honest holder failed audit")
	}
	// A cheating node (discarded the file) fails the audit.
	pc.PAST[target].Store().Delete(res.FileID)
	pc.PAST[target].Cache().Invalidate(res.FileID)
	verdict = nil
	if err := pc.PAST[auditor].AuditPeer(pc.Nodes[target].Ref(), res.FileID, func(ok bool) { verdict = &ok }); err != nil {
		t.Fatal(err)
	}
	pc.Net.RunUntil(func() bool { return verdict != nil }, 10_000_000)
	if verdict == nil || *verdict {
		t.Fatal("cheater passed audit")
	}
}

func TestCachingServesFromCloser(t *testing.T) {
	cfg := defaultCfg()
	cfg.Caching = true
	pc := buildPAST(t, 40, 111, cfg, nil)
	res := pc.insert(t, 0, pc.Cards[0], "popular.bin", make([]byte, 256), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Repeated lookups from the same client should eventually hit caches.
	cachedSeen := false
	for i := 0; i < 10; i++ {
		lr := pc.lookup(t, 33, res.FileID)
		if lr.Err != nil {
			t.Fatalf("lookup %d: %v", i, lr.Err)
		}
		if lr.Cached {
			cachedSeen = true
			break
		}
	}
	if !cachedSeen {
		t.Fatal("no lookup was served from cache")
	}
}

func TestCachingDisabled(t *testing.T) {
	cfg := defaultCfg()
	cfg.Caching = false
	pc := buildPAST(t, 20, 112, cfg, nil)
	res := pc.insert(t, 0, pc.Cards[0], "cold.bin", make([]byte, 256), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i := 0; i < 5; i++ {
		lr := pc.lookup(t, 13, res.FileID)
		if lr.Err != nil {
			t.Fatal(lr.Err)
		}
		if lr.Cached {
			t.Fatal("cache hit despite caching disabled")
		}
	}
	for _, pn := range pc.PAST {
		if pn.Cache().Len() != 0 {
			t.Fatal("cache populated despite caching disabled")
		}
	}
}

func TestReplicaDiversionWhenNodeFull(t *testing.T) {
	cfg := defaultCfg()
	cfg.Capacity = 8 << 10 // tiny nodes: 8 KiB
	cfg.TPri = 0.5
	cfg.TDiv = 0.5
	cfg.FileDiversion = false // isolate replica diversion
	pc := buildPAST(t, 24, 113, cfg, nil)
	// Fill the network until some primaries must divert.
	diverted := 0
	for i := 0; i < 60; i++ {
		res := pc.insert(t, i%24, pc.Cards[i%24], fmt.Sprintf("fill-%d", i), make([]byte, 1024), 3)
		if res.Err != nil {
			continue
		}
		diverted += res.Diverted
	}
	totalDiverted := 0
	for _, pn := range pc.PAST {
		totalDiverted += pn.Stats().DivertedStores
	}
	if totalDiverted == 0 {
		t.Fatal("no replica diversion occurred despite full nodes")
	}
	// Diverted files must remain retrievable (pointer chase).
	if diverted > 0 {
		t.Logf("receipts marked diverted: %d, diverted stores: %d", diverted, totalDiverted)
	}
}

func TestDivertedFileRetrievable(t *testing.T) {
	cfg := defaultCfg()
	cfg.Capacity = 8 << 10
	cfg.TPri = 0.5
	cfg.TDiv = 0.5
	cfg.FileDiversion = false
	pc := buildPAST(t, 24, 114, cfg, nil)
	var divertedFile *id.File
	for i := 0; i < 80 && divertedFile == nil; i++ {
		res := pc.insert(t, i%24, pc.Cards[i%24], fmt.Sprintf("d-%d", i), make([]byte, 1024), 3)
		if res.Err == nil && res.Diverted > 0 {
			f := res.FileID
			divertedFile = &f
		}
	}
	if divertedFile == nil {
		t.Skip("no diverted insert produced in this run")
	}
	lr := pc.lookup(t, 7, *divertedFile)
	if lr.Err != nil {
		t.Fatalf("diverted file not retrievable: %v", lr.Err)
	}
}

func TestFileDiversionRetries(t *testing.T) {
	cfg := defaultCfg()
	cfg.Capacity = 4 << 10
	cfg.TPri = 1.0
	cfg.TDiv = 1.0
	cfg.ReplicaDiversion = false
	cfg.FileDiversion = true
	cfg.MaxRetries = 3
	cfg.RequestTimeout = 5_000_000_000 // 5s virtual
	pc := buildPAST(t, 16, 115, cfg, nil)
	// Fill most nodes almost completely so first attempts often fail.
	for i := 0; i < 40; i++ {
		pc.insert(t, i%16, pc.Cards[i%16], fmt.Sprintf("fill-%d", i), make([]byte, 3<<10), 1)
	}
	// Now a 2 KiB file may be rejected at full roots and succeed after
	// re-salting toward an emptier region.
	retried := false
	for i := 0; i < 20 && !retried; i++ {
		res := pc.insert(t, 3, pc.Cards[3], fmt.Sprintf("retry-%d", i), make([]byte, 2<<10), 1)
		if res.Err == nil && res.Retries > 0 {
			retried = true
		}
	}
	if !retried {
		t.Skip("no insert needed file diversion in this run; utilization too low")
	}
}

func TestInsertRejectAfterRetriesRefundsQuota(t *testing.T) {
	cfg := defaultCfg()
	cfg.Capacity = 2 << 10
	cfg.ReplicaDiversion = false
	cfg.FileDiversion = true
	cfg.MaxRetries = 2
	cfg.RequestTimeout = 5_000_000_000
	pc := buildPAST(t, 8, 116, cfg, nil)
	quotaBefore := pc.Cards[0].RemainingQuota()
	// A file bigger than any node's capacity can never be stored.
	res := pc.insert(t, 0, pc.Cards[0], "whale.bin", make([]byte, 4<<10), 3)
	if res.Err == nil {
		t.Fatal("impossible insert succeeded")
	}
	if res.Retries != 2 {
		t.Fatalf("retries = %d, want 2", res.Retries)
	}
	if pc.Cards[0].RemainingQuota() != quotaBefore {
		t.Fatalf("quota leaked: %d != %d", pc.Cards[0].RemainingQuota(), quotaBefore)
	}
}

func TestStatsAccumulate(t *testing.T) {
	pc := buildPAST(t, 16, 117, defaultCfg(), nil)
	res := pc.insert(t, 0, pc.Cards[0], "s.bin", make([]byte, 128), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	pc.lookup(t, 9, res.FileID)
	primaries, served := 0, 0
	for _, pn := range pc.PAST {
		st := pn.Stats()
		primaries += st.PrimaryStores
		served += st.LookupsServed
	}
	if primaries != 3 {
		t.Fatalf("PrimaryStores total = %d, want 3", primaries)
	}
	if served == 0 {
		t.Fatal("no lookups recorded")
	}
}

func TestVariableReplicationFactors(t *testing.T) {
	// Section 2: "The replication factor k depends on the availability
	// and persistence requirements of the file and may vary between
	// files."
	pc := buildPAST(t, 24, 118, defaultCfg(), nil)
	for _, k := range []int{1, 2, 5} {
		res := pc.insert(t, 0, pc.Cards[0], fmt.Sprintf("k%d.bin", k), make([]byte, 512), k)
		if res.Err != nil {
			t.Fatalf("k=%d insert: %v", k, res.Err)
		}
		if len(res.Receipts) != k {
			t.Fatalf("k=%d: got %d receipts", k, len(res.Receipts))
		}
		stored := 0
		for _, pn := range pc.PAST {
			if pn.Store().Has(res.FileID) {
				stored++
			}
		}
		if stored != k {
			t.Fatalf("k=%d: %d replicas stored", k, stored)
		}
	}
}

func TestZeroCapacityClientNode(t *testing.T) {
	// Per section 1, nodes only "optionally" contribute storage. A
	// zero-capacity node must participate in routing and client
	// operations without ever storing replicas.
	cfg := defaultCfg()
	pc := buildPAST(t, 16, 119, cfg, nil)
	// Add a 17th node with zero capacity.
	card, err := pc.Broker.IssueCard(1<<30, 0, 0, seccrypt.DetRand(777))
	if err != nil {
		t.Fatal(err)
	}
	pc.Topo.Place()
	ep := pc.Net.NewEndpoint()
	zeroCfg := cfg
	zeroCfg.Capacity = 0
	nd := pastry.New(pc.Opts.Pastry, card.NodeID(), ep, pc.Net.Clock(), nil)
	client := past.NewNode(zeroCfg, nd, card, pc.Broker.PublicKey())
	done := false
	nd.Join(simnet.Addr(0), func(error) { done = true })
	pc.Net.RunUntil(func() bool { return done }, 50_000_000)
	pc.Net.RunUntilIdle()

	// Insert through the client node.
	var res *past.InsertResult
	client.Insert(card, "from-client", []byte("client data"), 3, func(r past.InsertResult) { res = &r })
	pc.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil || res.Err != nil {
		t.Fatalf("client insert failed: %+v", res)
	}
	if client.Store().Len() != 0 {
		t.Fatal("zero-capacity node stored a replica")
	}
	// And retrieve through it.
	var lr *past.LookupResult
	client.Lookup(res.FileID, func(r past.LookupResult) { lr = &r })
	pc.Net.RunUntil(func() bool { return lr != nil }, 50_000_000)
	if lr == nil || lr.Err != nil {
		t.Fatalf("client lookup failed: %+v", lr)
	}
	if string(lr.Data) != "client data" {
		t.Fatal("wrong data")
	}
}
