// Package past implements the PAST storage layer on top of Pastry: the
// paper's primary contribution. A past.Node turns a Pastry overlay node
// into a storage node and client access point offering the three
// operations of section 1 — Insert, Lookup and Reclaim — with
// k-replication on the nodes whose nodeIds are numerically closest to the
// fileId, store receipts, reclaim certificates and receipts, storage
// quotas, replica diversion, file diversion, failure-triggered
// re-replication, and caching of popular files along lookup and insert
// paths (sections 2.1 and 2.3).
package past

import "time"

// Config sets the storage-layer parameters. DefaultConfig matches the
// defaults of the paper and its SOSP'01 companion.
type Config struct {
	// K is the default replication factor for inserted files.
	K int
	// Capacity is this node's contributed storage in bytes.
	Capacity int64
	// TPri is the primary acceptance threshold: a node rejects a primary
	// replica when fileSize/freeSpace exceeds it. Large files are thus
	// rejected first as the node fills (section 2.3 via SOSP'01).
	TPri float64
	// TDiv is the (stricter) acceptance threshold for diverted replicas.
	TDiv float64
	// ReplicaDiversion enables delegating a replica to a leaf-set member
	// with spare space when the responsible node is full.
	ReplicaDiversion bool
	// FileDiversion enables client-side retry with a fresh salt (and thus
	// a fresh fileId targeting a different part of the ring) when an
	// insert is rejected.
	FileDiversion bool
	// MaxRetries bounds file-diversion retries; the SOSP'01 companion
	// uses three.
	MaxRetries int
	// Caching enables caching copies of files at nodes along lookup and
	// insert paths, using spare (non-replica) capacity.
	Caching bool
	// LegacyPushReplication disables digest-based anti-entropy and
	// restores the original maintenance scheme: on every leaf-set change
	// a holder pushes full file bodies to every member of each file's
	// replica set, relying on receivers to discard duplicates. It exists
	// as the measured baseline for experiment E16; anti-entropy (the
	// default) exchanges compact fileId summaries first and transfers
	// only missing replicas.
	LegacyPushReplication bool
	// RequestTimeout bounds how long a client operation waits for
	// receipts or a reply.
	RequestTimeout time.Duration
	// LookupRetries is the number of additional lookup attempts after
	// the first fails by timeout or hop-budget abort. Retries re-enter
	// the overlay through a different neighbor each time (route
	// diversity, per the randomized-routing argument of section 2.2), so
	// a malicious node on the first path is unlikely to sit on the
	// second. Zero (the default) keeps the original single-attempt
	// behaviour and costs nothing.
	LookupRetries int
	// RetryBackoff is the base delay before retry attempt i: a capped
	// exponential backoff×2^(i-1), capped at 8×backoff. Zero retries
	// immediately. The same discipline paces insert's file-diversion
	// retries.
	RetryBackoff time.Duration
	// InsertResends is the number of times an unacknowledged insert
	// attempt re-routes the SAME request — same certificate, fileId and
	// request id — spread evenly across RequestTimeout, while the attempt
	// waits for its k receipts. Replica holders that already stored the
	// file re-issue their receipts idempotently and the client ignores
	// duplicates, so each re-send only has to survive the frames the
	// network lost last time. This is the client-side retransmission that
	// turns the transport's silent-loss semantics into usable round trips
	// on lossy real networks (the 20%-loss chaos scenario); unlike a
	// file-diversion retry it neither burns quota churn nor moves the
	// fileId. Zero (the default) disables it and costs nothing.
	InsertResends int
	// HopBudget bounds overlay forwarding hops for lookups: a node asked
	// to forward a lookup whose hop count has reached the budget aborts
	// it back to the client (misroute containment) instead of forwarding
	// further. Zero disables the check.
	HopBudget int
	// AntiEntropyEvery is the minimum interval between periodic
	// anti-entropy sweeps. Event-driven maintenance (LeafSetChanged)
	// repairs most membership changes immediately, but when two peers'
	// replica-set views disagree transiently a file can be left at k-1
	// copies with no further event to re-trigger sync (E17 measured ~6%
	// of files stuck that way under churn). The periodic sweep — rate
	// limited here, piggybacked on the Pastry keep-alive timer, digests
	// only — closes that residue. Zero uses the default; it is inert
	// when keep-alives are disabled or under LegacyPushReplication
	// (whose baseline semantics E16 measures).
	AntiEntropyEvery time.Duration
	// Epoch anchors certificate timestamps: wall-clock seconds at
	// simulation time zero.
	Epoch int64
}

// DefaultConfig returns the paper's parameters: k=5 replicas (the value
// used in the replica-locality experiment), thresholds 0.1/0.05, three
// file-diversion retries, caching on.
func DefaultConfig() Config {
	return Config{
		K:                5,
		Capacity:         64 << 20,
		TPri:             0.1,
		TDiv:             0.05,
		ReplicaDiversion: true,
		FileDiversion:    true,
		MaxRetries:       3,
		Caching:          true,
		RequestTimeout:   30 * time.Second,
		AntiEntropyEvery: 10 * time.Second,
		Epoch:            1_000_000_000,
	}
}
