package past

import (
	"past/internal/telemetry"
)

// RegisterTelemetry registers the PAST storage-layer series on rec,
// aggregated over nodes() (nil entries are skipped, so a cluster's raw
// slot slice works directly). One series, "past", carries the per-window
// deltas of the node counters plus the derived cache hit rate
// (cache_serves / lookups_served within the window).
//
// The closure is called once per window flush, sweeps every node's
// Stats() exactly once, and keeps the previous totals itself. Crashed
// nodes keep their frozen counters in the aggregate; when a node slot is
// reused (restart with a fresh identity) the aggregate can step down, in
// which case the delta is clamped to zero rather than emitting a
// negative rate. All of this is a pure read of mutex-protected copies —
// safe at simulator barriers and from the daemon's tasks goroutine.
func RegisterTelemetry(rec *telemetry.Recorder, nodes func() []*Node) {
	fields := []string{
		"maintenance_msgs", "maintenance_bytes", "replications",
		"lookups_served", "cache_serves", "cache_hit_rate",
		"lookup_retries", "insert_rejects", "primary_stores", "diverted_stores",
	}
	var prev []float64
	rec.Multi("past", fields, func() []float64 {
		var cur [10]float64
		for _, n := range nodes() {
			if n == nil {
				continue
			}
			s := n.Stats()
			cur[0] += float64(s.MaintenanceMsgs)
			cur[1] += float64(s.MaintenanceBytes)
			cur[2] += float64(s.Replications)
			cur[3] += float64(s.LookupsServed)
			cur[4] += float64(s.CacheServes)
			// cur[5] is derived below
			cur[6] += float64(s.LookupRetries)
			cur[7] += float64(s.InsertRejects)
			cur[8] += float64(s.PrimaryStores)
			cur[9] += float64(s.DivertedStores)
		}
		out := make([]float64, len(fields))
		if prev == nil {
			prev = make([]float64, len(fields))
			copy(prev, cur[:])
			return out // first window after attach: no deltas yet
		}
		for i := range out {
			if d := cur[i] - prev[i]; d > 0 {
				out[i] = d
			}
			prev[i] = cur[i]
		}
		if out[3] > 0 {
			out[5] = out[4] / out[3]
		}
		return out
	})
}
