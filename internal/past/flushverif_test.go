package past

import (
	"testing"

	"past/internal/id"
	"past/internal/seccrypt"
	"past/internal/wire"
)

// TestFlushVerifRejectsBadCertificate pins the deferred-batch flush's
// certificate verdict: when the insert's own certificate signature is
// invalid (slot 0 of the batch), flushVerif must report certOK=false —
// even with k structurally and cryptographically valid receipts — so
// the client fails the attempt instead of reporting success with an
// unverifiable certificate.
func TestFlushVerifRejectsBadCertificate(t *testing.T) {
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(1))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := broker.IssueCard(1<<30, 0, 0, seccrypt.DetRand(2))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := owner.IssueFileCertificate("flush-verif-bad-cert", []byte("flush-verif probe body"), 2, []byte{7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cert.Sig[5] ^= 0xff // defective card: signature does not verify

	op := &pendingOp{kind: opInsert, cert: cert, k: 2, seen: map[id.Node]bool{}, verif: seccrypt.NewDeferred()}
	op.verif.DeferFileCertificate(&op.cert)
	for i := uint64(0); i < 2; i++ {
		node, err := broker.IssueCard(0, 1<<20, 0, seccrypt.DetRand(3+i))
		if err != nil {
			t.Fatal(err)
		}
		r := wire.StoreReceipt{FileID: cert.FileID, StoredBy: wire.NodeRef{ID: node.NodeID()}, Size: cert.Size}
		node.SignStoreReceipt(&r)
		if err := seccrypt.VerifyStoreReceiptBinding(&r); err != nil {
			t.Fatal(err)
		}
		op.receipts = append(op.receipts, r)
		op.seen[r.StoredBy.ID] = true
		op.verif.DeferStoreReceipt(&op.receipts[len(op.receipts)-1])
	}

	valid, certOK := op.flushVerif()
	if certOK {
		t.Fatal("corrupted certificate passed the flush")
	}
	if valid != 2 {
		t.Fatalf("valid receipts after flush = %d, want 2 (receipts must not be blamed for the cert)", valid)
	}
	// A second flush on the rebuilt queue must agree (memo-resolved).
	valid, certOK = op.flushVerif()
	if certOK || valid != 2 {
		t.Fatalf("rebuilt queue disagrees: valid=%d certOK=%v", valid, certOK)
	}
	op.releaseVerif()
}
