package past

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/seccrypt"
	"past/internal/transport"
	"past/internal/wire"
)

// afterFunc schedules f after d and releases the timer handle once it has
// fired. The handle is published under a mutex: with a real clock the
// callback runs on its own goroutine and can fire before AfterFunc even
// returns to the caller, so the callback must not read a bare captured
// variable the caller is still assigning.
func afterFunc(c transport.Clock, d time.Duration, f func()) {
	var (
		mu sync.Mutex
		t  transport.Timer
	)
	mu.Lock()
	t = c.AfterFunc(d, func() {
		mu.Lock()
		h := t
		mu.Unlock()
		h.Release()
		f()
	})
	mu.Unlock()
}

// Client-operation errors.
var (
	ErrTimeout  = errors.New("past: request timed out")
	ErrRejected = errors.New("past: insert rejected")
	ErrNotFound = errors.New("past: file not found")
)

// InsertResult reports the outcome of an Insert.
type InsertResult struct {
	FileID   id.File
	Cert     wire.FileCertificate
	Receipts []wire.StoreReceipt
	Diverted int // receipts that came from diverted replicas
	Retries  int // file-diversion retries consumed
	Err      error
}

// LookupResult reports the outcome of a Lookup.
type LookupResult struct {
	Cert     wire.FileCertificate
	Data     []byte
	From     wire.NodeRef
	Hops     int
	Distance float64
	Cached   bool
	Err      error
}

// ReclaimResult reports the outcome of a Reclaim.
type ReclaimResult struct {
	Receipts []wire.ReclaimReceipt
	Freed    int64
	Err      error
}

type opKind int

const (
	opInsert opKind = iota
	opLookup
	opReclaim
	opDivert
	opAudit
)

// pendingOp tracks one in-flight client operation (or a server-side
// diversion negotiation).
type pendingOp struct {
	kind  opKind
	timer transport.Timer

	// insert
	card     *seccrypt.Smartcard
	name     string
	data     []byte
	k        int
	baseSalt []byte // caller-supplied salt (InsertSalted); nil = draw from node rng
	retries  int
	cert     wire.FileCertificate
	receipts []wire.StoreReceipt
	seen     map[id.Node]bool
	insertCB func(InsertResult)
	// verif collects the insert's signature checks — slot 0 is the file
	// certificate, slot i+1 is receipts[i] — and resolves them in one
	// batch when the k-th receipt arrives (or on timeout/failure). See
	// seccrypt.Deferred for the batch-verification semantics.
	verif *seccrypt.Deferred
	// lookup
	lookupCB func(LookupResult)
	// reclaim
	fileID     id.File
	reclaimRcv []wire.ReclaimReceipt
	reclaimCB  func(ReclaimResult)
	// divert (server side)
	divert     *wire.ReplicaStore
	candidates []wire.NodeRef
	// audit
	auditWant [32]byte
	auditCB   func(bool)
}

// flushVerif resolves the op's deferred signature checks (certificate +
// collected receipts) in one batch and drops receipts whose signatures
// failed, so forged receipts never count toward k. It returns the
// number of receipts that survived and whether the certificate's own
// signature (slot 0) held — a failed certificate must fail the whole
// attempt, never complete it. Callers hold the node lock.
func (op *pendingOp) flushVerif() (valid int, certOK bool) {
	if op.verif == nil {
		return len(op.receipts), true
	}
	if op.verif.Flush() {
		return len(op.receipts), true // certificate and every receipt check out
	}
	// At least one check failed; the flush identified which. Drop the
	// forged receipts (freeing their seen-slots so the genuine node can
	// still deliver a valid receipt) and rebuild the queue so slots stay
	// aligned with op.receipts — the re-deferred checks all resolve from
	// the memo, so the rebuild costs no cryptography.
	certOK = op.verif.Ok(0)
	kept := op.receipts[:0]
	rebuilt := seccrypt.NewDeferred()
	rebuilt.DeferFileCertificate(&op.cert)
	for j := range op.receipts {
		r := &op.receipts[j]
		if op.verif.Ok(j + 1) {
			kept = append(kept, *r)
			rebuilt.DeferStoreReceipt(r)
		} else {
			delete(op.seen, r.StoredBy.ID)
		}
	}
	op.receipts = kept
	op.verif.Release()
	op.verif = rebuilt
	return len(op.receipts), certOK
}

// releaseVerif returns the deferred queue to its pool.
func (op *pendingOp) releaseVerif() {
	if op.verif != nil {
		op.verif.Release()
		op.verif = nil
	}
}

// stopTimer cancels and recycles the op's timeout. Every finished op
// passes through here exactly once (its pending-map entry is deleted
// first), so the handle has a single owner and Release is safe whether
// the timer was cancelled or is the very timeout that fired us.
func (op *pendingOp) stopTimer() {
	if op.timer != nil {
		op.timer.Stop()
		op.timer.Release()
		op.timer = nil
	}
}

// newReqID derives a fresh request identifier.
func (n *Node) newReqID() uint64 { return n.pn.Rand() }

// armOp publishes a pending op and arms its timeout atomically: the timer
// is assigned before the lock is released, so anyone who later finds the
// op in the pending map (and so may win the race to delete it and call
// stopTimer) is guaranteed to observe op.timer. The timeout callback
// itself begins by taking the lock, so a real-time clock firing instantly
// still waits for this critical section.
func (n *Node) armOp(reqID uint64, op *pendingOp, onTimeout func()) {
	n.mu.Lock()
	n.pending[reqID] = op
	op.timer = n.pn.Clock().AfterFunc(n.cfg.RequestTimeout, onTimeout)
	n.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Insert

// Insert stores data under the given textual name on behalf of the card's
// owner, replicated k times (k = 0 uses the node default). The callback
// fires exactly once. The card debits quota when the certificate is
// issued; rejected inserts are refunded.
func (n *Node) Insert(card *seccrypt.Smartcard, name string, data []byte, k int, cb func(InsertResult)) {
	if k <= 0 {
		k = n.cfg.K
	}
	n.startInsertAttempt(card, name, data, k, 0, nil, cb)
}

// InsertSalted is Insert with a caller-supplied certificate salt instead
// of one drawn from the node's rng. Because the fileId is
// H(name, owner, salt), fixing the salt fixes the fileId — this is what
// lets the conformance harness drive the identical workload through the
// simulator and a real-socket cluster and compare placement per fileId.
// File-diversion retries derive follow-up salts deterministically from
// the base salt, so even the retry trajectory is reproducible.
func (n *Node) InsertSalted(card *seccrypt.Smartcard, name string, data []byte, k int, salt []byte, cb func(InsertResult)) {
	if k <= 0 {
		k = n.cfg.K
	}
	if len(salt) == 0 {
		n.startInsertAttempt(card, name, data, k, 0, nil, cb)
		return
	}
	n.startInsertAttempt(card, name, data, k, 0, append([]byte(nil), salt...), cb)
}

// attemptSalt maps (baseSalt, retry) to the salt for one insert attempt:
// the base salt itself first, then an FNV-derived successor per retry.
func attemptSalt(baseSalt []byte, retry int) []byte {
	if retry == 0 {
		return baseSalt
	}
	h := fnv.New64a()
	h.Write(baseSalt)                                                                          //nolint:errcheck // hash.Hash never errors
	h.Write([]byte{byte(retry), byte(retry >> 8), byte(retry >> 16), byte(retry >> 24), 0xd1}) //nolint:errcheck
	s := h.Sum64()
	salt := make([]byte, 8)
	for i := range salt {
		salt[i] = byte(s >> (8 * i))
	}
	return salt
}

// startInsertAttempt issues a certificate with a fresh salt and routes the
// insert. Each retry is a "file diversion": a new salt yields a new fileId
// targeting a different region of the ring (section 2.3).
func (n *Node) startInsertAttempt(card *seccrypt.Smartcard, name string, data []byte, k, retry int, baseSalt []byte, cb func(InsertResult)) {
	var salt []byte
	if baseSalt != nil {
		salt = attemptSalt(baseSalt, retry)
	} else {
		salt = make([]byte, 8)
		s := n.pn.Rand()
		for i := range salt {
			salt[i] = byte(s >> (8 * i))
		}
	}
	cert, err := card.IssueFileCertificate(name, data, k, salt, n.nowUnix())
	if err != nil {
		cb(InsertResult{Err: fmt.Errorf("past: issue certificate: %w", err), Retries: retry})
		return
	}
	reqID := n.newReqID()
	op := &pendingOp{
		kind:     opInsert,
		card:     card,
		name:     name,
		data:     data,
		k:        k,
		baseSalt: baseSalt,
		retries:  retry,
		cert:     cert,
		seen:     make(map[id.Node]bool),
		insertCB: cb,
		verif:    seccrypt.NewDeferred(),
	}
	// The certificate joins the deferred batch up front (slot 0): the
	// flush confirms the certificate the result reports alongside the
	// receipts, and feeds the memo other nodes consult. Usually it is
	// already a memo hit by flush time (the root verified it), so it
	// adds nothing to the batch equation.
	op.verif.DeferFileCertificate(&op.cert)
	n.armOp(reqID, op, func() {
		n.finishInsert(reqID, ErrTimeout)
	})
	n.pn.Route(cert.FileID.Key(), wire.InsertRequest{
		Cert:   cert,
		Data:   data,
		Client: n.pn.Ref(),
		ReqID:  reqID,
	})
	n.scheduleInsertResend(reqID, 1)
}

// scheduleInsertResend arms re-send number resend (1-based) of a pending
// insert attempt: after one resend interval, if the attempt is still
// pending and short of k receipts, the SAME InsertRequest — same
// certificate, fileId and request id — is routed again. Holders that
// already stored the file re-issue their receipts (handleReplicaStore is
// idempotent) and clientCollectReceipt drops duplicates, so each re-send
// only needs to cover the frames the network lost. See
// Config.InsertResends; with the default 0 this is never armed.
func (n *Node) scheduleInsertResend(reqID uint64, resend int) {
	if n.cfg.InsertResends <= 0 || resend > n.cfg.InsertResends {
		return
	}
	interval := n.cfg.RequestTimeout / time.Duration(n.cfg.InsertResends+1)
	if interval <= 0 {
		return
	}
	afterFunc(n.pn.Clock(), interval, func() {
		n.mu.Lock()
		op := n.pending[reqID]
		if op == nil || op.kind != opInsert || len(op.receipts) >= op.k {
			n.mu.Unlock()
			return
		}
		req := wire.InsertRequest{Cert: op.cert, Data: op.data, Client: n.pn.Ref(), ReqID: reqID}
		n.stats.InsertResends++
		n.mu.Unlock()
		n.pn.Route(req.Cert.FileID.Key(), req)
		n.scheduleInsertResend(reqID, resend+1)
	})
}

// clientCollectReceipt accumulates store receipts toward k. Only the
// cheap structural checks (signer/node binding, duplicates) run per
// receipt; the ed25519 signature joins the op's deferred batch, which
// is flushed — certificate plus all k receipt signatures in one
// cofactored batch check — once the k-th receipt arrives. A receipt
// whose signature fails the flush is dropped and the insert keeps
// waiting, so forged receipts still never count toward k.
func (n *Node) clientCollectReceipt(m wire.StoreReceipt) {
	n.mu.Lock()
	op := n.pending[m.ReqID]
	if op == nil || op.kind != opInsert {
		n.mu.Unlock()
		return
	}
	if seccrypt.VerifyStoreReceiptBinding(&m) != nil || op.seen[m.StoredBy.ID] {
		n.mu.Unlock()
		return
	}
	op.seen[m.StoredBy.ID] = true
	op.receipts = append(op.receipts, m)
	op.verif.DeferStoreReceipt(&op.receipts[len(op.receipts)-1])
	done, certBad := false, false
	if len(op.receipts) >= op.k {
		before := len(op.receipts)
		valid, certOK := op.flushVerif()
		n.stats.ForgedReceiptsDropped += before - valid
		done, certBad = certOK && valid >= op.k, !certOK
	}
	n.mu.Unlock()
	if certBad {
		// The flush says our own certificate's signature is invalid (a
		// defective card): fail the attempt like a root-side rejection —
		// refund, clean up partial replicas, maybe retry with a fresh
		// certificate.
		n.finishInsert(m.ReqID, fmt.Errorf("%w: file certificate failed verification", ErrRejected))
		return
	}
	if done {
		n.finishInsert(m.ReqID, nil)
	}
}

// handleInsertReject fails the attempt early (triggering file diversion).
func (n *Node) handleInsertReject(m wire.InsertReject) {
	n.mu.Lock()
	op := n.pending[m.ReqID]
	rejected := op != nil && op.kind == opInsert
	n.mu.Unlock()
	if rejected {
		n.finishInsert(m.ReqID, ErrRejected)
	}
}

// finishInsert resolves an insert attempt: success, retry with a new salt,
// or failure with quota refund and best-effort cleanup of partial
// replicas.
func (n *Node) finishInsert(reqID uint64, cause error) {
	n.mu.Lock()
	op := n.pending[reqID]
	if op == nil || op.kind != opInsert {
		n.mu.Unlock()
		return
	}
	delete(n.pending, reqID)
	// Resolve any still-deferred signature checks (timeout and reject
	// paths can arrive with the batch unflushed) so the result only ever
	// reports verified receipts — and a certificate that failed its own
	// signature check fails the attempt outright.
	before := len(op.receipts)
	valid, certOK := op.flushVerif()
	n.stats.ForgedReceiptsDropped += before - valid
	if cause == nil {
		if !certOK {
			cause = fmt.Errorf("%w: file certificate failed verification", ErrRejected)
		} else if valid < op.k {
			cause = ErrTimeout
		}
	}
	op.releaseVerif()
	n.mu.Unlock()
	op.stopTimer()

	if cause == nil {
		diverted := 0
		for _, r := range op.receipts {
			if r.Diverted {
				diverted++
			}
		}
		op.insertCB(InsertResult{
			FileID:   op.cert.FileID,
			Cert:     op.cert,
			Receipts: op.receipts,
			Diverted: diverted,
			Retries:  op.retries,
		})
		return
	}

	// The attempt failed: refund quota and reclaim any partial replicas so
	// they do not leak storage.
	op.card.RefundFileCertificate(&op.cert)
	if len(op.receipts) > 0 {
		if rc, err := op.card.IssueReclaimCertificate(op.cert.FileID, n.nowUnix()); err == nil {
			n.pn.Route(op.cert.FileID.Key(), wire.ReclaimRequest{Cert: rc, Client: n.pn.Ref(), ReqID: n.newReqID()})
		}
	}
	if n.cfg.FileDiversion && op.retries < n.cfg.MaxRetries {
		if d := n.retryDelay(op.retries + 1); d > 0 {
			afterFunc(n.pn.Clock(), d, func() {
				n.startInsertAttempt(op.card, op.name, op.data, op.k, op.retries+1, op.baseSalt, op.insertCB)
			})
			return
		}
		n.startInsertAttempt(op.card, op.name, op.data, op.k, op.retries+1, op.baseSalt, op.insertCB)
		return
	}
	n.mu.Lock()
	n.stats.InsertRejects++
	n.mu.Unlock()
	op.insertCB(InsertResult{
		FileID:   op.cert.FileID,
		Cert:     op.cert,
		Receipts: op.receipts,
		Retries:  op.retries,
		Err:      fmt.Errorf("%w after %d retries: %v", ErrRejected, op.retries, cause),
	})
}

// ---------------------------------------------------------------------------
// Lookup

// Lookup retrieves the file with the given fileId. The callback fires
// exactly once; the returned certificate lets the caller verify content
// authenticity (done here as well). When Config.LookupRetries > 0, a
// timed-out or hop-budget-aborted attempt is retried with capped
// exponential backoff, each retry entering the overlay through a
// different neighbor (route diversity).
func (n *Node) Lookup(fileID id.File, cb func(LookupResult)) {
	n.startLookupAttempt(fileID, 0, cb)
}

// retryDelay returns how long to wait before retry attempt (>= 1):
// RetryBackoff doubling per attempt, capped at 8× the base.
func (n *Node) retryDelay(attempt int) time.Duration {
	if n.cfg.RetryBackoff <= 0 || attempt <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 3 {
		shift = 3
	}
	return n.cfg.RetryBackoff << shift
}

// scheduleLookupAttempt starts attempt now or after the backoff delay.
func (n *Node) scheduleLookupAttempt(fileID id.File, attempt int, cb func(LookupResult)) {
	d := n.retryDelay(attempt)
	if d <= 0 {
		n.startLookupAttempt(fileID, attempt, cb)
		return
	}
	afterFunc(n.pn.Clock(), d, func() {
		n.startLookupAttempt(fileID, attempt, cb)
	})
}

// startLookupAttempt issues one lookup attempt. The first attempt routes
// normally; retries enter the ring via a different neighbor each time, so
// the randomized routes of section 2.2 explore paths that avoid whatever
// dropped or misrouted the previous attempt.
func (n *Node) startLookupAttempt(fileID id.File, attempt int, cb func(LookupResult)) {
	reqID := n.newReqID()
	op := &pendingOp{kind: opLookup, fileID: fileID, retries: attempt, lookupCB: cb}
	n.armOp(reqID, op, func() {
		n.mu.Lock()
		still := n.pending[reqID]
		delete(n.pending, reqID)
		canRetry := still != nil && attempt < n.cfg.LookupRetries
		if still != nil {
			n.stats.DropsSuspected++
			if canRetry {
				n.stats.LookupRetries++
			}
		}
		n.mu.Unlock()
		if still == nil {
			return
		}
		still.stopTimer() // fired: Stop is a no-op, Release recycles
		if canRetry {
			n.scheduleLookupAttempt(fileID, attempt+1, cb)
			return
		}
		cb(LookupResult{Err: ErrTimeout})
	})
	req := wire.LookupRequest{FileID: fileID, Client: n.pn.Ref(), ReqID: reqID, PrevHop: n.pn.Ref()}
	// Serve locally when possible: a routed message to a key we own never
	// leaves the node anyway.
	r := wire.Routed{Key: fileID.Key(), Payload: req, Origin: n.pn.Ref()}
	if n.serveLookup(&r, req, false) {
		return
	}
	if attempt > 0 && n.routeDiverse(fileID, req, attempt) {
		return
	}
	n.pn.Route(fileID.Key(), req)
}

// routeDiverse injects the request into the overlay through a neighbor
// instead of this node's own routing tables: the entry node routes onward
// by ITS tables, so consecutive attempts traverse different paths even
// when this node's best next hop is malicious. The entry choice comes
// from the node's own seeded stream, keeping tables deterministic.
func (n *Node) routeDiverse(fileID id.File, req wire.LookupRequest, attempt int) bool {
	cands := append(n.pn.LeafMembers(), n.pn.NeighborhoodMembers()...)
	live := cands[:0]
	for _, ref := range cands {
		if ref.ID != n.pn.ID() && n.pn.Reachable(ref) {
			live = append(live, ref)
		}
	}
	if len(live) == 0 {
		return false
	}
	entry := live[int(n.pn.Rand()%uint64(len(live)))]
	key := fileID.Key()
	if attempt >= 2 {
		// Path diversity alone cannot defeat a malicious ROOT: every
		// attempt converges on the same numerically-closest node. From the
		// second retry on, scatter the routing key within the replica
		// neighborhood so the probe is delivered to a different replica-set
		// member; any holder it lands on serves the true fileId carried in
		// the payload, and a miss just triggers the next attempt.
		key = n.scatterKey(key)
	}
	r := wire.Routed{
		Key:      key,
		Payload:  req,
		Origin:   n.pn.Ref(),
		Hops:     1,
		Distance: n.pn.Proximity(entry.Addr),
		Nonce:    n.pn.Rand(),
	}
	n.pn.Send(entry, r)
	return true
}

// scatterKey perturbs a lookup's routing key by a random fraction of the
// node's own leaf-set span — the client's only estimate of ring density —
// so consecutive attempts land on different members of the key's replica
// neighborhood instead of always the same root. Deltas range from about
// half the leaf-set span down to a sixteenth of it, i.e. from a few node
// spacings down to a fraction of one.
func (n *Node) scatterKey(key id.Node) id.Node {
	span := id.Zero
	for _, ref := range n.pn.LeafMembers() {
		if d := n.pn.ID().Dist(ref.ID); span.Less(d) {
			span = d
		}
	}
	if span.IsZero() {
		return key
	}
	r := n.pn.Rand()
	delta := span
	for s := 3 + (r & 3); s > 0; s-- {
		delta = delta.Rsh1()
	}
	if delta.IsZero() {
		return key
	}
	if r&4 != 0 {
		return key.Add(delta)
	}
	return key.Sub(delta)
}

// handleLookupAbort processes a hop-budget abort: strong evidence the
// previous route was tampered with, so the retry goes out immediately
// (no backoff — the abort already cost real time).
func (n *Node) handleLookupAbort(m wire.LookupAbort) {
	n.mu.Lock()
	op := n.pending[m.ReqID]
	if op == nil || op.kind != opLookup {
		n.mu.Unlock()
		return
	}
	delete(n.pending, m.ReqID)
	n.stats.MisrouteDetections++
	canRetry := op.retries < n.cfg.LookupRetries
	if canRetry {
		n.stats.LookupRetries++
	}
	n.mu.Unlock()
	op.stopTimer()
	if canRetry {
		n.startLookupAttempt(op.fileID, op.retries+1, op.lookupCB)
		return
	}
	op.lookupCB(LookupResult{Err: ErrTimeout})
}

func (n *Node) handleLookupReply(m wire.LookupReply) {
	n.mu.Lock()
	op := n.pending[m.ReqID]
	if op == nil || op.kind != opLookup {
		n.mu.Unlock()
		return
	}
	delete(n.pending, m.ReqID)
	n.mu.Unlock()
	op.stopTimer()
	res := LookupResult{
		Cert:     m.Cert,
		Data:     m.Data,
		From:     m.From,
		Hops:     m.Hops,
		Distance: m.Distance,
		Cached:   m.Cached,
	}
	// Verify authenticity against the certificate (section 2.1: "the file
	// certificate is returned along with the file, and allows the client
	// to verify that the contents are authentic"). The content check
	// bypasses the buffer-identity hash memo: this verdict goes to the
	// user, so it must reflect the bytes as they are now.
	if err := seccrypt.VerifyFileCertificate(n.brokerPub, &m.Cert, n.nowUnix()); err != nil {
		res.Err = err
	} else if err := seccrypt.VerifyContentFresh(&m.Cert, m.Data); err != nil {
		res.Err = err
	}
	op.lookupCB(res)
}

func (n *Node) handleLookupMiss(m wire.LookupMiss) {
	n.mu.Lock()
	op := n.pending[m.ReqID]
	if op == nil || op.kind != opLookup {
		n.mu.Unlock()
		return
	}
	delete(n.pending, m.ReqID)
	// Under the adversarial config a miss is not authoritative: a scattered
	// retry may have probed a neighborhood member outside the replica set,
	// and a malicious root may simply lie. Retry while attempts remain;
	// with LookupRetries=0 (the default) a miss still fails immediately.
	canRetry := op.retries < n.cfg.LookupRetries
	if canRetry {
		n.stats.LookupRetries++
	}
	n.mu.Unlock()
	op.stopTimer()
	if canRetry {
		n.scheduleLookupAttempt(op.fileID, op.retries+1, op.lookupCB)
		return
	}
	op.lookupCB(LookupResult{Err: ErrNotFound})
}

// ---------------------------------------------------------------------------
// Reclaim

// Reclaim frees the storage of a file the card's owner inserted. The
// callback fires once, after the first receipts arrive or the timeout
// elapses; per section 1 the operation does not guarantee the file is no
// longer available anywhere.
func (n *Node) Reclaim(card *seccrypt.Smartcard, fileID id.File, cb func(ReclaimResult)) {
	rc, err := card.IssueReclaimCertificate(fileID, n.nowUnix())
	if err != nil {
		cb(ReclaimResult{Err: err})
		return
	}
	reqID := n.newReqID()
	op := &pendingOp{kind: opReclaim, fileID: fileID, card: card, reclaimCB: cb}
	n.armOp(reqID, op, func() {
		n.mu.Lock()
		still := n.pending[reqID]
		delete(n.pending, reqID)
		n.mu.Unlock()
		if still == nil {
			return
		}
		still.stopTimer() // fired: Stop is a no-op, Release recycles
		var freed int64
		for _, r := range still.reclaimRcv {
			freed += r.Freed
		}
		res := ReclaimResult{Receipts: still.reclaimRcv, Freed: freed}
		if len(still.reclaimRcv) == 0 {
			res.Err = ErrTimeout
		}
		cb(res)
	})
	n.pn.Route(fileID.Key(), wire.ReclaimRequest{Cert: rc, Client: n.pn.Ref(), ReqID: reqID})
}

// handleReclaimReceipt credits the owner's quota for each verified receipt
// (section 2.1, "Storage quotas").
func (n *Node) handleReclaimReceipt(m wire.ReclaimReceipt) {
	n.mu.Lock()
	op := n.pending[m.ReqID]
	if op == nil || op.kind != opReclaim {
		n.mu.Unlock()
		return
	}
	op.reclaimRcv = append(op.reclaimRcv, m)
	card := op.card
	n.mu.Unlock()
	if card != nil {
		card.CreditReclaimReceipt(&m, n.nowUnix()) //nolint:errcheck // invalid receipts simply do not credit
	}
}

// ---------------------------------------------------------------------------
// Audit

// AuditPeer challenges peer to prove it stores fileID, comparing the proof
// against this node's own copy of the content (random audits, section
// 2.1). The callback receives true when the peer produced a valid proof.
func (n *Node) AuditPeer(peer wire.NodeRef, fileID id.File, cb func(bool)) error {
	it, err := n.store.Get(fileID)
	if err != nil {
		return fmt.Errorf("past: audit requires a local copy: %w", err)
	}
	nonce := n.pn.Rand()
	reqID := n.newReqID()
	op := &pendingOp{kind: opAudit, auditWant: seccrypt.AuditProof(nonce, it.Data), auditCB: cb}
	n.armOp(reqID, op, func() {
		n.mu.Lock()
		still := n.pending[reqID]
		delete(n.pending, reqID)
		n.mu.Unlock()
		if still != nil {
			still.stopTimer() // fired: Stop is a no-op, Release recycles
			cb(false)
		}
	})
	n.pn.Send(peer, wire.AuditChallenge{FileID: fileID, Nonce: nonce, From: n.pn.Ref(), ReqID: reqID})
	return nil
}
