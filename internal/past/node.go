package past

import (
	"crypto/ed25519"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/storage"
	"past/internal/wire"
)

// Node is a PAST storage node and client access point. It implements
// pastry.App and must be installed on its Pastry node with SetApp.
type Node struct {
	cfg       Config
	pn        *pastry.Node
	card      *seccrypt.Smartcard
	brokerPub ed25519.PublicKey
	store     *storage.Store
	cache     *storage.Cache
	// disk, when set via UseDisk, persists every replica mutation; store
	// remains the in-memory index over the on-disk set.
	disk *storage.DiskStore

	// mischief, when set, makes this node cheat on storage (experiment
	// harness only; see SetMischief). Configured before the node handles
	// traffic, read-only afterwards.
	mischief Mischief

	mu      sync.Mutex
	pending map[uint64]*pendingOp
	// lastSweep is when the periodic anti-entropy sweep last ran (virtual
	// clock); see Maintain.
	lastSweep time.Duration
	swept     bool
	// requested tracks anti-entropy fetches in flight (fileId → request
	// time): when several holders offer the same missing file within one
	// repair round, only the first offer triggers a SyncRequest, so only
	// one full body is shipped. Entries expire after RequestTimeout (the
	// offerer may have departed) and are dropped when the body stores.
	requested map[id.File]time.Duration

	// Stats counts storage-management events for the experiments.
	stats Stats
}

// Stats aggregates per-node storage-management counters.
type Stats struct {
	PrimaryStores   int
	DivertedStores  int
	DivertAttempts  int
	LocalRejects    int
	InsertRejects   int
	Reclaims        int
	Replications    int
	CachePushes     int
	LookupsServed   int
	CacheServes     int
	PointerFollowed int

	// Client-side resilience counters. DropsSuspected counts lookup
	// attempts that timed out (the signature of a dropper on the path);
	// MisrouteDetections counts hop-budget aborts received;
	// ForgedReceiptsDropped counts store receipts discarded because their
	// signature failed batch verification. RouteAborts counts lookups
	// this node refused to forward past the hop budget (server side).
	LookupRetries         int
	DropsSuspected        int
	MisrouteDetections    int
	RouteAborts           int
	ForgedReceiptsDropped int
	// InsertResends counts same-certificate insert retransmissions
	// (Config.InsertResends) issued by this node as a client.
	InsertResends int

	// Replica-maintenance traffic sent by this node (anti-entropy digests
	// and requests, plus Replicate bodies under either scheme).
	// MaintenanceBytes approximates the wire size of that traffic so
	// experiment E16 can compare schemes by bandwidth, not just message
	// count.
	SyncOffers       int
	SyncRequests     int
	MaintenanceMsgs  int
	MaintenanceBytes int64
}

// NewNode creates a PAST node bound to pn. The node's smartcard signs
// receipts and fixes its nodeId; brokerPub is the certification key this
// node trusts.
func NewNode(cfg Config, pn *pastry.Node, card *seccrypt.Smartcard, brokerPub ed25519.PublicKey) *Node {
	if cfg.K <= 0 {
		cfg.K = DefaultConfig().K
	}
	if cfg.TPri <= 0 {
		cfg.TPri = DefaultConfig().TPri
	}
	if cfg.TDiv <= 0 {
		cfg.TDiv = DefaultConfig().TDiv
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultConfig().RequestTimeout
	}
	if cfg.AntiEntropyEvery <= 0 {
		cfg.AntiEntropyEvery = DefaultConfig().AntiEntropyEvery
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = DefaultConfig().Epoch
	}
	n := &Node{
		cfg:       cfg,
		pn:        pn,
		card:      card,
		brokerPub: brokerPub,
		store:     storage.NewStore(cfg.Capacity),
		cache:     storage.NewCache(cfg.Capacity),
		pending:   make(map[uint64]*pendingOp),
		requested: make(map[id.File]time.Duration),
	}
	// Start the cache tier under the same rule syncCache maintains: cache
	// space is the storage not used by replicas, and zero when disabled.
	n.syncCache()
	pn.SetApp(n)
	return n
}

// UseDisk makes ds the node's replica store: lookups and capacity
// accounting run against ds.Mem() (already populated by crash recovery),
// and every replica store/delete goes through the disk first so a restart
// finds them again. Must be called before the node handles traffic —
// right after NewNode, before Bootstrap/Join.
func (n *Node) UseDisk(ds *storage.DiskStore) {
	n.disk = ds
	n.store = ds.Mem()
	n.syncCache()
}

// putStore writes a replica through the persistent tier when configured.
func (n *Node) putStore(item storage.Item) error {
	if n.disk != nil {
		return n.disk.Put(item)
	}
	return n.store.Put(item)
}

// deleteStore removes a replica through the persistent tier when
// configured.
func (n *Node) deleteStore(f id.File) (int64, error) {
	if n.disk != nil {
		return n.disk.Delete(f)
	}
	return n.store.Delete(f)
}

// Pastry returns the underlying overlay node.
func (n *Node) Pastry() *pastry.Node { return n.pn }

// Store exposes the replica store (read-mostly; used by experiments).
func (n *Node) Store() *storage.Store { return n.store }

// Cache exposes the file cache.
func (n *Node) Cache() *storage.Cache { return n.cache }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Mischief configures adversarial storage behaviour for the resilience
// experiments: a node that claims replicas it does not hold. The
// free-rider signs its receipts honestly — only a content audit exposes
// it — while the forger's receipts carry an invalid signature, which the
// client's batch verification identifies and drops.
type Mischief struct {
	ForgeReceipts bool
	FreeRide      bool
}

// SetMischief installs the node's adversarial policy. Call before the
// node handles traffic.
func (n *Node) SetMischief(m Mischief) { n.mischief = m }

// SetResilience adjusts the client-retry knobs (Config.LookupRetries,
// Config.RetryBackoff, Config.HopBudget) after construction, so the
// resilience experiments can measure the same overlay and workload with
// defenses off and on. Call only between operations, from the simulation
// goroutine.
func (n *Node) SetResilience(retries int, backoff time.Duration, hopBudget int) {
	n.cfg.LookupRetries = retries
	n.cfg.RetryBackoff = backoff
	n.cfg.HopBudget = hopBudget
}

// nowUnix converts the node's clock into certificate timestamps.
func (n *Node) nowUnix() int64 {
	return n.cfg.Epoch + int64(n.pn.Clock().Now().Seconds())
}

// syncCache shrinks the cache to the capacity replicas have not claimed
// ("unused portion of their advertised disk space", section 2.3).
func (n *Node) syncCache() {
	if !n.cfg.Caching {
		n.cache.Resize(0)
		return
	}
	n.cache.Resize(n.store.Free())
}

// ---------------------------------------------------------------------------
// pastry.App implementation

// Deliver handles routed messages for which this node is the root.
func (n *Node) Deliver(r wire.Routed, from wire.NodeRef) {
	switch m := r.Payload.(type) {
	case wire.InsertRequest:
		n.handleInsertRoot(r, m)
	case wire.LookupRequest:
		n.handleLookupRoot(r, m)
	case wire.ReclaimRequest:
		n.handleReclaimRoot(r, m)
	}
}

// Forward lets the node satisfy lookups mid-route from replicas or cache
// and populate caches along insert paths (section 2.3).
func (n *Node) Forward(r *wire.Routed, next wire.NodeRef) bool {
	switch m := r.Payload.(type) {
	case wire.LookupRequest:
		if n.serveLookup(r, m, true) {
			return false // consumed: replied from replica or cache
		}
		// A lookup that has already burned its hop budget is being bounced
		// around (misrouting, routing-table corruption): consume it and
		// tell the client so it can retry a different route immediately
		// instead of waiting out its timeout.
		if n.cfg.HopBudget > 0 && r.Hops >= n.cfg.HopBudget {
			n.mu.Lock()
			n.stats.RouteAborts++
			n.mu.Unlock()
			abort := wire.LookupAbort{FileID: m.FileID, ReqID: m.ReqID, Hops: r.Hops, From: n.pn.Ref()}
			if m.Client.ID == n.pn.ID() {
				n.handleLookupAbort(abort)
			} else {
				n.pn.Send(m.Client, abort)
			}
			return false
		}
		// When the route is about to enter the fileId's replica set,
		// steer it to the proximally nearest holder instead of the
		// numerically closest: this is what makes lookups find a nearby
		// replica first (section 2.2, "Locality"). One redirect only.
		if !m.Redirected {
			if target, ok := n.nearestHolder(r.Key, next); ok && target.ID != next.ID {
				m.Redirected = true
				m.PrevHop = n.pn.Ref()
				fwd := *r
				fwd.Payload = m
				fwd.Hops++
				fwd.Distance += n.pn.Proximity(target.Addr)
				n.pn.Send(target, fwd)
				return false
			}
		}
		// Track the previous hop so the eventual responder can push a
		// cached copy one hop toward the client.
		m.PrevHop = n.pn.Ref()
		r.Payload = m
	case wire.InsertRequest:
		// Cache along the insert path.
		if n.cfg.Caching && seccrypt.VerifyContent(&m.Cert, m.Data) == nil {
			n.cache.Put(storage.Item{Cert: m.Cert, Data: m.Data}, 1)
		}
	}
	return true
}

// HandleDirect processes point-to-point storage messages.
func (n *Node) HandleDirect(from wire.NodeRef, m wire.Msg) bool {
	switch msg := m.(type) {
	case wire.ReplicaStore:
		n.handleReplicaStore(msg)
	case wire.StoreReceipt:
		n.handleStoreReceipt(msg)
	case wire.DivertReject:
		n.handleDivertReject(msg)
	case wire.InsertReject:
		n.handleInsertReject(msg)
	case wire.LookupReply:
		n.handleLookupReply(msg)
	case wire.LookupMiss:
		n.handleLookupMiss(msg)
	case wire.LookupAbort:
		n.handleLookupAbort(msg)
	case wire.FetchRequest:
		n.handleFetch(msg)
	case wire.ReclaimForward:
		n.handleReclaimForward(msg)
	case wire.ReclaimReceipt:
		n.handleReclaimReceipt(msg)
	case wire.Replicate:
		n.handleReplicate(msg)
	case wire.SyncOffer:
		n.handleSyncOffer(msg)
	case wire.SyncRequest:
		n.handleSyncRequest(msg)
	case wire.CacheCopy:
		n.handleCacheCopy(msg)
	case wire.AuditChallenge:
		n.handleAuditChallenge(msg)
	case wire.AuditResponse:
		n.handleAuditResponse(msg)
	default:
		return false
	}
	return true
}

// LeafSetChanged restores the replication invariant after membership
// changes (section 2.1, "Persistence": the system restores k copies as
// part of failure recovery; likewise new nodes take over part of the key
// space).
func (n *Node) LeafSetChanged() {
	n.reReplicate()
}

// Maintain implements pastry.Maintainer: a periodic anti-entropy sweep
// piggybacked on the keep-alive timer. Event-driven re-replication
// (LeafSetChanged) misses files whose holders' replica-set views
// disagreed transiently — once views converge, no membership event
// re-triggers sync and the file sits at k-1 copies (the E17 residue).
// The sweep re-offers digests at most once per AntiEntropyEvery, so its
// steady-state cost is a few fileId summaries per interval. Under
// LegacyPushReplication it stays off: the legacy baseline would push
// full bodies every sweep, which is not the scheme E16 measures.
func (n *Node) Maintain() {
	if n.cfg.LegacyPushReplication {
		return
	}
	now := n.pn.Clock().Now()
	n.mu.Lock()
	if n.swept && now-n.lastSweep < n.cfg.AntiEntropyEvery {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.reReplicate()
}

// Sweep forces one anti-entropy repair round immediately, bypassing the
// AntiEntropyEvery rate limit. Maintain (piggybacked on keep-alives) is
// the steady-state path; Sweep is the operator/daemon trigger — the
// pastnode repair task calls it on the real clock so a cluster healing
// from a partition converges every file back to ≥ k replicas within one
// repair period even if keep-alive traffic is still settling. No-op
// under LegacyPushReplication, whose baseline semantics must not gain a
// new push source.
func (n *Node) Sweep() {
	if n.cfg.LegacyPushReplication {
		return
	}
	n.reReplicate()
}

// ---------------------------------------------------------------------------
// Insert: root side

// replicaSet returns the k nodes (including possibly this one) that should
// hold replicas of key: the numerically closest among this node and its
// leaf set. id.Closer is a total order (ring distance, ties by id), so
// the partial selection below returns exactly what a full sort would —
// but with one ring-distance computation per candidate instead of two
// per comparison, which matters because every insert and reclaim runs
// this over the whole leaf set.
func (n *Node) replicaSet(key id.Node, k int) []wire.NodeRef {
	cands := append([]wire.NodeRef{n.pn.Ref()}, n.pn.LeafMembers()...)
	if k > len(cands) {
		k = len(cands)
	}
	dists := make([]id.Node, len(cands))
	for i := range cands {
		dists[i] = cands[i].ID.Dist(key)
	}
	for i := 0; i < k; i++ {
		m := i
		for j := i + 1; j < len(cands); j++ {
			switch dists[j].Cmp(dists[m]) {
			case -1:
				m = j
			case 0:
				if cands[j].ID.Cmp(cands[m].ID) < 0 {
					m = j
				}
			}
		}
		cands[i], cands[m] = cands[m], cands[i]
		dists[i], dists[m] = dists[m], dists[i]
	}
	return cands[:k]
}

// nearestHolder decides whether a lookup being forwarded to next is
// entering the key's replica set; if so it returns the proximally nearest
// member of that set (likely holding a replica). ok is false when this
// node's leaf set says the route has not reached the replica neighborhood
// yet.
func (n *Node) nearestHolder(key id.Node, next wire.NodeRef) (wire.NodeRef, bool) {
	set := n.replicaSet(key, n.cfg.K)
	entering := false
	for _, ref := range set {
		if ref.ID == next.ID || ref.ID == n.pn.ID() {
			entering = true
			break
		}
	}
	if !entering {
		return wire.NodeRef{}, false
	}
	var best wire.NodeRef
	bestProx := 0.0
	for _, ref := range set {
		if ref.ID == n.pn.ID() {
			continue // serveLookup already missed locally
		}
		if !n.pn.Reachable(ref) {
			continue
		}
		p := n.pn.Proximity(ref.Addr)
		if best.IsZero() || p < bestProx {
			best = ref
			bestProx = p
		}
	}
	if best.IsZero() {
		return wire.NodeRef{}, false
	}
	return best, true
}

// handleInsertRoot runs at the node numerically closest to the fileId: it
// verifies the certificate and content and fans replicas out to the k
// closest nodes (section 2, "When a file is inserted").
func (n *Node) handleInsertRoot(r wire.Routed, m wire.InsertRequest) {
	if err := seccrypt.VerifyFileCertificate(n.brokerPub, &m.Cert, n.nowUnix()); err != nil {
		n.pn.Send(m.Client, wire.InsertReject{FileID: m.Cert.FileID, ReqID: m.ReqID, Reason: "bad certificate: " + err.Error()})
		return
	}
	if err := seccrypt.VerifyContent(&m.Cert, m.Data); err != nil {
		n.pn.Send(m.Client, wire.InsertReject{FileID: m.Cert.FileID, ReqID: m.ReqID, Reason: "content mismatch: " + err.Error()})
		return
	}
	set := n.replicaSet(m.Cert.FileID.Key(), m.Cert.Replicas)
	rs := wire.ReplicaStore{
		Cert:    m.Cert,
		Data:    m.Data,
		Client:  m.Client,
		ReqID:   m.ReqID,
		Primary: n.pn.Ref(),
	}
	for _, ref := range set {
		if ref.ID == n.pn.ID() {
			local := rs
			local.Primary = ref
			n.handleReplicaStore(local)
			continue
		}
		out := rs
		out.Primary = ref
		n.pn.Send(ref, out)
	}
}

// accept applies the storage-management admission policy of section 2.3:
// reject when the file is too large relative to the node's free space
// (threshold t_pri for primary, t_div for diverted replicas).
func (n *Node) accept(size int64, diverted bool) bool {
	free := n.store.Free()
	if size > free {
		return false
	}
	if free == 0 {
		return false
	}
	t := n.cfg.TPri
	if diverted {
		t = n.cfg.TDiv
	}
	return float64(size)/float64(free) <= t
}

// handleReplicaStore runs at each node asked to hold a replica.
func (n *Node) handleReplicaStore(m wire.ReplicaStore) {
	if n.mischief.ForgeReceipts || n.mischief.FreeRide {
		// A cheating node claims the store without holding the data. The
		// free-rider's receipt is properly signed (only an audit exposes
		// the missing content); the forger's signature is corrupted, so
		// the client's batch verification drops it.
		rcpt := wire.StoreReceipt{
			FileID:     m.Cert.FileID,
			StoredBy:   n.pn.Ref(),
			OnBehalfOf: m.Primary,
			Diverted:   m.Diverted,
			Size:       m.Cert.Size,
			ReqID:      m.ReqID,
		}
		n.card.SignStoreReceipt(&rcpt)
		if n.mischief.ForgeReceipts && len(rcpt.Sig) > 0 {
			rcpt.Sig[0] ^= 0x80
		}
		if m.Client.ID == n.pn.ID() {
			n.handleStoreReceipt(rcpt)
		} else {
			n.pn.Send(m.Client, rcpt)
		}
		return
	}
	if err := seccrypt.VerifyFileCertificate(n.brokerPub, &m.Cert, n.nowUnix()); err != nil {
		return
	}
	if err := seccrypt.VerifyContent(&m.Cert, m.Data); err != nil {
		return
	}
	if n.store.Has(m.Cert.FileID) {
		// Idempotent: already stored (e.g. re-sent during recovery);
		// re-issue the receipt so the client can complete.
		n.sendReceipt(m)
		return
	}
	if n.accept(m.Cert.Size, m.Diverted) {
		item := storage.Item{Cert: m.Cert, Data: m.Data, Diverted: m.Diverted, Primary: m.Primary}
		if err := n.putStore(item); err == nil {
			n.syncCache()
			n.mu.Lock()
			if m.Diverted {
				n.stats.DivertedStores++
			} else {
				n.stats.PrimaryStores++
			}
			n.mu.Unlock()
			n.sendReceipt(m)
			return
		}
	}
	n.mu.Lock()
	n.stats.LocalRejects++
	n.mu.Unlock()
	if m.Diverted {
		// A diverted replica we cannot hold: bounce back to the primary.
		n.pn.Send(m.Primary, wire.DivertReject{FileID: m.Cert.FileID, ReqID: m.ReqID, From: n.pn.Ref()})
		return
	}
	// Primary replica we cannot hold: try replica diversion.
	if n.cfg.ReplicaDiversion && n.tryDivert(m) {
		return
	}
	n.pn.Send(m.Client, wire.InsertReject{FileID: m.Cert.FileID, ReqID: m.ReqID, Reason: "no space"})
}

// divertCandidates lists leaf-set members eligible to hold a diverted
// replica: outside the k-replica set, per section 2.3 ("a node ... asks a
// node in its leaf set that is not among the k closest to store the
// copy").
func (n *Node) divertCandidates(m wire.ReplicaStore) []wire.NodeRef {
	set := n.replicaSet(m.Cert.FileID.Key(), m.Cert.Replicas)
	inSet := make(map[id.Node]bool, len(set))
	for _, r := range set {
		inSet[r.ID] = true
	}
	var out []wire.NodeRef
	for _, r := range n.pn.LeafMembers() {
		if !inSet[r.ID] {
			out = append(out, r)
		}
	}
	return out
}

// tryDivert starts replica diversion: forward to the first candidate and
// remember the rest in the pending table so DivertReject can advance.
func (n *Node) tryDivert(m wire.ReplicaStore) bool {
	cands := n.divertCandidates(m)
	if len(cands) == 0 {
		return false
	}
	n.mu.Lock()
	n.stats.DivertAttempts++
	key := divertKey(m.Cert.FileID, m.ReqID)
	n.pending[key] = &pendingOp{kind: opDivert, divert: &m, candidates: cands[1:]}
	n.mu.Unlock()
	out := m
	out.Diverted = true
	out.Primary = n.pn.Ref()
	n.pn.Send(cands[0], out)
	return true
}

// divertKey gives diversion bookkeeping a distinct pending-table key so it
// cannot collide with the client's own request ids.
func divertKey(f id.File, reqID uint64) uint64 {
	h := uint64(0xd1e7)
	for _, b := range f[:8] {
		h = h*131 + uint64(b)
	}
	return h ^ reqID
}

// handleDivertReject advances to the next diversion candidate or rejects.
func (n *Node) handleDivertReject(m wire.DivertReject) {
	n.mu.Lock()
	key := divertKey(m.FileID, m.ReqID)
	op := n.pending[key]
	if op == nil || op.kind != opDivert {
		n.mu.Unlock()
		return
	}
	if len(op.candidates) == 0 {
		delete(n.pending, key)
		client := op.divert.Client
		n.mu.Unlock()
		n.pn.Send(client, wire.InsertReject{FileID: m.FileID, ReqID: m.ReqID, Reason: "diversion exhausted"})
		return
	}
	next := op.candidates[0]
	op.candidates = op.candidates[1:]
	out := *op.divert
	n.mu.Unlock()
	out.Diverted = true
	out.Primary = n.pn.Ref()
	n.pn.Send(next, out)
}

// sendReceipt signs and returns a store receipt to the client; diverted
// stores also notify the primary so it can record the pointer.
func (n *Node) sendReceipt(m wire.ReplicaStore) {
	rcpt := wire.StoreReceipt{
		FileID:     m.Cert.FileID,
		StoredBy:   n.pn.Ref(),
		OnBehalfOf: m.Primary,
		Diverted:   m.Diverted,
		Size:       m.Cert.Size,
		ReqID:      m.ReqID,
	}
	n.card.SignStoreReceipt(&rcpt)
	if m.Diverted && m.Primary.ID != n.pn.ID() {
		n.pn.Send(m.Primary, rcpt)
	}
	if m.Client.ID == n.pn.ID() {
		n.handleStoreReceipt(rcpt)
		return
	}
	n.pn.Send(m.Client, rcpt)
}

// handleStoreReceipt runs at the client (collecting toward k receipts) and
// at primaries recording diversion pointers.
func (n *Node) handleStoreReceipt(m wire.StoreReceipt) {
	if m.Diverted && m.OnBehalfOf.ID == n.pn.ID() && m.StoredBy.ID != n.pn.ID() {
		// We are the primary: the diverted replica found a home; keep the
		// pointer and close the diversion op.
		if seccrypt.VerifyStoreReceipt(&m) == nil {
			n.store.SetPointer(m.FileID, m.StoredBy)
			n.mu.Lock()
			delete(n.pending, divertKey(m.FileID, m.ReqID))
			n.mu.Unlock()
		}
		// The receipt may also be addressed to us as client (self-insert);
		// fall through in that case.
		if m.OnBehalfOf.ID != m.StoredBy.ID {
			n.clientCollectReceipt(m)
		}
		return
	}
	n.clientCollectReceipt(m)
}

// ---------------------------------------------------------------------------
// Lookup

// serveLookup answers a lookup from local replicas, diversion pointers or
// cache. midRoute marks Forward-time interception. It reports whether the
// request was satisfied (or delegated to a pointer target).
func (n *Node) serveLookup(r *wire.Routed, m wire.LookupRequest, midRoute bool) bool {
	if it, err := n.store.Get(m.FileID); err == nil {
		n.replyLookup(r, m, it, false)
		return true
	}
	if n.cfg.Caching {
		if it, ok := n.cache.Get(m.FileID); ok {
			n.mu.Lock()
			n.stats.CacheServes++
			n.mu.Unlock()
			n.replyLookup(r, m, it, true)
			return true
		}
	}
	if holder, ok := n.store.Pointer(m.FileID); ok && n.pn.Reachable(holder) {
		// Replica was diverted: chase the pointer. A pointer to a holder
		// the failure detector knows is dead is NOT chased — the fetch
		// would silently black-hole the whole lookup attempt — and the
		// request keeps routing instead, so another replica can serve it.
		n.mu.Lock()
		n.stats.PointerFollowed++
		n.mu.Unlock()
		n.pn.Send(holder, wire.FetchRequest{FileID: m.FileID, Client: m.Client, ReqID: m.ReqID})
		return true
	}
	return false
}

func (n *Node) replyLookup(r *wire.Routed, m wire.LookupRequest, it storage.Item, cached bool) {
	n.mu.Lock()
	n.stats.LookupsServed++
	n.mu.Unlock()
	reply := wire.LookupReply{
		Cert:     it.Cert,
		Data:     it.Data,
		From:     n.pn.Ref(),
		ReqID:    m.ReqID,
		Hops:     r.Hops,
		Distance: r.Distance,
		Cached:   cached,
	}
	if m.Client.ID == n.pn.ID() {
		n.handleLookupReply(reply)
	} else {
		n.pn.Send(m.Client, reply)
	}
	// Push a cached copy one hop back toward the client, caching "close
	// to interested clients" (sections 1 and 2.3).
	if n.cfg.Caching && !m.PrevHop.IsZero() && m.PrevHop.ID != n.pn.ID() {
		n.mu.Lock()
		n.stats.CachePushes++
		n.mu.Unlock()
		n.pn.Send(m.PrevHop, wire.CacheCopy{Cert: it.Cert, Data: it.Data})
	}
}

// handleLookupRoot runs when a lookup reaches the root without being
// satisfied en route.
func (n *Node) handleLookupRoot(r wire.Routed, m wire.LookupRequest) {
	if n.serveLookup(&r, m, false) {
		return
	}
	miss := wire.LookupMiss{FileID: m.FileID, ReqID: m.ReqID}
	if m.Client.ID == n.pn.ID() {
		n.handleLookupMiss(miss)
		return
	}
	n.pn.Send(m.Client, miss)
}

// handleFetch serves a direct fetch (pointer chase or recovery transfer).
func (n *Node) handleFetch(m wire.FetchRequest) {
	it, err := n.store.Get(m.FileID)
	if err != nil {
		if n.cfg.Caching {
			if cit, ok := n.cache.Get(m.FileID); ok {
				it = cit
				err = nil
			}
		}
	}
	if err != nil {
		n.pn.Send(m.Client, wire.LookupMiss{FileID: m.FileID, ReqID: m.ReqID})
		return
	}
	n.pn.Send(m.Client, wire.LookupReply{
		Cert: it.Cert, Data: it.Data, From: n.pn.Ref(), ReqID: m.ReqID,
	})
}

// handleCacheCopy stores an unsolicited cached copy if it verifies and
// fits in spare capacity.
func (n *Node) handleCacheCopy(m wire.CacheCopy) {
	if !n.cfg.Caching {
		return
	}
	if seccrypt.VerifyFileCertificate(n.brokerPub, &m.Cert, n.nowUnix()) != nil {
		return
	}
	if seccrypt.VerifyContent(&m.Cert, m.Data) != nil {
		return
	}
	n.syncCache()
	n.cache.Put(storage.Item{Cert: m.Cert, Data: m.Data}, 1)
}

// ---------------------------------------------------------------------------
// Reclaim

// handleReclaimRoot fans a verified reclaim out to the replica set
// (section 2.1, "Generation of reclaim certificates and receipts").
func (n *Node) handleReclaimRoot(r wire.Routed, m wire.ReclaimRequest) {
	fwd := wire.ReclaimForward{Cert: m.Cert, Client: m.Client, ReqID: m.ReqID}
	// Fan out to the replica set for this fileId; k is not in the reclaim
	// certificate, so use the larger of the node's default and the stored
	// certificate's replication factor when known.
	k := n.cfg.K
	if it, err := n.store.Get(m.Cert.FileID); err == nil && it.Cert.Replicas > k {
		k = it.Cert.Replicas
	}
	for _, ref := range n.replicaSet(m.Cert.FileID.Key(), k) {
		if ref.ID == n.pn.ID() {
			n.handleReclaimForward(fwd)
			continue
		}
		n.pn.Send(ref, fwd)
	}
}

// handleReclaimForward verifies and executes a reclaim at a storage node.
func (n *Node) handleReclaimForward(m wire.ReclaimForward) {
	// Pointer first: the diverted holder does the physical free.
	if holder, ok := n.store.Pointer(m.Cert.FileID); ok {
		n.store.DeletePointer(m.Cert.FileID)
		n.pn.Send(holder, m)
		return
	}
	it, err := n.store.Get(m.Cert.FileID)
	if err != nil {
		return // nothing stored here; weak reclaim semantics (section 1)
	}
	if seccrypt.VerifyReclaimAuthorized(n.brokerPub, &m.Cert, &it.Cert, n.nowUnix()) != nil {
		return // unauthorized reclaim silently ignored
	}
	freed, err := n.deleteStore(m.Cert.FileID)
	if err != nil {
		return
	}
	n.cache.Invalidate(m.Cert.FileID)
	n.syncCache()
	n.mu.Lock()
	n.stats.Reclaims++
	n.mu.Unlock()
	rcpt := wire.ReclaimReceipt{
		FileID: m.Cert.FileID,
		Freed:  freed,
		By:     n.pn.Ref(),
		ReqID:  m.ReqID,
	}
	n.card.SignReclaimReceipt(&rcpt)
	if m.Client.ID == n.pn.ID() {
		n.handleReclaimReceipt(rcpt)
		return
	}
	n.pn.Send(m.Client, rcpt)
}

// ---------------------------------------------------------------------------
// Re-replication and audits

// Approximate wire sizes for maintenance accounting. The simulator never
// serializes, so these model what the gob/TCP transport would move:
// fixed-width fields at their width, byte slices at their length, and a
// NodeRef as id plus a short address.
const refApproxBytes = id.NodeBytes + 12

func certApproxBytes(c *wire.FileCertificate) int64 {
	return int64(id.FileBytes + 32 + 8 + 4 + 8 + len(c.Salt) + len(c.OwnerPub) + len(c.CardCert) + len(c.Sig))
}

func replicateApproxBytes(c *wire.FileCertificate, dataLen int) int64 {
	return certApproxBytes(c) + int64(dataLen) + refApproxBytes
}

func syncOfferApproxBytes(files int) int64 {
	return int64(files*(id.FileBytes+8)) + refApproxBytes // fileId + size each
}

func syncRequestApproxBytes(files int) int64 {
	return int64(files*id.FileBytes) + refApproxBytes
}

// markSwept records that anti-entropy ran now, so the periodic Maintain
// sweep backs off for a full interval after ANY re-replication —
// including event-driven ones. Without this, a keep-alive tick that
// declares a member dead would run LeafSetChanged's sweep and then
// immediately Maintain's, doubling the digest fan-out exactly during
// churn bursts.
func (n *Node) markSwept() {
	now := n.pn.Clock().Now()
	n.mu.Lock()
	n.swept = true
	n.lastSweep = now
	n.mu.Unlock()
}

// reReplicate restores the replication invariant after a leaf-set change.
// The default scheme is digest-based anti-entropy: send each peer that is
// in one of our files' replica sets ONE compact summary of the fileIds it
// should hold; the peer fetches only what it is missing (SyncRequest →
// Replicate). The legacy scheme pushes every full body to every replica-set
// member on every change and relies on receivers to drop duplicates; it is
// kept selectable as the bandwidth baseline for experiment E16.
func (n *Node) reReplicate() {
	n.markSwept()
	self := n.pn.Ref()
	items := n.store.Items()
	if len(items) == 0 {
		return
	}
	if !n.cfg.LegacyPushReplication {
		n.antiEntropy(self, items)
		return
	}
	// Legacy push-all. Counter updates are accumulated locally and folded
	// into stats under one lock acquire — this loop sends O(files × k)
	// messages and is hot under churn.
	reps := 0
	var bytes int64
	for _, it := range items {
		if it.Diverted {
			continue // the primary is responsible for diverted copies
		}
		set := n.replicaSet(it.Cert.FileID.Key(), it.Cert.Replicas)
		selfIn := false
		for _, ref := range set {
			if ref.ID == self.ID {
				selfIn = true
				break
			}
		}
		if !selfIn {
			continue // we hold a stale extra copy; harmless, acts as cache
		}
		for _, ref := range set {
			if ref.ID == self.ID {
				continue
			}
			reps++
			bytes += replicateApproxBytes(&it.Cert, len(it.Data))
			n.pn.Send(ref, wire.Replicate{Cert: it.Cert, Data: it.Data, From: self})
		}
	}
	if reps > 0 {
		n.mu.Lock()
		n.stats.Replications += reps
		n.stats.MaintenanceMsgs += reps
		n.stats.MaintenanceBytes += bytes
		n.mu.Unlock()
	}
}

// antiEntropy sends one digest per replica-set peer covering every stored
// primary file that peer should hold. Store.Items returns files in sorted
// fileId order, so the digest contents and the peer send order are
// deterministic.
func (n *Node) antiEntropy(self wire.NodeRef, items []storage.Item) {
	type offer struct {
		ref   wire.NodeRef
		files []id.File
		sizes []int64
	}
	var offers []*offer
	index := make(map[id.Node]*offer)
	for i := range items {
		it := &items[i]
		if it.Diverted {
			continue // the primary is responsible for diverted copies
		}
		set := n.replicaSet(it.Cert.FileID.Key(), it.Cert.Replicas)
		selfIn := false
		for _, ref := range set {
			if ref.ID == self.ID {
				selfIn = true
				break
			}
		}
		if !selfIn {
			continue // stale extra copy; harmless, acts as cache
		}
		for _, ref := range set {
			if ref.ID == self.ID {
				continue
			}
			o := index[ref.ID]
			if o == nil {
				o = &offer{ref: ref}
				index[ref.ID] = o
				offers = append(offers, o)
			}
			o.files = append(o.files, it.Cert.FileID)
			o.sizes = append(o.sizes, it.Cert.Size)
		}
	}
	if len(offers) == 0 {
		return
	}
	var bytes int64
	for _, o := range offers {
		bytes += syncOfferApproxBytes(len(o.files))
		n.pn.Send(o.ref, wire.SyncOffer{From: self, Files: o.files, Sizes: o.sizes})
	}
	n.mu.Lock()
	n.stats.SyncOffers += len(offers)
	n.stats.MaintenanceMsgs += len(offers)
	n.stats.MaintenanceBytes += bytes
	n.mu.Unlock()
}

// handleSyncOffer diffs an anti-entropy digest against local state and
// requests only the missing files: not already stored or delegated, not
// over the admission threshold at the advertised size, and not already
// requested from another offerer this repair round. Final acceptance
// (certificate, content hash, replica-set membership, free space) is
// enforced when the bodies arrive in handleReplicate, so a stale or
// malicious digest can waste at most one round trip.
func (n *Node) handleSyncOffer(m wire.SyncOffer) {
	var missing []id.File
	now := n.pn.Clock().Now()
	n.mu.Lock()
	// Expire abandoned fetches (offerer crashed before shipping, or the
	// file was never offered again) so the map stays bounded by the
	// fetches genuinely in flight.
	for f, at := range n.requested {
		if now-at >= n.cfg.RequestTimeout {
			delete(n.requested, f)
		}
	}
	for i, f := range m.Files {
		if n.store.Has(f) {
			delete(n.requested, f)
			continue
		}
		if _, ok := n.store.Pointer(f); ok {
			continue // our responsibility is delegated to a diverted holder
		}
		if i < len(m.Sizes) && !n.accept(m.Sizes[i], false) {
			continue // the body would be rejected on arrival; skip the fetch
		}
		if at, ok := n.requested[f]; ok && now-at < n.cfg.RequestTimeout {
			continue // another offerer is already shipping this file
		}
		n.requested[f] = now
		missing = append(missing, f)
	}
	if len(missing) == 0 {
		n.mu.Unlock()
		return
	}
	n.stats.SyncRequests++
	n.stats.MaintenanceMsgs++
	n.stats.MaintenanceBytes += syncRequestApproxBytes(len(missing))
	n.mu.Unlock()
	n.pn.Send(m.From, wire.SyncRequest{From: n.pn.Ref(), Files: missing})
}

// handleSyncRequest answers an anti-entropy fetch with full Replicate
// bodies for the files still held locally.
func (n *Node) handleSyncRequest(m wire.SyncRequest) {
	self := n.pn.Ref()
	reps := 0
	var bytes int64
	for _, f := range m.Files {
		it, err := n.store.Get(f)
		if err != nil {
			continue // reclaimed or never held; the requester will re-sync later
		}
		reps++
		bytes += replicateApproxBytes(&it.Cert, len(it.Data))
		n.pn.Send(m.From, wire.Replicate{Cert: it.Cert, Data: it.Data, From: self})
	}
	if reps > 0 {
		n.mu.Lock()
		n.stats.Replications += reps
		n.stats.MaintenanceMsgs += reps
		n.stats.MaintenanceBytes += bytes
		n.mu.Unlock()
	}
}

// handleReplicate stores a recovery transfer if it verifies and fits.
func (n *Node) handleReplicate(m wire.Replicate) {
	// The in-flight anti-entropy fetch (if any) is over: a body arrived.
	// Clearing the marker here — even when the body is rejected below —
	// lets the next SyncOffer retry immediately, e.g. once this node's
	// replica-set view has converged.
	n.mu.Lock()
	delete(n.requested, m.Cert.FileID)
	n.mu.Unlock()
	if n.store.Has(m.Cert.FileID) {
		return
	}
	if seccrypt.VerifyFileCertificate(n.brokerPub, &m.Cert, n.nowUnix()) != nil {
		return
	}
	if seccrypt.VerifyContent(&m.Cert, m.Data) != nil {
		return
	}
	// Only accept if this node actually belongs to the replica set.
	set := n.replicaSet(m.Cert.FileID.Key(), m.Cert.Replicas)
	in := false
	for _, ref := range set {
		if ref.ID == n.pn.ID() {
			in = true
			break
		}
	}
	if !in {
		return
	}
	if !n.accept(m.Cert.Size, false) {
		return
	}
	if err := n.putStore(storage.Item{Cert: m.Cert, Data: m.Data}); err == nil {
		n.syncCache()
	}
}

// handleAuditChallenge proves storage of a file (section 2.1, random
// audits expose nodes that cheat on contributed storage).
func (n *Node) handleAuditChallenge(m wire.AuditChallenge) {
	resp := wire.AuditResponse{FileID: m.FileID, From: n.pn.Ref(), ReqID: m.ReqID}
	if it, err := n.store.Get(m.FileID); err == nil {
		resp.Held = true
		resp.Proof = seccrypt.AuditProof(m.Nonce, it.Data)
	}
	n.pn.Send(m.From, resp)
}

func (n *Node) handleAuditResponse(m wire.AuditResponse) {
	n.mu.Lock()
	op := n.pending[m.ReqID]
	if op != nil && op.kind == opAudit {
		delete(n.pending, m.ReqID)
	}
	n.mu.Unlock()
	if op == nil || op.kind != opAudit {
		return
	}
	op.stopTimer()
	ok := m.Held && op.auditWant == m.Proof
	op.auditCB(ok)
}
