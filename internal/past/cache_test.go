package past_test

import (
	"fmt"
	"testing"
)

// TestSyncCacheYieldsToPrimaryStore pins the unpinned-cache contract of
// section 2.3: cache space is exactly the storage not currently in use
// by replicas, so as primary storage fills, every node's cache capacity
// shrinks in lockstep with its free space and never overflows it.
func TestSyncCacheYieldsToPrimaryStore(t *testing.T) {
	cfg := defaultCfg()
	cfg.Caching = true
	cfg.Capacity = 64 << 10
	pc := buildPAST(t, 16, 131, cfg, nil)

	check := func(when string) {
		t.Helper()
		for i, pn := range pc.PAST {
			if got, want := pn.Cache().Capacity(), pn.Store().Free(); got != want {
				t.Fatalf("%s: node %d cache capacity %d != store free %d", when, i, got, want)
			}
			if pn.Cache().Used() > pn.Cache().Capacity() {
				t.Fatalf("%s: node %d cache used %d exceeds capacity %d",
					when, i, pn.Cache().Used(), pn.Cache().Capacity())
			}
		}
	}
	check("empty network")

	var free int64
	for _, pn := range pc.PAST {
		free += pn.Store().Free()
	}
	for f := 0; f < 24; f++ {
		pc.insert(t, f%16, pc.Cards[f%16], fmt.Sprintf("fill-%d", f), make([]byte, 4096), 3)
	}
	check("after inserts")
	var freeNow int64
	for _, pn := range pc.PAST {
		freeNow += pn.Store().Free()
	}
	if freeNow >= free {
		t.Fatalf("inserts did not consume primary storage (%d -> %d)", free, freeNow)
	}
}

// TestSyncCacheDisabledIsZero pins the other half of the contract: with
// caching off the cache tier holds no capacity at all, so replicas can
// never be shadowed by stale cached copies.
func TestSyncCacheDisabledIsZero(t *testing.T) {
	cfg := defaultCfg()
	cfg.Caching = false
	pc := buildPAST(t, 8, 132, cfg, nil)
	pc.insert(t, 0, pc.Cards[0], "a.bin", make([]byte, 1024), 3)
	for i, pn := range pc.PAST {
		if pn.Cache().Capacity() != 0 || pn.Cache().Used() != 0 {
			t.Fatalf("node %d cache capacity=%d used=%d with caching disabled",
				i, pn.Cache().Capacity(), pn.Cache().Used())
		}
	}
}

// TestForwardServesMidRouteFromCache pins where cache hits come from: a
// lookup answered with Cached=true was served by a node that holds the
// file only in its cache, not among its replicas — i.e. past.Forward
// consumed the request mid-route before it ever reached the replica set.
func TestForwardServesMidRouteFromCache(t *testing.T) {
	cfg := defaultCfg()
	cfg.Caching = true
	pc := buildPAST(t, 40, 133, cfg, nil)
	res := pc.insert(t, 0, pc.Cards[0], "hot.bin", make([]byte, 256), 3)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i := 0; i < 12; i++ {
		lr := pc.lookup(t, 29, res.FileID)
		if lr.Err != nil {
			t.Fatalf("lookup %d: %v", i, lr.Err)
		}
		if !lr.Cached {
			continue
		}
		server := pc.IndexByID(lr.From.ID)
		if server < 0 {
			t.Fatalf("cached reply from unknown node %s", lr.From.ID.Short())
		}
		if _, err := pc.PAST[server].Store().Get(res.FileID); err == nil {
			t.Fatalf("cached reply came from node %d which holds a replica; expected a pure cache copy", server)
		}
		if !pc.PAST[server].Cache().Has(res.FileID) {
			t.Fatalf("node %d served Cached=true but its cache does not hold the file", server)
		}
		return
	}
	t.Fatal("no lookup was served from a mid-route cache")
}
