// Package transport defines the interfaces that decouple the Pastry and
// PAST protocol logic from how messages actually move: a deterministic
// discrete-event simulator (package simnet) for experiments, and a real
// TCP transport (this package's tcp.go) for deployments.
package transport

import (
	"time"

	"past/internal/wire"
)

// Handler receives an inbound message. Handlers must not block; slow work
// should be rescheduled via the Clock.
type Handler func(from string, m wire.Msg)

// Transport sends messages on behalf of one node. Send is asynchronous and
// unreliable (messages may be lost); reliability is the protocol's job.
type Transport interface {
	// Addr returns the local address other nodes use to reach this one.
	Addr() string
	// Send transmits m to the node at addr. It never blocks on the
	// network; delivery failures are silent, like UDP.
	Send(to string, m wire.Msg) error
	// SetHandler installs the inbound message handler. It must be called
	// exactly once before any message can be delivered.
	SetHandler(h Handler)
	// Proximity returns the scalar proximity metric (section 1, footnote:
	// "a scalar metric, such as the number of IP hops, geographic
	// distance...") between this node and addr, in milliseconds.
	Proximity(to string) float64
	// Close releases resources. After Close, Send returns an error.
	Close() error
}

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the callback was still
	// pending.
	Stop() bool
	// Release returns the handle to its owner's pool for reuse, without
	// cancelling a still-pending callback. Callers that churn through
	// timers (request timeouts, keep-alive ticks) should Release handles
	// they are done with — after Stop, or from inside/after the fired
	// callback — so simulated timers recycle their handles the way the
	// simulator pools its events. A released handle must not be touched
	// again, and Release must be called at most once per handle.
	// Implementations for which pooling is meaningless treat it as a
	// no-op, so calling it is always safe under the contract above.
	Release()
}

// Clock abstracts time so protocol code runs identically under virtual
// (simulated) and wall-clock time.
type Clock interface {
	// Now returns elapsed time since an arbitrary epoch.
	Now() time.Duration
	// AfterFunc schedules f to run after d. In the simulator f runs on
	// the event loop; under the real clock it runs on its own goroutine.
	AfterFunc(d time.Duration, f func()) Timer
}

// RealClock is a Clock backed by package time.
type RealClock struct{ epoch time.Time }

// NewRealClock returns a Clock that reports time elapsed since now.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

// AfterFunc implements Clock.
func (c *RealClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Release is a no-op: real timers are garbage collected.
func (r realTimer) Release() {}
