package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"past/internal/wire"
)

// countHandler installs a handler on tr that counts delivered messages.
func countHandler(tr *TCP) func() int {
	var mu sync.Mutex
	n := 0
	tr.SetHandler(func(string, wire.Msg) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return n
	}
}

// TestTCPTruncatedFrame kills the sending side mid-frame: the receiver
// must drop the connection without delivering the partial message and
// keep serving other peers.
func TestTCPTruncatedFrame(t *testing.T) {
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	got := countHandler(b)

	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Announce a 1000-byte frame, send 10 bytes, slam the connection shut.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1000)
	conn.Write(hdr[:])
	conn.Write(make([]byte, 10))
	conn.Close()

	// A healthy peer must still get through afterwards.
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	a.Send(b.Addr(), wire.Ping{Nonce: 1})
	waitFor(t, func() bool { return got() == 1 })
}

// TestTCPOversizedFrameRejected sends a frame whose announced size
// exceeds MaxFrame: the receiver must kill that connection before
// allocating, deliver nothing from it, and keep serving others.
func TestTCPOversizedFrameRejected(t *testing.T) {
	b, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{MaxFrame: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	got := countHandler(b)

	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30) // 1 GiB announcement
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The receiver must hang up on us (rather than waiting for a gigabyte).
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after oversized announcement")
	}
	if got() != 0 {
		t.Fatal("oversized frame delivered")
	}

	// Zero-length announcements are rejected the same way.
	conn2, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	binary.BigEndian.PutUint32(hdr[:], 0)
	conn2.Write(hdr[:])
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn2.Read(buf); err == nil {
		t.Fatal("connection still open after zero-length announcement")
	}
}

// TestTCPOversizedSendRefusedLocally verifies the sender side: a message
// that encodes past MaxFrame is dropped locally and the next Send redials
// a fresh connection rather than poisoning the stream.
func TestTCPOversizedSendRefusedLocally(t *testing.T) {
	a, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{MaxFrame: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	got := countHandler(b)

	big := wire.ReplicaStore{Data: make([]byte, 1<<20)}
	if err := a.Send(b.Addr(), big); err != nil {
		t.Fatalf("oversized send must be silent local loss, got %v", err)
	}
	// Give the writer a moment to refuse and tear down, then prove the
	// path still works for normal traffic.
	waitFor(t, func() bool {
		a.Send(b.Addr(), wire.Ping{Nonce: 2})
		return got() >= 1
	})
}

// TestTCPReconnectAfterRestart restarts the receiving node on the SAME
// address (as a crashed-and-recovered daemon would) and verifies the
// sender's cached connection heals: the first sends after the restart may
// be lost (the cached conn dies, UDP-like), but a later Send redials and
// delivers.
func TestTCPReconnectAfterRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	got1 := countHandler(b1)
	a.Send(addr, wire.Ping{Nonce: 1})
	waitFor(t, func() bool { return got1() == 1 })

	// "Crash" b and restart it on the same port.
	b1.Close()
	var b2 *TCP
	waitFor(t, func() bool {
		b2, err = ListenTCP(addr)
		return err == nil
	})
	t.Cleanup(func() { b2.Close() })
	got2 := countHandler(b2)

	// Keep sending: the first write surfaces the dead conn and drops it;
	// a subsequent Send must redial the restarted node and deliver.
	waitFor(t, func() bool {
		a.Send(addr, wire.Ping{Nonce: 3})
		return got2() >= 1
	})
}

// TestTCPDialTimeoutBounded sends to a blackholed address with a short
// DialTimeout and asserts Send returns within a bound, without error
// (silent loss). 192.0.2.0/24 is TEST-NET-1, guaranteed unroutable;
// sandboxed CI may refuse it instantly, which also satisfies the bound.
func TestTCPDialTimeoutBounded(t *testing.T) {
	a, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	start := time.Now()
	if err := a.Send("192.0.2.1:9", wire.Ping{}); err != nil {
		t.Fatalf("unreachable peer must be silent loss, got %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Send blocked %v; DialTimeout=200ms not honored", d)
	}
}

// TestTCPGarbagePayloadDropped feeds a well-framed but undecodable
// payload: the connection dies, nothing is delivered, and the transport
// survives.
func TestTCPGarbagePayloadDropped(t *testing.T) {
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	got := countHandler(b)

	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("this is not gob")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn.Write(hdr[:])
	conn.Write(payload)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after garbage payload")
	}
	if got() != 0 {
		t.Fatal("garbage delivered to handler")
	}
}
