package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"past/internal/wire"
)

func init() { wire.RegisterAll() }

// frame is the unit the TCP transport exchanges: the sender's address (so
// replies can flow without a handshake) plus one message.
type frame struct {
	From string
	Msg  wire.Msg
}

// TCPOptions tune the TCP transport. The zero value gives the defaults.
type TCPOptions struct {
	// DialTimeout bounds outbound connection attempts (default 3s). A
	// peer that cannot be reached within it is treated as silent loss,
	// like the simulator's unreliable sends.
	DialTimeout time.Duration
	// MaxFrame caps one frame's encoded size in bytes (default 8 MiB).
	// An inbound frame announcing a larger size kills the connection
	// before any allocation: a garbage or malicious length prefix cannot
	// make the node allocate unbounded memory.
	MaxFrame int
}

const (
	defaultDialTimeout = 3 * time.Second
	defaultMaxFrame    = 8 << 20
)

// TCP is a transport.Transport over real TCP connections. One listener
// accepts inbound peers; outbound connections are cached per destination.
// Each frame travels as a 4-byte big-endian length prefix followed by a
// self-contained gob encoding, so the reader can reject oversized frames
// before allocating and detect truncation (a peer dying mid-frame) as a
// short read rather than a corrupted stream. Send never blocks on the
// network: each peer connection has a writer goroutine fed by a bounded
// queue, and a full queue drops (UDP-like semantics, matching the
// simulator).
type TCP struct {
	addr        string
	ln          net.Listener
	dialTimeout time.Duration
	maxFrame    int
	handler     Handler
	handlerM    sync.RWMutex

	mu      sync.Mutex
	peers   map[string]*tcpPeer
	inbound map[net.Conn]bool
	closed  bool

	proxMu sync.Mutex
	prox   map[string]float64

	wg sync.WaitGroup
}

type tcpPeer struct {
	out  chan frame
	conn net.Conn
}

// ListenTCP starts a transport listening on the given address
// ("127.0.0.1:0" picks a free port) with default options.
func ListenTCP(listen string) (*TCP, error) {
	return ListenTCPOpts(listen, TCPOptions{})
}

// ListenTCPOpts is ListenTCP with explicit options.
func ListenTCPOpts(listen string, opts TCPOptions) (*TCP, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = defaultDialTimeout
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = defaultMaxFrame
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	t := &TCP{
		addr:        ln.Addr().String(),
		ln:          ln,
		dialTimeout: opts.DialTimeout,
		maxFrame:    opts.MaxFrame,
		peers:       make(map[string]*tcpPeer),
		inbound:     make(map[net.Conn]bool),
		prox:        make(map[string]float64),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCP) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.handlerM.Lock()
	t.handler = h
	t.handlerM.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// writeFrame encodes f into buf and writes it length-prefixed. A frame
// that encodes beyond maxFrame is refused locally — better to drop one
// message than to ship something every receiver will kill the connection
// over.
func writeFrame(w io.Writer, buf *bytes.Buffer, f *frame, maxFrame int) error {
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(f); err != nil {
		return err
	}
	if buf.Len() > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", buf.Len(), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame reads one length-prefixed frame. It errors on a zero or
// oversized announced length (before allocating), on truncation (peer
// closed mid-frame), and on undecodable payload.
func readFrame(r io.Reader, maxFrame int) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > uint32(maxFrame) {
		return frame{}, fmt.Errorf("transport: announced frame size %d outside (0, %d]", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return frame{}, err
	}
	return f, nil
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		f, err := readFrame(conn, t.maxFrame)
		if err != nil {
			return // EOF, truncated frame, oversized frame, or garbage: drop the connection
		}
		t.handlerM.RLock()
		h := t.handler
		t.handlerM.RUnlock()
		if h != nil {
			h(f.From, f.Msg)
		}
	}
}

// Send implements Transport. It connects lazily and enqueues the message;
// when the peer's queue is full the message is dropped, matching the
// unreliable-datagram semantics the protocol layer expects.
func (t *TCP) Send(to string, m wire.Msg) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: closed")
	}
	p, ok := t.peers[to]
	if !ok {
		conn, err := net.DialTimeout("tcp", to, t.dialTimeout)
		if err != nil {
			t.mu.Unlock()
			return nil // unreachable peer: silent loss, like the simulator
		}
		p = &tcpPeer{out: make(chan frame, 256), conn: conn}
		t.peers[to] = p
		t.wg.Add(1)
		go t.writeLoop(to, p)
	}
	t.mu.Unlock()
	select {
	case p.out <- frame{From: t.addr, Msg: m}:
	default:
		// Queue full: drop.
	}
	return nil
}

func (t *TCP) writeLoop(to string, p *tcpPeer) {
	defer t.wg.Done()
	defer p.conn.Close()
	var buf bytes.Buffer
	for f := range p.out {
		if err := writeFrame(p.conn, &buf, &f, t.maxFrame); err != nil {
			// Connection broke (or the frame was locally oversized):
			// forget the peer so the next Send redials fresh.
			t.mu.Lock()
			if cur, ok := t.peers[to]; ok && cur == p {
				delete(t.peers, to)
			}
			t.mu.Unlock()
			return
		}
	}
}

// Proximity implements Transport: round-trip time to the peer, measured
// once by TCP connect and cached. The scalar proximity metric of the
// paper ("such as the number of IP hops, geographic distance...") maps to
// RTT in a real deployment.
func (t *TCP) Proximity(to string) float64 {
	t.proxMu.Lock()
	if v, ok := t.prox[to]; ok {
		t.proxMu.Unlock()
		return v
	}
	t.proxMu.Unlock()
	start := time.Now()
	conn, err := net.DialTimeout("tcp", to, 2*time.Second)
	if err != nil {
		return 1e9
	}
	rtt := float64(time.Since(start)) / float64(time.Millisecond)
	conn.Close()
	if rtt <= 0 {
		rtt = 0.01
	}
	t.proxMu.Lock()
	t.prox[to] = rtt
	t.proxMu.Unlock()
	return rtt
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for to, p := range t.peers {
		close(p.out)
		delete(t.peers, to)
	}
	// Unblock inbound readers: their Decode returns once the conn closes.
	for conn := range t.inbound {
		conn.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
