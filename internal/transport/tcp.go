package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"past/internal/wire"
)

func init() { wire.RegisterAll() }

// frame is the unit the TCP transport exchanges: the sender's address (so
// replies can flow without a handshake) plus one message.
type frame struct {
	From string
	Msg  wire.Msg
}

// TCP is a transport.Transport over real TCP connections. One listener
// accepts inbound peers; outbound connections are cached per destination.
// Messages are gob-encoded frames. Send never blocks on the network: each
// peer connection has a writer goroutine fed by a bounded queue, and a
// full queue drops (UDP-like semantics, matching the simulator).
type TCP struct {
	addr     string
	ln       net.Listener
	handler  Handler
	handlerM sync.RWMutex

	mu      sync.Mutex
	peers   map[string]*tcpPeer
	inbound map[net.Conn]bool
	closed  bool

	proxMu sync.Mutex
	prox   map[string]float64

	wg sync.WaitGroup
}

type tcpPeer struct {
	out  chan frame
	conn net.Conn
}

// ListenTCP starts a transport listening on the given address
// ("127.0.0.1:0" picks a free port).
func ListenTCP(listen string) (*TCP, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	t := &TCP{
		addr:    ln.Addr().String(),
		ln:      ln,
		peers:   make(map[string]*tcpPeer),
		inbound: make(map[net.Conn]bool),
		prox:    make(map[string]float64),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCP) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.handlerM.Lock()
	t.handler = h
	t.handlerM.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		t.handlerM.RLock()
		h := t.handler
		t.handlerM.RUnlock()
		if h != nil {
			h(f.From, f.Msg)
		}
	}
}

// Send implements Transport. It connects lazily and enqueues the message;
// when the peer's queue is full the message is dropped, matching the
// unreliable-datagram semantics the protocol layer expects.
func (t *TCP) Send(to string, m wire.Msg) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: closed")
	}
	p, ok := t.peers[to]
	if !ok {
		conn, err := net.DialTimeout("tcp", to, 3*time.Second)
		if err != nil {
			t.mu.Unlock()
			return nil // unreachable peer: silent loss, like the simulator
		}
		p = &tcpPeer{out: make(chan frame, 256), conn: conn}
		t.peers[to] = p
		t.wg.Add(1)
		go t.writeLoop(to, p)
	}
	t.mu.Unlock()
	select {
	case p.out <- frame{From: t.addr, Msg: m}:
	default:
		// Queue full: drop.
	}
	return nil
}

func (t *TCP) writeLoop(to string, p *tcpPeer) {
	defer t.wg.Done()
	defer p.conn.Close()
	enc := gob.NewEncoder(p.conn)
	for f := range p.out {
		if err := enc.Encode(&f); err != nil {
			// Connection broke: forget the peer so the next Send redials.
			t.mu.Lock()
			if cur, ok := t.peers[to]; ok && cur == p {
				delete(t.peers, to)
			}
			t.mu.Unlock()
			return
		}
	}
}

// Proximity implements Transport: round-trip time to the peer, measured
// once by TCP connect and cached. The scalar proximity metric of the
// paper ("such as the number of IP hops, geographic distance...") maps to
// RTT in a real deployment.
func (t *TCP) Proximity(to string) float64 {
	t.proxMu.Lock()
	if v, ok := t.prox[to]; ok {
		t.proxMu.Unlock()
		return v
	}
	t.proxMu.Unlock()
	start := time.Now()
	conn, err := net.DialTimeout("tcp", to, 2*time.Second)
	if err != nil {
		return 1e9
	}
	rtt := float64(time.Since(start)) / float64(time.Millisecond)
	conn.Close()
	if rtt <= 0 {
		rtt = 0.01
	}
	t.proxMu.Lock()
	t.prox[to] = rtt
	t.proxMu.Unlock()
	return rtt
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for to, p := range t.peers {
		close(p.out)
		delete(t.peers, to)
	}
	// Unblock inbound readers: their Decode returns once the conn closes.
	for conn := range t.inbound {
		conn.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
