package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"past/internal/wire"
)

func init() { wire.RegisterAll() }

// frame is the unit the TCP transport exchanges: the sender's address (so
// replies can flow without a handshake) plus one message.
type frame struct {
	From string
	Msg  wire.Msg
}

// TCPOptions tune the TCP transport. The zero value gives the defaults.
type TCPOptions struct {
	// DialTimeout bounds outbound connection attempts (default 3s). A
	// peer that cannot be reached within it is treated as silent loss,
	// like the simulator's unreliable sends.
	DialTimeout time.Duration
	// MaxFrame caps one frame's encoded size in bytes (default 8 MiB).
	// An inbound frame announcing a larger size kills the connection
	// before any allocation: a garbage or malicious length prefix cannot
	// make the node allocate unbounded memory.
	MaxFrame int
	// DialVia, when set, routes every outbound connection through the
	// egress proxy listening at this address instead of dialing peers
	// directly: the transport connects to DialVia, announces the intended
	// destination with a via preamble (see WriteViaPreamble), and waits
	// for a one-byte ack meaning the proxy reached the target. The chaos
	// harness uses this to interpose a deterministic fault injector
	// between real nodes; empty (the default) dials peers directly.
	DialVia string
	// Breaker configures the per-peer dial circuit breaker. The zero
	// value disables it entirely (every Send to an unconnected peer
	// redials), preserving the pre-breaker behavior.
	Breaker BreakerOptions
}

const (
	defaultDialTimeout = 3 * time.Second
	defaultMaxFrame    = 8 << 20
)

// TCPStats counts transport-level events since the transport started.
type TCPStats struct {
	// Dials and DialFailures count outbound connection attempts.
	Dials, DialFailures int64
	// Suppressed counts sends dropped without a dial because the peer's
	// circuit breaker was open.
	Suppressed int64
	// BreakerOpens counts open transitions (including re-opens after a
	// failed half-open probe).
	BreakerOpens int64
}

// TCP is a transport.Transport over real TCP connections. One listener
// accepts inbound peers; outbound connections are cached per destination.
// Each frame travels as a 4-byte big-endian length prefix followed by a
// self-contained gob encoding, so the reader can reject oversized frames
// before allocating and detect truncation (a peer dying mid-frame) as a
// short read rather than a corrupted stream. Send never blocks on the
// network: dialing happens on a connector goroutine per peer (a slow or
// dead destination never stalls sends to healthy ones), and each peer
// connection has a writer goroutine fed by a bounded queue whose overflow
// drops (UDP-like semantics, matching the simulator).
type TCP struct {
	addr        string
	ln          net.Listener
	dialTimeout time.Duration
	maxFrame    int
	dialVia     string
	breaker     *breaker
	handler     Handler
	handlerM    sync.RWMutex

	mu      sync.Mutex
	peers   map[string]*tcpPeer
	inbound map[net.Conn]bool
	probes  map[string]*time.Timer
	closed  bool

	proxMu sync.Mutex
	prox   map[string]float64

	dials, dialFailures, suppressed atomic.Int64

	wg sync.WaitGroup
}

// tcpPeer is one outbound destination: a bounded send queue plus a done
// channel closed exactly once (by Close) to stop its writer. The entry is
// installed in the peer map before the dial completes, so concurrent
// senders share one connection attempt instead of racing to dial.
type tcpPeer struct {
	out  chan frame
	done chan struct{}
}

// ListenTCP starts a transport listening on the given address
// ("127.0.0.1:0" picks a free port) with default options.
func ListenTCP(listen string) (*TCP, error) {
	return ListenTCPOpts(listen, TCPOptions{})
}

// ListenTCPOpts is ListenTCP with explicit options.
func ListenTCPOpts(listen string, opts TCPOptions) (*TCP, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = defaultDialTimeout
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = defaultMaxFrame
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	t := &TCP{
		addr:        ln.Addr().String(),
		ln:          ln,
		dialTimeout: opts.DialTimeout,
		maxFrame:    opts.MaxFrame,
		dialVia:     opts.DialVia,
		breaker:     newBreaker(opts.Breaker),
		peers:       make(map[string]*tcpPeer),
		inbound:     make(map[net.Conn]bool),
		probes:      make(map[string]*time.Timer),
		prox:        make(map[string]float64),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCP) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.handlerM.Lock()
	t.handler = h
	t.handlerM.Unlock()
}

// Reachable reports whether the dial circuit breaker would currently
// admit traffic to addr. With the breaker disabled it is always true.
// Installed as the overlay's reachability probe (pastry.Node.SetProbe),
// it turns transport-level failure knowledge into routing decisions: a
// peer whose breaker is open is routed around instead of timed out
// against.
func (t *TCP) Reachable(addr string) bool {
	return t.breaker.Reachable(addr)
}

// Stats returns transport counters. The snapshot is approximate under
// concurrency but each counter is individually exact.
func (t *TCP) Stats() TCPStats {
	return TCPStats{
		Dials:        t.dials.Load(),
		DialFailures: t.dialFailures.Load(),
		Suppressed:   t.suppressed.Load(),
		BreakerOpens: t.breaker.Opens(),
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// writeFrame encodes f into buf and writes it length-prefixed. A frame
// that encodes beyond maxFrame is refused locally — better to drop one
// message than to ship something every receiver will kill the connection
// over.
func writeFrame(w io.Writer, buf *bytes.Buffer, f *frame, maxFrame int) error {
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(f); err != nil {
		return err
	}
	if buf.Len() > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", buf.Len(), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame reads one length-prefixed frame. It errors on a zero or
// oversized announced length (before allocating), on truncation (peer
// closed mid-frame), and on undecodable payload.
func readFrame(r io.Reader, maxFrame int) (frame, error) {
	payload, err := ReadRawFrame(r, maxFrame)
	if err != nil {
		return frame{}, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return frame{}, err
	}
	return f, nil
}

// ReadRawFrame reads one length-prefixed frame and returns its payload
// without decoding it. It errors on a zero or oversized announced length
// before allocating, and on truncation. Exported for proxies (the chaos
// fault injector) that must preserve frame boundaries without
// understanding frame contents.
func ReadRawFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > uint32(maxFrame) {
		return nil, fmt.Errorf("transport: announced frame size %d outside (0, %d]", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// WriteRawFrame writes payload as one length-prefixed frame, the inverse
// of ReadRawFrame.
func WriteRawFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Via preamble: the first line a transport writes after connecting to a
// DialVia egress proxy, announcing who is dialing whom. The proxy answers
// with a single ViaAck byte once the target connection is up; anything
// else (or a closed connection) means the target is unreachable and the
// dial fails, preserving direct-dial failure semantics through the proxy.
const (
	viaMagic = "CHAOS1"
	// ViaAck is the byte the proxy writes once the target is connected.
	ViaAck = '+'
	// maxViaPreamble bounds the preamble line a proxy will read.
	maxViaPreamble = 512
)

// WriteViaPreamble writes the "CHAOS1 <from> <to>\n" dial preamble.
func WriteViaPreamble(w io.Writer, from, to string) error {
	if strings.ContainsAny(from+to, " \n") {
		return fmt.Errorf("transport: via preamble addresses must not contain spaces or newlines")
	}
	_, err := fmt.Fprintf(w, "%s %s %s\n", viaMagic, from, to)
	return err
}

// ReadViaPreamble reads one dial preamble byte-by-byte (never consuming
// past the newline, so the frame stream that follows stays intact) and
// returns the announced (from, to) addresses.
func ReadViaPreamble(r io.Reader) (from, to string, err error) {
	var line []byte
	var b [1]byte
	for len(line) < maxViaPreamble {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return "", "", err
		}
		if b[0] == '\n' {
			fields := strings.Fields(string(line))
			if len(fields) != 3 || fields[0] != viaMagic {
				return "", "", fmt.Errorf("transport: malformed via preamble %q", string(line))
			}
			return fields[1], fields[2], nil
		}
		line = append(line, b[0])
	}
	return "", "", fmt.Errorf("transport: via preamble exceeds %d bytes", maxViaPreamble)
}

// dial opens a connection to the peer at addr — directly, or through the
// DialVia egress proxy with the preamble handshake. In both modes a
// returned nil error means the destination (not just the proxy) accepted
// the connection within the timeout.
func (t *TCP) dial(addr string, timeout time.Duration) (net.Conn, error) {
	t.dials.Add(1)
	if t.dialVia == "" {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			t.dialFailures.Add(1)
		}
		return conn, err
	}
	conn, err := net.DialTimeout("tcp", t.dialVia, timeout)
	if err != nil {
		t.dialFailures.Add(1)
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		t.dialFailures.Add(1)
		return nil, err
	}
	var ack [1]byte
	if err := WriteViaPreamble(conn, t.addr, addr); err == nil {
		_, err = io.ReadFull(conn, ack[:])
	}
	if err != nil || ack[0] != ViaAck {
		conn.Close()
		t.dialFailures.Add(1)
		return nil, fmt.Errorf("transport: via %s: %s unreachable", t.dialVia, addr)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		t.dialFailures.Add(1)
		return nil, err
	}
	return conn, nil
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		f, err := readFrame(conn, t.maxFrame)
		if err != nil {
			return // EOF, truncated frame, oversized frame, or garbage: drop the connection
		}
		t.handlerM.RLock()
		h := t.handler
		t.handlerM.RUnlock()
		if h != nil {
			h(f.From, f.Msg)
		}
	}
}

// Send implements Transport. It connects lazily and enqueues the message;
// when the peer's queue is full the message is dropped, matching the
// unreliable-datagram semantics the protocol layer expects. The dial
// itself runs on a connector goroutine — Send never blocks on the
// network, and concurrent senders to one new peer share a single attempt.
func (t *TCP) Send(to string, m wire.Msg) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("transport: closed")
	}
	p, ok := t.peers[to]
	if !ok {
		if !t.breaker.Allow(to, time.Now()) {
			t.mu.Unlock()
			t.suppressed.Add(1)
			return nil // breaker open: drop without hammering the dead peer
		}
		p = &tcpPeer{out: make(chan frame, 256), done: make(chan struct{})}
		t.peers[to] = p
		t.wg.Add(1)
		go t.connect(to, p)
	}
	t.mu.Unlock()
	select {
	case p.out <- frame{From: t.addr, Msg: m}:
	case <-p.done:
		// Transport shut down while enqueueing.
	default:
		// Queue full: drop.
	}
	return nil
}

// connect dials the peer and hands the connection to a writer; on failure
// it informs the breaker and forgets the peer so queued frames are lost
// (silent-loss semantics) and a later Send retries.
func (t *TCP) connect(to string, p *tcpPeer) {
	defer t.wg.Done()
	conn, err := t.dial(to, t.dialTimeout)
	if err != nil {
		t.breaker.Fail(to, time.Now())
		t.scheduleProbe(to)
		t.forget(to, p)
		return
	}
	t.breaker.Success(to)
	select {
	case <-p.done:
		conn.Close() //nolint:errcheck // transport closed mid-dial
		return
	default:
	}
	t.wg.Add(1)
	go t.writeLoop(to, p, conn)
}

func (t *TCP) writeLoop(to string, p *tcpPeer, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var buf bytes.Buffer
	for {
		select {
		case <-p.done:
			return
		case f := <-p.out:
			if err := writeFrame(conn, &buf, &f, t.maxFrame); err != nil {
				// Connection broke (or the frame was locally oversized):
				// forget the peer so the next Send redials fresh.
				t.forget(to, p)
				return
			}
		}
	}
}

// scheduleProbe arms the peer's half-open probe: when the breaker holds
// the peer open, a timer fires at cooldown expiry and the transport dials
// the peer itself. Routing treats an open peer as unreachable, so no user
// traffic would otherwise ever test it — the probe is what reinstates a
// healed peer ("probe before reinstating"). One pending probe per peer.
func (t *TCP) scheduleProbe(to string) {
	delay, open := t.breaker.NextProbe(to, time.Now())
	if !open {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if _, pending := t.probes[to]; pending {
		return
	}
	t.wg.Add(1)
	t.probes[to] = time.AfterFunc(delay, func() { t.probePeer(to) })
}

// probePeer performs one half-open probe dial. Success fully reinstates
// the peer (Reachable flips true, sends flow again); failure re-opens the
// breaker with a doubled cooldown and re-arms the probe.
func (t *TCP) probePeer(to string) {
	defer t.wg.Done()
	t.mu.Lock()
	delete(t.probes, to)
	closed := t.closed
	t.mu.Unlock()
	if closed || !t.breaker.Allow(to, time.Now()) {
		return
	}
	conn, err := t.dial(to, t.dialTimeout)
	if err != nil {
		t.breaker.Fail(to, time.Now())
		t.scheduleProbe(to)
		return
	}
	t.breaker.Success(to)
	conn.Close() //nolint:errcheck // liveness check only; real traffic redials
}

// forget removes p from the peer map if it is still the current entry for
// to (a replacement dialed meanwhile must not be evicted).
func (t *TCP) forget(to string, p *tcpPeer) {
	t.mu.Lock()
	if cur, ok := t.peers[to]; ok && cur == p {
		delete(t.peers, to)
	}
	t.mu.Unlock()
}

// Proximity implements Transport: round-trip time to the peer, measured
// once by TCP connect and cached. The scalar proximity metric of the
// paper ("such as the number of IP hops, geographic distance...") maps to
// RTT in a real deployment. With DialVia set the measurement includes the
// proxy's connect-time faults, so injected gray failures show up in the
// metric exactly as real ones would.
func (t *TCP) Proximity(to string) float64 {
	t.proxMu.Lock()
	if v, ok := t.prox[to]; ok {
		t.proxMu.Unlock()
		return v
	}
	t.proxMu.Unlock()
	start := time.Now()
	conn, err := t.dial(to, 2*time.Second)
	if err != nil {
		return 1e9
	}
	rtt := float64(time.Since(start)) / float64(time.Millisecond)
	conn.Close()
	if rtt <= 0 {
		rtt = 0.01
	}
	t.proxMu.Lock()
	t.prox[to] = rtt
	t.proxMu.Unlock()
	return rtt
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for to, p := range t.peers {
		close(p.done)
		delete(t.peers, to)
	}
	for to, timer := range t.probes {
		if timer.Stop() {
			t.wg.Done() // probe never ran; release its wg slot
		}
		delete(t.probes, to)
	}
	// Unblock inbound readers: their Decode returns once the conn closes.
	for conn := range t.inbound {
		conn.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
