package transport

import (
	"sync"
	"testing"
	"time"

	"past/internal/id"
	"past/internal/wire"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func newPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenTCP: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPSendReceive(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	var got []wire.Msg
	var fromAddr string
	b.SetHandler(func(from string, m wire.Msg) {
		mu.Lock()
		got = append(got, m)
		fromAddr = from
		mu.Unlock()
	})
	if err := a.Send(b.Addr(), wire.Ping{Nonce: 7}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 1 })
	mu.Lock()
	defer mu.Unlock()
	if p, ok := got[0].(wire.Ping); !ok || p.Nonce != 7 {
		t.Fatalf("got %#v", got[0])
	}
	if fromAddr != a.Addr() {
		t.Fatalf("from = %q, want %q", fromAddr, a.Addr())
	}
}

func TestTCPRoundTripComplexMessage(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	var got *wire.Routed
	b.SetHandler(func(from string, m wire.Msg) {
		mu.Lock()
		if r, ok := m.(wire.Routed); ok {
			got = &r
		}
		mu.Unlock()
	})
	sent := wire.Routed{
		Key:  id.Rand(1),
		Hops: 3,
		Payload: wire.InsertRequest{
			Cert: wire.FileCertificate{
				FileID:   id.RandFile(2),
				Size:     11,
				Replicas: 3,
				Salt:     []byte{1, 2},
				OwnerPub: []byte{3, 4, 5},
			},
			Data:   []byte("hello world"),
			Client: wire.NodeRef{ID: id.Rand(3), Addr: a.Addr()},
			ReqID:  99,
		},
	}
	a.Send(b.Addr(), sent)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return got != nil })
	mu.Lock()
	defer mu.Unlock()
	ir, ok := got.Payload.(wire.InsertRequest)
	if !ok {
		t.Fatalf("payload type %T", got.Payload)
	}
	if string(ir.Data) != "hello world" || ir.ReqID != 99 || got.Key != sent.Key {
		t.Fatal("fields corrupted in transit")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := newPair(t)
	var mu sync.Mutex
	gotA, gotB := 0, 0
	a.SetHandler(func(from string, m wire.Msg) { mu.Lock(); gotA++; mu.Unlock() })
	b.SetHandler(func(from string, m wire.Msg) {
		mu.Lock()
		gotB++
		mu.Unlock()
		b.Send(from, wire.Pong{Nonce: 1})
	})
	for i := 0; i < 10; i++ {
		a.Send(b.Addr(), wire.Ping{Nonce: uint64(i)})
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return gotA == 10 && gotB == 10 })
}

func TestTCPSendToDeadPeerSilent(t *testing.T) {
	a, _ := newPair(t)
	// Nothing listens on this port (we bind and close to reserve/free it).
	dead, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	dead.Close()
	if err := a.Send(deadAddr, wire.Ping{}); err != nil {
		t.Fatalf("send to dead peer must be silent loss, got %v", err)
	}
}

func TestTCPProximityCached(t *testing.T) {
	a, b := newPair(t)
	p1 := a.Proximity(b.Addr())
	if p1 <= 0 || p1 > 1000 {
		t.Fatalf("loopback RTT %f implausible", p1)
	}
	p2 := a.Proximity(b.Addr())
	if p1 != p2 {
		t.Fatal("proximity not cached")
	}
	if a.Proximity("127.0.0.1:1") < 1e8 {
		t.Fatal("unreachable peer should be far")
	}
}

func TestTCPClose(t *testing.T) {
	a, b := newPair(t)
	a.Send(b.Addr(), wire.Ping{})
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send(b.Addr(), wire.Ping{}); err == nil {
		t.Fatal("send after close should error")
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	t0 := c.Now()
	fired := make(chan struct{})
	tm := c.AfterFunc(10*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if c.Now() <= t0 {
		t.Fatal("clock did not advance")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	tm2 := c.AfterFunc(time.Hour, func() { t.Error("should never fire") })
	if !tm2.Stop() {
		t.Fatal("Stop before fire should report true")
	}
}
