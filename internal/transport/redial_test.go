package transport

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"past/internal/wire"
)

// TestBreakerStateMachine drives the breaker through its full lifecycle
// with explicit clocks: closed → open at threshold → suppressing while
// open → exactly one half-open probe → reopen with doubled cooldown on
// probe failure → fully reinstated on probe success.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Second, MaxCooldown: 4 * time.Second})
	t0 := time.Unix(1000, 0)
	// Below threshold: always allowed.
	for i := 0; i < 2; i++ {
		if !b.Allow("x", t0) {
			t.Fatalf("fail %d: breaker open below threshold", i)
		}
		b.Fail("x", t0)
	}
	if !b.Allow("x", t0) {
		t.Fatal("breaker open at 2/3 failures")
	}
	b.Fail("x", t0) // third consecutive failure: opens for 1s
	if got := b.Opens(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}
	if b.Allow("x", t0.Add(500*time.Millisecond)) {
		t.Fatal("allowed while open")
	}
	if !b.Allow("y", t0) {
		t.Fatal("unrelated peer affected")
	}
	// Cooldown expired: exactly one probe.
	t1 := t0.Add(1100 * time.Millisecond)
	if !b.Allow("x", t1) {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.Allow("x", t1) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: reopens immediately with doubled cooldown (2s).
	b.Fail("x", t1)
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
	if b.Allow("x", t1.Add(1500*time.Millisecond)) {
		t.Fatal("allowed during doubled cooldown")
	}
	t2 := t1.Add(2100 * time.Millisecond)
	if !b.Allow("x", t2) {
		t.Fatal("probe not admitted after doubled cooldown")
	}
	// Probe succeeds: peer fully reinstated, failure history gone.
	b.Success("x")
	for i := 0; i < 2; i++ {
		if !b.Allow("x", t2) {
			t.Fatal("not reinstated after successful probe")
		}
		b.Fail("x", t2)
	}
	if !b.Allow("x", t2) {
		t.Fatal("stale failure count survived Success")
	}
}

// TestBreakerDisabledZeroValue pins the off-by-default contract: the zero
// options never suppress and never count opens.
func TestBreakerDisabledZeroValue(t *testing.T) {
	b := newBreaker(BreakerOptions{})
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		b.Fail("x", now)
		if !b.Allow("x", now) {
			t.Fatal("disabled breaker suppressed a dial")
		}
	}
	if b.Opens() != 0 {
		t.Fatal("disabled breaker counted opens")
	}
}

// TestTCPBreakerSuppressesThenReinstates exercises the breaker through
// the real transport: repeated sends to a dead address open the breaker
// (dials stop), and once the peer comes back a half-open probe reinstates
// it and traffic flows again.
func TestTCPBreakerSuppressesThenReinstates(t *testing.T) {
	a, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{
		DialTimeout: 500 * time.Millisecond,
		Breaker:     BreakerOptions{Threshold: 2, Cooldown: 300 * time.Millisecond, MaxCooldown: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	// A port that refuses connections: listen, grab the addr, close.
	probe, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := probe.Addr()
	probe.Close()

	// Sends to the dead peer fail their dials until the breaker opens.
	waitFor(t, func() bool {
		a.Send(dead, wire.Ping{Nonce: 1})
		return a.Stats().BreakerOpens >= 1
	})
	// While open, sends are suppressed without dialing.
	dials := a.Stats().Dials
	a.Send(dead, wire.Ping{Nonce: 2})
	if st := a.Stats(); st.Suppressed == 0 {
		t.Fatalf("no suppressed sends while breaker open: %+v", st)
	} else if st.Dials != dials {
		t.Fatalf("breaker open but dial count moved %d -> %d", dials, st.Dials)
	}

	// Heal: restart the peer on the same address. The next probe dial
	// succeeds, reinstates the peer, and delivers.
	var b *TCP
	waitFor(t, func() bool {
		b, err = ListenTCP(dead)
		return err == nil
	})
	t.Cleanup(func() { b.Close() })
	got := countHandler(b)
	waitFor(t, func() bool {
		a.Send(dead, wire.Ping{Nonce: 3})
		return got() >= 1
	})
}

// TestTCPReachableProbeReinstates pins the active probe path: once the
// breaker opens, Reachable reports false (routing avoids the peer) and no
// user traffic flows — so the transport itself must probe the peer and
// flip Reachable back when the probe dial succeeds, with zero sends from
// the application in between.
func TestTCPReachableProbeReinstates(t *testing.T) {
	a, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{
		DialTimeout: 500 * time.Millisecond,
		Breaker:     BreakerOptions{Threshold: 2, Cooldown: 200 * time.Millisecond, MaxCooldown: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	probe, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := probe.Addr()
	probe.Close()
	if !a.Reachable(dead) {
		t.Fatal("peer unreachable before any dial failed")
	}

	waitFor(t, func() bool {
		a.Send(dead, wire.Ping{Nonce: 1})
		return !a.Reachable(dead)
	})

	// Heal the peer. From here on the application sends nothing: only the
	// transport's own probe can reinstate the peer.
	var b *TCP
	waitFor(t, func() bool {
		b, err = ListenTCP(dead)
		return err == nil
	})
	t.Cleanup(func() { b.Close() })
	waitFor(t, func() bool { return a.Reachable(dead) })

	// And reinstatement is real: a send now delivers.
	got := countHandler(b)
	waitFor(t, func() bool {
		a.Send(dead, wire.Ping{Nonce: 2})
		return got() >= 1
	})
}

// TestTCPConcurrentRedial hammers one receiver from many concurrent
// sender goroutines while the receiver restarts on the same address
// mid-stream. Frames may be lost (UDP-like semantics) but must never be
// duplicated, and after closing both transports no goroutines may leak.
// Run under -race this also pins the dial/redial paths free of data
// races between concurrent senders sharing one peer entry.
func TestTCPConcurrentRedial(t *testing.T) {
	baseline := runtime.NumGoroutine()

	a, err := ListenTCPOpts("127.0.0.1:0", TCPOptions{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()

	var mu sync.Mutex
	seen := make(map[uint64]int)
	record := func(tr *TCP) {
		tr.SetHandler(func(_ string, m wire.Msg) {
			if p, ok := m.(wire.Ping); ok {
				mu.Lock()
				seen[p.Nonce]++
				mu.Unlock()
			}
		})
	}
	record(b1)

	const senders, perSender = 8, 150
	var wg sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			for i := 0; i < perSender; i++ {
				nonce := uint64(s)<<32 | uint64(i)
				if err := a.Send(addr, wire.Ping{Nonce: nonce}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				if i%20 == 19 {
					time.Sleep(time.Millisecond) // let the restart interleave
				}
			}
		}(s)
	}
	close(start)

	// Mid-stream, crash the receiver and restart it on the same port —
	// every sender's cached connection dies and must redial concurrently.
	time.Sleep(30 * time.Millisecond)
	b1.Close()
	var b2 *TCP
	waitFor(t, func() bool {
		b2, err = ListenTCP(addr)
		return err == nil
	})
	record(b2)
	wg.Wait()

	// Drain: sends still in writer queues flush or drop; then verify no
	// nonce ever arrived twice.
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	dups := 0
	delivered := len(seen)
	for nonce, n := range seen {
		if n > 1 {
			dups++
			t.Errorf("nonce %#x delivered %d times", nonce, n)
		}
	}
	mu.Unlock()
	if dups > 0 {
		t.Fatalf("%d duplicated frames (of %d delivered)", dups, delivered)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered at all")
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
	// All writer/connector/reader goroutines must be gone.
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestViaPreambleRoundTrip pins the egress-proxy handshake framing: the
// preamble round-trips, never consumes past its newline, and malformed
// lines are rejected.
func TestViaPreambleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteViaPreamble(&buf, "127.0.0.1:7001", "127.0.0.1:7002"); err != nil {
		t.Fatal(err)
	}
	// A raw frame follows the preamble on the same stream.
	payload := []byte("frame-payload")
	if err := WriteRawFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	from, to, err := ReadViaPreamble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != "127.0.0.1:7001" || to != "127.0.0.1:7002" {
		t.Fatalf("preamble = (%q, %q)", from, to)
	}
	got, err := ReadRawFrame(&buf, 1<<20)
	if err != nil {
		t.Fatalf("frame after preamble: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame corrupted by preamble read: %q", got)
	}

	for _, bad := range []string{"NOPE a b\n", "CHAOS1 onlyone\n", "CHAOS1 a b c d\n"} {
		if _, _, err := ReadViaPreamble(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("malformed preamble %q accepted", bad)
		}
	}
	if err := WriteViaPreamble(&buf, "with space", "x"); err == nil {
		t.Fatal("preamble with spaces accepted")
	}
	if _, _, err := ReadViaPreamble(bytes.NewBufferString(fmt.Sprintf("CHAOS1 %s", string(make([]byte, 1024))))); err == nil {
		t.Fatal("unbounded preamble accepted")
	}
}
