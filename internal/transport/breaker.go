package transport

import (
	"sync"
	"time"
)

// BreakerOptions configure the per-peer dial circuit breaker. The breaker
// protects a node from hammering dead peers with connection attempts:
// after Threshold consecutive dial failures to one address the breaker
// opens and sends to that address are dropped without dialing; after
// Cooldown a single half-open probe dial is allowed, and only its success
// reinstates the peer. Each failed probe doubles the cooldown up to
// MaxCooldown, so a long-dead peer costs one dial attempt per cooldown
// instead of one per send.
//
// The zero value disables the breaker entirely — the default, keeping
// healthy-network behavior (and every recorded experiment) byte-identical
// to the pre-breaker transport.
type BreakerOptions struct {
	// Threshold is the number of consecutive dial failures that opens the
	// breaker for a peer. 0 disables the breaker.
	Threshold int
	// Cooldown is the first open period (default 1s).
	Cooldown time.Duration
	// MaxCooldown caps the exponential cooldown growth (default 30s).
	MaxCooldown time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Threshold <= 0 {
		return BreakerOptions{} // disabled
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.MaxCooldown <= 0 {
		o.MaxCooldown = 30 * time.Second
	}
	if o.MaxCooldown < o.Cooldown {
		o.MaxCooldown = o.Cooldown
	}
	return o
}

// breaker tracks per-peer dial health. All methods are safe for
// concurrent use; a disabled breaker (Threshold 0) short-circuits to
// allow-everything without taking the lock.
type breaker struct {
	opts BreakerOptions

	mu    sync.Mutex
	peers map[string]*breakerEntry
	opens int64
}

type breakerEntry struct {
	fails     int           // consecutive dial failures
	openUntil time.Time     // zero when closed
	cooldown  time.Duration // next open period
	probing   bool          // a half-open probe dial is in flight
}

func newBreaker(opts BreakerOptions) *breaker {
	opts = opts.withDefaults()
	b := &breaker{opts: opts}
	if opts.Threshold > 0 {
		b.peers = make(map[string]*breakerEntry)
	}
	return b
}

func (b *breaker) enabled() bool { return b.opts.Threshold > 0 }

// Opens returns how many times any peer's breaker opened (including
// re-opens after failed probes).
func (b *breaker) Opens() int64 {
	if !b.enabled() {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Allow reports whether a dial to the peer may proceed now. While open it
// returns false; once the cooldown expires it admits exactly one half-open
// probe (subsequent callers keep getting false until the probe resolves
// via Fail or Success).
func (b *breaker) Allow(to string, now time.Time) bool {
	if !b.enabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.peers[to]
	if !ok || e.openUntil.IsZero() {
		return true
	}
	if now.Before(e.openUntil) {
		return false
	}
	if e.probing {
		return false
	}
	e.probing = true
	return true
}

// Fail records a dial failure. Crossing the threshold — or failing a
// half-open probe — (re)opens the breaker with an exponentially growing
// cooldown.
func (b *breaker) Fail(to string, now time.Time) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.peers[to]
	if !ok {
		e = &breakerEntry{cooldown: b.opts.Cooldown}
		b.peers[to] = e
	}
	e.fails++
	wasProbe := e.probing
	e.probing = false
	if e.fails < b.opts.Threshold && !wasProbe {
		return
	}
	e.openUntil = now.Add(e.cooldown)
	e.cooldown *= 2
	if e.cooldown > b.opts.MaxCooldown {
		e.cooldown = b.opts.MaxCooldown
	}
	b.opens++
}

// Success records a successful dial, fully reinstating the peer.
func (b *breaker) Success(to string) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	delete(b.peers, to)
	b.mu.Unlock()
}

// Reachable reports, without side effects, whether the peer is currently
// believed alive: false from the moment the breaker opens until a probe
// dial succeeds (cooldown expiry alone is not evidence of life). It backs
// the routing layer's reachability oracle, so lookups and pointer chases
// route around peers the transport already knows are dead instead of
// timing out against them; the transport's own background probe — not
// user traffic — reinstates the peer.
func (b *breaker) Reachable(to string) bool {
	if !b.enabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.peers[to]
	return !ok || e.openUntil.IsZero()
}

// NextProbe returns how long until the peer's open breaker admits its
// half-open probe dial, and whether the breaker is open at all.
func (b *breaker) NextProbe(to string, now time.Time) (time.Duration, bool) {
	if !b.enabled() {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.peers[to]
	if !ok || e.openUntil.IsZero() {
		return 0, false
	}
	d := e.openUntil.Sub(now)
	if d < 0 {
		d = 0
	}
	return d, true
}
