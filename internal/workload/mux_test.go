package workload

import "testing"

func TestClientMuxDeterminismAndSpread(t *testing.T) {
	const pop = 1_000_000
	a := NewClientMux(pop, 42)
	b := NewClientMux(pop, 42)
	other := NewClientMux(pop, 43)

	entrySeen := map[int]bool{}
	differ := false
	for i := uint64(0); i < 4096; i++ {
		ca, cb := a.Client(i), b.Client(i)
		if ca != cb {
			t.Fatalf("t=%d: same seed diverges: %d vs %d", i, ca, cb)
		}
		if ca < 0 || ca >= pop {
			t.Fatalf("client %d out of population", ca)
		}
		if a.EntryNode(ca, 100) != b.EntryNode(cb, 100) {
			t.Fatalf("t=%d: entry node diverges", i)
		}
		if a.Key(ca, i) != b.Key(cb, i) {
			t.Fatalf("t=%d: key stream diverges", i)
		}
		if other.Client(i) != ca {
			differ = true
		}
		entrySeen[a.EntryNode(ca, 100)] = true
	}
	if !differ {
		t.Fatal("different seeds produced identical client streams")
	}
	// Uniform folding must reach essentially every entry node.
	if len(entrySeen) < 95 {
		t.Fatalf("only %d/100 entry nodes used", len(entrySeen))
	}

	// A client's entry node is stable and its key stream is per-client:
	// two clients' streams must not collide.
	if a.EntryNode(7, 100) != a.EntryNode(7, 100) {
		t.Fatal("entry node unstable")
	}
	if a.Key(7, 0) == a.Key(8, 0) {
		t.Fatal("distinct clients share a key stream")
	}
}

func TestClientMuxDegenerate(t *testing.T) {
	m := NewClientMux(0, 1) // clamps to one client
	if m.Population != 1 {
		t.Fatalf("Population = %d", m.Population)
	}
	if c := m.Client(9); c != 0 {
		t.Fatalf("single-client mux returned client %d", c)
	}
}
