// Package workload generates the synthetic file populations and request
// streams driving the storage experiments (E8-E10, A2).
//
// The SOSP'01 companion evaluation used two proprietary traces: a web
// proxy trace (NLANR) and a combined departmental filesystem. Neither is
// available, so this package substitutes analytic distributions with the
// same qualitative shape (see ARCHITECTURE.md, "Workloads"): file sizes
// follow a lognormal body with a Pareto tail — many small files, a heavy
// large-file tail — and file popularity follows a Zipf law, the standard
// model for web object popularity. Per-node storage capacities draw from
// a bounded lognormal, matching the paper's assumption that node
// capacities differ by no more than two orders of magnitude. Parameters
// are chosen so the size skew relative to node capacity matches the
// regime the paper's utilization experiments explore.
//
// All draws come from explicitly seeded private streams, keeping every
// experiment reproducible from its seed.
package workload
