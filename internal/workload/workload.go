package workload

import (
	"math"
	"math/rand"
)

// SizeDist draws file sizes in bytes.
type SizeDist struct {
	rng *rand.Rand
	// Mu and Sigma parameterize the lognormal body.
	Mu, Sigma float64
	// TailProb is the probability a draw comes from the Pareto tail.
	TailProb float64
	// TailXm and TailAlpha parameterize the Pareto tail.
	TailXm    float64
	TailAlpha float64
	// Min and Max clamp draws (bytes).
	Min, Max int64
}

// DefaultSizes mirrors the mixed web/filesystem character of the paper's
// traces: median a few KiB, mean tens of KiB, occasional multi-MiB files.
func DefaultSizes(seed int64) *SizeDist {
	return &SizeDist{
		rng:       rand.New(rand.NewSource(seed)),
		Mu:        math.Log(8 << 10), // median 8 KiB
		Sigma:     1.4,
		TailProb:  0.02,
		TailXm:    256 << 10,
		TailAlpha: 1.1,
		Min:       64,
		Max:       8 << 20,
	}
}

// Draw returns one file size.
func (d *SizeDist) Draw() int64 {
	var v float64
	if d.rng.Float64() < d.TailProb {
		// Pareto: xm * U^(-1/alpha)
		u := d.rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		v = d.TailXm * math.Pow(u, -1/d.TailAlpha)
	} else {
		v = math.Exp(d.Mu + d.Sigma*d.rng.NormFloat64())
	}
	s := int64(v)
	if s < d.Min {
		s = d.Min
	}
	if s > d.Max {
		s = d.Max
	}
	return s
}

// Zipf draws item indexes in [0, n) with Zipf(s) popularity: index 0 is
// the most popular.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a Zipf sampler over n items with exponent s (> 1 per
// math/rand's parameterization; web workloads are typically fit with
// s ≈ 0.8–1.2, and the caller passes s+ε as needed).
func NewZipf(seed int64, s float64, n int) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Draw returns a popularity-ranked item index.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// FlashCrowd wraps a Zipf stream so the hottest popularity rank maps to
// one designated "viral" item: a previously cold file that suddenly
// dominates the request mix (one story going viral). Draws swap rank 0
// with the viral item's index and leave every other rank unchanged, so
// the body of the distribution is still ordinary Zipf traffic.
type FlashCrowd struct {
	z *Zipf
	// Viral is the item index that takes over rank 0.
	Viral int
}

// NewFlashCrowd samples n items with Zipf(s) popularity, except that
// item viral receives rank-0 (maximum) popularity.
func NewFlashCrowd(seed int64, s float64, n, viral int) *FlashCrowd {
	return &FlashCrowd{z: NewZipf(seed, s, n), Viral: viral}
}

// Draw returns one item index.
func (f *FlashCrowd) Draw() int {
	r := f.z.Draw()
	switch r {
	case 0:
		return f.Viral
	case f.Viral:
		return 0
	}
	return r
}

// Capacities draws node storage capacities. The SOSP'01 evaluation
// assigned node capacities from a truncated normal distribution so that
// capacities differ by no more than a small factor; large imbalance is
// what storage management must absorb.
type Capacities struct {
	rng *rand.Rand
	// Mean is the average capacity in bytes.
	Mean float64
	// Spread is the standard deviation as a fraction of the mean.
	Spread float64
	// FloorFrac clamps the minimum to this fraction of the mean.
	FloorFrac float64
}

// DefaultCapacities gives nodes a mean capacity with ±30% spread.
func DefaultCapacities(seed int64, mean int64) *Capacities {
	return &Capacities{
		rng:       rand.New(rand.NewSource(seed)),
		Mean:      float64(mean),
		Spread:    0.3,
		FloorFrac: 0.25,
	}
}

// Draw returns one node capacity.
func (c *Capacities) Draw() int64 {
	v := c.Mean * (1 + c.Spread*c.rng.NormFloat64())
	floor := c.Mean * c.FloorFrac
	if v < floor {
		v = floor
	}
	return int64(v)
}
