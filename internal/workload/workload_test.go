package workload

import (
	"math"
	"sort"
	"testing"
)

func TestSizeDistBounds(t *testing.T) {
	d := DefaultSizes(1)
	for i := 0; i < 10000; i++ {
		s := d.Draw()
		if s < d.Min || s > d.Max {
			t.Fatalf("draw %d out of bounds", s)
		}
	}
}

func TestSizeDistShape(t *testing.T) {
	d := DefaultSizes(2)
	n := 20000
	sizes := make([]int64, n)
	var sum float64
	for i := range sizes {
		sizes[i] = d.Draw()
		sum += float64(sizes[i])
	}
	sort.Slice(sizes, func(a, b int) bool { return sizes[a] < sizes[b] })
	median := float64(sizes[n/2])
	mean := sum / float64(n)
	// Heavy tail: mean well above median.
	if mean < 2*median {
		t.Fatalf("distribution not right-skewed: mean %.0f median %.0f", mean, median)
	}
	// Median in the single-digit-KiB range the generator promises.
	if median < 2<<10 || median > 32<<10 {
		t.Fatalf("median %.0f outside expected range", median)
	}
	// The tail must actually produce large files.
	if sizes[n-1] < 1<<20 {
		t.Fatalf("largest draw %d suspiciously small", sizes[n-1])
	}
}

func TestSizeDistDeterministic(t *testing.T) {
	a, b := DefaultSizes(7), DefaultSizes(7)
	for i := 0; i < 100; i++ {
		if a.Draw() != b.Draw() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1, 1.1, 1000)
	counts := make([]int, 1000)
	n := 50000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Top item should dominate; bottom half should be rare.
	if counts[0] < n/20 {
		t.Fatalf("top item only %d/%d draws", counts[0], n)
	}
	bottom := 0
	for _, c := range counts[500:] {
		bottom += c
	}
	if bottom > n/10 {
		t.Fatalf("bottom half drew %d/%d: not skewed", bottom, n)
	}
}

func TestZipfClampsExponent(t *testing.T) {
	z := NewZipf(1, 0.5, 100) // below 1: clamped internally
	for i := 0; i < 1000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

func TestCapacities(t *testing.T) {
	c := DefaultCapacities(1, 1<<20)
	var sum float64
	n := 10000
	for i := 0; i < n; i++ {
		v := c.Draw()
		if v < int64(0.25*float64(1<<20)) {
			t.Fatalf("capacity %d below floor", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(n)
	if math.Abs(mean-float64(1<<20)) > 0.1*float64(1<<20) {
		t.Fatalf("mean capacity %.0f drifted from %d", mean, 1<<20)
	}
}
