package workload

import "past/internal/id"

// ClientMux models a client population far larger than the simulated
// network — the paper's regime of millions of users storing into a
// many-thousand-node overlay — without materializing per-client state.
// Clients are purely logical: every quantity (which client issues request
// t, which overlay node it enters at, which key it touches) is computed
// by hashing, so a million-user workload costs 16 bytes regardless of
// population, and two runs with the same seed replay identically at any
// shard count.
type ClientMux struct {
	// Population is the number of logical clients.
	Population int64
	seed       uint64
}

// NewClientMux creates a multiplexer over the given population.
func NewClientMux(population int64, seed int64) *ClientMux {
	if population <= 0 {
		population = 1
	}
	return &ClientMux{Population: population, seed: uint64(seed) * 0x9E3779B97F4A7C15}
}

// mix is the splitmix64 finalizer over the mux seed and two words.
func (m *ClientMux) mix(a, b uint64) uint64 {
	z := m.seed ^ a*0xBF58476D1CE4E5B9 ^ b*0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}

// Client returns which logical client issues the t-th request, uniform
// over the population.
func (m *ClientMux) Client(t uint64) int64 {
	return int64(m.mix(1, t) % uint64(m.Population))
}

// EntryNode folds a client onto its overlay entry point among n nodes.
// A client always enters through the same node — in a deployment it
// would run (or be configured with) a nearby PAST node — so request
// locality per client is stable across the run.
func (m *ClientMux) EntryNode(client int64, n int) int {
	return int(m.mix(2, uint64(client)) % uint64(n))
}

// Key returns the client's req-th lookup/insert key, an independent
// per-client stream over the id space.
func (m *ClientMux) Key(client int64, req uint64) id.Node {
	return id.Rand(m.mix(uint64(client)<<20|3, req))
}
