// Package metrics provides the small statistics toolkit the experiment
// harness uses: streaming summaries (mean/percentiles/max), integer
// histograms, and the fixed-point Table renderer whose output is the
// byte-exact shape of every reproduced figure. Determinism matters more
// here than it may look: experiment tables are compared byte-for-byte
// across runs, engines and shard counts (see internal/experiments), so
// rendering must be a pure function of the recorded values — no maps
// iterated in random order, no locale- or time-dependent formatting.
package metrics
