package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("summary wrong: %s", s.String())
	}
	if math.Abs(s.Std()-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %f", s.Std())
	}
	if s.Percentile(50) != 3 || s.Percentile(100) != 5 || s.Percentile(0) != 1 {
		t.Fatalf("percentiles wrong: %f %f %f", s.Percentile(50), s.Percentile(100), s.Percentile(0))
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	if !strings.Contains(s.String(), "n=1") {
		t.Fatal("String missing count")
	}
}

func TestQuickSummaryMeanWithinBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue // extreme magnitudes overflow the sum; out of scope
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for _, v := range []int{0, 1, 1, 2, 2, 2} {
		h.Add(v)
	}
	if h.Total() != 6 || h.Count(2) != 3 || h.Count(9) != 0 {
		t.Fatal("hist counts wrong")
	}
	if h.Frac(1) != 2.0/6 {
		t.Fatalf("Frac = %f", h.Frac(1))
	}
	if h.Mean() != (0+1+1+2+2+2)/6.0 {
		t.Fatalf("Mean = %f", h.Mean())
	}
	if h.MaxValue() != 2 {
		t.Fatalf("MaxValue = %d", h.MaxValue())
	}
	rows := h.Rows()
	if len(strings.Split(strings.TrimSpace(rows), "\n")) != 3 {
		t.Fatalf("Rows output:\n%s", rows)
	}
}

func TestHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add should panic")
		}
	}()
	var h Hist
	h.Add(-1)
}

func TestEmptyHist(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Frac(0) != 0 || h.MaxValue() != 0 {
		t.Fatal("empty hist should be zeros")
	}
}

func TestTable(t *testing.T) {
	tb := Table{Header: []string{"n", "hops"}}
	tb.AddRow(1000, 3.14159)
	tb.AddRow("10k", "long-cell-content")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "hops") || !strings.Contains(lines[2], "3.142") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// Columns aligned: all lines at least as wide as the widest cell.
	if len(lines[1]) < len("long-cell-content") {
		t.Fatal("separator not sized to data")
	}
}

// TestLimitMatchesExactUnderCap pins the telemetry-critical property:
// a bounded summary whose cap was never exceeded is byte-identical to
// exact mode — no reservoir draws happen, so recorded tables cannot
// change when a limit is merely *configured*.
func TestLimitMatchesExactUnderCap(t *testing.T) {
	var exact, bounded Summary
	bounded.Limit(1000)
	for i := 0; i < 1000; i++ {
		v := float64((i * 7919) % 257)
		exact.Add(v)
		bounded.Add(v)
	}
	if exact.String() != bounded.String() {
		t.Fatalf("under-cap bounded differs from exact:\n  %s\n  %s", exact.String(), bounded.String())
	}
	for _, p := range []float64{0, 25, 50, 95, 99, 100} {
		if exact.Percentile(p) != bounded.Percentile(p) {
			t.Fatalf("p%.0f differs: %v vs %v", p, exact.Percentile(p), bounded.Percentile(p))
		}
	}
}

// TestLimitBoundsMemoryAndEstimates pins that an over-cap reservoir
// keeps at most cap values, keeps mean/min/max exact, and estimates
// percentiles within loose bounds on uniform data.
func TestLimitBoundsMemoryAndEstimates(t *testing.T) {
	var s Summary
	s.Limit(512)
	n := 100_000
	for i := 0; i < n; i++ {
		s.Add(float64(i % 1000)) // uniform over [0,1000)
	}
	if len(s.values) > 512 {
		t.Fatalf("reservoir holds %d values, cap 512", len(s.values))
	}
	if s.N() != n || s.Min() != 0 || s.Max() != 999 {
		t.Fatalf("exact aggregates wrong: n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
	if m := s.Mean(); math.Abs(m-499.5) > 1e-6 {
		t.Fatalf("mean = %v, want 499.5", m)
	}
	if p := s.Percentile(50); p < 400 || p > 600 {
		t.Fatalf("p50 estimate %v implausible for uniform [0,1000)", p)
	}
	// Determinism: the same stream always yields the same reservoir.
	var s2 Summary
	s2.Limit(512)
	for i := 0; i < n; i++ {
		s2.Add(float64(i % 1000))
	}
	if s.Percentile(50) != s2.Percentile(50) || s.Percentile(99) != s2.Percentile(99) {
		t.Fatal("reservoir sampling is not deterministic")
	}
}

// TestSummaryReset pins that Reset restores a summary (including its
// reservoir stream) to the freshly-constructed state.
func TestSummaryReset(t *testing.T) {
	var a, b Summary
	a.Limit(64)
	b.Limit(64)
	for i := 0; i < 500; i++ {
		a.Add(float64(i))
	}
	a.Reset()
	if a.N() != 0 || a.Mean() != 0 || a.Percentile(50) != 0 {
		t.Fatalf("Reset left state: %s", a.String())
	}
	for i := 0; i < 500; i++ {
		a.Add(float64(i ^ 3))
		b.Add(float64(i ^ 3))
	}
	if a.String() != b.String() || a.Percentile(90) != b.Percentile(90) {
		t.Fatalf("post-Reset summary differs from fresh:\n  %s\n  %s", a.String(), b.String())
	}
}
