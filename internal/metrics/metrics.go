package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 observations.
//
// By default every observation is retained so Percentile is exact; the
// recorded experiment tables (Small/Full tiers) depend on that. Limit
// switches to a bounded reservoir so huge-tier runs and per-window
// telemetry stay O(limit) instead of O(events).
type Summary struct {
	n        int
	sum, sq  float64
	min, max float64
	values   []float64 // retained for percentiles (reservoir when limit > 0)
	limit    int       // 0 = exact mode: retain everything
	rng      uint64    // splitmix64 state for reservoir replacement
}

// reservoirSeed is the fixed splitmix64 seed: reservoir sampling stays
// deterministic per Summary instance, independent of everything else.
const reservoirSeed = 0x9e3779b97f4a7c15

// Limit bounds the observations retained for Percentile to at most cap,
// using uniform reservoir sampling (Algorithm R with a deterministic
// splitmix64 stream). Mean/Std/Min/Max remain exact; Percentile becomes
// an estimate once more than cap values have been added — until then it
// is byte-identical to exact mode, since no replacement draws happen.
// Call before the first Add. cap <= 0 restores exact mode.
func (s *Summary) Limit(cap int) {
	s.limit = cap
	s.rng = reservoirSeed
}

// Reset clears the summary for reuse (telemetry windows), keeping the
// retention mode and re-seeding the reservoir stream so each window's
// result is independent of how many windows came before it.
func (s *Summary) Reset() {
	s.n = 0
	s.sum, s.sq, s.min, s.max = 0, 0, 0, 0
	s.values = s.values[:0]
	s.rng = reservoirSeed
}

// splitmix64 advances the reservoir RNG one step.
func (s *Summary) splitmix64() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sq += v * v
	if s.limit <= 0 || len(s.values) < s.limit {
		s.values = append(s.values, v)
		return
	}
	// Reservoir full: keep v with probability limit/n, evicting a
	// uniformly random resident (Algorithm R).
	if j := int(s.splitmix64() % uint64(s.n)); j < s.limit {
		s.values[j] = v
	}
}

// N returns the observation count.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank
// over the retained values (all of them in exact mode, a uniform sample
// in reservoir mode — identical until the reservoir overflows).
func (s *Summary) Percentile(p float64) float64 {
	m := len(s.values)
	if m == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(m)))
	if rank < 1 {
		rank = 1
	}
	if rank > m {
		rank = m
	}
	return sorted[rank-1]
}

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.n, s.Mean(), s.Std(), s.min, s.Percentile(50), s.Percentile(95), s.max)
}

// Hist is a dense integer histogram over small non-negative values
// (hop counts, retry counts).
type Hist struct {
	counts []uint64
	total  uint64
}

// Add records one observation; negative values panic.
func (h *Hist) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative histogram value %d", v))
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Hist) Total() uint64 { return h.total }

// Count returns the number of observations equal to v.
func (h *Hist) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Frac returns the fraction of observations equal to v.
func (h *Hist) Frac(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// Mean returns the mean observation.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// MaxValue returns the largest observed value.
func (h *Hist) MaxValue() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// Rows renders "value fraction" rows, one per observed value.
func (h *Hist) Rows() string {
	var b strings.Builder
	for v := 0; v <= h.MaxValue(); v++ {
		fmt.Fprintf(&b, "%4d  %8.4f\n", v, h.Frac(v))
	}
	return b.String()
}

// Table formats aligned experiment output: a header row then data rows.
// All cells are strings; columns are padded to the widest cell.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a data row formatted with fmt.Sprint on each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
