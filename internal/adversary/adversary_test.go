package adversary

import (
	"sort"
	"testing"
)

// TestPickDeterministic pins the selection contract the sharded
// experiments rely on: Pick is a pure function of (seed, n, frac) — same
// inputs, same victims — while different seeds pick different sets.
func TestPickDeterministic(t *testing.T) {
	a := Pick(42, 64, 0.3)
	b := Pick(42, 64, 0.3)
	if len(a) != len(b) {
		t.Fatalf("same inputs, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same inputs diverge at %d: %v vs %v", i, a, b)
		}
	}
	c := Pick(43, 64, 0.3)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds picked identical victim sets")
	}
}

// TestPickShape checks rounding, bounds, sortedness and uniqueness.
func TestPickShape(t *testing.T) {
	cases := []struct {
		n     int
		frac  float64
		count int
	}{
		{64, 0, 0},
		{64, 0.3, 19}, // round(19.2)
		{64, 0.4, 26}, // round(25.6)
		{10, 0.05, 1}, // round(0.5) rounds up
		{10, 1.0, 10}, // everyone
		{10, 2.0, 10}, // clamped
		{10, -0.5, 0}, // clamped
	}
	for _, tc := range cases {
		got := Pick(7, tc.n, tc.frac)
		if len(got) != tc.count {
			t.Errorf("Pick(7, %d, %.2f) chose %d victims, want %d", tc.n, tc.frac, len(got), tc.count)
			continue
		}
		if !sort.IntsAreSorted(got) {
			t.Errorf("Pick(7, %d, %.2f) not sorted: %v", tc.n, tc.frac, got)
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Errorf("victim %d out of [0,%d)", v, tc.n)
			}
			if seen[v] {
				t.Errorf("duplicate victim %d", v)
			}
			seen[v] = true
		}
	}
}

// TestRngForIndependentStreams checks per-node streams differ: adjacent
// node indexes must not share an adversarial coin sequence.
func TestRngForIndependentStreams(t *testing.T) {
	a, b := rngFor(42, 3), rngFor(42, 4)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("adjacent node indexes share an adversarial stream")
	}
	// Same (seed, index) replays the same stream.
	c, d := rngFor(42, 3), rngFor(42, 3)
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same (seed, index) produced different streams")
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		Dropper:   "dropper",
		Misrouter: "misrouter",
		Forger:    "forger",
		FreeRider: "free-rider",
		Policy(9): "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Policy(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}
