// Package adversary installs deterministic malicious-node policies for
// the resilience experiments (E18–E21). The paper's security discussion
// (section 2.2 "Fault-tolerance", section 2.1 "Storage quotas") assumes
// nodes may drop or misroute requests, forge receipts, or cheat on
// contributed storage; this package turns those behaviours on for a
// chosen subset of simulated nodes.
//
// Every decision an adversary makes — which nodes are malicious, and
// whether a particular message is dropped or misrouted — is a pure
// function of (experiment seed, node index) plus the node's own traffic
// history, mirroring simnet's per-endpoint RNG discipline. Nothing
// consults cross-shard state, so experiment tables stay byte-identical
// at any shard count.
package adversary

import (
	"math/rand"
	"sort"

	"past/internal/past"
	"past/internal/pastry"
	"past/internal/simnet"
	"past/internal/wire"
)

// Policy identifies one adversarial behaviour.
type Policy int

const (
	// Dropper accepts traffic but silently discards routed requests it
	// is asked to forward; its direct replies and keep-alives still flow,
	// so the overlay keeps treating it as live.
	Dropper Policy = iota
	// Misrouter forwards routed requests to a wrong-but-plausible next
	// hop (a random member of its own leaf set) instead of the one prefix
	// routing chose, inflating routes until a hop budget trips.
	Misrouter
	// Forger returns store receipts whose signatures do not verify;
	// the client's batch verification identifies and drops them.
	Forger
	// FreeRider claims replicas it never stores, with properly signed
	// receipts; only a content audit exposes the missing data.
	FreeRider
)

func (p Policy) String() string {
	switch p {
	case Dropper:
		return "dropper"
	case Misrouter:
		return "misrouter"
	case Forger:
		return "forger"
	case FreeRider:
		return "free-rider"
	}
	return "unknown"
}

// Pick deterministically selects round(frac·n) victim node indexes in
// [0, n), uniformly from seed, returned sorted. The selection depends
// only on (seed, n, frac).
func Pick(seed int64, n int, frac float64) []int {
	count := int(frac*float64(n) + 0.5)
	if count > n {
		count = n
	}
	if count <= 0 {
		return nil
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	out := append([]int(nil), perm[:count]...)
	sort.Ints(out)
	return out
}

// rngFor derives the node's private adversarial stream the same way
// simnet derives per-endpoint jitter streams, with a distinct mixing
// constant so the two never correlate.
func rngFor(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(int64(uint64(seed) ^ 0xC2B2AE3D27D4EB4F*uint64(idx+1))))
}

// Install applies policy to one node. prob is the per-message misbehaviour
// probability for the traffic policies (Dropper, Misrouter); the storage
// policies (Forger, FreeRider) cheat on every replica they are asked to
// hold. Call after the overlay is built and before the measured workload.
func Install(policy Policy, seed int64, ep *simnet.Endpoint, node *past.Node, prob float64) {
	switch policy {
	case Dropper:
		InstallDropper(ep, seed, prob)
	case Misrouter:
		InstallMisrouter(ep, node.Pastry(), seed, prob)
	case Forger:
		node.SetMischief(past.Mischief{ForgeReceipts: true})
	case FreeRider:
		node.SetMischief(past.Mischief{FreeRide: true})
	}
}

// InstallDropper makes ep a black hole for the lookup protocol: with
// probability prob each, it silently drops the routed requests it is
// asked to forward and the lookup replies it owes as a replica holder
// (the "accepts traffic but does not forward it correctly" node of
// section 2.2). Keep-alives and join traffic still flow, so the overlay
// keeps routing through it.
func InstallDropper(ep *simnet.Endpoint, seed int64, prob float64) {
	rng := rngFor(seed, ep.Index())
	ep.SetSendFilter(func(to string, m wire.Msg) bool {
		switch m.(type) {
		case wire.Routed, wire.LookupReply:
			return prob >= 1 || rng.Float64() < prob
		}
		return false
	})
}

// InstallMisrouter rewrites, with probability prob each, the routed
// requests ep forwards so they go to a random member of the node's own
// leaf set instead of the hop prefix routing chose. The target is a real,
// live overlay node — a wrong-but-plausible hop — so the request keeps
// bouncing plausibly until it strays into the replica set or a hop budget
// aborts it. Decisions draw on the node's own leaf set and private
// stream only.
func InstallMisrouter(ep *simnet.Endpoint, pn *pastry.Node, seed int64, prob float64) {
	rng := rngFor(seed, ep.Index())
	ep.SetSendRewrite(func(to string, m wire.Msg) (string, wire.Msg) {
		if _, ok := m.(wire.Routed); !ok {
			return to, m
		}
		if prob < 1 && rng.Float64() >= prob {
			return to, m
		}
		members := pn.LeafMembers()
		if len(members) == 0 {
			return to, m
		}
		return members[rng.Intn(len(members))].Addr, m
	})
}
