package edwards25519

// Local additions to the vendored core: precomputed variable-time
// tables that callers can cache per public key, a multi-scalar sum for
// batch signature verification, and the cofactor multiplication the
// cofactored batch equation needs. Everything here is variable-time and
// must only be used with public inputs (signatures, public keys), never
// with secrets.

// VarTimeTable is a precomputed odd-multiples lookup table for
// variable-time scalar multiplication of a fixed point. Building one
// costs seven point additions; callers that verify many signatures
// under the same public key should build the table once and reuse it
// (see internal/seccrypt's public-key cache).
type VarTimeTable struct {
	table nafLookupTable5
}

// Init precomputes the table for p.
func (t *VarTimeTable) Init(p *Point) {
	checkInitialized(p)
	t.table.FromP3(p)
}

// VarTimeDoubleBaseMultTable sets v = a * A + b * B, where B is the
// canonical generator and aTable is A's precomputed table, and returns
// v. It is VarTimeDoubleScalarBaseMult with the per-point table build
// hoisted out, for callers that verify repeatedly under one key.
//
// Execution time depends on the inputs.
func (v *Point) VarTimeDoubleBaseMultTable(a *Scalar, aTable *VarTimeTable, b *Scalar) *Point {
	basepointNafTable := basepointNafTable()
	aNaf := a.nonAdjacentForm(5)
	bNaf := b.nonAdjacentForm(8)

	multA := &projCached{}
	multB := &affineCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()
	v.Set(NewIdentityPoint())

	for i := 255; i >= 0; i-- {
		tmp1.Double(tmp2)

		if aNaf[i] > 0 {
			v.fromP1xP1(tmp1)
			aTable.table.SelectInto(multA, aNaf[i])
			tmp1.Add(v, multA)
		} else if aNaf[i] < 0 {
			v.fromP1xP1(tmp1)
			aTable.table.SelectInto(multA, -aNaf[i])
			tmp1.Sub(v, multA)
		}

		if bNaf[i] > 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, bNaf[i])
			tmp1.AddAffine(v, multB)
		} else if bNaf[i] < 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, -bNaf[i])
			tmp1.SubAffine(v, multB)
		}

		tmp2.FromP1xP1(tmp1)
	}

	v.fromP2(tmp2)
	return v
}

// VarTimeMultiScalarBaseSum sets v = b * B + Σ scalars[i] * P_i, where B
// is the canonical generator and P_i is the point tables[i] was built
// from, and returns v. scalars and tables must have equal length. The
// doubling chain is shared across all terms, which is what makes batch
// signature verification cheaper than per-signature checks.
//
// Execution time depends on the inputs.
func (v *Point) VarTimeMultiScalarBaseSum(b *Scalar, scalars []*Scalar, tables []*VarTimeTable, scratch []Naf) *Point {
	if len(scalars) != len(tables) {
		panic("edwards25519: mismatched multiscalar input lengths")
	}
	basepointNafTable := basepointNafTable()
	bNaf := b.nonAdjacentForm(8)
	var nafs []Naf
	if cap(scratch) >= len(scalars) {
		nafs = scratch[:len(scalars)]
	} else {
		nafs = make([]Naf, len(scalars))
	}
	for i, s := range scalars {
		nafs[i] = s.nonAdjacentForm(5)
	}

	multP := &projCached{}
	multB := &affineCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()
	v.Set(NewIdentityPoint())

	for i := 255; i >= 0; i-- {
		tmp1.Double(tmp2)

		for j := range nafs {
			if c := nafs[j][i]; c > 0 {
				v.fromP1xP1(tmp1)
				tables[j].table.SelectInto(multP, c)
				tmp1.Add(v, multP)
			} else if c < 0 {
				v.fromP1xP1(tmp1)
				tables[j].table.SelectInto(multP, -c)
				tmp1.Sub(v, multP)
			}
		}

		if c := bNaf[i]; c > 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, c)
			tmp1.AddAffine(v, multB)
		} else if c < 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, -c)
			tmp1.SubAffine(v, multB)
		}

		tmp2.FromP1xP1(tmp1)
	}

	v.fromP2(tmp2)
	return v
}

// Naf holds one scalar's non-adjacent form; callers of
// VarTimeMultiScalarBaseSum may pass a reusable scratch slice of these
// to keep batch verification allocation-free in steady state.
type Naf = [256]int8

// SetShortBytes sets s = x mod l, where x is a little-endian integer
// shorter than 32 bytes. It exposes short-scalar construction for the
// random 128-bit coefficients of batch verification.
func (s *Scalar) SetShortBytes(x []byte) *Scalar {
	if len(x) >= 32 {
		panic("edwards25519: SetShortBytes input too long")
	}
	return s.setShortBytes(x)
}

// BytesInto writes the canonical 32-byte encoding of v into buf and
// returns it, avoiding the allocation Bytes incurs when its local
// buffer escapes.
func (v *Point) BytesInto(buf *[32]byte) []byte {
	return v.bytes(buf)
}

// MultByCofactor sets v = 8 * p, and returns v.
func (v *Point) MultByCofactor(p *Point) *Point {
	checkInitialized(p)
	result := projP1xP1{}
	pp := projP2{}
	pp.FromP3(p)
	result.Double(&pp)
	pp.FromP1xP1(&result)
	result.Double(&pp)
	pp.FromP1xP1(&result)
	result.Double(&pp)
	return v.fromP1xP1(&result)
}
