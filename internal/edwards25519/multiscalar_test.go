package edwards25519

import (
	"bytes"
	"math/rand"
	"testing"
)

// randScalar derives a uniformly distributed scalar from the test RNG.
func randScalar(t *testing.T, rng *rand.Rand) *Scalar {
	t.Helper()
	var buf [64]byte
	rng.Read(buf[:])
	s, err := new(Scalar).SetUniformBytes(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randPoint returns a random multiple of the basepoint.
func randPoint(t *testing.T, rng *rand.Rand) *Point {
	t.Helper()
	return new(Point).ScalarBaseMult(randScalar(t, rng))
}

// TestVarTimeDoubleBaseMultTable pins the table-reusing double-scalar
// multiplication against the vendored VarTimeDoubleScalarBaseMult.
func TestVarTimeDoubleBaseMultTable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		A := randPoint(t, rng)
		a, b := randScalar(t, rng), randScalar(t, rng)
		want := new(Point).VarTimeDoubleScalarBaseMult(a, A, b)
		var table VarTimeTable
		table.Init(A)
		got := new(Point).VarTimeDoubleBaseMultTable(a, &table, b)
		if got.Equal(want) != 1 {
			t.Fatalf("trial %d: table path diverges from VarTimeDoubleScalarBaseMult", trial)
		}
	}
}

// TestVarTimeMultiScalarBaseSum property-tests the batch primitive
// against a naive sum of constant-time single multiplications, across
// term counts and with short (128-bit) scalars mixed in.
func TestVarTimeMultiScalarBaseSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(9) // includes the empty sum
		b := randScalar(t, rng)
		scalars := make([]*Scalar, n)
		tables := make([]*VarTimeTable, n)
		want := new(Point).ScalarBaseMult(b)
		for i := 0; i < n; i++ {
			P := randPoint(t, rng)
			if rng.Intn(2) == 0 {
				var short [16]byte
				rng.Read(short[:])
				scalars[i] = new(Scalar).SetShortBytes(short[:])
			} else {
				scalars[i] = randScalar(t, rng)
			}
			tables[i] = new(VarTimeTable)
			tables[i].Init(P)
			want.Add(want, new(Point).ScalarMult(scalars[i], P))
		}
		got := new(Point).VarTimeMultiScalarBaseSum(b, scalars, tables, nil)
		if got.Equal(want) != 1 {
			t.Fatalf("trial %d (n=%d): multiscalar sum diverges from naive sum", trial, n)
		}
		// The scratch-buffer path must agree with the allocating path.
		scratch := make([]Naf, n)
		got2 := new(Point).VarTimeMultiScalarBaseSum(b, scalars, tables, scratch)
		if got2.Equal(want) != 1 {
			t.Fatalf("trial %d (n=%d): scratch path diverges", trial, n)
		}
	}
}

// TestMultByCofactor pins 8P against three explicit doublings via Add.
func TestMultByCofactor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		P := randPoint(t, rng)
		want := new(Point).Set(P)
		for i := 0; i < 3; i++ {
			want.Add(want, want)
		}
		got := new(Point).MultByCofactor(P)
		if got.Equal(want) != 1 {
			t.Fatalf("trial %d: MultByCofactor != 8P", trial)
		}
	}
}

// TestSetShortBytes checks short-scalar construction against
// SetCanonicalBytes on zero-padded input.
func TestSetShortBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		short := make([]byte, 1+rng.Intn(16))
		rng.Read(short)
		var padded [32]byte
		copy(padded[:], short)
		padded[31] &= 0x0f // well below the group order
		copy(short, padded[:len(short)])
		want, err := new(Scalar).SetCanonicalBytes(padded[:])
		if err != nil {
			t.Fatal(err)
		}
		got := new(Scalar).SetShortBytes(short)
		if got.Equal(want) != 1 {
			t.Fatalf("trial %d: SetShortBytes(%x) != SetCanonicalBytes(padded)", trial, short)
		}
	}
}

// TestBytesInto checks the allocation-free encoder against Bytes.
func TestBytesInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		P := randPoint(t, rng)
		var buf [32]byte
		if !bytes.Equal(P.BytesInto(&buf), P.Bytes()) {
			t.Fatalf("trial %d: BytesInto != Bytes", trial)
		}
	}
}
