// Package edwards25519 implements group logic for the twisted Edwards
// curve -x^2 + y^2 = 1 + -(121665/121666)*x^2*y^2 (edwards25519), the
// curve underlying the Ed25519 signature scheme.
//
// The core of this package (point/scalar arithmetic, lookup tables and
// the field subpackage) is vendored from the Go standard library's
// crypto/internal/fips140/edwards25519 — the same code published as
// filippo.io/edwards25519 — with the internal fips140 plumbing replaced
// by crypto/subtle and encoding/binary. It is vendored because PAST's
// hot path needs group-level access (multi-scalar multiplication and
// precomputed per-key tables for batch signature verification, see
// internal/seccrypt) that crypto/ed25519 does not expose, and this
// repository builds without external module dependencies.
//
// Local additions on top of the vendored core live in multiscalar.go:
// reusable variable-time lookup tables, a multi-scalar sum for
// cofactored batch verification, and MultByCofactor.
package edwards25519
