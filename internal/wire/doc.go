// Package wire defines the message vocabulary exchanged between PAST
// nodes: overlay routing envelopes (Routed, JoinRequest, Announce,
// Heartbeat) and the PAST storage protocol (InsertRequest, StoreReceipt,
// LookupRequest/Reply, ReclaimRequest/Receipt, replica transfer and
// audit), mapping one-to-one onto the operations of sections 2.1-2.3 of
// the paper.
//
// Messages are plain data structs. The same values travel in-process
// inside the discrete-event simulator and as gob-encoded frames over the
// TCP transport; RegisterAll installs the concrete types with
// encoding/gob.
//
// # Immutable after Send
//
// By convention messages are immutable after Send: senders must not
// retain and mutate slices they put into a message. The storage layer
// extends the same rule to stored content — message payloads, replica
// content, and cache entries all share one immutable backing array, which
// is what makes replication zero-copy (see the package past doc comment).
// Every node still re-checks content hashes before serving, so a violated
// contract is detected rather than silently propagated.
package wire
