package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"past/internal/id"
)

func TestNodeRef(t *testing.T) {
	var zero NodeRef
	if !zero.IsZero() {
		t.Fatal("zero ref not zero")
	}
	r := NodeRef{ID: id.Rand(1), Addr: "sim:3"}
	if r.IsZero() {
		t.Fatal("populated ref reported zero")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestKindsAreUniqueAndStable(t *testing.T) {
	msgs := []Msg{
		Routed{}, JoinRequest{}, RouteRows{}, LeafSetReply{}, LeafSetRequest{},
		NeighborhoodReply{}, Announce{}, Heartbeat{}, Ping{}, Pong{},
		RTRepairRequest{}, RTRepairReply{}, FileCertificate{}, ReclaimCertificate{},
		InsertRequest{}, ReplicaStore{}, StoreReceipt{}, InsertReject{}, DivertReject{},
		LookupRequest{}, LookupReply{}, LookupMiss{}, ReclaimRequest{}, ReclaimForward{},
		ReclaimReceipt{}, Replicate{}, CacheCopy{}, FetchRequest{},
		AuditChallenge{}, AuditResponse{},
	}
	seen := map[string]bool{}
	for _, m := range msgs {
		k := m.Kind()
		if k == "" {
			t.Fatalf("%T has empty Kind", m)
		}
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
	}
}

// encodeDecode round-trips a message through gob as an interface value,
// exactly as the TCP transport does.
func encodeDecode(t *testing.T, m Msg) Msg {
	t.Helper()
	RegisterAll()
	type box struct{ M Msg }
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(box{m}); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	var out box
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	return out.M
}

func TestGobRoundTripRouted(t *testing.T) {
	m := Routed{
		Key:      id.Rand(1),
		Origin:   NodeRef{ID: id.Rand(2), Addr: "10.0.0.1:99"},
		Hops:     4,
		Distance: 123.5,
		Nonce:    42,
		Payload: LookupRequest{
			FileID:     id.RandFile(3),
			Client:     NodeRef{ID: id.Rand(4), Addr: "c"},
			ReqID:      7,
			Redirected: true,
		},
	}
	got := encodeDecode(t, m).(Routed)
	if got.Key != m.Key || got.Hops != 4 || got.Distance != 123.5 {
		t.Fatal("routed fields corrupted")
	}
	lr, ok := got.Payload.(LookupRequest)
	if !ok || lr.ReqID != 7 || !lr.Redirected || lr.FileID != id.RandFile(3) {
		t.Fatalf("payload corrupted: %#v", got.Payload)
	}
}

func TestGobRoundTripCertificates(t *testing.T) {
	cert := FileCertificate{
		FileID:      id.RandFile(1),
		ContentHash: [32]byte{1, 2, 3},
		Size:        4096,
		Replicas:    5,
		Salt:        []byte{9, 8, 7},
		Issued:      1234,
		OwnerPub:    []byte{1, 2},
		CardCert:    []byte{3, 4},
		Sig:         []byte{5, 6},
	}
	got := encodeDecode(t, cert).(FileCertificate)
	if got.Size != 4096 || got.Replicas != 5 || got.ContentHash != cert.ContentHash ||
		string(got.Salt) != string(cert.Salt) || string(got.Sig) != string(cert.Sig) {
		t.Fatal("certificate corrupted")
	}
}

func TestGobRoundTripRows(t *testing.T) {
	m := RouteRows{
		From:     NodeRef{ID: id.Rand(1), Addr: "a"},
		FirstRow: 2,
		Rows: [][]NodeRef{
			{{ID: id.Rand(2), Addr: "b"}},
			nil,
			{{ID: id.Rand(3), Addr: "c"}, {ID: id.Rand(4), Addr: "d"}},
		},
	}
	got := encodeDecode(t, m).(RouteRows)
	if len(got.Rows) != 3 || len(got.Rows[2]) != 2 || got.Rows[2][1].Addr != "d" {
		t.Fatalf("rows corrupted: %#v", got.Rows)
	}
}
