package wire

import (
	"encoding/gob"
	"fmt"

	"past/internal/id"
)

// NodeRef identifies a node: its Pastry identifier plus a transport
// address the local transport understands ("sim:<n>" or "host:port").
type NodeRef struct {
	ID   id.Node
	Addr string
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.Addr == "" && r.ID.IsZero() }

func (r NodeRef) String() string {
	return fmt.Sprintf("%s@%s", r.ID.Short(), r.Addr)
}

// Msg is implemented by every message type in this package. Kind returns a
// stable name used in logs and metrics.
type Msg interface {
	Kind() string
}

// ---------------------------------------------------------------------------
// Routing envelope

// Routed wraps an application payload for key-based routing through the
// Pastry overlay. Hops counts overlay forwards so experiments can measure
// route length; Distance accumulates the proximity metric along the path.
type Routed struct {
	Key      id.Node
	Payload  Msg
	Origin   NodeRef
	Hops     int
	Distance float64
	// Nonce makes retries of the same logical request distinguishable so
	// the randomized routing of section 2.2 ("Fault-tolerance") explores
	// different paths.
	Nonce uint64
}

func (Routed) Kind() string { return "routed" }

// ---------------------------------------------------------------------------
// Pastry maintenance messages

// JoinRequest is routed toward the joining node's nodeId. Every node along
// the path sends the new node the routing-table row(s) it needs (RouteRows)
// and the numerically closest node replies with its leaf set.
type JoinRequest struct {
	New NodeRef
}

func (JoinRequest) Kind() string { return "join" }

// RouteRows carries routing-table rows from a node on the join path to the
// joining node. Rows[i] corresponds to routing-table row FirstRow+i.
type RouteRows struct {
	From     NodeRef
	FirstRow int
	Rows     [][]NodeRef
}

func (RouteRows) Kind() string { return "route-rows" }

// LeafSetReply carries a node's leaf set (plus the node itself) to the
// joining node, or in response to a LeafSetRequest during repair.
type LeafSetReply struct {
	From   NodeRef
	Leaves []NodeRef
	// Terminal marks the reply sent by the join destination Z; receipt of
	// a terminal reply completes the join's state-transfer phase.
	Terminal bool
}

func (LeafSetReply) Kind() string { return "leafset-reply" }

// LeafSetRequest asks a node for its current leaf set (used for repair).
type LeafSetRequest struct {
	From NodeRef
}

func (LeafSetRequest) Kind() string { return "leafset-request" }

// NeighborhoodReply carries the proximity-based neighborhood set from the
// bootstrap node A to the joining node.
type NeighborhoodReply struct {
	From      NodeRef
	Neighbors []NodeRef
}

func (NeighborhoodReply) Kind() string { return "neighborhood-reply" }

// Announce tells existing nodes about a newly joined node so they can fold
// it into their own routing state (the final phase of the join protocol).
type Announce struct {
	From NodeRef
}

func (Announce) Kind() string { return "announce" }

// Heartbeat is the keep-alive exchanged between leaf-set neighbors.
type Heartbeat struct {
	From NodeRef
}

func (Heartbeat) Kind() string { return "heartbeat" }

// Ping measures liveness and proximity. Pong echoes the nonce.
type Ping struct {
	From  NodeRef
	Nonce uint64
}

func (Ping) Kind() string { return "ping" }

// Pong answers a Ping.
type Pong struct {
	From  NodeRef
	Nonce uint64
}

func (Pong) Kind() string { return "pong" }

// RTRepairRequest asks a peer for a replacement routing-table entry with
// the given row/column coordinates (lazy repair, section 2.2).
type RTRepairRequest struct {
	From NodeRef
	Row  int
	Col  int
}

func (RTRepairRequest) Kind() string { return "rt-repair-request" }

// RTRepairReply returns a candidate entry, or a zero Entry if none known.
type RTRepairReply struct {
	From  NodeRef
	Row   int
	Col   int
	Entry NodeRef
}

func (RTRepairReply) Kind() string { return "rt-repair-reply" }

// ---------------------------------------------------------------------------
// PAST storage messages

// FileCertificate is issued by the owner's smartcard before insertion
// (section 2.1). All byte fields are as produced by package seccrypt.
type FileCertificate struct {
	FileID      id.File
	ContentHash [32]byte
	Size        int64
	Replicas    int
	Salt        []byte
	Issued      int64 // unix seconds
	OwnerPub    []byte
	CardCert    []byte // broker's signature over OwnerPub
	Sig         []byte // smartcard signature over the certificate body
}

func (FileCertificate) Kind() string { return "file-certificate" }

// ReclaimCertificate authorizes reclaiming a file's storage (section 2.1).
type ReclaimCertificate struct {
	FileID   id.File
	Issued   int64
	OwnerPub []byte
	CardCert []byte
	Sig      []byte
}

func (ReclaimCertificate) Kind() string { return "reclaim-certificate" }

// InsertRequest is routed toward the fileId. The node whose nodeId is
// numerically closest to the fileId coordinates replication across its
// leaf set.
type InsertRequest struct {
	Cert   FileCertificate
	Data   []byte
	Client NodeRef
	ReqID  uint64
}

func (InsertRequest) Kind() string { return "insert" }

// ReplicaStore asks a specific node to store one replica. Diverted is set
// when the sender is delegating its own replica responsibility to a
// leaf-set member with more free space (replica diversion, section 2.3).
type ReplicaStore struct {
	Cert     FileCertificate
	Data     []byte
	Client   NodeRef
	ReqID    uint64
	Primary  NodeRef // the node responsible in nodeId space
	Diverted bool
}

func (ReplicaStore) Kind() string { return "replica-store" }

// StoreReceipt is returned to the client by each node that stored a copy
// (section 2.1). OnBehalfOf names the primary node when the replica was
// diverted.
type StoreReceipt struct {
	FileID     id.File
	StoredBy   NodeRef
	OnBehalfOf NodeRef
	Diverted   bool
	Size       int64
	NodePub    []byte
	Sig        []byte
	ReqID      uint64
}

func (StoreReceipt) Kind() string { return "store-receipt" }

// InsertReject tells the client the insert could not be accommodated; the
// client may re-salt the fileId and retry (file diversion, section 2.3).
type InsertReject struct {
	FileID id.File
	ReqID  uint64
	Reason string
}

func (InsertReject) Kind() string { return "insert-reject" }

// DivertReject tells the primary node that its chosen diversion target
// could not hold the replica either; the primary tries the next candidate
// or gives up and rejects the insert.
type DivertReject struct {
	FileID id.File
	ReqID  uint64
	From   NodeRef
}

func (DivertReject) Kind() string { return "divert-reject" }

// LookupRequest is routed toward the fileId and satisfied by the first
// node along the route that holds a replica, a diversion pointer, or a
// cached copy.
type LookupRequest struct {
	FileID id.File
	Client NodeRef
	ReqID  uint64
	// PrevHop is maintained by the routing layer so the responder can push
	// a cached copy one hop back toward the client.
	PrevHop NodeRef
	// Redirected marks that a node already steered this lookup to the
	// proximally nearest replica holder; at most one such redirect is
	// allowed, preventing ping-pong between holders.
	Redirected bool
}

func (LookupRequest) Kind() string { return "lookup" }

// LookupReply returns the file (with its certificate, so the client can
// verify authenticity) directly to the client.
type LookupReply struct {
	Cert     FileCertificate
	Data     []byte
	From     NodeRef
	ReqID    uint64
	Hops     int
	Distance float64
	Cached   bool
}

func (LookupReply) Kind() string { return "lookup-reply" }

// LookupMiss tells the client the root holds no such file.
type LookupMiss struct {
	FileID id.File
	ReqID  uint64
}

func (LookupMiss) Kind() string { return "lookup-miss" }

// LookupAbort tells the client its lookup exceeded the forwarding hop
// budget — evidence of a routing anomaly (e.g. a malicious node bouncing
// the request around the ring) — so the client can retry along a
// different route immediately instead of waiting out its timeout.
type LookupAbort struct {
	FileID id.File
	ReqID  uint64
	Hops   int
	From   NodeRef
}

func (LookupAbort) Kind() string { return "lookup-abort" }

// ReclaimRequest is routed toward the fileId; the root fans it out to the
// replica holders.
type ReclaimRequest struct {
	Cert   ReclaimCertificate
	Client NodeRef
	ReqID  uint64
}

func (ReclaimRequest) Kind() string { return "reclaim" }

// ReclaimForward carries a reclaim from the root to one replica holder.
type ReclaimForward struct {
	Cert   ReclaimCertificate
	Client NodeRef
	ReqID  uint64
}

func (ReclaimForward) Kind() string { return "reclaim-forward" }

// ReclaimReceipt is returned by each storage node that freed the file's
// storage; presenting it to the smartcard credits the owner's quota.
type ReclaimReceipt struct {
	FileID  id.File
	Freed   int64
	By      NodeRef
	NodePub []byte
	Sig     []byte
	ReqID   uint64
}

func (ReclaimReceipt) Kind() string { return "reclaim-receipt" }

// Replicate transfers a file between nodes during failure recovery or
// leaf-set change so that k copies are maintained (section 2.1,
// "Persistence").
type Replicate struct {
	Cert FileCertificate
	Data []byte
	From NodeRef
}

func (Replicate) Kind() string { return "replicate" }

// SyncOffer is the first leg of digest-based anti-entropy: after a
// leaf-set change, a replica holder sends each peer that entered one of
// its files' replica sets a compact summary of the fileIds that peer
// should hold, instead of pushing full file bodies. The peer answers
// with a SyncRequest naming only the files it is missing. Sizes[i] is
// the advertised content size of Files[i], letting a full receiver skip
// files its admission policy would reject anyway — advisory only, since
// arriving bodies are re-verified against their certificates.
type SyncOffer struct {
	From  NodeRef
	Files []id.File
	Sizes []int64
}

func (SyncOffer) Kind() string { return "sync-offer" }

// SyncRequest asks the offerer for the full bodies (as Replicate
// messages) of the files the requester is missing — the second leg of
// anti-entropy.
type SyncRequest struct {
	From  NodeRef
	Files []id.File
}

func (SyncRequest) Kind() string { return "sync-request" }

// Depart announces a graceful departure to the sender's leaf-set
// members, letting them start repair and replica maintenance immediately
// instead of waiting out the failure-detection timeout. Silent crashes
// send nothing.
type Depart struct {
	From NodeRef
}

func (Depart) Kind() string { return "depart" }

// CacheCopy pushes an unsolicited cached copy toward an interested client;
// the receiver may store it in spare capacity (section 2.3).
type CacheCopy struct {
	Cert FileCertificate
	Data []byte
}

func (CacheCopy) Kind() string { return "cache-copy" }

// FetchRequest asks a specific node for a file it is known to hold (used
// to chase diversion pointers and during re-replication).
type FetchRequest struct {
	FileID id.File
	Client NodeRef
	ReqID  uint64
}

func (FetchRequest) Kind() string { return "fetch" }

// AuditChallenge asks a node to prove it stores a file by hashing its
// content with a nonce (section 2.1, "Storage quotas": random audits).
type AuditChallenge struct {
	FileID id.File
	Nonce  uint64
	From   NodeRef
	ReqID  uint64
}

func (AuditChallenge) Kind() string { return "audit-challenge" }

// AuditResponse carries the proof-of-storage hash.
type AuditResponse struct {
	FileID id.File
	Proof  [32]byte
	From   NodeRef
	ReqID  uint64
	Held   bool
}

func (AuditResponse) Kind() string { return "audit-response" }

// RegisterAll installs every message type with encoding/gob so the TCP
// transport can marshal Msg interface values.
func RegisterAll() {
	gob.Register(Routed{})
	gob.Register(JoinRequest{})
	gob.Register(RouteRows{})
	gob.Register(LeafSetReply{})
	gob.Register(LeafSetRequest{})
	gob.Register(NeighborhoodReply{})
	gob.Register(Announce{})
	gob.Register(Heartbeat{})
	gob.Register(Ping{})
	gob.Register(Pong{})
	gob.Register(RTRepairRequest{})
	gob.Register(RTRepairReply{})
	gob.Register(FileCertificate{})
	gob.Register(ReclaimCertificate{})
	gob.Register(InsertRequest{})
	gob.Register(ReplicaStore{})
	gob.Register(StoreReceipt{})
	gob.Register(InsertReject{})
	gob.Register(DivertReject{})
	gob.Register(LookupRequest{})
	gob.Register(LookupReply{})
	gob.Register(LookupMiss{})
	gob.Register(LookupAbort{})
	gob.Register(ReclaimRequest{})
	gob.Register(ReclaimForward{})
	gob.Register(ReclaimReceipt{})
	gob.Register(Replicate{})
	gob.Register(SyncOffer{})
	gob.Register(SyncRequest{})
	gob.Register(Depart{})
	gob.Register(CacheCopy{})
	gob.Register(FetchRequest{})
	gob.Register(AuditChallenge{})
	gob.Register(AuditResponse{})
}
