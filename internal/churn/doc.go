// Package churn generates and replays deterministic dynamic-membership
// workloads: the continuous node arrival, graceful departure and silent
// failure under which PAST's storage invariant — k copies on the k
// numerically closest live nodes — must hold (section 2.1,
// "Persistence").
//
// The package has two halves:
//
//   - Trace generation (Generate): a process model with Poisson arrivals
//     of brand-new nodes and heavy-tailed (lognormal or Pareto) session
//     lengths, reduced to a concrete, replayable event sequence by a
//     private seeded random stream. A trace is a pure function of its
//     Config — it involves neither the simulator nor the shard count.
//     Traces serialize to a line-oriented text format (Trace.String /
//     Parse) so recorded or hand-written schedules replay identically.
//
//   - Replay (Driver): applies a trace onto a running cluster. Every
//     membership change executes on the coordinating goroutine between
//     simulation runs — the driver advances the network to the event's
//     virtual time (a window barrier, under the sharded engine) and
//     calls cluster.AddNode / Leave / Crash there. Because nothing
//     churn-related ever runs inside a window, replays inherit the
//     sharded engine's guarantee: byte-identical results at any shard
//     count for a fixed seed (see ARCHITECTURE.md, "Churn engine").
//
// Experiments E15–E17 build on this package: lookup availability vs
// churn rate, anti-entropy vs push-all maintenance bandwidth, and
// replica-count durability over a long horizon.
package churn
