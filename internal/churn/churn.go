package churn

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"past/internal/cluster"
)

// Kind classifies a membership event.
type Kind uint8

// Event kinds: a brand-new node arrives and joins; an existing node
// departs gracefully (announcing to its leaf set) or crashes silently
// (the paper's "nodes may silently leave the system without warning").
const (
	Arrive Kind = iota
	Leave
	Crash
	// Outage silently crashes every live node in one transit domain at
	// once — a correlated regional failure (router outage, partition).
	// For Outage and Heal events, Event.Node names the transit domain,
	// not a node index.
	Outage
	// Heal restarts exactly the nodes the matching Outage took down that
	// are still down (partition rejoin); each runs the recovery protocol
	// against its last known leaf set.
	Heal
)

// String returns the trace-format name of the kind.
func (k Kind) String() string {
	switch k {
	case Arrive:
		return "arrive"
	case Leave:
		return "leave"
	case Crash:
		return "crash"
	case Outage:
		return "outage"
	case Heal:
		return "heal"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// parseKind inverts Kind.String.
func parseKind(s string) (Kind, error) {
	switch s {
	case "arrive":
		return Arrive, nil
	case "leave":
		return Leave, nil
	case "crash":
		return Crash, nil
	case "outage":
		return Outage, nil
	case "heal":
		return Heal, nil
	}
	return 0, fmt.Errorf("churn: unknown event kind %q", s)
}

// Event is one membership change at a point in virtual time. For
// arrivals, Node is the cluster index the new node will be assigned
// (arrivals are applied in order, so indices are predictable at
// generation time); for departures it names the node that goes.
type Event struct {
	At   time.Duration
	Kind Kind
	Node int
}

// Trace is a replayable sequence of membership events in ascending time
// order. Traces come from Generate (process-driven: Poisson arrivals,
// heavy-tailed sessions) or from Parse (trace-driven: replay a recorded
// or hand-written schedule). The same trace replayed onto the same
// cluster build yields the same tables at any shard count.
type Trace struct {
	Events []Event
}

// SessionKind selects the session-length distribution family.
type SessionKind uint8

// Session distributions: lognormal bodies model typical peer uptimes;
// Pareto adds the heavy tail (a few nodes that stay for a very long
// time) observed in deployed peer-to-peer systems.
const (
	Lognormal SessionKind = iota
	Pareto
)

// SessionDist draws node session lengths (time between a node's arrival
// and its departure).
type SessionDist struct {
	Kind SessionKind
	// Lognormal parameters: ln(seconds) has mean Mu and deviation Sigma.
	Mu, Sigma float64
	// Pareto parameters: minimum Xm seconds, shape Alpha.
	Xm, Alpha float64
	// Min and Max clamp draws.
	Min, Max time.Duration
}

// LognormalSessions returns a lognormal session distribution with the
// given median and a moderate spread.
func LognormalSessions(median time.Duration) SessionDist {
	return SessionDist{
		Kind:  Lognormal,
		Mu:    math.Log(median.Seconds()),
		Sigma: 0.8,
		Min:   time.Second,
		Max:   1000 * median,
	}
}

// ParetoSessions returns a Pareto session distribution with the given
// minimum session and shape alpha (alpha <= 2 gives the heavy tail).
func ParetoSessions(xm time.Duration, alpha float64) SessionDist {
	return SessionDist{
		Kind:  Pareto,
		Xm:    xm.Seconds(),
		Alpha: alpha,
		Min:   time.Second,
		Max:   10000 * xm,
	}
}

// draw returns one session length from the distribution.
func (d SessionDist) draw(rng *rand.Rand) time.Duration {
	var sec float64
	switch d.Kind {
	case Pareto:
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		sec = d.Xm * math.Pow(u, -1/d.Alpha)
	default: // Lognormal
		sec = math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
	}
	s := time.Duration(sec * float64(time.Second))
	if s < d.Min {
		s = d.Min
	}
	if d.Max > 0 && s > d.Max {
		s = d.Max
	}
	return s
}

// Config parameterizes trace generation.
type Config struct {
	// Seed drives the generator's private random stream. The stream is
	// independent of the simulator and of the shard count: the trace is a
	// pure function of this Config.
	Seed int64
	// Initial is the number of nodes present when the cluster is built;
	// their sessions start at time zero.
	Initial int
	// ArrivalRate is the expected number of brand-new node arrivals per
	// second of virtual time (Poisson process; inter-arrival gaps are
	// exponential). Zero disables arrivals.
	ArrivalRate float64
	// Session draws each node's time in the system.
	Session SessionDist
	// CrashFrac is the fraction of departures that are silent crashes;
	// the rest are graceful leaves that announce to the leaf set.
	CrashFrac float64
	// Horizon bounds the trace: no event is scheduled at or after it.
	Horizon time.Duration
	// MinLive drops departures that would take the live population below
	// this floor (a leaf set needs survivors to repair from; the paper's
	// invariant itself assumes fewer than l/2 adjacent simultaneous
	// failures).
	MinLive int
}

// Generate builds a deterministic trace from cfg: initial nodes draw
// their sessions first (in index order), then arrivals are laid out on
// the Poisson clock, each drawing its own session on arrival. Departures
// that would violate MinLive are dropped in a final ordered pass, so the
// surviving event sequence is still a pure function of cfg.
func Generate(cfg Config) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var evs []Event
	// Sessions for the initial population.
	for i := 0; i < cfg.Initial; i++ {
		s := cfg.Session.draw(rng)
		if s < cfg.Horizon {
			evs = append(evs, Event{At: s, Kind: departKind(rng, cfg.CrashFrac), Node: i})
		}
	}
	// Poisson arrivals, each with its own session.
	if cfg.ArrivalRate > 0 {
		next := cfg.Initial
		t := time.Duration(0)
		for {
			gap := time.Duration(rng.ExpFloat64() / cfg.ArrivalRate * float64(time.Second))
			t += gap
			if t >= cfg.Horizon {
				break
			}
			evs = append(evs, Event{At: t, Kind: Arrive, Node: next})
			s := cfg.Session.draw(rng)
			if t+s < cfg.Horizon {
				evs = append(evs, Event{At: t + s, Kind: departKind(rng, cfg.CrashFrac), Node: next})
			}
			next++
		}
	}
	// Time order; creation order breaks ties, keeping the sort stable and
	// the result deterministic.
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
	// Enforce the MinLive floor in one ordered pass.
	live := cfg.Initial
	out := evs[:0]
	for _, ev := range evs {
		switch ev.Kind {
		case Arrive:
			live++
		default:
			if live <= cfg.MinLive {
				continue // dropped: the node stays for the rest of the run
			}
			live--
		}
		out = append(out, ev)
	}
	return &Trace{Events: out}
}

// departKind draws crash-vs-leave for one departure.
func departKind(rng *rand.Rand, crashFrac float64) Kind {
	if rng.Float64() < crashFrac {
		return Crash
	}
	return Leave
}

// Arrivals returns the number of arrival events in the trace.
func (tr *Trace) Arrivals() int { return tr.count(Arrive) }

// Departures returns the number of leave+crash events in the trace.
func (tr *Trace) Departures() int { return tr.count(Leave) + tr.count(Crash) }

func (tr *Trace) count(k Kind) int {
	n := 0
	for _, ev := range tr.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// String renders the trace in its replayable text format: one
// "<time> <kind> <node>" line per event, durations in Go syntax.
func (tr *Trace) String() string {
	var b strings.Builder
	for _, ev := range tr.Events {
		fmt.Fprintf(&b, "%s %s %d\n", ev.At, ev.Kind, ev.Node)
	}
	return b.String()
}

// Parse reads a trace in the String format. Blank lines and lines
// starting with '#' are ignored. Events must be in ascending time order.
func Parse(s string) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(strings.NewReader(s))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("churn: line %d: want \"<time> <kind> <node>\", got %q", line, text)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: %w", line, err)
		}
		kind, err := parseKind(fields[1])
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: %w", line, err)
		}
		node, err := strconv.Atoi(fields[2])
		if err != nil || node < 0 {
			return nil, fmt.Errorf("churn: line %d: bad node index %q", line, fields[2])
		}
		if k := len(tr.Events); k > 0 && at < tr.Events[k-1].At {
			return nil, fmt.Errorf("churn: line %d: events out of order", line)
		}
		tr.Events = append(tr.Events, Event{At: at, Kind: kind, Node: node})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}
	return tr, nil
}

// Stats counts what a Driver actually applied.
type Stats struct {
	Arrivals    int // joins that completed
	FailedJoins int // arrivals whose join did not complete
	Leaves      int // graceful departures applied
	Crashes     int // silent crashes applied
	Skipped     int // departures skipped (node already down or MinLive floor)
	Outages     int // regional outages applied
	Heals       int // regional heals applied
}

// Driver replays a Trace onto a running cluster. All work happens on the
// coordinating goroutine between simulation runs: the driver advances
// the simulated network to each event's time (to window barriers, under
// the sharded engine) and applies the membership change there, so a
// replay is byte-identical at any shard count for a fixed seed — churn
// rides the same determinism argument as the sharded engine itself.
type Driver struct {
	C     *cluster.Cluster
	Trace *Trace
	// MinLive guards departures at replay time the way Config.MinLive
	// guards them at generation time (they can disagree when joins fail).
	MinLive int
	// OnEvent, if set, observes each applied event after it takes effect;
	// node is the actual cluster index (for arrivals, the index AddNode
	// assigned; for outages and heals, the transit domain).
	OnEvent func(ev Event, node int)
	// AsyncJoins applies arrivals without blocking: the join protocol
	// proceeds while the foreground workload runs, and completed joins
	// are folded in at the next Advance or CatchUp barrier. A node's
	// join can then overlap other events — the fidelity real churn has —
	// at the cost of Stats.Arrivals lagging until the join resolves.
	AsyncJoins bool

	Stats Stats
	next  int
	// outaged remembers, per transit domain, which nodes the last Outage
	// took down, so Heal restarts exactly those.
	outaged map[int][]int
}

// NewDriver binds a trace to a cluster.
func NewDriver(c *cluster.Cluster, tr *Trace) *Driver {
	return &Driver{C: c, Trace: tr}
}

// Done reports whether every event has been applied.
func (d *Driver) Done() bool { return d.next >= len(d.Trace.Events) }

// Advance applies every event due at or before t, running the network
// forward between events, then runs the network up to t. Events whose
// time has already passed (because a synchronous workload operation ran
// the clock ahead) are applied immediately; lateness is deterministic.
func (d *Driver) Advance(t time.Duration) {
	d.resolveJoins()
	for d.next < len(d.Trace.Events) {
		ev := d.Trace.Events[d.next]
		if ev.At > t {
			break
		}
		if now := d.C.Net.Now(); ev.At > now {
			d.C.Net.RunFor(ev.At - now)
		}
		d.resolveJoins()
		d.next++
		d.apply(ev)
	}
	if now := d.C.Net.Now(); t > now {
		d.C.Net.RunFor(t - now)
	}
	d.resolveJoins()
}

// resolveJoins folds completed asynchronous joins into the stats. It is
// a no-op unless AsyncJoins started some.
func (d *Driver) resolveJoins() {
	joined, failed := d.C.ResolveJoins()
	d.Stats.Arrivals += len(joined)
	d.Stats.FailedJoins += failed
}

// CatchUp applies events whose time has already passed without advancing
// the clock further; call it between workload operations.
func (d *Driver) CatchUp() { d.Advance(d.C.Net.Now()) }

// apply executes one event against the cluster.
func (d *Driver) apply(ev Event) {
	node := ev.Node
	switch ev.Kind {
	case Arrive:
		if d.AsyncJoins {
			node = d.C.AddNodeAsync()
			break // counted in resolveJoins once the join resolves
		}
		idx, err := d.C.AddNode()
		if err != nil {
			d.Stats.FailedJoins++
			return
		}
		d.Stats.Arrivals++
		node = idx
	case Outage:
		var hit []int
		for i := range d.C.Nodes {
			if d.C.LiveCount() <= d.MinLive {
				break
			}
			if d.C.Down(i) || d.C.Topo.Transit(i) != ev.Node {
				continue
			}
			d.C.Crash(i)
			hit = append(hit, i)
		}
		if d.outaged == nil {
			d.outaged = make(map[int][]int)
		}
		d.outaged[ev.Node] = append(d.outaged[ev.Node], hit...)
		d.Stats.Outages++
	case Heal:
		for _, i := range d.outaged[ev.Node] {
			if d.C.Down(i) {
				d.C.Restart(i)
			}
		}
		delete(d.outaged, ev.Node)
		d.Stats.Heals++
	case Leave, Crash:
		if node >= len(d.C.Nodes) || d.C.Down(node) || d.C.LiveCount() <= d.MinLive {
			d.Stats.Skipped++
			return
		}
		if ev.Kind == Leave {
			d.C.Leave(node)
			d.Stats.Leaves++
		} else {
			d.C.Crash(node)
			d.Stats.Crashes++
		}
	}
	if d.OnEvent != nil {
		d.OnEvent(ev, node)
	}
}
