package churn_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"past/internal/churn"
	"past/internal/cluster"
	"past/internal/id"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/simnet"
)

func testConfig(initial int) churn.Config {
	return churn.Config{
		Seed:        7,
		Initial:     initial,
		ArrivalRate: 0.25,
		Session:     churn.LognormalSessions(20 * time.Second),
		CrashFrac:   0.5,
		Horizon:     30 * time.Second,
		MinLive:     initial / 2,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := testConfig(24)
	a := churn.Generate(cfg).String()
	b := churn.Generate(cfg).String()
	if a != b {
		t.Fatal("same config produced different traces")
	}
	cfg.Seed++
	if churn.Generate(cfg).String() == a {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := testConfig(32)
	tr := churn.Generate(cfg)
	if tr.Arrivals() == 0 || tr.Departures() == 0 {
		t.Fatalf("degenerate trace: %d arrivals, %d departures", tr.Arrivals(), tr.Departures())
	}
	live := cfg.Initial
	for i, ev := range tr.Events {
		if ev.At >= cfg.Horizon {
			t.Fatalf("event %d beyond horizon: %s", i, ev.At)
		}
		if i > 0 && ev.At < tr.Events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
		if ev.Kind == churn.Arrive {
			live++
		} else {
			live--
		}
		if live < cfg.MinLive {
			t.Fatalf("MinLive floor violated at event %d: live=%d", i, live)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := churn.Generate(testConfig(16))
	text := "# replay header comment\n\n" + tr.String()
	back, err := churn.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.String() != tr.String() {
		t.Fatal("trace did not round-trip")
	}
	if _, err := churn.Parse("1s explode 3\n"); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := churn.Parse("2s crash 1\n1s crash 0\n"); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

func TestParetoSessionsHeavyTail(t *testing.T) {
	cfg := testConfig(24)
	cfg.Session = churn.ParetoSessions(5*time.Second, 1.2)
	tr := churn.Generate(cfg)
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
}

// harness is a PAST cluster whose smartcards and storage nodes grow on
// demand, so churn arrivals can join mid-run. It deliberately mirrors
// churnPAST in internal/experiments/churnexp.go (same card-seed
// derivation, same verification) rather than importing it, so this
// package's tests cannot be skewed by experiment-harness changes — keep
// the card derivation in the two in sync.
type harness struct {
	*cluster.Cluster
	broker *seccrypt.Broker
	cfg    past.Config
	seed   int64
	cards  []*seccrypt.Smartcard
	pnodes []*past.Node
}

func (h *harness) card(i int) *seccrypt.Smartcard {
	for len(h.cards) <= i {
		j := len(h.cards)
		c, err := h.broker.IssueCard(1<<50, h.cfg.Capacity, 0, seccrypt.DetRand(uint64(h.seed)<<20+uint64(j)+7))
		if err != nil {
			panic(err)
		}
		h.cards = append(h.cards, c)
	}
	return h.cards[i]
}

func buildHarness(t testing.TB, n int, seed int64, shards int) *harness {
	t.Helper()
	cfg := past.DefaultConfig()
	cfg.K = 3
	cfg.Capacity = 1 << 20
	cfg.Caching = false
	cfg.RequestTimeout = 5 * time.Second
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(uint64(seed) + 1))
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	h := &harness{broker: broker, cfg: cfg, seed: seed}
	pcfg := pastry.DefaultConfig()
	pcfg.KeepAlive = 500 * time.Millisecond
	pcfg.FailTimeout = 1500 * time.Millisecond
	c, err := cluster.Build(cluster.Options{
		N:      n,
		Pastry: pcfg,
		Seed:   seed,
		Shards: shards,
		NodeID: func(i int) id.Node { return h.card(i).NodeID() },
		AppFactory: func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App {
			for len(h.pnodes) <= i {
				h.pnodes = append(h.pnodes, nil)
			}
			h.pnodes[i] = past.NewNode(cfg, nd, h.card(i), broker.PublicKey())
			return h.pnodes[i]
		},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c.EnableProbes()
	h.Cluster = c
	return h
}

func (h *harness) insert(t testing.TB, node int, name string, data []byte) id.File {
	t.Helper()
	var res *past.InsertResult
	h.pnodes[node].Insert(h.card(node), name, data, h.cfg.K, func(r past.InsertResult) { res = &r })
	h.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil || res.Err != nil {
		t.Fatalf("insert %s: %+v", name, res)
	}
	return res.FileID
}

// liveVerifiedCopies counts live nodes holding a content-verified copy.
func (h *harness) liveVerifiedCopies(f id.File) int {
	n := 0
	for i, pn := range h.pnodes {
		if pn == nil || h.Down(i) {
			continue
		}
		it, err := pn.Store().Get(f)
		if err != nil {
			continue
		}
		if seccrypt.VerifyContent(&it.Cert, it.Data) == nil {
			n++
		}
	}
	return n
}

// TestChurnStorageInvariant is the churn determinism + persistence test:
// it replays one generated trace (crashes, graceful leaves and mid-run
// joins in sequence) over a PAST cluster at shards=1,2,4 and asserts
// that (a) after the network settles, every surviving file has at least
// k live, content-verified replicas, and (b) the full outcome — driver
// stats and the per-file replica counts — is byte-identical at every
// shard count. Run under -race in CI.
func TestChurnStorageInvariant(t *testing.T) {
	const n = 24
	ccfg := churn.Config{
		Seed:        11,
		Initial:     n,
		ArrivalRate: 0.3,
		Session:     churn.LognormalSessions(15 * time.Second),
		CrashFrac:   0.5,
		Horizon:     25 * time.Second,
		MinLive:     n - 6,
	}
	tr := churn.Generate(ccfg)
	if tr.Arrivals() == 0 || tr.Departures() == 0 {
		t.Fatalf("trace lacks churn: %d arrivals, %d departures", tr.Arrivals(), tr.Departures())
	}

	var base string
	for _, shards := range []int{1, 2, 4} {
		h := buildHarness(t, n, 42, shards)
		var files []id.File
		for i := 0; i < 10; i++ {
			files = append(files, h.insert(t, i%n, fmt.Sprintf("churn-%d", i), make([]byte, 1024)))
		}
		d := churn.NewDriver(h.Cluster, tr)
		d.MinLive = ccfg.MinLive
		d.Advance(ccfg.Horizon)
		// Settle: let failure detection, repair and anti-entropy finish.
		h.RunSettle(15 * time.Second)

		var b strings.Builder
		fmt.Fprintf(&b, "stats=%+v live=%d\n", d.Stats, h.LiveCount())
		for i, f := range files {
			copies := h.liveVerifiedCopies(f)
			if copies > 0 && copies < h.cfg.K {
				t.Errorf("shards=%d: file %d has %d live verified copies, want >= %d", shards, i, copies, h.cfg.K)
			}
			if copies == 0 {
				t.Logf("shards=%d: file %d lost (all holders departed before repair)", shards, i)
			}
			fmt.Fprintf(&b, "file %d: %d copies\n", i, copies)
		}
		got := b.String()
		if shards == 1 {
			base = got
			if d.Stats.Crashes == 0 || d.Stats.Leaves == 0 || d.Stats.Arrivals == 0 {
				t.Fatalf("trace exercised too little: %+v", d.Stats)
			}
			continue
		}
		if got != base {
			t.Fatalf("churn outcome diverges between shards=1 and shards=%d:\n--- shards=1:\n%s--- shards=%d:\n%s",
				shards, base, shards, got)
		}
	}
}

// TestDriverSkipsAndFloors replays a hand-written trace and checks the
// driver's bookkeeping: double departures are skipped, the MinLive floor
// holds, arrivals join live.
func TestDriverSkipsAndFloors(t *testing.T) {
	tr, err := churn.Parse(`
# crash 0 twice (second is a no-op), an arrival, a leave, then a
# departure blocked by the MinLive floor
1s crash 0
2s crash 0
3s arrive 8
4s leave 1
5s crash 2
`)
	if err != nil {
		t.Fatal(err)
	}
	h := buildHarness(t, 8, 43, 0)
	d := churn.NewDriver(h.Cluster, tr)
	d.MinLive = 7
	d.Advance(6 * time.Second)
	if !d.Done() {
		t.Fatal("driver did not finish the trace")
	}
	want := churn.Stats{Arrivals: 1, Crashes: 1, Leaves: 1, Skipped: 2}
	if d.Stats != want {
		t.Fatalf("stats = %+v, want %+v", d.Stats, want)
	}
	if h.LiveCount() != 7 {
		t.Fatalf("LiveCount = %d, want 7", h.LiveCount())
	}
}

func (h *harness) lookup(t testing.TB, node int, f id.File) past.LookupResult {
	t.Helper()
	var res *past.LookupResult
	h.pnodes[node].Lookup(f, func(r past.LookupResult) { res = &r })
	h.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil {
		t.Fatalf("lookup %v never completed", f)
	}
	return *res
}

// TestAsyncJoinsDuringWorkload pins churn-join fidelity: with
// Driver.AsyncJoins set, an arrival starts its join protocol without
// blocking the driver, the foreground workload keeps inserting and
// looking up files while the join is still pending, and once the
// network runs the join resolves — Stats.Arrivals catches up, the
// pending count drains to zero and the newcomer is live and routable.
func TestAsyncJoinsDuringWorkload(t *testing.T) {
	const n = 16
	tr, err := churn.Parse(`
1s arrive 16
2s crash 3
3s arrive 17
4s arrive 18
`)
	if err != nil {
		t.Fatal(err)
	}
	h := buildHarness(t, n, 44, 0)
	var files []id.File
	for i := 0; i < 4; i++ {
		files = append(files, h.insert(t, i, fmt.Sprintf("pre-%d", i), make([]byte, 1024)))
	}

	d := churn.NewDriver(h.Cluster, tr)
	d.AsyncJoins = true

	// liveNode picks the first live original node at or after i: clients
	// must be up — a crashed node runs no code, so a lookup issued from
	// one would never call back.
	liveNode := func(i int) int {
		for j := 0; j < n; j++ {
			if !h.Down((i + j) % n) {
				return (i + j) % n
			}
		}
		t.Fatal("no live node")
		return -1
	}

	// Stop exactly at the first arrival: the join has been started but
	// the network has not run since, so it cannot have resolved yet.
	d.Advance(1 * time.Second)
	if got := h.PendingJoins(); got != 1 {
		t.Fatalf("PendingJoins = %d right after the arrival, want 1 (join must not block)", got)
	}
	if d.Stats.Arrivals != 0 {
		t.Fatalf("Stats.Arrivals = %d before the join resolved, want 0", d.Stats.Arrivals)
	}

	// Foreground workload proceeds while the join is in flight.
	files = append(files, h.insert(t, 5, "mid-join", make([]byte, 1024)))
	for i, f := range files {
		if lr := h.lookup(t, liveNode(i+7), f); lr.Err != nil {
			t.Fatalf("lookup %d during pending join: %v", i, lr.Err)
		}
	}

	// Drive the rest of the trace tick by tick with workload interleaved,
	// the way the experiments use the driver.
	for at := 2 * time.Second; at <= 5*time.Second; at += time.Second {
		d.Advance(at)
		for i, f := range files {
			if lr := h.lookup(t, liveNode(int(at/time.Second)+i), f); lr.Err != nil {
				t.Fatalf("lookup %d at t=%s: %v", i, at, lr.Err)
			}
		}
	}
	h.RunSettle(5 * time.Second)
	d.CatchUp()

	if !d.Done() {
		t.Fatal("driver did not finish the trace")
	}
	if h.PendingJoins() != 0 {
		t.Fatalf("PendingJoins = %d after settle, want 0", h.PendingJoins())
	}
	if d.Stats.Arrivals != 3 {
		t.Fatalf("Stats.Arrivals = %d, want 3 (all async joins resolved)", d.Stats.Arrivals)
	}
	if got, want := h.LiveCount(), n+3-1; got != want {
		t.Fatalf("LiveCount = %d, want %d (three arrivals, one crash)", got, want)
	}
	// The newcomers are live and must be routable: a lookup issued from
	// each joined node succeeds.
	for _, newcomer := range []int{16, 17, 18} {
		if h.Down(newcomer) {
			t.Fatalf("node %d still down after its async join resolved", newcomer)
		}
		if lr := h.lookup(t, newcomer, files[0]); lr.Err != nil {
			t.Fatalf("lookup from joined node %d: %v", newcomer, lr.Err)
		}
	}
}
