package experiments

import (
	"strings"
	"time"

	"past/internal/cluster"
	"past/internal/id"
	"past/internal/past"
	"past/internal/telemetry"
)

// CollectSeries turns on per-window telemetry for the experiments that
// instrument it (E15, E18, E20). Off by default: the recorded tables
// must not depend on whether series were collected, so instrumentation
// only ever samples state — it never drives the cluster RNG or the
// schedule. pastsim/pastbench set it for -series.
var CollectSeries bool

// seriesWindow is the aggregation window for experiment series. One
// virtual second matches the experiments' own tick loops.
const seriesWindow = time.Second

// expSeries is one experiment phase's telemetry: a recorder ticked at
// window barriers plus the lookup-driver series every instrumented
// experiment shares. nil (when CollectSeries is off) disables every
// method, so call sites stay unconditional.
type expSeries struct {
	rec      *telemetry.Recorder
	lookups  *telemetry.Counter
	lookupOK *telemetry.Counter
	hops     *telemetry.Dist
	latMs    *telemetry.Dist
	out      *strings.Builder
	c        *cluster.Cluster
}

// newExpSeries attaches a recorder to c: cluster series (live_nodes,
// net_events), storage-layer deltas over nodes(), and the lookup driver
// series. tags label every emitted point; finish() appends the line
// protocol to out.
func newExpSeries(c *cluster.Cluster, nodes func() []*past.Node, out *strings.Builder, tags ...[2]string) *expSeries {
	if !CollectSeries {
		return nil
	}
	rec := telemetry.New(telemetry.Config{Window: seriesWindow, Capacity: 1024})
	for _, t := range tags {
		rec.SetTag(t[0], t[1])
	}
	c.AttachTelemetry(rec)
	past.RegisterTelemetry(rec, nodes)
	return &expSeries{
		rec:      rec,
		lookups:  rec.Counter("lookups"),
		lookupOK: rec.Counter("lookup_ok"),
		hops:     rec.Dist("lookup_hops"),
		latMs:    rec.Dist("lookup_latency_ms"),
		out:      out,
		c:        c,
	}
}

// lookup records one driver lookup: attempt count, success count, hops
// and virtual-time latency (milliseconds) on success.
func (s *expSeries) lookup(lat time.Duration, hops int, err error) {
	if s == nil {
		return
	}
	s.lookups.Inc()
	if err == nil {
		s.lookupOK.Inc()
		s.hops.Observe(float64(hops))
		s.latMs.Observe(float64(lat) / float64(time.Millisecond))
	}
}

// trackReplicas registers the replica-health series: how many of the
// tracked files have >= 1 and >= k live content-verified copies, sampled
// at each window flush. count sweeps the store of every live node, so
// callers skip it on the large tiers.
func (s *expSeries) trackReplicas(count func() (ge1, geK int), tracked func() int) {
	if s == nil {
		return
	}
	s.rec.Multi("replicas", []string{"ge_1", "ge_k", "tracked"}, func() []float64 {
		ge1, geK := count()
		return []float64{float64(ge1), float64(geK), float64(tracked())}
	})
}

// now returns the cluster's virtual time (for latency measurement around
// a synchronous lookup). Safe on nil.
func (s *expSeries) now() time.Duration {
	if s == nil {
		return 0
	}
	return s.c.Net.Now()
}

// finish closes the final partial window, appends the series to the
// output builder and detaches the barrier hook.
func (s *expSeries) finish() {
	if s == nil {
		return
	}
	s.rec.Flush(s.c.Net.Now())
	_ = s.rec.WriteLP(s.out)
	s.c.Net.SetBarrierHook(nil)
}

// healthCounter builds the count/tracked closures trackReplicas wants
// from a live-verified-copies probe over a (growing) id list.
func healthCounter(ids *[]id.File, k int, copies func(id.File) int) (func() (int, int), func() int) {
	return func() (ge1, geK int) {
			for _, f := range *ids {
				c := copies(f)
				if c >= 1 {
					ge1++
				}
				if c >= k {
					geK++
				}
			}
			return
		}, func() int {
			return len(*ids)
		}
}
