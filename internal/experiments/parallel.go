package experiments

// Parallel experiment engine.
//
// Most experiments are grids of fully independent data points: each point
// builds its own cluster (own simnet, own topology, own deterministic RNG
// streams derived from the experiment seed) and measures it. Nothing is
// shared between points except the process-wide seccrypt verification
// memo, which is lock-striped, thread-safe, and invisible to results
// (caching a signature check can never change its outcome). The engine
// below fans those points out over goroutines and reassembles rows in
// grid order, so a run's table is byte-for-byte identical to the
// sequential one regardless of how many cores execute it: determinism is
// per (seed, point), not per schedule.
//
// Experiments that drive one long-lived cluster through phases (E2-E5,
// E8, E9, E12-E17) cannot fan out across points; they instead run on
// simnet's sharded conservative-window engine, which parallelizes inside
// the single simulation. See sharded.go.

import (
	"runtime"
	"sync"
)

// MaxParallel bounds how many experiment data points run concurrently.
// It defaults to the number of usable CPUs; tests may lower it to 1 to
// force sequential execution (results are identical either way).
var MaxParallel = runtime.GOMAXPROCS(0)

// forEachPoint runs job(0..n-1) concurrently, at most MaxParallel at a
// time, and returns once all complete. Jobs must be independent: they
// may not share clusters, RNGs or result slots. Callers index into
// preallocated result slices so assembly order never depends on
// scheduling.
func forEachPoint(n int, job func(i int)) {
	limit := MaxParallel
	if limit < 1 {
		limit = 1
	}
	if limit == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			job(i)
		}(i)
	}
	wg.Wait()
}
