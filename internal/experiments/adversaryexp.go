package experiments

// Adversarial-resilience experiments E18-E21: the paper's section 2.2
// fault model ("nodes may be faulty or malicious ... accept traffic but
// do not forward it correctly") exercised against the client-side
// defenses — retrying lookups with route diversity, hop budgets, batch
// receipt verification and storage audits — plus two correlated-stress
// scenarios: a regional (transit-domain) outage and a flash crowd.
//
// All four are phase experiments on the sharded engine. Adversarial
// decisions are pure functions of (seed, node index) plus each node's
// own traffic (package adversary), the coordinator draws from the
// cluster RNG, and churn traces are pure functions of their seed, so
// every table is byte-identical at any shard count.

import (
	"fmt"
	"strings"
	"time"

	"past/internal/adversary"
	"past/internal/churn"
	"past/internal/id"
	"past/internal/metrics"
	"past/internal/past"
	"past/internal/wire"
	"past/internal/workload"
)

// advPASTConfig sizes PAST nodes for the adversary experiments: caching
// off so a retried phase cannot profit from caches warmed by the
// baseline phase, and a short request timeout so timed-out attempts
// (the dropper's signature) retry quickly.
func advPASTConfig() past.Config {
	cfg := defaultPASTConfig()
	cfg.Caching = false
	cfg.RequestTimeout = 3 * time.Second
	return cfg
}

// Defense knobs the "retry on" phases use. Six retries keep the failure
// probability below 5% even when ~40% of per-attempt paths die (the
// 30%-dropper operating point routes 2-3 hops, each surviving w.p. 0.7).
const (
	advRetries   = 8
	advBackoff   = 150 * time.Millisecond
	advHopBudget = 6
)

// advPopulate inserts files 4 KiB files from random honest nodes and
// returns their ids. Adversaries are installed after population, so the
// stored state is clean and only the measured workload sees them.
func advPopulate(pc *pastCluster, files int, prefix string) []id.File {
	var ids []id.File
	for f := 0; len(ids) < files && f < 2*files; f++ {
		i := pc.Rand().Intn(len(pc.PAST))
		res := pc.insert(i, pc.Cards[i], fmt.Sprintf("%s-%d", prefix, f), make([]byte, 4096), 0)
		if res.Err == nil {
			ids = append(ids, res.FileID)
		}
	}
	return ids
}

// honestNodes returns the cluster indexes outside the malicious set.
func honestNodes(n int, bad []int) []int {
	isBad := make(map[int]bool, len(bad))
	for _, i := range bad {
		isBad[i] = true
	}
	honest := make([]int, 0, n-len(bad))
	for i := 0; i < n; i++ {
		if !isBad[i] {
			honest = append(honest, i)
		}
	}
	return honest
}

// advLookups runs count lookups of random files from random honest
// clients and reports successes and the hop summary of the successes.
func advLookups(pc *pastCluster, honest []int, ids []id.File, count int, es *expSeries) (ok int, hops metrics.Summary) {
	for l := 0; l < count; l++ {
		client := honest[pc.Rand().Intn(len(honest))]
		f := ids[pc.Rand().Intn(len(ids))]
		t0 := es.now()
		lr := pc.lookup(client, f)
		es.lookup(es.now()-t0, lr.Hops, lr.Err)
		if lr.Err == nil {
			ok++
			hops.Add(float64(lr.Hops))
		}
	}
	return ok, hops
}

// E18AdversarialLookups measures lookup availability against the two
// traffic adversaries of section 2.2 — nodes that accept requests but
// silently drop them, and nodes that forward them to wrong hops — as
// the malicious fraction grows, with the client defenses off and on.
// The defense is randomized: each retry re-enters the ring through a
// different neighbor (the paper's randomized-routing argument), so a
// fixed set of bad hops cannot kill every attempt, and a hop budget
// converts endless misrouting into a fast abort-and-retry.
func E18AdversarialLookups(scale Scale, seed int64) Result {
	n, files, lookups := 64, 24, 60
	if scale == Full {
		n, files, lookups = 160, 96, 120
	}
	cfg := advPASTConfig()
	// k=5 (the paper's usual replication degree) rather than the storage
	// experiments' k=3: with a malicious root, a retry survives only if it
	// strays into an honest replica holder on the way in, and that rescue
	// probability is what replication degree buys.
	cfg.K = 5
	type row struct {
		policy adversary.Policy
		frac   float64
	}
	rows := []row{
		{adversary.Dropper, 0}, {adversary.Dropper, 0.2}, {adversary.Dropper, 0.3}, {adversary.Dropper, 0.4},
		{adversary.Misrouter, 0.2}, {adversary.Misrouter, 0.3}, {adversary.Misrouter, 0.4},
	}
	tbl := &metrics.Table{Header: []string{"policy", "malicious", "success (no retry)", "hops", "success (retry)", "hops", "retries", "aborts"}}
	var series strings.Builder
	for _, r := range rows {
		pc := mustPAST(n, seed, cfg, nil, sharded)
		ids := advPopulate(pc, files, "adv")
		bad := adversary.Pick(seed+101, n, r.frac)
		for _, i := range bad {
			adversary.Install(r.policy, seed+102, pc.Eps[i], pc.PAST[i], 1)
		}
		honest := honestNodes(n, bad)
		// One recorder per row; the defense phase flip shows up as a step
		// in lookup_ok and the past series' lookup_retries deltas.
		es := newExpSeries(pc.Cluster, func() []*past.Node { return pc.PAST }, &series,
			[2]string{"exp", "E18"}, [2]string{"policy", r.policy.String()},
			[2]string{"frac", fmt.Sprintf("%.2f", r.frac)}, [2]string{"scale", scale.String()})
		// Phase 1: defenses off (the build config has LookupRetries=0).
		offOK, offHops := advLookups(pc, honest, ids, lookups, es)
		// Phase 2: same overlay, same adversaries, defenses on.
		for _, pn := range pc.PAST {
			pn.SetResilience(advRetries, advBackoff, advHopBudget)
		}
		onOK, onHops := advLookups(pc, honest, ids, lookups, es)
		es.finish()
		var retries, aborts int
		for _, pn := range pc.PAST {
			st := pn.Stats()
			retries += st.LookupRetries
			aborts += st.RouteAborts
		}
		tbl.AddRow(r.policy.String(), fmt.Sprintf("%.0f%%", r.frac*100),
			frac(offOK, lookups), fmt.Sprintf("%.2f", offHops.Mean()),
			frac(onOK, lookups), fmt.Sprintf("%.2f", onHops.Mean()),
			retries, aborts)
	}
	return Result{
		ID:         "E18",
		Title:      fmt.Sprintf("Lookup availability vs malicious-node fraction (N=%d, k=%d, %d lookups/phase)", n, cfg.K, lookups),
		PaperClaim: "randomized routing decisions make it hard for malicious nodes to keep a client from reaching a replica",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("defense: up to %d retries, each via a different neighbor, backoff base %s, hop budget %d", advRetries, advBackoff, advHopBudget),
			"droppers discard routed requests they should forward but still answer directly; misrouters bounce requests to random leaf-set members",
		},
		SeriesLP: series.String(),
	}
}

// E19ReceiptContainment measures how the storage defenses of section 2.1
// contain cheating storage nodes. Forgers return receipts whose
// signatures fail the client's batch verification, so the client simply
// never counts them and re-targets the insert (file diversion).
// Free-riders sign honestly but discard the data, which only a content
// audit — a nonce challenge against the stored bytes — exposes.
func E19ReceiptContainment(scale Scale, seed int64) Result {
	n, files := 40, 20
	if scale == Full {
		n, files = 120, 60
	}
	cfg := advPASTConfig()
	type row struct {
		policy adversary.Policy
		frac   float64
	}
	rows := []row{
		{adversary.Forger, 0.1}, {adversary.Forger, 0.2},
		{adversary.FreeRider, 0.1}, {adversary.FreeRider, 0.2},
	}
	tbl := &metrics.Table{Header: []string{"policy", "malicious", "inserts ok", "forged rcpts dropped", "diversion retries", "cheats flagged", "false alarms", "lookup success"}}
	for _, r := range rows {
		pc := mustPAST(n, seed, cfg, nil, sharded)
		bad := adversary.Pick(seed+201, n, r.frac)
		isBad := make(map[int]bool, len(bad))
		for _, i := range bad {
			isBad[i] = true
			adversary.Install(r.policy, seed+202, pc.Eps[i], pc.PAST[i], 1)
		}
		honest := honestNodes(n, bad)
		// Inserts from honest clients, against cheating storage nodes.
		insertsOK, divRetries := 0, 0
		var stored []past.InsertResult
		for f := 0; f < files; f++ {
			i := honest[pc.Rand().Intn(len(honest))]
			res := pc.insert(i, pc.Cards[i], fmt.Sprintf("rc-%d", f), make([]byte, 4096), 0)
			divRetries += res.Retries
			if res.Err == nil {
				insertsOK++
				stored = append(stored, res)
			}
		}
		forged := 0
		for _, i := range honest {
			forged += pc.PAST[i].Stats().ForgedReceiptsDropped
		}
		// Audit sweep: an honest holder of each file challenges every other
		// node the client holds a receipt from. A failed audit of a cheat is
		// a detection; a failed audit of an honest holder is a false alarm.
		cheatsFlagged, falseAlarms := 0, 0
		for _, res := range stored {
			auditor := -1
			for _, rc := range res.Receipts {
				i := pc.IndexByID(rc.StoredBy.ID)
				if i >= 0 && !isBad[i] {
					if _, err := pc.PAST[i].Store().Get(res.FileID); err == nil {
						auditor = i
						break
					}
				}
			}
			if auditor < 0 {
				continue
			}
			for _, rc := range res.Receipts {
				i := pc.IndexByID(rc.StoredBy.ID)
				if i < 0 || i == auditor {
					continue
				}
				held, err := syncAudit(pc, auditor, rc.StoredBy, res.FileID)
				if err != nil {
					continue
				}
				if !held && isBad[i] {
					cheatsFlagged++
				}
				if !held && !isBad[i] {
					falseAlarms++
				}
			}
		}
		// Reads still succeed off the honest replicas.
		var fileIDs []id.File
		for _, res := range stored {
			fileIDs = append(fileIDs, res.FileID)
		}
		lookups := 2 * len(fileIDs)
		lookOK := 0
		if lookups > 0 {
			lookOK, _ = advLookups(pc, honest, fileIDs, lookups, nil)
		}
		tbl.AddRow(r.policy.String(), fmt.Sprintf("%.0f%%", r.frac*100),
			fmt.Sprintf("%d/%d", insertsOK, files), forged, divRetries,
			cheatsFlagged, falseAlarms, frac(lookOK, lookups))
	}
	return Result{
		ID:         "E19",
		Title:      fmt.Sprintf("Containment of forged receipts and storage free-riders (N=%d, k=%d, %d inserts)", n, cfg.K, files),
		PaperClaim: "store receipts prevent a malicious node from claiming storage it does not provide; smartcard signatures make forgeries detectable",
		Table:      tbl,
		Notes: []string{
			"forgers are contained at insert time: batch verification drops their receipts, so the client diverts the file elsewhere",
			"free-riders sign honestly and are only exposed by the nonce content audit; reads survive on the k-1 honest replicas",
		},
	}
}

// syncAudit drives one content audit to completion.
func syncAudit(pc *pastCluster, auditor int, peer wire.NodeRef, f id.File) (bool, error) {
	var res *bool
	if err := pc.PAST[auditor].AuditPeer(peer, f, func(ok bool) { res = &ok }); err != nil {
		return false, err
	}
	pc.Net.RunUntil(func() bool { return res != nil }, 10_000_000)
	if res == nil {
		return false, past.ErrTimeout
	}
	return *res, nil
}

// E20RegionalOutage crashes an entire transit domain at once — the
// correlated failure a single backbone cut produces — while background
// arrivals join asynchronously, then heals it and measures how fast the
// replica invariant recovers. Crashed nodes keep their disks, so
// recovery is leaf-set repair plus anti-entropy, not full re-insertion.
func E20RegionalOutage(scale Scale, seed int64) Result {
	n, files := 48, 24
	if scale == Full {
		n, files = 160, 96
	}
	outageAt, healAt, horizon := 5*time.Second, 25*time.Second, 45*time.Second
	cfg := churnPASTConfig()
	cp := buildChurnPAST(n, seed, cfg)
	var ids []id.File
	for f := 0; len(ids) < files && f < 2*files; f++ {
		res := cp.insert(cp.Rand().Intn(n), fmt.Sprintf("out-%d", f), make([]byte, 1024))
		if res.Err == nil {
			ids = append(ids, res.FileID)
		}
	}
	// Let diverted replicas and anti-entropy settle so the pre-outage
	// phase measures the steady state, not the insert transient.
	cp.RunSettle(3 * time.Second)
	countHealthy := func() (atLeast1, atLeastK int) {
		for _, f := range ids {
			c := cp.liveVerifiedCopies(f)
			if c >= 1 {
				atLeast1++
			}
			if c >= cfg.K {
				atLeastK++
			}
		}
		return
	}
	// Telemetry opens on the settled steady state: the series shows the
	// outage dip (live_nodes, lookup_ok, replicas ge_k) and the post-heal
	// recovery window by window.
	var series strings.Builder
	es := newExpSeries(cp.Cluster, func() []*past.Node { return cp.nodes }, &series,
		[2]string{"exp", "E20"}, [2]string{"scale", scale.String()})
	es.trackReplicas(func() (int, int) { return countHealthy() }, func() int { return len(ids) })
	dom := cp.Topo.Transit(0)
	tr := &churn.Trace{Events: []churn.Event{
		{At: outageAt, Kind: churn.Outage, Node: dom},
		{At: 10 * time.Second, Kind: churn.Arrive},
		{At: 15 * time.Second, Kind: churn.Arrive},
		{At: healAt, Kind: churn.Heal, Node: dom},
		{At: 30 * time.Second, Kind: churn.Arrive},
		{At: 35 * time.Second, Kind: churn.Arrive},
	}}
	d := churn.NewDriver(cp.Cluster, tr)
	d.AsyncJoins = true
	d.MinLive = n / 4
	type phase struct {
		name     string
		from, to time.Duration
	}
	// Phase ends stop one tick short of the next trace event, so each
	// phase's health count reflects its own regime: the tick that applies
	// the outage (or the heal) belongs to the phase it begins.
	phases := []phase{
		{"before outage", 0, outageAt - time.Second},
		{"during outage", outageAt - time.Second, healAt - time.Second},
		{"after heal", healAt - time.Second, horizon},
	}
	tbl := &metrics.Table{Header: []string{"phase", "lookups", "success", "avg hops", "files >= 1 copy", "files >= k"}}
	outageSize, recoverAt := 0, time.Duration(0)
	for _, ph := range phases {
		ok, total := 0, 0
		var hops metrics.Summary
		for tick := ph.from + time.Second; tick <= ph.to; tick += time.Second {
			d.Advance(tick)
			if outageSize == 0 && tick > outageAt {
				for i := 0; i < n; i++ {
					if cp.Down(i) && cp.Topo.Transit(i) == dom {
						outageSize++
					}
				}
			}
			if recoverAt == 0 && tick >= healAt {
				if _, atLeastK := countHealthy(); atLeastK == len(ids) {
					recoverAt = tick
				}
			}
			for l := 0; l < 2; l++ {
				f := ids[cp.Rand().Intn(len(ids))]
				t0 := es.now()
				lr := cp.lookup(cp.RandomLiveNode(), f)
				es.lookup(es.now()-t0, lr.Hops, lr.Err)
				total++
				if lr.Err == nil {
					ok++
					hops.Add(float64(lr.Hops))
				}
			}
		}
		atLeast1, atLeastK := countHealthy()
		tbl.AddRow(ph.name, total, frac(ok, total), fmt.Sprintf("%.2f", hops.Mean()),
			fmt.Sprintf("%d/%d", atLeast1, len(ids)), fmt.Sprintf("%d/%d", atLeastK, len(ids)))
	}
	es.finish()
	recovery := "not within horizon"
	if recoverAt > 0 {
		recovery = fmt.Sprintf("%s after heal", recoverAt-healAt)
	}
	return Result{
		ID:         "E20",
		Title:      fmt.Sprintf("Regional outage: transit domain %d dark from %s to %s (N=%d, k=%d)", dom, outageAt, healAt, n, cfg.K),
		PaperClaim: "replicas are spread over nodes with diverse geographic location and network attachment, so a localized fault leaves files available",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("outage crashed %d nodes at once; crashed nodes keep their stores and rejoin on heal", outageSize),
			fmt.Sprintf("full k-replica invariant restored: %s; %d async arrivals joined during the run", recovery, d.Stats.Arrivals),
		},
		SeriesLP: series.String(),
	}
}

// E21FlashCrowd subjects one previously cold file to a sudden read storm
// (rank-0 Zipf popularity) and measures what the unpinned cache tier
// buys: lookups that terminate at caches along the route, shorter
// routes, and read load spread over many nodes instead of concentrating
// on the file's k replica holders.
func E21FlashCrowd(scale Scale, seed int64) Result {
	n, files, reqs := 40, 24, 240
	if scale == Full {
		n, files, reqs = 120, 64, 960
	}
	tbl := &metrics.Table{Header: []string{"caching", "lookups", "success", "avg hops", "cache hits", "cache pushes", "top-node share"}}
	for _, caching := range []bool{false, true} {
		cfg := defaultPASTConfig()
		cfg.Caching = caching
		pc := mustPAST(n, seed, cfg, nil, sharded)
		ids := advPopulate(pc, files, "fc")
		viral := len(ids) - 1 // an unpopular file until the crowd arrives
		fcw := workload.NewFlashCrowd(seed+31, 1.2, len(ids), viral)
		ok, cached := 0, 0
		var hops metrics.Summary
		for l := 0; l < reqs; l++ {
			client := pc.Rand().Intn(n)
			lr := pc.lookup(client, ids[fcw.Draw()])
			if lr.Err == nil {
				ok++
				hops.Add(float64(lr.Hops))
				if lr.Cached {
					cached++
				}
			}
		}
		pushes, served, maxServed := 0, 0, 0
		for _, pn := range pc.PAST {
			st := pn.Stats()
			pushes += st.CachePushes
			served += st.LookupsServed
			if st.LookupsServed > maxServed {
				maxServed = st.LookupsServed
			}
		}
		tbl.AddRow(onOff(caching), reqs, frac(ok, reqs), fmt.Sprintf("%.2f", hops.Mean()),
			frac(cached, ok), pushes, frac(maxServed, served))
	}
	return Result{
		ID:         "E21",
		Title:      fmt.Sprintf("Flash crowd on one cold file (N=%d, %d requests, Zipf body s=1.2)", n, reqs),
		PaperClaim: "cached copies created along lookup paths absorb high demand for popular files and balance the query load",
		Table:      tbl,
		Notes: []string{
			"the viral file takes popularity rank 0; the rest of the request mix is unchanged Zipf traffic",
			"top-node share is the busiest node's fraction of all lookups served (replica + cache)",
		},
	}
}
