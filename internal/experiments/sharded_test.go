package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// render flattens a result into the bytes a report would show: table plus
// notes. Byte equality here is the acceptance bar for the sharded engine.
func render(r Result) string {
	var b strings.Builder
	b.WriteString(r.Table.String())
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestShardedDeterminismE4 asserts the tentpole guarantee end to end: a
// phase experiment (E4, replica proximity — inserts, lookups, replica
// ranking on one 256-node cluster) produces byte-identical tables at
// shards=1, 2 and 4 for a fixed seed. Run under -race in CI, this also
// proves the cross-shard handoff is properly synchronized.
func TestShardedDeterminismE4(t *testing.T) {
	defer func(old int) { Shards = old }(Shards)

	var base string
	for _, shards := range []int{1, 2, 4} {
		Shards = shards
		res, err := Run("E4", Small, 42)
		if err != nil {
			t.Fatalf("E4 at shards=%d: %v", shards, err)
		}
		got := render(res)
		if shards == 1 {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("E4 tables diverge between shards=1 and shards=%d:\n--- shards=1:\n%s\n--- shards=%d:\n%s",
				shards, base, shards, got)
		}
	}
}

// TestShardedDeterminismChurn asserts the churn experiments' acceptance
// bar: E15-E17 — mid-run joins, graceful leaves and silent crashes
// driven by the churn engine, plus anti-entropy replica maintenance —
// produce byte-identical tables at shards=1, 2 and 4 for a fixed seed.
// Run under -race in CI alongside TestChurnStorageInvariant.
func TestShardedDeterminismChurn(t *testing.T) {
	defer func(old int) { Shards = old }(Shards)

	for _, exp := range []string{"E15", "E16", "E17"} {
		t.Run(exp, func(t *testing.T) {
			var base string
			for _, shards := range []int{1, 2, 4} {
				Shards = shards
				res, err := Run(exp, Small, 42)
				if err != nil {
					t.Fatalf("%s at shards=%d: %v", exp, shards, err)
				}
				got := render(res)
				if shards == 1 {
					base = got
					continue
				}
				if got != base {
					t.Fatalf("%s tables diverge between shards=1 and shards=%d:\n--- shards=1:\n%s\n--- shards=%d:\n%s",
						exp, shards, base, shards, got)
				}
			}
		})
	}
}

// TestShardedDeterminismWorkerPool pins the persistent-worker scheduler:
// with the pool FORCED on (WindowWorkers = shards, even on a one-core
// host where the auto heuristic would run windows inline), E4, E9 and
// E15 tables must stay byte-identical at shards=1, 2 and 4 — and
// identical to the inline schedule. Run under -race in CI, this proves
// the phased barrier and the work-stealing shard claims are properly
// synchronized and that worker count never leaks into results.
func TestShardedDeterminismWorkerPool(t *testing.T) {
	defer func(oldS, oldW int) { Shards, WindowWorkers = oldS, oldW }(Shards, WindowWorkers)

	for _, exp := range []string{"E4", "E9", "E15"} {
		t.Run(exp, func(t *testing.T) {
			if exp == "E9" && testing.Short() {
				t.Skip("short mode")
			}
			var base string
			for _, shards := range []int{1, 2, 4} {
				Shards = shards
				// Force the pool (at shards=1 there is nothing to pool;
				// that run doubles as the inline reference schedule).
				WindowWorkers = shards
				res, err := Run(exp, Small, 42)
				if err != nil {
					t.Fatalf("%s at shards=%d: %v", exp, shards, err)
				}
				got := render(res)
				if shards == 1 {
					base = got
					continue
				}
				if got != base {
					t.Fatalf("%s tables diverge between shards=1 and pooled shards=%d:\n--- shards=1:\n%s\n--- shards=%d:\n%s",
						exp, shards, base, shards, got)
				}
			}
		})
	}
}

// TestAntiEntropySavesBandwidth pins E16's headline: at the same churn
// rate, digest-based anti-entropy moves strictly fewer maintenance bytes
// (and messages) than the legacy push-all baseline, while keeping as
// many files at full replication.
func TestAntiEntropySavesBandwidth(t *testing.T) {
	res, err := Run("E16", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("E16 rows = %d, want 2", len(res.Table.Rows))
	}
	parseKiB := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[2], "%f", &v); err != nil {
			t.Fatalf("bad maint KiB cell %q: %v", row[2], err)
		}
		return v
	}
	ae, legacy := parseKiB(res.Table.Rows[0]), parseKiB(res.Table.Rows[1])
	if ae <= 0 || legacy <= 0 {
		t.Fatalf("degenerate measurement: anti-entropy %.1f KiB, legacy %.1f KiB", ae, legacy)
	}
	if ae >= legacy {
		t.Fatalf("anti-entropy used %.1f KiB, not below legacy push-all's %.1f KiB", ae, legacy)
	}
	// The savings must not come from skipping repairs: both schemes must
	// end the run with the same number of fully replicated files.
	if aeHealthy, legacyHealthy := res.Table.Rows[0][6], res.Table.Rows[1][6]; aeHealthy != legacyHealthy {
		t.Fatalf("replication health diverges: anti-entropy %s vs legacy %s files >= k", aeHealthy, legacyHealthy)
	}
}

// TestShardedDeterminismE12 covers a second phase experiment shape — the
// quota walkthrough drives inserts, a reclaim and broker accounting
// through the sharded engine — at a different cluster size.
func TestShardedDeterminismE12(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	defer func(old int) { Shards = old }(Shards)

	var base string
	for _, shards := range []int{1, 3} {
		Shards = shards
		res, err := Run("E12", Small, 42)
		if err != nil {
			t.Fatalf("E12 at shards=%d: %v", shards, err)
		}
		got := render(res)
		if shards == 1 {
			base = got
		} else if got != base {
			t.Fatalf("E12 tables diverge between shards=1 and shards=%d:\n%s\nvs\n%s", shards, base, got)
		}
	}
}
