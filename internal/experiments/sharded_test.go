package experiments

import (
	"strings"
	"testing"
)

// render flattens a result into the bytes a report would show: table plus
// notes. Byte equality here is the acceptance bar for the sharded engine.
func render(r Result) string {
	var b strings.Builder
	b.WriteString(r.Table.String())
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestShardedDeterminismE4 asserts the tentpole guarantee end to end: a
// phase experiment (E4, replica proximity — inserts, lookups, replica
// ranking on one 256-node cluster) produces byte-identical tables at
// shards=1, 2 and 4 for a fixed seed. Run under -race in CI, this also
// proves the cross-shard handoff is properly synchronized.
func TestShardedDeterminismE4(t *testing.T) {
	defer func(old int) { Shards = old }(Shards)

	var base string
	for _, shards := range []int{1, 2, 4} {
		Shards = shards
		res, err := Run("E4", Small, 42)
		if err != nil {
			t.Fatalf("E4 at shards=%d: %v", shards, err)
		}
		got := render(res)
		if shards == 1 {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("E4 tables diverge between shards=1 and shards=%d:\n--- shards=1:\n%s\n--- shards=%d:\n%s",
				shards, base, shards, got)
		}
	}
}

// TestShardedDeterminismE12 covers a second phase experiment shape — the
// quota walkthrough drives inserts, a reclaim and broker accounting
// through the sharded engine — at a different cluster size.
func TestShardedDeterminismE12(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	defer func(old int) { Shards = old }(Shards)

	var base string
	for _, shards := range []int{1, 3} {
		Shards = shards
		res, err := Run("E12", Small, 42)
		if err != nil {
			t.Fatalf("E12 at shards=%d: %v", shards, err)
		}
		got := render(res)
		if shards == 1 {
			base = got
		} else if got != base {
			t.Fatalf("E12 tables diverge between shards=1 and shards=%d:\n%s\nvs\n%s", shards, base, got)
		}
	}
}
