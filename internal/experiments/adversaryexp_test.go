package experiments

import (
	"strconv"
	"testing"
)

// TestShardedDeterminismAdversary asserts the adversarial experiments'
// acceptance bar: E18-E21 — malicious-node fault injection, retrying
// lookups with scattered routes, a transit-domain outage with async
// joins, and a flash crowd — produce byte-identical tables at shards=1,
// 2 and 4 for a fixed seed. Adversarial decisions derive from (seed,
// node index) and per-endpoint streams only, so shard count must not
// leak into any cell. Run under -race in CI.
func TestShardedDeterminismAdversary(t *testing.T) {
	defer func(old int) { Shards = old }(Shards)

	for _, exp := range []string{"E18", "E19", "E20", "E21"} {
		t.Run(exp, func(t *testing.T) {
			var base string
			for _, shards := range []int{1, 2, 4} {
				Shards = shards
				res, err := Run(exp, Small, 42)
				if err != nil {
					t.Fatalf("%s at shards=%d: %v", exp, shards, err)
				}
				got := render(res)
				if shards == 1 {
					base = got
					continue
				}
				if got != base {
					t.Fatalf("%s tables diverge between shards=1 and shards=%d:\n--- shards=1:\n%s\n--- shards=%d:\n%s",
						exp, shards, base, shards, got)
				}
			}
		})
	}
}

// TestE18RetryAcceptance pins the E18 headline at the canonical
// scale/seed: with 30% of nodes silently dropping lookup traffic,
// retries with route diversity keep lookup success at or above 0.95,
// while the no-retry baseline is measurably degraded (at least ten
// points worse). A regression in the retry path, the scatter logic or
// the adversary hooks shows up here as a table change.
func TestE18RetryAcceptance(t *testing.T) {
	res, err := Run("E18", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Table.Rows {
		if row[0] != "dropper" || row[1] != "30%" {
			continue
		}
		found = true
		baseline, err1 := strconv.ParseFloat(row[2], 64)
		withRetry, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable success cells in row %v: %v %v", row, err1, err2)
		}
		if withRetry < 0.95 {
			t.Errorf("lookup success with retries at 30%% droppers = %.3f, want >= 0.95", withRetry)
		}
		if baseline > withRetry-0.10 {
			t.Errorf("no-retry baseline %.3f not measurably degraded vs %.3f with retries", baseline, withRetry)
		}
	}
	if !found {
		t.Fatalf("no dropper/30%% row in E18 table:\n%s", res.Table.String())
	}
}

// TestE19AuditContainment pins E19's containment mechanics: forgers
// never land a receipt (every forged one is identified and dropped, no
// cheat survives to be audited), free-riders are only caught by the
// audit (nonzero cheats flagged), and neither policy ever produces a
// false alarm against an honest holder.
func TestE19AuditContainment(t *testing.T) {
	res, err := Run("E19", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		policy, forged, flagged, alarms := row[0], row[3], row[5], row[6]
		if alarms != "0" {
			t.Errorf("%s %s: %s false alarms, audits must never flag honest holders", policy, row[1], alarms)
		}
		switch policy {
		case "forger":
			if forged == "0" {
				t.Errorf("forger %s: no forged receipts dropped; batch verification not engaging", row[1])
			}
		case "free-rider":
			if flagged == "0" {
				t.Errorf("free-rider %s: no cheats flagged by audit", row[1])
			}
			if forged != "0" {
				t.Errorf("free-rider %s: %s receipts dropped, but free-riders sign honestly", row[1], forged)
			}
		}
	}
}
