package experiments

import (
	"fmt"
	"strings"
	"testing"

	"past/internal/telemetry"
)

// TestTelemetryShardDeterminism extends the sharded-engine acceptance
// bar to the telemetry layer: the per-window series of a churn
// experiment (E15) and an adversarial one (E18) must be byte-identical
// in line protocol at shards=1, 2 and 4 — window barriers are the flush
// points, and the window schedule is a function of cross-shard minima
// only. Run under -race in CI, this also proves flush-time sampling
// races with nothing.
func TestTelemetryShardDeterminism(t *testing.T) {
	defer func(old int) { Shards = old }(Shards)
	defer func(old bool) { CollectSeries = old }(CollectSeries)
	CollectSeries = true

	for _, exp := range []string{"E15", "E18"} {
		t.Run(exp, func(t *testing.T) {
			var base string
			for _, shards := range []int{1, 2, 4} {
				Shards = shards
				res, err := Run(exp, Small, 42)
				if err != nil {
					t.Fatalf("%s at shards=%d: %v", exp, shards, err)
				}
				if res.SeriesLP == "" {
					t.Fatalf("%s at shards=%d: no series collected", exp, shards)
				}
				if shards == 1 {
					base = res.SeriesLP
					// The series must parse and cover the catalogue.
					pts, err := telemetry.ParseLP(strings.NewReader(base))
					if err != nil {
						t.Fatalf("series does not parse: %v", err)
					}
					seen := map[string]bool{}
					for _, p := range pts {
						seen[p.Name] = true
					}
					for _, want := range []string{"live_nodes", "net_events", "past", "lookups", "lookup_ok", "lookup_hops"} {
						if !seen[want] {
							t.Fatalf("%s series missing %q (have %v)", exp, want, seen)
						}
					}
					continue
				}
				if res.SeriesLP != base {
					t.Fatalf("%s series diverge between shards=1 and shards=%d:\n%s", exp, shards, firstDiff(base, res.SeriesLP))
				}
			}
		})
	}
}

// TestTelemetryOffByDefault pins that tables are unchanged by series
// collection: running with CollectSeries must not perturb the recorded
// output (instrumentation samples state, never drives the schedule or
// the cluster RNG).
func TestTelemetryOffByDefault(t *testing.T) {
	defer func(old bool) { CollectSeries = old }(CollectSeries)

	CollectSeries = false
	plain, err := Run("E20", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SeriesLP != "" {
		t.Fatal("series collected with CollectSeries off")
	}
	CollectSeries = true
	traced, err := Run("E20", Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if traced.SeriesLP == "" {
		t.Fatal("no series collected with CollectSeries on")
	}
	if render(plain) != render(traced) {
		t.Fatalf("collecting series changed the table:\n--- off:\n%s\n--- on:\n%s", render(plain), render(traced))
	}
}

// firstDiff renders the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  %s\n  vs:\n  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
}
