package experiments

import (
	"fmt"

	"past/internal/id"
	"past/internal/metrics"
	"past/internal/past"
	"past/internal/seccrypt"
	"past/internal/workload"
)

// defaultPASTConfig sizes PAST nodes for the storage experiments.
func defaultPASTConfig() past.Config {
	cfg := past.DefaultConfig()
	cfg.K = 3
	cfg.Capacity = 512 << 10 // 512 KiB per node at experiment scale
	cfg.RequestTimeout = 10_000_000_000
	return cfg
}

// experimentSizes scales the file-size distribution to the node capacity
// the way the SOSP'01 traces related to their node sizes: the mean file is
// ~1000x smaller than a node, and even the largest file is small relative
// to an empty node's t_pri acceptance bound (capacity/10). Without this
// scaling, files near the capacity would be rejected even by empty nodes
// and the utilization experiment would measure the workload, not the
// storage-management scheme.
func experimentSizes(seed int64, capacity int64) *workload.SizeDist {
	s := workload.DefaultSizes(seed)
	s.Mu = 8.0 // median ~3 KiB
	s.Sigma = 1.1
	s.TailProb = 0.01
	s.TailXm = float64(capacity) / 64
	s.Min = 256
	s.Max = capacity / 24
	return s
}

// storageRun drives inserts from the size distribution until the network
// saturates, recording outcomes per utilization band and per size bucket.
type storageRun struct {
	attempts  int
	accepts   int
	rejects   int
	diverted  int
	retried   int
	byUtil    []utilBand
	sizeBands []sizeBand
	finalUtil float64
}

type utilBand struct {
	lo, hi            float64
	attempts, rejects int
}

type sizeBand struct {
	lo, hi            int64
	attempts, rejects int
}

func newStorageRun() *storageRun {
	r := &storageRun{}
	for _, lo := range []float64{0, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		r.byUtil = append(r.byUtil, utilBand{lo: lo, hi: 2})
	}
	for i := range r.byUtil[:len(r.byUtil)-1] {
		r.byUtil[i].hi = r.byUtil[i+1].lo
	}
	for _, b := range []int64{0, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		r.sizeBands = append(r.sizeBands, sizeBand{lo: b, hi: 1 << 62})
	}
	for i := range r.sizeBands[:len(r.sizeBands)-1] {
		r.sizeBands[i].hi = r.sizeBands[i+1].lo
	}
	return r
}

func (r *storageRun) record(util float64, size int64, res past.InsertResult) {
	r.attempts++
	rejected := res.Err != nil
	if rejected {
		r.rejects++
	} else {
		r.accepts++
		r.diverted += res.Diverted
		if res.Retries > 0 {
			r.retried++
		}
	}
	for i := range r.byUtil {
		if util >= r.byUtil[i].lo && util < r.byUtil[i].hi {
			r.byUtil[i].attempts++
			if rejected {
				r.byUtil[i].rejects++
			}
			break
		}
	}
	for i := range r.sizeBands {
		if size >= r.sizeBands[i].lo && size < r.sizeBands[i].hi {
			r.sizeBands[i].attempts++
			if rejected {
				r.sizeBands[i].rejects++
			}
			break
		}
	}
}

// driveToSaturation inserts drawn files until `stopAfter` consecutive
// rejections or maxInserts attempts.
func driveToSaturation(pc *pastCluster, sizes *workload.SizeDist, k, maxInserts, stopAfter int) *storageRun {
	run := newStorageRun()
	consecutive := 0
	n := len(pc.PAST)
	for i := 0; i < maxInserts && consecutive < stopAfter; i++ {
		size := sizes.Draw()
		util := pc.globalUtilization()
		node := pc.Rand().Intn(n)
		res := pc.insert(node, pc.Cards[node], fmt.Sprintf("w-%d", i), make([]byte, size), k)
		run.record(util, size, res)
		if res.Err != nil {
			consecutive++
		} else {
			consecutive = 0
		}
	}
	run.finalUtil = pc.globalUtilization()
	return run
}

// E8Utilization reproduces the headline storage-management result quoted
// in section 2.3: global utilization beyond 95% while rejecting few
// inserts, using replica and file diversion.
func E8Utilization(scale Scale, seed int64) Result {
	n, maxInserts := 48, 3000
	if scale == Full {
		n, maxInserts = 500, 40000
	}
	cfg := defaultPASTConfig()
	caps := workload.DefaultCapacities(seed+3, cfg.Capacity)
	sizes := experimentSizes(seed+4, cfg.Capacity)
	pc := mustPAST(n, seed, cfg, func(int) int64 { return caps.Draw() }, sharded)
	run := driveToSaturation(pc, sizes, cfg.K, maxInserts, 15)

	tbl := &metrics.Table{Header: []string{"utilization band", "attempts", "rejects", "reject rate"}}
	for _, b := range run.byUtil {
		if b.attempts == 0 {
			continue
		}
		label := fmt.Sprintf("%.0f%%-%.0f%%", b.lo*100, min2(b.hi, 1)*100)
		tbl.AddRow(label, b.attempts, b.rejects, frac(b.rejects, b.attempts))
	}
	tbl.AddRow("TOTAL", run.attempts, run.rejects, frac(run.rejects, run.attempts))
	// The paper's <5% figure counts rejections over a fixed insertion
	// trace that ends near full utilization; our driver keeps inserting
	// until the network refuses 15 in a row, which inflates the total.
	// Report the comparable cumulative rate up to 90% utilization too.
	att90, rej90 := 0, 0
	for _, b := range run.byUtil {
		if b.hi <= 0.9001 {
			att90 += b.attempts
			rej90 += b.rejects
		}
	}
	tbl.AddRow("cumulative to 90%", att90, rej90, frac(rej90, att90))
	return Result{
		ID:         "E8",
		Title:      fmt.Sprintf("Storage utilization vs insert rejections (N=%d, t_pri=%.2f, t_div=%.2f)", n, cfg.TPri, cfg.TDiv),
		PaperClaim: ">95% global utilization with <5% of inserts rejected",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("final global utilization: %.1f%%", run.finalUtil*100),
			fmt.Sprintf("accepted inserts that needed file diversion (re-salt): %d", run.retried),
			fmt.Sprintf("replica-diverted receipts: %d", run.diverted),
		},
	}
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// E9RejectionBias reproduces the companion observation quoted in section
// 2.3: "failed insertions are heavily biased towards large files".
func E9RejectionBias(scale Scale, seed int64) Result {
	n, maxInserts := 48, 3000
	if scale == Full {
		n, maxInserts = 500, 40000
	}
	cfg := defaultPASTConfig()
	sizes := experimentSizes(seed+4, cfg.Capacity)
	pc := mustPAST(n, seed, cfg, nil, sharded)
	run := driveToSaturation(pc, sizes, cfg.K, maxInserts, 15)

	tbl := &metrics.Table{Header: []string{"file size", "attempts", "rejects", "reject rate"}}
	for _, b := range run.sizeBands {
		if b.attempts == 0 {
			continue
		}
		tbl.AddRow(fmt.Sprintf("%s-%s", byteLabel(b.lo), byteLabel(b.hi)),
			b.attempts, b.rejects, frac(b.rejects, b.attempts))
	}
	return Result{
		ID:         "E9",
		Title:      fmt.Sprintf("Insert rejection rate by file size at saturation (N=%d)", n),
		PaperClaim: "failed insertions are heavily biased towards large files",
		Table:      tbl,
	}
}

func byteLabel(b int64) string {
	switch {
	case b >= 1<<62:
		return "inf"
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// E10Caching reproduces the caching figure: caching along lookup/insert
// paths cuts client fetch distance and hop counts for popular files, with
// the benefit shrinking as utilization rises and cache space evaporates.
func E10Caching(scale Scale, seed int64) Result {
	n, files, lookups := 128, 60, 1500
	if scale == Full {
		n, files, lookups = 2000, 400, 20000
	}
	tbl := &metrics.Table{Header: []string{"caching", "fill", "hit rate", "avg hops", "avg distance (ms)"}}
	type config struct {
		caching bool
		fill    string
	}
	grid := []config{{true, "low"}, {true, "high"}, {false, "low"}, {false, "high"}}
	type point struct {
		hops, dist  metrics.Summary
		hits, total int
	}
	pts := make([]point, len(grid))
	forEachPoint(len(grid), func(i int) {
		caching, fill := grid[i].caching, grid[i].fill
		cfg := defaultPASTConfig()
		cfg.Caching = caching
		pc := mustPAST(n, seed, cfg, nil, nil)
		sizes := experimentSizes(seed+5, cfg.Capacity)
		// Insert the popular file population.
		var ids []pastInsert
		for f := 0; f < files; f++ {
			node := pc.Rand().Intn(n)
			res := pc.insert(node, pc.Cards[node], fmt.Sprintf("pop-%d", f), make([]byte, sizes.Draw()), cfg.K)
			if res.Err == nil {
				ids = append(ids, pastInsert{res.FileID, res.Cert.Size})
			}
		}
		if fill == "high" {
			// Consume most remaining capacity with filler files.
			driveToSaturation(pc, sizes, cfg.K, 20*n, 10)
		}
		z := workload.NewZipf(seed+6, 1.1, len(ids))
		for t := 0; t < lookups; t++ {
			f := ids[z.Draw()]
			lr := pc.lookup(pc.Rand().Intn(n), f.id)
			if lr.Err != nil {
				continue
			}
			pts[i].total++
			if lr.Cached {
				pts[i].hits++
			}
			pts[i].hops.Add(float64(lr.Hops))
			pts[i].dist.Add(lr.Distance)
		}
	})
	for i, g := range grid {
		tbl.AddRow(onOff(g.caching), g.fill, frac(pts[i].hits, pts[i].total), pts[i].hops.Mean(), pts[i].dist.Mean())
	}
	return Result{
		ID:         "E10",
		Title:      fmt.Sprintf("Effect of caching on fetch distance under Zipf(1.1) popularity (N=%d)", n),
		PaperClaim: "caching popular files near clients balances query load and cuts fetch distance; benefit fades near full utilization",
		Table:      tbl,
	}
}

type pastInsert struct {
	id   id.File
	size int64
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// E12Quota demonstrates the smartcard quota system of section 2.1: cards
// block over-quota inserts, reclaim receipts restore quota, and the
// broker's books balance supply against demand.
func E12Quota(scale Scale, seed int64) Result {
	n := 24
	if scale == Full {
		n = 64
	}
	cfg := defaultPASTConfig()
	pc := mustPAST(n, seed, cfg, nil, sharded)
	user, err := pc.Broker.IssueCard(100<<10, 0, 0, seccrypt.DetRand(uint64(seed)+99))
	if err != nil {
		panic(err)
	}
	tbl := &metrics.Table{Header: []string{"step", "outcome", "remaining quota"}}
	// 1: insert within quota: 20 KiB × 3 = 60 KiB.
	res1 := pc.insert(0, user, "a.bin", make([]byte, 20<<10), 3)
	tbl.AddRow("insert 20KiB k=3", errLabel(res1.Err), user.RemainingQuota())
	// 2: second insert would need 60 KiB > 40 KiB left: card refuses.
	res2 := pc.insert(0, user, "b.bin", make([]byte, 20<<10), 3)
	tbl.AddRow("insert 20KiB k=3 again", errLabel(res2.Err), user.RemainingQuota())
	// 3: reclaim the first file: quota restored.
	var rr *past.ReclaimResult
	pc.PAST[0].Reclaim(user, res1.FileID, func(r past.ReclaimResult) { rr = &r })
	pc.Net.RunUntil(func() bool { return rr != nil }, 20_000_000)
	tbl.AddRow("reclaim first file", errLabel(errOf(rr)), user.RemainingQuota())
	// 4: the insert now fits.
	res4 := pc.insert(0, user, "c.bin", make([]byte, 20<<10), 3)
	tbl.AddRow("insert 20KiB k=3 after reclaim", errLabel(res4.Err), user.RemainingQuota())
	demand, supply := pc.Broker.Balance()
	return Result{
		ID:         "E12",
		Title:      "Smartcard quota enforcement end to end",
		PaperClaim: "quotas debit size×k at insert, credit on reclaim receipts, and block over-quota use",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("broker books: demand=%d bytes across %d cards, supply=%d bytes", demand, pc.Broker.CardsIssued(), supply),
		},
	}
}

func errLabel(err error) string {
	if err == nil {
		return "ok"
	}
	return "refused"
}

func errOf(rr *past.ReclaimResult) error {
	if rr == nil {
		return past.ErrTimeout
	}
	return rr.Err
}

// A2DiversionAblation toggles the two storage-management mechanisms of
// section 2.3 to show each one's contribution to achievable utilization.
func A2DiversionAblation(scale Scale, seed int64) Result {
	n, maxInserts := 48, 2500
	if scale == Full {
		n, maxInserts = 300, 20000
	}
	tbl := &metrics.Table{Header: []string{"replica diversion", "file diversion", "final util", "reject rate"}}
	type config struct{ rd, fd bool }
	grid := []config{{false, false}, {false, true}, {true, false}, {true, true}}
	runs := make([]*storageRun, len(grid))
	forEachPoint(len(grid), func(i int) {
		cfg := defaultPASTConfig()
		cfg.ReplicaDiversion = grid[i].rd
		cfg.FileDiversion = grid[i].fd
		sizes := experimentSizes(seed+4, cfg.Capacity)
		pc := mustPAST(n, seed, cfg, nil, nil)
		runs[i] = driveToSaturation(pc, sizes, cfg.K, maxInserts, 15)
	})
	for i, g := range grid {
		tbl.AddRow(onOff(g.rd), onOff(g.fd),
			fmt.Sprintf("%.1f%%", runs[i].finalUtil*100), frac(runs[i].rejects, runs[i].attempts))
	}
	return Result{
		ID:         "A2",
		Title:      fmt.Sprintf("Ablation: replica and file diversion vs achievable utilization (N=%d)", n),
		PaperClaim: "both diversion mechanisms are needed to approach full utilization with few rejects",
		Table:      tbl,
	}
}
