package experiments

// Churn experiments E15-E17: the paper's "Persistence" claim (section
// 2.1) exercised under continuous membership change. All three are
// phase experiments on the sharded engine; the churn schedule itself
// comes from internal/churn, whose traces are a pure function of their
// seed, so tables stay byte-identical at any shard count.

import (
	"fmt"
	"strings"
	"time"

	"past/internal/churn"
	"past/internal/cluster"
	"past/internal/id"
	"past/internal/metrics"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/simnet"
)

// ChurnKnobs are the shared parameters of the churn experiments,
// exposed so cmd/pastsim can override them from the command line.
// Changing them changes the tables (they are part of the scenario, like
// the seed); the defaults are the canonical values the CI tables use.
type ChurnKnobs struct {
	// RateScale multiplies every experiment's arrival rates.
	RateScale float64
	// MedianSession is the median node session length (lognormal body).
	MedianSession time.Duration
	// CrashFrac is the fraction of departures that are silent crashes
	// rather than graceful leaves.
	CrashFrac float64
}

// ChurnDefaults is what CI and the recorded tables use.
func ChurnDefaults() ChurnKnobs {
	return ChurnKnobs{RateScale: 1, MedianSession: 15 * time.Second, CrashFrac: 0.5}
}

// Churn is the live knob set (see cmd/pastsim's -churn-* flags).
var Churn = ChurnDefaults()

// churnPASTConfig sizes PAST nodes for the churn experiments: small
// files, failure detection fast enough that a Small-scale horizon sees
// full repair cycles.
func churnPASTConfig() past.Config {
	cfg := defaultPASTConfig()
	cfg.Caching = false // measure replica maintenance, not caches
	cfg.RequestTimeout = 5 * time.Second
	return cfg
}

// churnPastryConfig enables the keep-alive failure detector the churn
// scenarios rely on.
func churnPastryConfig() pastry.Config {
	cfg := pastry.DefaultConfig()
	cfg.KeepAlive = 500 * time.Millisecond
	cfg.FailTimeout = 1500 * time.Millisecond
	return cfg
}

// churnPAST is a PAST cluster whose smartcards and storage nodes grow on
// demand so churn arrivals can join mid-run.
type churnPAST struct {
	*cluster.Cluster
	Broker *seccrypt.Broker
	cfg    past.Config
	seed   int64
	cards  []*seccrypt.Smartcard
	nodes  []*past.Node
}

func (cp *churnPAST) card(i int) *seccrypt.Smartcard {
	for len(cp.cards) <= i {
		j := len(cp.cards)
		c, err := cp.Broker.IssueCard(1<<50, cp.cfg.Capacity, 0, seccrypt.DetRand(uint64(cp.seed)<<20+uint64(j)+7))
		if err != nil {
			panic(err)
		}
		cp.cards = append(cp.cards, c)
	}
	return cp.cards[i]
}

// buildChurnPAST constructs an n-node PAST network ready for mid-run
// membership changes (growable cards/apps, probes installed).
func buildChurnPAST(n int, seed int64, cfg past.Config, mut ...func(*cluster.Options)) *churnPAST {
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(uint64(seed) + 1))
	if err != nil {
		panic(err)
	}
	cp := &churnPAST{Broker: broker, cfg: cfg, seed: seed}
	opts := cluster.Options{
		N:      n,
		Pastry: churnPastryConfig(),
		Seed:   seed,
		NodeID: func(i int) id.Node { return cp.card(i).NodeID() },
		AppFactory: func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App {
			for len(cp.nodes) <= i {
				cp.nodes = append(cp.nodes, nil)
			}
			cp.nodes[i] = past.NewNode(cfg, nd, cp.card(i), broker.PublicKey())
			return cp.nodes[i]
		},
	}
	sharded(&opts)
	for _, m := range mut {
		m(&opts)
	}
	c, err := cluster.Build(opts)
	if err != nil {
		panic(err)
	}
	c.EnableProbes()
	cp.Cluster = c
	return cp
}

func (cp *churnPAST) insert(node int, name string, data []byte) past.InsertResult {
	return syncInsert(cp.Cluster, cp.nodes[node], cp.card(node), name, data, cp.cfg.K)
}

func (cp *churnPAST) lookup(node int, f id.File) past.LookupResult {
	return syncLookup(cp.Cluster, cp.nodes[node], f)
}

// liveVerifiedCopies counts live nodes holding a content-verified copy.
func (cp *churnPAST) liveVerifiedCopies(f id.File) int {
	n := 0
	for i, pn := range cp.nodes {
		if pn == nil || cp.Down(i) {
			continue
		}
		it, err := pn.Store().Get(f)
		if err != nil {
			continue
		}
		if seccrypt.VerifyContent(&it.Cert, it.Data) == nil {
			n++
		}
	}
	return n
}

// churnTrace derives one experiment's trace from the shared knobs.
func churnTrace(seed int64, initial int, rate float64, session, horizon time.Duration) *churn.Trace {
	return churn.Generate(churn.Config{
		Seed:        seed,
		Initial:     initial,
		ArrivalRate: rate * Churn.RateScale,
		Session:     churn.LognormalSessions(session),
		CrashFrac:   Churn.CrashFrac,
		Horizon:     horizon,
		MinLive:     initial / 2,
	})
}

// E15ChurnAvailability measures lookup success and route quality while
// nodes continuously arrive, leave and crash — the operational face of
// the persistence claim: the storage invariant keeps files reachable
// through membership change.
func E15ChurnAvailability(scale Scale, seed int64) Result {
	n, files, horizon := 40, 24, 40*time.Second
	rates := []float64{0, 0.1, 0.25, 0.5} // arrivals per virtual second
	var tier []func(*cluster.Options)
	var notes []string
	switch scale {
	case Full:
		n, files, horizon = 200, 120, 150*time.Second
	case Large, Huge:
		// Huge reuses the Large churn sizing: the keep-alive failure
		// detector at 100k nodes would spend the whole run heartbeating
		// (100k nodes x 32 leaf members every keep-alive interval), which
		// measures the detector, not availability under churn.
		n, files, horizon = 20000, 60, 15*time.Second
		rates = []float64{0, 0.25}
		tier = append(tier, func(o *cluster.Options) {
			largeTier(o)
			// Slow the detector to keep the heartbeat load proportionate
			// to the shorter tier horizon.
			o.Pastry.KeepAlive = time.Second
			o.Pastry.FailTimeout = 3 * time.Second
		})
		if scale == Huge {
			notes = append(notes, "huge tier runs the large (20k) churn sizing: keep-alive heartbeat load dominates beyond it")
		}
	}
	cfg := churnPASTConfig()
	tbl := &metrics.Table{Header: []string{"arrivals/min", "arrived", "departed", "live at end", "lookups", "success", "avg hops"}}
	var events uint64
	var series strings.Builder
	for _, rate := range rates {
		cp := buildChurnPAST(n, seed, cfg, tier...)
		var ids []id.File
		for f := 0; len(ids) < files && f < 2*files; f++ {
			res := cp.insert(cp.Rand().Intn(n), fmt.Sprintf("a-%d", f), make([]byte, 1024))
			if res.Err == nil {
				ids = append(ids, res.FileID)
			}
		}
		// Telemetry attaches after population so the series opens on the
		// steady state; the churn dip then stands out per window.
		es := newExpSeries(cp.Cluster, func() []*past.Node { return cp.nodes }, &series,
			[2]string{"exp", "E15"}, [2]string{"rate", fmt.Sprintf("%.2f", rate)},
			[2]string{"scale", scale.String()})
		if scale == Small || scale == Full {
			// Replica health sweeps every live node's store per tracked
			// file — fine here, skipped on the 20k-node tiers.
			es.trackReplicas(healthCounter(&ids, cfg.K, cp.liveVerifiedCopies))
		}
		d := churn.NewDriver(cp.Cluster, churnTrace(seed+21, n, rate, Churn.MedianSession, horizon))
		d.MinLive = n / 2
		ok, total := 0, 0
		var hops metrics.Summary
		for tick := time.Second; tick <= horizon; tick += time.Second {
			d.Advance(tick)
			for l := 0; l < 2; l++ {
				f := ids[cp.Rand().Intn(len(ids))]
				t0 := es.now()
				lr := cp.lookup(cp.RandomLiveNode(), f)
				es.lookup(es.now()-t0, lr.Hops, lr.Err)
				total++
				if lr.Err == nil {
					ok++
					hops.Add(float64(lr.Hops))
				}
			}
		}
		es.finish()
		tbl.AddRow(fmt.Sprintf("%.0f", rate*Churn.RateScale*60),
			d.Stats.Arrivals, d.Stats.Leaves+d.Stats.Crashes, cp.LiveCount(),
			total, frac(ok, total), hops.Mean())
		events += cp.Net.Messages()
	}
	return Result{
		ID:         "E15",
		Title:      fmt.Sprintf("Lookup availability under continuous churn (N=%d, k=%d, median session %s)", n, cfg.K, Churn.MedianSession),
		PaperClaim: "the storage invariant is maintained as nodes join, leave and fail, so files stay reachable",
		Table:      tbl,
		Notes: append([]string{
			fmt.Sprintf("crash fraction %.0f%% of departures; departures floored at N/2 live", Churn.CrashFrac*100),
		}, notes...),
		Nodes:    n,
		Events:   events,
		SeriesLP: series.String(),
	}
}

// E16MaintenanceBandwidth compares the replica-maintenance cost of
// digest-based anti-entropy against the legacy push-all scheme over the
// same churn trace: same membership events, same files, two maintenance
// protocols.
func E16MaintenanceBandwidth(scale Scale, seed int64) Result {
	n, files, horizon := 40, 32, 30*time.Second
	rate := 0.25
	if scale == Full {
		n, files, horizon = 160, 150, 120*time.Second
	}
	tbl := &metrics.Table{Header: []string{"scheme", "maint msgs", "maint KiB", "bodies", "offers", "requests", "files >= k"}}
	for _, legacy := range []bool{false, true} {
		cfg := churnPASTConfig()
		cfg.LegacyPushReplication = legacy
		cp := buildChurnPAST(n, seed, cfg)
		var ids []id.File
		for f := 0; len(ids) < files && f < 2*files; f++ {
			res := cp.insert(cp.Rand().Intn(n), fmt.Sprintf("m-%d", f), make([]byte, 2048))
			if res.Err == nil {
				ids = append(ids, res.FileID)
			}
		}
		d := churn.NewDriver(cp.Cluster, churnTrace(seed+22, n, rate, Churn.MedianSession, horizon))
		d.MinLive = n / 2
		d.Advance(horizon)
		cp.RunSettle(10 * time.Second)
		var agg past.Stats
		for _, pn := range cp.nodes {
			if pn == nil {
				continue
			}
			st := pn.Stats()
			agg.MaintenanceMsgs += st.MaintenanceMsgs
			agg.MaintenanceBytes += st.MaintenanceBytes
			agg.Replications += st.Replications
			agg.SyncOffers += st.SyncOffers
			agg.SyncRequests += st.SyncRequests
		}
		healthy := 0
		for _, f := range ids {
			if cp.liveVerifiedCopies(f) >= cfg.K {
				healthy++
			}
		}
		scheme := "anti-entropy"
		if legacy {
			scheme = "push-all (legacy)"
		}
		tbl.AddRow(scheme, agg.MaintenanceMsgs, fmt.Sprintf("%.1f", float64(agg.MaintenanceBytes)/1024),
			agg.Replications, agg.SyncOffers, agg.SyncRequests,
			fmt.Sprintf("%d/%d", healthy, len(ids)))
	}
	return Result{
		ID:         "E16",
		Title:      fmt.Sprintf("Replica-maintenance bandwidth under churn: anti-entropy vs push-all (N=%d, %d files)", n, files),
		PaperClaim: "restoring the invariant needs only the missing copies; exchanging fileId digests first avoids re-shipping full bodies on every leaf-set change",
		Table:      tbl,
		Notes: []string{
			"same churn trace and file population for both schemes; bytes are modeled wire sizes (certificate + content + refs)",
		},
	}
}

// E17ReplicaDurability runs churn for a long simulated horizon and then
// audits every file's replica count: the distribution should concentrate
// at k, with losses only when all k holders departed within one repair
// interval.
func E17ReplicaDurability(scale Scale, seed int64) Result {
	n, files, horizon := 40, 32, 120*time.Second
	rate := 0.2
	if scale == Full {
		n, files, horizon = 160, 150, 600*time.Second
	}
	cfg := churnPASTConfig()
	cp := buildChurnPAST(n, seed, cfg)
	var ids []id.File
	for f := 0; len(ids) < files && f < 2*files; f++ {
		res := cp.insert(cp.Rand().Intn(n), fmt.Sprintf("d-%d", f), make([]byte, 1024))
		if res.Err == nil {
			ids = append(ids, res.FileID)
		}
	}
	// Durability is about the steady state, so sessions here are long
	// relative to the repair interval (real deployments are further still
	// in that direction); E15 stresses the fast-churn end of the spectrum.
	d := churn.NewDriver(cp.Cluster, churnTrace(seed+23, n, rate, 3*Churn.MedianSession, horizon))
	d.MinLive = n / 2
	d.Advance(horizon)
	cp.RunSettle(15 * time.Second)
	var h metrics.Hist
	atLeastK, lost := 0, 0
	for _, f := range ids {
		c := cp.liveVerifiedCopies(f)
		h.Add(c)
		if c >= cfg.K {
			atLeastK++
		}
		if c == 0 {
			lost++
		}
	}
	tbl := &metrics.Table{Header: []string{"live verified replicas", "files", "fraction"}}
	for v := 0; v <= h.MaxValue(); v++ {
		if h.Count(v) == 0 {
			continue
		}
		tbl.AddRow(v, h.Count(v), h.Frac(v))
	}
	tbl.AddRow(fmt.Sprintf(">= k (%d)", cfg.K), atLeastK, frac(atLeastK, len(ids)))
	return Result{
		ID:         "E17",
		Title:      fmt.Sprintf("Replica-count distribution after %s of churn (N=%d, k=%d)", horizon, n, cfg.K),
		PaperClaim: "the system maintains k copies of each file as part of continuous failure recovery",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("churn applied: %d arrivals, %d leaves, %d crashes (%d skipped at the N/2 floor); %d live nodes at end",
				d.Stats.Arrivals, d.Stats.Leaves, d.Stats.Crashes, d.Stats.Skipped, cp.LiveCount()),
			fmt.Sprintf("files lost outright: %d/%d", lost, len(ids)),
			fmt.Sprintf("mean live replicas per file: %.2f", h.Mean()),
		},
	}
}
