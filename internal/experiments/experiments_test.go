package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// runSmall executes an experiment at Small scale and does basic sanity
// checks on its output shape.
func runSmall(t *testing.T, idStr string) Result {
	t.Helper()
	res, err := Run(idStr, Small, 42)
	if err != nil {
		t.Fatalf("Run(%s): %v", idStr, err)
	}
	if res.ID != idStr {
		t.Fatalf("result id %q != %q", res.ID, idStr)
	}
	if len(res.Table.Rows) == 0 {
		t.Fatalf("%s produced no rows", idStr)
	}
	if res.Title == "" || res.PaperClaim == "" {
		t.Fatalf("%s missing title or claim", idStr)
	}
	return res
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", Small, 1); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 23 {
		t.Fatalf("expected 23 experiments, have %d: %v", len(ids), ids)
	}
	seen := map[string]bool{}
	for _, i := range ids {
		if seen[i] {
			t.Fatalf("duplicate id %s", i)
		}
		seen[i] = true
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE1HopsLogarithmic(t *testing.T) {
	res := runSmall(t, "E1")
	// Every row: avg hops < bound + 0.5 and all messages delivered.
	for _, row := range res.Table.Rows {
		bound := parseF(t, row[1])
		avg := parseF(t, row[2])
		if avg > bound+0.5 {
			t.Errorf("N=%s: avg hops %.2f above bound %.0f", row[0], avg, bound)
		}
		parts := strings.Split(row[5], "/")
		if parts[0] != parts[1] {
			t.Errorf("N=%s: losses %s", row[0], row[5])
		}
	}
}

func TestE2DistributionSumsToOne(t *testing.T) {
	res := runSmall(t, "E2")
	sum := 0.0
	for _, row := range res.Table.Rows {
		sum += parseF(t, row[1])
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("PMF sums to %f", sum)
	}
}

func TestE3LocalityRatioSane(t *testing.T) {
	res := runSmall(t, "E3")
	var ratio float64
	for _, row := range res.Table.Rows {
		if row[0] == "aggregate ratio" {
			ratio = parseF(t, row[1])
		}
	}
	// The paper reports ~1.5; accept a generous band but insist the
	// locality heuristic keeps it far below the random-routing regime.
	if ratio < 1.0 || ratio > 4.0 {
		t.Fatalf("aggregate route/direct ratio %.2f implausible", ratio)
	}
}

func TestE4ReplicaProximityShape(t *testing.T) {
	res := runSmall(t, "E4")
	nearest := parseF(t, res.Table.Rows[0][1])
	top2 := parseF(t, res.Table.Rows[1][1])
	if top2 < nearest {
		t.Fatalf("top2 %.2f < nearest %.2f", top2, nearest)
	}
	if nearest < 0.4 {
		t.Fatalf("nearest-replica rate %.2f too low: locality heuristic broken", nearest)
	}
	if top2 < 0.6 {
		t.Fatalf("top-2 rate %.2f too low", top2)
	}
}

func TestE5FailureRecovery(t *testing.T) {
	res := runSmall(t, "E5")
	rows := res.Table.Rows
	frac := func(cell string) float64 {
		parts := strings.Split(cell, "/")
		return parseF(t, parts[0]) / parseF(t, parts[1])
	}
	if frac(rows[0][1]) != 1.0 {
		t.Fatalf("baseline lost messages: %s", rows[0][1])
	}
	if frac(rows[1][1]) >= 1.0 {
		t.Fatalf("killing 10%% without detection should lose some routes")
	}
	if frac(rows[2][1]) != 1.0 || frac(rows[3][1]) != 1.0 {
		t.Fatalf("failure detection should restore delivery: %s / %s", rows[2][1], rows[3][1])
	}
}

func TestE6StateBounded(t *testing.T) {
	res := runSmall(t, "E6")
	for _, row := range res.Table.Rows {
		rt := parseF(t, row[1])
		formula := parseF(t, row[4])
		if rt > formula {
			t.Errorf("N=%s: measured RT %.1f above formula %.0f", row[0], rt, formula)
		}
	}
}

func TestE7JoinCostGrowsSlowly(t *testing.T) {
	res := runSmall(t, "E7")
	first := parseF(t, res.Table.Rows[0][1])
	last := parseF(t, res.Table.Rows[len(res.Table.Rows)-1][1])
	if last > first*8 {
		t.Fatalf("join cost grew %f -> %f over 16x nodes: not logarithmic", first, last)
	}
}

func TestE8UtilizationHigh(t *testing.T) {
	res := runSmall(t, "E8")
	// The final-utilization note must report a high number.
	var util float64
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "final global utilization:") {
			util = parseF(t, strings.TrimSuffix(strings.Fields(n)[3], "%"))
		}
	}
	if util < 70 {
		t.Fatalf("final utilization %.1f%% far below the paper's >95%%", util)
	}
	t.Logf("final utilization %.1f%%", util)
	// Early bands must have near-zero rejection.
	firstBand := res.Table.Rows[0]
	if parseF(t, firstBand[3]) > 0.05 {
		t.Fatalf("rejections at low utilization: %s", firstBand[3])
	}
}

func TestE9LargeFilesRejectedMore(t *testing.T) {
	res := runSmall(t, "E9")
	rows := res.Table.Rows
	if len(rows) < 2 {
		t.Fatal("need at least two size bands")
	}
	small := parseF(t, rows[0][3])
	large := parseF(t, rows[len(rows)-1][3])
	if large < small {
		t.Fatalf("rejection not biased to large files: small %.3f, large %.3f", small, large)
	}
}

func TestE10CachingHelps(t *testing.T) {
	res := runSmall(t, "E10")
	// Row order: on/low, on/high, off/low, off/high.
	var onLowHops, offLowHops, onLowHit float64
	for _, row := range res.Table.Rows {
		if row[0] == "on" && row[1] == "low" {
			onLowHit = parseF(t, row[2])
			onLowHops = parseF(t, row[3])
		}
		if row[0] == "off" && row[1] == "low" {
			offLowHops = parseF(t, row[3])
		}
	}
	if onLowHit == 0 {
		t.Fatal("caching produced zero hits")
	}
	if onLowHops >= offLowHops {
		t.Fatalf("caching did not reduce hops: on=%.2f off=%.2f", onLowHops, offLowHops)
	}
}

func TestE11RandomizedBeatsDeterministic(t *testing.T) {
	res := runSmall(t, "E11")
	// For each malicious fraction, randomized <=8 tries must beat
	// deterministic <=8 tries.
	byFrac := map[string]map[string]float64{}
	for _, row := range res.Table.Rows {
		if byFrac[row[0]] == nil {
			byFrac[row[0]] = map[string]float64{}
		}
		byFrac[row[0]][row[1]] = parseF(t, row[4])
	}
	for f, m := range byFrac {
		if m["randomized"] < m["deterministic"] {
			t.Errorf("at %s malicious, randomized %.2f < deterministic %.2f", f, m["randomized"], m["deterministic"])
		}
	}
}

func TestE12QuotaSteps(t *testing.T) {
	res := runSmall(t, "E12")
	rows := res.Table.Rows
	if rows[0][1] != "ok" {
		t.Fatal("in-quota insert refused")
	}
	if rows[1][1] != "refused" {
		t.Fatal("over-quota insert allowed")
	}
	if rows[3][1] != "ok" {
		t.Fatal("post-reclaim insert refused")
	}
}

func TestE13PastryBeatsChordOnDistance(t *testing.T) {
	res := runSmall(t, "E13")
	var pRatio, cRatio float64
	for _, row := range res.Table.Rows {
		if row[0] == "Pastry" {
			pRatio = parseF(t, row[2])
		}
		if row[0] == "Chord" {
			cRatio = parseF(t, row[2])
		}
	}
	if pRatio >= cRatio {
		t.Fatalf("Pastry ratio %.2f not better than Chord %.2f", pRatio, cRatio)
	}
}

func TestA1MoreBitsFewerHops(t *testing.T) {
	res := runSmall(t, "A1")
	// Compare b=2,l=32 vs b=4,l=32: higher b must not route worse.
	var hopsB2, hopsB4 float64
	for _, row := range res.Table.Rows {
		if row[0] == "2" && row[1] == "32" {
			hopsB2 = parseF(t, row[2])
		}
		if row[0] == "4" && row[1] == "32" {
			hopsB4 = parseF(t, row[2])
		}
	}
	if hopsB4 > hopsB2 {
		t.Fatalf("b=4 routed worse than b=2: %.2f vs %.2f", hopsB4, hopsB2)
	}
}

func TestA2DiversionImprovesUtilization(t *testing.T) {
	res := runSmall(t, "A2")
	var none, both float64
	for _, row := range res.Table.Rows {
		util := parseF(t, strings.TrimSuffix(row[2], "%"))
		if row[0] == "off" && row[1] == "off" {
			none = util
		}
		if row[0] == "on" && row[1] == "on" {
			both = util
		}
	}
	if both < none {
		t.Fatalf("diversion hurt utilization: none=%.1f both=%.1f", none, both)
	}
}

func TestE14DiversityNearIdeal(t *testing.T) {
	res := runSmall(t, "E14")
	distinctStubs := parseF(t, res.Table.Rows[0][1])
	// k=5 replicas should span nearly 5 distinct stub domains; heavy
	// clustering would indicate nodeIds correlate with topology.
	if distinctStubs < 4.0 {
		t.Fatalf("replica sets span only %.2f distinct stubs", distinctStubs)
	}
}
