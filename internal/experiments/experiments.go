// Package experiments reproduces every quantitative claim of the PAST
// paper (and the companion-paper results it quotes) as runnable
// experiments. Each experiment builds a simulated network through
// package cluster, drives a workload, and returns a table shaped like the
// corresponding figure or table in the paper. cmd/pastsim prints them;
// the repository-root benchmarks run them at reduced scale.
//
// See ARCHITECTURE.md for the experiment index and the paper-to-code
// mapping.
package experiments

import (
	"fmt"

	"past/internal/cluster"
	"past/internal/id"
	"past/internal/metrics"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/simnet"
)

// Scale selects experiment sizing.
type Scale int

// Scales: Small finishes in seconds (CI, benchmarks); Full approaches the
// paper's network sizes and runs for minutes. Large (20k nodes) and Huge
// (100k nodes) reach the paper's "many thousands of nodes" regime via
// bulk analytic construction (cluster.Options.Analytic) and compact
// per-node randomness; only E1, E4, and E15 implement them — other
// experiments fall back to their Small sizing (they switch on the scales
// they know).
const (
	Small Scale = iota
	Full
	Large
	Huge
)

// String names the scale the way the CLI flags spell it.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Full:
		return "full"
	case Large:
		return "large"
	case Huge:
		return "huge"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// ParseScale converts a CLI spelling to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	case "large":
		return Large, nil
	case "huge":
		return Huge, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (small, full, large, huge)", s)
}

// Result is one reproduced table/figure.
type Result struct {
	ID         string
	Title      string
	PaperClaim string
	Table      *metrics.Table
	Notes      []string
	// Nodes and Events, when nonzero, report the largest network built
	// and the total simulated messages delivered, so benchmark tooling
	// (cmd/pastbench) can derive events/sec and bytes-per-node without
	// parsing tables. They do not appear in String() output.
	Nodes  int
	Events uint64
	// SeriesLP holds the experiment's per-window telemetry in line
	// protocol when CollectSeries is on (experiments that instrument
	// series: E15, E18, E20). Not part of String() output; pastsim and
	// pastbench persist it via -series.
	SeriesLP string
}

// String renders the result for terminal output.
func (r Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\npaper: %s\n\n%s", r.ID, r.Title, r.PaperClaim, r.Table.String())
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Runner executes one experiment.
type Runner func(scale Scale, seed int64) Result

// Registry maps experiment ids to runners, in presentation order.
var registry = []struct {
	id  string
	run Runner
}{
	{"E1", E1RoutingHops},
	{"E2", E2HopDistribution},
	{"E3", E3Locality},
	{"E4", E4ReplicaProximity},
	{"E5", E5FailureRouting},
	{"E6", E6TableSize},
	{"E7", E7JoinCost},
	{"E8", E8Utilization},
	{"E9", E9RejectionBias},
	{"E10", E10Caching},
	{"E11", E11MaliciousRouting},
	{"E12", E12Quota},
	{"E13", E13ChordComparison},
	{"E14", E14ReplicaDiversity},
	{"E15", E15ChurnAvailability},
	{"E16", E16MaintenanceBandwidth},
	{"E17", E17ReplicaDurability},
	{"E18", E18AdversarialLookups},
	{"E19", E19ReceiptContainment},
	{"E20", E20RegionalOutage},
	{"E21", E21FlashCrowd},
	{"A1", A1ParameterAblation},
	{"A2", A2DiversionAblation},
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Run executes the experiment with the given id.
func Run(idStr string, scale Scale, seed int64) (Result, error) {
	for _, e := range registry {
		if e.id == idStr {
			return e.run(scale, seed), nil
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", idStr, IDs())
}

// ---------------------------------------------------------------------------
// Shared harness helpers

// routingCluster builds an N-node overlay with recorder apps.
func routingCluster(n int, seed int64, mut func(*cluster.Options)) (*cluster.Cluster, []*cluster.Recorder, error) {
	factory, recs := cluster.RecorderFactory(n)
	opts := cluster.Options{
		N:          n,
		Pastry:     pastry.DefaultConfig(),
		Seed:       seed,
		AppFactory: factory,
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := cluster.Build(opts)
	return c, recs, err
}

// mustRoutingCluster panics on build failure (experiments are programs,
// not servers; a failed build is a bug).
func mustRoutingCluster(n int, seed int64, mut func(*cluster.Options)) (*cluster.Cluster, []*cluster.Recorder) {
	c, recs, err := routingCluster(n, seed, mut)
	if err != nil {
		panic(err)
	}
	return c, recs
}

// probeRoute sends one probe and waits for delivery; returns ok=false on
// loss.
func probeRoute(c *cluster.Cluster, recs []*cluster.Recorder, from int, key id.Node, seq uint64) (cluster.Delivery, bool) {
	var got *cluster.Delivery
	for _, r := range recs {
		if r == nil {
			continue
		}
		r.OnDeliver = func(d cluster.Delivery) {
			if p, ok := d.Routed.Payload.(cluster.ProbeMsg); ok && p.Seq == seq {
				got = &d
			}
		}
	}
	c.Nodes[from].Route(key, cluster.ProbeMsg{Seq: seq})
	c.Net.RunUntil(func() bool { return got != nil }, 10_000_000)
	for _, r := range recs {
		if r != nil {
			r.OnDeliver = nil
		}
	}
	if got == nil {
		return cluster.Delivery{}, false
	}
	return *got, true
}

// largeTier configures a bulk-constructed tier cluster: analytic ring
// seeding instead of protocol joins, compact per-node randomness, and the
// sharded engine. Only the Large/Huge tiers use it — their output is new,
// so the stream changes CompactRand implies are admissible there and
// nowhere else.
func largeTier(o *cluster.Options) {
	o.Analytic = true
	o.Pastry.CompactRand = true
	sharded(o)
}

// probeRouteTo sends one probe whose correct destination is already known
// from the oracle, arming only that node's recorder. probeRoute arms all
// n recorders per probe, which is fine at experiment scales up to a few
// thousand nodes but dominates wall clock at 100k.
func probeRouteTo(c *cluster.Cluster, recs []*cluster.Recorder, from, dest int, key id.Node, seq uint64) (cluster.Delivery, bool) {
	var got *cluster.Delivery
	recs[dest].OnDeliver = func(d cluster.Delivery) {
		if p, ok := d.Routed.Payload.(cluster.ProbeMsg); ok && p.Seq == seq {
			got = &d
		}
	}
	c.Nodes[from].Route(key, cluster.ProbeMsg{Seq: seq})
	c.Net.RunUntil(func() bool { return got != nil }, 10_000_000)
	recs[dest].OnDeliver = nil
	if got == nil {
		return cluster.Delivery{}, false
	}
	return *got, true
}

// pastCluster bundles PAST nodes with their smartcards.
type pastCluster struct {
	*cluster.Cluster
	Broker *seccrypt.Broker
	Cards  []*seccrypt.Smartcard
	PAST   []*past.Node
}

// buildPAST constructs a PAST network. capacities may be nil (uniform
// cfg.Capacity) or provide per-node capacities.
func buildPAST(n int, seed int64, cfg past.Config, capacities func(i int) int64, mut func(*cluster.Options)) (*pastCluster, error) {
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(uint64(seed) + 1))
	if err != nil {
		return nil, err
	}
	cards := make([]*seccrypt.Smartcard, n)
	caps := make([]int64, n)
	for i := range cards {
		caps[i] = cfg.Capacity
		if capacities != nil {
			caps[i] = capacities(i)
		}
		cards[i], err = broker.IssueCard(1<<50, caps[i], 0, seccrypt.DetRand(uint64(seed)<<20+uint64(i)+7))
		if err != nil {
			return nil, err
		}
	}
	pnodes := make([]*past.Node, n)
	opts := cluster.Options{
		N:      n,
		Pastry: pastry.DefaultConfig(),
		Seed:   seed,
		NodeID: func(i int) id.Node { return cards[i].NodeID() },
		AppFactory: func(i int, nd *pastry.Node, ep *simnet.Endpoint) pastry.App {
			nodeCfg := cfg
			nodeCfg.Capacity = caps[i]
			pnodes[i] = past.NewNode(nodeCfg, nd, cards[i], broker.PublicKey())
			return pnodes[i]
		},
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := cluster.Build(opts)
	if err != nil {
		return nil, err
	}
	return &pastCluster{Cluster: c, Broker: broker, Cards: cards, PAST: pnodes}, nil
}

func mustPAST(n int, seed int64, cfg past.Config, capacities func(i int) int64, mut func(*cluster.Options)) *pastCluster {
	pc, err := buildPAST(n, seed, cfg, capacities, mut)
	if err != nil {
		panic(err)
	}
	return pc
}

// syncInsert drives one insert on pn to completion (shared by the static
// and churn harnesses).
func syncInsert(c *cluster.Cluster, pn *past.Node, card *seccrypt.Smartcard, name string, data []byte, k int) past.InsertResult {
	var res *past.InsertResult
	pn.Insert(card, name, data, k, func(r past.InsertResult) { res = &r })
	c.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil {
		return past.InsertResult{Err: past.ErrTimeout}
	}
	return *res
}

// syncLookup drives one lookup on pn to completion.
func syncLookup(c *cluster.Cluster, pn *past.Node, f id.File) past.LookupResult {
	var res *past.LookupResult
	pn.Lookup(f, func(r past.LookupResult) { res = &r })
	c.Net.RunUntil(func() bool { return res != nil }, 50_000_000)
	if res == nil {
		return past.LookupResult{Err: past.ErrTimeout}
	}
	return *res
}

// insert runs one synchronous insert.
func (pc *pastCluster) insert(node int, card *seccrypt.Smartcard, name string, data []byte, k int) past.InsertResult {
	return syncInsert(pc.Cluster, pc.PAST[node], card, name, data, k)
}

// lookup runs one synchronous lookup.
func (pc *pastCluster) lookup(node int, f id.File) past.LookupResult {
	return syncLookup(pc.Cluster, pc.PAST[node], f)
}

// globalUtilization sums used/capacity over live nodes.
func (pc *pastCluster) globalUtilization() float64 {
	var used, capTotal int64
	for i, pn := range pc.PAST {
		if pc.Down(i) {
			continue
		}
		used += pn.Store().Used()
		capTotal += pn.Store().Capacity()
	}
	if capTotal == 0 {
		return 0
	}
	return float64(used) / float64(capTotal)
}
