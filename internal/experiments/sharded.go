package experiments

// Sharded execution of the single-cluster "phase" experiments.
//
// The grid experiments (E1/E6/E7/E10/E11/A1/A2) parallelize across data
// points (see parallel.go). The phase experiments — E2-E5, E8, E9,
// E12-E17 — drive ONE long-lived cluster through sequential phases, so
// the only way to use more than one core is to parallelize inside the
// simulation. They run on simnet's sharded conservative-window engine:
// the cluster's nodes are partitioned by transit domain and each window
// advances all shards concurrently to a common virtual-time horizon.
//
// Because the sharded engine's event ordering, tiebreaks and randomness
// are derived per endpoint (never from cross-shard scheduling), a phase
// experiment's tables are byte-identical for any shard count >= 1 at a
// fixed seed; sharded_test.go asserts this at shards=1,2,4. Shards
// therefore only selects parallelism, and defaults to the core count.

import (
	"runtime"

	"past/internal/cluster"
)

// Shards is the shard count the phase experiments request from the
// simulator. Results are byte-identical for any value >= 1; cmd/pastsim
// exposes it as -shards, and the determinism test sweeps it.
var Shards = runtime.GOMAXPROCS(0)

// WindowWorkers overrides the sharded engine's persistent worker pool
// size (cluster.Options.WindowWorkers). Zero — the default — sizes the
// pool automatically from GOMAXPROCS; the worker-pool determinism test
// forces it above 1 so the phased barrier is exercised even on a
// single-core host. Results are byte-identical for any value.
var WindowWorkers = 0

// sharded is a cluster.Options mutator wiring the package-level shard
// count into a phase experiment's cluster build.
func sharded(o *cluster.Options) {
	o.Shards = max(1, Shards)
	o.WindowWorkers = WindowWorkers
}
