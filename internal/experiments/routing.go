package experiments

import (
	"fmt"
	"math"

	"past/internal/chord"
	"past/internal/cluster"
	"past/internal/id"
	"past/internal/metrics"
	"past/internal/pastry"
	"past/internal/simnet"
	"past/internal/wire"
	"past/internal/workload"
)

// E1RoutingHops reproduces the hop-count scaling figure: the average
// number of overlay hops stays below ceil(log_2b N) as the network grows
// (paper section 2: "less than ceil(log16 N) steps on average").
func E1RoutingHops(scale Scale, seed int64) Result {
	sizes := []int{64, 256, 1024}
	trials := 500
	switch scale {
	case Full:
		sizes = []int{256, 1024, 4096, 16384, 32768}
		trials = 2000
	case Large:
		sizes = []int{4096, 20000}
		trials = 1000
	case Huge:
		sizes = []int{100000}
		trials = 1000
	}
	tbl := &metrics.Table{Header: []string{"N", "ceil(log16 N)", "avg hops", "p95 hops", "max hops", "delivered"}}
	type point struct {
		hops      metrics.Summary
		delivered int
		events    uint64
	}
	pts := make([]point, len(sizes))
	forEachPoint(len(sizes), func(i int) {
		n := sizes[i]
		if scale >= Large {
			// Bulk-constructed network, million-user workload: each probe
			// is a logical client folded onto its entry node, and only the
			// oracle-known destination's recorder is armed (arming all
			// 100k is the dominant cost otherwise).
			c, recs := mustRoutingCluster(n, seed, largeTier)
			mux := workload.NewClientMux(int64(n)*50, seed)
			for t := 0; t < trials; t++ {
				client := mux.Client(uint64(t))
				from := mux.EntryNode(client, n)
				key := mux.Key(client, uint64(t))
				dest := c.IndexByID(c.NumericallyClosest(key).ID)
				d, ok := probeRouteTo(c, recs, from, dest, key, uint64(t))
				if !ok {
					continue
				}
				pts[i].delivered++
				pts[i].hops.Add(float64(d.Routed.Hops))
			}
			pts[i].events = c.Net.Messages()
			return
		}
		c, recs := mustRoutingCluster(n, seed, nil)
		for t := 0; t < trials; t++ {
			key := id.Rand(uint64(seed)<<32 + uint64(t))
			d, ok := probeRoute(c, recs, c.RandomLiveNode(), key, uint64(t))
			if !ok {
				continue
			}
			pts[i].delivered++
			pts[i].hops.Add(float64(d.Routed.Hops))
		}
		pts[i].events = c.Net.Messages()
	})
	var events uint64
	for i, n := range sizes {
		bound := int(math.Ceil(math.Log(float64(n)) / math.Log(16)))
		tbl.AddRow(n, bound, pts[i].hops.Mean(), pts[i].hops.Percentile(95), pts[i].hops.Max(),
			fmt.Sprintf("%d/%d", pts[i].delivered, trials))
		events += pts[i].events
	}
	return Result{
		ID:         "E1",
		Title:      "Average routing hops vs network size (b=4, l=32)",
		PaperClaim: "routes complete in < ceil(log16 N) hops on average",
		Table:      tbl,
		Nodes:      sizes[len(sizes)-1],
		Events:     events,
	}
}

// E2HopDistribution reproduces the hop-count probability distribution
// figure: the mass concentrates at floor/ceil(log16 N).
func E2HopDistribution(scale Scale, seed int64) Result {
	n, trials := 1024, 2000
	if scale == Full {
		n, trials = 10000, 10000
	}
	c, recs := mustRoutingCluster(n, seed, sharded)
	var h metrics.Hist
	for t := 0; t < trials; t++ {
		key := id.Rand(uint64(seed)<<32 + uint64(t))
		if d, ok := probeRoute(c, recs, c.RandomLiveNode(), key, uint64(t)); ok {
			h.Add(d.Routed.Hops)
		}
	}
	tbl := &metrics.Table{Header: []string{"hops", "probability"}}
	for v := 0; v <= h.MaxValue(); v++ {
		tbl.AddRow(v, h.Frac(v))
	}
	return Result{
		ID:         "E2",
		Title:      fmt.Sprintf("Distribution of per-lookup hop counts (N=%d)", n),
		PaperClaim: "hop counts concentrate at ~log16 N with small variance",
		Table:      tbl,
		Notes:      []string{fmt.Sprintf("mean %.2f, log16(N) = %.2f", h.Mean(), math.Log(float64(n))/math.Log(16))},
	}
}

// E3Locality reproduces the route-distance figure: the proximity-metric
// distance travelled by a Pastry route is a small constant factor above
// the direct source-destination distance (paper section 2.2, "Locality":
// "only 50% higher than the corresponding distance ... in the underlying
// network").
func E3Locality(scale Scale, seed int64) Result {
	n, trials := 512, 400
	if scale == Full {
		n, trials = 5000, 2000
	}
	c, recs := mustRoutingCluster(n, seed, sharded)
	var ratios, routeD, directD metrics.Summary
	for t := 0; t < trials; t++ {
		key := id.Rand(uint64(seed)<<32 + uint64(t))
		from := c.RandomLiveNode()
		d, ok := probeRoute(c, recs, from, key, uint64(t))
		if !ok || d.Routed.Hops == 0 {
			continue
		}
		direct := c.Topo.Distance(from, d.NodeIndex)
		if direct <= 0 {
			continue
		}
		ratios.Add(d.Routed.Distance / direct)
		routeD.Add(d.Routed.Distance)
		directD.Add(direct)
	}
	tbl := &metrics.Table{Header: []string{"metric", "value"}}
	tbl.AddRow("mean route distance (ms)", routeD.Mean())
	tbl.AddRow("mean direct distance (ms)", directD.Mean())
	tbl.AddRow("mean ratio (per route)", ratios.Mean())
	tbl.AddRow("aggregate ratio", routeD.Mean()/directD.Mean())
	tbl.AddRow("p50 ratio", ratios.Percentile(50))
	tbl.AddRow("p95 ratio", ratios.Percentile(95))
	return Result{
		ID:         "E3",
		Title:      fmt.Sprintf("Route distance vs direct network distance (N=%d)", n),
		PaperClaim: "route distance ≈ 1.5× the direct source-destination distance",
		Table:      tbl,
	}
}

// E4ReplicaProximity reproduces the replica-locality claim of section 2.2:
// with k=5 replicas, lookups find the proximally nearest replica ~76% of
// the time and one of the two nearest ~92%.
func E4ReplicaProximity(scale Scale, seed int64) Result {
	n, files, lookups := 256, 40, 300
	mut := sharded
	switch scale {
	case Full:
		n, files, lookups = 5000, 200, 2000
	case Large:
		n, files, lookups, mut = 20000, 40, 400, largeTier
	case Huge:
		n, files, lookups, mut = 100000, 40, 400, largeTier
	}
	cfg := defaultPASTConfig()
	cfg.K = 5
	cfg.Caching = false // measure pure replica selection, not caches
	pc := mustPAST(n, seed, cfg, nil, mut)
	var mux *workload.ClientMux
	if scale >= Large {
		mux = workload.NewClientMux(int64(n)*50, seed)
	}
	type stored struct {
		f       id.File
		holders []int
	}
	var pop []stored
	for i := 0; i < files; i++ {
		res := pc.insert(pc.Rand().Intn(n), pc.Cards[0], fmt.Sprintf("file-%d", i), make([]byte, 1024), 5)
		if res.Err != nil {
			continue
		}
		var holders []int
		for j, pn := range pc.PAST {
			if pn.Store().Has(res.FileID) {
				holders = append(holders, j)
			}
		}
		if len(holders) == 5 {
			pop = append(pop, stored{res.FileID, holders})
		}
	}
	nearest, top2, total := 0, 0, 0
	for t := 0; t < lookups && len(pop) > 0; t++ {
		s := pop[t%len(pop)]
		client := pc.Rand().Intn(n)
		if mux != nil {
			// Tiered runs draw the requester from the logical client
			// population folded onto entry nodes.
			client = mux.EntryNode(mux.Client(uint64(t)), n)
		}
		lr := pc.lookup(client, s.f)
		if lr.Err != nil {
			continue
		}
		responder := pc.IndexByID(lr.From.ID)
		if responder < 0 {
			continue
		}
		// Rank the responder among the k holders by proximity to client.
		rank := 1
		dResp := pc.Topo.Distance(client, responder)
		for _, h := range s.holders {
			if h != responder && pc.Topo.Distance(client, h) < dResp {
				rank++
			}
		}
		total++
		if rank == 1 {
			nearest++
		}
		if rank <= 2 {
			top2++
		}
	}
	tbl := &metrics.Table{Header: []string{"outcome", "fraction", "paper"}}
	tbl.AddRow("nearest replica found", frac(nearest, total), "0.76")
	tbl.AddRow("one of two nearest", frac(top2, total), "0.92")
	tbl.AddRow("lookups measured", total, "")
	return Result{
		ID:         "E4",
		Title:      fmt.Sprintf("Fraction of lookups reaching the proximally nearest of k=5 replicas (N=%d)", n),
		PaperClaim: "nearest replica in 76% of lookups; one of two nearest in 92%",
		Table:      tbl,
		Nodes:      n,
		Events:     pc.Net.Messages(),
	}
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// E5FailureRouting reproduces the node-failure figure: simultaneous
// failures lose deterministic routes until transport-level failure
// detection routes around them and repair restores hop counts.
func E5FailureRouting(scale Scale, seed int64) Result {
	n, trials := 512, 400
	if scale == Full {
		n, trials = 5000, 1500
	}
	c, recs := mustRoutingCluster(n, seed, sharded)
	phase := func(label string) (delivered int, hops metrics.Summary) {
		for t := 0; t < trials; t++ {
			key := id.Rand(uint64(seed)<<32 + uint64(t) + uint64(len(label))<<48)
			if d, ok := probeRoute(c, recs, c.RandomLiveNode(), key, uint64(t)); ok {
				delivered++
				hops.Add(float64(d.Routed.Hops))
			}
		}
		return delivered, hops
	}
	tbl := &metrics.Table{Header: []string{"phase", "delivered", "avg hops"}}
	d0, h0 := phase("baseline")
	tbl.AddRow("before failures", fmt.Sprintf("%d/%d", d0, trials), h0.Mean())

	for k := 0; k < n/10; k++ {
		c.Crash(c.RandomLiveNode())
	}
	d1, h1 := phase("failed")
	tbl.AddRow("10% failed, no detection", fmt.Sprintf("%d/%d", d1, trials), h1.Mean())

	c.EnableProbes()
	d2, h2 := phase("probes")
	tbl.AddRow("with failure detection", fmt.Sprintf("%d/%d", d2, trials), h2.Mean())

	// Lazy repair has been running during the probe phase; measure again.
	d3, h3 := phase("repaired")
	tbl.AddRow("after lazy repair", fmt.Sprintf("%d/%d", d3, trials), h3.Mean())
	return Result{
		ID:         "E5",
		Title:      fmt.Sprintf("Routing under 10%% simultaneous node failures (N=%d)", n),
		PaperClaim: "eventual delivery unless l/2 adjacent nodes fail; repair restores route quality",
		Table:      tbl,
	}
}

// E6TableSize reproduces the state-size claim of section 2.2: each node
// keeps (2^b-1)*ceil(log_2b N) + 2l entries.
func E6TableSize(scale Scale, seed int64) Result {
	sizes := []int{64, 256, 1024}
	if scale == Full {
		sizes = []int{256, 1024, 4096, 16384}
	}
	tbl := &metrics.Table{Header: []string{"N", "avg RT entries", "avg leaf", "avg nbhd", "formula RT+leaf"}}
	type point struct {
		rt, leaf, nbhd metrics.Summary
		formula        int
	}
	pts := make([]point, len(sizes))
	forEachPoint(len(sizes), func(i int) {
		n := sizes[i]
		c, _ := mustRoutingCluster(n, seed, nil)
		for _, nd := range c.Nodes {
			r, l, m := nd.StateSize()
			pts[i].rt.Add(float64(r))
			pts[i].leaf.Add(float64(l))
			pts[i].nbhd.Add(float64(m))
		}
		pts[i].formula = 15*int(math.Ceil(math.Log(float64(n))/math.Log(16))) + 2*c.Opts.Pastry.L/2*2
	})
	for i, n := range sizes {
		tbl.AddRow(n, pts[i].rt.Mean(), pts[i].leaf.Mean(), pts[i].nbhd.Mean(), pts[i].formula)
	}
	return Result{
		ID:         "E6",
		Title:      "Per-node routing state vs network size",
		PaperClaim: "state is (2^b-1)*ceil(log_2b N) + 2l entries (logarithmic)",
		Table:      tbl,
		Notes: []string{
			"measured RT entries fall below the formula because only ~N/16^r candidates exist for deep rows",
		},
	}
}

// E7JoinCost reproduces the join-cost claim of section 2.2: restoring the
// invariants after an arrival takes O(log_2b N) messages.
func E7JoinCost(scale Scale, seed int64) Result {
	sizes := []int{64, 256, 1024}
	if scale == Full {
		sizes = []int{256, 1024, 4096, 16384}
	}
	tbl := &metrics.Table{Header: []string{"N before join", "messages", "log16 N"}}
	msgs := make([]uint64, len(sizes))
	forEachPoint(len(sizes), func(i int) {
		n := sizes[i]
		c, _ := mustRoutingCluster(n-1, seed, nil)
		c.Net.ResetCounters()
		c.Topo.Place()
		ep := c.Net.NewEndpoint()
		nd := pastry.New(c.Opts.Pastry, id.Rand(uint64(seed)+0xbeef), ep, ep.Clock(), nil)
		done := false
		nd.Join(simnet.Addr(0), func(error) { done = true })
		c.Net.RunUntil(func() bool { return done }, 10_000_000)
		c.Net.RunUntilIdle()
		msgs[i] = c.Net.Messages()
	})
	for i, n := range sizes {
		tbl.AddRow(n-1, msgs[i], math.Log(float64(n))/math.Log(16))
	}
	return Result{
		ID:         "E7",
		Title:      "Messages exchanged to integrate one new node",
		PaperClaim: "invariants restored with O(log_2b N) messages",
		Table:      tbl,
		Notes: []string{
			"counts all traffic including the announce fan-out to the new node's tables, so the constant is ~2l + (2^b-1)·log16 N",
		},
	}
}

// E11MaliciousRouting reproduces the randomized-routing claim of section
// 2.2 ("Fault-tolerance"): deterministic retries keep hitting the same
// malicious node, randomized retries eventually route around it.
func E11MaliciousRouting(scale Scale, seed int64) Result {
	n, trials := 256, 200
	if scale == Full {
		n, trials = 2000, 1000
	}
	fracs := []float64{0.05, 0.10, 0.20, 0.30}
	tbl := &metrics.Table{Header: []string{"malicious", "mode", "1 try", "<=3 tries", "<=8 tries"}}
	type config struct {
		f         float64
		randomize bool
	}
	var grid []config
	for _, f := range fracs {
		for _, randomize := range []bool{false, true} {
			grid = append(grid, config{f, randomize})
		}
	}
	type point struct{ succ1, succ3, succ8 int }
	pts := make([]point, len(grid))
	forEachPoint(len(grid), func(i int) {
		f, randomize := grid[i].f, grid[i].randomize
		c, recs := mustRoutingCluster(n, seed, func(o *cluster.Options) {
			o.Pastry.Randomize = randomize
			o.Pastry.Bias = 0.7
		})
		// Mark a fraction of nodes malicious: they accept traffic but
		// silently drop anything they should forward.
		bad := make(map[int]bool)
		for len(bad) < int(f*float64(n)) {
			j := c.RandomLiveNode()
			if !bad[j] {
				bad[j] = true
				c.Eps[j].SetSendFilter(func(to string, m wire.Msg) bool {
					_, isRouted := m.(wire.Routed)
					return isRouted
				})
			}
		}
		for t := 0; t < trials; t++ {
			key := id.Rand(uint64(seed)<<32 + uint64(t))
			from := c.RandomLiveNode()
			for bad[from] {
				from = c.RandomLiveNode()
			}
			// The destination may itself be malicious; that's fine —
			// it still delivers to its own application.
			attempt := 0
			ok := false
			for attempt < 8 && !ok {
				attempt++
				_, ok = probeRoute(c, recs, from, key, uint64(t)<<8|uint64(attempt))
			}
			if ok {
				if attempt == 1 {
					pts[i].succ1++
				}
				if attempt <= 3 {
					pts[i].succ3++
				}
				if attempt <= 8 {
					pts[i].succ8++
				}
			}
		}
	})
	for i, g := range grid {
		mode := "deterministic"
		if g.randomize {
			mode = "randomized"
		}
		tbl.AddRow(fmt.Sprintf("%.0f%%", g.f*100), mode,
			frac(pts[i].succ1, trials), frac(pts[i].succ3, trials), frac(pts[i].succ8, trials))
	}
	return Result{
		ID:         "E11",
		Title:      fmt.Sprintf("Lookup success vs fraction of malicious (drop-all) nodes (N=%d)", n),
		PaperClaim: "randomized routing lets retried queries route around malicious nodes",
		Table:      tbl,
	}
}

// E13ChordComparison contrasts Pastry with the Chord baseline on the same
// topology: similar hop counts, but Chord ignores proximity so its routes
// travel much farther (related-work section: Chord "makes no explicit
// effort to achieve good network locality").
func E13ChordComparison(scale Scale, seed int64) Result {
	n, trials := 512, 400
	if scale == Full {
		n, trials = 5000, 2000
	}
	c, recs := mustRoutingCluster(n, seed, sharded)
	ids := make([]id.Node, n)
	idxs := make([]int, n)
	for i, nd := range c.Nodes {
		ids[i] = nd.ID()
		idxs[i] = i
	}
	ring := chord.Build(ids, idxs)
	var pHops, pRatio, cHops, cRatio metrics.Summary
	for t := 0; t < trials; t++ {
		key := id.Rand(uint64(seed)<<32 + uint64(t))
		from := c.RandomLiveNode()
		d, ok := probeRoute(c, recs, from, key, uint64(t))
		if !ok || d.Routed.Hops == 0 {
			continue
		}
		direct := c.Topo.Distance(from, d.NodeIndex)
		if direct > 0 {
			pHops.Add(float64(d.Routed.Hops))
			pRatio.Add(d.Routed.Distance / direct)
		}
		// Chord on the same pair.
		start := ring.Nodes()[0]
		for _, cn := range ring.Nodes() {
			if cn.Index == from {
				start = cn
				break
			}
		}
		hops, dist, final := ring.Route(start, key, c.Topo.Distance)
		if hops > 0 {
			directC := c.Topo.Distance(from, final.Index)
			if directC > 0 {
				cHops.Add(float64(hops))
				cRatio.Add(dist / directC)
			}
		}
	}
	tbl := &metrics.Table{Header: []string{"protocol", "avg hops", "avg distance ratio"}}
	tbl.AddRow("Pastry", pHops.Mean(), pRatio.Mean())
	tbl.AddRow("Chord", cHops.Mean(), cRatio.Mean())
	return Result{
		ID:         "E13",
		Title:      fmt.Sprintf("Pastry vs Chord: hops and route-distance penalty (N=%d)", n),
		PaperClaim: "both are O(log N) hops; Pastry's locality heuristic yields much shorter routes",
		Table:      tbl,
	}
}

// A1ParameterAblation sweeps the Pastry design parameters b and l called
// out in section 2.2, showing the state-vs-hops tradeoff.
func A1ParameterAblation(scale Scale, seed int64) Result {
	n, trials := 512, 300
	if scale == Full {
		n, trials = 4096, 1000
	}
	tbl := &metrics.Table{Header: []string{"b", "l", "avg hops", "avg RT entries", "avg leaf"}}
	type config struct{ b, l int }
	var grid []config
	for _, b := range []int{2, 3, 4} {
		for _, l := range []int{16, 32} {
			grid = append(grid, config{b, l})
		}
	}
	type point struct{ hops, rt, leaf metrics.Summary }
	pts := make([]point, len(grid))
	forEachPoint(len(grid), func(i int) {
		c, recs := mustRoutingCluster(n, seed, func(o *cluster.Options) {
			o.Pastry.B = grid[i].b
			o.Pastry.L = grid[i].l
		})
		for t := 0; t < trials; t++ {
			key := id.Rand(uint64(seed)<<32 + uint64(t))
			if d, ok := probeRoute(c, recs, c.RandomLiveNode(), key, uint64(t)); ok {
				pts[i].hops.Add(float64(d.Routed.Hops))
			}
		}
		for _, nd := range c.Nodes {
			r, lv, _ := nd.StateSize()
			pts[i].rt.Add(float64(r))
			pts[i].leaf.Add(float64(lv))
		}
	})
	for i, g := range grid {
		tbl.AddRow(g.b, g.l, pts[i].hops.Mean(), pts[i].rt.Mean(), pts[i].leaf.Mean())
	}
	return Result{
		ID:         "A1",
		Title:      fmt.Sprintf("Ablation: digit size b and leaf-set size l (N=%d)", n),
		PaperClaim: "b trades per-node state for hops (b=4, l=32 are the paper's typical values)",
		Table:      tbl,
	}
}

// E14ReplicaDiversity reproduces the diversity claim of section 2: "with
// high probability, the set of nodes that store the file is diverse in
// geographic location, administration, ownership...". NodeIds come from
// hashes of card keys, so adjacent nodeIds land in unrelated parts of the
// topology; the experiment measures how many distinct stub and transit
// domains a fileId's k-replica set spans, against the ideal of k distinct.
func E14ReplicaDiversity(scale Scale, seed int64) Result {
	n, files := 256, 150
	if scale == Full {
		n, files = 4000, 1000
	}
	k := 5
	c, _ := mustRoutingCluster(n, seed, sharded)
	var stubs, transits metrics.Summary
	sameStubPairs, pairs := 0, 0
	stubsPerTransit := c.Opts.Topology.StubsPerTransit
	if stubsPerTransit == 0 {
		stubsPerTransit = 16
	}
	for f := 0; f < files; f++ {
		key := id.Rand(uint64(seed)<<32 + uint64(f))
		set := c.KClosest(key, k)
		stubSeen := map[int]bool{}
		transitSeen := map[int]bool{}
		var stubList []int
		for _, ref := range set {
			idx := c.IndexByID(ref.ID)
			if idx < 0 {
				continue
			}
			stub := c.Topo.Stub(idx)
			stubSeen[stub] = true
			transitSeen[stub/stubsPerTransit] = true
			stubList = append(stubList, stub)
		}
		stubs.Add(float64(len(stubSeen)))
		transits.Add(float64(len(transitSeen)))
		for i := 0; i < len(stubList); i++ {
			for j := i + 1; j < len(stubList); j++ {
				pairs++
				if stubList[i] == stubList[j] {
					sameStubPairs++
				}
			}
		}
	}
	totalStubs := float64(c.Topo.NumStubs())
	tbl := &metrics.Table{Header: []string{"metric", "value", "ideal"}}
	tbl.AddRow("avg distinct stub domains per replica set", stubs.Mean(), k)
	tbl.AddRow("avg distinct transit domains per replica set", transits.Mean(), "")
	tbl.AddRow("replica pairs sharing a stub", frac(sameStubPairs, pairs),
		fmt.Sprintf("%.4f (random)", float64(1)/totalStubs))
	return Result{
		ID:         "E14",
		Title:      fmt.Sprintf("Topological diversity of k=%d replica sets (N=%d)", k, n),
		PaperClaim: "the set of nodes that store a file is diverse (hashed nodeIds decorrelate adjacency from location)",
		Table:      tbl,
	}
}
