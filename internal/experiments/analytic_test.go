package experiments

import (
	"fmt"
	"testing"

	"past/internal/cluster"
	"past/internal/past"
)

// TestAnalyticReplicaPlacement completes the bulk-construction validation
// argument at the storage layer: the same inserts, issued from the same
// entry nodes into a protocol-built and an analytically-built PAST
// network, must land every replica on the same k nodes — and those must
// be the k numerically closest live nodes per the oracle. (Routing-layer
// equivalence — leaf sets, table occupancy, destinations — is pinned by
// cluster.TestAnalyticEquivalence.)
func TestAnalyticReplicaPlacement(t *testing.T) {
	const (
		n     = 64
		seed  = 21
		files = 24
		k     = 5
	)
	cfg := past.DefaultConfig()
	cfg.K = k
	cfg.Caching = false

	build := func(analytic bool) *pastCluster {
		pc, err := buildPAST(n, seed, cfg, nil, func(o *cluster.Options) { o.Analytic = analytic })
		if err != nil {
			t.Fatal(err)
		}
		return pc
	}
	pp := build(false)
	pa := build(true)

	for i := 0; i < files; i++ {
		name := fmt.Sprintf("equiv-%d", i)
		// All inserts enter at node 0: fileIds include a salt drawn from
		// the entry node's random stream, and node 0 is the only node
		// whose stream offset is construction-independent (it bootstraps,
		// so it draws no join nonce in the protocol build). Same salts →
		// same fileIds → placements are directly comparable.
		const entry = 0
		data := make([]byte, 256)
		rp := pp.insert(entry, pp.Cards[0], name, data, k)
		ra := pa.insert(entry, pa.Cards[0], name, data, k)
		if rp.Err != nil || ra.Err != nil {
			t.Fatalf("file %d: insert errs protocol=%v analytic=%v", i, rp.Err, ra.Err)
		}
		if rp.FileID != ra.FileID {
			t.Fatalf("file %d: ids differ (same card, same name — should be impossible)", i)
		}
		var hp, ha []int
		for j := 0; j < n; j++ {
			if pp.PAST[j].Store().Has(rp.FileID) {
				hp = append(hp, j)
			}
			if pa.PAST[j].Store().Has(ra.FileID) {
				ha = append(ha, j)
			}
		}
		if fmt.Sprint(hp) != fmt.Sprint(ha) {
			t.Fatalf("file %d: holder sets differ\nprotocol: %v\nanalytic: %v", i, hp, ha)
		}
		want := map[int]bool{}
		for _, ref := range pa.KClosest(rp.FileID.Key(), k) {
			want[pa.IndexByID(ref.ID)] = true
		}
		for _, h := range ha {
			if !want[h] {
				t.Fatalf("file %d: node %d holds a replica but is not among the %d numerically closest", i, h, k)
			}
		}
		if len(ha) != k {
			t.Fatalf("file %d: %d replicas, want %d", i, len(ha), k)
		}
	}
}
