package experiments

import (
	"testing"
)

// withParallelism runs f with MaxParallel pinned to p, restoring the
// previous value afterwards.
func withParallelism(t *testing.T, p int, f func()) {
	t.Helper()
	old := MaxParallel
	MaxParallel = p
	defer func() { MaxParallel = old }()
	f()
}

func TestForEachPointCoversAllPoints(t *testing.T) {
	for _, p := range []int{1, 4} {
		withParallelism(t, p, func() {
			got := make([]int, 100)
			forEachPoint(len(got), func(i int) { got[i] = i + 1 })
			for i, v := range got {
				if v != i+1 {
					t.Fatalf("parallelism %d: point %d not executed", p, i)
				}
			}
		})
	}
}

// TestParallelEngineDeterministicE1 proves trial isolation for a
// routing-grid experiment: the table produced with the engine fanned out
// over goroutines is byte-identical to the sequential run. Run under
// `go test -race` (as CI does) this also proves the concurrent data
// points share no state.
func TestParallelEngineDeterministicE1(t *testing.T) {
	var seq, par Result
	withParallelism(t, 1, func() { seq, _ = Run("E1", Small, 42) })
	withParallelism(t, 4, func() { par, _ = Run("E1", Small, 42) })
	if seq.Table.String() != par.Table.String() {
		t.Fatalf("E1 diverged between sequential and parallel runs:\nseq:\n%s\npar:\n%s",
			seq.Table.String(), par.Table.String())
	}
}

// TestParallelEngineDeterministicE10 is the storage-layer counterpart:
// four full PAST clusters (inserts, caching, saturation, Zipf lookups)
// run concurrently and must reproduce the sequential table exactly.
func TestParallelEngineDeterministicE10(t *testing.T) {
	if testing.Short() {
		t.Skip("E10 twice is slow; run without -short (CI does)")
	}
	var seq, par Result
	withParallelism(t, 1, func() { seq, _ = Run("E10", Small, 42) })
	withParallelism(t, 4, func() { par, _ = Run("E10", Small, 42) })
	if seq.Table.String() != par.Table.String() {
		t.Fatalf("E10 diverged between sequential and parallel runs:\nseq:\n%s\npar:\n%s",
			seq.Table.String(), par.Table.String())
	}
}
