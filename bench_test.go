// Benchmarks regenerating every table and figure of the paper (E1–E13,
// A1–A2; see ARCHITECTURE.md) plus microbenchmarks of the core operations.
//
// Each BenchmarkE* runs the corresponding experiment at Small scale once
// per iteration and reports its key number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Full-scale runs (paper-sized
// networks) are produced by cmd/pastsim.
package past_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"past"
	"past/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, id string, metric func(experiments.Result) (float64, string)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Small, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && metric != nil {
			v, unit := metric(res)
			b.ReportMetric(v, unit)
		}
	}
}

// cell extracts table cell [row][col] as float64 (tolerating % suffixes).
func cell(res experiments.Result, row, col int) float64 {
	s := strings.TrimSuffix(res.Table.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return -1
	}
	return v
}

func BenchmarkE1RoutingHops(b *testing.B) {
	runExperiment(b, "E1", func(r experiments.Result) (float64, string) {
		return cell(r, len(r.Table.Rows)-1, 2), "hops/lookup"
	})
}

func BenchmarkE2HopDistribution(b *testing.B) {
	runExperiment(b, "E2", nil)
}

func BenchmarkE3Locality(b *testing.B) {
	runExperiment(b, "E3", func(r experiments.Result) (float64, string) {
		return cell(r, 3, 1), "route/direct-ratio"
	})
}

func BenchmarkE4ReplicaProximity(b *testing.B) {
	runExperiment(b, "E4", func(r experiments.Result) (float64, string) {
		return cell(r, 0, 1), "nearest-replica-frac"
	})
}

func BenchmarkE5FailureRouting(b *testing.B) {
	runExperiment(b, "E5", nil)
}

func BenchmarkE6TableSize(b *testing.B) {
	runExperiment(b, "E6", func(r experiments.Result) (float64, string) {
		return cell(r, len(r.Table.Rows)-1, 1), "rt-entries"
	})
}

func BenchmarkE7JoinCost(b *testing.B) {
	runExperiment(b, "E7", func(r experiments.Result) (float64, string) {
		return cell(r, len(r.Table.Rows)-1, 1), "msgs/join"
	})
}

func BenchmarkE8Utilization(b *testing.B) {
	runExperiment(b, "E8", func(r experiments.Result) (float64, string) {
		return cell(r, len(r.Table.Rows)-1, 3), "reject-rate"
	})
}

func BenchmarkE9RejectionBias(b *testing.B) {
	runExperiment(b, "E9", nil)
}

func BenchmarkE10Caching(b *testing.B) {
	runExperiment(b, "E10", func(r experiments.Result) (float64, string) {
		return cell(r, 0, 2), "cache-hit-frac"
	})
}

func BenchmarkE11MaliciousRouting(b *testing.B) {
	runExperiment(b, "E11", nil)
}

func BenchmarkE12Quota(b *testing.B) {
	runExperiment(b, "E12", nil)
}

func BenchmarkE13ChordComparison(b *testing.B) {
	runExperiment(b, "E13", func(r experiments.Result) (float64, string) {
		return cell(r, 1, 2) / cell(r, 0, 2), "chord/pastry-distance"
	})
}

func BenchmarkA1ParameterAblation(b *testing.B) {
	runExperiment(b, "A1", nil)
}

func BenchmarkA2DiversionAblation(b *testing.B) {
	runExperiment(b, "A2", nil)
}

// ---------------------------------------------------------------------------
// Core-operation microbenchmarks on a prebuilt simulated network.

func benchNetwork(b *testing.B, n int) *past.Network {
	b.Helper()
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 64 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: n, Seed: 7, Storage: cfg})
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

func BenchmarkInsert4KiB(b *testing.B) {
	nw := benchNetwork(b, 64)
	data := make([]byte, 4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Insert(i%64, nil, fmt.Sprintf("bench-%d", i), data, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup4KiB(b *testing.B) {
	nw := benchNetwork(b, 64)
	ins, err := nw.Insert(0, nil, "bench-lookup", make([]byte, 4096), 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Lookup(i%64, ins.FileID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertReclaimCycle(b *testing.B) {
	nw := benchNetwork(b, 32)
	data := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins, err := nw.Insert(i%32, nil, fmt.Sprintf("cycle-%d", i), data, 3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Reclaim(i%32, nil, ins.FileID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkBuild64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := past.DefaultStorageConfig()
		cfg.Capacity = 1 << 20
		if _, err := past.NewNetwork(past.NetworkConfig{N: 64, Seed: int64(i), Storage: cfg}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14ReplicaDiversity(b *testing.B) {
	runExperiment(b, "E14", func(r experiments.Result) (float64, string) {
		return cell(r, 0, 1), "distinct-stubs"
	})
}
