package past_test

import (
	"testing"

	"past"
)

// TestLookupDetectsPostInsertMutation pins the zero-copy contract's
// failure mode: a caller who mutates the insert buffer after Insert
// (violating the immutable-after-Send rule) must get DETECTION — a
// content-hash mismatch on lookup — never silently corrupted bytes.
// This guards the client-side verification against ever being routed
// through the buffer-identity hash memo.
func TestLookupDetectsPostInsertMutation(t *testing.T) {
	nw, err := past.NewNetwork(past.NetworkConfig{N: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the original content that must not be silently corrupted")
	ins, err := nw.Insert(0, nil, "probe.txt", data, 3)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // contract violation: mutate after handing the buffer over
	if _, err := nw.Lookup(5, ins.FileID); err == nil {
		t.Fatal("post-insert mutation went undetected: lookup returned corrupted bytes without error")
	}
}
