package past

import (
	"crypto/ed25519"
	"fmt"
	"time"

	pastcore "past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/storage"
	"past/internal/telemetry"
	"past/internal/transport"
	"past/internal/wire"
)

// PeerConfig configures one real PAST node communicating over TCP.
type PeerConfig struct {
	// Listen is the TCP listen address; "127.0.0.1:0" picks a free port.
	Listen string
	// Card is this node's smartcard (fixes its nodeId and signs its
	// receipts). Required.
	Card *Smartcard
	// BrokerPub is the certification key this node trusts.
	BrokerPub ed25519.PublicKey
	// Storage configures the PAST layer; zero value uses defaults.
	Storage StorageConfig
	// DataDir, when set, persists every stored replica to this directory
	// and recovers them on start: each file on disk is re-verified
	// against its certificate's content hash before being served again,
	// corrupt entries are quarantined, and the node rejoins the network
	// with its surviving replicas intact. Empty keeps storage in memory.
	DataDir string
	// RoutingB and RoutingL override Pastry parameters (defaults 4, 32).
	RoutingB, RoutingL int
	// KeepAlive and FailTimeout control failure detection; zero keeps the
	// defaults (5s / 15s).
	KeepAlive, FailTimeout time.Duration
	// OpTimeout bounds blocking client operations (default 30s).
	OpTimeout time.Duration
	// DialTimeout and MaxFrame tune the TCP transport (zero = defaults:
	// 3s dial, 8 MiB frame cap).
	DialTimeout time.Duration
	MaxFrame    int
	// Seed, when non-zero, fixes the node's internal randomness (protocol
	// timers, route tie-breaks). Zero mixes wall-clock time so concurrent
	// deployments differ; the conformance harness sets it to align the
	// real stack with a simulator run.
	Seed int64
}

// Peer is a live PAST node over TCP. It is safe for concurrent use.
type Peer struct {
	cfg  PeerConfig
	tr   *transport.TCP
	node *pastry.Node
	past *pastcore.Node

	recovered, quarantined int
}

// ListenPeer starts a PAST node listening on cfg.Listen. Call Bootstrap
// (first node) or Join afterwards.
func ListenPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Card == nil {
		return nil, fmt.Errorf("past: PeerConfig.Card is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	tr, err := transport.ListenTCPOpts(cfg.Listen, transport.TCPOptions{
		DialTimeout: cfg.DialTimeout,
		MaxFrame:    cfg.MaxFrame,
	})
	if err != nil {
		return nil, err
	}
	pcfg := pastry.DefaultConfig()
	pcfg.KeepAlive = 5 * time.Second
	pcfg.FailTimeout = 15 * time.Second
	if cfg.RoutingB > 0 {
		pcfg.B = cfg.RoutingB
	}
	if cfg.RoutingL > 0 {
		pcfg.L = cfg.RoutingL
	}
	if cfg.KeepAlive > 0 {
		pcfg.KeepAlive = cfg.KeepAlive
	}
	if cfg.FailTimeout > 0 {
		pcfg.FailTimeout = cfg.FailTimeout
	}
	if cfg.Seed != 0 {
		pcfg.Seed = cfg.Seed
	} else {
		pcfg.Seed = int64(cfg.Card.NodeID().Digit(0, 8))<<32 | time.Now().UnixNano()&0xffffffff
	}
	scfg := cfg.Storage
	if scfg.K == 0 {
		scfg = DefaultStorageConfig()
	}
	scfg.RequestTimeout = cfg.OpTimeout

	clock := transport.NewRealClock()
	node := pastry.New(pcfg, cfg.Card.NodeID(), tr, clock, nil)
	pn := pastcore.NewNode(scfg, node, cfg.Card, cfg.BrokerPub)
	p := &Peer{cfg: cfg, tr: tr, node: node, past: pn}
	if cfg.DataDir != "" {
		ds, rep, err := storage.OpenDiskStoreVerify(cfg.DataDir, scfg.Capacity, func(cert wire.FileCertificate, data []byte) error {
			return seccrypt.VerifyContent(&cert, data)
		})
		if err != nil {
			tr.Close() //nolint:errcheck // already failing; listener must not leak
			return nil, err
		}
		pn.UseDisk(ds)
		p.recovered, p.quarantined = rep.Recovered, rep.Quarantined
	}
	return p, nil
}

// Recovered reports what opening DataDir found: replicas re-verified and
// served again, and corrupt entries quarantined. Both zero without a
// DataDir.
func (p *Peer) Recovered() (recovered, quarantined int) {
	return p.recovered, p.quarantined
}

// Addr returns the address other peers use to reach this node.
func (p *Peer) Addr() string { return p.tr.Addr() }

// Ref returns this node's overlay identity.
func (p *Peer) Ref() NodeRef { return p.node.Ref() }

// Bootstrap starts a brand-new PAST network with this node as the first
// member.
func (p *Peer) Bootstrap() { p.node.Bootstrap() }

// Join joins an existing network via the given seed address, blocking
// until the state transfer completes.
func (p *Peer) Join(seed string) error {
	errc := make(chan error, 1)
	p.node.Join(seed, func(err error) { errc <- err })
	select {
	case err := <-errc:
		return err
	case <-time.After(p.cfg.OpTimeout):
		return ErrTimeout
	}
}

// JoinAny tries each seed address in order and returns on the first
// successful join. It is one bootstrap round; callers wanting retry with
// backoff (the daemon) wrap it in a run-until-success task.
func (p *Peer) JoinAny(seeds []string) error {
	if len(seeds) == 0 {
		return fmt.Errorf("past: no bootstrap seeds")
	}
	var lastErr error
	for _, s := range seeds {
		if s == "" {
			continue
		}
		if err := p.Join(s); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("past: no usable bootstrap seeds")
	}
	return lastErr
}

// Insert stores data under name with k replicas (0 = default), blocking
// until the receipts arrive. card nil uses the peer's own card.
func (p *Peer) Insert(card *Smartcard, name string, data []byte, k int) (InsertResult, error) {
	if card == nil {
		card = p.cfg.Card
	}
	ch := make(chan InsertResult, 1)
	p.past.Insert(card, name, data, k, func(r InsertResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-time.After(4 * p.cfg.OpTimeout):
		return InsertResult{}, ErrTimeout
	}
}

// InsertSalted is Insert with a caller-supplied certificate salt: the
// fileId is H(name, owner, salt), so fixing the salt fixes the fileId.
// The conformance harness uses it to drive the identical workload through
// the simulator and a real cluster and compare placement per fileId.
func (p *Peer) InsertSalted(card *Smartcard, name string, data []byte, k int, salt []byte) (InsertResult, error) {
	if card == nil {
		card = p.cfg.Card
	}
	ch := make(chan InsertResult, 1)
	p.past.InsertSalted(card, name, data, k, salt, func(r InsertResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-time.After(4 * p.cfg.OpTimeout):
		return InsertResult{}, ErrTimeout
	}
}

// Lookup retrieves a file, blocking until the reply arrives.
func (p *Peer) Lookup(f FileID) (LookupResult, error) {
	ch := make(chan LookupResult, 1)
	p.past.Lookup(f, func(r LookupResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-time.After(2 * p.cfg.OpTimeout):
		return LookupResult{}, ErrTimeout
	}
}

// Reclaim frees a file's storage, blocking until receipts arrive or the
// reclaim window closes. card nil uses the peer's own card.
func (p *Peer) Reclaim(card *Smartcard, f FileID) (ReclaimResult, error) {
	if card == nil {
		card = p.cfg.Card
	}
	ch := make(chan ReclaimResult, 1)
	p.past.Reclaim(card, f, func(r ReclaimResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-time.After(2 * p.cfg.OpTimeout):
		return ReclaimResult{}, ErrTimeout
	}
}

// StoredFiles returns how many replicas this node currently stores.
func (p *Peer) StoredFiles() int { return p.past.Store().Len() }

// Stats returns this node's storage-layer counters (stores, lookups,
// cache activity, maintenance traffic). The snapshot is consistent.
func (p *Peer) Stats() NodeStats { return p.past.Stats() }

// RegisterTelemetry registers this peer's series on rec: the storage
// layer's per-window deltas plus stored_files and known_peers gauges.
// The caller owns the recorder's clock — the daemon ticks it from a
// periodic task and sets PeerConfig-independent wall-clock epochs.
func (p *Peer) RegisterTelemetry(rec *telemetry.Recorder) {
	pastcore.RegisterTelemetry(rec, func() []*pastcore.Node { return []*pastcore.Node{p.past} })
	rec.Gauge("stored_files", func() float64 { return float64(p.StoredFiles()) })
	rec.Gauge("known_peers", func() float64 { return float64(p.KnownPeers()) })
}

// KnownPeers returns how many distinct nodes this peer holds in its leaf
// set. Joins return before announce traffic has fully propagated, so
// callers that need a converged membership view (tests, admission
// checks) can poll this instead of sleeping.
func (p *Peer) KnownPeers() int { return len(p.node.LeafMembers()) }

// Close shuts the node down.
func (p *Peer) Close() error {
	p.node.Leave()
	return p.tr.Close()
}
