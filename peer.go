package past

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"time"

	pastcore "past/internal/past"
	"past/internal/pastry"
	"past/internal/seccrypt"
	"past/internal/storage"
	"past/internal/telemetry"
	"past/internal/transport"
	"past/internal/wire"
)

// BreakerOptions configure the transport's per-peer dial circuit
// breaker; the zero value disables it.
type BreakerOptions = transport.BreakerOptions

// TransportStats are the TCP transport's event counters.
type TransportStats = transport.TCPStats

// PeerConfig configures one real PAST node communicating over TCP.
type PeerConfig struct {
	// Listen is the TCP listen address; "127.0.0.1:0" picks a free port.
	Listen string
	// Card is this node's smartcard (fixes its nodeId and signs its
	// receipts). Required.
	Card *Smartcard
	// BrokerPub is the certification key this node trusts.
	BrokerPub ed25519.PublicKey
	// Storage configures the PAST layer; zero value uses defaults.
	Storage StorageConfig
	// DataDir, when set, persists every stored replica to this directory
	// and recovers them on start: each file on disk is re-verified
	// against its certificate's content hash before being served again,
	// corrupt entries are quarantined, and the node rejoins the network
	// with its surviving replicas intact. Empty keeps storage in memory.
	DataDir string
	// RoutingB and RoutingL override Pastry parameters (defaults 4, 32).
	RoutingB, RoutingL int
	// KeepAlive and FailTimeout control failure detection; zero keeps the
	// defaults (5s / 15s).
	KeepAlive, FailTimeout time.Duration
	// LeafSync, when positive, runs membership anti-entropy: every
	// LeafSync-th keep-alive tick the node exchanges leaf sets with one
	// random known peer, so partial membership views (lossy join, missed
	// announce) converge. Zero disables it (the default).
	LeafSync int
	// OpTimeout bounds blocking client operations (default 30s).
	OpTimeout time.Duration
	// JoinTimeout bounds one Join attempt through one seed (default:
	// OpTimeout). The daemon's re-bootstrap loop sets it well below
	// OpTimeout so cycling through dead seeds is cheap.
	JoinTimeout time.Duration
	// DialTimeout and MaxFrame tune the TCP transport (zero = defaults:
	// 3s dial, 8 MiB frame cap).
	DialTimeout time.Duration
	MaxFrame    int
	// DialVia, when set, routes all outbound connections through the
	// egress proxy at this address (see transport.TCPOptions.DialVia).
	// The chaos harness interposes its deterministic fault injector this
	// way; empty dials peers directly.
	DialVia string
	// Breaker configures the per-peer dial circuit breaker: after
	// Breaker.Threshold consecutive dial failures to one peer, sends to
	// it are suppressed for a growing cooldown and a single probe dial
	// must succeed before the peer is reinstated. The zero value
	// disables it (the default).
	Breaker BreakerOptions
	// Seed, when non-zero, fixes the node's internal randomness (protocol
	// timers, route tie-breaks). Zero mixes wall-clock time so concurrent
	// deployments differ; the conformance harness sets it to align the
	// real stack with a simulator run.
	Seed int64
}

// Peer is a live PAST node over TCP. It is safe for concurrent use.
type Peer struct {
	cfg  PeerConfig
	tr   *transport.TCP
	node *pastry.Node
	past *pastcore.Node

	recovered, quarantined int
}

// ListenPeer starts a PAST node listening on cfg.Listen. Call Bootstrap
// (first node) or Join afterwards.
func ListenPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Card == nil {
		return nil, fmt.Errorf("past: PeerConfig.Card is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = cfg.OpTimeout
	}
	tr, err := transport.ListenTCPOpts(cfg.Listen, transport.TCPOptions{
		DialTimeout: cfg.DialTimeout,
		MaxFrame:    cfg.MaxFrame,
		DialVia:     cfg.DialVia,
		Breaker:     cfg.Breaker,
	})
	if err != nil {
		return nil, err
	}
	pcfg := pastry.DefaultConfig()
	pcfg.KeepAlive = 5 * time.Second
	pcfg.FailTimeout = 15 * time.Second
	if cfg.RoutingB > 0 {
		pcfg.B = cfg.RoutingB
	}
	if cfg.RoutingL > 0 {
		pcfg.L = cfg.RoutingL
	}
	if cfg.KeepAlive > 0 {
		pcfg.KeepAlive = cfg.KeepAlive
	}
	if cfg.FailTimeout > 0 {
		pcfg.FailTimeout = cfg.FailTimeout
	}
	pcfg.LeafSync = cfg.LeafSync
	pcfg.JoinTimeout = cfg.JoinTimeout
	if cfg.Seed != 0 {
		pcfg.Seed = cfg.Seed
	} else {
		pcfg.Seed = int64(cfg.Card.NodeID().Digit(0, 8))<<32 | time.Now().UnixNano()&0xffffffff
	}
	scfg := cfg.Storage
	if scfg.K == 0 {
		scfg = DefaultStorageConfig()
		scfg.RequestTimeout = cfg.OpTimeout
	}
	// Per-attempt protocol timeout: an explicitly configured value wins,
	// so a client on a lossy network can run many short attempts inside
	// one blocking call; by default each attempt gets the whole OpTimeout.
	if scfg.RequestTimeout <= 0 {
		scfg.RequestTimeout = cfg.OpTimeout
	}

	clock := transport.NewRealClock()
	node := pastry.New(pcfg, cfg.Card.NodeID(), tr, clock, nil)
	// Feed transport-level failure knowledge back into routing: with the
	// breaker enabled, peers it holds open are unreachable to nextHop,
	// route diversity, and diversion-pointer chases. Disabled breaker =
	// always-true probe, identical to not installing one.
	node.SetProbe(tr.Reachable)
	pn := pastcore.NewNode(scfg, node, cfg.Card, cfg.BrokerPub)
	p := &Peer{cfg: cfg, tr: tr, node: node, past: pn}
	if cfg.DataDir != "" {
		ds, rep, err := storage.OpenDiskStoreVerify(cfg.DataDir, scfg.Capacity, func(cert wire.FileCertificate, data []byte) error {
			return seccrypt.VerifyContent(&cert, data)
		})
		if err != nil {
			tr.Close() //nolint:errcheck // already failing; listener must not leak
			return nil, err
		}
		pn.UseDisk(ds)
		p.recovered, p.quarantined = rep.Recovered, rep.Quarantined
	}
	return p, nil
}

// Recovered reports what opening DataDir found: replicas re-verified and
// served again, and corrupt entries quarantined. Both zero without a
// DataDir.
func (p *Peer) Recovered() (recovered, quarantined int) {
	return p.recovered, p.quarantined
}

// Addr returns the address other peers use to reach this node.
func (p *Peer) Addr() string { return p.tr.Addr() }

// Ref returns this node's overlay identity.
func (p *Peer) Ref() NodeRef { return p.node.Ref() }

// Bootstrap starts a brand-new PAST network with this node as the first
// member.
func (p *Peer) Bootstrap() { p.node.Bootstrap() }

// Join joins an existing network via the given seed address, blocking
// until the state transfer completes. One attempt is bounded by
// PeerConfig.JoinTimeout (default OpTimeout); a failed attempt leaves
// the node cleanly re-joinable, so callers retry freely.
func (p *Peer) Join(seed string) error {
	errc := make(chan error, 1)
	p.node.Join(seed, func(err error) { errc <- err })
	select {
	case err := <-errc:
		return err
	case <-time.After(p.cfg.JoinTimeout + p.cfg.JoinTimeout/2):
		// Backstop only: the node's own JoinTimeout normally fires first
		// and delivers ErrJoinTimeout through errc.
		return ErrTimeout
	}
}

// JoinAny tries each seed address in order and returns on the first
// successful join. It is one bootstrap round; callers wanting retry with
// backoff (the daemon) wrap it in a run-until-success task.
func (p *Peer) JoinAny(seeds []string) error {
	_, err := p.JoinAnyFrom(seeds, 0)
	return err
}

// JoinAnyFrom is JoinAny starting at index start%len(seeds), wrapping
// around the full list. It returns the index after the seed that
// answered (or after the last one tried), so a retry loop can rotate
// through the seed list across bootstrap rounds instead of burning every
// round's budget on the same dead first entry — the re-bootstrap
// fallback of a daemon whose seeds are temporarily unreachable.
func (p *Peer) JoinAnyFrom(seeds []string, start int) (next int, err error) {
	if len(seeds) == 0 {
		return 0, fmt.Errorf("past: no bootstrap seeds")
	}
	var lastErr error
	for i := 0; i < len(seeds); i++ {
		idx := (start + i) % len(seeds)
		s := seeds[idx]
		if s == "" {
			continue
		}
		if err := p.Join(s); err != nil {
			lastErr = err
			continue
		}
		return idx + 1, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("past: no usable bootstrap seeds")
	}
	return start + len(seeds), lastErr
}

// Insert stores data under name with k replicas (0 = default), blocking
// until the receipts arrive. card nil uses the peer's own card.
func (p *Peer) Insert(card *Smartcard, name string, data []byte, k int) (InsertResult, error) {
	return p.InsertCtx(context.Background(), card, name, data, k)
}

// InsertCtx is Insert bounded by ctx as well as the operation timeout:
// cancelling ctx (or its deadline passing) abandons the wait immediately
// and returns ctx's error. The underlying protocol attempt keeps running
// until its own timeout and is cleaned up as usual — deadline
// propagation bounds the caller, not the network.
func (p *Peer) InsertCtx(ctx context.Context, card *Smartcard, name string, data []byte, k int) (InsertResult, error) {
	if card == nil {
		card = p.cfg.Card
	}
	ch := make(chan InsertResult, 1)
	p.past.Insert(card, name, data, k, func(r InsertResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-ctx.Done():
		return InsertResult{}, ctx.Err()
	case <-time.After(4 * p.cfg.OpTimeout):
		return InsertResult{}, ErrTimeout
	}
}

// InsertSalted is Insert with a caller-supplied certificate salt: the
// fileId is H(name, owner, salt), so fixing the salt fixes the fileId.
// The conformance harness uses it to drive the identical workload through
// the simulator and a real cluster and compare placement per fileId.
func (p *Peer) InsertSalted(card *Smartcard, name string, data []byte, k int, salt []byte) (InsertResult, error) {
	return p.InsertSaltedCtx(context.Background(), card, name, data, k, salt)
}

// InsertSaltedCtx is InsertSalted bounded by ctx (see InsertCtx).
func (p *Peer) InsertSaltedCtx(ctx context.Context, card *Smartcard, name string, data []byte, k int, salt []byte) (InsertResult, error) {
	if card == nil {
		card = p.cfg.Card
	}
	ch := make(chan InsertResult, 1)
	p.past.InsertSalted(card, name, data, k, salt, func(r InsertResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-ctx.Done():
		return InsertResult{}, ctx.Err()
	case <-time.After(4 * p.cfg.OpTimeout):
		return InsertResult{}, ErrTimeout
	}
}

// Lookup retrieves a file, blocking until the reply arrives.
func (p *Peer) Lookup(f FileID) (LookupResult, error) {
	return p.LookupCtx(context.Background(), f)
}

// LookupCtx is Lookup bounded by ctx (see InsertCtx).
func (p *Peer) LookupCtx(ctx context.Context, f FileID) (LookupResult, error) {
	ch := make(chan LookupResult, 1)
	p.past.Lookup(f, func(r LookupResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-ctx.Done():
		return LookupResult{}, ctx.Err()
	case <-time.After(2 * p.cfg.OpTimeout):
		return LookupResult{}, ErrTimeout
	}
}

// Reclaim frees a file's storage, blocking until receipts arrive or the
// reclaim window closes. card nil uses the peer's own card.
func (p *Peer) Reclaim(card *Smartcard, f FileID) (ReclaimResult, error) {
	return p.ReclaimCtx(context.Background(), card, f)
}

// ReclaimCtx is Reclaim bounded by ctx (see InsertCtx).
func (p *Peer) ReclaimCtx(ctx context.Context, card *Smartcard, f FileID) (ReclaimResult, error) {
	if card == nil {
		card = p.cfg.Card
	}
	ch := make(chan ReclaimResult, 1)
	p.past.Reclaim(card, f, func(r ReclaimResult) { ch <- r })
	select {
	case r := <-ch:
		return r, r.Err
	case <-ctx.Done():
		return ReclaimResult{}, ctx.Err()
	case <-time.After(2 * p.cfg.OpTimeout):
		return ReclaimResult{}, ErrTimeout
	}
}

// Repair forces one anti-entropy repair round immediately, bypassing the
// AntiEntropyEvery rate limit: this node re-offers digests of its files
// to every replica-set peer, and missing replicas are fetched. The
// daemon's periodic repair task calls it so a cluster healing from a
// partition converges every file back to ≥ k disk replicas without
// operator action.
func (p *Peer) Repair() { p.past.Sweep() }

// StoredFiles returns how many replicas this node currently stores.
func (p *Peer) StoredFiles() int { return p.past.Store().Len() }

// Stats returns this node's storage-layer counters (stores, lookups,
// cache activity, maintenance traffic). The snapshot is consistent.
func (p *Peer) Stats() NodeStats { return p.past.Stats() }

// TransportStats returns the TCP transport's counters: dials, dial
// failures, breaker opens, and sends suppressed by an open breaker.
func (p *Peer) TransportStats() TransportStats { return p.tr.Stats() }

// RegisterTelemetry registers this peer's series on rec: the storage
// layer's per-window deltas plus stored_files and known_peers gauges.
// The caller owns the recorder's clock — the daemon ticks it from a
// periodic task and sets PeerConfig-independent wall-clock epochs.
func (p *Peer) RegisterTelemetry(rec *telemetry.Recorder) {
	pastcore.RegisterTelemetry(rec, func() []*pastcore.Node { return []*pastcore.Node{p.past} })
	rec.Gauge("stored_files", func() float64 { return float64(p.StoredFiles()) })
	rec.Gauge("known_peers", func() float64 { return float64(p.KnownPeers()) })
}

// KnownPeers returns how many distinct nodes this peer holds in its leaf
// set. Joins return before announce traffic has fully propagated, so
// callers that need a converged membership view (tests, admission
// checks) can poll this instead of sleeping.
func (p *Peer) KnownPeers() int { return len(p.node.LeafMembers()) }

// Close shuts the node down.
func (p *Peer) Close() error {
	p.node.Leave()
	return p.tr.Close()
}
