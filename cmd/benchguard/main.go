// Command benchguard compares a freshly measured pastbench report
// against the committed baseline and fails (exit 1) when a watched
// microbenchmark regressed beyond the tolerance:
//
//	go run ./cmd/benchguard -base BENCH_4.json -new bench-ci.json \
//	    -bench Insert4KiB -tolerance 1.25
//
// The tolerance is deliberately loose: shared CI containers show
// double-digit run-to-run noise on wall-clock numbers (BENCH_1 through
// BENCH_3 record the same code within ±10%), so the guard is meant to
// catch structural regressions — an accidental re-serialization, a lost
// cache — not single-digit drift.
//
// The baseline is machine-class sensitive: it must have been measured
// on hardware comparable to where the guard runs. If CI moves to a
// slower runner class, regenerate the committed baseline there
// (go run ./cmd/pastbench -out BENCH_<n>.json) or raise -tolerance —
// the allocs/op line printed below is machine-independent and tells
// the two cases apart (unchanged allocs + slower ns/op = machine or
// noise, not code).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func (r *report) ns(name string) (float64, int64, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b.NsPerOp, b.AllocsPerOp, true
		}
	}
	return 0, 0, false
}

func main() {
	base := flag.String("base", "BENCH_4.json", "committed baseline report")
	fresh := flag.String("new", "bench-ci.json", "freshly measured report")
	bench := flag.String("bench", "Insert4KiB", "comma-free benchmark name to watch")
	tol := flag.Float64("tolerance", 1.25, "fail when new ns/op exceeds base ns/op times this")
	flag.Parse()

	baseRep, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	freshRep, err := load(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	b, bAllocs, ok := baseRep.ns(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: %s missing from %s\n", *bench, *base)
		os.Exit(2)
	}
	f, fAllocs, ok := freshRep.ns(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchguard: %s missing from %s\n", *bench, *fresh)
		os.Exit(2)
	}
	ratio := f / b
	fmt.Printf("benchguard: %s baseline %.0f ns/op / %d allocs, fresh %.0f ns/op / %d allocs (%.2fx, tolerance %.2fx)\n",
		*bench, b, bAllocs, f, fAllocs, ratio, *tol)
	if ratio > *tol {
		fmt.Fprintf(os.Stderr, "benchguard: REGRESSION: %s is %.2fx the committed baseline (limit %.2fx)\n",
			*bench, ratio, *tol)
		os.Exit(1)
	}
}
