// Command benchguard compares a freshly measured pastbench report
// against the committed baseline and fails (exit 1) when any watched
// metric regressed beyond its tolerance:
//
//	go run ./cmd/benchguard -base BENCH_5.json -new bench-ci.json \
//	    -watch 'Insert4KiB:1.25,Lookup4KiB:1.25,exp:E15:2.0,exp:E18:2.0'
//
// A watch is <name>:<tolerance>. A bare name guards a microbenchmark's
// ns/op; an "exp:<id>" name guards that experiment's Small-scale wall
// clock (wall_ms) from the report's experiments section, and
// "exp:<id>@<scale>" the same for a bulk-built tier entry (e.g.
// exp:E1@large:2.0). Two further kinds guard the scale work directly:
// "mem:<probe>:<tol>" guards a mem_probes entry's bytes_per_node (fails
// when fresh > base*tol), and "eps:<id>@<scale>:<tol>" guards an
// experiment's events_per_sec throughput (fails when fresh <
// base/tol — throughput regressions point the other way). Each metric
// carries its own tolerance: experiment walls are one-shot timings (no
// testing.B averaging), so they need a looser bound than the
// microbenchmarks.
//
// Tolerances are deliberately loose: shared CI containers show
// double-digit run-to-run noise on wall-clock numbers (BENCH_1 through
// BENCH_3 record the same code within ±10%), so the guard is meant to
// catch structural regressions — an accidental re-serialization, a lost
// cache, adversary hooks taxing the honest path — not single-digit
// drift.
//
// The baseline is machine-class sensitive: it must have been measured
// on hardware comparable to where the guard runs. If CI moves to a
// slower runner class, regenerate the committed baseline there
// (go run ./cmd/pastbench -out BENCH_<n>.json) or raise the tolerances —
// the allocs/op line printed below is machine-independent and tells
// the two cases apart (unchanged allocs + slower ns/op = machine or
// noise, not code).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type report struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
	Experiments []struct {
		ID           string  `json:"id"`
		Scale        string  `json:"scale"`
		WallMs       float64 `json:"wall_ms"`
		EventsPerSec float64 `json:"events_per_sec"`
	} `json:"experiments"`
	MemProbes []struct {
		Name         string  `json:"name"`
		BytesPerNode float64 `json:"bytes_per_node"`
	} `json:"mem_probes"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func (r *report) ns(name string) (float64, int64, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b.NsPerOp, b.AllocsPerOp, true
		}
	}
	return 0, 0, false
}

// expEntry finds the experiment entry for id at scale. A watch written
// without @scale means the default Small-scale probe ("Small" in the
// report).
func (r *report) expEntry(id, scale string) (wallMs, eps float64, ok bool) {
	for _, e := range r.Experiments {
		if e.ID == id && strings.EqualFold(e.Scale, scale) {
			return e.WallMs, e.EventsPerSec, true
		}
	}
	return 0, 0, false
}

func (r *report) bytesPerNode(name string) (float64, bool) {
	for _, m := range r.MemProbes {
		if m.Name == name {
			return m.BytesPerNode, true
		}
	}
	return 0, false
}

// watch is one guarded metric. kind selects the metric family:
// "bench" (ns/op), "exp" (wall_ms), "eps" (events_per_sec, inverted
// comparison), "mem" (bytes_per_node). scale qualifies exp/eps watches;
// it defaults to Small for exp and is mandatory for eps.
type watch struct {
	kind  string
	name  string
	scale string
	tol   float64
}

func parseWatches(spec string) ([]watch, error) {
	var out []watch
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		w := watch{kind: "bench"}
		for _, k := range []string{"exp", "eps", "mem"} {
			if rest, ok := strings.CutPrefix(item, k+":"); ok {
				w.kind = k
				item = rest
				break
			}
		}
		name, tolStr, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("watch %q: want <name>:<tolerance>", item)
		}
		tol, err := strconv.ParseFloat(tolStr, 64)
		if err != nil || tol <= 0 {
			return nil, fmt.Errorf("watch %q: bad tolerance %q", item, tolStr)
		}
		w.name, w.tol = name, tol
		if w.kind == "exp" || w.kind == "eps" {
			w.scale = "Small"
			if n, sc, ok := strings.Cut(w.name, "@"); ok {
				w.name, w.scale = n, sc
			} else if w.kind == "eps" {
				return nil, fmt.Errorf("watch %q: eps watches need <id>@<scale>", item)
			}
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty watch list")
	}
	return out, nil
}

func main() {
	base := flag.String("base", "BENCH_6.json", "committed baseline report")
	fresh := flag.String("new", "bench-ci.json", "freshly measured report")
	watches := flag.String("watch",
		"Insert4KiB:1.25,Lookup4KiB:1.25,exp:E15:2.0,exp:E18:2.0",
		"comma-separated <name>:<tolerance> metrics; prefix exp: guards an experiment's wall_ms")
	trend := flag.Bool("trend", false, "trend mode: judge the newest BENCH_*.json against the whole committed history instead of one baseline")
	trendGlob := flag.String("trend-glob", "BENCH_*.json", "report glob for -trend (ordered by the numeric suffix)")
	trendBand := flag.Float64("trend-band", 1.30, "minimum allowed ratio over the trend envelope; noisy metric histories widen it automatically")
	trendRequire := flag.String("trend-require", "", "comma-separated metrics that must appear in the newest report (exit 2 when absent from the emitted table)")
	flag.Parse()

	if *trend {
		var require []string
		if *trendRequire != "" {
			require = strings.Split(*trendRequire, ",")
		}
		os.Exit(runTrend(*trendGlob, *trendBand, require, os.Stdout, os.Stderr))
	}

	ws, err := parseWatches(*watches)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	baseRep, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	freshRep, err := load(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	failed := 0
	for _, w := range ws {
		switch w.kind {
		case "exp":
			label := w.name
			if !strings.EqualFold(w.scale, "Small") {
				label = w.name + "@" + w.scale
			}
			b, _, ok := baseRep.expEntry(w.name, w.scale)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: experiment %s missing from %s\n", label, *base)
				os.Exit(2)
			}
			f, _, ok := freshRep.expEntry(w.name, w.scale)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: experiment %s missing from %s\n", label, *fresh)
				os.Exit(2)
			}
			ratio := f / b
			fmt.Printf("benchguard: exp:%s baseline %.0f ms, fresh %.0f ms (%.2fx, tolerance %.2fx)\n",
				label, b, f, ratio, w.tol)
			if ratio > w.tol {
				fmt.Fprintf(os.Stderr, "benchguard: REGRESSION: exp:%s wall clock is %.2fx the committed baseline (limit %.2fx)\n",
					label, ratio, w.tol)
				failed++
			}
			continue
		case "eps":
			label := w.name + "@" + w.scale
			_, b, ok := baseRep.expEntry(w.name, w.scale)
			if !ok || b == 0 {
				fmt.Fprintf(os.Stderr, "benchguard: events_per_sec for %s missing from %s\n", label, *base)
				os.Exit(2)
			}
			_, f, ok := freshRep.expEntry(w.name, w.scale)
			if !ok || f == 0 {
				fmt.Fprintf(os.Stderr, "benchguard: events_per_sec for %s missing from %s\n", label, *fresh)
				os.Exit(2)
			}
			ratio := b / f // >1 means fresh is slower
			fmt.Printf("benchguard: eps:%s baseline %.0f ev/s, fresh %.0f ev/s (%.2fx slowdown, tolerance %.2fx)\n",
				label, b, f, ratio, w.tol)
			if ratio > w.tol {
				fmt.Fprintf(os.Stderr, "benchguard: REGRESSION: eps:%s throughput dropped to 1/%.2fx of the committed baseline (limit 1/%.2fx)\n",
					label, ratio, w.tol)
				failed++
			}
			continue
		case "mem":
			b, ok := baseRep.bytesPerNode(w.name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: mem probe %s missing from %s\n", w.name, *base)
				os.Exit(2)
			}
			f, ok := freshRep.bytesPerNode(w.name)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchguard: mem probe %s missing from %s\n", w.name, *fresh)
				os.Exit(2)
			}
			ratio := f / b
			fmt.Printf("benchguard: mem:%s baseline %.0f B/node, fresh %.0f B/node (%.2fx, tolerance %.2fx)\n",
				w.name, b, f, ratio, w.tol)
			if ratio > w.tol {
				fmt.Fprintf(os.Stderr, "benchguard: REGRESSION: mem:%s bytes-per-node is %.2fx the committed baseline (limit %.2fx)\n",
					w.name, ratio, w.tol)
				failed++
			}
			continue
		}
		b, bAllocs, ok := baseRep.ns(w.name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from %s\n", w.name, *base)
			os.Exit(2)
		}
		f, fAllocs, ok := freshRep.ns(w.name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from %s\n", w.name, *fresh)
			os.Exit(2)
		}
		ratio := f / b
		fmt.Printf("benchguard: %s baseline %.0f ns/op / %d allocs, fresh %.0f ns/op / %d allocs (%.2fx, tolerance %.2fx)\n",
			w.name, b, bAllocs, f, fAllocs, ratio, w.tol)
		if ratio > w.tol {
			fmt.Fprintf(os.Stderr, "benchguard: REGRESSION: %s is %.2fx the committed baseline (limit %.2fx)\n",
				w.name, ratio, w.tol)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
