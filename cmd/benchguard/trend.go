// Trend mode: instead of comparing one fresh report against one pinned
// baseline, -trend loads the whole committed BENCH_*.json history in
// order, fits each metric's direction across PRs, and judges the latest
// report against a trend envelope — so a metric that has been drifting
// up for three PRs is flagged even if no single step exceeded the pair
// tolerance, and a metric with a noisy history earns a wider band than
// a rock-steady one. It also emits the per-PR perf-delta markdown table
// the ROADMAP log records.
package main

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// sample is one metric value at one BENCH index.
type sample struct {
	idx int
	v   float64
}

// metricHist is the per-PR history of one metric.
type metricHist struct {
	key     string // "Insert4KiB", "exp:E15@Small", "eps:E1@large", "mem:..."
	unit    string
	samples []sample
	// higherBetter inverts the comparison (events/sec: a drop is the
	// regression).
	higherBetter bool
}

var benchIdxRe = regexp.MustCompile(`BENCH_(\d+)\.json$`)

// loadHistory loads every report matching glob, ordered by BENCH index,
// and folds them into per-metric histories (insertion-ordered).
func loadHistory(glob string) (keys []string, hists map[string]*metricHist, idxs []int, err error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, nil, nil, err
	}
	type file struct {
		idx  int
		path string
	}
	var files []file
	for _, p := range paths {
		m := benchIdxRe.FindStringSubmatch(p)
		if m == nil {
			continue
		}
		var idx int
		fmt.Sscanf(m[1], "%d", &idx) //nolint:errcheck // \d+ always scans
		files = append(files, file{idx, p})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].idx < files[j].idx })
	if len(files) < 2 {
		return nil, nil, nil, fmt.Errorf("need at least 2 reports matching %q, found %d", glob, len(files))
	}
	hists = make(map[string]*metricHist)
	add := func(key, unit string, idx int, v float64, higherBetter bool) {
		h, ok := hists[key]
		if !ok {
			h = &metricHist{key: key, unit: unit, higherBetter: higherBetter}
			hists[key] = h
			keys = append(keys, key)
		}
		h.samples = append(h.samples, sample{idx, v})
	}
	for _, f := range files {
		rep, err := load(f.path)
		if err != nil {
			return nil, nil, nil, err
		}
		idxs = append(idxs, f.idx)
		for _, b := range rep.Benchmarks {
			add(b.Name, "ns/op", f.idx, b.NsPerOp, false)
		}
		for _, e := range rep.Experiments {
			key := "exp:" + e.ID + "@" + e.Scale
			add(key, "ms", f.idx, e.WallMs, false)
			if e.EventsPerSec > 0 {
				add("eps:"+e.ID+"@"+e.Scale, "ev/s", f.idx, e.EventsPerSec, true)
			}
		}
		for _, m := range rep.MemProbes {
			add("mem:"+m.Name, "B/node", f.idx, m.BytesPerNode, false)
		}
	}
	return keys, hists, idxs, nil
}

// fitLogTrend least-squares fits ln(v) over idx and returns the
// prediction at target plus the residual scatter (log-space stddev).
// ok is false with fewer than 3 points — too little history to call a
// direction.
func fitLogTrend(samples []sample, target int) (pred, slope, sigma float64, ok bool) {
	n := float64(len(samples))
	if len(samples) < 3 {
		return 0, 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		x, y := float64(s.idx), math.Log(s.v)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, false
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	var ss float64
	for _, s := range samples {
		r := math.Log(s.v) - (a + b*float64(s.idx))
		ss += r * r
	}
	sigma = math.Sqrt(ss / n)
	return math.Exp(a + b*float64(target)), b, sigma, true
}

// verdict judges the latest sample of one history against its trend
// envelope. band is the minimum allowed ratio (the -trend-band flag);
// noisy histories widen it to exp(2*sigma).
func (h *metricHist) verdict(band float64) (status string, limit, slopePct float64) {
	last := h.samples[len(h.samples)-1]
	prior := h.samples[:len(h.samples)-1]
	if len(prior) == 0 {
		return "new", 0, 0
	}
	prev := prior[len(prior)-1].v
	pred, slope, sigma, ok := fitLogTrend(prior, last.idx)
	envelope := band
	if ok {
		if w := math.Exp(2 * sigma); w > envelope {
			envelope = w
		}
		slopePct = (math.Exp(slope) - 1) * 100
	} else {
		pred = prev
	}
	if h.higherBetter {
		base := math.Min(pred, prev)
		limit = base / envelope
		if last.v < limit {
			return "REGRESSION", limit, slopePct
		}
	} else {
		base := math.Max(pred, prev)
		limit = base * envelope
		if last.v > limit {
			return "REGRESSION", limit, slopePct
		}
	}
	return "ok", limit, slopePct
}

// normalizeKey canonicalizes a -trend-require spelling: bare experiment
// watches default to the Small tier, mirroring parseWatches.
func normalizeKey(k string) string {
	k = strings.TrimSpace(k)
	for _, prefix := range []string{"exp:", "eps:"} {
		if rest, ok := strings.CutPrefix(k, prefix); ok && !strings.Contains(rest, "@") {
			return prefix + rest + "@Small"
		}
	}
	return k
}

func fmtVal(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// runTrend is the -trend entry point. It prints the per-PR perf-delta
// markdown table to stdout and returns the process exit code: 1 when a
// metric broke its trend envelope, 2 on usage errors or when a required
// metric is absent from the latest report, 0 otherwise.
func runTrend(glob string, band float64, require []string, stdout, stderr io.Writer) int {
	keys, hists, idxs, err := loadHistory(glob)
	if err != nil {
		fmt.Fprintln(stderr, "benchguard:", err)
		return 2
	}
	latestIdx := idxs[len(idxs)-1]
	prevIdx := idxs[len(idxs)-2]
	fmt.Fprintf(stdout, "Perf delta BENCH_%d -> BENCH_%d (trend over %d reports, band %.2fx):\n\n",
		prevIdx, latestIdx, len(idxs), band)
	fmt.Fprintf(stdout, "| metric | BENCH_%d | BENCH_%d | delta | trend/PR | status |\n", prevIdx, latestIdx)
	fmt.Fprintln(stdout, "|---|---|---|---|---|---|")

	regressions := 0
	inLatest := make(map[string]bool)
	for _, key := range keys {
		h := hists[key]
		last := h.samples[len(h.samples)-1]
		if last.idx != latestIdx {
			continue // metric dropped before the latest report
		}
		inLatest[key] = true
		status, _, slopePct := h.verdict(band)
		prevCell, deltaCell, trendCell := "-", "-", "-"
		if len(h.samples) >= 2 {
			prev := h.samples[len(h.samples)-2].v
			prevCell = fmtVal(prev) + " " + h.unit
			deltaCell = fmt.Sprintf("%+.1f%%", (last.v/prev-1)*100)
		}
		if len(h.samples) >= 4 { // 3 prior points fitted
			trendCell = fmt.Sprintf("%+.1f%%", slopePct)
		}
		if status == "REGRESSION" {
			regressions++
			fmt.Fprintf(stderr, "benchguard: REGRESSION: %s broke its trend envelope (see table)\n", key)
		}
		fmt.Fprintf(stdout, "| %s | %s | %s %s | %s | %s | %s |\n",
			key, prevCell, fmtVal(last.v), h.unit, deltaCell, trendCell, status)
	}

	missing := 0
	for _, req := range require {
		if req = normalizeKey(req); req == "" {
			continue
		}
		if !inLatest[req] {
			fmt.Fprintf(stderr, "benchguard: required metric %s missing from BENCH_%d\n", req, latestIdx)
			missing++
		}
	}
	switch {
	case missing > 0:
		return 2
	case regressions > 0:
		return 1
	}
	return 0
}
