package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseWatches(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want []watch
	}{
		{
			name: "bare benchmark",
			spec: "Insert4KiB:1.25",
			want: []watch{{kind: "bench", name: "Insert4KiB", tol: 1.25}},
		},
		{
			name: "exp defaults to Small scale",
			spec: "exp:E15:2.0",
			want: []watch{{kind: "exp", name: "E15", scale: "Small", tol: 2.0}},
		},
		{
			name: "exp with explicit scale",
			spec: "exp:E1@large:2.5",
			want: []watch{{kind: "exp", name: "E1", scale: "large", tol: 2.5}},
		},
		{
			name: "eps requires and parses scale",
			spec: "eps:E1@large:2.5",
			want: []watch{{kind: "eps", name: "E1", scale: "large", tol: 2.5}},
		},
		{
			name: "mem probe",
			spec: "mem:analytic_build_20000:1.30",
			want: []watch{{kind: "mem", name: "analytic_build_20000", tol: 1.30}},
		},
		{
			name: "mixed list with whitespace and empty items",
			spec: " Insert4KiB:1.25, ,exp:E18:2.0,mem:analytic_build_20000:1.3 ",
			want: []watch{
				{kind: "bench", name: "Insert4KiB", tol: 1.25},
				{kind: "exp", name: "E18", scale: "Small", tol: 2.0},
				{kind: "mem", name: "analytic_build_20000", tol: 1.3},
			},
		},
		{
			name: "the full CI watch line",
			spec: "Insert4KiB:1.25,Lookup4KiB:1.25,exp:E15:2.0,exp:E18:2.0,exp:E1@large:2.5,eps:E1@large:2.5,mem:analytic_build_20000:1.30",
			want: []watch{
				{kind: "bench", name: "Insert4KiB", tol: 1.25},
				{kind: "bench", name: "Lookup4KiB", tol: 1.25},
				{kind: "exp", name: "E15", scale: "Small", tol: 2.0},
				{kind: "exp", name: "E18", scale: "Small", tol: 2.0},
				{kind: "exp", name: "E1", scale: "large", tol: 2.5},
				{kind: "eps", name: "E1", scale: "large", tol: 2.5},
				{kind: "mem", name: "analytic_build_20000", tol: 1.30},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseWatches(tc.spec)
			if err != nil {
				t.Fatalf("parseWatches(%q): %v", tc.spec, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parseWatches(%q)\n got %+v\nwant %+v", tc.spec, got, tc.want)
			}
		})
	}
}

func TestParseWatchesErrors(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		errPart string
	}{
		{"missing tolerance", "Insert4KiB", "want <name>:<tolerance>"},
		{"non-numeric tolerance", "Insert4KiB:fast", "bad tolerance"},
		{"zero tolerance", "Insert4KiB:0", "bad tolerance"},
		{"negative tolerance", "exp:E15:-1", "bad tolerance"},
		{"eps without scale", "eps:E1:2.0", "eps watches need <id>@<scale>"},
		{"empty list", "", "empty watch list"},
		{"only separators", " , ,, ", "empty watch list"},
		{"bad item poisons the list", "Insert4KiB:1.25,Lookup4KiB", "want <name>:<tolerance>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseWatches(tc.spec)
			if err == nil {
				t.Fatalf("parseWatches(%q) = %+v, want error containing %q", tc.spec, got, tc.errPart)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("parseWatches(%q) error = %q, want it to contain %q", tc.spec, err, tc.errPart)
			}
		})
	}
}
