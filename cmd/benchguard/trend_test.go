package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes one minimal BENCH_<idx>.json with the given
// Insert4KiB ns/op, an experiment wall, a throughput and a mem probe.
func writeBench(t *testing.T, dir string, idx int, ns, wall, eps, bpn float64) {
	t.Helper()
	body := fmt.Sprintf(`{
  "benchmarks": [{"name": "Insert4KiB", "ns_per_op": %f, "allocs_per_op": 100}],
  "experiments": [{"id": "E15", "scale": "Small", "wall_ms": %f, "events_per_sec": %f}],
  "mem_probes": [{"name": "analytic_build_20000", "bytes_per_node": %f}]
}`, ns, wall, eps, bpn)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", idx)), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTrendCleanHistory pins exit 0 and a complete table on a history
// with mild noise and a steady direction.
func TestTrendCleanHistory(t *testing.T) {
	dir := t.TempDir()
	ns := []float64{1000, 980, 1010, 960, 950}
	for i, v := range ns {
		writeBench(t, dir, i+1, v, 400+10*float64(i%2), 1e5+1e3*float64(i), 7000-50*float64(i))
	}
	var out, errb bytes.Buffer
	code := runTrend(filepath.Join(dir, "BENCH_*.json"), 1.30,
		[]string{"Insert4KiB", "exp:E15", "eps:E15@Small", "mem:analytic_build_20000"}, &out, &errb)
	if code != 0 {
		t.Fatalf("clean history exit = %d, stderr:\n%s\ntable:\n%s", code, errb.String(), out.String())
	}
	for _, want := range []string{"| Insert4KiB |", "| exp:E15@Small |", "| eps:E15@Small |", "| mem:analytic_build_20000 |", "| ok |"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}
}

// TestTrendSeededRegression pins the acceptance criterion: a synthetic
// 3x regression in the newest report exits non-zero and is labeled in
// the table.
func TestTrendSeededRegression(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 4; i++ {
		writeBench(t, dir, i, 1000, 400, 1e5, 7000)
	}
	writeBench(t, dir, 5, 3000, 400, 1e5, 7000) // Insert4KiB jumps 3x
	var out, errb bytes.Buffer
	code := runTrend(filepath.Join(dir, "BENCH_*.json"), 1.30, nil, &out, &errb)
	if code != 1 {
		t.Fatalf("seeded regression exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "| REGRESSION |") || !strings.Contains(errb.String(), "Insert4KiB") {
		t.Fatalf("regression not reported:\n%s\n%s", out.String(), errb.String())
	}
}

// TestTrendThroughputInverted pins that events/sec regressions point the
// other way: a throughput *drop* fails, a rise does not.
func TestTrendThroughputInverted(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 4; i++ {
		writeBench(t, dir, i, 1000, 400, 1e5, 7000)
	}
	writeBench(t, dir, 5, 1000, 400, 3e4, 7000) // eps drops to 30%
	var out, errb bytes.Buffer
	if code := runTrend(filepath.Join(dir, "BENCH_*.json"), 1.30, nil, &out, &errb); code != 1 {
		t.Fatalf("throughput drop exit = %d, want 1\n%s", code, out.String())
	}
	dir2 := t.TempDir()
	for i := 1; i <= 4; i++ {
		writeBench(t, dir2, i, 1000, 400, 1e5, 7000)
	}
	writeBench(t, dir2, 5, 1000, 400, 3e5, 7000) // eps trebles: fine
	out.Reset()
	errb.Reset()
	if code := runTrend(filepath.Join(dir2, "BENCH_*.json"), 1.30, nil, &out, &errb); code != 0 {
		t.Fatalf("throughput rise exit = %d, want 0\n%s\n%s", code, out.String(), errb.String())
	}
}

// TestTrendRequiredMetricMissing pins the CI contract: a tracked metric
// absent from the newest report exits 2 even if nothing regressed.
func TestTrendRequiredMetricMissing(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 3; i++ {
		writeBench(t, dir, i, 1000, 400, 1e5, 7000)
	}
	var out, errb bytes.Buffer
	code := runTrend(filepath.Join(dir, "BENCH_*.json"), 1.30, []string{"Lookup4KiB"}, &out, &errb)
	if code != 2 {
		t.Fatalf("missing required metric exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "Lookup4KiB") {
		t.Fatalf("missing metric not named:\n%s", errb.String())
	}
}

// TestTrendNoisyHistoryWidensBand pins the envelope logic: a step that
// would break the flat band survives when the metric's own history is
// just as noisy.
func TestTrendNoisyHistoryWidensBand(t *testing.T) {
	dir := t.TempDir()
	noisy := []float64{1000, 1600, 900, 1500, 950}
	for i, v := range noisy {
		writeBench(t, dir, i+1, v, 400, 1e5, 7000)
	}
	// Latest 1550: +63% over prev, but within the scatter of the history.
	writeBench(t, dir, 6, 1550, 400, 1e5, 7000)
	var out, errb bytes.Buffer
	if code := runTrend(filepath.Join(dir, "BENCH_*.json"), 1.30, nil, &out, &errb); code != 0 {
		t.Fatalf("noisy-but-stationary history flagged: exit %d\n%s\n%s", code, out.String(), errb.String())
	}
}
