// Command pastbench runs the core PAST microbenchmarks and experiment
// wall-clock probes, then writes the results as JSON so successive PRs
// can track the performance trajectory:
//
//	go run ./cmd/pastbench -out BENCH_1.json
//
// The microbenchmarks mirror the hot-path benchmarks in bench_test.go
// (insert, lookup, insert+reclaim, network build) but run against the
// public API via testing.Benchmark, so they need no test harness. The
// experiment probes time experiments.Run at Small scale — the same
// invocations the BenchmarkE* suite makes — and record the wall-clock
// plus a key metric cell per experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"past"
	"past/internal/experiments"
	"past/internal/seccrypt"
)

// BenchResult is one microbenchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ExpResult is one experiment wall-clock probe.
type ExpResult struct {
	ID     string  `json:"id"`
	Scale  string  `json:"scale"`
	Seed   int64   `json:"seed"`
	WallMs float64 `json:"wall_ms"`
}

// MatrixResult is one cell of the GOMAXPROCS × shards scaling matrix:
// the same experiment, same seed (tables byte-identical by the sharded
// engine's guarantee), timed under a different core budget and shard
// count. On a one-core container the matrix records pure scheduler
// overhead; on a multi-core host it records the sharded engine's actual
// scaling, which earlier BENCH files never captured.
type MatrixResult struct {
	ID         string  `json:"id"`
	Scale      string  `json:"scale"`
	Seed       int64   `json:"seed"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	WallMs     float64 `json:"wall_ms"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Shards      int            `json:"shards"`
	UnixTime    int64          `json:"unix_time"`
	Benchmarks  []BenchResult  `json:"benchmarks"`
	Experiments []ExpResult    `json:"experiments"`
	Matrix      []MatrixResult `json:"scaling_matrix,omitempty"`
	MemoHits    uint64         `json:"verify_memo_hits"`
	MemoMisses  uint64         `json:"verify_memo_misses"`
}

func benchNetwork(n int) *past.Network {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 64 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: n, Seed: 7, Storage: cfg})
	if err != nil {
		panic(err)
	}
	return nw
}

func record(name string, f func(b *testing.B)) BenchResult {
	r := testing.Benchmark(f)
	return BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	expIDs := flag.String("experiments", "E1,E4,E10,E15,E16,E17,E18,E19,E20,E21", "comma-separated experiment ids to time (empty disables)")
	shards := flag.Int("shards", experiments.Shards,
		"simulation shards for the phase experiments (byte-identical results; parallelism only)")
	matrixExps := flag.String("matrix-exps", "E4,E9",
		"experiments for the GOMAXPROCS x shards scaling matrix (empty disables)")
	matrixCPUs := flag.String("matrix-cpus", "",
		"comma-separated GOMAXPROCS values for the matrix (default: 1 and NumCPU)")
	matrixShards := flag.String("matrix-shards", "1,2,4",
		"comma-separated shard counts for the matrix")
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "pastbench: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	experiments.Shards = *shards

	// Validate experiment ids before spending minutes on benchmarks.
	ids := splitComma(*expIDs)
	known := make(map[string]bool)
	for _, k := range experiments.IDs() {
		known[k] = true
	}
	for _, idStr := range ids {
		if !known[idStr] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v)\n", idStr, experiments.IDs())
			os.Exit(1)
		}
	}
	for _, idStr := range splitComma(*matrixExps) {
		if !known[idStr] {
			fmt.Fprintf(os.Stderr, "unknown matrix experiment %q (have %v)\n", idStr, experiments.IDs())
			os.Exit(1)
		}
	}
	matrixCPUList := parseInts(*matrixCPUs)
	if len(matrixCPUList) == 0 {
		matrixCPUList = []int{1}
		if n := runtime.NumCPU(); n > 1 {
			matrixCPUList = append(matrixCPUList, n)
		}
	}
	matrixShardList := parseInts(*matrixShards)
	if len(matrixShardList) == 0 {
		matrixShardList = []int{1, 2, 4}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     experiments.Shards,
		UnixTime:   time.Now().Unix(),
	}

	rep.Benchmarks = append(rep.Benchmarks, record("Insert4KiB", func(b *testing.B) {
		nw := benchNetwork(64)
		data := make([]byte, 4096)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.Insert(i%64, nil, fmt.Sprintf("bench-%d", i), data, 3); err != nil {
				b.Fatal(err)
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "Insert4KiB done\n")

	rep.Benchmarks = append(rep.Benchmarks, record("Lookup4KiB", func(b *testing.B) {
		nw := benchNetwork(64)
		ins, err := nw.Insert(0, nil, "bench-lookup", make([]byte, 4096), 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.Lookup(i%64, ins.FileID); err != nil {
				b.Fatal(err)
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "Lookup4KiB done\n")

	rep.Benchmarks = append(rep.Benchmarks, record("InsertReclaimCycle", func(b *testing.B) {
		nw := benchNetwork(32)
		data := make([]byte, 1024)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ins, err := nw.Insert(i%32, nil, fmt.Sprintf("cycle-%d", i), data, 3)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := nw.Reclaim(i%32, nil, ins.FileID); err != nil {
				b.Fatal(err)
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "InsertReclaimCycle done\n")

	rep.Benchmarks = append(rep.Benchmarks, record("NetworkBuild64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := past.DefaultStorageConfig()
			cfg.Capacity = 1 << 20
			if _, err := past.NewNetwork(past.NetworkConfig{N: 64, Seed: int64(i), Storage: cfg}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	fmt.Fprintf(os.Stderr, "NetworkBuild64 done\n")

	for _, idStr := range ids {
		start := time.Now()
		if _, err := experiments.Run(idStr, experiments.Small, 42); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", idStr, err)
			os.Exit(1)
		}
		rep.Experiments = append(rep.Experiments, ExpResult{
			ID: idStr, Scale: "Small", Seed: 42,
			WallMs: float64(time.Since(start).Microseconds()) / 1000,
		})
		fmt.Fprintf(os.Stderr, "%s done\n", idStr)
	}

	// GOMAXPROCS × shards scaling matrix. Cells run sequentially with the
	// process core budget pinned per cell; tables are byte-identical
	// across every cell (sharded-engine guarantee), so wall clock is the
	// only variable. The phase experiments' worker pool sizes itself from
	// GOMAXPROCS, so each cell exercises exactly the configuration a user
	// with that many cores would get.
	if *matrixExps != "" {
		cpus := matrixCPUList
		shardList := matrixShardList
		oldProcs := runtime.GOMAXPROCS(0)
		oldShards := experiments.Shards
		for _, idStr := range splitComma(*matrixExps) {
			for _, cpu := range cpus {
				runtime.GOMAXPROCS(cpu)
				for _, s := range shardList {
					experiments.Shards = s
					start := time.Now()
					if _, err := experiments.Run(idStr, experiments.Small, 42); err != nil {
						fmt.Fprintf(os.Stderr, "matrix %s cpus=%d shards=%d: %v\n", idStr, cpu, s, err)
						os.Exit(1)
					}
					rep.Matrix = append(rep.Matrix, MatrixResult{
						ID: idStr, Scale: "Small", Seed: 42,
						GOMAXPROCS: cpu, Shards: s,
						WallMs: float64(time.Since(start).Microseconds()) / 1000,
					})
					fmt.Fprintf(os.Stderr, "matrix %s cpus=%d shards=%d done\n", idStr, cpu, s)
				}
			}
		}
		runtime.GOMAXPROCS(oldProcs)
		experiments.Shards = oldShards
	}

	rep.MemoHits, rep.MemoMisses = seccrypt.MemoStats()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitComma(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad integer list entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
