// Command pastbench runs the core PAST microbenchmarks and experiment
// wall-clock probes, then writes the results as JSON so successive PRs
// can track the performance trajectory:
//
//	go run ./cmd/pastbench -out BENCH_1.json
//
// The microbenchmarks mirror the hot-path benchmarks in bench_test.go
// (insert, lookup, insert+reclaim, network build) but run against the
// public API via testing.Benchmark, so they need no test harness. The
// experiment probes time experiments.Run at Small scale — the same
// invocations the BenchmarkE* suite makes — and record the wall-clock
// plus a key metric cell per experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"past"
	"past/internal/cluster"
	"past/internal/experiments"
	"past/internal/harness"
	"past/internal/pastry"
	"past/internal/seccrypt"
)

// BenchResult is one microbenchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ExpResult is one experiment wall-clock probe. Nodes/Events/EventsPerSec
// and PeakRSSMB are filled when the experiment reports its simulation
// scale (E1/E4/E15 do) and the platform exposes a resettable peak-RSS
// watermark (Linux), so memory and throughput regress like wall clocks.
type ExpResult struct {
	ID           string  `json:"id"`
	Scale        string  `json:"scale"`
	Seed         int64   `json:"seed"`
	WallMs       float64 `json:"wall_ms"`
	Nodes        int     `json:"nodes,omitempty"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	PeakRSSMB    float64 `json:"peak_rss_mb,omitempty"`
}

// MemProbe is one bulk-construction memory measurement: build an
// analytic network of the given size and record heap bytes per node and
// build wall clock — the two quantities the 100k tier lives or dies by.
type MemProbe struct {
	Name         string  `json:"name"`
	Nodes        int     `json:"nodes"`
	BytesPerNode float64 `json:"bytes_per_node"`
	BuildMs      float64 `json:"build_ms"`
	PeakRSSMB    float64 `json:"peak_rss_mb,omitempty"`
}

// MatrixResult is one cell of the GOMAXPROCS × shards scaling matrix:
// the same experiment, same seed (tables byte-identical by the sharded
// engine's guarantee), timed under a different core budget and shard
// count. On a one-core container the matrix records pure scheduler
// overhead; on a multi-core host it records the sharded engine's actual
// scaling, which earlier BENCH files never captured.
type MatrixResult struct {
	ID         string  `json:"id"`
	Scale      string  `json:"scale"`
	Seed       int64   `json:"seed"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	WallMs     float64 `json:"wall_ms"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	NumCPU      int            `json:"num_cpu"`
	Shards      int            `json:"shards"`
	UnixTime    int64          `json:"unix_time"`
	Benchmarks  []BenchResult  `json:"benchmarks"`
	Experiments []ExpResult    `json:"experiments"`
	MemProbes   []MemProbe     `json:"mem_probes,omitempty"`
	Matrix      []MatrixResult `json:"scaling_matrix,omitempty"`
	MemoHits    uint64         `json:"verify_memo_hits"`
	MemoMisses  uint64         `json:"verify_memo_misses"`
}

func benchNetwork(n int) *past.Network {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 64 << 20
	nw, err := past.NewNetwork(past.NetworkConfig{N: n, Seed: 7, Storage: cfg})
	if err != nil {
		panic(err)
	}
	return nw
}

func record(name string, f func(b *testing.B)) BenchResult {
	r := testing.Benchmark(f)
	return BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	expIDs := flag.String("experiments", "E1,E4,E10,E15,E16,E17,E18,E19,E20,E21", "comma-separated experiment ids to time (empty disables)")
	shards := flag.Int("shards", experiments.Shards,
		"simulation shards for the phase experiments (byte-identical results; parallelism only)")
	matrixExps := flag.String("matrix-exps", "E4,E9",
		"experiments for the GOMAXPROCS x shards scaling matrix (empty disables)")
	matrixCPUs := flag.String("matrix-cpus", "",
		"comma-separated GOMAXPROCS values for the matrix (default: 1 and NumCPU)")
	matrixShards := flag.String("matrix-shards", "1,2,4",
		"comma-separated shard counts for the matrix")
	tierExps := flag.String("tier-exps", "E1@large,E4@large,E15@large,E1@huge",
		"comma-separated id@scale probes for the bulk-built tiers (empty disables)")
	memProbes := flag.String("mem-probes", "20000,100000",
		"comma-separated analytic-build sizes for the bytes-per-node probe (empty disables)")
	seriesPath := flag.String("series", "",
		"write the experiment probes' per-window telemetry series (line protocol) to this file")
	micro := flag.Bool("micro", true,
		"run the in-process microbenchmarks (Insert4KiB, Lookup4KiB, InsertReclaimCycle, NetworkBuild64)")
	chaosProbe := flag.Bool("chaos", false,
		"run the partition+heal chaos scenario against a real 7-process cluster and record its wall clock as experiment CHAOS-PH@real")
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "pastbench: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	experiments.Shards = *shards

	// Validate experiment ids before spending minutes on benchmarks.
	ids := splitComma(*expIDs)
	known := make(map[string]bool)
	for _, k := range experiments.IDs() {
		known[k] = true
	}
	for _, idStr := range ids {
		if !known[idStr] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v)\n", idStr, experiments.IDs())
			os.Exit(1)
		}
	}
	for _, idStr := range splitComma(*matrixExps) {
		if !known[idStr] {
			fmt.Fprintf(os.Stderr, "unknown matrix experiment %q (have %v)\n", idStr, experiments.IDs())
			os.Exit(1)
		}
	}
	matrixCPUList := parseInts(*matrixCPUs)
	if len(matrixCPUList) == 0 {
		matrixCPUList = []int{1}
		if n := runtime.NumCPU(); n > 1 {
			matrixCPUList = append(matrixCPUList, n)
		}
	}
	matrixShardList := parseInts(*matrixShards)
	if len(matrixShardList) == 0 {
		matrixShardList = []int{1, 2, 4}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     experiments.Shards,
		UnixTime:   time.Now().Unix(),
	}

	// The microbenchmarks always run in CI (benchguard compares them); the
	// chaos-smoke job turns them off to time only its scenario probe.
	if *micro {
		rep.Benchmarks = append(rep.Benchmarks, record("Insert4KiB", func(b *testing.B) {
			nw := benchNetwork(64)
			data := make([]byte, 4096)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Insert(i%64, nil, fmt.Sprintf("bench-%d", i), data, 3); err != nil {
					b.Fatal(err)
				}
			}
		}))
		fmt.Fprintf(os.Stderr, "Insert4KiB done\n")

		rep.Benchmarks = append(rep.Benchmarks, record("Lookup4KiB", func(b *testing.B) {
			nw := benchNetwork(64)
			ins, err := nw.Insert(0, nil, "bench-lookup", make([]byte, 4096), 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Lookup(i%64, ins.FileID); err != nil {
					b.Fatal(err)
				}
			}
		}))
		fmt.Fprintf(os.Stderr, "Lookup4KiB done\n")

		rep.Benchmarks = append(rep.Benchmarks, record("InsertReclaimCycle", func(b *testing.B) {
			nw := benchNetwork(32)
			data := make([]byte, 1024)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ins, err := nw.Insert(i%32, nil, fmt.Sprintf("cycle-%d", i), data, 3)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nw.Reclaim(i%32, nil, ins.FileID); err != nil {
					b.Fatal(err)
				}
			}
		}))
		fmt.Fprintf(os.Stderr, "InsertReclaimCycle done\n")

		rep.Benchmarks = append(rep.Benchmarks, record("NetworkBuild64", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := past.DefaultStorageConfig()
				cfg.Capacity = 1 << 20
				if _, err := past.NewNetwork(past.NetworkConfig{N: 64, Seed: int64(i), Storage: cfg}); err != nil {
					b.Fatal(err)
				}
			}
		}))
		fmt.Fprintf(os.Stderr, "NetworkBuild64 done\n")
	}

	var seriesOut *os.File
	if *seriesPath != "" {
		experiments.CollectSeries = true
		f, err := os.Create(*seriesPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pastbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		seriesOut = f
	}
	runProbe := func(idStr string, scale experiments.Scale, scaleName string) {
		resetPeakRSS()
		start := time.Now()
		res, err := experiments.Run(idStr, scale, 42)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s@%s: %v\n", idStr, scaleName, err)
			os.Exit(1)
		}
		if seriesOut != nil && res.SeriesLP != "" {
			if _, err := seriesOut.WriteString(res.SeriesLP); err != nil {
				fmt.Fprintf(os.Stderr, "pastbench: write %s: %v\n", *seriesPath, err)
				os.Exit(1)
			}
		}
		wall := time.Since(start)
		er := ExpResult{
			ID: idStr, Scale: scaleName, Seed: 42,
			WallMs:    float64(wall.Microseconds()) / 1000,
			Nodes:     res.Nodes,
			Events:    res.Events,
			PeakRSSMB: peakRSSMB(),
		}
		if res.Events > 0 && wall > 0 {
			er.EventsPerSec = float64(res.Events) / wall.Seconds()
		}
		rep.Experiments = append(rep.Experiments, er)
		fmt.Fprintf(os.Stderr, "%s@%s done\n", idStr, scaleName)
	}
	for _, idStr := range ids {
		runProbe(idStr, experiments.Small, "Small")
	}
	for _, spec := range splitComma(*tierExps) {
		idStr, scaleName, ok := strings.Cut(spec, "@")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -tier-exps entry %q (want id@scale)\n", spec)
			os.Exit(2)
		}
		scale, err := experiments.ParseScale(scaleName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -tier-exps entry %q: %v\n", spec, err)
			os.Exit(2)
		}
		if !known[idStr] {
			fmt.Fprintf(os.Stderr, "unknown tier experiment %q\n", idStr)
			os.Exit(1)
		}
		runProbe(idStr, scale, scaleName)
	}

	for _, part := range splitComma(*memProbes) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad -mem-probes entry %q\n", part)
			os.Exit(2)
		}
		rep.MemProbes = append(rep.MemProbes, memProbe(n))
		fmt.Fprintf(os.Stderr, "mem probe %d done\n", n)
	}

	// GOMAXPROCS × shards scaling matrix. Cells run sequentially with the
	// process core budget pinned per cell; tables are byte-identical
	// across every cell (sharded-engine guarantee), so wall clock is the
	// only variable. The phase experiments' worker pool sizes itself from
	// GOMAXPROCS, so each cell exercises exactly the configuration a user
	// with that many cores would get.
	if *matrixExps != "" {
		cpus := matrixCPUList
		shardList := matrixShardList
		oldProcs := runtime.GOMAXPROCS(0)
		oldShards := experiments.Shards
		for _, idStr := range splitComma(*matrixExps) {
			for _, cpu := range cpus {
				runtime.GOMAXPROCS(cpu)
				for _, s := range shardList {
					experiments.Shards = s
					start := time.Now()
					if _, err := experiments.Run(idStr, experiments.Small, 42); err != nil {
						fmt.Fprintf(os.Stderr, "matrix %s cpus=%d shards=%d: %v\n", idStr, cpu, s, err)
						os.Exit(1)
					}
					rep.Matrix = append(rep.Matrix, MatrixResult{
						ID: idStr, Scale: "Small", Seed: 42,
						GOMAXPROCS: cpu, Shards: s,
						WallMs: float64(time.Since(start).Microseconds()) / 1000,
					})
					fmt.Fprintf(os.Stderr, "matrix %s cpus=%d shards=%d done\n", idStr, cpu, s)
				}
			}
		}
		runtime.GOMAXPROCS(oldProcs)
		experiments.Shards = oldShards
	}

	// Chaos wall-clock probe: the partition+heal scenario end to end
	// against a real 7-process cluster. benchguard watches its wall clock
	// (exp:CHAOS-PH@real) so recovery-time regressions fail CI like any
	// throughput regression.
	if *chaosProbe {
		dir, err := os.MkdirTemp("", "pastbench-chaos-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pastbench: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		bin, err := harness.BuildPastnode(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pastbench: build pastnode: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		phRep, err := harness.RunPartitionHeal(bin, dir, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pastbench: chaos partition+heal: %v\n", err)
			os.Exit(1)
		}
		rep.Experiments = append(rep.Experiments, ExpResult{
			ID: "CHAOS-PH", Scale: "real", Seed: 42,
			WallMs: float64(time.Since(start).Microseconds()) / 1000,
			Nodes:  7,
			Events: uint64(phRep.Files),
		})
		fmt.Fprintf(os.Stderr, "chaos partition+heal done (invariant back %v after heal)\n",
			phRep.HealToInvariant.Round(100*time.Millisecond))
	}

	rep.MemoHits, rep.MemoMisses = seccrypt.MemoStats()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitComma(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad integer list entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Memory probes (Linux-specific parts degrade to zero elsewhere)

// resetPeakRSS rewinds the kernel's peak-RSS watermark so the following
// experiment's VmHWM reading is its own peak, not an earlier probe's.
// Writing "5" to /proc/self/clear_refs is the documented reset; failure
// (non-Linux, restricted procfs) is harmless — PeakRSSMB just reports
// the process-lifetime peak instead.
func resetPeakRSS() {
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// peakRSSMB reads VmHWM from /proc/self/status; 0 when unavailable.
func peakRSSMB() float64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) >= 2 {
			kb, _ := strconv.ParseFloat(f[1], 64)
			return kb / 1024
		}
	}
	return 0
}

// memProbe builds an n-node network analytically and reports live heap
// bytes per node plus the build wall clock. This is the number the Huge
// tier's 4 GiB budget is engineered against, so benchguard can watch it
// (-watch mem:analytic_build_20000:1.3).
func memProbe(n int) MemProbe {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	resetPeakRSS()
	start := time.Now()
	c, err := cluster.Build(cluster.Options{
		N:        n,
		Pastry:   pastry.DefaultConfig(),
		Seed:     42,
		Analytic: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mem probe %d: %v\n", n, err)
		os.Exit(1)
	}
	buildMs := float64(time.Since(start).Microseconds()) / 1000
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	probe := MemProbe{
		Name:         fmt.Sprintf("analytic_build_%d", n),
		Nodes:        n,
		BytesPerNode: float64(after.HeapAlloc-before.HeapAlloc) / float64(n),
		BuildMs:      buildMs,
		PeakRSSMB:    peakRSSMB(),
	}
	runtime.KeepAlive(c)
	return probe
}
