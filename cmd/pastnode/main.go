// Command pastnode runs one PAST storage node over TCP as a long-lived
// daemon: it bootstraps into the network with retry and backoff, keeps
// its membership fresh, persists replicas to disk when given -data (and
// re-verifies them against their certificates on restart), and shuts
// down cleanly on SIGINT/SIGTERM.
//
// All nodes of a deployment must share the same -broker-seed: the broker
// key pair is derived deterministically from it, standing in for the real
// third-party broker of the paper (which would distribute smartcards out
// of band). Each node then issues itself a card from that broker.
//
// Start the first node of a network:
//
//	pastnode -listen 127.0.0.1:7001 -broker-seed demo -bootstrap -data /var/lib/past/n1
//
// Add more nodes (a comma list or a seeds file; all are tried, with
// retry until one answers):
//
//	pastnode -listen 127.0.0.1:7002 -broker-seed demo -join 127.0.0.1:7001 -data /var/lib/past/n2
//	pastnode -listen 127.0.0.1:7003 -broker-seed demo -join-file seeds.txt
//
// Then use pastctl to insert and fetch files. Stop a node with SIGINT or
// SIGTERM; with -data it announces its departure, flushes, and restarts
// later with its replicas intact.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"past"
	"past/internal/seccrypt"
	"past/internal/tasks"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		brokerSeed = flag.String("broker-seed", "", "shared secret all nodes of this network derive the broker from (required); det:<n> selects the deterministic stream n")
		bootstrap  = flag.Bool("bootstrap", false, "start a brand-new network")
		join       = flag.String("join", "", "comma-separated addresses of existing nodes to join via")
		joinFile   = flag.String("join-file", "", "file with one bootstrap address per line (# comments allowed)")
		dataDir    = flag.String("data", "", "directory for persistent replica storage (empty = in-memory)")
		capacity   = flag.Int64("capacity", 256<<20, "contributed storage in bytes")
		quota      = flag.Int64("quota", 1<<40, "this node's client usage quota in bytes")
		k          = flag.Int("k", 3, "default replication factor")
		idSeed     = flag.Uint64("id-seed", 0, "deterministic card/nodeId seed (0 = random identity)")
		caching    = flag.Bool("caching", true, "cache popular files in unused storage")
		keepAlive  = flag.Duration("keepalive", 5*time.Second, "overlay keep-alive (and anti-entropy trigger) interval")
		failAfter  = flag.Duration("failtimeout", 0, "declare a silent peer dead after this long (0 = 3x keepalive)")
		sweepEvery = flag.Duration("anti-entropy", 10*time.Second, "minimum interval between periodic anti-entropy sweeps")
		status     = flag.Duration("status", 30*time.Second, "status print interval (0 disables)")
	)
	flag.Parse()
	if *brokerSeed == "" {
		fmt.Fprintln(os.Stderr, "pastnode: -broker-seed is required")
		os.Exit(2)
	}
	seeds, err := bootstrapSeeds(*join, *joinFile)
	if err != nil {
		fatal(err)
	}
	if *bootstrap == (len(seeds) > 0) {
		fmt.Fprintln(os.Stderr, "pastnode: pass exactly one of -bootstrap or -join/-join-file")
		os.Exit(2)
	}
	broker, card, err := deriveIdentity(*brokerSeed, *idSeed, *quota, *capacity)
	if err != nil {
		fatal(err)
	}
	scfg := past.DefaultStorageConfig()
	scfg.K = *k
	scfg.Capacity = *capacity
	scfg.Caching = *caching
	scfg.AntiEntropyEvery = *sweepEvery
	if *failAfter <= 0 {
		*failAfter = 3 * *keepAlive
	}
	peer, err := past.ListenPeer(past.PeerConfig{
		Listen:      *listen,
		Card:        card,
		BrokerPub:   broker.PublicKey(),
		Storage:     scfg,
		DataDir:     *dataDir,
		KeepAlive:   *keepAlive,
		FailTimeout: *failAfter,
	})
	if err != nil {
		fatal(err)
	}
	defer peer.Close()
	fmt.Printf("pastnode: nodeId %s listening on %s\n", peer.Ref().ID, peer.Addr())
	if *dataDir != "" {
		recovered, quarantined := peer.Recovered()
		fmt.Printf("pastnode: recovered %d files from %s (%d quarantined)\n", recovered, *dataDir, quarantined)
	}

	run := tasks.New(func(format string, args ...any) {
		fmt.Printf("pastnode: "+format+"\n", args...)
	})
	if *bootstrap {
		peer.Bootstrap()
		fmt.Println("pastnode: bootstrapped new PAST network")
	} else {
		// Join as a run-until-success task: a node started before its
		// seeds keeps retrying with backoff instead of dying, and a
		// restarted node re-enters the network the same way.
		run.Until("bootstrap", 500*time.Millisecond, 15*time.Second, func(context.Context) error {
			if err := peer.JoinAny(seeds); err != nil {
				return err
			}
			fmt.Printf("pastnode: joined network (%d peers known)\n", peer.KnownPeers())
			return nil
		})
		// Membership sync: if every neighbor vanishes (partition healed
		// the wrong way, mass restart), rejoin through the static seeds
		// rather than lingering isolated. Keep-alive and anti-entropy
		// already run inside the node on the real clock.
		run.Every("membership-sync", 4**keepAlive, func(context.Context) error {
			if peer.KnownPeers() > 0 {
				return nil
			}
			if err := peer.JoinAny(seeds); err != nil {
				return fmt.Errorf("isolated; rejoin failed: %w", err)
			}
			fmt.Printf("pastnode: rejoined network (%d peers known)\n", peer.KnownPeers())
			return nil
		})
	}
	if *status > 0 {
		run.Every("status", *status, func(context.Context) error {
			fmt.Printf("pastnode: storing %d files, %d peers known\n", peer.StoredFiles(), peer.KnownPeers())
			return nil
		})
	}
	run.Start()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("pastnode: %s: shutting down\n", s)
	if !run.Stop(10 * time.Second) {
		fmt.Println("pastnode: background tasks did not drain in time")
	}
	// peer.Close (deferred) announces departure and closes the transport.
}

// bootstrapSeeds merges the -join list and the -join-file contents.
func bootstrapSeeds(join, joinFile string) ([]string, error) {
	var seeds []string
	for _, s := range strings.Split(join, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	if joinFile != "" {
		data, err := os.ReadFile(joinFile)
		if err != nil {
			return nil, fmt.Errorf("read -join-file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			seeds = append(seeds, line)
		}
	}
	return seeds, nil
}

// deriveIdentity derives the shared broker from the seed and issues this
// node's card. In a real deployment the broker is a third party and cards
// arrive out of band (section 2.1); the shared seed is the demo stand-in.
// idSeed non-zero pins the card (and so the nodeId) to a deterministic
// stream — how the conformance harness reproduces the simulator's
// identities in real processes.
func deriveIdentity(seed string, idSeed uint64, quota, capacity int64) (*seccrypt.Broker, *seccrypt.Smartcard, error) {
	broker, err := past.DeriveBroker(seed)
	if err != nil {
		return nil, nil, err
	}
	var rng io.Reader
	if idSeed != 0 {
		rng = seccrypt.DetRand(idSeed)
	}
	card, err := broker.IssueCard(quota, capacity, 0, rng)
	if err != nil {
		return nil, nil, err
	}
	return broker, card, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pastnode: %v\n", err)
	os.Exit(1)
}
