// Command pastnode runs one PAST storage node over TCP.
//
// All nodes of a deployment must share the same -broker-seed: the broker
// key pair is derived deterministically from it, standing in for the real
// third-party broker of the paper (which would distribute smartcards out
// of band). Each node then issues itself a card from that broker.
//
// Start the first node of a network:
//
//	pastnode -listen 127.0.0.1:7001 -broker-seed demo -bootstrap
//
// Add more nodes:
//
//	pastnode -listen 127.0.0.1:7002 -broker-seed demo -join 127.0.0.1:7001
//
// Then use pastctl to insert and fetch files.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"past"
	"past/internal/seccrypt"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		brokerSeed = flag.String("broker-seed", "", "shared secret all nodes of this network derive the broker from (required)")
		bootstrap  = flag.Bool("bootstrap", false, "start a brand-new network")
		join       = flag.String("join", "", "address of an existing node to join via")
		capacity   = flag.Int64("capacity", 256<<20, "contributed storage in bytes")
		quota      = flag.Int64("quota", 1<<40, "this node's client usage quota in bytes")
		k          = flag.Int("k", 3, "default replication factor")
		status     = flag.Duration("status", 30*time.Second, "status print interval (0 disables)")
	)
	flag.Parse()
	if *brokerSeed == "" {
		fmt.Fprintln(os.Stderr, "pastnode: -broker-seed is required")
		os.Exit(2)
	}
	if *bootstrap == (*join != "") {
		fmt.Fprintln(os.Stderr, "pastnode: pass exactly one of -bootstrap or -join")
		os.Exit(2)
	}
	broker, card, err := deriveIdentity(*brokerSeed, *quota, *capacity)
	if err != nil {
		fatal(err)
	}
	scfg := past.DefaultStorageConfig()
	scfg.K = *k
	scfg.Capacity = *capacity
	peer, err := past.ListenPeer(past.PeerConfig{
		Listen:    *listen,
		Card:      card,
		BrokerPub: broker.PublicKey(),
		Storage:   scfg,
	})
	if err != nil {
		fatal(err)
	}
	defer peer.Close()
	fmt.Printf("pastnode: nodeId %s listening on %s\n", peer.Ref().ID, peer.Addr())
	if *bootstrap {
		peer.Bootstrap()
		fmt.Println("pastnode: bootstrapped new PAST network")
	} else {
		if err := peer.Join(*join); err != nil {
			fatal(fmt.Errorf("join via %s: %w", *join, err))
		}
		fmt.Printf("pastnode: joined network via %s\n", *join)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *status > 0 {
		ticker := time.NewTicker(*status)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				fmt.Printf("pastnode: storing %d files\n", peer.StoredFiles())
			case <-sig:
				fmt.Println("pastnode: shutting down")
				return
			}
		}
	}
	<-sig
	fmt.Println("pastnode: shutting down")
}

// deriveIdentity derives the shared broker from the seed and issues this
// node's card. In a real deployment the broker is a third party and cards
// arrive out of band (section 2.1); the shared seed is the demo stand-in.
func deriveIdentity(seed string, quota, capacity int64) (*seccrypt.Broker, *seccrypt.Smartcard, error) {
	h := uint64(1469598103934665603)
	for _, b := range []byte(seed) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	broker, err := seccrypt.NewBroker(seccrypt.DetRand(h))
	if err != nil {
		return nil, nil, err
	}
	// The card itself must be unique per process: mix in time and pid.
	card, err := broker.IssueCard(quota, capacity, 0, nil)
	if err != nil {
		return nil, nil, err
	}
	return broker, card, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pastnode: %v\n", err)
	os.Exit(1)
}
