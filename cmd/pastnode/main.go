// Command pastnode runs one PAST storage node over TCP as a long-lived
// daemon: it bootstraps into the network with retry and backoff, keeps
// its membership fresh, persists replicas to disk when given -data (and
// re-verifies them against their certificates on restart), and shuts
// down cleanly on SIGINT/SIGTERM.
//
// All nodes of a deployment must share the same -broker-seed: the broker
// key pair is derived deterministically from it, standing in for the real
// third-party broker of the paper (which would distribute smartcards out
// of band). Each node then issues itself a card from that broker.
//
// Start the first node of a network:
//
//	pastnode -listen 127.0.0.1:7001 -broker-seed demo -bootstrap -data /var/lib/past/n1
//
// Add more nodes (a comma list or a seeds file; all are tried, with
// retry until one answers):
//
//	pastnode -listen 127.0.0.1:7002 -broker-seed demo -join 127.0.0.1:7001 -data /var/lib/past/n2
//	pastnode -listen 127.0.0.1:7003 -broker-seed demo -join-file seeds.txt
//
// Then use pastctl to insert and fetch files. Stop a node with SIGINT or
// SIGTERM; with -data it announces its departure, flushes, and restarts
// later with its replicas intact.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"past"
	"past/internal/seccrypt"
	"past/internal/tasks"
	"past/internal/telemetry"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		brokerSeed = flag.String("broker-seed", "", "shared secret all nodes of this network derive the broker from (required); det:<n> selects the deterministic stream n")
		bootstrap  = flag.Bool("bootstrap", false, "start a brand-new network")
		join       = flag.String("join", "", "comma-separated addresses of existing nodes to join via")
		joinFile   = flag.String("join-file", "", "file with one bootstrap address per line (# comments allowed)")
		dataDir    = flag.String("data", "", "directory for persistent replica storage (empty = in-memory)")
		capacity   = flag.Int64("capacity", 256<<20, "contributed storage in bytes")
		quota      = flag.Int64("quota", 1<<40, "this node's client usage quota in bytes")
		k          = flag.Int("k", 3, "default replication factor")
		idSeed     = flag.Uint64("id-seed", 0, "deterministic card/nodeId seed (0 = random identity)")
		caching    = flag.Bool("caching", true, "cache popular files in unused storage")
		keepAlive  = flag.Duration("keepalive", 5*time.Second, "overlay keep-alive (and anti-entropy trigger) interval")
		failAfter  = flag.Duration("failtimeout", 0, "declare a silent peer dead after this long (0 = 3x keepalive)")
		sweepEvery = flag.Duration("anti-entropy", 10*time.Second, "minimum interval between periodic anti-entropy sweeps")
		repair     = flag.Duration("repair", 30*time.Second, "periodic forced anti-entropy repair interval (0 disables); each round re-offers file digests to replica-set peers so a healed cluster converges back to k replicas without operator action")
		status     = flag.Duration("status", 30*time.Second, "status print interval (0 disables)")
		telAddr    = flag.String("telemetry", "", "TCP address serving a plaintext line-protocol telemetry dump per connection (empty disables)")
		telWindow  = flag.Duration("telemetry-window", 10*time.Second, "telemetry aggregation window")
		joinWait   = flag.Duration("join-timeout", 5*time.Second, "bound on one join attempt through one seed; the bootstrap task cycles the seed list with backoff, so a dead seed costs this much, not a full operation timeout")
		dialVia    = flag.String("dial-via", "", "route all outbound connections through the egress proxy at this address (chaos/fault-injection harness); empty dials peers directly")
		brkFails   = flag.Int("breaker-threshold", 0, "consecutive dial failures before the per-peer circuit breaker opens (0 disables; suppressed peers are probed before reinstatement)")
		brkCool    = flag.Duration("breaker-cooldown", time.Second, "initial circuit-breaker cooldown (doubles per failed probe)")
		brkMax     = flag.Duration("breaker-max-cooldown", 30*time.Second, "cap on the doubled circuit-breaker cooldown; bounds how long a healed peer waits for its reinstatement probe")
		leafSync   = flag.Int("leafsync", 4, "membership anti-entropy: exchange leaf sets with one random peer every Nth keepalive tick, repairing partial views left by lossy joins (0 disables)")
	)
	flag.Parse()
	if *brokerSeed == "" {
		fmt.Fprintln(os.Stderr, "pastnode: -broker-seed is required")
		os.Exit(2)
	}
	seeds, err := bootstrapSeeds(*join, *joinFile)
	if err != nil {
		fatal(err)
	}
	if *bootstrap == (len(seeds) > 0) {
		fmt.Fprintln(os.Stderr, "pastnode: pass exactly one of -bootstrap or -join/-join-file")
		os.Exit(2)
	}
	broker, card, err := deriveIdentity(*brokerSeed, *idSeed, *quota, *capacity)
	if err != nil {
		fatal(err)
	}
	scfg := past.DefaultStorageConfig()
	scfg.K = *k
	scfg.Capacity = *capacity
	scfg.Caching = *caching
	scfg.AntiEntropyEvery = *sweepEvery
	if *failAfter <= 0 {
		*failAfter = 3 * *keepAlive
	}
	peer, err := past.ListenPeer(past.PeerConfig{
		Listen:      *listen,
		Card:        card,
		BrokerPub:   broker.PublicKey(),
		Storage:     scfg,
		DataDir:     *dataDir,
		KeepAlive:   *keepAlive,
		FailTimeout: *failAfter,
		LeafSync:    *leafSync,
		JoinTimeout: *joinWait,
		DialVia:     *dialVia,
		Breaker:     past.BreakerOptions{Threshold: *brkFails, Cooldown: *brkCool, MaxCooldown: *brkMax},
	})
	if err != nil {
		fatal(err)
	}
	defer peer.Close()
	fmt.Printf("pastnode: nodeId %s listening on %s\n", peer.Ref().ID, peer.Addr())
	if *dataDir != "" {
		recovered, quarantined := peer.Recovered()
		fmt.Printf("pastnode: recovered %d files from %s (%d quarantined)\n", recovered, *dataDir, quarantined)
	}

	// Telemetry: wall-clock windows relative to process start, stamped
	// with real time via the epoch. The recorder always runs (it is a few
	// ring buffers); -telemetry only controls the dump listener.
	start := time.Now()
	rec := telemetry.New(telemetry.Config{Window: *telWindow, EpochNs: start.UnixNano()})
	rec.SetTag("node", peer.Ref().ID.String())
	peer.RegisterTelemetry(rec)

	run := tasks.New(func(format string, args ...any) {
		fmt.Printf("pastnode: "+format+"\n", args...)
	})
	rec.Multi("tasks", []string{"runs", "failures"}, func() []float64 {
		var runs, failures int
		for _, st := range run.Statuses() {
			runs += st.Runs
			failures += st.Failures
		}
		return []float64{float64(runs), float64(failures)}
	})
	// The flush job is the daemon's analogue of the simulator's window
	// barrier: it ticks the recorder on the real clock. Half-window
	// cadence bounds how late a boundary can be noticed.
	run.Every("telemetry", *telWindow/2, func(context.Context) error {
		rec.Tick(time.Since(start))
		return nil
	})
	if *telAddr != "" {
		ln, err := net.Listen("tcp", *telAddr)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("pastnode: telemetry on %s\n", ln.Addr())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed on shutdown
				}
				rec.Tick(time.Since(start))
				_ = rec.WriteLP(conn)
				conn.Close() //nolint:errcheck // one-shot dump socket
			}
		}()
	}
	if *bootstrap {
		peer.Bootstrap()
		fmt.Println("pastnode: bootstrapped new PAST network")
	} else {
		// Seed rotation shared by the bootstrap and membership-sync tasks:
		// each failed pass leaves the cursor past the seeds it burned, so
		// the next attempt starts at a fresh seed instead of hammering the
		// first (possibly long-dead) entry of the list forever.
		var joinMu sync.Mutex
		joinNext := 0
		rejoin := func() error {
			joinMu.Lock()
			defer joinMu.Unlock()
			next, err := peer.JoinAnyFrom(seeds, joinNext)
			joinNext = next
			return err
		}
		// Join as a run-until-success task: a node started before its
		// seeds keeps retrying with capped backoff forever instead of
		// dying, and a restarted node re-enters the network the same way.
		run.Until("bootstrap", 500*time.Millisecond, 15*time.Second, func(context.Context) error {
			if err := rejoin(); err != nil {
				return err
			}
			fmt.Printf("pastnode: joined network (%d peers known)\n", peer.KnownPeers())
			return nil
		})
		// Membership sync: re-anchor through the static seeds when the
		// membership view collapses. Total isolation (every neighbor
		// vanished) is the obvious trigger; the subtler one is a partition
		// survivor on the small side of a split — it still knows its
		// fellow minority members, so it compares against the largest
		// membership it ever saw and re-joins once it has lost more than
		// half of that. Re-join on a live node merges the seed's state and
		// re-announces without disturbing existing membership, so a false
		// positive costs one round of join traffic, not an outage.
		maxSeen := 0
		run.Every("membership-sync", 4**keepAlive, func(context.Context) error {
			known := peer.KnownPeers()
			if known > maxSeen {
				maxSeen = known
			}
			if known > 0 && known >= (maxSeen+1)/2 {
				return nil
			}
			if err := rejoin(); err != nil {
				if known == 0 {
					return fmt.Errorf("isolated; rejoin failed: %w", err)
				}
				return fmt.Errorf("membership shrunk to %d/%d; rejoin failed: %w", known, maxSeen, err)
			}
			fmt.Printf("pastnode: rejoined network (%d peers known)\n", peer.KnownPeers())
			return nil
		})
	}
	if *repair > 0 {
		// Self-healing: force an anti-entropy sweep on a fixed cadence,
		// bypassing the rate limit that governs the piggybacked sweeps.
		// After a partition heals or a node restarts, this converges every
		// file back to k disk replicas within one repair period.
		run.Every("repair", *repair, func(context.Context) error {
			peer.Repair()
			return nil
		})
	}
	if *status > 0 {
		run.Every("status", *status, func(context.Context) error {
			recovered, quarantined := peer.Recovered()
			line := fmt.Sprintf("pastnode: storing %d files, %d peers known", peer.StoredFiles(), peer.KnownPeers())
			if *dataDir != "" {
				line += fmt.Sprintf(", disk recovered %d / quarantined %d", recovered, quarantined)
			}
			var failures int
			for _, st := range run.Statuses() {
				failures += st.Failures
			}
			if failures > 0 {
				line += fmt.Sprintf(", %d task failures", failures)
			}
			fmt.Println(line)
			return nil
		})
	}
	run.Start()

	// snapshot flushes the telemetry ring buffers and prints the full
	// operator view: series in line protocol, disk recovery counts,
	// transport/breaker health, and per-task scheduler stats. Used by
	// SIGUSR1 on demand and once more on graceful shutdown, so the last
	// partial window is never lost.
	snapshot := func(label string) {
		rec.Tick(time.Since(start))
		recovered, quarantined := peer.Recovered()
		fmt.Printf("pastnode: %s (uptime %s)\n", label, time.Since(start).Round(time.Second))
		fmt.Printf("pastnode: disk: recovered %d, quarantined %d\n", recovered, quarantined)
		ts := peer.TransportStats()
		fmt.Printf("pastnode: transport: dials %d (failed %d), breaker opens %d, sends suppressed %d\n",
			ts.Dials, ts.DialFailures, ts.BreakerOpens, ts.Suppressed)
		for _, st := range run.Statuses() {
			fmt.Printf("pastnode: task %s\n", st)
		}
		_ = rec.WriteLP(os.Stdout)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	for s := range sig {
		if s == syscall.SIGUSR1 {
			snapshot("telemetry snapshot")
			continue
		}
		fmt.Printf("pastnode: %s: shutting down\n", s)
		break
	}
	if !run.Stop(10 * time.Second) {
		fmt.Println("pastnode: background tasks did not drain in time")
	}
	snapshot("final telemetry snapshot")
	// peer.Close (deferred) announces departure and closes the transport.
}

// bootstrapSeeds merges the -join list and the -join-file contents.
func bootstrapSeeds(join, joinFile string) ([]string, error) {
	var seeds []string
	for _, s := range strings.Split(join, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	if joinFile != "" {
		data, err := os.ReadFile(joinFile)
		if err != nil {
			return nil, fmt.Errorf("read -join-file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			seeds = append(seeds, line)
		}
	}
	return seeds, nil
}

// deriveIdentity derives the shared broker from the seed and issues this
// node's card. In a real deployment the broker is a third party and cards
// arrive out of band (section 2.1); the shared seed is the demo stand-in.
// idSeed non-zero pins the card (and so the nodeId) to a deterministic
// stream — how the conformance harness reproduces the simulator's
// identities in real processes.
func deriveIdentity(seed string, idSeed uint64, quota, capacity int64) (*seccrypt.Broker, *seccrypt.Smartcard, error) {
	broker, err := past.DeriveBroker(seed)
	if err != nil {
		return nil, nil, err
	}
	var rng io.Reader
	if idSeed != 0 {
		rng = seccrypt.DetRand(idSeed)
	}
	card, err := broker.IssueCard(quota, capacity, 0, rng)
	if err != nil {
		return nil, nil, err
	}
	return broker, card, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pastnode: %v\n", err)
	os.Exit(1)
}
