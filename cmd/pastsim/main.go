// Command pastsim regenerates the paper's tables and figures.
//
// Usage:
//
//	pastsim -exp all                 # every experiment, CI scale
//	pastsim -exp E1,E3 -scale full   # selected experiments, paper scale
//	pastsim -list                    # show the experiment index
//
// Output is plain text, one table per experiment, in the shape of the
// corresponding figure/table in the paper (see ARCHITECTURE.md for the
// experiment index and the paper-to-code mapping).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"past/internal/experiments"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scaleFlag  = flag.String("scale", "small", "small (seconds), full (paper scale, minutes), large (20k nodes, bulk-built), or huge (100k nodes)")
		seedFlag   = flag.Int64("seed", 42, "random seed; identical seeds reproduce identical tables")
		shardsFlag = flag.Int("shards", experiments.Shards,
			"simulation shards for the single-cluster phase experiments (E2-E5, E8, E9, E12-E17);\ntables are byte-identical for any value >= 1, so this only selects parallelism (default: core count)")
		listFlag   = flag.Bool("list", false, "list experiment ids and exit")
		seriesFlag = flag.String("series", "", "write per-window telemetry series (line protocol) for the instrumented experiments (E15, E18, E20) to this file")

		churnRate    = flag.Float64("churn-rate-scale", experiments.Churn.RateScale, "multiplier on the churn experiments' (E15-E17) node arrival rates")
		churnSession = flag.Duration("churn-session", experiments.Churn.MedianSession, "median node session length for the churn experiments")
		churnCrash   = flag.Float64("churn-crash-frac", experiments.Churn.CrashFrac, "fraction of churn departures that are silent crashes (the rest leave gracefully)")
	)
	flag.Parse()
	if *shardsFlag < 1 {
		fmt.Fprintf(os.Stderr, "pastsim: -shards must be >= 1, got %d\n", *shardsFlag)
		os.Exit(2)
	}
	experiments.Shards = *shardsFlag
	if *churnRate < 0 || *churnCrash < 0 || *churnCrash > 1 || *churnSession <= 0 {
		fmt.Fprintln(os.Stderr, "pastsim: churn flags must satisfy rate-scale >= 0, 0 <= crash-frac <= 1, session > 0")
		os.Exit(2)
	}
	experiments.Churn.RateScale = *churnRate
	experiments.Churn.MedianSession = *churnSession
	experiments.Churn.CrashFrac = *churnCrash

	if *listFlag {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pastsim: %v\n", err)
		os.Exit(2)
	}
	ids := experiments.IDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	var seriesOut *os.File
	if *seriesFlag != "" {
		experiments.CollectSeries = true
		seriesOut, err = os.Create(*seriesFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pastsim: %v\n", err)
			os.Exit(1)
		}
		defer seriesOut.Close()
	}
	seriesLines := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id, scale, *seedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pastsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		if seriesOut != nil && res.SeriesLP != "" {
			if _, err := seriesOut.WriteString(res.SeriesLP); err != nil {
				fmt.Fprintf(os.Stderr, "pastsim: write %s: %v\n", *seriesFlag, err)
				os.Exit(1)
			}
			seriesLines += strings.Count(res.SeriesLP, "\n")
		}
	}
	if seriesOut != nil {
		fmt.Printf("wrote %d series points to %s\n", seriesLines, *seriesFlag)
	}
}
