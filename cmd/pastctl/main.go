// Command pastctl is a PAST client: it joins an existing network as a
// (zero-contribution) node and performs insert, get and reclaim
// operations.
//
//	pastctl -join 127.0.0.1:7001 -broker-seed demo -card me.card insert report.pdf
//	pastctl -join 127.0.0.1:7001 -broker-seed demo get <fileId> -o report.pdf
//	pastctl -join 127.0.0.1:7001 -broker-seed demo -card me.card reclaim <fileId>
//
// The -card file persists the client's smartcard (identity + quota ledger)
// across invocations; it is created on first use. Reclaim only works with
// the card that inserted the file (section 2.1 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"past"
	"past/internal/seccrypt"
)

func main() {
	var (
		join       = flag.String("join", "", "address of a PAST node to join via (required)")
		brokerSeed = flag.String("broker-seed", "", "the network's shared broker seed (required)")
		cardFile   = flag.String("card", "", "path to the client's persistent smartcard file")
		quota      = flag.Int64("quota", 1<<30, "quota for a newly created card")
		k          = flag.Int("k", 3, "replication factor for inserts")
		out        = flag.String("o", "", "output path for get (default: stdout)")
	)
	flag.Parse()
	args := flag.Args()
	if *join == "" || *brokerSeed == "" || len(args) < 1 {
		usage()
	}
	broker, err := deriveBroker(*brokerSeed)
	if err != nil {
		fatal(err)
	}
	card, save, err := loadOrCreateCard(broker, *cardFile, *quota)
	if err != nil {
		fatal(err)
	}
	// The client joins as a node contributing no storage — per the paper,
	// nodes "optionally contribute storage" and pure clients need none.
	scfg := past.DefaultStorageConfig()
	scfg.K = *k
	scfg.Capacity = 0
	scfg.Caching = false
	peer, err := past.ListenPeer(past.PeerConfig{
		Card:      card,
		BrokerPub: broker.PublicKey(),
		Storage:   scfg,
	})
	if err != nil {
		fatal(err)
	}
	defer peer.Close()
	if err := peer.Join(*join); err != nil {
		fatal(fmt.Errorf("join via %s: %w", *join, err))
	}

	switch args[0] {
	case "insert":
		if len(args) != 2 {
			usage()
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			fatal(err)
		}
		res, err := peer.Insert(card, filepath.Base(args[1]), data, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fileId: %s\nreceipts: %d (diverted %d, retries %d)\nremaining quota: %d bytes\n",
			res.FileID, len(res.Receipts), res.Diverted, res.Retries, card.RemainingQuota())
	case "get":
		if len(args) != 2 {
			usage()
		}
		f, err := past.ParseFileID(args[1])
		if err != nil {
			fatal(err)
		}
		res, err := peer.Lookup(f)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			os.Stdout.Write(res.Data)
		} else if err := os.WriteFile(*out, res.Data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "retrieved %d bytes in %d hops (cached=%v) from %s\n",
			len(res.Data), res.Hops, res.Cached, res.From.ID)
	case "reclaim":
		if len(args) != 2 {
			usage()
		}
		f, err := past.ParseFileID(args[1])
		if err != nil {
			fatal(err)
		}
		res, err := peer.Reclaim(card, f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("freed %d bytes across %d receipts\nremaining quota: %d bytes\n",
			res.Freed, len(res.Receipts), card.RemainingQuota())
	default:
		usage()
	}
	if err := save(); err != nil {
		fatal(err)
	}
}

func deriveBroker(seed string) (*past.Broker, error) {
	return past.DeriveBroker(seed)
}

// loadOrCreateCard returns the client card plus a function persisting its
// updated quota ledger.
func loadOrCreateCard(broker *past.Broker, path string, quota int64) (*past.Smartcard, func() error, error) {
	noSave := func() error { return nil }
	if path == "" {
		card, err := broker.IssueCard(quota, 0, 0, nil)
		return card, noSave, err
	}
	if data, err := os.ReadFile(path); err == nil {
		card, err := seccrypt.ImportCard(data)
		if err != nil {
			return nil, nil, fmt.Errorf("card file %s: %w", path, err)
		}
		return card, func() error { return os.WriteFile(path, card.Export(), 0o600) }, nil
	}
	card, err := broker.IssueCard(quota, 0, 0, nil)
	if err != nil {
		return nil, nil, err
	}
	return card, func() error { return os.WriteFile(path, card.Export(), 0o600) }, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pastctl -join <addr> -broker-seed <seed> [-card <file>] insert <path>
  pastctl -join <addr> -broker-seed <seed> get <fileId> [-o <path>]
  pastctl -join <addr> -broker-seed <seed> -card <file> reclaim <fileId>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pastctl: %v\n", err)
	os.Exit(1)
}
