// Archive: the paper's backup/archival motivation ("obviates the need for
// physical transport of storage media to protect backup and archival
// data"). An archive of files is inserted with k=4 replicas; then a third
// of the network silently fails. The example shows that every file stays
// retrievable, and that failure detection plus re-replication restores the
// replication factor afterwards.
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"time"

	"past"
)

func main() {
	const (
		nodes = 40
		files = 25
		k     = 4
	)
	cfg := past.DefaultStorageConfig()
	cfg.K = k
	cfg.Capacity = 64 << 20

	nw, err := past.NewNetwork(past.NetworkConfig{
		N: nodes, Seed: 7, Storage: cfg,
		KeepAlive:   2 * time.Second,
		FailTimeout: 6 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archiving %d files with k=%d on %d nodes\n", files, k, nodes)

	var archived []past.FileID
	for i := 0; i < files; i++ {
		data := make([]byte, 16<<10)
		for j := range data {
			data[j] = byte(i + j)
		}
		ins, err := nw.Insert(i%nodes, nil, fmt.Sprintf("backup-%03d.tar", i), data, k)
		if err != nil {
			log.Fatalf("archive insert %d: %v", i, err)
		}
		archived = append(archived, ins.FileID)
	}

	// A third of the nodes silently leave ("nodes ... may silently leave
	// the system without warning", section 1 of the paper).
	crashed := 0
	for i := 0; i < nodes && crashed < nodes/3; i += 3 {
		if !nw.Down(i) {
			nw.Crash(i)
			crashed++
		}
	}
	fmt.Printf("crashed %d/%d nodes without warning\n", crashed, nodes)

	// Every archived file must still be retrievable immediately: with k=4
	// replicas on diverse nodes, losing a third of the network leaves at
	// least one live replica with overwhelming probability. Clients must,
	// of course, issue requests through a live access point.
	client := func(i int) int {
		for j := i % nodes; ; j = (j + 1) % nodes {
			if !nw.Down(j) {
				return j
			}
		}
	}
	lost := 0
	for i, f := range archived {
		if _, err := nw.Lookup(client(i*11+1), f); err != nil {
			lost++
		}
	}
	fmt.Printf("immediately after the failures: %d/%d files retrievable\n", files-lost, files)

	// Let keep-alives detect the failures and re-replication restore k
	// copies of every file.
	nw.RunFor(60 * time.Second)
	restored := 0
	for _, f := range archived {
		if len(nw.ReplicaHolders(f)) >= k {
			restored++
		}
	}
	fmt.Printf("after failure recovery: %d/%d files back at full replication (k=%d)\n",
		restored, files, k)
	if lost > 0 {
		log.Fatalf("%d archived files were lost — archival durability violated", lost)
	}
}
