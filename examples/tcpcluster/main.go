// TCPCluster: an eight-node PAST network over real TCP sockets on
// loopback — the same code path a wide-area deployment uses (gob frames,
// measured RTT as the proximity metric, real clock, keep-alive failure
// detection).
//
//	go run ./examples/tcpcluster
package main

import (
	"bytes"
	"fmt"
	"log"

	"past"
)

func main() {
	broker, err := past.NewBroker()
	if err != nil {
		log.Fatal(err)
	}
	scfg := past.DefaultStorageConfig()
	scfg.K = 3
	scfg.Capacity = 64 << 20

	const n = 8
	peers := make([]*past.Peer, 0, n)
	for i := 0; i < n; i++ {
		card, err := broker.IssueCard(1<<30, scfg.Capacity, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		p, err := past.ListenPeer(past.PeerConfig{
			Card:      card,
			BrokerPub: broker.PublicKey(),
			Storage:   scfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
	}
	peers[0].Bootstrap()
	fmt.Printf("node 0 bootstrapped at %s\n", peers[0].Addr())
	for i := 1; i < n; i++ {
		if err := peers[i].Join(peers[0].Addr()); err != nil {
			log.Fatalf("node %d join: %v", i, err)
		}
		fmt.Printf("node %d (%s) joined\n", i, peers[i].Ref().ID)
	}

	payload := []byte("sent across real TCP connections, gob-framed")
	ins, err := peers[2].Insert(nil, "wire.txt", payload, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted fileId %s with %d receipts\n", ins.FileID, len(ins.Receipts))

	got, err := peers[7].Lookup(ins.FileID)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got.Data, payload) {
		log.Fatal("payload corrupted in transit")
	}
	fmt.Printf("node 7 retrieved %d bytes in %d hops from %s\n",
		len(got.Data), got.Hops, got.From.ID)

	stored := 0
	for i, p := range peers {
		if c := p.StoredFiles(); c > 0 {
			fmt.Printf("node %d stores %d file(s)\n", i, c)
			stored += c
		}
	}
	fmt.Printf("total replicas in the network: %d\n", stored)
}
