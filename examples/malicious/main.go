// Malicious: the fault-tolerance argument of section 2.2. A slice of the
// network turns malicious — nodes accept messages but silently refuse to
// forward them. With deterministic routing, a retried lookup keeps taking
// the same path, so retries recover nothing; with randomized routing the
// retry probability mass spreads over alternate next hops and blocked
// lookups eventually route around the attackers ("the query may have to
// be repeated several times by the client, until a route is chosen that
// avoids the bad node").
//
//	go run ./examples/malicious
package main

import (
	"fmt"
	"log"
	"math/rand"

	"past"
)

const (
	nodes    = 100
	badFrac  = 0.25
	lookups  = 80
	maxTries = 8
)

func main() {
	fmt.Printf("%d nodes, %.0f%% malicious (accept but never forward), %d lookups\n",
		nodes, badFrac*100, lookups)
	fmt.Printf("%-13s  %-18s  %-18s\n", "routing", "success on try 1", fmt.Sprintf("success within %d", maxTries))
	for _, randomized := range []bool{false, true} {
		first, retried := run(randomized)
		mode := "deterministic"
		if randomized {
			mode = "randomized"
		}
		fmt.Printf("%-13s  %17.0f%%  %17.0f%%\n", mode, first*100, retried*100)
	}
	fmt.Println("\nretries only help when the route is re-randomized — the paper's argument")
	fmt.Println("for randomized routing against malicious nodes.")
}

func run(randomized bool) (firstTry, withinRetries float64) {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 32 << 20
	cfg.Caching = false
	nw, err := past.NewNetwork(past.NetworkConfig{
		N: nodes, Seed: 21, Storage: cfg,
		RandomizedRouting: randomized,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Insert the target files while everyone is still honest.
	rng := rand.New(rand.NewSource(3))
	var ids []past.FileID
	for i := 0; i < 10; i++ {
		ins, err := nw.Insert(rng.Intn(nodes), nil, fmt.Sprintf("doc-%d", i), make([]byte, 2048), 3)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, ins.FileID)
	}
	// Corrupt a fraction of the network.
	bad := map[int]bool{}
	for len(bad) < int(badFrac*nodes) {
		i := rng.Intn(nodes)
		if !bad[i] {
			bad[i] = true
			nw.SetMalicious(i)
		}
	}
	firstOK, eventualOK := 0, 0
	for i := 0; i < lookups; i++ {
		client := rng.Intn(nodes)
		for bad[client] {
			client = rng.Intn(nodes)
		}
		f := ids[i%len(ids)]
		for try := 1; try <= maxTries; try++ {
			if _, err := nw.Lookup(client, f); err == nil {
				if try == 1 {
					firstOK++
				}
				eventualOK++
				break
			}
		}
	}
	return float64(firstOK) / float64(lookups), float64(eventualOK) / float64(lookups)
}
