// Sharing: the paper's content-distribution motivation — "a group of
// nodes to jointly store or publish content that exceeds the capacity of
// any individual node", with "additional copies of popular files ...
// cached in any PAST node to balance query load".
//
// A publisher inserts a catalog; many clients then fetch it with a Zipf
// popularity distribution. The example contrasts fetch hops and cache
// hits with caching enabled vs disabled.
//
//	go run ./examples/sharing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"past"
)

const (
	nodes   = 60
	files   = 30
	fetches = 1000
)

func main() {
	fmt.Printf("publishing %d files to %d nodes; %d Zipf-distributed fetches\n",
		files, nodes, fetches)
	for _, caching := range []bool{true, false} {
		hits, hops := run(caching)
		fmt.Printf("caching %-3v  cache-hit rate %.0f%%  avg fetch hops %.2f\n",
			caching, hits*100, hops)
	}
}

func run(caching bool) (hitRate, avgHops float64) {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 32 << 20
	cfg.Caching = caching
	nw, err := past.NewNetwork(past.NetworkConfig{N: nodes, Seed: 11, Storage: cfg})
	if err != nil {
		log.Fatal(err)
	}
	publisher := 0
	catalog := make([]past.FileID, 0, files)
	for i := 0; i < files; i++ {
		data := make([]byte, 8<<10)
		ins, err := nw.Insert(publisher, nil, fmt.Sprintf("track-%02d.ogg", i), data, 3)
		if err != nil {
			log.Fatal(err)
		}
		catalog = append(catalog, ins.FileID)
	}
	rng := rand.New(rand.NewSource(5))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(files-1))
	hits, total := 0, 0
	var hopSum float64
	for i := 0; i < fetches; i++ {
		f := catalog[zipf.Uint64()]
		client := rng.Intn(nodes)
		got, err := nw.Lookup(client, f)
		if err != nil {
			log.Fatalf("fetch %d: %v", i, err)
		}
		total++
		if got.Cached {
			hits++
		}
		hopSum += float64(got.Hops)
	}
	return float64(hits) / float64(total), hopSum / float64(total)
}
