// Quickstart: build a small simulated PAST network, insert a file with
// three replicas, retrieve it from another node, then reclaim its storage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"past"
)

func main() {
	cfg := past.DefaultStorageConfig()
	cfg.K = 3
	cfg.Capacity = 64 << 20

	nw, err := past.NewNetwork(past.NetworkConfig{N: 32, Seed: 1, Storage: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %d-node PAST network\n", nw.Len())

	// Insert from node 0 using its own smartcard. The card issues a
	// signed file certificate, debits quota by size x k, and the file is
	// replicated on the 3 nodes whose nodeIds are closest to the fileId.
	data := []byte("PAST: a large-scale, persistent peer-to-peer storage utility")
	ins, err := nw.Insert(0, nil, "abstract.txt", data, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %q\n  fileId   %s\n  receipts %d\n", "abstract.txt", ins.FileID, len(ins.Receipts))
	for _, r := range ins.Receipts {
		fmt.Printf("    stored by %s (diverted=%v)\n", r.StoredBy.ID, r.Diverted)
	}

	// Retrieve from a node on the other side of the network. The reply
	// carries the file certificate, which the client verifies.
	got, err := nw.Lookup(25, ins.FileID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved %d bytes in %d overlay hops (cached=%v)\n  content: %q\n",
		len(got.Data), got.Hops, got.Cached, string(got.Data))

	// Reclaim the storage with the owner's card; each replica holder
	// verifies the reclaim certificate against the stored file
	// certificate and returns a signed receipt crediting the quota.
	rec, err := nw.Reclaim(0, nil, ins.FileID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reclaimed %d bytes (%d receipts); remaining quota %d\n",
		rec.Freed, len(rec.Receipts), nw.Card(0).RemainingQuota())
}
