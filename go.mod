module past

go 1.24
