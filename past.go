// Package past is the public API of this PAST reproduction: a large-scale,
// persistent peer-to-peer storage utility built on the Pastry location and
// routing scheme (Druschel & Rowstron, HotOS 2001).
//
// Two entry points cover the two ways to run PAST:
//
//   - Network builds a whole simulated PAST network in-process on a
//     deterministic discrete-event simulator — the configuration used by
//     the paper-reproduction experiments and most tests. See NewNetwork.
//
//   - Peer runs one real storage node speaking gob-over-TCP, for
//     multi-process deployments on real machines. See ListenPeer.
//
// Both expose the paper's three operations — Insert, Lookup, Reclaim —
// with the full protocol stack underneath: smartcard-signed file
// certificates and receipts, storage quotas, k-replication on the nodes
// whose nodeIds are numerically closest to the fileId, replica and file
// diversion for storage balancing, failure-triggered re-replication, and
// caching of popular files along lookup paths.
//
// The deeper layers live in internal packages (internal/pastry,
// internal/past, internal/seccrypt, internal/simnet, ...); this package
// re-exports the types a downstream application needs.
//
// # Performance
//
// Two hot-path invariants keep inserts and lookups cheap; both matter to
// anyone embedding this package:
//
// Verification memoization. Signature checks are memoized process-wide
// in a lock-striped LRU keyed by a SHA-256 digest of (public key,
// signature, body), so the k replica holders of one insert — and every
// retry, recovery transfer or cached copy of the same certificate —
// perform the ed25519 scalar math once rather than k times. The memo
// caches only the pure signature relation: expiry and ownership checks
// re-run on every verification, and any mutation of a signed byte
// changes the key and misses the cache, so a stale positive would
// require a SHA-256 collision.
//
// Zero-copy replication. Message payloads and stored content share one
// immutable backing array: a 4 KiB insert materializes one buffer, not
// one per replica plus one per cache. The corresponding contract is the
// wire package's "immutable after Send" rule extended to storage — byte
// slices handed to Insert, and slices returned by Lookup, must not be
// mutated afterwards. Re-inserting changed content under a new name (or
// after Reclaim) is the supported way to change data; every node still
// re-checks content hashes before serving, so a violated contract is
// detected rather than silently propagated.
package past

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"past/internal/id"
	pastcore "past/internal/past"
	"past/internal/seccrypt"
	"past/internal/wire"
)

// FileID is a 160-bit PAST file identifier.
type FileID = id.File

// NodeID is a 128-bit Pastry node identifier.
type NodeID = id.Node

// ParseFileID parses a 40-hex-digit fileId.
func ParseFileID(s string) (FileID, error) { return id.ParseFile(s) }

// InsertResult reports an insert outcome: the assigned fileId, the store
// receipts collected from the replica holders, and retry accounting.
type InsertResult = pastcore.InsertResult

// LookupResult carries the retrieved file, its certificate, and routing
// telemetry (overlay hops, proximity distance, cache hit).
type LookupResult = pastcore.LookupResult

// ReclaimResult carries the reclaim receipts and total bytes freed.
type ReclaimResult = pastcore.ReclaimResult

// StorageConfig configures the PAST storage layer of a node.
type StorageConfig = pastcore.Config

// DefaultStorageConfig returns the paper's defaults (k=5, thresholds
// 0.1/0.05, diversion and caching enabled).
func DefaultStorageConfig() StorageConfig { return pastcore.DefaultConfig() }

// Broker issues smartcards and balances storage supply and demand
// (section 1 of the paper).
type Broker = seccrypt.Broker

// Smartcard holds a user's key pair and quota ledger; it issues file and
// reclaim certificates and signs receipts (section 2.1).
type Smartcard = seccrypt.Smartcard

// NewBroker creates a broker with a fresh certification key. Pass nil to
// use crypto/rand.
func NewBroker() (*Broker, error) { return seccrypt.NewBroker(nil) }

// DeriveBroker derives the shared network broker from a seed string, the
// demo stand-in for the paper's third-party broker (which would
// distribute smartcards out of band). All nodes of one deployment must
// use the same seed. Two forms are accepted:
//
//   - "det:<uint64>" draws the key from the deterministic stream seeded
//     with that number — the same derivation the simulator uses
//     (NetworkConfig.Seed s maps to "det:<s+1>"), which is how the
//     conformance harness gives real processes the simulator's identities.
//   - anything else is FNV-hashed to a stream seed.
func DeriveBroker(seed string) (*Broker, error) {
	if rest, ok := strings.CutPrefix(seed, "det:"); ok {
		v, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("past: broker seed %q: det: needs a uint64: %w", seed, err)
		}
		return seccrypt.NewBroker(seccrypt.DetRand(v))
	}
	h := uint64(1469598103934665603)
	for _, b := range []byte(seed) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return seccrypt.NewBroker(seccrypt.DetRand(h))
}

// DetCardRand returns the deterministic randomness stream for issuing
// card i of a seed-s deployment, matching the simulator's derivation so a
// real node can reproduce the nodeId the simulator assigns node i.
func DetCardRand(seed int64, i int) io.Reader {
	return seccrypt.DetRand(uint64(seed)<<20 + uint64(i) + 7)
}

// StoreReceipt proves a node stored a replica.
type StoreReceipt = wire.StoreReceipt

// ReclaimReceipt proves a node freed a replica's storage.
type ReclaimReceipt = wire.ReclaimReceipt

// NodeRef names a node: identifier plus transport address.
type NodeRef = wire.NodeRef

// Errors re-exported for errors.Is checks.
var (
	// ErrTimeout reports a client operation that did not complete.
	ErrTimeout = pastcore.ErrTimeout
	// ErrRejected reports an insert the network could not accommodate.
	ErrRejected = pastcore.ErrRejected
	// ErrNotFound reports a lookup for an unknown (or reclaimed) fileId.
	ErrNotFound = pastcore.ErrNotFound
	// ErrQuotaExceeded reports an insert beyond the card's storage quota.
	ErrQuotaExceeded = seccrypt.ErrQuotaExceeded
)
